(** The boot-time component registry — the kernel as shipped.

    Shared by the [safeos] and [klint] drivers so the registry both
    reason about is the same object.  [loc_of] supplies per-subsystem
    implementation sizes derived from the source tree (klint's line
    counts); where it returns [None] (or is omitted) a recorded fallback
    constant is used, so the audit still renders when the sources are
    not on disk. *)

val registry : ?loc_of:(string -> int option) -> unit -> Registry.t
