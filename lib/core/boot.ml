(* The kernel as shipped: every subsystem registered at its current
   safety level.  Shared by the safeos and klint drivers so the registry
   both of them reason about is the same object.

   LoC values are derived from the source tree when the caller supplies
   [loc_of] (klint's per-subsystem line counts, so the Figure-1 audit
   numbers cannot drift); the constants below are only the fallback for
   contexts where the sources are not on disk. *)

let registry ?loc_of () =
  let loc name fallback =
    match loc_of with
    | None -> fallback
    | Some f -> ( match f name with Some n -> n | None -> fallback)
  in
  let r = Registry.create () in
  let reg = Registry.register r in
  ignore
    (reg ~name:"memfs" ~kind:Registry.File_system ~level:Level.Modular
       ~iface:Interface.fs_interface ~loc:(loc "memfs" 430)
       ~description:"in-memory FS, C idioms behind a modular interface"
       ~instance:(Kvfs.Iface.make (module Kfs.Memfs_unsafe.Modular) ())
       ());
  ignore
    (reg ~name:"journalfs" ~kind:Registry.File_system ~level:Level.Verified
       ~iface:Interface.fs_interface ~loc:(loc "journalfs" 620)
       ~description:"journaled block FS (ext4-shaped), refinement-checked by kharness"
       ~instance:(Kvfs.Iface.make (module Kfs.Journalfs.Journaled_fs) ())
       ());
  ignore
    (reg ~name:"unionfs" ~kind:Registry.File_system ~level:Level.Type_safe
       ~iface:Interface.fs_interface ~loc:(loc "unionfs" 330)
       ~description:"overlay FS on the modular interface"
       ~instance:(Kvfs.Iface.make (module Kfs.Unionfs) ())
       ());
  ignore
    (reg ~name:"cowfs" ~kind:Registry.File_system ~level:Level.Verified
       ~iface:Interface.fs_interface ~loc:(loc "cowfs" 280)
       ~description:"copy-on-write FS with snapshots, refinement-checked by kharness"
       ~instance:(Kvfs.Iface.make (module Kfs.Cowfs) ())
       ());
  let plain name kind fallback description level =
    ignore
      (reg ~name ~kind ~level
         ~iface:(Interface.v ~name ~version:1 ~supports:Level.Verified [])
         ~loc:(loc name fallback) ~description ())
  in
  plain "blockdev" Registry.Block 160 "simulated disk with crash semantics" Level.Type_safe;
  plain "buffer_cache" Registry.Block 250 "buffer_head cache, 16 state flags" Level.Type_safe;
  plain "journal" Registry.Block 300 "jbd2-style write-ahead journal" Level.Type_safe;
  plain "tcp" Registry.Network 230 "RFC793 connection state machine" Level.Type_safe;
  plain "socket" Registry.Network 180 "protocol-family dispatch" Level.Modular;
  plain "kmem" Registry.Memory 90 "manual allocator (unsafe by design)" Level.Unsafe;
  plain "sched" Registry.Scheduler 120 "deterministic cooperative scheduler" Level.Type_safe;
  plain "ebpf_vm" (Registry.Other "extension") 280
    "verified extension VM (forward-jump eBPF miniature)" Level.Type_safe;
  plain "mm" Registry.Memory 330 "virtual memory: vmas, demand paging, COW fork"
    Level.Type_safe;
  plain "lockdep" (Registry.Other "checker") 110 "lock-order (deadlock) validator"
    Level.Type_safe;
  plain "proc" Registry.Scheduler 150 "process layer: syscall surface over VFS+MM"
    Level.Type_safe;
  r
