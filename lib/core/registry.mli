(** The kernel's component registry.

    Subsystems are registered with an interface descriptor, a safety
    level, and (for mountable components) a live instance.  Callers reach
    components by name and interface only, which is what makes
    one-at-a-time replacement possible. *)

type kind =
  | File_system
  | Network
  | Block
  | Memory
  | Scheduler
  | Other of string

val kind_to_string : kind -> string

type entry = {
  name : string;
  kind : kind;
  level : Level.t;
  iface : Interface.t;
  loc : int;  (** implementation size, for the Figure-1 audit *)
  description : string;
  instance : Kvfs.Iface.instance option;
  supervisor : Ksim.Supervisor.t option;  (** oops firewall, when supervised *)
}

type t

type event = {
  at : int;
  subject : string;
  change : change;
}

and change =
  | Registered of Level.t
  | Replaced of { from_level : Level.t; to_level : Level.t }
  | Rejected of string
  | Oopsed  (** the component's supervisor contained a panic *)
  | Restarted of int  (** microreboot succeeded; carries the new epoch *)
  | Escalated  (** restart budget exhausted; component degraded *)

exception Incompatible of string

val create : unit -> t

val register :
  t ->
  name:string ->
  kind:kind ->
  level:Level.t ->
  iface:Interface.t ->
  ?loc:int ->
  ?description:string ->
  ?instance:Kvfs.Iface.instance ->
  ?supervisor:Ksim.Supervisor.t ->
  unit ->
  entry
(** @raise Incompatible on duplicate names or an interface that cannot
    host the claimed level.  When [supervisor] is given, its lifecycle is
    mirrored into the registry history: oopses, successful microreboots
    (with the new epoch), and escalations appear as {!Oopsed} /
    {!Restarted} / {!Escalated} events against the component. *)

val replace :
  t ->
  name:string ->
  level:Level.t ->
  iface:Interface.t ->
  ?loc:int ->
  ?description:string ->
  ?instance:Kvfs.Iface.instance ->
  ?supervisor:Ksim.Supervisor.t ->
  unit ->
  ( entry,
    [ `Incompatible_interface of string * string
    | `Would_lower_level of Level.t * Level.t
    | `Interface_cannot_host of Level.t ] )
  Stdlib.result
(** Swap a component's implementation.  The incremental ratchet: the
    replacement must speak a compatible interface and must not lower the
    safety level. *)

val find : t -> string -> entry option
val find_exn : t -> string -> entry
val all : t -> entry list
val by_kind : t -> kind -> entry list
val history : t -> event list

val health : t -> string -> Ksim.Supervisor.state option
(** The component's supervisor state ([None]: unknown component or
    unsupervised). *)

val level_counts : t -> (Level.t * int) list
val total_loc : t -> int
val loc_at_or_above : t -> Level.t -> int

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
