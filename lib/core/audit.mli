(** The Figure-1 audit: systems on the LoC-versus-safety plane, plus the
    kernel's own incremental progress from the live registry. *)

type row = {
  system : string;
  loc : int;
  level : Level.t;
  ours : bool;
}

val literature : row list
(** The landscape from the paper's Figure 1: Linux/FreeBSD (no
    guarantees), Singularity/Biscuit (type safety), Theseus/RedLeaf
    (ownership safety), seL4/Hyperkernel (functional verification). *)

val kernel_rows : Registry.t -> row list
val figure1 : Registry.t -> row list
val loc_band : int -> string
val render_figure1 : Format.formatter -> row list -> unit

type progress = {
  total_loc : int;
  at_or_above : (Level.t * int) list;
}

val progress : Registry.t -> progress
val render_progress : Format.formatter -> progress -> unit

(** {1 Reliability incidents}

    Lower layers (e.g. {!Kfs.Journalfs} remounting read-only after a
    persistent I/O failure) report operational incidents by emitting an
    ["incident"]-category event on {!Ksim.Ktrace.global}; this is the
    query surface over that audit trail. *)

type incident = {
  iseq : int;  (** trace sequence number — global ordering *)
  what : string;
}

val record_incident : string -> unit
(** Emit an ["incident"] event on the global trace. *)

val incidents : ?trace:Ksim.Ktrace.t -> unit -> incident list
(** All retained incidents, oldest first (default: the global trace). *)

val render_incidents : Format.formatter -> incident list -> unit
