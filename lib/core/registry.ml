(* The kernel's component registry.

   Every subsystem is registered with its interface descriptor, current
   safety level, and (for mountable components) a live instance.  Callers
   obtain components by name and interface only — never by concrete
   module — which is what makes one-at-a-time replacement possible. *)

type kind =
  | File_system
  | Network
  | Block
  | Memory
  | Scheduler
  | Other of string

let kind_to_string = function
  | File_system -> "file-system"
  | Network -> "network"
  | Block -> "block"
  | Memory -> "memory"
  | Scheduler -> "scheduler"
  | Other s -> s

type entry = {
  name : string;
  kind : kind;
  level : Level.t;
  iface : Interface.t;
  loc : int; (* implementation size, for the Figure-1 audit *)
  description : string;
  instance : Kvfs.Iface.instance option; (* live state for mountable components *)
  supervisor : Ksim.Supervisor.t option; (* oops firewall, when supervised *)
}

type t = {
  entries : (string, entry) Hashtbl.t;
  mutable history : event list; (* newest first *)
}

and event = {
  at : int; (* logical time: events since boot *)
  subject : string;
  change : change;
}

and change =
  | Registered of Level.t
  | Replaced of { from_level : Level.t; to_level : Level.t }
  | Rejected of string
  | Oopsed
  | Restarted of int (* the new epoch *)
  | Escalated

let create () = { entries = Hashtbl.create 16; history = [] }

let log t subject change =
  t.history <- { at = List.length t.history; subject; change } :: t.history

let history t = List.rev t.history

exception Incompatible of string

(* The supervisor's lifecycle becomes registry history: every oops,
   successful microreboot, and escalation to Failed is logged against
   the component, so the audit trail shows not just what was replaced
   but what crashed and came back. *)
let observe_supervisor t name sup =
  Ksim.Supervisor.set_observer sup (fun _from to_ ->
      match to_ with
      | Ksim.Supervisor.Oopsed -> log t name Oopsed
      | Ksim.Supervisor.Healthy -> log t name (Restarted (Ksim.Supervisor.epoch sup))
      | Ksim.Supervisor.Failed -> log t name Escalated
      | Ksim.Supervisor.Restarting -> ())

let register t ~name ~kind ~level ~iface ?(loc = 0) ?(description = "") ?instance ?supervisor
    () =
  if Hashtbl.mem t.entries name then raise (Incompatible (name ^ ": already registered"));
  if not (Interface.admits iface level) then
    raise (Incompatible (Fmt.str "%s: interface %s cannot host level %a" name
                           iface.Interface.iface_name Level.pp level));
  let entry = { name; kind; level; iface; loc; description; instance; supervisor } in
  Hashtbl.replace t.entries name entry;
  log t name (Registered level);
  Option.iter (observe_supervisor t name) supervisor;
  entry

let find t name = Hashtbl.find_opt t.entries name

let find_exn t name =
  match find t name with
  | Some e -> e
  | None -> invalid_arg ("Registry: unknown component " ^ name)

let all t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
  |> List.sort (fun a b -> String.compare a.name b.name)

let by_kind t kind = List.filter (fun e -> e.kind = kind) (all t)

(* Replace a component's implementation.  The replacement must speak a
   compatible interface and must not lower the safety level — the
   incremental ratchet. *)
let replace t ~name ~level ~iface ?loc ?description ?instance ?supervisor () =
  let current = find_exn t name in
  if not (Interface.compatible ~provided:iface ~required:current.iface) then begin
    log t name (Rejected "incompatible interface");
    Error (`Incompatible_interface (current.iface.Interface.iface_name, iface.Interface.iface_name))
  end
  else if Level.rank level < Level.rank current.level then begin
    log t name (Rejected "would lower safety level");
    Error (`Would_lower_level (current.level, level))
  end
  else if not (Interface.admits iface level) then begin
    log t name (Rejected "interface cannot host level");
    Error (`Interface_cannot_host level)
  end
  else begin
    let entry =
      {
        current with
        level;
        iface;
        loc = Option.value loc ~default:current.loc;
        description = Option.value description ~default:current.description;
        instance = (match instance with Some _ -> instance | None -> current.instance);
        supervisor = (match supervisor with Some _ -> supervisor | None -> current.supervisor);
      }
    in
    Hashtbl.replace t.entries name entry;
    log t name (Replaced { from_level = current.level; to_level = level });
    (match supervisor with Some sup -> observe_supervisor t name sup | None -> ());
    Ok entry
  end

let health t name =
  match find t name with
  | Some { supervisor = Some sup; _ } -> Some (Ksim.Supervisor.state sup)
  | Some { supervisor = None; _ } | None -> None

let level_counts t =
  List.fold_left
    (fun acc e ->
      let n = try List.assoc e.level acc with Not_found -> 0 in
      (e.level, n + 1) :: List.remove_assoc e.level acc)
    [] (all t)
  |> List.sort (fun (a, _) (b, _) -> Level.compare a b)

let total_loc t = List.fold_left (fun acc e -> acc + e.loc) 0 (all t)

let loc_at_or_above t level =
  List.fold_left
    (fun acc e -> if Level.( >= ) e.level level then acc + e.loc else acc)
    0 (all t)

let pp_entry ppf e =
  Fmt.pf ppf "%-16s %-12s %-14s %6d LoC  %s" e.name (kind_to_string e.kind)
    (Level.to_string e.level) e.loc e.description

let pp ppf t = Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_entry) (all t)
