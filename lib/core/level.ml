(* The safety ladder of Figure 1 and the bug classes each rung prevents.

   This encoding *is* the paper's core claim: each step up the ladder
   makes whole classes of bugs structurally impossible, and the class
   assignment below is the one used by the CVE categorization (42% type+
   ownership, +35% functional correctness, 23% other). *)

type t =
  | Unsafe (* step 0: today's C module *)
  | Modular (* step 1: called only through a modular interface *)
  | Type_safe (* step 2: no void pointers, no error-pointer casts *)
  | Ownership_safe (* step 3: checked memory/thread ownership *)
  | Verified (* step 4: refinement-checked against a specification *)

let all = [ Unsafe; Modular; Type_safe; Ownership_safe; Verified ]

let rank = function
  | Unsafe -> 0
  | Modular -> 1
  | Type_safe -> 2
  | Ownership_safe -> 3
  | Verified -> 4

let of_rank = function
  | 0 -> Some Unsafe
  | 1 -> Some Modular
  | 2 -> Some Type_safe
  | 3 -> Some Ownership_safe
  | 4 -> Some Verified
  | _ -> None

let to_string = function
  | Unsafe -> "unsafe"
  | Modular -> "modular"
  | Type_safe -> "type-safe"
  | Ownership_safe -> "ownership-safe"
  | Verified -> "verified"

let pp ppf level = Fmt.string ppf (to_string level)
let compare a b = Stdlib.compare (rank a) (rank b)
let ( >= ) a b = rank a >= rank b

let of_string s = List.find_opt (fun level -> to_string level = s) all

(* Bug classes, following the paper's CWE buckets. *)
type bug_class =
  | Type_confusion
  | Null_dereference
  | Use_after_free
  | Double_free
  | Buffer_overflow
  | Data_race
  | Memory_leak
  | Semantic  (** wrong results within defined behaviour *)
  | Crash_inconsistency  (** lost/torn updates across a crash *)
  | Numeric  (** integer overflow/underflow: the paper's "other" bucket *)
  | Design  (** weak access restriction, info exposure: also "other" *)

let all_bug_classes =
  [ Type_confusion; Null_dereference; Use_after_free; Double_free; Buffer_overflow;
    Data_race; Memory_leak; Semantic; Crash_inconsistency; Numeric; Design ]

let bug_class_to_string = function
  | Type_confusion -> "type-confusion"
  | Null_dereference -> "null-dereference"
  | Use_after_free -> "use-after-free"
  | Double_free -> "double-free"
  | Buffer_overflow -> "buffer-overflow"
  | Data_race -> "data-race"
  | Memory_leak -> "memory-leak"
  | Semantic -> "semantic"
  | Crash_inconsistency -> "crash-inconsistency"
  | Numeric -> "numeric"
  | Design -> "design"

(* The minimum rung at which a bug class becomes impossible; [None] means
   the roadmap does not claim it (the paper's remaining 23%). *)
let prevented_at = function
  | Type_confusion | Null_dereference -> Some Type_safe
  | Use_after_free | Double_free | Buffer_overflow | Data_race | Memory_leak ->
      Some Ownership_safe
  | Semantic | Crash_inconsistency -> Some Verified
  | Numeric | Design -> None

let bug_class_of_string s =
  List.find_opt (fun bug -> bug_class_to_string bug = s) all_bug_classes

let prevents level bug =
  match prevented_at bug with
  | Some required -> Stdlib.( >= ) (rank level) (rank required)
  | None -> false

(* Every class a rung rules out — what a static checker must enforce
   against a module claiming that rung. *)
let prevented_classes level = List.filter (prevents level) all_bug_classes
