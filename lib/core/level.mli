(** The safety ladder of Figure 1 and the bug classes each rung prevents.

    This encoding is the paper's core claim: each roadmap step makes
    whole classes of bugs structurally impossible, and the class
    assignment drives the CVE categorization (≈42% prevented by type +
    ownership safety, +35% by functional correctness, 23% other). *)

type t =
  | Unsafe  (** step 0: today's C module *)
  | Modular  (** step 1: called only through a modular interface *)
  | Type_safe  (** step 2: no void pointers, no error-pointer casts *)
  | Ownership_safe  (** step 3: checked memory/thread ownership *)
  | Verified  (** step 4: refinement-checked against a specification *)

val all : t list
val rank : t -> int
val of_rank : int -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int

val ( >= ) : t -> t -> bool
(** Level dominance: [a >= b] when [a] offers at least [b]'s guarantees. *)

val of_string : string -> t option
(** Inverse of {!to_string}, for report/baseline round-trips. *)

type bug_class =
  | Type_confusion
  | Null_dereference
  | Use_after_free
  | Double_free
  | Buffer_overflow
  | Data_race
  | Memory_leak
  | Semantic  (** wrong results within defined behaviour *)
  | Crash_inconsistency  (** lost/torn updates across a crash *)
  | Numeric  (** integer overflow/underflow — the paper's "other" bucket *)
  | Design  (** weak access restriction, info exposure — also "other" *)

val all_bug_classes : bug_class list
val bug_class_to_string : bug_class -> string

val prevented_at : bug_class -> t option
(** Minimum rung making the class impossible; [None] = beyond the
    roadmap's scope (the remaining 23%). *)

val prevents : t -> bug_class -> bool

val bug_class_of_string : string -> bug_class option
(** Inverse of {!bug_class_to_string}. *)

val prevented_classes : t -> bug_class list
(** Every class the rung rules out — the set a static checker must
    enforce against a module claiming that level. *)
