(* The Figure-1 audit: where systems sit on the LoC-versus-safety plane.

   The literature rows reproduce the figure's landscape (Linux and
   FreeBSD at tens of millions of unsafe lines; Singularity and Biscuit
   type-safe at hundreds of thousands; Theseus and RedLeaf ownership-safe;
   seL4 and Hyperkernel verified at thousands); the kernel rows come from
   the live registry, tracing the "Safe Linux — incremental progress"
   arrow as migrations land. *)

type row = {
  system : string;
  loc : int;
  level : Level.t;
  ours : bool;
}

let literature =
  [
    { system = "Linux"; loc = 30_000_000; level = Level.Unsafe; ours = false };
    { system = "FreeBSD"; loc = 8_000_000; level = Level.Unsafe; ours = false };
    { system = "Singularity"; loc = 300_000; level = Level.Type_safe; ours = false };
    { system = "Biscuit"; loc = 90_000; level = Level.Type_safe; ours = false };
    { system = "Theseus"; loc = 38_000; level = Level.Ownership_safe; ours = false };
    { system = "RedLeaf"; loc = 30_000; level = Level.Ownership_safe; ours = false };
    { system = "seL4"; loc = 10_000; level = Level.Verified; ours = false };
    { system = "Hyperkernel"; loc = 7_000; level = Level.Verified; ours = false };
  ]

let kernel_rows registry =
  List.map
    (fun (e : Registry.entry) ->
      { system = "sim:" ^ e.Registry.name; loc = e.Registry.loc; level = e.Registry.level; ours = true })
    (Registry.all registry)

let figure1 registry = literature @ kernel_rows registry

let loc_band loc =
  if loc >= 10_000_000 then "tens of millions"
  else if loc >= 1_000_000 then "millions"
  else if loc >= 100_000 then "hundreds of thousands"
  else if loc >= 10_000 then "tens of thousands"
  else "thousands"

let render_figure1 ppf rows =
  Fmt.pf ppf "Figure 1: safety vs. lines of code@.";
  Fmt.pf ppf "%-20s %-22s %-16s %s@." "system" "LoC band" "safety" "";
  Fmt.pf ppf "%s@." (String.make 72 '-');
  let sorted =
    List.sort
      (fun a b ->
        match Level.compare a.level b.level with 0 -> compare b.loc a.loc | c -> c)
      rows
  in
  List.iter
    (fun r ->
      Fmt.pf ppf "%-20s %-22s %-16s %s@." r.system (loc_band r.loc)
        (Level.to_string r.level)
        (if r.ours then "<- this kernel" else ""))
    sorted

(* Roadmap progress as the share of the kernel's code at or above each
   rung — the quantity the incremental path improves step by step. *)
type progress = {
  total_loc : int;
  at_or_above : (Level.t * int) list;
}

let progress registry =
  let total_loc = Registry.total_loc registry in
  {
    total_loc;
    at_or_above =
      List.map (fun level -> (level, Registry.loc_at_or_above registry level)) Level.all;
  }

let render_progress ppf p =
  Fmt.pf ppf "kernel code at or above each safety rung (total %d LoC)@." p.total_loc;
  List.iter
    (fun (level, loc) ->
      let pct = if p.total_loc = 0 then 0. else 100. *. float_of_int loc /. float_of_int p.total_loc in
      Fmt.pf ppf "  %-16s %6d LoC  %5.1f%%@." (Level.to_string level) loc pct)
    p.at_or_above

(* Reliability incidents -----------------------------------------------------

   Components below this library (e.g. Journalfs degrading to read-only)
   cannot call into safeos_core without a dependency cycle, so the
   contract is the ["incident"] category on the global trace: they emit,
   we collect.  This is the audit trail the operator reads after a fault
   campaign. *)

type incident = {
  iseq : int;
  what : string;
}

let incident_category = "incident"

let record_incident what = Ksim.Ktrace.emit Ksim.Ktrace.global ~category:incident_category what

let incidents ?(trace = Ksim.Ktrace.global) () =
  Ksim.Ktrace.events trace
  |> List.filter_map (fun (e : Ksim.Ktrace.event) ->
         if String.equal e.category incident_category then
           Some { iseq = e.seq; what = e.message }
         else None)

let render_incidents ppf is =
  Fmt.pf ppf "reliability incidents: %d@." (List.length is);
  List.iter (fun i -> Fmt.pf ppf "  [%06d] %s@." i.iseq i.what) is
