(** The block I/O interface the rest of the kernel programs against.

    A first-class record so that layers stack at runtime:
    [Blockdev.io dev] is the raw device, [Flakydev.io] wraps any [t] with
    injected faults, [Resilient.io] wraps any [t] with retries.  All
    three operations are fallible — a layered path can fail even a
    [flush] (e.g. while the device is down). *)

type t = {
  nblocks : int;
  block_size : int;
  read : int -> bytes Ksim.Errno.r;
  write : int -> bytes -> unit Ksim.Errno.r;
  flush : unit -> unit Ksim.Errno.r;
}
