(** The block I/O interface the rest of the kernel programs against.

    A first-class record so that layers stack at runtime:
    [Blockdev.io dev] is the raw device, [Flakydev.io] wraps any [t] with
    injected faults, [Resilient.io] wraps any [t] with retries,
    [Wcache.io] interposes a volatile write-back cache.  All operations
    are fallible — a layered path can fail even a [flush] (e.g. while
    the device is down).

    {1 Durability contract}

    An acknowledged [write] is {b volatile}: it may sit in a write-back
    cache (the device's own pending set, or a [Wcache] layer) and be
    lost — or land {e out of order} with respect to other unflushed
    writes — if the system crashes.  Nothing about a successful [write]
    return implies the data reached stable media.

    [flush] is a {b full barrier}: when it returns [Ok ()], every write
    acknowledged before the flush is durable, and is ordered before any
    write issued after the flush.  Crash-consistency therefore belongs
    to the caller: a client that needs "A durable before B" must flush
    between them, and a client that acks durability to {e its} caller
    (e.g. journalfs fsync) must flush first.

    [write_fua], when present, is a forced-unit-access write — durable
    on ack but ordered only with respect to itself; it does not drain
    other pending writes.  [fua] is the compat shim for stacking: it
    uses the native variant when the layer provides one and otherwise
    falls back to [write] + [flush], which is strictly stronger. *)

type t = {
  nblocks : int;
  block_size : int;
  read : int -> bytes Ksim.Errno.r;
  write : int -> bytes -> unit Ksim.Errno.r;
  flush : unit -> unit Ksim.Errno.r;
  write_fua : (int -> bytes -> unit Ksim.Errno.r) option;
      (** Native FUA write, durable on ack; [None] if the layer only
          offers the write/flush pair.  Use {!fua} rather than calling
          this directly. *)
}

val fua : t -> int -> bytes -> unit Ksim.Errno.r
(** [fua t blkno data] writes durably: the native [write_fua] when the
    layer has one, otherwise [write] followed by a full [flush]. *)
