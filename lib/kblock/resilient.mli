(** The retrying block layer: bounded attempts, deterministic exponential
    backoff on a simulated clock, and a permanent-failure verdict once the
    budget is exhausted.

    Transient errors ([EIO], [EAGAIN], [ENOMEM]) retry up to
    [max_attempts] total attempts, sleeping
    [backoff_base * 2^(attempt-1)] simulated ns (capped at [backoff_cap])
    between attempts.  Non-transient errors fail immediately.  Exhausting
    the budget propagates the error, bumps {!permanent_failures}, and
    emits a ["resilient"] trace event — the signal the file system uses to
    remount read-only. *)

type t

val create :
  ?max_attempts:int ->
  ?backoff_base:int ->
  ?backoff_cap:int ->
  ?jitter:float ->
  ?seed:int ->
  ?trace:Ksim.Ktrace.t ->
  Io.t ->
  t
(** Defaults: 4 attempts, 100 ns base, 10_000 ns cap, no jitter,
    {!Ksim.Ktrace.global}.  [jitter] (in [0,1]) stretches each backoff
    sleep by up to [jitter * backoff] extra ns drawn from a per-instance
    SplitMix64 stream seeded with [seed] (default 0), so concurrent
    retriers with distinct seeds do not retry in lockstep while
    {!simulated_ns} stays exactly replayable.
    @raise Invalid_argument on [max_attempts < 1] or jitter outside
    [0,1]. *)

val io : t -> Io.t

val read : t -> int -> bytes Ksim.Errno.r

val write : t -> int -> bytes -> unit Ksim.Errno.r
(** Retried write.  Retrying does not strengthen the durability contract:
    a successful write is still cache-volatile until the caller flushes —
    the retry wrapper forwards the ordering obligation instead of
    discharging it (kdur R18 polices wrappers that drop it).
    @orders_after: t *)

val flush : t -> unit Ksim.Errno.r
(** Retried full barrier: on [Ok] everything previously written through
    this stack is on stable media.
    @flushes: t *)

val write_fua : t -> int -> bytes -> unit Ksim.Errno.r
(** FUA write through the same retry/backoff/accounting path as
    {!write} and {!flush} (delegates to {!Io.fua} on the base): on [Ok]
    this block — and, via the flush fallback, everything before it — is
    durable.
    @durable *)

val ops : t -> int
(** Logical operations attempted (not counting retries). *)

val retries : t -> int
(** Extra attempts beyond the first, across all ops. *)

val recovered_ops : t -> int
(** Ops that failed at least once and then succeeded. *)

val permanent_failures : t -> int
(** Ops whose retry budget was exhausted (the permanent verdict). *)

val simulated_ns : t -> int
(** Total simulated backoff time: deterministic for a given schedule. *)

val publish : t -> Ksim.Kstats.t -> string -> unit
(** Add retry accounting into a {!Ksim.Kstats} under [prefix ^ ".ops"],
    [".retries"], [".recovered"], [".permanent"]. *)
