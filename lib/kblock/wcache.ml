(* The volatile write-back cache layer: barrier semantics made explicit.

   [write] acknowledges into a bounded in-cache dirty set without
   touching the base; when the set overflows, a seeded writeback evicts a
   victim to the base (still volatile there — the base has its own
   pending set).  [flush] is the full barrier: it drains the dirty set
   oldest-first, flushes the base, and only then is everything written
   before the flush durable.

   Crash surface.  The cache keeps an ordered log of every write since
   the last *completed* flush (the open "barrier epoch") plus the closed
   epochs since the consumer last folded them away ([take_durable]).  A
   crash anywhere in that window lands between two barriers: everything
   before some completed flush is durable, and of the epoch that was open
   at the moment of the crash an arbitrary subset — in arbitrary order —
   may have reached media.  [crash_frames] materializes exactly those
   (durable-prefix, volatile-set) pairs, and [crash_residues] samples
   write sequences from them under [~limit]: exhaustive subsets (plus
   permutations) for small volatile sets, and the structured corners —
   nothing, everything, prefixes, suffixes, single-dropped — plus seeded
   subset/shuffle draws otherwise.  Suffixes are the signature of
   reordering: the late writes landed, the early ones did not, which is
   precisely the image a missing barrier exposes.  Crash is therefore no
   longer a prefix of the write sequence.

   FUA writes bypass the dirty set (durable on ack, via the base's FUA
   path) and are applied first within their frame when residues are
   built — a mild over-approximation if a later volatile write to the
   same block also lands.

   Barrier-discipline audit (ALICE-style).  Reading back a block whose
   newest content is still unflushed taints it; issuing a write to a
   different block while taints are outstanding — i.e. deriving new
   content from data that might not survive a crash, without an
   intervening barrier — records an ordering violation and emits an
   "incident" trace event, feeding the Audit/UNSOUND reconciliation.

   Failpoints (registered disabled when a registry is supplied):
     <name>.flush-dropped      flush lies: returns Ok without draining
                               or closing the epoch (a lying drive)
     <name>.writeback-reorder  capacity eviction picks a seeded random
                               victim instead of the oldest *)

type entry = {
  wseq : int;
  blkno : int;
  data : string;
  fua : bool;
}

type frame = {
  durable : entry list; (* oldest first; definitely on media *)
  volatile : entry list; (* oldest first; any subset, any order *)
}

type violation = {
  v_blkno : int; (* the block read back while unflushed *)
  v_read_seq : int; (* wseq of the unflushed content that was read *)
  v_write_blkno : int; (* the dependent write issued without a barrier *)
  v_write_seq : int;
}

type t = {
  name : string;
  base : Io.t;
  capacity : int;
  fp : Ksim.Failpoint.t option;
  rng : Ksim.Rng.t; (* writeback victim selection *)
  seed : int;
  trace : Ksim.Ktrace.t;
  mutable dirty : entry list; (* oldest first, at most one per blkno *)
  mutable epoch : entry list; (* newest first; the open barrier epoch *)
  mutable history : entry list list; (* closed epochs, oldest first *)
  mutable next_seq : int;
  tainted : (int, int) Hashtbl.t; (* blkno -> wseq read back unflushed *)
  mutable nviolations : int;
  mutable violations : violation list; (* newest first, bounded *)
  mutable writes : int;
  mutable reads : int;
  mutable cache_hits : int;
  mutable flushes : int;
  mutable flush_drops : int;
  mutable writebacks : int;
  mutable reordered_writebacks : int;
  mutable writeback_errors : int;
  mutable fua_writes : int;
}

let site t kind = t.name ^ "." ^ kind
let flush_dropped_site t = site t "flush-dropped"
let writeback_reorder_site t = site t "writeback-reorder"

(* Every live cache, for the KSIM_WCACHE_EXPORT at_exit dump — same
   registry idiom as [Kmem.all_heaps]. *)
let all_caches : t list ref = ref []

let create ?(name = "wcache") ?(capacity = 32) ?fp ?(seed = 0)
    ?(trace = Ksim.Ktrace.global) base =
  if capacity < 1 then invalid_arg "Wcache.create: capacity";
  let t =
    {
      name;
      base;
      capacity;
      fp;
      rng = Ksim.Rng.of_int (seed + Hashtbl.hash name);
      seed;
      trace;
      dirty = [];
      epoch = [];
      history = [];
      next_seq = 0;
      tainted = Hashtbl.create 16;
      nviolations = 0;
      violations = [];
      writes = 0;
      reads = 0;
      cache_hits = 0;
      flushes = 0;
      flush_drops = 0;
      writebacks = 0;
      reordered_writebacks = 0;
      writeback_errors = 0;
      fua_writes = 0;
    }
  in
  (match fp with
  | Some fp ->
      ignore (Ksim.Failpoint.register fp (flush_dropped_site t));
      ignore (Ksim.Failpoint.register fp (writeback_reorder_site t))
  | None -> ());
  all_caches := t :: !all_caches;
  t

let name t = t.name
let dirty_blocks t = List.length t.dirty
let unflushed_writes t = List.length t.epoch

let should_fail t kind =
  match t.fp with None -> false | Some fp -> Ksim.Failpoint.should_fail fp (site t kind)

let in_range t blkno = blkno >= 0 && blkno < t.base.Io.nblocks

(* One capacity eviction: write the victim back to the base (where it is
   still volatile — the barrier has not happened).  Under the
   writeback-reorder failpoint the victim is a seeded random dirty entry
   rather than the oldest, modelling a cache that destages out of order. *)
let evict_one t =
  match t.dirty with
  | [] -> ()
  | oldest :: _ ->
      let reorder = should_fail t "writeback-reorder" in
      let victim =
        if reorder && List.length t.dirty > 1 then Ksim.Rng.pick t.rng t.dirty
        else oldest
      in
      (match t.base.Io.write victim.blkno (Bytes.of_string victim.data) with
      | Ok () ->
          t.dirty <- List.filter (fun e -> e.wseq <> victim.wseq) t.dirty;
          t.writebacks <- t.writebacks + 1;
          if victim.wseq <> oldest.wseq then
            t.reordered_writebacks <- t.reordered_writebacks + 1
      | Error _ ->
          (* Leave the victim dirty (temporarily over capacity); a later
             write or the next flush retries. *)
          t.writeback_errors <- t.writeback_errors + 1)

let record_violation t ~v_blkno ~v_read_seq ~v_write_blkno ~v_write_seq =
  t.nviolations <- t.nviolations + 1;
  if List.length t.violations < 64 then
    t.violations <-
      { v_blkno; v_read_seq; v_write_blkno; v_write_seq } :: t.violations;
  if t.nviolations <= 8 then
    Ksim.Ktrace.emitf t.trace ~category:"incident"
      "wcache %s: barrier-discipline violation: block %d read back unflushed \
       (wseq %d), then block %d written (wseq %d) without an intervening flush"
      t.name v_blkno v_read_seq v_write_blkno v_write_seq

(* A write while tainted reads are outstanding: the new content may
   depend on data that a crash can still lose — ALICE's ordering bug.
   Overwriting the tainted block itself is not a dependency. *)
let check_ordering t blkno wseq =
  if Hashtbl.length t.tainted > 0 then begin
    let flagged =
      Hashtbl.fold
        (fun b read_seq acc -> if b <> blkno then (b, read_seq) :: acc else acc)
        t.tainted []
      |> List.sort compare
    in
    List.iter
      (fun (b, read_seq) ->
        record_violation t ~v_blkno:b ~v_read_seq:read_seq ~v_write_blkno:blkno
          ~v_write_seq:wseq;
        Hashtbl.remove t.tainted b)
      flagged
  end

let write t blkno data =
  if not (in_range t blkno) then Error Ksim.Errno.EIO
  else if Bytes.length data <> t.base.Io.block_size then Error Ksim.Errno.EINVAL
  else begin
    t.writes <- t.writes + 1;
    let e = { wseq = t.next_seq; blkno; data = Bytes.to_string data; fua = false } in
    t.next_seq <- t.next_seq + 1;
    check_ordering t blkno e.wseq;
    t.epoch <- e :: t.epoch;
    t.dirty <- List.filter (fun d -> d.blkno <> blkno) t.dirty @ [ e ];
    if List.length t.dirty > t.capacity then evict_one t;
    Ok ()
  end

let write_fua t blkno data =
  if not (in_range t blkno) then Error Ksim.Errno.EIO
  else if Bytes.length data <> t.base.Io.block_size then Error Ksim.Errno.EINVAL
  else
    match Io.fua t.base blkno data with
    | Error _ as e -> e
    | Ok () ->
        t.writes <- t.writes + 1;
        t.fua_writes <- t.fua_writes + 1;
        let e = { wseq = t.next_seq; blkno; data = Bytes.to_string data; fua = true } in
        t.next_seq <- t.next_seq + 1;
        check_ordering t blkno e.wseq;
        t.epoch <- e :: t.epoch;
        (* durable now: anything cached for this block is superseded *)
        t.dirty <- List.filter (fun d -> d.blkno <> blkno) t.dirty;
        Ok ()

(* Is [blkno]'s newest content still unflushed (in the open epoch)? *)
let newest_unflushed t blkno =
  List.find_opt (fun e -> e.blkno = blkno && not e.fua) t.epoch

let taint t blkno =
  match newest_unflushed t blkno with
  | Some e -> Hashtbl.replace t.tainted blkno e.wseq
  | None -> ()

let read t blkno =
  if not (in_range t blkno) then Error Ksim.Errno.EIO
  else begin
    t.reads <- t.reads + 1;
    match List.find_opt (fun e -> e.blkno = blkno) (List.rev t.dirty) with
    | Some e ->
        t.cache_hits <- t.cache_hits + 1;
        taint t blkno;
        Ok (Bytes.of_string e.data)
    | None -> (
        match t.base.Io.read blkno with
        | Ok b ->
            (* Written back but not yet barriered: still unflushed. *)
            taint t blkno;
            Ok b
        | Error _ as e -> e)
  end

let flush t =
  t.flushes <- t.flushes + 1;
  if should_fail t "flush-dropped" then begin
    (* The lying drive: ack the barrier without doing the work.  Nothing
       is lost yet — the dirty set and the open epoch survive — but
       nothing became durable either. *)
    t.flush_drops <- t.flush_drops + 1;
    Ok ()
  end
  else begin
    let rec drain = function
      | [] -> Ok ()
      | e :: rest -> (
          match t.base.Io.write e.blkno (Bytes.of_string e.data) with
          | Ok () ->
              t.dirty <- List.filter (fun d -> d.wseq <> e.wseq) t.dirty;
              t.writebacks <- t.writebacks + 1;
              drain rest
          | Error _ as err -> err)
    in
    match drain t.dirty with
    | Error _ as e -> e
    | Ok () -> (
        match t.base.Io.flush () with
        | Error _ as e -> e
        | Ok () ->
            (* Barrier complete: the open epoch closes. *)
            if t.epoch <> [] then t.history <- t.history @ [ List.rev t.epoch ];
            t.epoch <- [];
            Hashtbl.reset t.tainted;
            Ok ())
  end

(* The canonical single crash: every unflushed write is gone.  The base
   keeps its own pending set; pair with [Blockdev.crash] for full loss. *)
let crash t =
  t.dirty <- [];
  t.epoch <- [];
  t.history <- [];
  Hashtbl.reset t.tainted

let take_durable t =
  let d = List.concat t.history in
  t.history <- [];
  d

let crash_frames t =
  let rec go durable = function
    | [] -> [ { durable = List.rev durable; volatile = List.rev t.epoch } ]
    | ep :: rest ->
        { durable = List.rev durable; volatile = ep }
        :: go (List.rev_append ep durable) rest
  in
  go [] t.history

(* Candidate landing orders for one frame's volatile set, best corners
   first.  [n <= 4]: every subset in write order, plus every permutation
   of the full set when [n <= 3].  Larger sets: nothing, everything,
   prefixes, suffixes (the reordering signature), single-dropped, then
   seeded subset/shuffle draws. *)
let volatile_candidates rng ~want vol =
  let vol = List.filter (fun e -> not e.fua) vol in
  let n = List.length vol in
  if n = 0 then [ [] ]
  else if n <= 4 then begin
    let arr = Array.of_list vol in
    let subsets = ref [] in
    for mask = 0 to (1 lsl n) - 1 do
      let s = ref [] in
      for i = n - 1 downto 0 do
        if mask land (1 lsl i) <> 0 then s := arr.(i) :: !s
      done;
      subsets := !s :: !subsets
    done;
    let perms =
      if n >= 2 && n <= 3 then
        (* all reorderings of the full set, identity excluded *)
        let rec permutations = function
          | [] -> [ [] ]
          | l ->
              List.concat_map
                (fun x ->
                  List.map
                    (fun p -> x :: p)
                    (permutations (List.filter (fun y -> y.wseq <> x.wseq) l)))
                l
        in
        List.filter (fun p -> p <> vol) (permutations vol)
      else []
    in
    List.rev !subsets @ perms
  end
  else begin
    let take k = List.filteri (fun i _ -> i < k) vol in
    let drop k = List.filteri (fun i _ -> i >= k) vol in
    let prefixes = List.init (n - 1) (fun i -> take (i + 1)) in
    let suffixes = List.init (n - 1) (fun i -> drop (i + 1)) in
    let dropped_one =
      List.init n (fun i -> List.filteri (fun j _ -> j <> i) vol)
    in
    let seeded =
      List.init (max 0 want) (fun _ ->
          let kept = List.filter (fun _ -> Ksim.Rng.bool rng) vol in
          Ksim.Rng.shuffle rng kept)
    in
    (* Suffixes and single-dropped first: late-writes-without-early is
       the image only a missing barrier can expose, while in-order
       prefixes are the tame states any crash model already covers. *)
    ([] :: vol :: suffixes) @ dropped_one @ prefixes @ seeded
  end

(* Digest of the final per-block content a residue produces, for dedup. *)
let residue_digest durable_digest residue =
  let tbl = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace tbl e.blkno e.data) residue;
  let rows =
    Hashtbl.fold (fun b d acc -> (b, d) :: acc) tbl [] |> List.sort compare
  in
  Digest.string
    (durable_digest ^ String.concat "|"
       (List.map (fun (b, d) -> string_of_int b ^ ":" ^ Digest.string d) rows))

let crash_residues t ~limit =
  if limit <= 0 then []
  else begin
    let rng = Ksim.Rng.of_int (t.seed + (31 * t.next_seq) + 17) in
    let frames = crash_frames t in
    let per_frame =
      List.map
        (fun f ->
          let fuas = List.filter (fun e -> e.fua) f.volatile in
          let durable_digest =
            Digest.string
              (String.concat ";"
                 (List.map (fun e -> string_of_int e.wseq) f.durable))
          in
          let cands = volatile_candidates rng ~want:limit f.volatile in
          (f, fuas, durable_digest, Array.of_list cands))
        frames
    in
    let seen = Hashtbl.create 64 in
    let out = ref [] in
    let nout = ref 0 in
    let idx = ref 0 in
    let progress = ref true in
    (* Round-robin across frames so early corners of every epoch are
       sampled before deep seeded draws of any one epoch. *)
    while !nout < limit && !progress do
      progress := false;
      List.iter
        (fun (f, fuas, ddig, cands) ->
          if !nout < limit && !idx < Array.length cands then begin
            progress := true;
            let residue = f.durable @ fuas @ cands.(!idx) in
            let dig = residue_digest ddig cands.(!idx) in
            if not (Hashtbl.mem seen (dig, ddig)) then begin
              Hashtbl.add seen (dig, ddig) ();
              out := residue :: !out;
              incr nout
            end
          end)
        per_frame;
      incr idx
    done;
    List.rev !out
  end

let audit t = List.rev t.violations
let ordering_violations t = t.nviolations
let writes t = t.writes
let reads t = t.reads
let cache_hits t = t.cache_hits
let flushes t = t.flushes
let flush_drops t = t.flush_drops
let writebacks t = t.writebacks
let reordered_writebacks t = t.reordered_writebacks
let writeback_errors t = t.writeback_errors
let fua_writes t = t.fua_writes

let publish t stats prefix =
  Ksim.Kstats.incr ~by:t.writes stats (prefix ^ ".writes");
  Ksim.Kstats.incr ~by:t.writebacks stats (prefix ^ ".writebacks");
  Ksim.Kstats.incr ~by:t.reordered_writebacks stats (prefix ^ ".reordered");
  Ksim.Kstats.incr ~by:t.flushes stats (prefix ^ ".flushes");
  Ksim.Kstats.incr ~by:t.flush_drops stats (prefix ^ ".flush-drops");
  Ksim.Kstats.incr ~by:t.nviolations stats (prefix ^ ".ordering-violations")

let io t : Io.t =
  {
    Io.nblocks = t.base.Io.nblocks;
    block_size = t.base.Io.block_size;
    read = read t;
    write = write t;
    flush = (fun () -> flush t);
    write_fua = Some (write_fua t);
  }

(* Runtime audit export ----------------------------------------------------- *)

(* One "name\tblkno\tread_seq\twrite_blkno\twrite_seq" line per recorded
   ordering violation, the wire format klint's kdur reconciliation
   ([--wcache-violations]) consumes.  Append-mode so every test binary in
   a suite contributes to the same file, mirroring
   [Kmem.append_events_to_file]. *)
let append_violations_to_file t ~path =
  match audit t with
  | [] -> ()
  | violations ->
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          let buf = Buffer.create 256 in
          List.iter
            (fun v ->
              Buffer.add_string buf
                (Printf.sprintf "%s\t%d\t%d\t%d\t%d\n" t.name v.v_blkno v.v_read_seq
                   v.v_write_blkno v.v_write_seq))
            violations;
          output_string oc (Buffer.contents buf))

let export_env = "KSIM_WCACHE_EXPORT"

(* When [KSIM_WCACHE_EXPORT] names a file, every process dumps each
   cache's recorded audit violations there on exit: `scripts/ci.sh` sets
   it across `dune runtest` so kdur can check its static R16 findings
   against every barrier-discipline violation the suite actually
   provoked. *)
let () =
  match Sys.getenv_opt export_env with
  | Some path when path <> "" ->
      at_exit (fun () ->
          List.iter
            (fun t -> try append_violations_to_file t ~path with Sys_error _ -> ())
            !all_caches)
  | Some _ | None -> ()
