(** A dm-flakey-style fault-injecting block layer over any {!Io.t}.

    Failure model, driven by three failpoints in the given
    {!Ksim.Failpoint} registry (replayable from the registry seed):

    - [<name>.read-eio]: transient [EIO] on read, nothing touched.
    - [<name>.write-eio]: transient [EIO] on write, the write is dropped
      — a multi-block logical write that draws this mid-sequence tears
      between blocks.
    - [<name>.torn-write]: a random-length {e prefix} of the new data
      lands over the old block content, then [EIO] — the intra-block torn
      write journal checksums must catch.

    Orthogonally, availability windows ({!set_availability}): [up] I/O
    ops working, then [down] ops failing everything including flush,
    repeating, counted per operation. *)

type t

val create : ?name:string -> fp:Ksim.Failpoint.t -> Io.t -> t
(** Registers [<name>.read-eio] / [.write-eio] / [.torn-write] (disabled)
    in [fp]; enable and tune them with {!Ksim.Failpoint.configure}.
    [name] defaults to ["flaky"]. *)

val set_availability : t -> up:int -> down:int -> unit
(** [down = 0] (the initial state) means always up. *)

val is_down : t -> bool
(** Whether the {e next} operation falls in a down window. *)

val io : t -> Io.t

val read_errors : t -> int
val write_errors : t -> int

val torn_writes : t -> int
(** Torn prefixes that actually landed on the base device. *)

val torn_skipped : t -> int
(** Torn-write draws where the base device refused the torn write (e.g. a
    nested down-window) — the caller still saw [EIO], but nothing landed,
    so it is not counted as torn. *)

val down_rejections : t -> int

val injected : t -> int
(** Total faults delivered across all mechanisms (including
    {!torn_skipped} — the caller saw an error either way). *)
