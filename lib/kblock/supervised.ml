(* The supervised block layer: an oops firewall in front of any [Io.t]
   stack, with generation-stamped clients.

   [io] mints a client bound to the epoch current at mint time.  Every
   operation first validates the client's epoch (a client minted before
   the last microreboot answers [ESTALE] — the block-layer analogue of a
   stale fd), then runs through [Ksim.Supervisor.call], so an exception
   thrown anywhere in the wrapped stack is contained to an errno and
   trips a microreboot: the [remake] factory rebuilds the stack (e.g.
   re-opens the device) and new clients minted afterwards see the fresh
   generation.  Budget exhaustion degrades the layer to hard [EIO] —
   the per-subsystem degraded mode for block devices, where serving
   reads from a dead stack would be a lie. *)

type t = {
  sup : Ksim.Supervisor.t;
  mutable base : Io.t;
}

let create ?policy ?trace ?stats ~name ~remake () =
  let base = remake () in
  let t = { sup = Ksim.Supervisor.create ?policy ?trace ?stats ~name (); base } in
  Ksim.Supervisor.set_restart t.sup (fun () ->
      match remake () with
      | fresh ->
          t.base <- fresh;
          Ok ()
      | exception exn -> Error (Printexc.to_string exn));
  t

let supervisor t = t.sup
let epoch t = Ksim.Supervisor.epoch t.sup

(* The epoch check lives *inside* the containment thunk: the supervisor
   may perform the deferred microreboot at the top of [call], and a
   client minted before the oops must not reach the rebuilt stack — not
   even on the very call that triggered the reboot. *)
let guarded t ~minted ~label f =
  Ksim.Supervisor.call ~label t.sup (fun () ->
      let ( let* ) = Ksim.Errno.( let* ) in
      let* () = Ksim.Supervisor.validate t.sup minted in
      f ())

(* The four epoch-checked forwarders, named so their durability contracts
   are statable: supervision contains oopses, it does not flush.  A write
   that survives the firewall is exactly as cache-volatile as it was
   underneath, so [write] re-exports the barrier obligation, [flush] is
   the stack's barrier, and [write_fua] alone may promise durability.
   kdur (R18) convicts wrappers like these when the contract is dropped. *)

let read t ~minted blkno =
  guarded t ~minted ~label:"read" (fun () -> t.base.Io.read blkno)

let write t ~minted blkno data =
  guarded t ~minted ~label:"write" (fun () -> t.base.Io.write blkno data)
[@@orders_after "t"]

let flush t ~minted () =
  guarded t ~minted ~label:"flush" (fun () -> t.base.Io.flush ())
[@@flushes "t"]

let write_fua t ~minted blkno data =
  guarded t ~minted ~label:"write-fua" (fun () -> Io.fua t.base blkno data)
[@@durable]

let io t : Io.t =
  let minted = epoch t in
  {
    Io.nblocks = t.base.Io.nblocks;
    block_size = t.base.Io.block_size;
    read = read t ~minted;
    write = write t ~minted;
    flush = flush t ~minted;
    write_fua = Some (write_fua t ~minted);
  }
