(** Supervised block I/O: a {!Ksim.Supervisor} firewall in front of any
    {!Io.t} stack, with generation-stamped clients.

    {!io} mints a client carrying the epoch current at mint time; after
    a microreboot (the [remake] factory rebuilds the stack) the old
    client's operations answer [ESTALE] while a freshly minted client
    reaches the new generation.  Escaping exceptions are contained to
    errnos; an exhausted restart budget degrades the layer to [EIO] on
    every operation. *)

type t

val create :
  ?policy:Ksim.Supervisor.policy ->
  ?trace:Ksim.Ktrace.t ->
  ?stats:Ksim.Kstats.t ->
  name:string ->
  remake:(unit -> Io.t) ->
  unit ->
  t
(** [remake] builds the initial stack and rebuilds it on every
    microreboot. *)

val supervisor : t -> Ksim.Supervisor.t
val epoch : t -> int

val io : t -> Io.t
(** A client of the current generation.  Operations run inside the
    supervisor's containment wrapper and validate the client's epoch
    there, so a client minted before a microreboot answers [ESTALE] and
    never reaches the rebuilt stack — including on the call that
    performs the deferred reboot itself. *)
