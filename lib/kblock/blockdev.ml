(* Simulated block device with a volatile write cache.

   Writes land in a cache and reach the media only on [flush]; a crash
   loses an arbitrary subset of the cached writes (disks reorder), which
   is exactly the failure model journaling must defend against.
   [crash_media_states] enumerates the distinct post-crash media images so
   crash-safety checking can be exhaustive rather than sampled. *)

type pending = {
  seq : int;
  blkno : int;
  data : string;
}

type t = {
  nblocks : int;
  block_size : int;
  media : bytes array;
  mutable cache : pending list; (* newest first *)
  mutable next_seq : int;
  mutable reads : int;
  mutable writes : int;
  mutable flushes : int;
}

let create ~nblocks ~block_size =
  {
    nblocks;
    block_size;
    media = Array.init nblocks (fun _ -> Bytes.make block_size '\000');
    cache = [];
    next_seq = 0;
    reads = 0;
    writes = 0;
    flushes = 0;
  }

let nblocks dev = dev.nblocks
let block_size dev = dev.block_size
let reads dev = dev.reads
let writes dev = dev.writes
let flushes dev = dev.flushes
let pending_writes dev = List.length dev.cache

let in_range dev blkno = blkno >= 0 && blkno < dev.nblocks

let read dev blkno =
  if not (in_range dev blkno) then Error Ksim.Errno.EIO
  else begin
    dev.reads <- dev.reads + 1;
    (* The device serves reads from its cache: latest write wins. *)
    match List.find_opt (fun p -> p.blkno = blkno) dev.cache with
    | Some p -> Ok (Bytes.of_string p.data)
    | None -> Ok (Bytes.copy dev.media.(blkno))
  end

let write dev blkno data =
  if not (in_range dev blkno) then Error Ksim.Errno.EIO
  else if Bytes.length data <> dev.block_size then Error Ksim.Errno.EINVAL
  else begin
    dev.writes <- dev.writes + 1;
    dev.cache <- { seq = dev.next_seq; blkno; data = Bytes.to_string data } :: dev.cache;
    dev.next_seq <- dev.next_seq + 1;
    Ok ()
  end

let apply_to media pendings =
  (* Oldest first so that last-write-wins per block. *)
  List.iter (fun p -> Bytes.blit_string p.data 0 media.(p.blkno) 0 (String.length p.data))
    (List.sort (fun a b -> compare a.seq b.seq) pendings)

let flush dev =
  dev.flushes <- dev.flushes + 1;
  apply_to dev.media dev.cache;
  dev.cache <- []

let snapshot_media dev = Array.map Bytes.copy dev.media

let of_media ~block_size media =
  {
    nblocks = Array.length media;
    block_size;
    media = Array.map Bytes.copy media;
    cache = [];
    next_seq = 0;
    reads = 0;
    writes = 0;
    flushes = 0;
  }

(* Enumerate distinct post-crash media images: any subset of the cached
   writes may have reached the media.  With [n] pending writes there are up
   to [2^n] images; we enumerate them in a fixed order and stop at
   [limit].  The no-surviving-writes image (bare media) always comes
   first, the all-survived image is always included when within limit. *)
let crash_media_states dev ~limit =
  let pendings = Array.of_list (List.rev dev.cache) (* oldest first *) in
  let n = Array.length pendings in
  let total = if n >= 20 then max_int else 1 lsl n in
  let count = min limit total in
  let images = ref [] in
  let seen = Hashtbl.create 16 in
  let emit mask =
    let media = Array.map Bytes.copy dev.media in
    let subset = ref [] in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then subset := pendings.(i) :: !subset
    done;
    apply_to media !subset;
    let fingerprint = String.concat "" (Array.to_list (Array.map Bytes.to_string media)) in
    let digest = Digest.string fingerprint in
    if not (Hashtbl.mem seen digest) then begin
      Hashtbl.replace seen digest ();
      images := media :: !images
    end
  in
  if total <= count then
    for mask = 0 to total - 1 do
      emit mask
    done
  else begin
    (* Too many subsets: take the empty set, all prefixes (in-order
       partial flushes), the full set, then single-dropped-write subsets
       until the limit. *)
    emit 0;
    for k = 1 to n do
      emit ((1 lsl k) - 1)
    done;
    let full = (1 lsl n) - 1 in
    let i = ref 0 in
    while List.length !images < count && !i < n do
      emit (full lxor (1 lsl !i));
      incr i
    done
  end;
  let images = List.rev !images in
  List.filteri (fun i _ -> i < count) images

let crash_states dev ~limit =
  List.map (of_media ~block_size:dev.block_size) (crash_media_states dev ~limit)

(* Lose all cached writes: the canonical single crash. *)
let crash dev = dev.cache <- []

let io dev : Io.t =
  {
    Io.nblocks = dev.nblocks;
    block_size = dev.block_size;
    read = read dev;
    write = write dev;
    flush =
      (fun () ->
        flush dev;
        Ok ());
    write_fua =
      (* The raw device flushes infallibly, so FUA is write + drain. *)
      Some
        (fun blkno data ->
          match write dev blkno data with
          | Ok () ->
              flush dev;
              Ok ()
          | Error _ as e -> e);
  }

let to_ops dev : Kspec.Axiom.block_ops =
  let fail_to_exn = function
    | Ok v -> v
    | Error e -> failwith ("blockdev: " ^ Ksim.Errno.to_string e)
  in
  {
    nblocks = dev.nblocks;
    block_size = dev.block_size;
    read = (fun blkno -> fail_to_exn (read dev blkno));
    write = (fun blkno data -> fail_to_exn (write dev blkno data));
    flush = (fun () -> flush dev);
  }
