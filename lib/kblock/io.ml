(* The block I/O interface the rest of the kernel programs against.

   A first-class record rather than a functor so that layers stack at
   runtime: Blockdev.io gives the raw device, Flakydev.io wraps any io
   with injected faults, Resilient.io wraps any io with retries.  All
   three operations are fallible — unlike the bare device, a layered path
   can fail a flush (e.g. while the device is down).

   Durability contract: an acknowledged [write] is VOLATILE.  It may sit
   in a device write-back cache (Wcache) or in the raw device's pending
   set and be lost — or land out of order with respect to other
   unflushed writes — at a crash.  [flush] is a full barrier: when it
   returns [Ok ()], every write acknowledged before the flush is durable
   and ordered before every write issued after it.  [write_fua], when a
   layer provides it, is a forced-unit-access write: durable on ack, but
   ordered only with respect to itself — it does not flush other pending
   writes.  [fua] is the compat shim: layers that do not implement FUA
   natively get write + full flush, which is strictly stronger. *)

type t = {
  nblocks : int;
  block_size : int;
  read : int -> bytes Ksim.Errno.r;
  write : int -> bytes -> unit Ksim.Errno.r;
  flush : unit -> unit Ksim.Errno.r;
  write_fua : (int -> bytes -> unit Ksim.Errno.r) option;
}

let fua t blkno data =
  match t.write_fua with
  | Some f -> f blkno data
  | None -> (
      match t.write blkno data with
      | Ok () -> t.flush ()
      | Error _ as e -> e)
