(* The block I/O interface the rest of the kernel programs against.

   A first-class record rather than a functor so that layers stack at
   runtime: Blockdev.io gives the raw device, Flakydev.io wraps any io
   with injected faults, Resilient.io wraps any io with retries.  All
   three operations are fallible — unlike the bare device, a layered path
   can fail a flush (e.g. while the device is down). *)

type t = {
  nblocks : int;
  block_size : int;
  read : int -> bytes Ksim.Errno.r;
  write : int -> bytes -> unit Ksim.Errno.r;
  flush : unit -> unit Ksim.Errno.r;
}
