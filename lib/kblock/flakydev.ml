(* A dm-flakey-style fault-injecting block layer.

   Wraps any [Io.t] and misbehaves on command, driven by three failpoints
   in a [Ksim.Failpoint] registry (so every fault schedule is replayable
   from the registry seed):

     <name>.read-eio    transient EIO on read, nothing touched
     <name>.write-eio   transient EIO on write, the write is dropped
     <name>.torn-write  a *prefix* of the new data lands over the old
                        block content, then EIO — the torn write the
                        journal's checksums must catch

   Multi-block logical writes (a journal transaction, a checkpoint batch)
   tear between blocks whenever one constituent write draws write-eio
   mid-sequence; torn-write adds the nastier intra-block case.

   Orthogonally, dm-flakey's availability windows: after
   [set_availability ~up ~down], the device repeats [up] I/O ops working,
   then [down] ops failing everything (including flush), counted on a
   per-op tick. *)

type t = {
  name : string;
  base : Io.t;
  fp : Ksim.Failpoint.t;
  rng : Ksim.Rng.t; (* tear offsets; seeded from the registry for replay *)
  mutable up_interval : int; (* 0 = always up *)
  mutable down_interval : int;
  mutable tick : int;
  mutable read_errors : int;
  mutable write_errors : int;
  mutable torn_writes : int;
  mutable torn_skipped : int; (* torn attempts where the base write itself failed *)
  mutable down_rejections : int;
}

let site t kind = t.name ^ "." ^ kind

let create ?(name = "flaky") ~fp base =
  let t =
    {
      name;
      base;
      fp;
      rng = Ksim.Rng.of_int (Ksim.Failpoint.seed fp + Hashtbl.hash name);
      up_interval = 0;
      down_interval = 0;
      tick = 0;
      read_errors = 0;
      write_errors = 0;
      torn_writes = 0;
      torn_skipped = 0;
      down_rejections = 0;
    }
  in
  ignore (Ksim.Failpoint.register fp (site t "read-eio"));
  ignore (Ksim.Failpoint.register fp (site t "write-eio"));
  ignore (Ksim.Failpoint.register fp (site t "torn-write"));
  t

let set_availability t ~up ~down =
  if up < 1 && down > 0 then invalid_arg "Flakydev.set_availability";
  t.up_interval <- up;
  t.down_interval <- down

let is_down t =
  t.down_interval > 0 && t.tick mod (t.up_interval + t.down_interval) >= t.up_interval

let reject_down t =
  t.down_rejections <- t.down_rejections + 1;
  Error Ksim.Errno.EIO

(* Consume one availability tick: the op at hand runs under the window the
   pre-increment tick selects, so the first [up] ops are always up. *)
let tick_down t =
  let down = is_down t in
  t.tick <- t.tick + 1;
  down

let read t blkno =
  if tick_down t then reject_down t
  else if Ksim.Failpoint.should_fail t.fp (site t "read-eio") then begin
    t.read_errors <- t.read_errors + 1;
    Error Ksim.Errno.EIO
  end
  else t.base.Io.read blkno

(* [landing] is where a fault-free write goes: the base's plain write for
   [write], the base's FUA path for [write_fua].  The torn-prefix branch
   always lands through the plain write — a torn block is by definition
   not durably on media. *)
let write_gen t ~landing blkno data =
  if tick_down t then reject_down t
  else if Ksim.Failpoint.should_fail t.fp (site t "write-eio") then begin
    t.write_errors <- t.write_errors + 1;
    Error Ksim.Errno.EIO
  end
  else if
    Bytes.length data = t.base.Io.block_size
    && Ksim.Failpoint.should_fail t.fp (site t "torn-write")
  then begin
    (* Tear inside the block: a prefix of the new data over the old
       content reaches the device, and the caller sees EIO.  If the base
       device refuses the torn write (e.g. a nested down-window), nothing
       landed: that is not a torn write, count it separately. *)
    let old =
      match t.base.Io.read blkno with
      | Ok b -> b
      | Error _ -> Bytes.make t.base.Io.block_size '\000'
    in
    let tear = 1 + Ksim.Rng.int t.rng (t.base.Io.block_size - 1) in
    let torn = Bytes.copy old in
    Bytes.blit data 0 torn 0 tear;
    (match t.base.Io.write blkno torn with
    | Ok () -> t.torn_writes <- t.torn_writes + 1
    | Error _ -> t.torn_skipped <- t.torn_skipped + 1);
    Error Ksim.Errno.EIO
  end
  else landing blkno data

let write t blkno data = write_gen t ~landing:t.base.Io.write blkno data
let write_fua t blkno data = write_gen t ~landing:(Io.fua t.base) blkno data
let flush t = if tick_down t then reject_down t else t.base.Io.flush ()

let io t : Io.t =
  {
    Io.nblocks = t.base.Io.nblocks;
    block_size = t.base.Io.block_size;
    read = read t;
    write = write t;
    flush = (fun () -> flush t);
    write_fua = Some (write_fua t);
  }

let read_errors t = t.read_errors
let write_errors t = t.write_errors
let torn_writes t = t.torn_writes
let torn_skipped t = t.torn_skipped
let down_rejections t = t.down_rejections

let injected t =
  t.read_errors + t.write_errors + t.torn_writes + t.torn_skipped + t.down_rejections
