(** A jbd2-style write-ahead journal over any {!Io.t}.

    Layout: block 0 is the journal superblock, blocks 1..[jblocks]-1 hold
    journal records, everything from [jblocks] up is the client's home
    area.  The commit protocol flushes descriptor+data before the commit
    record and the commit record before any home write, so a crash
    observes either nothing of a transaction or a fully replayable one —
    never a torn in-place update.

    Because the journal runs over an {!Io.t}, it can sit on a raw
    {!Blockdev} ([Blockdev.io dev]) or on a flaky/resilient stack.  I/O
    failures abort cleanly: a failed {!commit} rolls back and leaves the
    transaction uncommitted; a failed {!checkpoint} leaves every pending
    transaction pending, to be retried or replayed at recovery. *)

type t

type tx
(** An open transaction: a batch of whole-block home writes that commit
    atomically. *)

type stats = {
  mutable commits : int;
  mutable aborted_commits : int;
  mutable checkpoints : int;
  mutable recoveries : int;
  mutable replayed_txs : int;
  mutable journal_block_writes : int;
}

exception Journal_full
(** A single transaction larger than the journal area. *)

val format : ?barriers:bool -> Io.t -> jblocks:int -> t
(** Initialize the journal area (blocks [0..jblocks-1]) on a fresh device.
    Runs over a reliable view of the device; I/O failure here is fatal.
    Ends on an unconditional flush, so the empty journal is durable.
    @durable
    [~barriers:false] is the seeded missing-barrier mutant: the commit
    record flushes together with its data blocks, and the checkpoint
    superblock update flushes together with the home writes — one barrier
    per logical op instead of two.  Under a write-back cache a crash can
    then observe the commit record without its data, or the advanced
    superblock without the home writes it vouches for.  Deliberately
    broken; exists for the refinement checker to convict. *)

val recover : ?barriers:bool -> Io.t -> jblocks:int -> t
(** Mount after a crash or clean shutdown: scan the journal, replay every
    committed-but-not-checkpointed transaction, and return a clean
    journal.  Torn records (missing commit, checksum mismatch) and
    everything after them are ignored.  Replayed transaction count is
    visible in {!stats}.  Like {!format}, expects reliable I/O (and takes
    the same [?barriers] mutant knob).  Returns only after an
    unconditional flush: the replayed image is durable.
    @durable *)

val data_start : t -> int
(** First home block (= [jblocks]). *)

val tx_begin : t -> tx
(** Open a transaction, purely in-memory until {!commit}.  The caller
    owns it and must hand it to {!commit} or {!abort}.
    @returns_owned *)

val tx_write : t -> tx -> blkno:int -> bytes -> unit Ksim.Errno.r
(** Stage a whole-block write to home block [blkno] (must be in the home
    area).  Rewrites of the same block within a transaction coalesce. *)

val commit : t -> tx -> unit Ksim.Errno.r
(** Make the transaction durable (two flushes).  Home locations are
    updated lazily at the next {!checkpoint} (one is forced automatically
    when the journal area fills).  On I/O failure the journal head rolls
    back over the partial records and the transaction stays uncommitted —
    the error propagates and [aborted_commits] increments.  Either way
    the transaction is finished with: it must not be reused.
    [Ok] from commit is a durability promise: every journal record of the
    transaction has hit stable media before control returns (kdur R17
    polices this; the [?barriers:false] mutant path is the grandfathered
    counterexample).
    @durable
    @consumes: tx
    @raise Journal_full if the transaction alone exceeds the area. *)

val abort : t -> tx -> unit
(** Discard an uncommitted transaction without touching the device; the
    transaction must not be reused afterwards.
    @consumes: tx *)

val checkpoint : t -> unit Ksim.Errno.r
(** Apply committed transactions to their home locations, flush, advance
    the on-disk checkpointed sequence number, and reclaim journal space.
    On I/O failure nothing is forgotten: pending transactions stay
    pending and the checkpointed sequence does not advance, so a retry or
    crash-recovery replay (idempotent home writes) completes the job.
    [Ok] promises the home writes and the superblock advance are on
    stable media (again modulo the [?barriers:false] mutant).
    @durable *)

val tx_size : tx -> int
(** Distinct blocks staged in an open transaction so far. *)

val max_tx_writes : t -> int
(** Largest number of distinct blocks one transaction may touch. *)

val pending_txs : t -> int
val checkpointed_seq : t -> int
val stats : t -> stats
