(** The volatile write-back cache layer: barrier semantics made explicit.

    [write] acks into a bounded in-cache dirty set (evicting via seeded
    writeback when full); [flush] is the full barrier that drains it.  A
    crash loses an arbitrary subset — in arbitrary order — of the writes
    issued since the last completed flush, so crash is no longer a prefix
    of the write sequence ({!crash_frames} / {!crash_residues} enumerate
    the post-crash images).  A runtime barrier-discipline checker
    ({!audit}) flags ALICE-style ordering violations: a block whose
    unflushed content is read back as a dependency of a later write
    without an intervening flush.

    Failpoint sites, registered (disabled) when [fp] is supplied:
    [<name>.flush-dropped] makes [flush] ack without draining or closing
    the barrier epoch (a lying drive); [<name>.writeback-reorder] makes
    capacity eviction destage a seeded random victim instead of the
    oldest. *)

type t

type entry = {
  wseq : int;
  blkno : int;
  data : string;
  fua : bool;
}

type frame = {
  durable : entry list;  (** oldest first; definitely on media *)
  volatile : entry list;
      (** oldest first; any subset in any order may have landed *)
}

type violation = {
  v_blkno : int;  (** the block read back while unflushed *)
  v_read_seq : int;  (** wseq of the unflushed content read *)
  v_write_blkno : int;  (** the dependent write issued barrier-free *)
  v_write_seq : int;
}

val create :
  ?name:string ->
  ?capacity:int ->
  ?fp:Ksim.Failpoint.t ->
  ?seed:int ->
  ?trace:Ksim.Ktrace.t ->
  Io.t ->
  t
(** Defaults: name ["wcache"], capacity 32 dirty blocks, no failpoints,
    seed 0, {!Ksim.Ktrace.global}.
    @raise Invalid_argument on [capacity < 1]. *)

val io : t -> Io.t
(** The cache as an [Io.t] layer ([write_fua] is native: write-through
    plus base FUA). *)

val name : t -> string
val flush_dropped_site : t -> string
val writeback_reorder_site : t -> string

val read : t -> int -> bytes Ksim.Errno.r
val write : t -> int -> bytes -> unit Ksim.Errno.r
val write_fua : t -> int -> bytes -> unit Ksim.Errno.r
val flush : t -> unit Ksim.Errno.r

val crash : t -> unit
(** The canonical single crash: every unflushed write is gone.  The base
    device keeps its own pending set — pair with [Blockdev.crash] for
    total loss of everything unflushed. *)

(** {1 Crash-surface enumeration}

    The cache logs every write since the last completed flush (the open
    {e barrier epoch}) plus the closed epochs since {!take_durable} was
    last called.  A consumer materializes post-crash images by replaying
    a residue over its snapshot of the media as of the last
    {!take_durable}. *)

val crash_frames : t -> frame list
(** One frame per barrier interval in the retained window: the epochs
    before it are durable, of the epoch itself any subset in any order
    may have landed. *)

val crash_residues : t -> limit:int -> entry list list
(** Up to [limit] distinct write sequences sampled from the frames
    (round-robin), exhaustive for small volatile sets (all subsets, plus
    permutations up to 3 entries) and otherwise the structured corners —
    nothing, everything, prefixes, suffixes, single-dropped — plus
    seeded draws.  Deterministic in the instance seed and write count.
    Apply a residue in list order over the media snapshot. *)

val take_durable : t -> entry list
(** The closed (durable) epochs, oldest first, clearing them from the
    retained window: fold these into the media snapshot that future
    residues are applied over.  Call after each {!crash_residues} sweep
    to keep enumeration linear in trace length. *)

(** {1 Barrier-discipline audit} *)

val audit : t -> violation list
(** Ordering violations observed so far, oldest first (bounded at 64;
    {!ordering_violations} has the true count).  Each also emitted an
    ["incident"] trace event, feeding the Audit/UNSOUND reconciliation. *)

val ordering_violations : t -> int

val append_violations_to_file : t -> path:string -> unit
(** Append this cache's recorded audit violations to [path], one
    ["name\tblkno\tread_seq\twrite_blkno\twrite_seq"] line each — the
    wire format klint's kdur reconciliation ([--wcache-violations])
    consumes.  No-op when the audit is clean. *)

val export_env : string
(** ["KSIM_WCACHE_EXPORT"].  When set to a file path, every process
    appends each cache's audit violations there at exit; scripts/ci.sh
    sets it across [dune runtest] so kdur's static R16 findings are
    checked against every violation the suite actually provoked. *)

(** {1 Counters} *)

val dirty_blocks : t -> int
val unflushed_writes : t -> int
(** Writes in the open barrier epoch (volatile right now). *)

val writes : t -> int
val reads : t -> int
val cache_hits : t -> int
val flushes : t -> int
val flush_drops : t -> int
val writebacks : t -> int
val reordered_writebacks : t -> int
val writeback_errors : t -> int
val fua_writes : t -> int

val publish : t -> Ksim.Kstats.t -> string -> unit
(** Add cache accounting into a {!Ksim.Kstats} under [prefix ^ ".writes"],
    [".writebacks"], [".reordered"], [".flushes"], [".flush-drops"],
    [".ordering-violations"]. *)
