(* The retrying block layer: bounded attempts with deterministic
   exponential backoff on a simulated clock.

   Transient errors (EIO, EAGAIN, ENOMEM) are retried up to
   [max_attempts] total attempts, sleeping base * 2^(attempt-1) simulated
   nanoseconds (capped) between attempts; the clock is a plain counter so
   runs are exactly reproducible.  Non-transient errors (EINVAL, ...)
   fail immediately without burning budget.  When the budget is exhausted
   the op gets a *permanent* verdict: the error propagates to the caller,
   [permanent_failures] increments, and an event lands on the trace —
   that verdict is what flips the file system above us into read-only
   degraded mode.

   [jitter] decorrelates concurrent retriers: each backoff sleep is
   stretched by a draw from the instance's own SplitMix64 stream
   (derived from [seed]), up to [jitter * backoff] extra ns, so two
   instances facing the same fault schedule do not retry in lockstep.
   The stream is per-instance and seeded, so [simulated_ns] stays
   exactly replayable. *)

type t = {
  base : Io.t;
  max_attempts : int;
  backoff_base : int;
  backoff_cap : int;
  jitter : float;
  rng : Ksim.Rng.t;
  trace : Ksim.Ktrace.t;
  mutable clock : int; (* simulated ns slept in backoff *)
  mutable ops : int;
  mutable retries : int;
  mutable recovered_ops : int;
  mutable permanent_failures : int;
}

let create ?(max_attempts = 4) ?(backoff_base = 100) ?(backoff_cap = 10_000) ?(jitter = 0.0)
    ?(seed = 0) ?(trace = Ksim.Ktrace.global) base =
  if max_attempts < 1 then invalid_arg "Resilient.create: max_attempts";
  if jitter < 0.0 || jitter > 1.0 then invalid_arg "Resilient.create: jitter";
  {
    base;
    max_attempts;
    backoff_base;
    backoff_cap;
    jitter;
    rng = Ksim.Rng.of_int seed;
    trace;
    clock = 0;
    ops = 0;
    retries = 0;
    recovered_ops = 0;
    permanent_failures = 0;
  }

let transient = function
  | Ksim.Errno.EIO | Ksim.Errno.EAGAIN | Ksim.Errno.ENOMEM -> true
  | _ -> false

let backoff t attempt =
  let base = min t.backoff_cap (t.backoff_base * (1 lsl min (attempt - 1) 20)) in
  (* Seeded jitter: the draw comes from this instance's own stream, so
     it is replayable yet different across instances with distinct
     seeds — concurrent retriers spread out instead of stampeding. *)
  let spread = int_of_float (t.jitter *. float_of_int base) in
  if spread > 0 then base + Ksim.Rng.int t.rng (spread + 1) else base

let run t label f =
  t.ops <- t.ops + 1;
  let rec go attempt =
    match f () with
    | Ok v ->
        if attempt > 1 then begin
          t.recovered_ops <- t.recovered_ops + 1;
          Ksim.Ktrace.emitf t.trace ~category:"resilient" "%s: recovered on attempt %d" label
            attempt
        end;
        Ok v
    | Error e when transient e && attempt < t.max_attempts ->
        t.retries <- t.retries + 1;
        t.clock <- t.clock + backoff t attempt;
        go (attempt + 1)
    | Error e ->
        if transient e then begin
          t.permanent_failures <- t.permanent_failures + 1;
          Ksim.Ktrace.emitf t.trace ~category:"resilient"
            "%s: permanent failure (%s) after %d attempts" label (Ksim.Errno.to_string e)
            attempt
        end;
        Error e
  in
  go 1

let read t blkno = run t (Printf.sprintf "read %d" blkno) (fun () -> t.base.Io.read blkno)

let write t blkno data =
  run t (Printf.sprintf "write %d" blkno) (fun () -> t.base.Io.write blkno data)

let flush t = run t "flush" (fun () -> t.base.Io.flush ())

let write_fua t blkno data =
  run t (Printf.sprintf "write-fua %d" blkno) (fun () -> Io.fua t.base blkno data)

let io t : Io.t =
  {
    Io.nblocks = t.base.Io.nblocks;
    block_size = t.base.Io.block_size;
    read = read t;
    write = write t;
    flush = (fun () -> flush t);
    write_fua = Some (write_fua t);
  }

let ops t = t.ops
let retries t = t.retries
let recovered_ops t = t.recovered_ops
let permanent_failures t = t.permanent_failures
let simulated_ns t = t.clock

let publish t stats prefix =
  Ksim.Kstats.incr ~by:t.ops stats (prefix ^ ".ops");
  Ksim.Kstats.incr ~by:t.retries stats (prefix ^ ".retries");
  Ksim.Kstats.incr ~by:t.recovered_ops stats (prefix ^ ".recovered");
  Ksim.Kstats.incr ~by:t.permanent_failures stats (prefix ^ ".permanent")
