(** Simulated block device with a volatile write cache.

    Writes land in a cache and reach the media only on {!flush}; a crash
    loses an arbitrary subset of cached writes (disks reorder).  This is
    the failure model journaling defends against, and
    {!crash_media_states} makes it enumerable for exhaustive
    crash-safety checking. *)

type t

val create : nblocks:int -> block_size:int -> t
val nblocks : t -> int
val block_size : t -> int

val read : t -> int -> bytes Ksim.Errno.r
(** Serve from the cache (latest write wins) or the media.  [EIO] out of
    range. *)

val write : t -> int -> bytes -> unit Ksim.Errno.r
(** Buffer a whole-block write.  [EINVAL] on wrong size, [EIO] out of
    range. *)

val flush : t -> unit
(** Durability barrier: apply all cached writes to the media in order. *)

val crash : t -> unit
(** Drop every cached write (the canonical single crash). *)

val crash_media_states : t -> limit:int -> bytes array list
(** Distinct media images reachable by crashing now: any subset of cached
    writes may have survived.  Exhaustive when [2^pending <= limit];
    otherwise empty set, all prefixes, full set, and single-dropped
    subsets, deduplicated, up to [limit]. *)

val crash_states : t -> limit:int -> t list
(** {!crash_media_states} wrapped into fresh devices with empty caches. *)

val snapshot_media : t -> bytes array
val of_media : block_size:int -> bytes array -> t

val reads : t -> int
val writes : t -> int
val flushes : t -> int
val pending_writes : t -> int

val io : t -> Io.t
(** The raw device as a layerable {!Io.t}: reads/writes as above, [flush]
    never fails. *)

val to_ops : t -> Kspec.Axiom.block_ops
(** View as the byte-level interface the §4.4 axioms talk about. *)
