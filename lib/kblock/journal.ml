(* A jbd2-style write-ahead journal.

   On-disk layout (within the owning device):

     block 0                : journal superblock (magic, checkpointed seq)
     blocks 1 .. jblocks-1  : journal records
     blocks jblocks ..      : the client's home area

   A transaction is recorded as

     [D seq count home0..home_{n-1}] [data]*n [C seq checksum]

   The commit protocol flushes the descriptor and data before the commit
   record, and the commit record before any home-location write, so a
   crash can only observe (a) no trace of the transaction or (b) a fully
   replayable one — never a torn in-place update.  Checkpointing applies
   committed transactions to their home locations and advances the
   checkpointed sequence number in the superblock.

   The journal talks to the disk through an [Io.t], so the same code runs
   over the raw device or over a flaky/resilient stack.  I/O failures
   abort cleanly instead of corrupting state:

   - a failed [commit] rolls the journal head back and leaves the
     transaction uncommitted — recovery ignores the partial records
     (no commit record, or a checksum mismatch, marks them dead);
   - a failed [checkpoint] keeps every pending transaction pending and
     does not advance the checkpointed sequence, so a later retry (or
     crash recovery) replays them; home-area writes are idempotent. *)

let magic = 0x4a4c3231 (* "JL21" *)

type record_kind = Descriptor | Commit

type stats = {
  mutable commits : int;
  mutable aborted_commits : int;
  mutable checkpoints : int;
  mutable recoveries : int;
  mutable replayed_txs : int;
  mutable journal_block_writes : int;
}

type t = {
  io : Io.t;
  jblocks : int;
  barriers : bool; (* false = the seeded missing-barrier mutant *)
  mutable head : int; (* next free journal block; 1-based *)
  mutable next_seq : int;
  mutable checkpointed : int; (* highest seq applied to home locations *)
  mutable pending : tx list; (* committed, not yet checkpointed; oldest first *)
  stats : stats;
}

and tx = {
  mutable seq : int; (* assigned at commit *)
  mutable writes : (int * bytes) list; (* newest first; home blkno, data *)
  mutable committed : bool;
}

exception Journal_full

let ( let* ) = Result.bind

let data_start j = j.jblocks
let stats j = j.stats

let block_size j = j.io.Io.block_size
let nblocks j = j.io.Io.nblocks

let fresh_stats () =
  {
    commits = 0;
    aborted_commits = 0;
    checkpoints = 0;
    recoveries = 0;
    replayed_txs = 0;
    journal_block_writes = 0;
  }

(* Superblock ------------------------------------------------------------ *)

let write_jsb j =
  let buf = Bytes.make (block_size j) '\000' in
  Codec.put_u32 buf 0 magic;
  Codec.put_u32 buf 4 j.checkpointed;
  Codec.put_u32 buf 8 j.jblocks;
  j.io.Io.write 0 buf

let read_jsb (io : Io.t) =
  match io.Io.read 0 with
  | Error _ -> None
  | Ok buf ->
      if Codec.get_u32 buf 0 = magic then Some (Codec.get_u32 buf 4, Codec.get_u32 buf 8)
      else None

(* Record encoding -------------------------------------------------------- *)

let encode_descriptor j ~seq homes =
  let buf = Bytes.make (block_size j) '\000' in
  Bytes.set buf 0 'D';
  Codec.put_u32 buf 1 seq;
  Codec.put_u32 buf 5 (List.length homes);
  List.iteri (fun i home -> Codec.put_u32 buf (9 + (4 * i)) home) homes;
  buf

let encode_commit j ~seq ~checksum =
  let buf = Bytes.make (block_size j) '\000' in
  Bytes.set buf 0 'C';
  Codec.put_u32 buf 1 seq;
  Codec.put_u32 buf 5 checksum;
  buf

let decode_record buf =
  if Bytes.length buf < 9 then None
  else
    match Bytes.get buf 0 with
    | 'D' ->
        let seq = Codec.get_u32 buf 1 in
        let count = Codec.get_u32 buf 5 in
        if count < 0 || count > (Bytes.length buf - 9) / 4 then None
        else
          let homes = List.init count (fun i -> Codec.get_u32 buf (9 + (4 * i))) in
          Some (Descriptor, seq, homes, 0)
    | 'C' -> Some (Commit, Codec.get_u32 buf 1, [], Codec.get_u32 buf 5)
    | _ -> None

let max_tx_writes j = (block_size j - 9) / 4

(* Formatting and opening ------------------------------------------------- *)

let format ?(barriers = true) (io : Io.t) ~jblocks =
  if jblocks < 4 || jblocks >= io.Io.nblocks then invalid_arg "Journal.format";
  let j =
    {
      io;
      jblocks;
      barriers;
      head = 1;
      next_seq = 1;
      checkpointed = 0;
      pending = [];
      stats = fresh_stats ();
    }
  in
  (match write_jsb j with
  | Ok () -> ()
  | Error e -> failwith ("journal format: " ^ Ksim.Errno.to_string e));
  (* Zero the journal area so stale records cannot be mistaken for live. *)
  let zero = Bytes.make (block_size j) '\000' in
  for blkno = 1 to jblocks - 1 do
    match io.Io.write blkno zero with
    | Ok () -> ()
    | Error e -> failwith ("journal format: " ^ Ksim.Errno.to_string e)
  done;
  (match io.Io.flush () with
  | Ok () -> ()
  | Error e -> failwith ("journal format: " ^ Ksim.Errno.to_string e));
  j

(* Transactions ------------------------------------------------------------ *)

(** Open a transaction.  Purely in-memory until {!commit}.  The caller
    must hand it to {!commit} or {!abort}.
    @returns_owned *)
let tx_begin (_ : t) = { seq = 0; writes = []; committed = false }

(** Discard an uncommitted transaction: drop its staged writes and poison
    it against a later {!commit}.  Nothing reached the device, so there
    is nothing to roll back.
    @consumes: tx *)
let abort (_ : t) tx =
  if tx.committed then invalid_arg "Journal.abort: already committed";
  tx.writes <- [];
  tx.committed <- true (* poisoned: commit refuses committed txs *)

let tx_write j tx ~blkno data =
  if blkno < j.jblocks || blkno >= nblocks j then Error Ksim.Errno.EINVAL
  else if Bytes.length data <> block_size j then Error Ksim.Errno.EINVAL
  else begin
    (* Coalesce rewrites of the same block within a transaction. *)
    tx.writes <- (blkno, Bytes.copy data) :: List.remove_assoc blkno tx.writes;
    Ok ()
  end

let journal_write j blkno data =
  j.stats.journal_block_writes <- j.stats.journal_block_writes + 1;
  j.io.Io.write blkno data

let space_needed tx = 2 + List.length tx.writes

let rec write_all f = function
  | [] -> Ok ()
  | x :: rest ->
      let* () = f x in
      write_all f rest

(* Apply committed-but-unapplied transactions to their home locations.  On
   failure nothing is forgotten: pending stays, the checkpointed sequence
   does not advance, and a later retry (or recovery replay) redoes the
   idempotent home writes. *)
let checkpoint j =
  match j.pending with
  | [] -> Ok ()
  | pending ->
      let* () =
        write_all
          (fun tx -> write_all (fun (blkno, data) -> j.io.Io.write blkno data) (List.rev tx.writes))
          pending
      in
      (* Home writes durable before the superblock advances past them —
         the mutant elides this barrier, so a crash can keep the advanced
         superblock while losing home writes it vouches for. *)
      let* () = if j.barriers then j.io.Io.flush () else Ok () in
      let saved = j.checkpointed in
      j.checkpointed <- List.fold_left (fun m tx -> max m tx.seq) saved pending;
      let finish =
        let* () = write_jsb j in
        j.io.Io.flush ()
      in
      (match finish with
      | Ok () ->
          j.pending <- [];
          j.head <- 1;
          j.stats.checkpoints <- j.stats.checkpoints + 1;
          Ok ()
      | Error e ->
          (* Home writes are durable but the superblock may not be; keep
             everything pending so replay covers us either way. *)
          j.checkpointed <- saved;
          Error e)

let commit j tx =
  if tx.committed then invalid_arg "Journal.commit: already committed";
  if List.length tx.writes > max_tx_writes j then Error Ksim.Errno.EOVERFLOW
  else
    let* () = if j.head + space_needed tx > j.jblocks then checkpoint j else Ok () in
    if j.head + space_needed tx > j.jblocks then raise Journal_full;
    let start_head = j.head in
    let seq = j.next_seq in
    let writes = List.rev tx.writes (* oldest first *) in
    let homes = List.map fst writes in
    let datas = List.map snd writes in
    let attempt =
      let* () = journal_write j j.head (encode_descriptor j ~seq homes) in
      j.head <- j.head + 1;
      let* () =
        write_all
          (fun data ->
            let* () = journal_write j j.head data in
            j.head <- j.head + 1;
            Ok ())
          datas
      in
      (* Descriptor and data durable before the commit record...  (the
         missing-barrier mutant lets the commit record flush with its
         data blocks instead) *)
      let* () = if j.barriers then j.io.Io.flush () else Ok () in
      let* () = journal_write j j.head (encode_commit j ~seq ~checksum:(Codec.checksum_many datas)) in
      j.head <- j.head + 1;
      (* ...and the commit record durable before any home write. *)
      j.io.Io.flush ()
    in
    match attempt with
    | Ok () ->
        j.next_seq <- j.next_seq + 1;
        tx.seq <- seq;
        tx.committed <- true;
        j.pending <- j.pending @ [ tx ];
        j.stats.commits <- j.stats.commits + 1;
        Ok ()
    | Error e ->
        (* Abort: roll the head back over the partial records.  With no
           commit record (or a checksum mismatch) recovery treats them as
           dead, and the next transaction overwrites them. *)
        j.head <- start_head;
        j.stats.aborted_commits <- j.stats.aborted_commits + 1;
        Error e

(* Recovery ----------------------------------------------------------------

   Recovery and format run over a *reliable* view of the device (mount
   happens after the fault window; a flaky mount-path is a different
   experiment), so I/O errors here are fatal rather than gracefully
   degraded. *)

let scan_committed (io : Io.t) ~jblocks ~checkpointed =
  let read blkno =
    match io.Io.read blkno with
    | Ok buf -> buf
    | Error e -> failwith ("journal scan: " ^ Ksim.Errno.to_string e)
  in
  let rec scan blkno acc =
    if blkno >= jblocks then List.rev acc
    else
      match decode_record (read blkno) with
      | Some (Descriptor, seq, homes, _) ->
          let count = List.length homes in
          if blkno + count + 1 >= jblocks then List.rev acc
          else
            let datas = List.init count (fun i -> read (blkno + 1 + i)) in
            let commit_blk = read (blkno + 1 + count) in
            (match decode_record commit_blk with
            | Some (Commit, cseq, _, checksum)
              when cseq = seq && checksum = Codec.checksum_many datas ->
                let tx_writes = List.combine homes datas in
                let acc = if seq > checkpointed then (seq, tx_writes) :: acc else acc in
                scan (blkno + count + 2) acc
            | _ ->
                (* Torn or missing commit: this and anything after is dead. *)
                List.rev acc)
      | Some (Commit, _, _, _) | None -> List.rev acc
  in
  scan 1 []

let recover ?(barriers = true) (io : Io.t) ~jblocks =
  let checkpointed, jb =
    match read_jsb io with
    | Some (cp, jb) -> (cp, jb)
    | None -> failwith "Journal.recover: no journal superblock"
  in
  if jb <> jblocks then failwith "Journal.recover: journal size mismatch";
  let committed = scan_committed io ~jblocks ~checkpointed in
  let j =
    {
      io;
      jblocks;
      barriers;
      head = 1;
      next_seq = 1 + List.fold_left (fun m (seq, _) -> max m seq) checkpointed committed;
      checkpointed;
      pending = [];
      stats = fresh_stats ();
    }
  in
  j.stats.recoveries <- 1;
  let fatal = function
    | Ok () -> ()
    | Error e -> failwith ("journal replay: " ^ Ksim.Errno.to_string e)
  in
  List.iter
    (fun (seq, writes) ->
      j.stats.replayed_txs <- j.stats.replayed_txs + 1;
      List.iter (fun (blkno, data) -> fatal (io.Io.write blkno data)) writes;
      j.checkpointed <- max j.checkpointed seq)
    committed;
  fatal (io.Io.flush ());
  fatal (write_jsb j);
  fatal (io.Io.flush ());
  j

let tx_size tx = List.length tx.writes
let pending_txs j = List.length j.pending
let checkpointed_seq j = j.checkpointed
