(* Attachment points: where verified extension programs hook into the
   simulated kernel.

   Two hooks, mirroring eBPF's classic uses:

   - a packet filter: the program sees the packet bytes as its context and
     returns non-zero to accept;
   - a file-operation tracer: the program sees a fixed-layout encoding of
     each FS operation and returns a bucket number to count it under.

   A trapping program cannot harm the kernel: the hook applies a
   per-attachment default instead. *)

(* Packet filter ---------------------------------------------------------- *)

type filter = {
  prog : Vm.loaded;
  default_accept : bool;
  mutable accepted : int;
  mutable dropped : int;
  mutable traps : int;
}

let attach_filter ?(default_accept = false) prog =
  Result.map
    (fun loaded -> { prog = loaded; default_accept; accepted = 0; dropped = 0; traps = 0 })
    (Vm.load prog)

let filter_packet f packet =
  let verdict =
    match Vm.exec f.prog ~ctx:packet with
    | Ok v -> v <> 0
    | Error _ ->
        f.traps <- f.traps + 1;
        f.default_accept
  in
  if verdict then f.accepted <- f.accepted + 1 else f.dropped <- f.dropped + 1;
  verdict

let filter_stats f = (f.accepted, f.dropped, f.traps)

(* FS-op tracer ------------------------------------------------------------ *)

(* Context layout for fs ops (all single bytes):
     ctx[0]  opcode (see [opcode_of])
     ctx[1]  path depth
     ctx[2]  payload size, clamped to 255
     ctx[3..] first path component (for prefix matching) *)
let opcode_of (op : Kspec.Fs_spec.op) =
  match op with
  | Kspec.Fs_spec.Create _ -> 1
  | Mkdir _ -> 2
  | Write _ -> 3
  | Read _ -> 4
  | Truncate _ -> 5
  | Unlink _ -> 6
  | Rmdir _ -> 7
  | Rename _ -> 8
  | Readdir _ -> 9
  | Stat _ -> 10
  | Fsync -> 11

let encode_op (op : Kspec.Fs_spec.op) =
  let path =
    match op with
    | Kspec.Fs_spec.Create p | Mkdir p | Truncate (p, _) | Unlink p | Rmdir p
    | Rename (p, _) | Readdir p | Stat p ->
        p
    | Write { file; _ } | Read { file; _ } -> file
    | Fsync -> []
  in
  let size =
    match op with
    | Kspec.Fs_spec.Write { data; _ } -> min 255 (String.length data)
    | Read { len; _ } -> min 255 (max 0 len)
    | Truncate (_, n) -> min 255 (max 0 n)
    | _ -> 0
  in
  let first = match path with comp :: _ -> comp | [] -> "" in
  let buf = Buffer.create (3 + String.length first) in
  Buffer.add_char buf (Char.chr (opcode_of op));
  Buffer.add_char buf (Char.chr (min 255 (List.length path)));
  Buffer.add_char buf (Char.chr size);
  Buffer.add_string buf first;
  Buffer.contents buf

type tracer = {
  tprog : Vm.loaded;
  buckets : int array;
  mutable ttraps : int;
}

let attach_tracer ?(buckets = 16) prog =
  Result.map
    (fun loaded -> { tprog = loaded; buckets = Array.make buckets 0; ttraps = 0 })
    (Vm.load prog)

let trace_op tracer op =
  match Vm.exec tracer.tprog ~ctx:(encode_op op) with
  | Ok bucket ->
      let b = ((bucket mod Array.length tracer.buckets) + Array.length tracer.buckets)
              mod Array.length tracer.buckets in
      tracer.buckets.(b) <- tracer.buckets.(b) + 1
  | Error _ -> tracer.ttraps <- tracer.ttraps + 1

let bucket_counts tracer = Array.copy tracer.buckets
let tracer_traps tracer = tracer.ttraps

(* Generic counter probe ---------------------------------------------------- *)

(* The tracer hook generalized to caller-encoded contexts: the load
   harness attaches these and feeds one event per tenant operation, so
   per-tenant / per-class counters are computed *by a verified program*
   rather than privileged harness code — kebpf as the in-sim
   observability plane. *)

type probe = {
  pprog : Vm.loaded;
  pbuckets : int array;
  mutable ptraps : int;
}

let attach_probe ?(buckets = 16) prog =
  Result.map
    (fun loaded -> { pprog = loaded; pbuckets = Array.make buckets 0; ptraps = 0 })
    (Vm.load prog)

let probe_event probe ctx =
  match Vm.exec probe.pprog ~ctx with
  | Ok bucket ->
      let n = Array.length probe.pbuckets in
      let b = ((bucket mod n) + n) mod n in
      probe.pbuckets.(b) <- probe.pbuckets.(b) + 1
  | Error _ -> probe.ptraps <- probe.ptraps + 1

let probe_counts probe = Array.copy probe.pbuckets
let probe_traps probe = probe.ptraps

(* Load-event context layout (all single bytes):
     ctx[0]  tenant id, low byte
     ctx[1]  tenant id, high byte
     ctx[2]  tenant class index
     ctx[3]  operation kind
     ctx[4]  payload size / 256, clamped to 255 *)
let encode_load_event ~tenant ~class_id ~kind ~size =
  let b = Bytes.create 5 in
  Bytes.set b 0 (Char.chr (tenant land 0xff));
  Bytes.set b 1 (Char.chr ((tenant lsr 8) land 0xff));
  Bytes.set b 2 (Char.chr (class_id land 0xff));
  Bytes.set b 3 (Char.chr (kind land 0xff));
  Bytes.set b 4 (Char.chr (min 255 (size lsr 8)));
  Ksim.Frame.Buf.freeze b

(* Bucket = tenant id (ctx[0] + 256 * ctx[1]); attach with a bucket
   count covering the tenant population (the hook wraps modulo). *)
let tenant_probe : Insn.program =
  [|
    Insn.Mov_imm (Insn.R2, 0);
    Insn.Ld_ctx (Insn.R3, Insn.R2, 0);
    Insn.Ld_ctx (Insn.R4, Insn.R2, 1);
    Insn.Alu_imm (Insn.Mul, Insn.R4, 256);
    Insn.Mov_reg (Insn.R0, Insn.R3);
    Insn.Alu_reg (Insn.Add, Insn.R0, Insn.R4);
    Insn.Exit;
  |]

(* Bucket = class * 8 + kind: the per-class op-mix matrix. *)
let class_kind_probe : Insn.program =
  [|
    Insn.Mov_imm (Insn.R2, 0);
    Insn.Ld_ctx (Insn.R3, Insn.R2, 2);
    Insn.Alu_imm (Insn.Mul, Insn.R3, 8);
    Insn.Ld_ctx (Insn.R4, Insn.R2, 3);
    Insn.Mov_reg (Insn.R0, Insn.R3);
    Insn.Alu_reg (Insn.Add, Insn.R0, Insn.R4);
    Insn.Exit;
  |]

(* Canned programs ----------------------------------------------------------- *)

(* Accept packets whose first byte equals [kind] and that are at least
   [min_len] bytes long. *)
let packet_kind_filter ~kind ~min_len : Insn.program =
  [|
    (* if len < min_len: drop *)
    Insn.Mov_imm (Insn.R0, 0);
    Insn.Jcond (Insn.Lt, Insn.R1, min_len, 4);
    (* load ctx[0], compare to kind *)
    Insn.Mov_imm (Insn.R2, 0);
    Insn.Ld_ctx (Insn.R3, Insn.R2, 0);
    Insn.Jcond (Insn.Ne, Insn.R3, kind, 1);
    Insn.Mov_imm (Insn.R0, 1);
    Insn.Exit;
  |]

(* Count fs ops by opcode (bucket = opcode). *)
let opcode_tracer : Insn.program =
  [|
    Insn.Mov_imm (Insn.R2, 0);
    Insn.Ld_ctx (Insn.R0, Insn.R2, 0);
    Insn.Exit;
  |]

(* Bucket 1 for writes larger than [threshold] bytes, else bucket 0. *)
let large_write_tracer ~threshold : Insn.program =
  [|
    Insn.Mov_imm (Insn.R0, 0);
    Insn.Mov_imm (Insn.R2, 0);
    Insn.Ld_ctx (Insn.R3, Insn.R2, 0);
    (* not a write: bucket 0 *)
    Insn.Jcond (Insn.Ne, Insn.R3, 3, 3);
    Insn.Ld_ctx (Insn.R4, Insn.R2, 2);
    Insn.Jcond (Insn.Le, Insn.R4, threshold, 1);
    Insn.Mov_imm (Insn.R0, 1);
    Insn.Exit;
  |]

(* The canonical rejected program: a loop.  The verifier refuses it, which
   is the executable form of the expressiveness limit. *)
let looping_program : Insn.program =
  [|
    Insn.Mov_imm (Insn.R0, 0);
    Insn.Alu_imm (Insn.Add, Insn.R0, 1);
    Insn.Jmp (-2) (* back to the increment: rejected *);
    Insn.Exit;
  |]
