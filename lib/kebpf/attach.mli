(** Attachment points for verified extension programs: a packet filter and
    an FS-operation tracer.  A trapping program cannot harm the kernel —
    the hook applies the attachment's default instead. *)

(** {1 Packet filter} *)

type filter

val attach_filter :
  ?default_accept:bool -> Insn.program -> (filter, Verifier.rejection) result

val filter_packet : filter -> string -> bool
(** Run the program over the packet bytes; non-zero r0 accepts.  Traps
    fall back to [default_accept]. *)

val filter_stats : filter -> int * int * int
(** (accepted, dropped, traps). *)

(** {1 FS-operation tracer} *)

type tracer

val attach_tracer : ?buckets:int -> Insn.program -> (tracer, Verifier.rejection) result

val encode_op : Kspec.Fs_spec.op -> string
(** The fixed context layout: opcode, path depth, clamped size, first
    path component. *)

val opcode_of : Kspec.Fs_spec.op -> int

val trace_op : tracer -> Kspec.Fs_spec.op -> unit
(** Run the program on the encoded op; r0 selects the bucket to count. *)

val bucket_counts : tracer -> int array
val tracer_traps : tracer -> int

(** {1 Generic counter probe}

    The tracer hook generalized to caller-encoded contexts: attach a
    verified program, feed it events, and it buckets them.  The load
    harness uses these as its per-tenant / per-class export plane. *)

type probe

val attach_probe : ?buckets:int -> Insn.program -> (probe, Verifier.rejection) result

val probe_event : probe -> string -> unit
(** Run the program on the raw context; r0 selects the bucket to count
    (wrapped modulo the bucket array).  Traps are counted, not raised. *)

val probe_counts : probe -> int array
val probe_traps : probe -> int

val encode_load_event : tenant:int -> class_id:int -> kind:int -> size:int -> string
(** The load-event context layout: tenant id (two bytes, little-endian),
    class index, operation kind, payload size divided by 256 and
    clamped. *)

val tenant_probe : Insn.program
(** Bucket = tenant id; attach with enough buckets for the population. *)

val class_kind_probe : Insn.program
(** Bucket = class * 8 + kind: the per-class operation-mix matrix. *)

(** {1 Canned programs} *)

val packet_kind_filter : kind:int -> min_len:int -> Insn.program
(** Accept packets of the given first-byte kind and minimum length. *)

val opcode_tracer : Insn.program
(** Count FS ops by opcode. *)

val large_write_tracer : threshold:int -> Insn.program
(** Bucket 1 for writes larger than [threshold] bytes, else 0. *)

val looping_program : Insn.program
(** The canonical rejected program (a backward jump) — the executable
    statement of the mechanism's expressiveness limit. *)
