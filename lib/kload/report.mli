(** The run report: everything a load run measured, as one record.

    The [fingerprint] is an MD5 over the per-tenant counter tuples in
    tenant order — the byte-for-byte replay witness: two runs of the
    same spec and seed must produce identical fingerprints. *)

type per_tenant = {
  t_class : int;  (** class index in the spec *)
  t_planned : int;
  t_executed : int;  (** ops that ran (admitted), successfully or not *)
  t_ok : int;
  t_errors : int;  (** residual errors after the retry policy *)
  t_shed : int;  (** refused by admission control with [EAGAIN] *)
  t_acked : int;  (** durable writes acknowledged (fsync + epoch check) *)
  t_estale : int;  (** stale-handle answers observed *)
  t_eintr : int;  (** quiesce aborts observed *)
  t_max_streak : int;  (** longest run of consecutive residual errors *)
  t_net_bytes : int;  (** response bytes over the socket layer *)
}

type t = {
  spec : Spec.t;
  seed : int;
  storm_name : string;
  sim_ns : int;  (** simulated time the run spanned *)
  planned : int;
  executed : int;
  ok : int;
  errors : int;
  shed : int;
  acked_writes : int;
  lost_acked_writes : int;  (** acked writes missing at read-back: must be 0 *)
  injected_faults : int;
  oopses : int;
  restarts : int;
  escalations : int;
  stale_rejected : int;
  recovery : Ksim.Hist.summary;  (** oops-to-healthy, merged across supervisors *)
  latency : (string * Ksim.Hist.summary) list;  (** service latency per op kind *)
  throughput_ops_per_sec : float;  (** executed ops per simulated second *)
  max_consec_errors : int;  (** worst tenant error streak *)
  admission_transitions : (int * Admission.mode) list;
  class_histogram : (string * int) list;
  tenant_counters : per_tenant array;
  fingerprint : string;
}

val fingerprint_of : per_tenant array -> string
(** Hex MD5 of the counters in tenant order. *)

val pp : Format.formatter -> t -> unit
(** Human-readable summary (not the replay witness). *)

val to_json_string : t -> string
(** The report as a JSON object (hand-rolled; no external deps) —
    what [BENCH_6.json] and the CLI emit. *)
