(** The seeded operation generator: turns a {!Spec.t} plus one integer
    seed into per-tenant operation streams.

    Each tenant owns a private SplitMix64 stream derived from
    [(seed, tenant id)] — same derivation idea as
    {!Ksim.Failpoint}'s per-site streams — so a tenant's sequence of
    (kind, key, size, think) draws is a pure function of the seed and
    its id, independent of every other tenant and of scheduling order.
    Every generated op consumes a {e fixed} number of RNG draws, so the
    streams stay aligned no matter which kinds come out. *)

type op = {
  kind : Spec.kind;
  key : int;  (** durable key rank (Zipf over the spec key space) *)
  size : int;  (** payload bytes (bounded Pareto up to the spec ceiling) *)
  think_ns : int;  (** pre-op think time, simulated ns (bounded Pareto) *)
}

type tenant = {
  id : int;
  class_ix : int;  (** index into the spec's class list *)
  cls : Spec.tenant_class;
  rng : Ksim.Rng.t;  (** the tenant's private stream; consumed by {!next_op} *)
}

type t

val plan : Spec.t -> seed:int -> t
(** Build the tenant population: class assignment is each tenant's first
    private draw, weighted by the class weights. *)

val spec : t -> Spec.t
val tenants : t -> tenant array

val next_op : t -> tenant -> op
(** The tenant's next operation (consumes its stream). *)

val class_histogram : t -> (string * int) list
(** Tenants per class, in spec order — for reports. *)
