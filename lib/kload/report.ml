type per_tenant = {
  t_class : int;
  t_planned : int;
  t_executed : int;
  t_ok : int;
  t_errors : int;
  t_shed : int;
  t_acked : int;
  t_estale : int;
  t_eintr : int;
  t_max_streak : int;
  t_net_bytes : int;
}

type t = {
  spec : Spec.t;
  seed : int;
  storm_name : string;
  sim_ns : int;
  planned : int;
  executed : int;
  ok : int;
  errors : int;
  shed : int;
  acked_writes : int;
  lost_acked_writes : int;
  injected_faults : int;
  oopses : int;
  restarts : int;
  escalations : int;
  stale_rejected : int;
  recovery : Ksim.Hist.summary;
  latency : (string * Ksim.Hist.summary) list;
  throughput_ops_per_sec : float;
  max_consec_errors : int;
  admission_transitions : (int * Admission.mode) list;
  class_histogram : (string * int) list;
  tenant_counters : per_tenant array;
  fingerprint : string;
}

(* The replay witness: every counter of every tenant, in tenant order,
   digested.  Any divergence between two same-seed runs — one op more,
   one error elsewhere, one byte of response — changes it. *)
let fingerprint_of counters =
  let buf = Buffer.create (Array.length counters * 24) in
  Array.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d;" c.t_class c.t_planned
           c.t_executed c.t_ok c.t_errors c.t_shed c.t_acked c.t_estale c.t_eintr
           c.t_max_streak c.t_net_bytes))
    counters;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let pp fmt t =
  Format.fprintf fmt "@[<v>kload: %d tenants seed %d storm %s@," t.spec.Spec.tenants
    t.seed t.storm_name;
  Format.fprintf fmt "  ops: %d planned, %d executed, %d ok, %d errors, %d shed@,"
    t.planned t.executed t.ok t.errors t.shed;
  Format.fprintf fmt "  durability: %d acked writes, %d lost@," t.acked_writes
    t.lost_acked_writes;
  Format.fprintf fmt
    "  faults: %d injected, %d oopses, %d restarts, %d escalations, %d stale@,"
    t.injected_faults t.oopses t.restarts t.escalations t.stale_rejected;
  Format.fprintf fmt "  recovery: %a@," Ksim.Hist.pp_summary t.recovery;
  List.iter
    (fun (k, s) -> Format.fprintf fmt "  latency %-6s %a@," k Ksim.Hist.pp_summary s)
    t.latency;
  Format.fprintf fmt "  throughput: %.0f ops/s over %d sim-ns@," t.throughput_ops_per_sec
    t.sim_ns;
  Format.fprintf fmt "  worst error streak: %d@," t.max_consec_errors;
  Format.fprintf fmt "  admission: %d transitions%s@," (List.length t.admission_transitions)
    (match List.rev t.admission_transitions with
    | (ns, m) :: _ -> Printf.sprintf " (last: %s @ %d ns)" (Admission.mode_name m) ns
    | [] -> "");
  Format.fprintf fmt "  fingerprint: %s@]" t.fingerprint

(* Hand-rolled JSON: the report is flat and the repo takes no deps. *)
let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let summary_json (s : Ksim.Hist.summary) =
  Printf.sprintf
    {|{"count":%d,"min":%d,"mean":%.1f,"max":%d,"p50":%d,"p95":%d,"p99":%d,"p999":%d}|}
    s.Ksim.Hist.count s.min s.mean s.max s.p50 s.p95 s.p99 s.p999

let to_json_string t =
  let buf = Buffer.create 1024 in
  let field name value = Buffer.add_string buf (Printf.sprintf "\"%s\":%s," name value) in
  Buffer.add_char buf '{';
  field "spec" (Printf.sprintf "\"%s\"" (json_escape (Spec.to_string t.spec)));
  field "seed" (string_of_int t.seed);
  field "storm" (Printf.sprintf "\"%s\"" (json_escape t.storm_name));
  field "sim_ns" (string_of_int t.sim_ns);
  field "planned" (string_of_int t.planned);
  field "executed" (string_of_int t.executed);
  field "ok" (string_of_int t.ok);
  field "errors" (string_of_int t.errors);
  field "shed" (string_of_int t.shed);
  field "shed_rate"
    (Printf.sprintf "%.4f" (if t.planned = 0 then 0.0 else float_of_int t.shed /. float_of_int t.planned));
  field "acked_writes" (string_of_int t.acked_writes);
  field "lost_acked_writes" (string_of_int t.lost_acked_writes);
  field "injected_faults" (string_of_int t.injected_faults);
  field "oopses" (string_of_int t.oopses);
  field "restarts" (string_of_int t.restarts);
  field "escalations" (string_of_int t.escalations);
  field "stale_rejected" (string_of_int t.stale_rejected);
  field "recovery_ns" (summary_json t.recovery);
  field "latency_ns"
    (Printf.sprintf "{%s}"
       (String.concat ","
          (List.map (fun (k, s) -> Printf.sprintf "\"%s\":%s" k (summary_json s)) t.latency)));
  field "throughput_ops_per_sec" (Printf.sprintf "%.1f" t.throughput_ops_per_sec);
  field "max_consec_errors" (string_of_int t.max_consec_errors);
  field "admission_transitions"
    (Printf.sprintf "[%s]"
       (String.concat ","
          (List.map
             (fun (ns, m) -> Printf.sprintf {|{"at_ns":%d,"mode":"%s"}|} ns (Admission.mode_name m))
             t.admission_transitions)));
  field "class_histogram"
    (Printf.sprintf "{%s}"
       (String.concat ","
          (List.map (fun (name, n) -> Printf.sprintf "\"%s\":%d" (json_escape name) n)
             t.class_histogram)));
  Buffer.add_string buf (Printf.sprintf "\"fingerprint\":\"%s\"" t.fingerprint);
  Buffer.add_char buf '}';
  Buffer.contents buf
