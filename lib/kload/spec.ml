type kind =
  | Meta
  | Data_write
  | Data_read
  | Net
  | Churn

let kind_id = function
  | Meta -> 0
  | Data_write -> 1
  | Data_read -> 2
  | Net -> 3
  | Churn -> 4

let kind_name = function
  | Meta -> "meta"
  | Data_write -> "dwrite"
  | Data_read -> "dread"
  | Net -> "net"
  | Churn -> "churn"

let all_kinds = [ Meta; Data_write; Data_read; Net; Churn ]

let kind_of_name = function
  | "meta" -> Some Meta
  | "dwrite" -> Some Data_write
  | "dread" -> Some Data_read
  | "net" -> Some Net
  | "churn" -> Some Churn
  | _ -> None

type tenant_class = {
  cname : string;
  weight : int;
  mix : (kind * int) list;
}

type t = {
  tenants : int;
  ops_per_tenant : int;
  keyspace : int;
  payload : int;
  classes : tenant_class list;
}

let default =
  {
    tenants = 500;
    ops_per_tenant = 8;
    keyspace = 48;
    payload = 2048;
    classes =
      [
        {
          cname = "interactive";
          weight = 5;
          mix = [ (Meta, 5); (Data_read, 3); (Data_write, 1); (Net, 2) ];
        };
        { cname = "bulk"; weight = 2; mix = [ (Data_write, 8); (Data_read, 2); (Meta, 1) ] };
        { cname = "rpc"; weight = 3; mix = [ (Net, 8); (Meta, 1) ] };
        { cname = "churny"; weight = 1; mix = [ (Churn, 6); (Meta, 2) ] };
      ];
  }

let total_ops t = t.tenants * t.ops_per_tenant

let validate t =
  if t.tenants <= 0 then Error "tenants must be positive"
  else if t.ops_per_tenant <= 0 then Error "ops must be positive"
  else if t.keyspace <= 0 then Error "keyspace must be positive"
  else if t.payload < 16 then Error "payload must be at least 16 bytes"
  else if t.classes = [] then Error "at least one tenant class required"
  else if List.exists (fun c -> c.weight <= 0) t.classes then
    Error "class weights must be positive"
  else if List.exists (fun c -> c.mix = []) t.classes then Error "empty class mix"
  else if
    List.exists (fun c -> List.exists (fun (_, w) -> w <= 0) c.mix) t.classes
  then Error "mix weights must be positive"
  else Ok t

(* Parsing ----------------------------------------------------------------- *)

let strip s =
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && s.[!i] = ' ' do incr i done;
  while !j >= !i && s.[!j] = ' ' do decr j done;
  String.sub s !i (!j - !i + 1)

let split_on c s = String.split_on_char c s |> List.map strip |> List.filter (( <> ) "")

let parse_mix s =
  let entry acc part =
    match acc with
    | Error _ as e -> e
    | Ok mix -> (
        match String.split_on_char '=' part with
        | [ k; w ] -> (
            match (kind_of_name (strip k), int_of_string_opt (strip w)) with
            | Some kind, Some weight -> Ok ((kind, weight) :: mix)
            | None, _ -> Error (Printf.sprintf "unknown op kind %S" (strip k))
            | _, None -> Error (Printf.sprintf "bad mix weight %S" (strip w)))
        | _ -> Error (Printf.sprintf "bad mix entry %S (want kind=weight)" part))
  in
  Result.map List.rev (List.fold_left entry (Ok []) (split_on ',' s))

let parse_class s =
  match String.split_on_char ':' s with
  | [ name; weight; mix ] -> (
      match int_of_string_opt (strip weight) with
      | None -> Error (Printf.sprintf "bad class weight %S" (strip weight))
      | Some w ->
          Result.map (fun mix -> { cname = strip name; weight = w; mix }) (parse_mix mix))
  | _ -> Error (Printf.sprintf "bad class %S (want name:weight:mix)" s)

let parse_classes s =
  let entry acc part =
    match acc with
    | Error _ as e -> e
    | Ok classes -> Result.map (fun c -> c :: classes) (parse_class part)
  in
  Result.map List.rev (List.fold_left entry (Ok []) (split_on '|' s))

let of_string s =
  let ( let* ) = Result.bind in
  let field acc part =
    let* t = acc in
    match String.index_opt part '=' with
    | None -> Error (Printf.sprintf "bad field %S (want key=value)" part)
    | Some i -> (
        let key = strip (String.sub part 0 i) in
        let value = strip (String.sub part (i + 1) (String.length part - i - 1)) in
        let int_field set =
          match int_of_string_opt value with
          | Some n -> Ok (set n)
          | None -> Error (Printf.sprintf "bad integer for %s: %S" key value)
        in
        match key with
        | "tenants" -> int_field (fun n -> { t with tenants = n })
        | "ops" -> int_field (fun n -> { t with ops_per_tenant = n })
        | "keyspace" -> int_field (fun n -> { t with keyspace = n })
        | "payload" -> int_field (fun n -> { t with payload = n })
        | "classes" -> Result.map (fun classes -> { t with classes }) (parse_classes value)
        | _ -> Error (Printf.sprintf "unknown field %S" key))
  in
  let* t = List.fold_left field (Ok default) (split_on ';' s) in
  validate t

let to_string t =
  let mix_str mix =
    String.concat ","
      (List.map (fun (k, w) -> Printf.sprintf "%s=%d" (kind_name k) w) mix)
  in
  let class_str c = Printf.sprintf "%s:%d:%s" c.cname c.weight (mix_str c.mix) in
  Printf.sprintf "tenants=%d;ops=%d;keyspace=%d;payload=%d;classes=%s" t.tenants
    t.ops_per_tenant t.keyspace t.payload
    (String.concat "|" (List.map class_str t.classes))

let pp fmt t = Format.pp_print_string fmt (to_string t)
