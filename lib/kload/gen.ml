type op = {
  kind : Spec.kind;
  key : int;
  size : int;
  think_ns : int;
}

type tenant = {
  id : int;
  class_ix : int;
  cls : Spec.tenant_class;
  rng : Ksim.Rng.t;
}

type t = {
  spec : Spec.t;
  tenants : tenant array;
  zipf : Dist.Zipf.t;
}

(* Per-tenant stream: the registry seed scrambled with the tenant id.
   SplitMix64 decorrelates nearby seeds, so consecutive ids give
   independent-looking streams while staying a pure function of
   (seed, id). *)
let tenant_rng ~seed id =
  Ksim.Rng.create
    Int64.(add (mul (of_int seed) 0x9E3779B97F4A7C15L) (of_int (id + 1)))

let pick_weighted rng weighted =
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weighted in
  let r = Ksim.Rng.int rng total in
  let rec go acc = function
    | [] -> assert false
    | (x, w) :: rest -> if r < acc + w then x else go (acc + w) rest
  in
  go 0 weighted

let plan spec ~seed =
  let classes = List.mapi (fun i c -> ((i, c), c.Spec.weight)) spec.Spec.classes in
  let tenants =
    Array.init spec.Spec.tenants (fun id ->
        let rng = tenant_rng ~seed id in
        let class_ix, cls = pick_weighted rng classes in
        { id; class_ix; cls; rng })
  in
  { spec; tenants; zipf = Dist.Zipf.create ~n:spec.Spec.keyspace () }

let spec t = t.spec
let tenants t = t.tenants

(* Fixed draw count per op — kind, key, size, think — so a tenant's
   stream position depends only on how many ops it has generated. *)
let next_op t tenant =
  let kind = pick_weighted tenant.rng (List.map (fun (k, w) -> (k, w)) tenant.cls.Spec.mix) in
  let key = Dist.Zipf.draw t.zipf tenant.rng in
  let size = Dist.pareto_int tenant.rng ~alpha:1.2 ~xmin:32 ~xmax:t.spec.Spec.payload in
  let think_ns = Dist.pareto_int tenant.rng ~alpha:1.3 ~xmin:200 ~xmax:200_000 in
  { kind; key; size; think_ns }

let class_histogram t =
  List.mapi
    (fun i c ->
      let n =
        Array.fold_left (fun acc tn -> if tn.class_ix = i then acc + 1 else acc) 0 t.tenants
      in
      (c.Spec.cname, n))
    t.spec.Spec.classes
