(* Refinement traces recorded from the load harness.

   The harness announces every admitted operation to its sink as an
   abstract [Fs_spec] op with full VFS paths; [record] keeps the ops
   under one mount and rebases them to the mount root, yielding a trace
   a krefine machine (journalfs, cowfs, microreboot) can replay against
   the spec.  [Fsync] is mount-global in the VFS, so it is always
   kept. *)

module Fs = Kspec.Fs_spec

(* Sized so the /dur stream comfortably clears [target_ops]: every
   dwrite emits 3 ops (create, write, fsync), every dread 1, and the
   single class is all data traffic. *)
let spec_for ~target_ops =
  let per_tenant op_budget tenants = (op_budget + tenants - 1) / tenants in
  let tenants = 64 in
  {
    Spec.tenants;
    (* the dwrite-heavy mix averages ~1.5 emitted /dur ops per admitted
       op (a contended writer degrades to a single read) *)
    ops_per_tenant = per_tenant (max 1 (target_ops * 4 / 5)) tenants + 1;
    keyspace = 48;
    payload = 256;
    classes =
      [
        { Spec.cname = "rec"; weight = 1; mix = [ (Spec.Data_write, 3); (Spec.Data_read, 1) ] };
      ];
  }

(* Admission that never sheds: recording wants the full op stream. *)
let open_admission spec =
  let total = Spec.total_ops spec in
  {
    Admission.window_ns = 1_000_000_000;
    capacity = total + 1;
    per_tenant_cap = total + 1;
    hi_degrade = total + 1;
    hi_reject = total + 2;
    low_water = 0;
  }

let rebase prefix (op : Fs.op) =
  let strip p = Fs.strip_prefix prefix p in
  match op with
  | Fs.Create p -> Option.map (fun p -> Fs.Create p) (strip p)
  | Fs.Mkdir p -> Option.map (fun p -> Fs.Mkdir p) (strip p)
  | Fs.Write { file; off; data } ->
      Option.map (fun file -> Fs.Write { file; off; data }) (strip file)
  | Fs.Read { file; off; len } -> Option.map (fun file -> Fs.Read { file; off; len }) (strip file)
  | Fs.Truncate (p, n) -> Option.map (fun p -> Fs.Truncate (p, n)) (strip p)
  | Fs.Unlink p -> Option.map (fun p -> Fs.Unlink p) (strip p)
  | Fs.Rmdir p -> Option.map (fun p -> Fs.Rmdir p) (strip p)
  | Fs.Rename (a, b) -> (
      match (strip a, strip b) with
      | Some a, Some b -> Some (Fs.Rename (a, b))
      | _ -> None)
  | Fs.Readdir p -> Option.map (fun p -> Fs.Readdir p) (strip p)
  | Fs.Stat p -> Option.map (fun p -> Fs.Stat p) (strip p)
  | Fs.Fsync -> Some Fs.Fsync

let record ?spec ?(under = "/dur") ?(target_ops = 10_000) ~seed () =
  let spec = match spec with Some s -> s | None -> spec_for ~target_ops in
  let prefix = Fs.path_of_string under in
  let acc = ref [] in
  let sink op = acc := op :: !acc in
  let (_ : Harness.result) =
    Harness.run ~spec ~storm:Harness.No_storm ~admission:(open_admission spec) ~sink ~seed ()
  in
  List.rev !acc |> List.filter_map (rebase prefix)

(* On-disk form: one op per line, percent-encoded path segments and
   data so the grammar stays whitespace-delimited. *)

let hex = "0123456789abcdef"

let enc s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      let code = Char.code c in
      if code > 0x20 && code < 0x7f && c <> '%' then Buffer.add_char buf c
      else begin
        Buffer.add_char buf '%';
        Buffer.add_char buf hex.[code lsr 4];
        Buffer.add_char buf hex.[code land 0xf]
      end)
    s;
  if Buffer.length buf = 0 then "%" else Buffer.contents buf

let dec s =
  if s = "%" then Ok ""
  else
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let rec go i =
      if i >= n then Ok (Buffer.contents buf)
      else if s.[i] = '%' then
        if i + 3 > n then Error (Fmt.str "truncated escape in %S" s)
        else
          match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
          | Some code ->
              Buffer.add_char buf (Char.chr (code land 0xff));
              go (i + 3)
          | None -> Error (Fmt.str "bad escape in %S" s)
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    in
    go 0

let enc_path p = enc (Fs.path_to_string p)

let dec_path s = Result.map Fs.path_of_string (dec s)

let to_line (op : Fs.op) =
  match op with
  | Fs.Create p -> "create " ^ enc_path p
  | Fs.Mkdir p -> "mkdir " ^ enc_path p
  | Fs.Write { file; off; data } -> Fmt.str "write %s %d %s" (enc_path file) off (enc data)
  | Fs.Read { file; off; len } -> Fmt.str "read %s %d %d" (enc_path file) off len
  | Fs.Truncate (p, n) -> Fmt.str "truncate %s %d" (enc_path p) n
  | Fs.Unlink p -> "unlink " ^ enc_path p
  | Fs.Rmdir p -> "rmdir " ^ enc_path p
  | Fs.Rename (a, b) -> Fmt.str "rename %s %s" (enc_path a) (enc_path b)
  | Fs.Readdir p -> "readdir " ^ enc_path p
  | Fs.Stat p -> "stat " ^ enc_path p
  | Fs.Fsync -> "fsync"

let of_line line =
  let ( let* ) = Result.bind in
  match String.split_on_char ' ' (String.trim line) with
  | [ "create"; p ] -> Result.map (fun p -> Fs.Create p) (dec_path p)
  | [ "mkdir"; p ] -> Result.map (fun p -> Fs.Mkdir p) (dec_path p)
  | [ "write"; p; off; data ] -> (
      match int_of_string_opt off with
      | None -> Error (Fmt.str "bad offset %S" off)
      | Some off ->
          let* file = dec_path p in
          let* data = dec data in
          Ok (Fs.Write { file; off; data }))
  | [ "read"; p; off; len ] -> (
      match (int_of_string_opt off, int_of_string_opt len) with
      | Some off, Some len -> Result.map (fun file -> Fs.Read { file; off; len }) (dec_path p)
      | _ -> Error (Fmt.str "bad read %S" line))
  | [ "truncate"; p; n ] -> (
      match int_of_string_opt n with
      | Some n -> Result.map (fun p -> Fs.Truncate (p, n)) (dec_path p)
      | None -> Error (Fmt.str "bad truncate %S" line))
  | [ "unlink"; p ] -> Result.map (fun p -> Fs.Unlink p) (dec_path p)
  | [ "rmdir"; p ] -> Result.map (fun p -> Fs.Rmdir p) (dec_path p)
  | [ "rename"; a; b ] ->
      let* a = dec_path a in
      let* b = dec_path b in
      Ok (Fs.Rename (a, b))
  | [ "readdir"; p ] -> Result.map (fun p -> Fs.Readdir p) (dec_path p)
  | [ "stat"; p ] -> Result.map (fun p -> Fs.Stat p) (dec_path p)
  | [ "fsync" ] -> Ok Fs.Fsync
  | _ -> Error (Fmt.str "unparseable trace line %S" line)

let save ~path ops =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun op ->
          output_string oc (to_line op);
          output_char oc '\n')
        ops)

let load ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc lineno =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> go acc (lineno + 1)
        | line -> (
            match of_line line with
            | Ok op -> go (op :: acc) (lineno + 1)
            | Error e -> Error (Fmt.str "line %d: %s" lineno e))
      in
      go [] 1)
