(* Heavy-tailed draws by inverse CDF: one [Rng.float] per sample, no
   rejection loops, so the number of RNG draws per generated operation
   is fixed and the per-tenant streams stay aligned across replays. *)

let pareto rng ~alpha ~xmin =
  if alpha <= 0.0 || xmin <= 0.0 then invalid_arg "Dist.pareto";
  let u = 1.0 -. Ksim.Rng.float rng (* in (0, 1] *) in
  xmin /. (u ** (1.0 /. alpha))

(* Inverse CDF of the Pareto conditioned on [x <= xmax]: truncation by
   construction rather than by resampling. *)
let bounded_pareto rng ~alpha ~xmin ~xmax =
  if alpha <= 0.0 || xmin <= 0.0 || xmax < xmin then invalid_arg "Dist.bounded_pareto";
  let u = Ksim.Rng.float rng in
  let l = xmin ** alpha and h = xmax ** alpha in
  let x = (-.((u *. h) -. u *. l -. h) /. (h *. l)) ** (-1.0 /. alpha) in
  Float.min xmax (Float.max xmin x)

let pareto_int rng ~alpha ~xmin ~xmax =
  if xmin <= 0 || xmax < xmin then invalid_arg "Dist.pareto_int";
  let x = bounded_pareto rng ~alpha ~xmin:(float_of_int xmin) ~xmax:(float_of_int xmax) in
  min xmax (max xmin (int_of_float x))

module Zipf = struct
  type t = {
    n : int;
    cdf : float array; (* cdf.(k) = P(rank <= k), cdf.(n-1) = 1.0 *)
  }

  let create ?(s = 1.01) ~n () =
    if n <= 0 || s < 0.0 then invalid_arg "Dist.Zipf.create";
    let w = Array.init n (fun k -> 1.0 /. (float_of_int (k + 1) ** s)) in
    let total = Array.fold_left ( +. ) 0.0 w in
    let acc = ref 0.0 in
    let cdf =
      Array.map
        (fun wk ->
          acc := !acc +. (wk /. total);
          !acc)
        w
    in
    cdf.(n - 1) <- 1.0;
    { n; cdf }

  let n t = t.n

  let draw t rng =
    let u = Ksim.Rng.float rng in
    (* First index with cdf.(i) > u. *)
    let lo = ref 0 and hi = ref (t.n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) > u then hi := mid else lo := mid + 1
    done;
    !lo
end
