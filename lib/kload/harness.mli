(** The load harness: spin the whole stack up, run a {!Spec.t} population
    of tenants as {!Kproc.Kernel} processes, compose a failpoint storm
    over the run, and measure.

    Topology per run, all sharing one {!Ksim.Failpoint} registry and one
    {!Ksim.Kstats} table:

    {v
      Kproc.Kernel (cooperative scheduler, one process per tenant)
        /      root memfs            — VFS metadata traffic (fault-free)
        /dur   supervised journalfs  — over Resilient/Flakydev/Wcache/
                                       Blockdev; microreboot =
                                       drain-cache + journal-replay remount
        /svc   supervised memfs      — panicky; churn target (RAM loss ok)
        sock   Knet.Sock.Supervised  — request/response traffic
    v}

    Determinism: tenants draw from private seeded streams ({!Gen}), the
    scheduler is deterministic round-robin, storms tick on the global
    operation counter, and latencies live on a simulated clock — so one
    [(spec, storm, seed)] triple fixes the entire run, byte for byte
    (witnessed by {!Report.t.fingerprint}).

    Durability acknowledgment: writers take a per-key try-lock (a
    contended writer degrades to a read of the key — optimistic
    concurrency — since two interleaved writers would leave the final
    value schedule-dependent).  A durable write is {e acked} only when
    its fsync succeeded and the [/dur] mount epoch is unchanged from
    just before the write, so an ack never straddles a microreboot.
    After the run (storm disabled) every acked key is read back and must
    parse at or past its acked version; misses are
    {!Report.t.lost_acked_writes}. *)

type storm_preset =
  | No_storm
  | Panic_wave  (** module-panic volleys on [/svc], [/dur] and the socket layer *)
  | Eio_wave  (** transient-EIO and torn-write bursts on the [/dur] device *)
  | Sock_storm  (** two overlapping bursts on the socket panic site *)
  | Cache_wave
      (** lying-flush and writeback-reorder bursts on the [/dur] device's
          write-back cache — barrier discipline under test *)
  | Mixed  (** all of the above *)

val storm_name : storm_preset -> string
val storm_of_string : string -> storm_preset option
val all_storms : storm_preset list

val bursts_for : storm_preset -> total_ticks:int -> Ksim.Storm.burst list
(** The preset's schedule scaled to a run of [total_ticks] operations. *)

type result = {
  report : Report.t;
  tenant_op_counts : int array;
      (** executed ops per tenant, counted by the kebpf tenant probe *)
  class_kind_counts : int array;
      (** kebpf class/kind matrix: bucket [class * 8 + kind] *)
  crashed_tenants : int;  (** processes that died uncontained (must be 0) *)
  stats : Ksim.Kstats.t;
}

val run :
  ?spec:Spec.t ->
  ?storm:storm_preset ->
  ?admission:Admission.config ->
  ?sink:(Kspec.Fs_spec.op -> unit) ->
  seed:int ->
  unit ->
  result
(** One full load run.  [sink] receives every admitted operation as the
    abstract {!Kspec.Fs_spec} op it intends (full VFS paths, once per op,
    before any retries) — the recording hook {!Trace.record} builds
    refinement traces from.  @raise Invalid_argument on an invalid
    spec. *)
