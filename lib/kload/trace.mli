(** Refinement traces recorded from the load harness.

    {!record} runs a real (deterministic) {!Harness} population with the
    op sink attached and keeps the operations under one mount, rebased to
    its root — the "real traffic" input the krefine enumerator checks
    journalfs/cowfs/microreboot machines against.  {!save}/{!load} give
    traces a line-based on-disk form for [safeos refine --trace]. *)

val spec_for : target_ops:int -> Spec.t
(** A data-heavy workload spec sized so the recorded [/dur] trace
    reaches at least [target_ops] operations. *)

val record :
  ?spec:Spec.t -> ?under:string -> ?target_ops:int -> seed:int -> unit -> Kspec.Fs_spec.op list
(** Record one harness run (storm-free, generous admission so nothing is
    shed) and return the ops under [under] (default ["/dur"]) rebased to
    the mount root.  Deterministic in [(spec, seed)].  [target_ops]
    (default 10_000) sizes the default spec; an explicit [spec] wins. *)

val save : path:string -> Kspec.Fs_spec.op list -> unit

val load : path:string -> (Kspec.Fs_spec.op list, string) Stdlib.result
(** Parse a saved trace; [Error] names the first bad line. *)

val to_line : Kspec.Fs_spec.op -> string
val of_line : string -> (Kspec.Fs_spec.op, string) Stdlib.result
