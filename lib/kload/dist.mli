(** Heavy-tailed distributions for the load generator, all driven by an
    explicit {!Ksim.Rng.t} so draws replay exactly from the seed.

    Real multi-tenant traffic is not Poisson: think times and request
    sizes are Pareto (a few giants dominate the mass) and key popularity
    is Zipfian (a few keys take most of the traffic).  These are the
    standard storage/tenant-workload shapes (cf. YCSB's zipfian request
    distribution). *)

val pareto : Ksim.Rng.t -> alpha:float -> xmin:float -> float
(** One draw from a Pareto distribution with shape [alpha] and scale
    [xmin] (so every draw is [>= xmin]).  Smaller [alpha] = heavier
    tail; [alpha <= 1] has infinite mean.
    @raise Invalid_argument on non-positive [alpha] or [xmin]. *)

val bounded_pareto : Ksim.Rng.t -> alpha:float -> xmin:float -> xmax:float -> float
(** Pareto truncated to [\[xmin, xmax\]] by inverse-CDF (not by
    rejection), so one RNG draw per sample and the tail mass folds into
    the bound deterministically. *)

val pareto_int : Ksim.Rng.t -> alpha:float -> xmin:int -> xmax:int -> int
(** {!bounded_pareto} rounded down to an integer — think times in
    simulated ns, payload sizes in bytes. *)

(** Zipfian ranks over a finite key space, by precomputed inverse CDF. *)
module Zipf : sig
  type t

  val create : ?s:float -> n:int -> unit -> t
  (** Ranks [0 .. n-1] with P(k) proportional to [1/(k+1)^s].  Default
      [s = 1.01], the classic skew where the top rank takes a few
      percent of all traffic.  @raise Invalid_argument on [n <= 0] or
      negative [s]. *)

  val n : t -> int

  val draw : t -> Ksim.Rng.t -> int
  (** One rank, by binary search over the cumulative table: O(log n),
    one RNG draw. *)
end
