type mode =
  | Accepting
  | Reads_only
  | Rejecting

let mode_name = function
  | Accepting -> "accepting"
  | Reads_only -> "reads-only"
  | Rejecting -> "rejecting"

type config = {
  window_ns : int;
  capacity : int;
  per_tenant_cap : int;
  hi_degrade : int;
  hi_reject : int;
  low_water : int;
}

let default_config =
  {
    window_ns = 50_000;
    capacity = 40;
    per_tenant_cap = 8;
    hi_degrade = 40;
    hi_reject = 120;
    low_water = 10;
  }

(* Mean clock advance per op is ~1.5 us (Pareto think + service cost),
   so a window offers ~window/1500 ops in the steady state; capacity at
   ~window/800 admits that comfortably and sheds only the Pareto
   clusters of near-minimum think times.  Thresholds scale with capacity
   so degradation needs a sustained overhang, not one bad window.
   Large populations get a longer window: at acceptance scale the
   steady-state estimate is smoother and per-window counters stay
   meaningful. *)
let config_for ~tenants =
  let window_ns = if tenants >= 2000 then 100_000 else 50_000 in
  let capacity = max 8 (window_ns / 800) in
  {
    window_ns;
    capacity;
    per_tenant_cap = max 4 (capacity / 8);
    hi_degrade = 2 * capacity;
    hi_reject = 6 * capacity;
    low_water = max 1 (capacity / 2);
  }

type decision =
  | Admit
  | Shed

type t = {
  cfg : config;
  mutable window_start : int;
  mutable offered : int;  (* this window *)
  mutable window_admitted : int;  (* this window *)
  mutable backlog : int;
  mutable mode : mode;
  mutable admitted : int;  (* totals *)
  mutable shed : int;
  per_tenant : int array;  (* admits this window *)
  shed_by_tenant : int array;
  mutable transitions : (int * mode) list;  (* newest first *)
}

let create ?(config = default_config) ~tenants () =
  {
    cfg = config;
    window_start = 0;
    offered = 0;
    window_admitted = 0;
    backlog = 0;
    mode = Accepting;
    admitted = 0;
    shed = 0;
    per_tenant = Array.make (max 1 tenants) 0;
    shed_by_tenant = Array.make (max 1 tenants) 0;
    transitions = [];
  }

let set_mode t ~now m =
  if t.mode <> m then begin
    t.mode <- m;
    t.transitions <- (now, m) :: t.transitions
  end

(* Window rollover: unadmitted demand becomes backlog, admitted demand
   drains it, and the mode follows the backlog through the hysteresis
   band.  [now] may be several windows ahead (a tenant slept through a
   long Pareto think time); idle windows drain backlog at full
   capacity. *)
let roll t ~now =
  while now - t.window_start >= t.cfg.window_ns do
    let overhang = t.offered - t.cfg.capacity in
    t.backlog <- max 0 (t.backlog + overhang);
    t.offered <- 0;
    t.window_admitted <- 0;
    Array.fill t.per_tenant 0 (Array.length t.per_tenant) 0;
    t.window_start <- t.window_start + t.cfg.window_ns;
    let m =
      if t.backlog >= t.cfg.hi_reject then Rejecting
      else if t.backlog >= t.cfg.hi_degrade then
        (* Entering degradation is one-way per window; recovery goes
           through the low-water mark. *)
        if t.mode = Rejecting then Rejecting else Reads_only
      else if t.backlog <= t.cfg.low_water then Accepting
      else t.mode
    in
    set_mode t ~now:t.window_start m
  done

let offer t ~now ~tenant ~read_only =
  roll t ~now;
  t.offered <- t.offered + 1;
  let tix = tenant mod Array.length t.per_tenant in
  let refuse () =
    t.shed <- t.shed + 1;
    t.shed_by_tenant.(tix) <- t.shed_by_tenant.(tix) + 1;
    Shed
  in
  let mode_admits =
    match t.mode with
    | Accepting -> true
    | Reads_only -> read_only
    | Rejecting -> false
  in
  if not mode_admits then refuse ()
  else if t.window_admitted >= t.cfg.capacity then refuse ()
  else if t.per_tenant.(tix) >= t.cfg.per_tenant_cap then refuse ()
  else begin
    t.window_admitted <- t.window_admitted + 1;
    t.per_tenant.(tix) <- t.per_tenant.(tix) + 1;
    t.admitted <- t.admitted + 1;
    Admit
  end

let mode t = t.mode
let backlog t = t.backlog
let admitted t = t.admitted
let shed t = t.shed
let shed_of_tenant t i = t.shed_by_tenant.(i mod Array.length t.shed_by_tenant)
let transitions t = List.rev t.transitions
