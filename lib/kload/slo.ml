type bounds = {
  max_recovery_p99_ns : int;
  max_consec_errors : int;
  max_shed_fraction : float;
  require_zero_lost_acks : bool;
}

let default_bounds =
  {
    max_recovery_p99_ns = 200_000;
    max_consec_errors = 12;
    max_shed_fraction = 0.6;
    require_zero_lost_acks = true;
  }

type verdict = {
  passed : bool;
  violations : string list;
}

let evaluate ?(bounds = default_bounds) (r : Report.t) =
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let recovery_p99 = r.Report.recovery.Ksim.Hist.p99 in
  if r.Report.recovery.Ksim.Hist.count > 0 && recovery_p99 > bounds.max_recovery_p99_ns then
    violate "recovery p99 %d ns exceeds bound %d ns" recovery_p99 bounds.max_recovery_p99_ns;
  if r.Report.max_consec_errors > bounds.max_consec_errors then
    violate "worst tenant error streak %d exceeds bound %d" r.Report.max_consec_errors
      bounds.max_consec_errors;
  let shed_fraction =
    if r.Report.planned = 0 then 0.0
    else float_of_int r.Report.shed /. float_of_int r.Report.planned
  in
  if shed_fraction > bounds.max_shed_fraction then
    violate "shed fraction %.3f exceeds bound %.3f" shed_fraction bounds.max_shed_fraction;
  if bounds.require_zero_lost_acks && r.Report.lost_acked_writes > 0 then
    violate "%d acknowledged writes lost (must be 0)" r.Report.lost_acked_writes;
  { passed = !violations = []; violations = List.rev !violations }

let pp_verdict fmt v =
  if v.passed then Format.fprintf fmt "SLO: pass"
  else
    Format.fprintf fmt "@[<v>SLO: FAIL@,%a@]"
      (Format.pp_print_list (fun fmt s -> Format.fprintf fmt "  - %s" s))
      v.violations
