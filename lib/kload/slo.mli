(** Recovery SLOs: the pass/fail contract a load run is gated on.

    Three obligations, from the issue's crash-safety bar:

    - {b recovery latency}: p99 of oops-to-healthy microreboot latency
      (on the supervisors' simulated clocks) under a bound;
    - {b bounded staleness}: no tenant sees more than
      [max_consec_errors] consecutive residual errors ([EIO]/[ESTALE]
      after its retry policy) — recovery must be visible to every
      tenant, not just on average;
    - {b zero lost acknowledged writes}: every durable write
      acknowledged (fsync succeeded, mount epoch unchanged) must be
      readable afterwards at (or past) the acknowledged version.

    Plus an overload bound: admission may shed at most
    [max_shed_fraction] of planned operations — backpressure is graceful
    degradation, not an outage. *)

type bounds = {
  max_recovery_p99_ns : int;
  max_consec_errors : int;
  max_shed_fraction : float;  (** in [0,1] *)
  require_zero_lost_acks : bool;
}

val default_bounds : bounds
(** p99 recovery under 200 us (simulated), at most 12 consecutive errors
    per tenant, at most 60% shed, zero lost acks. *)

type verdict = {
  passed : bool;
  violations : string list;  (** one line per violated obligation *)
}

val evaluate : ?bounds:bounds -> Report.t -> verdict

val pp_verdict : Format.formatter -> verdict -> unit
