(** The workload DSL: what a load run drives, as data.

    A spec names a tenant population, an op budget per tenant, the shared
    durable key space, the payload ceiling, and a set of {e tenant
    classes}.  Each tenant is assigned one class (weighted by the class
    [weight]s, from its own seeded stream) and draws its operations from
    the class's kind mix.

    Concrete syntax ([of_string]/[to_string] round-trip):

    {v
    tenants=500;ops=8;keyspace=48;payload=2048;
    classes=interactive:5:meta=5,dread=3,dwrite=1,net=2|bulk:2:dwrite=8,dread=2
    v}

    Semicolon-separated [key=value] pairs; [classes] is [|]-separated
    entries of [name:weight:mix], the mix being comma-separated
    [kind=weight] pairs over the kinds [meta], [dwrite], [dread], [net],
    [churn].  Omitted keys keep the {!default} value.  Whitespace around
    separators is ignored. *)

(** What one generated operation does to the kernel under test. *)
type kind =
  | Meta  (** VFS metadata traffic (create/readdir/unlink) on the root *)
  | Data_write  (** versioned durable write + fsync on the journaled mount *)
  | Data_read  (** durable read-back from the journaled mount *)
  | Net  (** one request/response round trip through the supervised socket layer *)
  | Churn  (** file churn on the supervised (panicky) service mount *)

val kind_id : kind -> int
(** Stable small integer for kebpf context encoding (0..4). *)

val kind_name : kind -> string
val all_kinds : kind list

type tenant_class = {
  cname : string;
  weight : int;  (** share of the tenant population, relative *)
  mix : (kind * int) list;  (** op-kind weights within the class *)
}

type t = {
  tenants : int;
  ops_per_tenant : int;
  keyspace : int;  (** shared durable keys [/dur/k<i>], [i < keyspace] *)
  payload : int;  (** payload size ceiling, bytes (Pareto-distributed below) *)
  classes : tenant_class list;
}

val default : t
(** 500 tenants, 8 ops each, 48 keys, 2048-byte ceiling, four classes:
    [interactive] (metadata-heavy), [bulk] (large writes), [rpc]
    (request/response), [churny] (service-module churn). *)

val total_ops : t -> int
(** [tenants * ops_per_tenant] — the tick space storms are scaled to. *)

val validate : t -> (t, string) result
(** Reject empty populations, empty classes, non-positive weights. *)

val of_string : string -> (t, string) result
(** Parse the DSL over {!default} (unmentioned fields keep defaults). *)

val to_string : t -> string
(** Canonical DSL text; [of_string (to_string t) = Ok t]. *)

val pp : Format.formatter -> t -> unit
