(** Per-tenant admission control with bounded queues and graceful
    degradation — the overload/backpressure layer.

    Time is the harness's simulated clock, divided into fixed windows.
    Each window admits at most [capacity] operations kernel-wide and at
    most [per_tenant_cap] per tenant (the bounded per-tenant queue).
    Excess demand accumulates as {e backlog} at window rollover;
    backlog crossing [hi_degrade] flips the system to [Reads_only]
    (mutations shed with [EAGAIN]), crossing [hi_reject] to [Rejecting]
    (everything sheds), and draining below [low_water] returns to
    [Accepting] — a hysteresis band, so the mode does not flap at the
    threshold. *)

type mode =
  | Accepting
  | Reads_only
  | Rejecting

val mode_name : mode -> string

type config = {
  window_ns : int;  (** window length on the simulated clock *)
  capacity : int;  (** kernel-wide admits per window *)
  per_tenant_cap : int;  (** admits per tenant per window (bounded queue) *)
  hi_degrade : int;  (** backlog threshold entering [Reads_only] *)
  hi_reject : int;  (** backlog threshold entering [Rejecting] *)
  low_water : int;  (** backlog threshold returning to [Accepting] *)
}

val default_config : config
val config_for : tenants:int -> config
(** A config scaled so a population of [tenants] sheds under bursts but
    drains between them. *)

type decision =
  | Admit
  | Shed  (** refused with [EAGAIN]: queue bound or overload mode *)

type t

val create : ?config:config -> tenants:int -> unit -> t

val offer : t -> now:int -> tenant:int -> read_only:bool -> decision
(** One operation arriving at simulated time [now].  [read_only] ops are
    still admitted in [Reads_only] mode. *)

val mode : t -> mode
val backlog : t -> int
val admitted : t -> int
val shed : t -> int
val shed_of_tenant : t -> int -> int

val transitions : t -> (int * mode) list
(** Mode changes as [(window start ns, new mode)], oldest first —
    the degraded-mode log the acceptance criteria ask for. *)
