(* The load harness.  One run = one kernel, one failpoint registry, one
   stats table, [spec.tenants] cooperative processes, one storm.

   Everything observable is deterministic in (spec, storm, seed): tenant
   streams are private SplitMix64 generators, the scheduler is
   deterministic round-robin, the storm ticks on the global op counter,
   and time is a simulated clock advanced by an explicit cost model —
   never the wall clock. *)

type storm_preset =
  | No_storm
  | Panic_wave
  | Eio_wave
  | Sock_storm
  | Cache_wave
  | Mixed

let storm_name = function
  | No_storm -> "none"
  | Panic_wave -> "panic-wave"
  | Eio_wave -> "eio-wave"
  | Sock_storm -> "sock-storm"
  | Cache_wave -> "cache-wave"
  | Mixed -> "mixed"

let all_storms = [ No_storm; Panic_wave; Eio_wave; Sock_storm; Cache_wave; Mixed ]

let storm_of_string s =
  List.find_opt (fun p -> storm_name p = s) all_storms

(* Burst windows as twelfths of the run's tick space, so a preset scales
   from a 100-op smoke to a 100k-op acceptance run unchanged. *)
let bursts_for preset ~total_ticks =
  let w site lo hi probability =
    let start = max 0 (total_ticks * lo / 12) in
    let stop = max (start + 1) (total_ticks * hi / 12) in
    { Ksim.Storm.site; start; stop; probability; times = -1 }
  in
  let panic =
    [
      w "svc.panic" 2 4 0.04;
      w "dur.panic" 3 6 0.015;
      w Knet.Sock.Supervised.panic_site 6 9 0.04;
    ]
  in
  let eio =
    [
      w "flaky.write-eio" 2 4 0.25;
      w "flaky.read-eio" 4 6 0.25;
      w "flaky.torn-write" 2 6 0.05;
    ]
  in
  (* Two overlapping bursts on one site: the composition semantics
     (union probability, summed budgets) exercised in anger. *)
  let sock =
    [
      w Knet.Sock.Supervised.panic_site 2 7 0.03;
      w Knet.Sock.Supervised.panic_site 5 9 0.03;
    ]
  in
  (* Cache-loss waves: the drive lies about flush and destages out of
     order.  Correct barrier discipline (journalfs keeps its barriers)
     makes both invisible to the durability audit — the SLO gate proves
     it. *)
  let cache =
    [
      w "wcache.flush-dropped" 3 6 0.2;
      w "wcache.writeback-reorder" 2 8 0.5;
    ]
  in
  match preset with
  | No_storm -> []
  | Panic_wave -> panic
  | Eio_wave -> eio
  | Sock_storm -> sock
  | Cache_wave -> cache
  | Mixed -> panic @ eio @ sock @ cache

type result = {
  report : Report.t;
  tenant_op_counts : int array;
  class_kind_counts : int array;
  crashed_tenants : int;
  stats : Ksim.Kstats.t;
}

(* A roomier device than the default: the shared key space must fit
   payload-ceiling files with headroom (ENOSPC is a workload bug here,
   not an interesting fault). *)
let geometry =
  { Kfs.Journalfs.nblocks = 4096; block_size = 512; jblocks = 96; ninodes = 128 }

(* Supervisors under storm need a restart budget that cannot exhaust (a
   Failed mount turns the rest of the run into a degraded-mode study,
   which is not what the SLO gates measure) and the default backoff
   curve, which caps recovery at backoff_cap + one op. *)
let sup_policy =
  {
    Ksim.Supervisor.restart_budget = 1_000_000;
    backoff_base = 200;
    backoff_cap = 5_000;
    op_cost = 100;
  }

(* Cost model, simulated ns: base per kind plus a size-proportional term,
   plus penalties per EINTR retry / ESTALE reopen.  Arbitrary but fixed —
   latency percentiles are comparable across runs and seeds. *)
let base_cost (op : Gen.op) =
  match op.kind with
  | Spec.Meta -> 400
  | Spec.Data_write -> 900 + (op.size / 8)
  | Spec.Data_read -> 500 + (op.size / 16)
  | Spec.Net -> 600 + (op.size / 8)
  | Spec.Churn -> 500

let eintr_penalty = 300
let estale_penalty = 500
let version_prefix_len = 10 (* "v%08d:" *)

let run ?(spec = Spec.default) ?(storm = Mixed) ?admission ?sink ~seed () =
  (match Spec.validate spec with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Kload.Harness.run: " ^ e));
  (* Trace recording: every admitted FS-level operation is also announced
     to [sink] as the abstract [Fs_spec] op it intends (full VFS paths;
     [Trace.record] filters and rebases).  Emission happens once per op,
     before the retry loop, so a recorded trace is retry-free. *)
  let emit = match sink with None -> fun (_ : Kspec.Fs_spec.op) -> () | Some f -> f in
  let fsp = Kspec.Fs_spec.path_of_string in
  let total = Spec.total_ops spec in
  let stats = Ksim.Kstats.create () in
  let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed () in

  (* Block stack under /dur: journalfs over retries over fault injection
     over the volatile write-back cache over the raw device — the cache
     sits below Flakydev because it models the disk's own DRAM, not a
     kernel buffer.  The cache is never power-lost mid-run (kload is a
     liveness/SLO study, krefine owns the crash surface), so committed
     journal transactions survive every microreboot; but a cache-wave
     storm makes flush lie and writeback destage out of order, which
     correct barrier discipline must absorb. *)
  let dev =
    Kblock.Blockdev.create ~nblocks:geometry.Kfs.Journalfs.nblocks
      ~block_size:geometry.Kfs.Journalfs.block_size
  in
  let wc = Kblock.Wcache.create ~name:"wcache" ~fp ~seed (Kblock.Blockdev.io dev) in
  let flaky = Kblock.Flakydev.create ~fp (Kblock.Wcache.io wc) in
  let resilient = Kblock.Resilient.create ~max_attempts:6 (Kblock.Flakydev.io flaky) in
  let io = Kblock.Resilient.io resilient in
  let fs0 = Kfs.Journalfs.mkfs_on ~geometry ~io Kfs.Journalfs.Journaled dev in

  let kernel = Kproc.Kernel.boot ~max_steps:(1_000_000 + (100 * total)) ~stats () in
  let vfs = Kproc.Kernel.vfs kernel in
  let dur_path = [ "dur" ] in
  let wrap_dur fs =
    Kvfs.Iface.panicky ~site:"dur.panic" ~fp
      (Kvfs.Iface.instance (module Kfs.Journalfs.Journaled_fs) fs)
  in
  (* A remount mid-EIO-wave can come up corrupt (every read path is
     still under fault injection); retrying redraws the fault stream, so
     a bounded number of attempts rides out the burst. *)
  let remount_dur () =
    let rec go attempts =
      (* Drain the write-back cache first: mount parses the raw device,
         and dirty cached blocks are invisible to it.  Under a cache-wave
         storm the drain itself can be a dropped flush — each retry
         redraws the fault stream, so the corrupt-mount loop also rides
         out lying-flush bursts. *)
      let (_ : unit Ksim.Errno.r) = Kblock.Wcache.flush wc in
      let fs = Kfs.Journalfs.mount ~geometry ~io Kfs.Journalfs.Journaled dev in
      if Kfs.Journalfs.is_corrupt fs && attempts < 8 then go (attempts + 1) else fs
    in
    go 0
  in
  let remake_dur () = wrap_dur (remount_dur ()) in
  let mounted =
    Kvfs.Vfs.mount vfs ~at:dur_path ~remake:remake_dur ~policy:sup_policy ~stats
      (wrap_dur fs0)
  in
  let make_svc () =
    Kvfs.Iface.panicky ~site:"svc.panic" ~fp (Kvfs.Iface.make (module Kfs.Memfs_typed) ())
  in
  let mounted_svc =
    Kvfs.Vfs.mount vfs ~at:[ "svc" ] ~remake:make_svc ~policy:sup_policy ~stats
      (make_svc ())
  in
  (match (mounted, mounted_svc) with
  | Ok (), Ok () -> ()
  | _ -> invalid_arg "Kload.Harness.run: mount failed");
  let sock = Knet.Sock.Supervised.create ~policy:sup_policy ~stats ~fp ~name:"sock" () in

  (* The metadata arena on the fault-free root. *)
  let setup_fops = Kvfs.File_ops.create vfs in
  (match Kvfs.File_ops.mkdir setup_fops "/meta" with
  | Ok () -> ()
  | Error _ -> invalid_arg "Kload.Harness.run: /meta setup failed");

  let storm_t = Ksim.Storm.create ~fp () in
  Ksim.Storm.add storm_t (bursts_for storm ~total_ticks:total);

  (* kebpf observability plane: per-tenant and class/kind counters
     computed by verified programs fed one event per executed op. *)
  let must_attach ~buckets prog =
    match Kebpf.Attach.attach_probe ~buckets prog with
    | Ok p -> p
    | Error _ -> invalid_arg "Kload.Harness.run: probe rejected"
  in
  let tprobe = must_attach ~buckets:spec.Spec.tenants Kebpf.Attach.tenant_probe in
  let ckprobe =
    must_attach ~buckets:(8 * List.length spec.Spec.classes) Kebpf.Attach.class_kind_probe
  in

  let plan = Gen.plan spec ~seed in
  let adm =
    Admission.create
      ~config:
        (match admission with
        | Some c -> c
        | None -> Admission.config_for ~tenants:spec.Spec.tenants)
      ~tenants:spec.Spec.tenants ()
  in

  let n = spec.Spec.tenants in
  let clock = ref 0 in
  let ticks = ref 0 in
  let versions = Array.make spec.Spec.keyspace 0 in
  let acked = Array.make spec.Spec.keyspace 0 in
  (* Per-key writer lock: a write span yields many times, and two
     interleaved writers on one key would leave the final value
     schedule-dependent — an older version can physically land last —
     so writers must hold the key exclusively to be acknowledgeable. *)
  let winflight = Array.make spec.Spec.keyspace 0 in
  let executed = Array.make n 0 in
  let ok = Array.make n 0 in
  let errors = Array.make n 0 in
  let acked_by = Array.make n 0 in
  let estale = Array.make n 0 in
  let eintr = Array.make n 0 in
  let streak = Array.make n 0 in
  let max_streak = Array.make n 0 in
  let net_bytes = Array.make n 0 in
  let sock_handles = Array.make n None in

  (* The retry policy every tenant applies: EINTR (the module is
     quiescing) retries a few times — each retry advances the
     supervisor's clock towards its backoff deadline — and ESTALE (the
     handle died with the old generation) reopens once.  [attempt] mints
     fresh handles on every call, so a plain re-call is the reopen. *)
  let drive tn ~cost attempt =
    let rec go eintr_left estale_left =
      match attempt () with
      | Error Ksim.Errno.EINTR when eintr_left > 0 ->
          eintr.(tn) <- eintr.(tn) + 1;
          cost := !cost + eintr_penalty;
          go (eintr_left - 1) estale_left
      | Error Ksim.Errno.ESTALE when estale_left > 0 ->
          estale.(tn) <- estale.(tn) + 1;
          cost := !cost + estale_penalty;
          go eintr_left (estale_left - 1)
      | r -> r
    in
    go 4 1
  in

  let ( let* ) = Ksim.Errno.( let* ) in

  let meta_op (sys : Kproc.Kernel.sys) (op : Gen.op) =
    let d = op.key mod 16 in
    let dir = Printf.sprintf "/meta/d%d" d in
    let file = Printf.sprintf "/meta/f%d" op.key in
    match op.key land 3 with
    | 0 -> (
        emit (Kspec.Fs_spec.Mkdir (fsp dir));
        emit (Kspec.Fs_spec.Readdir (fsp "/meta"));
        match sys.mkdir dir with
        | Ok () | Error Ksim.Errno.EEXIST -> Result.map (fun _ -> ()) (sys.readdir "/meta")
        | Error e -> Error e)
    | 1 ->
        emit (Kspec.Fs_spec.Create (fsp file));
        let* fd = sys.openf ~flags:[ Kvfs.File_ops.O_CREAT; Kvfs.File_ops.O_WRONLY ] file in
        sys.close fd
    | 2 ->
        emit (Kspec.Fs_spec.Readdir (fsp "/meta"));
        Result.map (fun _ -> ()) (sys.readdir "/meta")
    | _ -> (
        emit (Kspec.Fs_spec.Unlink (fsp file));
        match sys.unlink file with Ok () | Error Ksim.Errno.ENOENT -> Ok () | Error e -> Error e)
  in

  let dur_file k = Printf.sprintf "/dur/k%d" k in

  let dread_op tn (sys : Kproc.Kernel.sys) (op : Gen.op) cost =
    emit (Kspec.Fs_spec.Read { file = fsp (dur_file op.key); off = 0; len = op.size });
    let attempt () =
      match sys.openf (dur_file op.key) with
      | Error Ksim.Errno.ENOENT -> Ok ()
      | Error e -> Error e
      | Ok fd ->
          let res = Result.map (fun (_ : string) -> ()) (sys.read fd ~len:op.size) in
          let (_ : unit Ksim.Errno.r) = sys.close fd in
          res
    in
    drive tn ~cost attempt
  in

  (* A durable write: take the key's writer lock, bump its global
     version, write "v%08d:<payload>" at offset 0 (never truncate: an
     interrupted rewrite must leave the previous version parseable),
     fsync, and ack only if the whole sequence succeeded inside one
     mount generation.  The try-lock keeps write spans on a key
     disjoint — a write span yields many times, and two interleaved
     writers would leave the final value schedule-dependent, unackable
     — so a contended writer degrades to a read of the key instead
     (optimistic-concurrency backoff, counted as [write_contended]). *)
  let dwrite_op tn (sys : Kproc.Kernel.sys) (op : Gen.op) cost =
    let k = op.key in
    if winflight.(k) > 0 then begin
      Ksim.Kstats.incr stats "kload.write_contended";
      dread_op tn sys op cost
    end
    else begin
      winflight.(k) <- 1;
      versions.(k) <- versions.(k) + 1;
      let v = versions.(k) in
      let payload = String.make (max 6 (op.size - version_prefix_len)) 'x' in
      let content = Printf.sprintf "v%08d:%s" v payload in
      emit (Kspec.Fs_spec.Create (fsp (dur_file k)));
      emit (Kspec.Fs_spec.Write { file = fsp (dur_file k); off = 0; data = content });
      emit Kspec.Fs_spec.Fsync;
      let epoch0 = Kvfs.Vfs.epoch_at vfs dur_path in
      let attempt () =
        let* fd =
          sys.openf ~flags:[ Kvfs.File_ops.O_CREAT; Kvfs.File_ops.O_WRONLY ] (dur_file k)
        in
        let res =
          let* _n = sys.write fd content in
          sys.fsync ()
        in
        let (_ : unit Ksim.Errno.r) = sys.close fd in
        res
      in
      let r = drive tn ~cost attempt in
      winflight.(k) <- 0;
      match r with
      | Ok () when Kvfs.Vfs.epoch_at vfs dur_path = epoch0 ->
          acked.(k) <- max acked.(k) v;
          acked_by.(tn) <- acked_by.(tn) + 1;
          Ksim.Kstats.incr stats "kload.acked_writes";
          Ok ()
      | Ok () ->
          (* Committed into an unknown generation: completed, not acked. *)
          Ksim.Kstats.incr stats "kload.unacked_writes";
          Ok ()
      | Error e -> Error e
    end
  in

  let net_op tn (_sys : Kproc.Kernel.sys) (op : Gen.op) cost =
    let request = String.make (min 512 op.size) 'r' in
    let attempt () =
      let* h =
        match sock_handles.(tn) with
        | Some h -> Ok h
        | None ->
            let* h = Knet.Sock.Supervised.socket_pair sock "dgram" in
            let* () = Knet.Sock.Supervised.connect sock h in
            sock_handles.(tn) <- Some h;
            Ok h
      in
      match Knet.Sock.Supervised.rpc sock h request with
      | Ok response ->
          net_bytes.(tn) <- net_bytes.(tn) + String.length response;
          Ok ()
      | Error Ksim.Errno.ESTALE ->
          (* Dead-generation handle: drop it so the retry mints a fresh
             one from the rebooted layer. *)
          sock_handles.(tn) <- None;
          Error Ksim.Errno.ESTALE
      | Error e -> Error e
    in
    drive tn ~cost attempt
  in

  let churn_op tn (sys : Kproc.Kernel.sys) (op : Gen.op) cost =
    let file = Printf.sprintf "/svc/c%d" (op.key mod 32) in
    (match op.key land 1 with
    | 0 ->
        emit (Kspec.Fs_spec.Create (fsp file));
        emit (Kspec.Fs_spec.Write { file = fsp file; off = 0; data = "churn" })
    | _ -> emit (Kspec.Fs_spec.Unlink (fsp file)));
    let attempt () =
      match op.key land 1 with
      | 0 ->
          let* fd =
            sys.openf ~flags:[ Kvfs.File_ops.O_CREAT; Kvfs.File_ops.O_WRONLY ] file
          in
          let res = Result.map (fun (_ : int) -> ()) (sys.write fd "churn") in
          let (_ : unit Ksim.Errno.r) = sys.close fd in
          res
      | _ -> (
          match sys.unlink file with
          | Ok () | Error Ksim.Errno.ENOENT -> Ok ()
          | Error e -> Error e)
    in
    drive tn ~cost attempt
  in

  let tenant_prog (tn : Gen.tenant) (sys : Kproc.Kernel.sys) =
    for _ = 1 to spec.Spec.ops_per_tenant do
      let op = Gen.next_op plan tn in
      clock := !clock + op.think_ns;
      incr ticks;
      Ksim.Storm.tick storm_t !ticks;
      let read_only = op.kind = Spec.Data_read in
      match Admission.offer adm ~now:!clock ~tenant:tn.id ~read_only with
      | Admission.Shed ->
          (* Refused with EAGAIN before touching the kernel: the bounded
             queue or the degraded mode said no. *)
          Ksim.Kstats.incr stats "kload.shed";
          clock := !clock + 100
      | Admission.Admit ->
          executed.(tn.id) <- executed.(tn.id) + 1;
          let ev =
            Kebpf.Attach.encode_load_event ~tenant:tn.id ~class_id:tn.class_ix
              ~kind:(Spec.kind_id op.kind) ~size:op.size
          in
          Kebpf.Attach.probe_event tprobe ev;
          Kebpf.Attach.probe_event ckprobe ev;
          let cost = ref (base_cost op) in
          let res =
            match op.kind with
            | Spec.Meta -> drive tn.id ~cost (fun () -> meta_op sys op)
            | Spec.Data_write -> dwrite_op tn.id sys op cost
            | Spec.Data_read -> dread_op tn.id sys op cost
            | Spec.Net -> net_op tn.id sys op cost
            | Spec.Churn -> churn_op tn.id sys op cost
          in
          clock := !clock + !cost;
          Ksim.Kstats.observe stats ("kload.lat." ^ Spec.kind_name op.kind) !cost;
          (match res with
          | Ok () ->
              ok.(tn.id) <- ok.(tn.id) + 1;
              streak.(tn.id) <- 0
          | Error e ->
              errors.(tn.id) <- errors.(tn.id) + 1;
              streak.(tn.id) <- streak.(tn.id) + 1;
              if streak.(tn.id) > max_streak.(tn.id) then
                max_streak.(tn.id) <- streak.(tn.id);
              Ksim.Kstats.incr stats ("kload.err." ^ Ksim.Errno.to_string e))
    done;
    0
  in

  Array.iter
    (fun tn ->
      let (_ : int) =
        Kproc.Kernel.spawn kernel
          ~name:(Printf.sprintf "tenant%d" tn.Gen.id)
          (tenant_prog tn)
      in
      ())
    (Gen.tenants plan);
  Kproc.Kernel.run kernel;

  (* Heal, and aggregate the supervisors before the audit swaps the
     [/dur] mount out: the two supervised mounts plus the socket layer,
     merged into one recovery histogram. *)
  Ksim.Storm.disable storm_t;
  Ksim.Failpoint.disable_all fp;
  let sups =
    Knet.Sock.Supervised.supervisor sock :: List.map snd (Kvfs.Vfs.supervisors vfs)
  in
  let recovery_hist = Ksim.Hist.create () in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 sups in
  List.iter
    (fun s ->
      Ksim.Hist.merge_into ~dst:recovery_hist (Ksim.Supervisor.recovery_hist s);
      Ksim.Supervisor.publish s stats)
    sups;
  Ksim.Failpoint.publish fp stats;
  Kblock.Wcache.publish wc stats "kload.wcache";

  (* Audit durability against a {e fresh} journal-replay remount of the
     healed device — the durability claim itself: every acked version
     must be readable at (or past) its acknowledged version.  (Journal
     replay never rolls an acknowledged write back; later successful
     writes only raise the version.)  The remount also sidesteps a live
     instance the storm left errors=remount-ro or corrupt. *)
  (match Kvfs.Vfs.umount vfs ~at:dur_path with Ok () -> () | Error _ -> ());
  (match
     Kvfs.Vfs.mount vfs ~at:dur_path
       (Kvfs.Iface.instance (module Kfs.Journalfs.Journaled_fs) (remount_dur ()))
   with
  | Ok () -> ()
  | Error _ -> invalid_arg "Kload.Harness.run: audit remount failed");
  let audit_fops = Kvfs.File_ops.create vfs in
  let lost = ref 0 in
  let read_version k =
    match Kvfs.File_ops.openf audit_fops (dur_file k) with
    | Error _ -> None
    | Ok fd -> (
        let res = Kvfs.File_ops.read audit_fops fd ~len:version_prefix_len in
        let (_ : unit Ksim.Errno.r) = Kvfs.File_ops.close audit_fops fd in
        match res with
        | Error _ -> None
        | Ok s ->
            if String.length s = version_prefix_len && s.[0] = 'v' then
              int_of_string_opt (String.sub s 1 8)
            else None)
  in
  Array.iteri
    (fun k acked_v ->
      if acked_v > 0 then
        match read_version k with
        | Some v when v >= acked_v -> ()
        | bad ->
            (if Sys.getenv_opt "KLOAD_DEBUG_AUDIT" <> None then
               let detail =
                 match Kvfs.File_ops.openf audit_fops (dur_file k) with
                 | Error e -> "open: " ^ Ksim.Errno.to_string e
                 | Ok fd -> (
                     match Kvfs.File_ops.read audit_fops fd ~len:24 with
                     | Error e -> "read: " ^ Ksim.Errno.to_string e
                     | Ok s -> Printf.sprintf "content %S" s)
               in
               Printf.eprintf "AUDIT-LOSS key=%d acked=%d read=%s [%s]\n%!" k acked_v
                 (match bad with Some v -> string_of_int v | None -> "none")
                 detail);
            incr lost)
    acked;

  let counters =
    Array.init n (fun i ->
        {
          Report.t_class = (Gen.tenants plan).(i).Gen.class_ix;
          t_planned = spec.Spec.ops_per_tenant;
          t_executed = executed.(i);
          t_ok = ok.(i);
          t_errors = errors.(i);
          t_shed = Admission.shed_of_tenant adm i;
          t_acked = acked_by.(i);
          t_estale = estale.(i);
          t_eintr = eintr.(i);
          t_max_streak = max_streak.(i);
          t_net_bytes = net_bytes.(i);
        })
  in
  let total_of f = Array.fold_left (fun acc c -> acc + f c) 0 counters in
  let sim_ns = !clock in
  let executed_total = total_of (fun c -> c.Report.t_executed) in
  let report =
    {
      Report.spec;
      seed;
      storm_name = storm_name storm;
      sim_ns;
      planned = total;
      executed = executed_total;
      ok = total_of (fun c -> c.Report.t_ok);
      errors = total_of (fun c -> c.Report.t_errors);
      shed = Admission.shed adm;
      acked_writes = total_of (fun c -> c.Report.t_acked);
      lost_acked_writes = !lost;
      injected_faults = Ksim.Failpoint.total_injected fp;
      oopses = sum Ksim.Supervisor.oopses;
      restarts = sum Ksim.Supervisor.restarts;
      escalations = sum Ksim.Supervisor.escalations;
      stale_rejected = sum Ksim.Supervisor.stale_rejected;
      recovery = Ksim.Hist.summarize recovery_hist;
      latency =
        List.map
          (fun k ->
            let name = Spec.kind_name k in
            (name, Ksim.Hist.summarize (Ksim.Kstats.hist stats ("kload.lat." ^ name))))
          Spec.all_kinds;
      throughput_ops_per_sec =
        (if sim_ns = 0 then 0.0 else float_of_int executed_total *. 1e9 /. float_of_int sim_ns);
      max_consec_errors = Array.fold_left max 0 max_streak;
      admission_transitions = Admission.transitions adm;
      class_histogram = Gen.class_histogram plan;
      tenant_counters = counters;
      fingerprint = Report.fingerprint_of counters;
    }
  in
  {
    report;
    tenant_op_counts = Kebpf.Attach.probe_counts tprobe;
    class_kind_counts = Kebpf.Attach.probe_counts ckprobe;
    crashed_tenants = List.length (Kproc.Kernel.crashed kernel);
    stats;
  }
