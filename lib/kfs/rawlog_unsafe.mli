(** The barrier-discipline exhibit: an append-only record log over a raw
    {!Kblock.Io.t} that never flushes.  Deliberately broken — each entry
    point is a minimal specimen of one kdur rule (R16 unordered
    dependent write, R17 ack-before-durable, R18 barrier elision at a
    wrapper boundary), grandfathered in dur.baseline, and
    [append_chained] doubles as the runtime driver that provokes the
    {!Kblock.Wcache} audit for the static/runtime reconciliation.  See
    the implementation for the specimen-by-specimen commentary.  Do not
    take durability advice from this module. *)

type t

val attach : Kblock.Io.t -> t
(** Open a log over the device; trusts the header if one is readable. *)

val records : t -> int

val append : t -> bytes -> (int, Ksim.Errno.t) result
(** Append one record, returning its block number.  Volatile by honest
    contract: the caller keeps the flush obligation.
    @orders_after: t *)

val append_retry : t -> bytes -> (int, Ksim.Errno.t) result
(** [append] with one retry on [EAGAIN] — and no durability contract:
    the R18 specimen. *)

val append_chained : t -> bytes -> bytes -> unit Ksim.Errno.r
(** Append [a], then a second record derived from reading [a] straight
    back through the cache, with no barrier between: the R16 specimen,
    and the runtime audit driver. *)

val commit : t -> unit Ksim.Errno.r
(** Write the record count into the header and ack — without a flush,
    despite claiming the fsync contract: the R17 specimen.
    @durable *)
