(* A block-based file system with a write-ahead journal: the ext4-shaped
   subject of the crash-safety experiment.

   On-disk layout (block numbers):

     0 .. jblocks-1              journal (see [Kblock.Journal])
     jblocks                     fs superblock
     jblocks+1 .. +ninodes       inode table, one inode per block
     jblocks+ninodes+1           data-area allocation bitmap
     everything after            data blocks

   Every operation mutates an in-memory mirror and stages the changed
   blocks (data, inode table, bitmap) into one journal transaction, so a
   crash either sees the whole operation or none of it.  [mode = Direct]
   is the ablation: the same block writes issued in place with no journal
   and no ordering, i.e. the classic non-journaled Unix FS that the crash
   checker duly convicts.

   All media traffic goes through a [Kblock.Io.t] (by default the raw
   device), so the FS can be mounted over a flaky/resilient stack.  When
   an EIO survives to this layer — i.e. the retry budget below us is
   exhausted, a *persistent* failure — the op aborts (the journal rolls
   the partial transaction back) and the FS degrades ext4-style to
   errors=remount-ro: every subsequent mutation fails EROFS, reads keep
   working from the mirror, and the incident lands on the global trace
   for [Safeos_core.Audit] to pick up. *)

open Kspec

type mode =
  | Journaled
  | Direct

type mnode =
  | MFile of string
  | MDir of (string * int) list (* sorted by name *)

type geometry = {
  nblocks : int;
  block_size : int;
  jblocks : int;
  ninodes : int;
}

let default_geometry = { nblocks = 1024; block_size = 512; jblocks = 96; ninodes = 64 }

type t = {
  geo : geometry;
  dev : Kblock.Blockdev.t;
  io : Kblock.Io.t; (* all media traffic; may be a flaky/resilient stack *)
  journal : Kblock.Journal.t option; (* None in Direct mode *)
  mode : mode;
  group_commit : bool; (* accumulate ops into one tx until fsync *)
  barriers : bool; (* false = missing-barrier mutant journal (convict me) *)
  mutable open_tx : Kblock.Journal.tx option;
  nodes : mnode option array; (* the mirror; index = ino *)
  bitmap : Bytes.t; (* one byte per data block: 0 free, 1 used *)
  blocks_of : int list array; (* data blocks backing each inode *)
  mutable corrupt : bool; (* set when mount could not parse the disk *)
  mutable readonly : bool; (* errors=remount-ro tripped *)
}

let fs_magic = 0x46533231 (* "FS21" *)
let root_ino = 0

let sb_block geo = geo.jblocks
let inode_block geo ino = geo.jblocks + 1 + ino
let bitmap_block geo = geo.jblocks + 1 + geo.ninodes
let data_start geo = bitmap_block geo + 1
let data_blocks geo = geo.nblocks - data_start geo

let mode t = t.mode
let device t = t.dev
let journal_stats t = Option.map Kblock.Journal.stats t.journal
let is_corrupt t = t.corrupt
let is_readonly t = t.readonly

(* Graceful degradation: an EIO that survives to this layer means the
   retry budget below us (if any) is exhausted — a persistent media
   failure.  The op already aborted cleanly (journal head rolled back),
   so we pin the FS read-only rather than risk corrupting the disk with
   further writes, and leave an incident on the global trace for
   [Safeos_core.Audit]. *)
let degrade t reason =
  if not t.readonly then begin
    t.readonly <- true;
    Ksim.Ktrace.emitf Ksim.Ktrace.global ~category:"incident" "journalfs: remount-ro: %s" reason
  end

let absorb t what (r : 'a Ksim.Errno.r) : 'a Ksim.Errno.r =
  (match r with
  | Error Ksim.Errno.EIO -> degrade t (what ^ ": persistent EIO")
  | Ok _ | Error _ -> ());
  r

(* Encoding ---------------------------------------------------------------- *)

let encode_dir entries =
  let buf = Buffer.create 64 in
  Buffer.add_uint16_le buf (List.length entries);
  List.iter
    (fun (name, ino) ->
      Buffer.add_uint16_le buf (String.length name);
      Buffer.add_string buf name;
      Buffer.add_int32_le buf (Int32.of_int ino))
    entries;
  Buffer.contents buf

exception Corrupt of string

let decode_dir s =
  let get_u16 off =
    if off + 2 > String.length s then raise (Corrupt "dir: truncated u16")
    else Char.code s.[off] lor (Char.code s.[off + 1] lsl 8)
  in
  let count = if String.length s < 2 then raise (Corrupt "dir: no count") else get_u16 0 in
  let rec go i off acc =
    if i = count then List.rev acc
    else begin
      let len = get_u16 off in
      if off + 2 + len + 4 > String.length s then raise (Corrupt "dir: truncated entry");
      let name = String.sub s (off + 2) len in
      let b k = Char.code s.[off + 2 + len + k] in
      let ino = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
      go (i + 1) (off + 2 + len + 4) ((name, ino) :: acc)
    end
  in
  go 0 2 []

let content_of_node = function
  | MFile content -> content
  | MDir entries -> encode_dir entries

let encode_inode geo node blocks =
  let buf = Bytes.make geo.block_size '\000' in
  (match node with
  | None -> ()
  | Some n ->
      Bytes.set buf 0 '\001';
      Bytes.set buf 1 (match n with MFile _ -> '\000' | MDir _ -> '\001');
      let content = content_of_node n in
      Kblock.Codec.put_u32 buf 2 (String.length content);
      Kblock.Codec.put_u16 buf 6 (List.length blocks);
      List.iteri (fun i blkno -> Kblock.Codec.put_u32 buf (8 + (4 * i)) blkno) blocks);
  buf

let max_direct geo = (geo.block_size - 8) / 4
let max_file_size geo = max_direct geo * geo.block_size

(* Staging ------------------------------------------------------------------ *)

(* A pending batch of whole-block writes, applied either through the
   journal (one atomic transaction) or directly, depending on mode. *)
type batch = (int, bytes) Hashtbl.t

let batch_create () : batch = Hashtbl.create 16

let batch_put (b : batch) blkno data = Hashtbl.replace b blkno data

let stage_into_tx j tx blocks =
  List.fold_left
    (fun acc (blkno, data) ->
      match acc with
      | Error _ as e -> e
      | Ok () -> Kblock.Journal.tx_write j tx ~blkno data)
    (Ok ()) blocks

(** Close the accumulating transaction (group-commit mode): make
    everything staged so far durable.  A crash before this point legally
    loses the whole batch — still a prefix of the history.  Note [apply]
    itself carries no such contract: [Ok] from a mutating op only
    promises durability after [Fsync], the POSIX bargain, so Direct-mode
    staging writes may legally remain cache-volatile between syncs.
    @durable *)
let commit_open_tx t =
  match (t.journal, t.open_tx) with
  | Some j, Some tx ->
      t.open_tx <- None;
      (match Kblock.Journal.commit j tx with
      | Ok () -> Ok ()
      | Error Ksim.Errno.EOVERFLOW -> Error Ksim.Errno.ENOSPC
      | Error e -> Error e)
  | _, _ -> Ok ()

let batch_apply t (b : batch) =
  let blocks = Hashtbl.fold (fun blkno data acc -> (blkno, data) :: acc) b [] in
  let blocks = List.sort (fun (a, _) (b, _) -> compare a b) blocks in
  match t.journal with
  | Some j when t.group_commit ->
      (* Accumulate into the open transaction; commit early only when the
         next batch would overflow the per-transaction capacity. *)
      let tx_writes tx = Kblock.Journal.tx_size tx in
      let need = List.length blocks in
      let ( let* ) = Result.bind in
      let* () =
        match t.open_tx with
        | Some tx when tx_writes tx + need > Kblock.Journal.max_tx_writes j ->
            commit_open_tx t
        | _ -> Ok ()
      in
      let tx =
        match t.open_tx with
        | Some tx -> tx
        | None ->
            let tx = Kblock.Journal.tx_begin j in
            t.open_tx <- Some tx;
            tx
      in
      stage_into_tx j tx blocks
  | Some j -> (
      (* One transaction per batch.  The tx is owned from tx_begin on:
         every path below must hand it back to commit or abort — a
         staging failure that just dropped it was an R10 leak. *)
      let tx = Kblock.Journal.tx_begin j in
      match stage_into_tx j tx blocks with
      | Error e ->
          Kblock.Journal.abort j tx;
          Error e
      | Ok () -> (
          match Kblock.Journal.commit j tx with
          | Ok () -> Ok ()
          | Error Ksim.Errno.EOVERFLOW -> Error Ksim.Errno.ENOSPC
          | Error e -> Error e))
  | None ->
      List.fold_left
        (fun acc (blkno, data) ->
          match acc with
          | Error _ as e -> e
          | Ok () -> t.io.Kblock.Io.write blkno data)
        (Ok ()) blocks

(* Allocation ---------------------------------------------------------------- *)

let alloc_blocks t n =
  let limit = data_blocks t.geo in
  let rec go i acc remaining =
    if remaining = 0 then Some (List.rev acc)
    else if i >= limit then None
    else if Bytes.get t.bitmap i = '\000' then go (i + 1) (i :: acc) (remaining - 1)
    else go (i + 1) acc remaining
  in
  match go 0 [] n with
  | None -> None
  | Some rel ->
      List.iter (fun i -> Bytes.set t.bitmap i '\001') rel;
      Some (List.map (fun i -> data_start t.geo + i) rel)

let free_blocks t blocks =
  List.iter (fun blkno -> Bytes.set t.bitmap (blkno - data_start t.geo) '\000') blocks

(* Re-serialize one inode: free its old data blocks, allocate fresh ones,
   stage data + inode-table + bitmap blocks.  Returns false on ENOSPC (and
   rolls the allocation back). *)
let stage_inode t (b : batch) ino =
  free_blocks t t.blocks_of.(ino);
  t.blocks_of.(ino) <- [];
  let ok =
    match t.nodes.(ino) with
    | None -> true
    | Some node -> (
        let content = content_of_node node in
        let bs = t.geo.block_size in
        let nblocks = (String.length content + bs - 1) / bs in
        if nblocks > max_direct t.geo then false
        else
          match alloc_blocks t nblocks with
          | None -> false
          | Some blocks ->
              t.blocks_of.(ino) <- blocks;
              List.iteri
                (fun i blkno ->
                  let chunk = Bytes.make bs '\000' in
                  let off = i * bs in
                  let len = min bs (String.length content - off) in
                  Bytes.blit_string content off chunk 0 len;
                  batch_put b blkno chunk)
                blocks;
              true)
  in
  if ok then begin
    batch_put b (inode_block t.geo ino) (encode_inode t.geo t.nodes.(ino) t.blocks_of.(ino));
    let bm = Bytes.make t.geo.block_size '\000' in
    Bytes.blit t.bitmap 0 bm 0 (min (Bytes.length t.bitmap) t.geo.block_size);
    batch_put b (bitmap_block t.geo) bm;
    true
  end
  else false

(* mkfs / mount --------------------------------------------------------------- *)

let write_sb t (b : batch) =
  let buf = Bytes.make t.geo.block_size '\000' in
  Kblock.Codec.put_u32 buf 0 fs_magic;
  Kblock.Codec.put_u32 buf 4 t.geo.ninodes;
  Kblock.Codec.put_u32 buf 8 t.geo.jblocks;
  batch_put b (sb_block t.geo) buf

let mkfs_on ?(geometry = default_geometry) ?(group_commit = false) ?(barriers = true) ?io
    mode dev =
  if data_blocks geometry < 8 then invalid_arg "Journalfs.mkfs_on: device too small";
  let io = match io with Some io -> io | None -> Kblock.Blockdev.io dev in
  let journal =
    match mode with
    | Journaled -> Some (Kblock.Journal.format ~barriers io ~jblocks:geometry.jblocks)
    | Direct -> None
  in
  let t =
    {
      geo = geometry;
      dev;
      io;
      journal;
      mode;
      group_commit;
      barriers;
      open_tx = None;
      nodes = Array.make geometry.ninodes None;
      bitmap = Bytes.make (data_blocks geometry) '\000';
      blocks_of = Array.make geometry.ninodes [];
      corrupt = false;
      readonly = false;
    }
  in
  t.nodes.(root_ino) <- Some (MDir []);
  let b = batch_create () in
  write_sb t b;
  (* The device is freshly zeroed, so only the root inode (and the blocks
     it owns) needs to reach the disk. *)
  if not (stage_inode t b root_ino) then invalid_arg "Journalfs.mkfs_on: no space for root";
  let fatal what = function
    | Ok () -> ()
    | Error e -> invalid_arg ("Journalfs.mkfs_on: " ^ what ^ ": " ^ Ksim.Errno.to_string e)
  in
  fatal "apply" (batch_apply t b);
  fatal "commit" (commit_open_tx t);
  (match mode with
  | Journaled -> fatal "checkpoint" (Kblock.Journal.checkpoint (Option.get journal))
  | Direct -> ());
  fatal "flush" (t.io.Kblock.Io.flush ());
  t

let read_block dev blkno =
  match Kblock.Blockdev.read dev blkno with
  | Ok data -> data
  | Error e -> raise (Corrupt ("read: " ^ Ksim.Errno.to_string e))

let mount ?(geometry = default_geometry) ?(group_commit = false) ?(barriers = true) ?io mode
    dev =
  let io = match io with Some io -> io | None -> Kblock.Blockdev.io dev in
  let journal =
    match mode with
    | Journaled -> Some (Kblock.Journal.recover ~barriers io ~jblocks:geometry.jblocks)
    | Direct -> None
  in
  let t =
    {
      geo = geometry;
      dev;
      io;
      journal;
      mode;
      group_commit;
      barriers;
      open_tx = None;
      nodes = Array.make geometry.ninodes None;
      bitmap = Bytes.make (data_blocks geometry) '\000';
      blocks_of = Array.make geometry.ninodes [];
      corrupt = false;
      readonly = false;
    }
  in
  (try
     let sb = read_block dev (sb_block geometry) in
     if Kblock.Codec.get_u32 sb 0 <> fs_magic then raise (Corrupt "bad fs magic");
     for ino = 0 to geometry.ninodes - 1 do
       let buf = read_block dev (inode_block geometry ino) in
       if Bytes.get buf 0 = '\001' then begin
         let kind = Bytes.get buf 1 in
         let size = Kblock.Codec.get_u32 buf 2 in
         let nblk = Kblock.Codec.get_u16 buf 6 in
         if nblk > max_direct geometry then raise (Corrupt "inode block count");
         let blocks = List.init nblk (fun i -> Kblock.Codec.get_u32 buf (8 + (4 * i))) in
         List.iter
           (fun blkno ->
             if blkno < data_start geometry || blkno >= geometry.nblocks then
               raise (Corrupt "block pointer out of range"))
           blocks;
         let content = Buffer.create size in
         List.iter (fun blkno -> Buffer.add_bytes content (read_block dev blkno)) blocks;
         if size > Buffer.length content then raise (Corrupt "inode size beyond blocks");
         let content = String.sub (Buffer.contents content) 0 size in
         t.blocks_of.(ino) <- blocks;
         List.iter
           (fun blkno -> Bytes.set t.bitmap (blkno - data_start geometry) '\001')
           blocks;
         t.nodes.(ino) <-
           Some (if kind = '\001' then MDir (decode_dir content) else MFile content)
       end
     done;
     if t.nodes.(root_ino) = None then raise (Corrupt "no root inode")
   with Corrupt _ ->
     t.corrupt <- true;
     Array.fill t.nodes 0 geometry.ninodes None);
  t

(* Mirror navigation (same shape as the other memfs variants) ---------------- *)

let node t ino = if ino >= 0 && ino < t.geo.ninodes then t.nodes.(ino) else None

let rec walk t ino = function
  | [] -> Some ino
  | comp :: rest -> (
      match node t ino with
      | Some (MDir entries) ->
          Option.bind (List.assoc_opt comp entries) (fun child -> walk t child rest)
      | Some (MFile _) | None -> None)

let lookup t path = walk t root_ino path
let lookup_node t path = Option.bind (lookup t path) (node t)

let is_dir t path =
  match lookup_node t path with Some (MDir _) -> true | Some (MFile _) | None -> false

let parent_dir t path =
  match Fs_spec.parent path with
  | None -> Error Ksim.Errno.EINVAL
  | Some par -> (
      match lookup t par with
      | Some ino -> (
          match node t ino with
          | Some (MDir entries) -> Ok (ino, entries)
          | Some (MFile _) | None -> Error Ksim.Errno.ENOENT)
      | None -> Error Ksim.Errno.ENOENT)

let basename_exn path =
  match Fs_spec.basename path with Some name -> name | None -> assert false

let rec assoc_set name value = function
  | [] -> [ (name, value) ]
  | (n, v) :: rest ->
      let c = String.compare name n in
      if c < 0 then (name, value) :: (n, v) :: rest
      else if c = 0 then (name, value) :: rest
      else (n, v) :: assoc_set name value rest

let assoc_remove name entries = List.filter (fun (n, _) -> not (String.equal n name)) entries

let free_ino t =
  let rec go ino =
    if ino >= t.geo.ninodes then None
    else if t.nodes.(ino) = None then Some ino
    else go (ino + 1)
  in
  go 0

(* Commit a set of mirror changes: stage every touched inode, then apply
   the batch atomically.  If any staging step hits ENOSPC the mirror is
   *not* rolled back — callers must stage additions last and check.  A
   persistent EIO aborts the transaction (journal head rolled back, home
   area untouched) and degrades the FS to read-only; the mirror may now
   be ahead of the disk, which is safe precisely because nothing further
   will be written. *)
let commit_inodes t inos =
  let b = batch_create () in
  let ok = List.for_all (fun ino -> stage_inode t b ino) inos in
  if ok then
    match absorb t "commit" (batch_apply t b) with
    | Ok () -> Ok Fs_spec.Unit
    | Error e -> Error e
  else Error Ksim.Errno.ENOSPC

(* Operations ------------------------------------------------------------------ *)

let add_node t path make_node =
  match parent_dir t path with
  | Error e -> Error e
  | Ok (parent_ino, entries) -> (
      let base = basename_exn path in
      if List.mem_assoc base entries then Error Ksim.Errno.EEXIST
      else
        match free_ino t with
        | None -> Error Ksim.Errno.ENOSPC
        | Some ino ->
            t.nodes.(ino) <- Some (make_node ());
            t.nodes.(parent_ino) <- Some (MDir (assoc_set base ino entries));
            commit_inodes t [ ino; parent_ino ])

let update_file t path f =
  match lookup t path with
  | Some ino -> (
      match node t ino with
      | Some (MFile content) ->
          let content' = f content in
          if String.length content' > max_file_size t.geo then Error Ksim.Errno.ENOSPC
          else begin
            t.nodes.(ino) <- Some (MFile content');
            commit_inodes t [ ino ]
          end
      | Some (MDir _) -> Error Ksim.Errno.EISDIR
      | None -> Error Ksim.Errno.ENOENT)
  | None -> if is_dir t path then Error Ksim.Errno.EISDIR else Error Ksim.Errno.ENOENT

let rec collect_subtree t ino acc =
  match node t ino with
  | Some (MDir entries) ->
      List.fold_left (fun acc (_, child) -> collect_subtree t child acc) (ino :: acc) entries
  | Some (MFile _) -> ino :: acc
  | None -> acc

let mutating : Fs_spec.op -> bool = function
  | Create _ | Mkdir _ | Write _ | Truncate _ | Unlink _ | Rmdir _ | Rename _ -> true
  | Read _ | Readdir _ | Stat _ | Fsync -> false

let apply t (op : Fs_spec.op) : Fs_spec.result =
  if t.corrupt then Error Ksim.Errno.EIO
  else if t.readonly && mutating op then Error Ksim.Errno.EROFS
  else
    match op with
    | Create path -> add_node t path (fun () -> MFile "")
    | Mkdir path -> add_node t path (fun () -> MDir [])
    | Write { file; off; data } ->
        if off < 0 then Error Ksim.Errno.EINVAL
        else update_file t file (fun content -> Fs_spec.write_at content ~off ~data)
    | Read { file; off; len } -> (
        if off < 0 || len < 0 then Error Ksim.Errno.EINVAL
        else
          match lookup_node t file with
          | Some (MFile content) -> Ok (Fs_spec.Data (Fs_spec.read_at content ~off ~len))
          | Some (MDir _) -> Error Ksim.Errno.EISDIR
          | None -> if is_dir t file then Error Ksim.Errno.EISDIR else Error Ksim.Errno.ENOENT)
    | Truncate (path, size) ->
        if size < 0 then Error Ksim.Errno.EINVAL
        else
          update_file t path (fun content ->
              if String.length content >= size then String.sub content 0 size
              else content ^ String.make (size - String.length content) '\000')
    | Unlink path -> (
        match lookup_node t path with
        | Some (MFile _) -> (
            match parent_dir t path with
            | Error e -> Error e
            | Ok (parent_ino, entries) ->
                let ino = match lookup t path with Some i -> i | None -> assert false in
                t.nodes.(ino) <- None;
                t.nodes.(parent_ino) <- Some (MDir (assoc_remove (basename_exn path) entries));
                commit_inodes t [ ino; parent_ino ])
        | Some (MDir _) -> Error Ksim.Errno.EISDIR
        | None -> if path = [] then Error Ksim.Errno.EISDIR else Error Ksim.Errno.ENOENT)
    | Rmdir [] -> Error Ksim.Errno.EBUSY
    | Rmdir path -> (
        match lookup_node t path with
        | Some (MDir entries) ->
            if entries <> [] then Error Ksim.Errno.ENOTEMPTY
            else (
              match parent_dir t path with
              | Error e -> Error e
              | Ok (parent_ino, pentries) ->
                  let ino = match lookup t path with Some i -> i | None -> assert false in
                  t.nodes.(ino) <- None;
                  t.nodes.(parent_ino) <-
                    Some (MDir (assoc_remove (basename_exn path) pentries));
                  commit_inodes t [ ino; parent_ino ])
        | Some (MFile _) -> Error Ksim.Errno.ENOTDIR
        | None -> Error Ksim.Errno.ENOENT)
    | Rename ([], _) -> Error Ksim.Errno.ENOENT
    | Rename (src, dst) -> (
        match lookup t src with
        | None -> Error Ksim.Errno.ENOENT
        | Some src_ino -> (
            if dst = [] then Error Ksim.Errno.EINVAL
            else if Fs_spec.is_prefix src dst && src <> dst then Error Ksim.Errno.EINVAL
            else
              match parent_dir t dst with
              | Error e -> Error e
              | Ok (dst_parent, _) -> (
                  let clash =
                    match (node t src_ino, lookup_node t dst) with
                    | _, None -> Ok ()
                    | Some (MFile _), Some (MFile _) -> Ok ()
                    | Some (MFile _), Some (MDir _) -> Error Ksim.Errno.EISDIR
                    | Some (MDir _), Some (MFile _) -> Error Ksim.Errno.ENOTDIR
                    | Some (MDir _), Some (MDir d) ->
                        if d = [] then Ok () else Error Ksim.Errno.ENOTEMPTY
                    | None, _ -> Error Ksim.Errno.ENOENT
                  in
                  match clash with
                  | Error e -> Error e
                  | Ok () ->
                      if src = dst then Ok Fs_spec.Unit
                      else begin
                        let dropped =
                          match lookup t dst with
                          | Some old_ino when old_ino <> src_ino ->
                              let doomed = collect_subtree t old_ino [] in
                              List.iter (fun i -> t.nodes.(i) <- None) doomed;
                              doomed
                          | Some _ | None -> []
                        in
                        let touched = ref (dropped @ [ dst_parent ]) in
                        (match parent_dir t src with
                        | Ok (src_parent, src_entries) ->
                            t.nodes.(src_parent) <-
                              Some (MDir (assoc_remove (basename_exn src) src_entries));
                            touched := src_parent :: !touched
                        | Error _ -> ());
                        (* Re-read the destination directory: it may be the
                           same inode we just updated as the source parent. *)
                        (match node t dst_parent with
                        | Some (MDir entries) ->
                            t.nodes.(dst_parent) <-
                              Some (MDir (assoc_set (basename_exn dst) src_ino entries))
                        | Some (MFile _) | None -> ());
                        commit_inodes t (List.sort_uniq compare !touched)
                      end)))
    | Readdir path -> (
        match lookup_node t path with
        | Some (MDir entries) -> Ok (Fs_spec.Names (List.map fst entries))
        | Some (MFile _) -> Error Ksim.Errno.ENOTDIR
        | None -> Error Ksim.Errno.ENOENT)
    | Stat path -> (
        match lookup_node t path with
        | Some (MFile content) -> Ok (Fs_spec.Attr { kind = `File; size = String.length content })
        | Some (MDir _) -> Ok (Fs_spec.Attr { kind = `Dir; size = 0 })
        | None -> Error Ksim.Errno.ENOENT)
    | Fsync ->
        if t.readonly then Ok Fs_spec.Unit (* nothing dirty will ever flush *)
        else (
          match absorb t "fsync commit" (commit_open_tx t) with
          | Error e -> Error e
          | Ok () -> (
              let r =
                match t.journal with
                | Some j -> Kblock.Journal.checkpoint j
                | None -> t.io.Kblock.Io.flush ()
              in
              match absorb t "fsync" r with Ok () -> Ok Fs_spec.Unit | Error e -> Error e))

let interpret t : Fs_spec.state =
  let rec go ino rel acc =
    match node t ino with
    | Some (MDir entries) ->
        let acc = if rel = [] then acc else Fs_spec.Pathmap.add rel Fs_spec.Dir acc in
        List.fold_left (fun acc (name, child) -> go child (rel @ [ name ]) acc) acc entries
    | Some (MFile content) -> Fs_spec.Pathmap.add rel (Fs_spec.File content) acc
    | None -> acc
  in
  go root_ino [] Fs_spec.empty

(* Crash exploration: every device image a crash could leave, remounted. *)
let crash_images t ~limit =
  Kblock.Blockdev.crash_states t.dev ~limit
  |> List.map (fun dev ->
         mount ~geometry:t.geo ~group_commit:t.group_commit ~barriers:t.barriers t.mode dev)

(* Mountable / crashable adapters --------------------------------------------- *)

module Journaled_fs = struct
  type nonrec fs = t

  let fs_name = "journalfs"
  let stage = 2
  let mkfs () = mkfs_on Journaled (Kblock.Blockdev.create ~nblocks:default_geometry.nblocks ~block_size:default_geometry.block_size)
  let apply = apply
  let interpret = interpret
end

module Journaled_group_fs = struct
  type nonrec fs = t

  let fs_name = "journalfs+group-commit"
  let stage = 2

  let mkfs () =
    mkfs_on ~group_commit:true Journaled
      (Kblock.Blockdev.create ~nblocks:default_geometry.nblocks
         ~block_size:default_geometry.block_size)

  let apply = apply
  let interpret = interpret
end

module Crashable_journaled_group = struct
  type nonrec t = t

  let name = "journalfs+group-commit"
  let create () = Journaled_group_fs.mkfs ()
  let apply = apply
  let crash_images = crash_images
  let interpret = interpret
end

module Direct_fs = struct
  type nonrec fs = t

  let fs_name = "directfs"
  let stage = 2
  let mkfs () = mkfs_on Direct (Kblock.Blockdev.create ~nblocks:default_geometry.nblocks ~block_size:default_geometry.block_size)
  let apply = apply
  let interpret = interpret
end

module Crashable_journaled = struct
  type nonrec t = t

  let name = "journalfs"
  let create () = Journaled_fs.mkfs ()
  let apply = apply
  let crash_images = crash_images
  let interpret = interpret
end

module Crashable_direct = struct
  type nonrec t = t

  let name = "directfs"
  let create () = Direct_fs.mkfs ()
  let apply = apply
  let crash_images = crash_images
  let interpret = interpret
end
