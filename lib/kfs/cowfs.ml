(* A btrfs-flavoured copy-on-write file system with O(1) snapshots.

   The whole tree is a persistent (immutable, structurally shared) value;
   a snapshot is just another reference to the current root, so snapshots
   cost one list cell and unchanged subtrees are shared between the live
   tree and every snapshot — the defining property of CoW file systems.
   [rollback] swings the root pointer back, and [diff] computes the
   changed paths between a snapshot and the live tree.

   No durability contracts (kdur @flushes/@durable) appear here: the
   whole tree lives in memory and never touches an [Io.t], so there is
   no write-back cache to order against — the crash surface is covered
   by the refinement harness replaying against [Fs_spec] instead. *)

open Kspec

module Smap = Map.Make (String)

type tree =
  | CFile of string
  | CDir of tree Smap.t

type fs = {
  mutable current : tree;
  mutable snaps : (string * tree) list; (* newest first *)
}

let fs_name = "cowfs"
let stage = 2

let mkfs () = { current = CDir Smap.empty; snaps = [] }

let rec find tree path =
  match (path, tree) with
  | [], t -> Some t
  | comp :: rest, CDir entries ->
      Option.bind (Smap.find_opt comp entries) (fun child -> find child rest)
  | _ :: _, CFile _ -> None

let is_dir tree path = match find tree path with Some (CDir _) -> true | _ -> false

let rec in_dir tree dirpath f =
  match (dirpath, tree) with
  | [], CDir entries -> Result.map (fun entries' -> CDir entries') (f entries)
  | [], CFile _ -> Error Ksim.Errno.ENOENT
  | comp :: rest, CDir entries -> (
      match Smap.find_opt comp entries with
      | Some child ->
          Result.map (fun child' -> CDir (Smap.add comp child' entries)) (in_dir child rest f)
      | None -> Error Ksim.Errno.ENOENT)
  | _ :: _, CFile _ -> Error Ksim.Errno.ENOENT

let in_parent fs path f =
  match (Fs_spec.parent path, Fs_spec.basename path) with
  | Some par, Some base -> in_dir fs.current par (f base)
  | _ -> Error Ksim.Errno.EINVAL

let commit fs = function
  | Ok root ->
      fs.current <- root;
      Ok Fs_spec.Unit
  | Error e -> Error e

let add_entry fs path node =
  commit fs
    (in_parent fs path (fun base entries ->
         if Smap.mem base entries then Error Ksim.Errno.EEXIST
         else Ok (Smap.add base node entries)))

let update_file fs path f =
  match find fs.current path with
  | Some (CFile content) ->
      commit fs
        (in_parent fs path (fun base entries -> Ok (Smap.add base (CFile (f content)) entries)))
  | Some (CDir _) -> Error Ksim.Errno.EISDIR
  | None ->
      if is_dir fs.current path then Error Ksim.Errno.EISDIR else Error Ksim.Errno.ENOENT

let apply fs (op : Fs_spec.op) : Fs_spec.result =
  match op with
  | Create path -> add_entry fs path (CFile "")
  | Mkdir path -> add_entry fs path (CDir Smap.empty)
  | Write { file; off; data } ->
      if off < 0 then Error Ksim.Errno.EINVAL
      else update_file fs file (fun content -> Fs_spec.write_at content ~off ~data)
  | Read { file; off; len } -> (
      if off < 0 || len < 0 then Error Ksim.Errno.EINVAL
      else
        match find fs.current file with
        | Some (CFile content) -> Ok (Fs_spec.Data (Fs_spec.read_at content ~off ~len))
        | Some (CDir _) -> Error Ksim.Errno.EISDIR
        | None ->
            if is_dir fs.current file then Error Ksim.Errno.EISDIR else Error Ksim.Errno.ENOENT)
  | Truncate (path, size) ->
      if size < 0 then Error Ksim.Errno.EINVAL
      else
        update_file fs path (fun content ->
            if String.length content >= size then String.sub content 0 size
            else content ^ String.make (size - String.length content) '\000')
  | Unlink path -> (
      match find fs.current path with
      | Some (CFile _) ->
          commit fs (in_parent fs path (fun base entries -> Ok (Smap.remove base entries)))
      | Some (CDir _) -> Error Ksim.Errno.EISDIR
      | None ->
          if is_dir fs.current path then Error Ksim.Errno.EISDIR else Error Ksim.Errno.ENOENT)
  | Rmdir [] -> Error Ksim.Errno.EBUSY
  | Rmdir path -> (
      match find fs.current path with
      | Some (CDir entries) ->
          if not (Smap.is_empty entries) then Error Ksim.Errno.ENOTEMPTY
          else commit fs (in_parent fs path (fun base entries -> Ok (Smap.remove base entries)))
      | Some (CFile _) -> Error Ksim.Errno.ENOTDIR
      | None -> Error Ksim.Errno.ENOENT)
  | Rename ([], _) -> Error Ksim.Errno.ENOENT
  | Rename (src, dst) -> (
      match find fs.current src with
      | None -> Error Ksim.Errno.ENOENT
      | Some moved -> (
          if dst = [] then Error Ksim.Errno.EINVAL
          else if Fs_spec.is_prefix src dst && src <> dst then Error Ksim.Errno.EINVAL
          else
            let parent_ok =
              match Fs_spec.parent dst with
              | None -> Error Ksim.Errno.EINVAL
              | Some par ->
                  if is_dir fs.current par then Ok () else Error Ksim.Errno.ENOENT
            in
            match parent_ok with
            | Error e -> Error e
            | Ok () -> (
                let clash =
                  match (moved, find fs.current dst) with
                  | _, None -> Ok ()
                  | CFile _, Some (CFile _) -> Ok ()
                  | CFile _, Some (CDir _) -> Error Ksim.Errno.EISDIR
                  | CDir _, Some (CFile _) -> Error Ksim.Errno.ENOTDIR
                  | CDir _, Some (CDir d) ->
                      if Smap.is_empty d then Ok () else Error Ksim.Errno.ENOTEMPTY
                in
                match clash with
                | Error e -> Error e
                | Ok () ->
                    if src = dst then Ok Fs_spec.Unit
                    else begin
                      match in_parent fs src (fun base entries -> Ok (Smap.remove base entries)) with
                      | Error e -> Error e
                      | Ok detached ->
                          fs.current <- detached;
                          commit fs
                            (in_parent fs dst (fun base entries ->
                                 Ok (Smap.add base moved entries)))
                    end)))
  | Readdir path -> (
      match find fs.current path with
      | Some (CDir entries) -> Ok (Fs_spec.Names (List.map fst (Smap.bindings entries)))
      | Some (CFile _) -> Error Ksim.Errno.ENOTDIR
      | None -> Error Ksim.Errno.ENOENT)
  | Stat path -> (
      match find fs.current path with
      | Some (CFile content) -> Ok (Fs_spec.Attr { kind = `File; size = String.length content })
      | Some (CDir _) -> Ok (Fs_spec.Attr { kind = `Dir; size = 0 })
      | None -> Error Ksim.Errno.ENOENT)
  | Fsync -> Ok Fs_spec.Unit

let interpret_tree tree : Fs_spec.state =
  let rec go tree rel acc =
    match tree with
    | CFile content -> Fs_spec.Pathmap.add rel (Fs_spec.File content) acc
    | CDir entries ->
        let acc = if rel = [] then acc else Fs_spec.Pathmap.add rel Fs_spec.Dir acc in
        Smap.fold (fun name child acc -> go child (rel @ [ name ]) acc) entries acc
  in
  go tree [] Fs_spec.empty

let interpret fs = interpret_tree fs.current

(* Snapshots ------------------------------------------------------------- *)

let snapshot fs ~name =
  if List.mem_assoc name fs.snaps then Error Ksim.Errno.EEXIST
  else begin
    fs.snaps <- (name, fs.current) :: fs.snaps;
    Ok ()
  end

let snapshots fs = List.rev_map fst fs.snaps

let rollback fs ~name =
  match List.assoc_opt name fs.snaps with
  | Some tree ->
      fs.current <- tree;
      Ok ()
  | None -> Error Ksim.Errno.ENOENT

let delete_snapshot fs ~name =
  if List.mem_assoc name fs.snaps then begin
    fs.snaps <- List.filter (fun (n, _) -> n <> name) fs.snaps;
    Ok ()
  end
  else Error Ksim.Errno.ENOENT

type change =
  | Added of Fs_spec.path
  | Removed of Fs_spec.path
  | Modified of Fs_spec.path

let diff fs ~since =
  match List.assoc_opt since fs.snaps with
  | None -> Error Ksim.Errno.ENOENT
  | Some old_tree ->
      let old_state = interpret_tree old_tree and new_state = interpret fs in
      let changes =
        Fs_spec.Pathmap.fold
          (fun path node acc ->
            match Fs_spec.Pathmap.find_opt path new_state with
            | None -> Removed path :: acc
            | Some node' -> if node = node' then acc else Modified path :: acc)
          old_state []
      in
      let changes =
        Fs_spec.Pathmap.fold
          (fun path _ acc ->
            if Fs_spec.Pathmap.mem path old_state then acc else Added path :: acc)
          new_state changes
      in
      Ok (List.sort compare changes)

(* Structural sharing accounting: how many tree nodes the live tree and a
   snapshot share (physical equality), demonstrating O(1) snapshots. *)
let shared_nodes fs ~with_snapshot =
  match List.assoc_opt with_snapshot fs.snaps with
  | None -> Error Ksim.Errno.ENOENT
  | Some snap ->
      let rec count a b =
        if a == b then
          let rec size = function
            | CFile _ -> 1
            | CDir entries -> Smap.fold (fun _ child acc -> acc + size child) entries 1
          in
          size a
        else
          match (a, b) with
          | CDir ea, CDir eb ->
              Smap.fold
                (fun name child acc ->
                  match Smap.find_opt name eb with
                  | Some child' -> acc + count child child'
                  | None -> acc)
                ea 0
          | _ -> 0
      in
      Ok (count fs.current snap)
