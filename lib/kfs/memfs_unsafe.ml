(* The "C-style" in-memory file system: roadmap step 0.

   Deliberately written with the unsafe idioms the paper catalogues:

   - file content lives in manually managed [Ksim.Kmem] cells;
   - [write_begin]/[write_end] pass fs-private state as a [Ksim.Dyn]
     void pointer the callee casts back (§4.2);
   - lookup-style functions return error pointers the caller must
     remember to IS_ERR-check (§4.2);
   - [i_size] on the shared inode is updated sometimes with and sometimes
     without [i_lock] (§4.3).

   [faults] switches latent bugs of each class on; with all faults off the
   module is functionally correct, which is what lets the fault-injection
   experiment measure *which roadmap step would have prevented what*
   rather than comparing a broken module to a working one. *)

open Kspec

type faults = {
  mutable use_after_free : bool;  (* unlink frees content but leaves the dentry *)
  mutable double_free : bool;  (* unlink frees content twice *)
  mutable memory_leak : bool;  (* unlink forgets to free content *)
  mutable wrong_cast : bool;  (* write_end casts private data to the wrong type *)
  mutable missing_errptr_check : bool;  (* read dereferences lookup without IS_ERR *)
  mutable skip_i_lock : bool;  (* i_size updated without holding i_lock *)
  mutable off_by_one : bool;  (* read returns one byte short: a semantic bug *)
}

let no_faults () =
  {
    use_after_free = false;
    double_free = false;
    memory_leak = false;
    wrong_cast = false;
    missing_errptr_check = false;
    skip_i_lock = false;
    off_by_one = false;
  }

type file_data = {
  content : string Ksim.Kmem.ptr;
  vnode : Kvfs.Vtypes.inode;
}

type dir_data = { entries : (string, int) Hashtbl.t }

type node =
  | File of file_data
  | Dir of dir_data

type fs = {
  heap : Ksim.Kmem.t;
  inodes : (int, node) Hashtbl.t;
  mutable next_ino : int;
  faults : faults;
  (* The superblock lock, ext4's s_lock shape: serializes whole-file
     mutations (write_end, truncate) and nests *outside* i_lock, the
     ordering both lockdep at runtime and kracer statically must agree
     on. *)
  s_lock : Ksim.Klock.t;
  (* Dangling pointers parked by the use-after-free fault: the code keeps
     using them, as C code would. *)
  mutable dangling : (int * string Ksim.Kmem.ptr) list;
}

let fs_name = "memfs_unsafe"

(* The void-pointer keys for write_begin/write_end private data.  The
   wrong_cast fault casts to [bogus_key], which models a file system
   receiving another component's private data (CVE-2020-12351 shape). *)
type write_ctx = {
  w_ino : int;
  w_off : int;
}

let write_ctx_key : write_ctx Ksim.Dyn.Key.t = Ksim.Dyn.Key.create ~name:"memfs_unsafe.write_ctx"

type bogus = { b_cookie : int }

let bogus_key : bogus Ksim.Dyn.Key.t = Ksim.Dyn.Key.create ~name:"memfs_unsafe.bogus"

let root_ino = 0

let mkfs_with_faults faults =
  let heap = Ksim.Kmem.create ~name:"memfs_unsafe" () in
  let inodes = Hashtbl.create 64 in
  Hashtbl.replace inodes root_ino (Dir { entries = Hashtbl.create 8 });
  let s_lock = Ksim.Klock.create ~lockdep:Ksim.Lockdep.global ~name:"s_lock" () in
  { heap; inodes; next_ino = 1; faults; s_lock; dangling = [] }

let mkfs () = mkfs_with_faults (no_faults ())

let heap fs = fs.heap
let faults fs = fs.faults

let node fs ino = Hashtbl.find_opt fs.inodes ino

let rec walk fs ino = function
  | [] -> Some ino
  | comp :: rest -> (
      match node fs ino with
      | Some (Dir d) -> (
          match Hashtbl.find_opt d.entries comp with
          | Some child -> walk fs child rest
          | None -> None)
      | Some (File _) | None -> None)

let lookup_ino fs path = walk fs root_ino path
let lookup_node fs path = Option.bind (lookup_ino fs path) (node fs)

let is_dir fs path =
  match lookup_node fs path with Some (Dir _) -> true | Some (File _) | None -> false

let parent_entries fs path =
  match Fs_spec.parent path with
  | None -> Error Ksim.Errno.EINVAL
  | Some par -> (
      match lookup_node fs par with
      | Some (Dir d) -> Ok d.entries
      | Some (File _) | None -> Error Ksim.Errno.ENOENT)

let basename_exn path =
  match Fs_spec.basename path with Some name -> name | None -> assert false

(* Update i_size the way sloppy C code does: usually under i_lock (via
   the annotated accessor, which discharges its @must_hold), but on the
   fast path (fault enabled) without it — the Guarded cell records the
   race at runtime, and kracer's R6 flags the same line statically. *)
let set_size fs (vnode : Kvfs.Vtypes.inode) size =
  if fs.faults.skip_i_lock then Ksim.Klock.Guarded.set vnode.i_size size
  else
    Ksim.Klock.with_lock vnode.i_lock (fun () -> Kvfs.Vtypes.set_size_locked vnode size)

let file_content fs (f : file_data) =
  ignore fs;
  Ksim.Kmem.read f.content

let set_file_content fs (f : file_data) data =
  Ksim.Kmem.write f.content data;
  set_size fs f.vnode (String.length data)

(* Legacy interface -------------------------------------------------------- *)

let err e = Ksim.Dyn.Errptr.of_err e

let inode_key : int Ksim.Dyn.Key.t = Ksim.Dyn.Key.create ~name:"memfs_unsafe.ino"

let lookup fs path_str =
  let path = Fs_spec.path_of_string path_str in
  match lookup_ino fs path with
  | Some ino -> Ksim.Dyn.Errptr.of_ptr (Ksim.Dyn.inject inode_key ino)
  | None -> err Ksim.Errno.ENOENT

let create fs path_str ~kind =
  let path = Fs_spec.path_of_string path_str in
  match parent_entries fs path with
  | Error e -> err e
  | Ok entries ->
      if Hashtbl.mem entries (basename_exn path) then err Ksim.Errno.EEXIST
      else begin
        let ino = fs.next_ino in
        fs.next_ino <- ino + 1;
        let n =
          match kind with
          | Kvfs.Vtypes.Regular ->
              let vnode = Kvfs.Vtypes.make_inode Kvfs.Vtypes.Regular in
              File { content = Ksim.Kmem.alloc fs.heap ~site:path_str ""; vnode }
          | Kvfs.Vtypes.Directory -> Dir { entries = Hashtbl.create 8 }
        in
        Hashtbl.replace fs.inodes ino n;
        Hashtbl.replace entries (basename_exn path) ino;
        Ksim.Dyn.Errptr.of_ptr (Ksim.Dyn.inject inode_key ino)
      end

let write_begin fs path_str ~off =
  let path = Fs_spec.path_of_string path_str in
  if off < 0 then err Ksim.Errno.EINVAL
  else
    match lookup_node fs path with
    | Some (File _) -> (
        match lookup_ino fs path with
        | Some ino -> Ksim.Dyn.Errptr.of_ptr (Ksim.Dyn.inject write_ctx_key { w_ino = ino; w_off = off })
        | None -> err Ksim.Errno.ENOENT)
    | Some (Dir _) -> err Ksim.Errno.EISDIR
    | None -> if is_dir fs path then err Ksim.Errno.EISDIR else err Ksim.Errno.ENOENT

let write_end fs private_data ~data =
  (* The C idiom: cast the void* back and trust it.  With the wrong_cast
     fault the cast targets another component's type — Type_confusion. *)
  let ctx =
    if fs.faults.wrong_cast then begin
      let b = Ksim.Dyn.cast_exn bogus_key private_data in
      { w_ino = b.b_cookie; w_off = 0 }
    end
    else Ksim.Dyn.cast_exn write_ctx_key private_data
  in
  match node fs ctx.w_ino with
  | Some (File f) ->
      (* s_lock outside, i_lock (inside set_file_content) within: the
         nesting the lock-order graphs must both contain. *)
      Ksim.Klock.with_lock fs.s_lock (fun () ->
          let content = file_content fs f in
          set_file_content fs f (Fs_spec.write_at content ~off:ctx.w_off ~data);
          String.length data)
  | Some (Dir _) -> -Ksim.Errno.to_code Ksim.Errno.EISDIR
  | None -> -Ksim.Errno.to_code Ksim.Errno.ENOENT

let read fs path_str ~off ~len =
  if off < 0 || len < 0 then Error (-Ksim.Errno.to_code Ksim.Errno.EINVAL)
  else begin
    let handle = lookup fs path_str in
    (* The classic bug: use the returned pointer without IS_ERR. *)
    let handle_dyn =
      if fs.faults.missing_errptr_check then Ksim.Dyn.Errptr.deref handle
      else
        match handle with
        | Ksim.Dyn.Errptr.Err _ -> Ksim.Dyn.null
        | Ksim.Dyn.Errptr.Ptr p -> p
    in
    if Ksim.Dyn.is_null handle_dyn then
      let path = Fs_spec.path_of_string path_str in
      if is_dir fs path then Error (-Ksim.Errno.to_code Ksim.Errno.EISDIR)
      else Error (-Ksim.Errno.to_code Ksim.Errno.ENOENT)
    else
      let ino = Ksim.Dyn.cast_exn inode_key handle_dyn in
      match node fs ino with
      | Some (File f) ->
          let content = file_content fs f in
          let result = Fs_spec.read_at content ~off ~len in
          let result =
            if fs.faults.off_by_one && String.length result > 0 then
              String.sub result 0 (String.length result - 1)
            else result
          in
          Ok result
      | Some (Dir _) -> Error (-Ksim.Errno.to_code Ksim.Errno.EISDIR)
      | None -> Error (-Ksim.Errno.to_code Ksim.Errno.ENOENT)
  end

let truncate fs path_str size =
  let path = Fs_spec.path_of_string path_str in
  if size < 0 then -Ksim.Errno.to_code Ksim.Errno.EINVAL
  else
    match lookup_node fs path with
    | Some (File f) ->
        Ksim.Klock.with_lock fs.s_lock (fun () ->
            let content = file_content fs f in
            let content' =
              if String.length content >= size then String.sub content 0 size
              else content ^ String.make (size - String.length content) '\000'
            in
            set_file_content fs f content';
            0)
    | Some (Dir _) -> -Ksim.Errno.to_code Ksim.Errno.EISDIR
    | None ->
        if is_dir fs path then -Ksim.Errno.to_code Ksim.Errno.EISDIR
        else -Ksim.Errno.to_code Ksim.Errno.ENOENT

let unlink fs path_str =
  let path = Fs_spec.path_of_string path_str in
  match lookup_node fs path with
  | Some (File f) -> (
      match parent_entries fs path with
      | Error e -> -Ksim.Errno.to_code e
      | Ok entries ->
          let ino = match lookup_ino fs path with Some i -> i | None -> assert false in
          if fs.faults.memory_leak then begin
            (* Forget the kfree. *)
            Hashtbl.remove entries (basename_exn path);
            Hashtbl.remove fs.inodes ino
          end
          else if fs.faults.use_after_free then begin
            (* Free the content but keep the dentry: the next read walks
               straight into freed memory. *)
            Ksim.Kmem.free f.content;
            fs.dangling <- (ino, f.content) :: fs.dangling
          end
          else if fs.faults.double_free then begin
            Ksim.Kmem.free f.content;
            Ksim.Kmem.free f.content;
            Hashtbl.remove entries (basename_exn path);
            Hashtbl.remove fs.inodes ino
          end
          else begin
            Ksim.Kmem.free f.content;
            Hashtbl.remove entries (basename_exn path);
            Hashtbl.remove fs.inodes ino
          end;
          0)
  | Some (Dir _) -> -Ksim.Errno.to_code Ksim.Errno.EISDIR
  | None ->
      if is_dir fs path then -Ksim.Errno.to_code Ksim.Errno.EISDIR
      else -Ksim.Errno.to_code Ksim.Errno.ENOENT

let rmdir fs path_str =
  let path = Fs_spec.path_of_string path_str in
  if path = [] then -Ksim.Errno.to_code Ksim.Errno.EBUSY
  else
    match lookup_node fs path with
    | Some (Dir d) ->
        if Hashtbl.length d.entries > 0 then -Ksim.Errno.to_code Ksim.Errno.ENOTEMPTY
        else (
          match parent_entries fs path with
          | Error e -> -Ksim.Errno.to_code e
          | Ok entries ->
              (match lookup_ino fs path with
              | Some ino -> Hashtbl.remove fs.inodes ino
              | None -> ());
              Hashtbl.remove entries (basename_exn path);
              0)
    | Some (File _) -> -Ksim.Errno.to_code Ksim.Errno.ENOTDIR
    | None -> -Ksim.Errno.to_code Ksim.Errno.ENOENT

let rec free_subtree fs ino =
  match node fs ino with
  | Some (Dir d) ->
      Hashtbl.iter (fun _ child -> free_subtree fs child) d.entries;
      Hashtbl.remove fs.inodes ino
  | Some (File f) ->
      if Ksim.Kmem.is_live f.content then Ksim.Kmem.free f.content;
      Hashtbl.remove fs.inodes ino
  | None -> ()

let rename fs src_str dst_str =
  let src = Fs_spec.path_of_string src_str and dst = Fs_spec.path_of_string dst_str in
  if src = [] then -Ksim.Errno.to_code Ksim.Errno.ENOENT
  else
    match lookup_ino fs src with
    | None -> -Ksim.Errno.to_code Ksim.Errno.ENOENT
    | Some src_ino -> (
        if dst = [] then -Ksim.Errno.to_code Ksim.Errno.EINVAL
        else if Fs_spec.is_prefix src dst && src <> dst then
          -Ksim.Errno.to_code Ksim.Errno.EINVAL
        else
          match parent_entries fs dst with
          | Error e -> -Ksim.Errno.to_code e
          | Ok dst_entries -> (
              let clash =
                match (node fs src_ino, lookup_node fs dst) with
                | _, None -> 0
                | Some (File _), Some (File _) -> 0
                | Some (File _), Some (Dir _) -> -Ksim.Errno.to_code Ksim.Errno.EISDIR
                | Some (Dir _), Some (File _) -> -Ksim.Errno.to_code Ksim.Errno.ENOTDIR
                | Some (Dir _), Some (Dir d) ->
                    if Hashtbl.length d.entries = 0 then 0
                    else -Ksim.Errno.to_code Ksim.Errno.ENOTEMPTY
                | None, _ -> -Ksim.Errno.to_code Ksim.Errno.ENOENT
              in
              if clash <> 0 then clash
              else if src = dst then 0
              else begin
                (match lookup_ino fs dst with
                | Some old_ino when old_ino <> src_ino -> free_subtree fs old_ino
                | Some _ | None -> ());
                (match parent_entries fs src with
                | Ok src_entries -> Hashtbl.remove src_entries (basename_exn src)
                | Error _ -> ());
                Hashtbl.replace dst_entries (basename_exn dst) src_ino;
                0
              end))

let readdir fs path_str =
  let path = Fs_spec.path_of_string path_str in
  match lookup_node fs path with
  | Some (Dir d) ->
      Ok (Hashtbl.fold (fun name _ acc -> name :: acc) d.entries [] |> List.sort String.compare)
  | Some (File _) -> Error (-Ksim.Errno.to_code Ksim.Errno.ENOTDIR)
  | None -> Error (-Ksim.Errno.to_code Ksim.Errno.ENOENT)

let stat fs path_str =
  let path = Fs_spec.path_of_string path_str in
  match lookup_node fs path with
  | Some (File f) -> Ok (Kvfs.Vtypes.Regular, String.length (file_content fs f))
  | Some (Dir _) -> Ok (Kvfs.Vtypes.Directory, 0)
  | None -> Error (-Ksim.Errno.to_code Ksim.Errno.ENOENT)

let fsync (_ : fs) = 0

let interpret fs : Fs_spec.state =
  let rec go ino rel acc =
    match node fs ino with
    | Some (Dir d) ->
        let acc = if rel = [] then acc else Fs_spec.Pathmap.add rel Fs_spec.Dir acc in
        Hashtbl.fold (fun name child acc -> go child (rel @ [ name ]) acc) d.entries acc
    | Some (File f) ->
        (* Interpreting freed content would itself be a UAF; report what a
           crashed kernel would: treat it as absent. *)
        if Ksim.Kmem.is_live f.content then
          Fs_spec.Pathmap.add rel (Fs_spec.File (Ksim.Kmem.read f.content)) acc
        else acc
    | None -> acc
  in
  go root_ino [] Fs_spec.empty

(* The modular view (roadmap step 1 applied to this module). *)
module Legacy = struct
  type nonrec fs = fs

  let fs_name = fs_name
  let mkfs = mkfs
  let lookup = lookup
  let create = create
  let write_begin = write_begin
  let write_end = write_end
  let read = read
  let unlink = unlink
  let rmdir = rmdir
  let rename = rename
  let readdir = readdir
  let stat = stat
  let truncate = truncate
  let fsync = fsync
  let interpret = interpret
end

module Modular = Kvfs.Iface.Of_legacy (Legacy)
