(* rawlog_unsafe — the barrier-discipline exhibit: an append-only record
   log over a raw [Io.t], written the careless way pre-journaling file
   systems wrote metadata.  Block 0 is a header holding the record
   count; records go at 1, 2, ...  Nothing here ever flushes.

   Like [Memfs_unsafe] for the memory-safety rungs, this module exists
   to be convicted: each function below is a minimal specimen of one
   kdur rule, grandfathered in dur.baseline, and [append_chained] is
   also the runtime counterpart — driven over a {!Kblock.Wcache} named
   ["rawlog_unsafe"] it provokes the audit's read-back-then-dependent-
   write violation, which the KSIM_WCACHE_EXPORT reconciliation then
   matches against the static R16 finding in this file.

   Specimens:
   - [append]          @orders_after contract (correct, volatile by design)
   - [append_retry]    R18: wrapper that drops append's flush obligation
   - [append_chained]  R16: dependent write derived from a volatile read-back
   - [commit]          R17: @durable ack with no barrier behind it *)

type t = {
  io : Kblock.Io.t;
  mutable next : int; (* next free record block; block 0 is the header *)
}

let ( let* ) = Result.bind

(* Open a log over [io]; trusts the header if one is readable. *)
let attach (io : Kblock.Io.t) =
  let next =
    match io.Kblock.Io.read 0 with
    | Ok hdr -> max 1 (1 + Kblock.Codec.get_u32 hdr 0)
    | Error _ -> 1
  in
  { io; next }

let records t = t.next - 1

(** Append one record.  Acked straight out of the write-back cache: the
    record is {e not} durable, and this module never flushes — the
    caller inherits the barrier obligation, honestly declared.
    @orders_after: t *)
let append t data =
  let* () = t.io.Kblock.Io.write t.next data in
  t.next <- t.next + 1;
  Ok (t.next - 1)

(* The R18 specimen: a retry wrapper around [append] that forwards its
   volatile writes but states no contract of its own — the @orders_after
   obligation evaporates at this boundary, so callers reading only this
   function's signature believe the barrier question is settled.  The
   retry also collects an incidental R16: it re-sends [data] while the
   first attempt's ack is still cache-volatile, with no barrier deciding
   which of the two a crash keeps. *)
let append_retry t data =
  match append t data with
  | Error Ksim.Errno.EAGAIN -> append t data
  | r -> r

(* Derive a record from its predecessor: copy [data], stamp the first
   byte of [prev] into it as a chain mark.  Pure; the bug is in who
   calls it with what. *)
let chain_block prev data =
  let out = Bytes.copy data in
  Bytes.set out 0 (Bytes.get prev 0);
  out

(* The R16 specimen, ALICE's ordering bug in four lines: write record
   [a], read it straight back (still cache-volatile), derive record [b]
   from that read, write the derivation — no barrier anywhere.  A crash
   can keep the chained record while losing the record it chains to.
   Over a {!Kblock.Wcache} this exact sequence also trips the runtime
   audit (read-back taint, then a write to a different block). *)
let append_chained t a b =
  let* () = t.io.Kblock.Io.write t.next a in
  let* prev = t.io.Kblock.Io.read t.next in
  t.next <- t.next + 1;
  let chained = chain_block prev b in
  let* () = t.io.Kblock.Io.write t.next chained in
  t.next <- t.next + 1;
  Ok ()

(** Publish the record count in the header.  Claims the fsync contract —
    and implements none of it: the header write is acked from the cache
    and nothing is flushed, so the [Ok] below is a durability lie (R17,
    the same shape as the journal's [?barriers:false] ablation).
    @durable *)
let commit t =
  let hdr = Bytes.make t.io.Kblock.Io.block_size '\000' in
  Kblock.Codec.put_u32 hdr 0 (records t);
  let* () = t.io.Kblock.Io.write 0 hdr in
  Ok ()
