(* The ownership-safe in-memory file system: roadmap step 3.

   File content lives in regions of the [Ownership.Checker]; every access
   presents a capability.  The module's interface contract is the paper's
   restricted-sharing discipline: reads lend the region shared (model 3),
   writes lend it exclusive (model 2), unlink transfers ownership back to
   the allocator (free).  A use-after-free, double free, leak, or write
   during a shared lend is structurally impossible for well-typed clients
   and is *detected* (checker violation) for buggy ones. *)

open Kspec

type file_data = {
  mutable cap : Ownership.Cap.t;
  mutable size : int; (* logical size; the region may be larger *)
}

type node =
  | File of file_data
  | Dir of (string, int) Hashtbl.t

type fs = {
  ck : Ownership.Checker.t;
  inodes : (int, node) Hashtbl.t;
  mutable next_ino : int;
}

let fs_name = "memfs_owned"
let stage = 3
let root_ino = 0

let mkfs () =
  let inodes = Hashtbl.create 64 in
  Hashtbl.replace inodes root_ino (Dir (Hashtbl.create 8));
  { ck = Ownership.Checker.create ~strict:true (); inodes; next_ino = 1 }

let checker fs = fs.ck

let node fs ino = Hashtbl.find_opt fs.inodes ino

let rec walk fs ino = function
  | [] -> Some ino
  | comp :: rest -> (
      match node fs ino with
      | Some (Dir entries) -> (
          match Hashtbl.find_opt entries comp with
          | Some child -> walk fs child rest
          | None -> None)
      | Some (File _) | None -> None)

let lookup fs path = walk fs root_ino path
let lookup_node fs path = Option.bind (lookup fs path) (node fs)

let is_dir fs path =
  match lookup_node fs path with Some (Dir _) -> true | Some (File _) | None -> false

let parent_entries fs path =
  match Fs_spec.parent path with
  | None -> Error Ksim.Errno.EINVAL
  | Some par -> (
      match lookup_node fs par with
      | Some (Dir entries) -> Ok entries
      | Some (File _) | None -> Error Ksim.Errno.ENOENT)

let basename_exn path =
  match Fs_spec.basename path with Some name -> name | None -> assert false

let initial_region = 64

(** Read the whole logical content.  The FS lends the region shared to the
    requesting client — model 3: nobody can mutate while it reads.  The
    file's capability stays with the FS throughout.
    @borrows: f *)
let content fs (f : file_data) =
  if f.size = 0 then ""
  else
    Ownership.Checker.lend_shared fs.ck f.cap ~to_:[ "vfs-client" ] ~f:(fun borrowed ->
        match borrowed with
        | [ b ] -> Bytes.to_string (Ownership.Checker.read fs.ck b ~off:0 ~len:f.size)
        | _ -> assert false)

(** Replace the whole logical content, growing the region when needed.
    The write happens under an exclusive lend — model 2.  [f] is only
    borrowed: the (possibly fresh) region ends up owned by the file.
    @borrows: f *)
let set_content fs (f : file_data) data =
  let needed = String.length data in
  let region = Ownership.Checker.size fs.ck f.cap in
  if needed > region then begin
    let new_size = max initial_region (max needed (2 * region)) in
    let fresh = Ownership.Checker.alloc fs.ck ~holder:"memfs_owned" ~size:new_size in
    Ownership.Checker.free fs.ck f.cap;
    f.cap <- fresh
  end;
  Ownership.Checker.lend_exclusive fs.ck f.cap ~to_:"vfs-client" ~f:(fun b ->
      Ownership.Checker.write fs.ck b ~off:0 (Bytes.of_string data));
  f.size <- needed

(** Allocate a fresh empty file: its region is owned by the returned
    [file_data] and released by {!free_subtree} (or replaced wholesale by
    {!set_content}).
    @returns_owned *)
let alloc_file fs =
  { cap = Ownership.Checker.alloc fs.ck ~holder:"memfs_owned" ~size:initial_region; size = 0 }

let add_node fs path make_node =
  match parent_entries fs path with
  | Error e -> Error e
  | Ok entries ->
      if Hashtbl.mem entries (basename_exn path) then Error Ksim.Errno.EEXIST
      else begin
        let ino = fs.next_ino in
        fs.next_ino <- ino + 1;
        Hashtbl.replace fs.inodes ino (make_node ());
        Hashtbl.replace entries (basename_exn path) ino;
        Ok Fs_spec.Unit
      end

let with_file fs path f =
  match lookup_node fs path with
  | Some (File file) -> f file
  | Some (Dir _) -> Error Ksim.Errno.EISDIR
  | None -> if is_dir fs path then Error Ksim.Errno.EISDIR else Error Ksim.Errno.ENOENT

let rec free_subtree fs ino =
  match node fs ino with
  | Some (Dir entries) ->
      Hashtbl.iter (fun _ child -> free_subtree fs child) entries;
      Hashtbl.remove fs.inodes ino
  | Some (File f) ->
      Ownership.Checker.free fs.ck f.cap;
      Hashtbl.remove fs.inodes ino
  | None -> ()

let apply fs (op : Fs_spec.op) : Fs_spec.result =
  match op with
  | Create path -> add_node fs path (fun () -> File (alloc_file fs))
  | Mkdir path -> add_node fs path (fun () -> Dir (Hashtbl.create 8))
  | Write { file; off; data } ->
      if off < 0 then Error Ksim.Errno.EINVAL
      else
        with_file fs file (fun f ->
            set_content fs f (Fs_spec.write_at (content fs f) ~off ~data);
            Ok Fs_spec.Unit)
  | Read { file; off; len } ->
      if off < 0 || len < 0 then Error Ksim.Errno.EINVAL
      else with_file fs file (fun f -> Ok (Fs_spec.Data (Fs_spec.read_at (content fs f) ~off ~len)))
  | Truncate (path, size) ->
      if size < 0 then Error Ksim.Errno.EINVAL
      else
        with_file fs path (fun f ->
            let c = content fs f in
            let c' =
              if String.length c >= size then String.sub c 0 size
              else c ^ String.make (size - String.length c) '\000'
            in
            set_content fs f c';
            Ok Fs_spec.Unit)
  | Unlink path -> (
      match lookup_node fs path with
      | Some (File _) -> (
          match parent_entries fs path with
          | Error e -> Error e
          | Ok entries ->
              (match lookup fs path with
              | Some ino -> free_subtree fs ino
              | None -> ());
              Hashtbl.remove entries (basename_exn path);
              Ok Fs_spec.Unit)
      | Some (Dir _) -> Error Ksim.Errno.EISDIR
      | None -> if path = [] then Error Ksim.Errno.EISDIR else Error Ksim.Errno.ENOENT)
  | Rmdir [] -> Error Ksim.Errno.EBUSY
  | Rmdir path -> (
      match lookup_node fs path with
      | Some (Dir entries) ->
          if Hashtbl.length entries > 0 then Error Ksim.Errno.ENOTEMPTY
          else (
            match parent_entries fs path with
            | Error e -> Error e
            | Ok parent ->
                (match lookup fs path with
                | Some ino -> Hashtbl.remove fs.inodes ino
                | None -> ());
                Hashtbl.remove parent (basename_exn path);
                Ok Fs_spec.Unit)
      | Some (File _) -> Error Ksim.Errno.ENOTDIR
      | None -> Error Ksim.Errno.ENOENT)
  | Rename ([], _) -> Error Ksim.Errno.ENOENT
  | Rename (src, dst) -> (
      match lookup fs src with
      | None -> Error Ksim.Errno.ENOENT
      | Some src_ino -> (
          if dst = [] then Error Ksim.Errno.EINVAL
          else if Fs_spec.is_prefix src dst && src <> dst then Error Ksim.Errno.EINVAL
          else
            match parent_entries fs dst with
            | Error e -> Error e
            | Ok dst_entries -> (
                let clash =
                  match (node fs src_ino, lookup_node fs dst) with
                  | _, None -> Ok ()
                  | Some (File _), Some (File _) -> Ok ()
                  | Some (File _), Some (Dir _) -> Error Ksim.Errno.EISDIR
                  | Some (Dir _), Some (File _) -> Error Ksim.Errno.ENOTDIR
                  | Some (Dir _), Some (Dir d) ->
                      if Hashtbl.length d = 0 then Ok () else Error Ksim.Errno.ENOTEMPTY
                  | None, _ -> Error Ksim.Errno.ENOENT
                in
                match clash with
                | Error e -> Error e
                | Ok () ->
                    if src = dst then Ok Fs_spec.Unit
                    else begin
                      (match lookup fs dst with
                      | Some old_ino when old_ino <> src_ino -> free_subtree fs old_ino
                      | Some _ | None -> ());
                      (match parent_entries fs src with
                      | Ok src_entries -> Hashtbl.remove src_entries (basename_exn src)
                      | Error _ -> ());
                      Hashtbl.replace dst_entries (basename_exn dst) src_ino;
                      Ok Fs_spec.Unit
                    end)))
  | Readdir path -> (
      match lookup_node fs path with
      | Some (Dir entries) ->
          Ok
            (Fs_spec.Names
               (Hashtbl.fold (fun name _ acc -> name :: acc) entries []
               |> List.sort String.compare))
      | Some (File _) -> Error Ksim.Errno.ENOTDIR
      | None -> Error Ksim.Errno.ENOENT)
  | Stat path -> (
      match lookup_node fs path with
      | Some (File f) -> Ok (Fs_spec.Attr { kind = `File; size = f.size })
      | Some (Dir _) -> Ok (Fs_spec.Attr { kind = `Dir; size = 0 })
      | None -> Error Ksim.Errno.ENOENT)
  | Fsync -> Ok Fs_spec.Unit

let interpret fs : Fs_spec.state =
  let rec go ino rel acc =
    match node fs ino with
    | Some (Dir entries) ->
        let acc = if rel = [] then acc else Fs_spec.Pathmap.add rel Fs_spec.Dir acc in
        Hashtbl.fold (fun name child acc -> go child (rel @ [ name ]) acc) entries acc
    | Some (File f) -> Fs_spec.Pathmap.add rel (Fs_spec.File (content fs f)) acc
    | None -> acc
  in
  go root_ino [] Fs_spec.empty

(* Unmount: release every region; a correct run leaves no leaks. *)
let destroy fs =
  free_subtree fs root_ino;
  Hashtbl.replace fs.inodes root_ino (Dir (Hashtbl.create 8));
  Ownership.Checker.check_leaks fs.ck
