(** Block-based file system with a write-ahead journal — the ext4-shaped
    subject of the crash-safety experiment (EXP-CRASH, BENCH-JOURNAL).

    Every operation stages its changed blocks (data, inode table, bitmap)
    into one journal transaction, so a crash observes all of an operation
    or none of it.  [Direct] mode is the ablation: identical block writes
    issued in place with no journal — the classic non-journaled FS the
    crash checker convicts.

    Media traffic goes through a {!Kblock.Io.t} (default: the raw
    device), so the FS can run over a {!Kblock.Flakydev} /
    {!Kblock.Resilient} stack.  A persistent [EIO] (one that survives the
    retry layer) aborts the operation cleanly and degrades the FS
    ext4-style to errors=remount-ro: {!is_readonly} flips, subsequent
    mutations fail [EROFS], reads keep working, and an ["incident"] event
    is emitted on {!Ksim.Ktrace.global} for [Safeos_core.Audit]. *)

type mode =
  | Journaled
  | Direct

type geometry = {
  nblocks : int;
  block_size : int;
  jblocks : int;  (** journal-area blocks (header + records) *)
  ninodes : int;
}

val default_geometry : geometry

type t

val mkfs_on :
  ?geometry:geometry ->
  ?group_commit:bool ->
  ?barriers:bool ->
  ?io:Kblock.Io.t ->
  mode ->
  Kblock.Blockdev.t ->
  t
(** Format a {e freshly created (zeroed)} device and mount it.  With
    [group_commit] operations accumulate into one journal transaction
    that commits at [Fsync] (or when full) — higher throughput, and a
    crash legally loses the whole uncommitted batch.  [io] (default
    [Kblock.Blockdev.io dev]) carries all media traffic; pass a
    flaky/resilient stack over [dev] to run under fault injection, or a
    {!Kblock.Wcache} to run over the volatile write-back disk contract.
    [~barriers:false] is the seeded missing-barrier journal mutant (see
    {!Kblock.Journal.format}) — deliberately broken, for the refinement
    checker to convict.  Formatting itself expects reliable I/O. *)

val mount :
  ?geometry:geometry ->
  ?group_commit:bool ->
  ?barriers:bool ->
  ?io:Kblock.Io.t ->
  mode ->
  Kblock.Blockdev.t ->
  t
(** Mount an existing device: journal recovery (in [Journaled] mode), then
    parse.  A disk that cannot be parsed yields a {!is_corrupt} instance
    whose operations all fail with [EIO]. *)

val apply : t -> Kspec.Fs_spec.op -> Kspec.Fs_spec.result
(** [Fsync] checkpoints the journal (or flushes the device in [Direct]
    mode).  [ENOSPC] when data blocks, inodes, or transaction capacity
    run out.  [EIO] aborts the op and remounts read-only (see above);
    once read-only, mutations fail [EROFS] and [Fsync] is a no-op. *)

val interpret : t -> Kspec.Fs_spec.state
val crash_images : t -> limit:int -> t list
val mode : t -> mode
val device : t -> Kblock.Blockdev.t
val journal_stats : t -> Kblock.Journal.stats option
val is_corrupt : t -> bool

val is_readonly : t -> bool
(** The errors=remount-ro latch: set by the first persistent I/O failure,
    never cleared for the lifetime of this mount. *)

val max_file_size : geometry -> int

(** Mountable adapters (fresh default-geometry device per [mkfs]). *)
module Journaled_fs : Kvfs.Iface.FS_OPS with type fs = t

module Journaled_group_fs : Kvfs.Iface.FS_OPS with type fs = t

module Direct_fs : Kvfs.Iface.FS_OPS with type fs = t

(** Crash-checkable adapters for {!Kspec.Crash.check}. *)
module Crashable_journaled : Kspec.Crash.CRASHABLE_FS with type t = t

module Crashable_journaled_group : Kspec.Crash.CRASHABLE_FS with type t = t

module Crashable_direct : Kspec.Crash.CRASHABLE_FS with type t = t
