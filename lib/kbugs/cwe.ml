(* The CWE taxonomy used by the paper's section-2 analysis, mapped onto
   the simulator's bug classes and thus onto the roadmap rung that
   prevents each weakness. *)

type t = {
  cwe_id : int;
  cwe_name : string;
  bug_class : Safeos_core.Level.bug_class;
}

let v cwe_id cwe_name bug_class = { cwe_id; cwe_name; bug_class }

let catalog =
  [
    (* prevented by compile-time type and ownership safety (~42%) *)
    v 476 "NULL Pointer Dereference" Safeos_core.Level.Null_dereference;
    v 843 "Access of Resource Using Incompatible Type" Safeos_core.Level.Type_confusion;
    v 416 "Use After Free" Safeos_core.Level.Use_after_free;
    v 415 "Double Free" Safeos_core.Level.Double_free;
    v 119 "Improper Restriction of Memory Buffer Operations" Safeos_core.Level.Buffer_overflow;
    v 125 "Out-of-bounds Read" Safeos_core.Level.Buffer_overflow;
    v 787 "Out-of-bounds Write" Safeos_core.Level.Buffer_overflow;
    v 362 "Race Condition" Safeos_core.Level.Data_race;
    v 667 "Improper Locking" Safeos_core.Level.Data_race;
    v 401 "Missing Release of Memory" Safeos_core.Level.Memory_leak;
    (* prevented by functional correctness verification (+35%) *)
    v 20 "Improper Input Validation" Safeos_core.Level.Semantic;
    v 248 "Uncaught Exception" Safeos_core.Level.Semantic;
    v 682 "Incorrect Calculation" Safeos_core.Level.Semantic;
    v 459 "Incomplete Cleanup" Safeos_core.Level.Semantic;
    v 754 "Improper Check for Unusual Conditions" Safeos_core.Level.Semantic;
    v 665 "Improper Initialization" Safeos_core.Level.Semantic;
    v 1059 "Insufficient Technical Documentation" Safeos_core.Level.Semantic;
    (* the remaining 23%: numeric errors and security-design causes *)
    v 190 "Integer Overflow or Wraparound" Safeos_core.Level.Numeric;
    v 191 "Integer Underflow" Safeos_core.Level.Numeric;
    v 369 "Divide By Zero" Safeos_core.Level.Numeric;
    v 200 "Exposure of Sensitive Information" Safeos_core.Level.Design;
    v 284 "Improper Access Control" Safeos_core.Level.Design;
    v 264 "Permissions, Privileges, and Access Controls" Safeos_core.Level.Design;
    v 400 "Uncontrolled Resource Consumption" Safeos_core.Level.Design;
    (* framekernel TCB-confinement causes (klint R12-R14) *)
    v 1120 "Excessive Code Complexity" Safeos_core.Level.Design;
    v 653 "Improper Isolation or Compartmentalization" Safeos_core.Level.Design;
    v 668 "Exposure of Resource to Wrong Sphere" Safeos_core.Level.Design;
    (* crash-durability causes (klint R16-R18) *)
    v 662 "Improper Synchronization" Safeos_core.Level.Crash_inconsistency;
    v 392 "Missing Report of Error Condition" Safeos_core.Level.Crash_inconsistency;
    v 573 "Improper Following of Specification by Caller" Safeos_core.Level.Crash_inconsistency;
  ]

let find cwe_id = List.find_opt (fun c -> c.cwe_id = cwe_id) catalog

type prevention =
  | By_type_ownership  (** roadmap steps 2–3 *)
  | By_functional  (** roadmap step 4 *)
  | Other_cause  (** beyond the roadmap's claims *)

let prevention_to_string = function
  | By_type_ownership -> "type+ownership safety"
  | By_functional -> "functional correctness"
  | Other_cause -> "other causes"

let prevention cwe =
  match Safeos_core.Level.prevented_at cwe.bug_class with
  | Some Safeos_core.Level.Type_safe | Some Safeos_core.Level.Ownership_safe ->
      By_type_ownership
  | Some Safeos_core.Level.Verified -> By_functional
  | Some Safeos_core.Level.Unsafe | Some Safeos_core.Level.Modular | None -> Other_cause

let by_prevention p = List.filter (fun c -> prevention c = p) catalog

let pp ppf c =
  Fmt.pf ppf "CWE-%d (%s) -> %s, %s" c.cwe_id c.cwe_name
    (Safeos_core.Level.bug_class_to_string c.bug_class)
    (prevention_to_string (prevention c))
