(* Fault injection across the roadmap: the paper's central claim made
   falsifiable.

   For every executable fault class we (1) switch the corresponding latent
   bug on in the step-0 module and run a trace that triggers it, observing
   the failure an unsafe kernel would suffer; and (2) report, for each
   higher rung, whether the bug is structurally impossible there
   ([Prevented]), caught by the rung's checker ([Detected]), or still
   exhibited.  The resulting matrix is EXP-PREVENT in DESIGN.md. *)

open Kspec

type fault =
  | F_use_after_free
  | F_double_free
  | F_memory_leak
  | F_wrong_cast
  | F_missing_errptr_check
  | F_data_race
  | F_off_by_one
  | F_transient_io
  | F_module_panic

let all_faults =
  [ F_use_after_free; F_double_free; F_memory_leak; F_wrong_cast; F_missing_errptr_check;
    F_data_race; F_off_by_one; F_transient_io; F_module_panic ]

let fault_to_string = function
  | F_use_after_free -> "use-after-free"
  | F_double_free -> "double-free"
  | F_memory_leak -> "memory-leak"
  | F_wrong_cast -> "wrong-cast"
  | F_missing_errptr_check -> "missing-errptr-check"
  | F_data_race -> "data-race"
  | F_off_by_one -> "off-by-one"
  | F_transient_io -> "transient-io"
  | F_module_panic -> "module-panic"

let bug_class_of_fault = function
  | F_use_after_free -> Safeos_core.Level.Use_after_free
  | F_double_free -> Safeos_core.Level.Double_free
  | F_memory_leak -> Safeos_core.Level.Memory_leak
  | F_wrong_cast -> Safeos_core.Level.Type_confusion
  | F_missing_errptr_check -> Safeos_core.Level.Null_dereference
  | F_data_race -> Safeos_core.Level.Data_race
  | F_off_by_one -> Safeos_core.Level.Semantic
  | F_transient_io -> Safeos_core.Level.Crash_inconsistency
  | F_module_panic -> Safeos_core.Level.Semantic (* CWE-248: uncaught exception *)

type detection =
  | Prevented of string  (** structurally impossible at this rung *)
  | Detected of string  (** the rung's checker caught it *)
  | Exhibited of string  (** the bug struck, as it would in production *)
  | Not_triggered

let detection_to_string = function
  | Prevented why -> "prevented: " ^ why
  | Detected how -> "detected: " ^ how
  | Exhibited effect -> "EXHIBITED: " ^ effect
  | Not_triggered -> "not triggered"

let is_stopped = function Prevented _ | Detected _ -> true | Exhibited _ | Not_triggered -> false

(* Transient I/O faults: the robustness story rather than a memory-safety
   one.  Unprotected, the FS sits directly on the flaky device: the first
   injected EIO surfaces, the op fails, and the FS gives up (remount-ro)
   over what was only a hiccup.  Protected, a [Kblock.Resilient] layer
   sits in between: bounded retries absorb every transient fault and the
   workload completes untouched — the retry layer plays the role of the
   rung's checker, so the verdict is [Detected]. *)
let trigger_transient_io ~protected () =
  let geo = Kfs.Journalfs.default_geometry in
  let dev = Kblock.Blockdev.create ~nblocks:geo.nblocks ~block_size:geo.block_size in
  let fp = Ksim.Failpoint.create ~seed:7 () in
  let flaky = Kblock.Flakydev.create ~fp (Kblock.Blockdev.io dev) in
  let io =
    if protected then
      Kblock.Resilient.io (Kblock.Resilient.create ~max_attempts:4 (Kblock.Flakydev.io flaky))
    else Kblock.Flakydev.io flaky
  in
  let fs = Kfs.Journalfs.mkfs_on ~io Kfs.Journalfs.Journaled dev in
  (* Every third media write draws an EIO, four times in total: fully
     deterministic (probability 1), and spaced so a retry — which lands
     on a hit count that is not a multiple of three — always recovers. *)
  Ksim.Failpoint.configure fp "flaky.write-eio" ~enabled:true ~interval:3 ~times:4 ();
  let p = Fs_spec.path_of_string in
  let ops =
    [
      Fs_spec.Create (p "/a");
      Fs_spec.Write { file = p "/a"; off = 0; data = "hello" };
      Fs_spec.Create (p "/b");
      Fs_spec.Write { file = p "/b"; off = 0; data = "world" };
      Fs_spec.Fsync;
    ]
  in
  let failed = List.exists (fun op -> Result.is_error (Kfs.Journalfs.apply fs op)) ops in
  let injected = Kblock.Flakydev.injected flaky in
  if failed || Kfs.Journalfs.is_readonly fs then
    Exhibited
      (Printf.sprintf "transient EIO surfaced: op failed, FS remounted read-only (%d faults)"
         injected)
  else if injected = 0 then Not_triggered
  else Detected (Printf.sprintf "resilient retries absorbed %d transient faults" injected)

(* Module panics: a panic raised through a module entry point.  In the
   monolith every module shares the kernel's fate — the panic escapes the
   VFS dispatch and oopses the whole kernel (here: an uncaught
   exception).  Behind a modular interface the mount can carry a
   [Ksim.Supervisor] oops firewall instead: the panic is contained to an
   errno, the file system microreboots, and the workload continues on
   fresh handles — so the verdict at modular-and-above rungs is
   [Detected], the supervisor playing the rung's checker. *)
let trigger_module_panic ~supervised () =
  let fp = Ksim.Failpoint.create ~seed:13 () in
  Ksim.Failpoint.configure fp "module.panic" ~enabled:true ~times:1 ();
  let make () = Kvfs.Iface.panicky ~fp (Kvfs.Iface.make (module Kfs.Memfs_typed) ()) in
  let vfs = Kvfs.Vfs.create () in
  (match
     if supervised then Kvfs.Vfs.mount vfs ~at:[] ~remake:make (make ())
     else Kvfs.Vfs.mount vfs ~at:[] (make ())
   with
  | Ok () -> ()
  | Error e -> failwith ("trigger_module_panic: mount: " ^ Ksim.Errno.to_string e));
  let p = Fs_spec.path_of_string in
  let ops =
    [
      Fs_spec.Create (p "/a");
      Fs_spec.Create (p "/b");
      Fs_spec.Create (p "/c");
      Fs_spec.Write { file = p "/c"; off = 0; data = "survived" };
    ]
  in
  match List.map (fun op -> Kvfs.Vfs.apply vfs op) ops with
  | exception Ksim.Supervisor.Module_panic site ->
      Exhibited (Printf.sprintf "uncontained panic at %s oopsed the kernel" site)
  | results -> (
      let failures = List.length (List.filter Result.is_error results) in
      match Kvfs.Vfs.supervisor_at vfs (p "/") with
      | Some sup
        when Ksim.Supervisor.state sup = Ksim.Supervisor.Healthy
             && Ksim.Supervisor.epoch sup > 0 ->
          Detected
            (Printf.sprintf
               "supervisor contained the panic and microrebooted (epoch %d, %d ops failed \
                during quiesce)"
               (Ksim.Supervisor.epoch sup) failures)
      | _ -> Not_triggered)

(* The trigger trace: create, write, read, unlink, then read again (the
   dangling access), with enough churn to surface leaks and races. *)
let trigger_memfs_unsafe fault =
  let faults = Kfs.Memfs_unsafe.no_faults () in
  (match fault with
  | F_use_after_free -> faults.use_after_free <- true
  | F_double_free -> faults.double_free <- true
  | F_memory_leak -> faults.memory_leak <- true
  | F_wrong_cast -> faults.wrong_cast <- true
  | F_missing_errptr_check -> faults.missing_errptr_check <- true
  | F_data_race -> faults.skip_i_lock <- true
  | F_off_by_one -> faults.off_by_one <- true
  | F_transient_io | F_module_panic -> ());
  let fs = Kfs.Memfs_unsafe.mkfs_with_faults faults in
  let module L = Kfs.Memfs_unsafe.Legacy in
  let run () =
    ignore (L.create fs "/a" ~kind:Kvfs.Vtypes.Regular);
    (match L.write_begin fs "/a" ~off:0 with
    | Ksim.Dyn.Errptr.Ptr private_data -> ignore (L.write_end fs private_data ~data:"hello world")
    | Ksim.Dyn.Errptr.Err _ -> ());
    let read_back = L.read fs "/a" ~off:0 ~len:64 in
    (* The semantic bug: silent short read. *)
    (match read_back with
    | Ok data when fault = F_off_by_one && not (String.equal data "hello world") ->
        raise Exit
    | _ -> ());
    (* Error-path probe: read a file that does not exist (the errptr
       check the C code forgot). *)
    ignore (L.read fs "/missing" ~off:0 ~len:4);
    ignore (L.unlink fs "/a");
    (* The dangling access after unlink. *)
    ignore (L.read fs "/a" ~off:0 ~len:4);
    ignore (L.create fs "/b" ~kind:Kvfs.Vtypes.Regular);
    ignore (L.unlink fs "/b")
  in
  match run () with
  | () ->
      (* No exception: look for silent damage. *)
      let heap = Kfs.Memfs_unsafe.heap fs in
      if Ksim.Kmem.leaks heap <> [] then
        Exhibited
          (Printf.sprintf "%d objects leaked" (List.length (Ksim.Kmem.leaks heap)))
      else Not_triggered
  | exception Exit -> Exhibited "silent wrong read result (no crash, corrupt data)"
  | exception Ksim.Kmem.Use_after_free _ -> Exhibited "kernel oops: use-after-free read"
  | exception Ksim.Kmem.Double_free _ -> Exhibited "kernel oops: double free"
  | exception Ksim.Dyn.Type_confusion _ -> Exhibited "kernel oops: type confusion"
  | exception Ksim.Dyn.Null_dereference -> Exhibited "kernel oops: ERR_PTR dereferenced"

let trigger_unsafe = function
  | F_transient_io -> trigger_transient_io ~protected:false ()
  | F_module_panic -> trigger_module_panic ~supervised:false ()
  | fault -> trigger_memfs_unsafe fault

(* Data races need the unlocked-access counter rather than an exception:
   the i_size cell records accesses made without i_lock. *)
let trigger_race () =
  let faults = Kfs.Memfs_unsafe.no_faults () in
  faults.skip_i_lock <- true;
  let fs = Kfs.Memfs_unsafe.mkfs_with_faults faults in
  let module L = Kfs.Memfs_unsafe.Legacy in
  let before = Ksim.Ktrace.count Ksim.Ktrace.global ~category:"race" in
  ignore (L.create fs "/r" ~kind:Kvfs.Vtypes.Regular);
  (match L.write_begin fs "/r" ~off:0 with
  | Ksim.Dyn.Errptr.Ptr private_data -> ignore (L.write_end fs private_data ~data:"data")
  | Ksim.Dyn.Errptr.Err _ -> ());
  ignore (L.truncate fs "/r" 2);
  let after = Ksim.Ktrace.count Ksim.Ktrace.global ~category:"race" in
  if after > before then
    Exhibited (Printf.sprintf "%d unlocked i_size accesses" (after - before))
  else Not_triggered

(* The step-4 story for semantic bugs: a buggy implementation under the
   refinement monitor is caught on the first diverging operation. *)
module Buggy_impl : Refine.FS_IMPL = struct
  type t = Kfs.Memfs_verified.Impl.t

  let name = "memfs_buggy"
  let create = Kfs.Memfs_verified.Impl.create

  let apply t op =
    match (op, Kfs.Memfs_verified.Impl.apply t op) with
    | Fs_spec.Read _, Ok (Fs_spec.Data data) when String.length data > 0 ->
        (* The off-by-one, now inside a "verified" module. *)
        Ok (Fs_spec.Data (String.sub data 0 (String.length data - 1)))
    | _, result -> result

  let interpret = Kfs.Memfs_verified.Impl.interpret
end

module Buggy_checked = Refine.Monitor (Buggy_impl)

let trigger_verified_semantic () =
  let t = Buggy_checked.create () in
  let p = Fs_spec.path_of_string in
  let run () =
    ignore (Buggy_checked.apply t (Fs_spec.Create (p "/a")));
    ignore (Buggy_checked.apply t (Fs_spec.Write { file = p "/a"; off = 0; data = "xyz" }));
    ignore (Buggy_checked.apply t (Fs_spec.Read { file = p "/a"; off = 0; len = 3 }))
  in
  match run () with
  | () -> Not_triggered
  | exception Refine.Refinement_failure d ->
      Detected (Fmt.str "refinement monitor: %a" Refine.pp_divergence d)

(* Semantic bug below step 4: same buggy implementation, no monitor — the
   wrong result sails through. *)
let trigger_unverified_semantic () =
  let t = Buggy_impl.create () in
  let p = Fs_spec.path_of_string in
  ignore (Buggy_impl.apply t (Fs_spec.Create (p "/a")));
  ignore (Buggy_impl.apply t (Fs_spec.Write { file = p "/a"; off = 0; data = "xyz" }));
  match Buggy_impl.apply t (Fs_spec.Read { file = p "/a"; off = 0; len = 3 }) with
  | Ok (Fs_spec.Data "xyz") -> Not_triggered
  | Ok _ -> Exhibited "silent wrong read result (no crash, corrupt data)"
  | Error _ -> Exhibited "spurious error"

(* Ownership-level detection demo: a client that misbehaves against the
   checker is caught rather than corrupting memory. *)
let trigger_owned_violation () =
  let ck = Ownership.Checker.create ~strict:true () in
  let cap = Ownership.Checker.alloc ck ~holder:"client" ~size:16 in
  Ownership.Checker.free ck cap;
  match Ownership.Checker.read ck cap ~off:0 ~len:4 with
  | _ -> Not_triggered
  | exception Ownership.Checker.Violation v ->
      Detected (Fmt.str "ownership checker: %a" Ownership.Checker.pp_violation v)

let stages = Safeos_core.Level.[ Unsafe; Type_safe; Ownership_safe; Verified ]

(* The matrix cell: what happens to [fault] at [stage]. *)
let at_stage stage fault =
  let open Safeos_core.Level in
  match fault with
  | F_transient_io ->
      (* The protection here is the resilient I/O stack plus journal
         discipline — the crash-consistency machinery the roadmap reaches
         at the Verified rung.  Below it the FS sits bare on the flaky
         device and the hiccup becomes a failure. *)
      if Stdlib.( >= ) (rank stage) (rank Verified) then trigger_transient_io ~protected:true ()
      else trigger_transient_io ~protected:false ()
  | F_module_panic ->
      (* Containment needs only the modular interface: once the module is
         called through [Iface], a supervisor can firewall it.  Every
         rung from Modular up therefore detects; the monolith oopses. *)
      if Stdlib.( >= ) (rank stage) (rank Modular) then trigger_module_panic ~supervised:true ()
      else trigger_module_panic ~supervised:false ()
  | _ -> (
  let bug = bug_class_of_fault fault in
  match prevented_at bug with
  | Some required when Stdlib.( >= ) (rank stage) (rank required) -> (
      (* At or above the preventing rung.  Memory bugs at the ownership
         rung are *detected* dynamically in our simulator (static
         impossibility is what Rust would give); type bugs at the type
         rung are simply inexpressible. *)
      match (stage, bug) with
      | Ownership_safe, (Use_after_free | Double_free | Buffer_overflow | Memory_leak) ->
          trigger_owned_violation ()
          |> fun d -> (match d with Not_triggered -> Prevented "checked capabilities" | d -> d)
      | Verified, (Semantic | Crash_inconsistency) -> trigger_verified_semantic ()
      | _, (Type_confusion | Null_dereference) ->
          Prevented "no void pointers or error-pointer casts to misuse"
      | _, Data_race -> Prevented "ownership forbids unsynchronized shared mutation"
      | _, _ -> Prevented "structurally impossible at this rung")
  | _ -> (
      (* Below the preventing rung: the bug strikes. *)
      match fault with
      | F_data_race -> if stage = Unsafe then trigger_race () else Exhibited "unlocked shared access"
      | F_off_by_one ->
          if stage = Unsafe then trigger_unsafe fault else trigger_unverified_semantic ()
      | _ ->
          if stage = Unsafe then trigger_unsafe fault
          else Exhibited "latent (unsafe idiom still expressible)"))

let matrix () =
  List.map (fun fault -> (fault, List.map (fun s -> (s, at_stage s fault)) stages)) all_faults

let render_matrix ppf m =
  Fmt.pf ppf "%-22s" "fault \\ stage";
  List.iter (fun s -> Fmt.pf ppf " %-14s" (Safeos_core.Level.to_string s)) stages;
  Fmt.pf ppf "@.%s@." (String.make 84 '-');
  List.iter
    (fun (fault, cells) ->
      Fmt.pf ppf "%-22s" (fault_to_string fault);
      List.iter
        (fun (_, d) ->
          let mark =
            match d with
            | Exhibited _ -> "BUG"
            | Detected _ -> "caught"
            | Prevented _ -> "prevented"
            | Not_triggered -> "-"
          in
          Fmt.pf ppf " %-14s" mark)
        cells;
      Fmt.pf ppf "@.")
    m
