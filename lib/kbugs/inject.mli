(** Fault injection across the roadmap (EXP-PREVENT): for every
    executable fault class, switch the latent bug on in the step-0 module
    and observe the failure; then show, rung by rung, whether the class
    becomes structurally impossible, checker-detected, or remains
    exhibited. *)

type fault =
  | F_use_after_free
  | F_double_free
  | F_memory_leak
  | F_wrong_cast
  | F_missing_errptr_check
  | F_data_race
  | F_off_by_one
  | F_transient_io
      (** A flaky block device under the file system: transient [EIO]s
          that a resilient I/O stack absorbs and a bare one turns into a
          spurious failure (see {!Kblock.Flakydev} / {!Kblock.Resilient}). *)
  | F_module_panic
      (** A panic raised through a module entry point (CWE-248).
          Uncontained it oopses the whole kernel; behind a modular
          interface a {!Ksim.Supervisor} firewall converts it to an
          errno and microreboots the module. *)

val all_faults : fault list
val fault_to_string : fault -> string
val bug_class_of_fault : fault -> Safeos_core.Level.bug_class

type detection =
  | Prevented of string  (** structurally impossible at this rung *)
  | Detected of string  (** the rung's checker caught it *)
  | Exhibited of string  (** the bug struck, as in production *)
  | Not_triggered

val detection_to_string : detection -> string
val is_stopped : detection -> bool
(** [Prevented] or [Detected]. *)

val trigger_unsafe : fault -> detection
(** Inject into {!Kfs.Memfs_unsafe} and run the trigger trace
    ([F_transient_io] instead runs the unprotected flaky-device trace). *)

val trigger_transient_io : protected:bool -> unit -> detection
(** Run a workload on {!Kfs.Journalfs} over a {!Kblock.Flakydev} with a
    deterministic schedule of transient write EIOs.  With
    [protected:true] a {!Kblock.Resilient} layer sits in between and the
    faults are absorbed ([Detected]); without it the first EIO fails the
    op and remounts the FS read-only ([Exhibited]). *)

val trigger_module_panic : supervised:bool -> unit -> detection
(** Fire failpoint site ["module.panic"] through a {!Kvfs.Iface.panicky}
    file system under the VFS.  Unsupervised the panic escapes the
    dispatch and oopses the kernel ([Exhibited]); on a supervised mount
    it is contained, the fs microreboots, and the workload completes
    ([Detected]). *)

val trigger_race : unit -> detection
val trigger_verified_semantic : unit -> detection
val trigger_unverified_semantic : unit -> detection
val trigger_owned_violation : unit -> detection

val stages : Safeos_core.Level.t list
(** Unsafe, Type_safe, Ownership_safe, Verified. *)

val at_stage : Safeos_core.Level.t -> fault -> detection
val matrix : unit -> (fault * (Safeos_core.Level.t * detection) list) list
val render_matrix :
  Format.formatter -> (fault * (Safeos_core.Level.t * detection) list) list -> unit
