(* The generic socket layer, in the two shapes the paper contrasts.

   Linux "supports multiple protocol families and multiple protocols
   within those families", yet "references to TCP state can be found
   throughout generic socket code".  [Typed] is the modular shape: a
   protocol is a first-class module behind the PROTO interface, and the
   generic layer cannot see its state.  [Dyn_style] is the C shape: the
   per-socket state is a void pointer every operation must project back —
   nowadays through the checked [Frame.Priv] slots (a mismatch is an
   [EPROTO], not an oops), the representation the type-safety bench
   prices against [Typed]. *)

module type PROTO = sig
  type conn

  val proto_name : string
  val create : unit -> conn

  val connect_pair : conn -> conn -> unit Ksim.Errno.r
  (** Drive both endpoints to an established state over a loopback link. *)

  val send : conn -> string -> int Ksim.Errno.r
  val deliver : src:conn -> dst:conn -> unit
  (** Move pending traffic from [src] to [dst] (and replies back). *)

  val received : conn -> string
  val is_connected : conn -> bool
end

module Tcp_proto : PROTO with type conn = Tcp.t = struct
  type conn = Tcp.t

  let proto_name = "tcp"
  let create () = Tcp.create ()

  let connect_pair a b =
    let ( let* ) = Ksim.Errno.( let* ) in
    let* () = Tcp.listen b in
    let* () = Tcp.connect a in
    let (_ : int) = Tcp.run_link a b in
    if Tcp.state a = Tcp.Established && Tcp.state b = Tcp.Established then Ok ()
    else Error Ksim.Errno.EPIPE

  let send = Tcp.send
  let deliver ~src ~dst = ignore (Tcp.run_link src dst)
  let received = Tcp.received
  let is_connected conn = Tcp.state conn = Tcp.Established
end

(* A connectionless datagram protocol: the second family member, proving
   the generic layer really is generic. *)
module Dgram_proto : PROTO with type conn = string Queue.t = struct
  type conn = string Queue.t

  let proto_name = "dgram"
  let create () = Queue.create ()
  let connect_pair _ _ = Ok ()

  let send conn data =
    Queue.push data conn;
    Ok (String.length data)

  let deliver ~src ~dst = Queue.transfer src dst
  let received conn = String.concat "" (List.of_seq (Queue.to_seq conn))
  let is_connected _ = true
end

(* The modular layer ------------------------------------------------------- *)

module Typed = struct
  (* A connected pair keeps both endpoints under the same existential, so
     the generic layer can move traffic between them without ever learning
     the protocol's state type. *)
  type pair = Pair : (module PROTO with type conn = 'c) * 'c * 'c -> pair

  type registry = (string, (module PROTO)) Hashtbl.t

  let registry : registry = Hashtbl.create 8

  let register (module P : PROTO) = Hashtbl.replace registry P.proto_name (module P : PROTO)

  let () =
    register (module Tcp_proto);
    register (module Dgram_proto)

  let protocols () =
    Hashtbl.fold (fun name _ acc -> name :: acc) registry [] |> List.sort String.compare

  let socket_pair proto_name =
    match Hashtbl.find_opt registry proto_name with
    | Some (module P : PROTO) -> Ok (Pair ((module P), P.create (), P.create ()))
    | None -> Error Ksim.Errno.EINVAL

  let connect (Pair ((module P), a, b)) = P.connect_pair a b
  let send (Pair ((module P), a, _)) data = P.send a data
  let deliver (Pair ((module P), a, b)) = P.deliver ~src:a ~dst:b
  let received_at_peer (Pair ((module P), _, b)) = P.received b
  let is_connected (Pair ((module P), a, b)) = P.is_connected a && P.is_connected b
end

(* The C-style layer: private data behind a void pointer ------------------- *)

module Dyn_style = struct
  type ops = {
    o_send : Ksim.Frame.Priv.t -> string -> int Ksim.Errno.r;
    o_received : Ksim.Frame.Priv.t -> string;
    o_is_connected : Ksim.Frame.Priv.t -> bool;
  }

  type socket = {
    proto_name : string;
    ops : ops;
    private_data : Ksim.Frame.Priv.t;
  }

  let tcp_slot : Tcp.t Ksim.Frame.Priv.slot = Ksim.Frame.Priv.slot ~name:"sock.tcp_conn"

  let dgram_slot : string Queue.t Ksim.Frame.Priv.slot =
    Ksim.Frame.Priv.slot ~name:"sock.dgram_conn"

  (* Every operation unwraps the void pointer back through the checked
     [Frame.Priv] slot (this subsystem is fully migrated off [cast_exn]
     and, since the framekernel refactor, off direct [Dyn] too): a socket
     whose ops and private data disagree fails with [EPROTO] — the
     driver-returned-garbage errno — or reads as empty/disconnected,
     instead of oopsing the way the step-0 cast did. *)
  let tcp_ops =
    {
      o_send =
        (fun d data ->
          match Ksim.Frame.Priv.unwrap tcp_slot d with
          | Some conn -> Tcp.send conn data
          | None -> Error Ksim.Errno.EPROTO);
      o_received =
        (fun d ->
          match Ksim.Frame.Priv.unwrap tcp_slot d with
          | Some conn -> Tcp.received conn
          | None -> "");
      o_is_connected =
        (fun d ->
          match Ksim.Frame.Priv.unwrap tcp_slot d with
          | Some conn -> Tcp.state conn = Tcp.Established
          | None -> false);
    }

  let dgram_ops =
    {
      o_send =
        (fun d data ->
          match Ksim.Frame.Priv.unwrap dgram_slot d with
          | Some q ->
              Queue.push data q;
              Ok (String.length data)
          | None -> Error Ksim.Errno.EPROTO);
      o_received =
        (fun d ->
          match Ksim.Frame.Priv.unwrap dgram_slot d with
          | Some q -> String.concat "" (List.of_seq (Queue.to_seq q))
          | None -> "");
      o_is_connected = (fun _ -> true);
    }

  let socket proto_name =
    match proto_name with
    | "tcp" ->
        Ok
          {
            proto_name;
            ops = tcp_ops;
            private_data = Ksim.Frame.Priv.wrap tcp_slot (Tcp.create ());
          }
    | "dgram" ->
        Ok
          {
            proto_name;
            ops = dgram_ops;
            private_data = Ksim.Frame.Priv.wrap dgram_slot (Queue.create ());
          }
    | _ -> Error Ksim.Errno.EINVAL

  (* The bug generator: build a socket whose ops and private data
     disagree, as happens when generic code copies fields around. *)
  let mismatched_socket () =
    {
      proto_name = "tcp";
      ops = tcp_ops;
      private_data = Ksim.Frame.Priv.wrap dgram_slot (Queue.create ());
    }

  let send sock data = sock.ops.o_send sock.private_data data
  let received sock = sock.ops.o_received sock.private_data
  let is_connected sock = sock.ops.o_is_connected sock.private_data

  let connect_tcp_pair a b =
    match
      ( Ksim.Frame.Priv.unwrap tcp_slot a.private_data,
        Ksim.Frame.Priv.unwrap tcp_slot b.private_data )
    with
    | Some ca, Some cb -> Tcp_proto.connect_pair ca cb
    | _ -> Error Ksim.Errno.EINVAL

  let deliver_tcp ~src ~dst =
    match
      ( Ksim.Frame.Priv.unwrap tcp_slot src.private_data,
        Ksim.Frame.Priv.unwrap tcp_slot dst.private_data )
    with
    | Some ca, Some cb -> Tcp_proto.deliver ~src:ca ~dst:cb
    | _ -> ()
end

(* The supervised layer: the modular shape behind an oops firewall ---------- *)

module Supervised = struct
  (* Socket handles are generation-stamped the same way fds are: a handle
     minted before a microreboot answers [ESTALE] afterwards, because the
     protocol state it points into belongs to the dead generation.  The
     layer itself holds no cross-handle state, so its restart function
     just opens a new generation — exactly the shadow-driver observation
     that a network driver can be restarted behind live applications,
     which then learn about it through their stale handles. *)

  let panic_site = "sock.module-panic"

  type handle = {
    pair : Typed.pair;
    minted : int;
  }

  type t = {
    sup : Ksim.Supervisor.t;
    fp : Ksim.Failpoint.t option;
  }

  let create ?policy ?trace ?stats ?fp ~name () =
    let sup = Ksim.Supervisor.create ?policy ?trace ?stats ~name () in
    Ksim.Supervisor.set_restart sup (fun () -> Ok ());
    { sup; fp }

  let supervisor t = t.sup
  let epoch t = Ksim.Supervisor.epoch t.sup

  let maybe_panic t =
    match t.fp with
    | Some fp when Ksim.Failpoint.should_fail fp panic_site ->
        raise (Ksim.Supervisor.Module_panic panic_site)
    | _ -> ()

  let socket_pair t proto =
    Ksim.Supervisor.call ~label:("socket_pair " ^ proto) t.sup (fun () ->
        maybe_panic t;
        match Typed.socket_pair proto with
        | Ok pair -> Ok { pair; minted = Ksim.Supervisor.epoch t.sup }
        | Error e -> Error e)

  (* The epoch check runs inside the containment thunk: the supervisor
     may microreboot at the top of [call], and a handle minted before
     the oops must not reach the new generation — not even on the call
     that triggers the reboot. *)
  let guarded t h ~label f =
    Ksim.Supervisor.call ~label t.sup (fun () ->
        let ( let* ) = Ksim.Errno.( let* ) in
        let* () = Ksim.Supervisor.validate t.sup h.minted in
        maybe_panic t;
        f h.pair)

  let connect t h = guarded t h ~label:"connect" Typed.connect
  let send t h data = guarded t h ~label:"send" (fun pair -> Typed.send pair data)

  let deliver t h =
    guarded t h ~label:"deliver" (fun pair ->
        Typed.deliver pair;
        Ok ())

  let received_at_peer t h =
    guarded t h ~label:"received" (fun pair -> Ok (Typed.received_at_peer pair))

  (* One request/response round trip as a single supervised operation:
     the shape a load-generating tenant drives in a tight loop.  Running
     send+deliver+readback inside one containment thunk means an oops
     anywhere in the exchange is one EIO (and one epoch check), not
     three. *)
  let rpc t h data =
    guarded t h ~label:"rpc" (fun pair ->
        let ( let* ) = Ksim.Errno.( let* ) in
        let* _sent = Typed.send pair data in
        Typed.deliver pair;
        Ok (Typed.received_at_peer pair))

  let is_connected t h =
    guarded t h ~label:"is_connected" (fun pair -> Ok (Typed.is_connected pair))
end
