(** The generic socket layer in the two shapes the paper contrasts
    (§4.1/§4.2): {!Typed} — protocols as first-class modules behind
    {!PROTO}, their state invisible to the generic layer — and
    {!Dyn_style} — per-socket state as a void pointer that every
    operation casts back (the representation priced by bench
    [typesafety/*]). *)

module type PROTO = sig
  type conn

  val proto_name : string
  val create : unit -> conn

  val connect_pair : conn -> conn -> unit Ksim.Errno.r
  (** Drive both endpoints to an established state over a loopback link. *)

  val send : conn -> string -> int Ksim.Errno.r

  val deliver : src:conn -> dst:conn -> unit
  (** Move pending traffic between the endpoints until quiescent. *)

  val received : conn -> string
  val is_connected : conn -> bool
end

module Tcp_proto : PROTO with type conn = Tcp.t
module Dgram_proto : PROTO with type conn = string Queue.t

(** Modular socket layer: a protocol registry and existential pairs. *)
module Typed : sig
  type pair

  val register : (module PROTO) -> unit
  val protocols : unit -> string list

  val socket_pair : string -> pair Ksim.Errno.r
  (** A fresh endpoint pair for the named protocol ([EINVAL] unknown). *)

  val connect : pair -> unit Ksim.Errno.r
  val send : pair -> string -> int Ksim.Errno.r
  val deliver : pair -> unit
  val received_at_peer : pair -> string
  val is_connected : pair -> bool
end

(** C-style socket layer: void-pointer private data, cast on every op. *)
module Dyn_style : sig
  type socket

  val socket : string -> socket Ksim.Errno.r
  (** ["tcp"] or ["dgram"]. *)

  val mismatched_socket : unit -> socket
  (** The bug generator: TCP ops over dgram private data.  Any operation
      on it answers [EPROTO]-shaped failures (empty reads,
      disconnected status) instead of oopsing. *)

  val send : socket -> string -> int Ksim.Errno.r
  val received : socket -> string
  val is_connected : socket -> bool
  val connect_tcp_pair : socket -> socket -> unit Ksim.Errno.r
  val deliver_tcp : src:socket -> dst:socket -> unit
end

(** The modular layer behind a {!Ksim.Supervisor} oops firewall, with
    generation-stamped socket handles.

    A handle records the epoch current when it was minted; after the
    layer microreboots, operations on the old handle answer [ESTALE]
    (the protocol state it points into belongs to the dead generation)
    and a fresh {!Supervised.socket_pair} reaches the new one.  When
    [fp] is given, every operation consults the failpoint site
    ["sock.module-panic"]; a firing raises {!Ksim.Supervisor.Module_panic}
    through the layer, which the firewall contains to an errno. *)
module Supervised : sig
  type t
  type handle

  val panic_site : string

  val create :
    ?policy:Ksim.Supervisor.policy ->
    ?trace:Ksim.Ktrace.t ->
    ?stats:Ksim.Kstats.t ->
    ?fp:Ksim.Failpoint.t ->
    name:string ->
    unit ->
    t

  val supervisor : t -> Ksim.Supervisor.t
  val epoch : t -> int

  val socket_pair : t -> string -> handle Ksim.Errno.r
  (** A fresh endpoint pair stamped with the current epoch. *)

  val connect : t -> handle -> unit Ksim.Errno.r
  val send : t -> handle -> string -> int Ksim.Errno.r
  val deliver : t -> handle -> unit Ksim.Errno.r
  val received_at_peer : t -> handle -> string Ksim.Errno.r

  val rpc : t -> handle -> string -> string Ksim.Errno.r
  (** One request/response round trip (send, deliver, read back the
      peer's accumulated bytes) as a single supervised operation — the
      request/response primitive the load harness drives.  [ESTALE] on a
      dead-generation handle, [EIO]/[EINTR] under containment like every
      other operation. *)

  val is_connected : t -> handle -> bool Ksim.Errno.r
end
