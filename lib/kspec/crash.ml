(* Crash-safety exploration.

   A crash-safe file system must recover, after a crash at any point, to
   a state the crash-safe spec allows.  This is now a compatibility
   layer over [Krefine]: the enumerator crashes the machine after every
   operation and checks each post-crash image against the incremental
   crash-safe frontier (the linear-time form of
   [Fs_spec.Crash_safe.allowed_recoveries]). *)

module type CRASHABLE_FS = sig
  type t

  val name : string
  val create : unit -> t
  val apply : t -> Fs_spec.op -> Fs_spec.result

  val crash_images : t -> limit:int -> t list
  (** Recovered instances reachable if the machine crashed right now: one
      per distinct surviving-write subset the device admits (up to
      [limit]), each already passed through recovery. *)

  val interpret : t -> Fs_spec.state
end

type verdict = {
  ops_executed : int;
  crash_points : int;
  images_checked : int;
  failures : failure list;
}

and failure = {
  after_op : int;
  image_index : int;
  recovered : Fs_spec.state;
  allowed : Fs_spec.state list;
}

let pp_failure ppf f =
  Fmt.pf ppf
    "crash after op %d, image %d: recovered to a state not allowed by the crash-safe spec \
     (%d allowed states)"
    f.after_op f.image_index (List.length f.allowed)

let is_safe verdict = verdict.failures = []

let check (type a) (module F : CRASHABLE_FS with type t = a) ?(images_per_point = 16) ops =
  let module M = struct
    type vars = F.t

    let name = F.name
    let init = F.create
    let step v op = (v, F.apply v op)
    let interp = F.interpret
    let inv _ = true
    let crash_images = F.crash_images
  end in
  let config =
    {
      Krefine.default_config with
      Krefine.images_per_op = images_per_point;
      crash_every = 1;
      frontier_limit = max_int;
      lockstep = false;
      shrink = false;
      max_divergences = max_int;
    }
  in
  let cov = Krefine.run ~config (module M) ops in
  let failures =
    List.filter_map
      (fun (d : Krefine.divergence) ->
        match d.Krefine.mismatch with
        | Krefine.Crash_divergence { image_index; recovered; frontier } ->
            Some
              {
                after_op = d.Krefine.step_index;
                image_index;
                recovered;
                allowed = frontier;
              }
        | _ -> None)
      cov.Krefine.divergences
  in
  {
    ops_executed = cov.Krefine.ops;
    crash_points = cov.Krefine.crash_points;
    images_checked = cov.Krefine.crash_images;
    failures;
  }
