(* State-machine refinement checking at scale (verified-betrfs mold).

   The spec side is always [Fs_spec]; a low machine supplies its own
   state, an interpretation function and an inductive invariant, and the
   enumerator discharges the proof obligations executably at every step
   of a trace:

     init  ⊢ Inv            and   interp (init ()) = empty
     Inv ∧ step ⊢ Inv'      and   the commuting square refines
     crash ⊢ recovery lands inside the crash-safe frontier

   The crash frontier is the incremental form of
   [Fs_spec.Crash_safe.allowed_recoveries]: the volatile states reached
   since the last [Fsync] (the fsync-point state included), reset to the
   freshly-synced state at each [Fsync].  Keeping it incrementally makes
   crash checking over 10k-op traces linear instead of quadratic; when
   the bounded frontier overflows we *skip and count* rather than guess,
   so an alarm is always a real divergence. *)

module type MACHINE = sig
  type vars

  val name : string
  val init : unit -> vars
  val step : vars -> Fs_spec.op -> vars * Fs_spec.result
  val interp : vars -> Fs_spec.state
  val inv : vars -> bool
  val crash_images : vars -> limit:int -> vars list
end

module Spec_machine = struct
  type vars = Fs_spec.state

  let name = "fs_spec"
  let init () = Fs_spec.empty
  let step st op = Fs_spec.step st op
  let interp st = st
  let inv st = Fs_spec.wf st
  let crash_images _ ~limit:_ = []
end

module type DISK_PROGRAM = sig
  type program
  type disk

  val name : string
  val init : unit -> program * disk
  val step : program -> disk -> Fs_spec.op -> Fs_spec.result
  val interp : program -> disk -> Fs_spec.state
  val inv : program -> disk -> bool
  val crash_disks : disk -> limit:int -> disk list
  val recover : disk -> program * disk
end

module Io_system (M : DISK_PROGRAM) = struct
  type vars = M.program * M.disk

  let name = M.name
  let init () = M.init ()

  let step (p, d) op =
    let r = M.step p d op in
    ((p, d), r)

  let interp (p, d) = M.interp p d
  let inv (p, d) = M.inv p d

  let crash_images (_, d) ~limit =
    M.crash_disks d ~limit |> List.map M.recover
end

type mismatch =
  | Result_mismatch of { expected : Fs_spec.result; got : Fs_spec.result }
  | State_mismatch of { expected : Fs_spec.state; got : Fs_spec.state }
  | Invariant_violation
  | Crash_divergence of {
      image_index : int;
      recovered : Fs_spec.state;
      frontier : Fs_spec.state list;
    }

type divergence = {
  step_index : int;
  op : Fs_spec.op;
  mismatch : mismatch;
  counterexample : Fs_spec.op list;
}

let pp_mismatch ppf = function
  | Result_mismatch { expected; got } ->
      Fmt.pf ppf "result mismatch: spec %a, impl %a" Fs_spec.pp_result expected
        Fs_spec.pp_result got
  | State_mismatch _ -> Fmt.pf ppf "interpreted state diverges from spec state"
  | Invariant_violation -> Fmt.pf ppf "inductive invariant violated"
  | Crash_divergence { image_index; recovered = _; frontier } ->
      Fmt.pf ppf "crash image %d recovers outside the crash-safe frontier (%d allowed states)"
        image_index (List.length frontier)

let pp_divergence ppf d =
  Fmt.pf ppf "step %d (%a): %a [counterexample: %d ops]" d.step_index Fs_spec.pp_op d.op
    pp_mismatch d.mismatch
    (List.length d.counterexample)

let check_step ~step_index ~spec_state op ~impl_result ~impl_state =
  let spec_state', spec_result = Fs_spec.step spec_state op in
  if not (Fs_spec.equal_result spec_result impl_result) then
    Error
      {
        step_index;
        op;
        mismatch = Result_mismatch { expected = spec_result; got = impl_result };
        counterexample = [];
      }
  else if not (Fs_spec.equal spec_state' impl_state) then
    Error
      {
        step_index;
        op;
        mismatch = State_mismatch { expected = spec_state'; got = impl_state };
        counterexample = [];
      }
  else Ok spec_state'

type config = {
  seed : int;
  images_per_op : int;
  crash_every : int;
  frontier_limit : int;
  lockstep : bool;
  shrink : bool;
  max_divergences : int;
}

let default_config =
  {
    seed = 0;
    images_per_op = 8;
    crash_every = 1;
    frontier_limit = 64;
    lockstep = true;
    shrink = true;
    max_divergences = 16;
  }

type coverage = {
  harness : string;
  ops : int;
  states_explored : int;
  crash_points : int;
  crash_images : int;
  skipped_images : int;
  frontier_peak : int;
  interleavings : int;
  deepest_divergence : int;
  divergences : divergence list;
}

let is_clean cov = cov.divergences = []

let pp_coverage ppf c =
  Fmt.pf ppf
    "%s: %d ops, %d states, %d crash points, %d images (%d skipped), frontier peak %d, %d \
     interleavings, %d divergences%s"
    c.harness c.ops c.states_explored c.crash_points c.crash_images c.skipped_images
    c.frontier_peak c.interleavings (List.length c.divergences)
    (if c.deepest_divergence >= 0 then Fmt.str ", deepest at step %d" c.deepest_divergence
     else "")

let coverage_fingerprint c =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Fmt.str "%s|%d|%d|%d|%d|%d|%d|%d|%d" c.harness c.ops c.states_explored c.crash_points
       c.crash_images c.skipped_images c.frontier_peak c.interleavings c.deepest_divergence);
  List.iter
    (fun d ->
      Buffer.add_string buf (Fmt.str "|%a" pp_divergence d);
      (match d.mismatch with
      | State_mismatch { expected; got } ->
          Buffer.add_string buf (Fmt.str "%a/%a" Fs_spec.pp expected Fs_spec.pp got)
      | Crash_divergence { recovered; _ } -> Buffer.add_string buf (Fmt.str "%a" Fs_spec.pp recovered)
      | Result_mismatch _ | Invariant_violation -> ());
      List.iter (fun op -> Buffer.add_string buf (Fmt.str ";%a" Fs_spec.pp_op op)) d.counterexample)
    c.divergences;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* The enumerator core.  [frontier] carries the crash-safe spec's
   allowed recovery states incrementally; see the header comment. *)
let run_raw (type a) ~config (module M : MACHINE with type vars = a) ops =
  let divergences = ref [] in
  let n_div = ref 0 in
  let record d =
    divergences := d :: !divergences;
    incr n_div
  in
  let states = ref 1 in
  let crash_points = ref 0 in
  let images_checked = ref 0 in
  let skipped = ref 0 in
  let frontier_peak = ref 1 in
  let executed = ref 0 in
  let v = ref (M.init ()) in
  let spec = ref Fs_spec.empty in
  let frontier = ref [ Fs_spec.empty ] in
  let overflowed = ref false in
  let stop = ref false in
  (* init ⊢ Inv, and the interpretation of init must be the empty map. *)
  if not (M.inv !v && Fs_spec.equal (M.interp !v) Fs_spec.empty) then begin
    (match ops with
    | [] -> ()
    | op :: _ ->
        record { step_index = -1; op; mismatch = Invariant_violation; counterexample = [] });
    stop := true
  end;
  let arr = Array.of_list ops in
  let i = ref 0 in
  while (not !stop) && !i < Array.length arr do
    let op = arr.(!i) in
    let spec', expected = Fs_spec.step !spec op in
    let v', got = M.step !v op in
    incr states;
    incr executed;
    (if config.lockstep then
       if not (Fs_spec.equal_result expected got) then begin
         record
           {
             step_index = !i;
             op;
             mismatch = Result_mismatch { expected; got };
             counterexample = [];
           };
         stop := true
       end
       else if not (M.inv v') then begin
         record { step_index = !i; op; mismatch = Invariant_violation; counterexample = [] };
         stop := true
       end
       else
         let istate = M.interp v' in
         if not (Fs_spec.equal spec' istate) then begin
           record
             {
               step_index = !i;
               op;
               mismatch = State_mismatch { expected = spec'; got = istate };
               counterexample = [];
             };
           stop := true
         end);
    if not !stop then begin
      (* Advance the crash-safe frontier: reset at Fsync, else admit the
         new volatile state (deduplicated). *)
      (match op with
      | Fs_spec.Fsync ->
          frontier := [ spec' ];
          overflowed := false
      | _ ->
          if not (List.exists (Fs_spec.equal spec') !frontier) then begin
            frontier := !frontier @ [ spec' ];
            let len = List.length !frontier in
            if len > !frontier_peak then frontier_peak := len;
            if len > config.frontier_limit then overflowed := true
          end);
      (* Crash enumeration at this op. *)
      if config.crash_every > 0 && (!i + 1) mod config.crash_every = 0 then begin
        incr crash_points;
        let images = M.crash_images v' ~limit:config.images_per_op in
        if !overflowed then skipped := !skipped + List.length images
        else
          List.iteri
            (fun image_index image ->
              if !n_div < config.max_divergences then begin
                incr images_checked;
                incr states;
                let recovered = M.interp image in
                if not (M.inv image) then
                  record
                    { step_index = !i; op; mismatch = Invariant_violation; counterexample = [] }
                else if not (List.exists (Fs_spec.equal recovered) !frontier) then
                  record
                    {
                      step_index = !i;
                      op;
                      mismatch = Crash_divergence { image_index; recovered; frontier = !frontier };
                      counterexample = [];
                    }
              end)
            images
      end;
      spec := spec';
      v := v';
      incr i
    end
  done;
  let divergences = List.rev !divergences in
  let deepest =
    List.fold_left (fun acc d -> max acc d.step_index) (-1) divergences
  in
  {
    harness = M.name;
    ops = !executed;
    states_explored = !states;
    crash_points = !crash_points;
    crash_images = !images_checked;
    skipped_images = !skipped;
    frontier_peak = !frontier_peak;
    interleavings = 1;
    deepest_divergence = deepest;
    divergences;
  }

let same_kind a b =
  match (a, b) with
  | Result_mismatch _, Result_mismatch _
  | State_mismatch _, State_mismatch _
  | Invariant_violation, Invariant_violation
  | Crash_divergence _, Crash_divergence _ -> true
  | _ -> false

let take n xs = List.filteri (fun i _ -> i < n) xs

(* Greedy ddmin: drop chunk-aligned slices while a divergence of the
   same kind survives, halving the chunk until single ops. *)
let shrink (type a) ~config (module M : MACHINE with type vars = a) ops d =
  let probe = { config with shrink = false; max_divergences = 1 } in
  let fails trace =
    let cov = run_raw ~config:probe (module M) trace in
    List.exists (fun d' -> same_kind d'.mismatch d.mismatch) cov.divergences
  in
  let prefix = take (d.step_index + 1) ops in
  let remove_slice start len xs =
    List.filteri (fun i _ -> i < start || i >= start + len) xs
  in
  let rec sweep chunk trace start =
    if start >= List.length trace then trace
    else
      let cand = remove_slice start chunk trace in
      if List.length cand < List.length trace && fails cand then sweep chunk cand start
      else sweep chunk trace (start + chunk)
  in
  let rec passes chunk trace =
    if chunk < 1 then trace else passes (chunk / 2) (sweep chunk trace 0)
  in
  let n = List.length prefix in
  if n = 0 || not (fails prefix) then prefix else passes (max 1 (n / 2)) prefix

let run (type a) ?(config = default_config) (module M : MACHINE with type vars = a) ops =
  let cov = run_raw ~config (module M) ops in
  match cov.divergences with
  | [] -> cov
  | first :: rest when config.shrink ->
      let minimal = shrink ~config (module M) ops first in
      let stamp d = { d with counterexample = take (d.step_index + 1) ops } in
      {
        cov with
        divergences = { first with counterexample = minimal } :: List.map stamp rest;
      }
  | _ :: _ ->
      let stamp d = { d with counterexample = take (d.step_index + 1) ops } in
      { cov with divergences = List.map stamp cov.divergences }

(* Seeded fair merge of per-thread op streams (program order preserved
   within each stream). *)
let merge ~seed streams =
  let rng = Ksim.Rng.of_int (0x5eed + seed) in
  let arr = Array.of_list (List.map Array.of_list streams) in
  let idx = Array.map (fun _ -> 0) arr in
  let out = ref [] in
  let live () =
    let acc = ref [] in
    Array.iteri (fun k a -> if idx.(k) < Array.length a then acc := k :: !acc) arr;
    List.rev !acc
  in
  let rec go () =
    match live () with
    | [] -> ()
    | ks ->
        let k = List.nth ks (Ksim.Rng.int rng (List.length ks)) in
        out := arr.(k).(idx.(k)) :: !out;
        idx.(k) <- idx.(k) + 1;
        go ()
  in
  go ();
  List.rev !out

let explore (type a) ?(config = default_config) ~interleavings
    (module M : MACHINE with type vars = a) streams =
  let n = max 1 interleavings in
  let covs =
    List.init n (fun k ->
        let trace = merge ~seed:(config.seed + k) streams in
        run ~config:{ config with seed = config.seed + k } (module M) trace)
  in
  List.fold_left
    (fun acc c ->
      {
        harness = acc.harness;
        ops = acc.ops + c.ops;
        states_explored = acc.states_explored + c.states_explored;
        crash_points = acc.crash_points + c.crash_points;
        crash_images = acc.crash_images + c.crash_images;
        skipped_images = acc.skipped_images + c.skipped_images;
        frontier_peak = max acc.frontier_peak c.frontier_peak;
        interleavings = acc.interleavings + 1;
        deepest_divergence = max acc.deepest_divergence c.deepest_divergence;
        divergences = acc.divergences @ c.divergences;
      })
    {
      harness = M.name;
      ops = 0;
      states_explored = 0;
      crash_points = 0;
      crash_images = 0;
      skipped_images = 0;
      frontier_peak = 0;
      interleavings = 0;
      deepest_divergence = -1;
      divergences = [];
    }
    covs

(* Pure queries over the abstract state (ex-Conc helpers). *)
let count_files st =
  Fs_spec.Pathmap.fold
    (fun _ node acc -> match node with Fs_spec.File _ -> acc + 1 | Fs_spec.Dir -> acc)
    st 0

let count_dirs st =
  Fs_spec.Pathmap.fold
    (fun _ node acc -> match node with Fs_spec.Dir -> acc + 1 | Fs_spec.File _ -> acc)
    st 0

let total_bytes st =
  Fs_spec.Pathmap.fold
    (fun _ node acc ->
      match node with Fs_spec.File c -> acc + String.length c | Fs_spec.Dir -> acc)
    st 0

let max_depth st =
  Fs_spec.Pathmap.fold (fun path _ acc -> max acc (List.length path)) st 0
