(** State-machine refinement checking at scale, in the verified-betrfs
    mold (ROADMAP item 4).

    The spec is a {e UIStateMachine} over the abstract map {!Fs_spec}
    ({!Spec_machine}); an implementation is a low machine ({!MACHINE})
    carrying an interpretation function [interp : vars -> Fs_spec.state]
    and an inductive invariant [inv].  {!run} checks, at every step of a
    trace, the verified-betrfs proof obligations executably:

    - [init ⊢ Inv] and [interp (init ()) = Fs_spec.empty];
    - [Inv ∧ step ⊢ Inv'] and the commuting square
      [interp (step v op) = Fs_spec.step (interp v) op] with equal
      results;
    - at every crash point, each post-crash image recovers to a state
      the crash-safe spec allows ({!Fs_spec.Crash_safe}), tracked by an
      incremental frontier instead of the quadratic
      [allowed_recoveries] recomputation.

    {!Io_system} composes a program with its disk into one machine whose
    crash step is [crash_disks] followed by [recover] — the betrfs
    IOSystem, kept abstract so this library never depends on [kblock].

    Everything is deterministic in the config seed: replaying the same
    seed yields a byte-identical {!coverage_fingerprint}. *)

(** {1 State machines} *)

(** A low machine: implementation steps, viewed through [interp]. *)
module type MACHINE = sig
  type vars

  val name : string
  val init : unit -> vars

  val step : vars -> Fs_spec.op -> vars * Fs_spec.result
  (** Mutable implementations return the same [vars]. *)

  val interp : vars -> Fs_spec.state
  (** The interpretation (abstraction) function [I : L.Vars -> H.Vars]. *)

  val inv : vars -> bool
  (** The inductive invariant, checked at init and after every step. *)

  val crash_images : vars -> limit:int -> vars list
  (** Recovered machines reachable if a crash struck right now — one per
      distinct surviving-write subset, already recovered.  [[]] means
      the machine has no crash semantics (pure in-memory). *)
end

module Spec_machine : MACHINE with type vars = Fs_spec.state
(** The high machine: {!Fs_spec} itself (interp = identity, inv = wf). *)

(** A program over an abstract disk, with explicit crash steps.  The
    concrete disk type lives with the implementation (e.g. a
    [Kblock.Blockdev.t]); [kspec] never names it. *)
module type DISK_PROGRAM = sig
  type program
  type disk

  val name : string
  val init : unit -> program * disk
  val step : program -> disk -> Fs_spec.op -> Fs_spec.result
  val interp : program -> disk -> Fs_spec.state
  val inv : program -> disk -> bool

  val crash_disks : disk -> limit:int -> disk list
  (** Post-crash disk images (surviving-write subsets), un-recovered. *)

  val recover : disk -> program * disk
  (** Reboot: rebuild the program from a (possibly crashed) disk — e.g.
      journal-replay remount. *)
end

module Io_system (M : DISK_PROGRAM) : MACHINE with type vars = M.program * M.disk
(** The betrfs IOSystem: program × disk, crash = crash_disks ∘ recover. *)

(** {1 Divergences} *)

type mismatch =
  | Result_mismatch of { expected : Fs_spec.result; got : Fs_spec.result }
  | State_mismatch of { expected : Fs_spec.state; got : Fs_spec.state }
  | Invariant_violation
  | Crash_divergence of {
      image_index : int;
      recovered : Fs_spec.state;
      frontier : Fs_spec.state list;  (** the allowed recovery states *)
    }

type divergence = {
  step_index : int;
  op : Fs_spec.op;
  mismatch : mismatch;
  counterexample : Fs_spec.op list;
      (** A trace reproducing the divergence; minimal when the config
          enables shrinking. *)
}

val pp_mismatch : Format.formatter -> mismatch -> unit
val pp_divergence : Format.formatter -> divergence -> unit

val check_step :
  step_index:int ->
  spec_state:Fs_spec.state ->
  Fs_spec.op ->
  impl_result:Fs_spec.result ->
  impl_state:Fs_spec.state ->
  (Fs_spec.state, divergence) Stdlib.result
(** One commuting square (no invariant, no crash): the primitive
    {!Refine} is built from.  [Ok] is the next spec state. *)

(** {1 The enumerator} *)

type config = {
  seed : int;  (** drives interleaving merges; part of the fingerprint *)
  images_per_op : int;  (** crash-image bound per crash point *)
  crash_every : int;  (** enumerate crash images every [k] ops; 0 = never *)
  frontier_limit : int;
      (** bound on the allowed-recovery frontier; once exceeded, crash
          checks are skipped (and counted) until the next [Fsync] resets
          the frontier — never a false alarm *)
  lockstep : bool;  (** check the commuting square at every step *)
  shrink : bool;  (** delta-debug the first divergence to a minimal trace *)
  max_divergences : int;  (** stop collecting crash divergences after this many *)
}

val default_config : config
(** seed 0, 8 images/op, crash every op, frontier 64, lockstep, shrink,
    at most 16 divergences. *)

type coverage = {
  harness : string;  (** machine name *)
  ops : int;
  states_explored : int;  (** init + per-op states + crash images *)
  crash_points : int;
  crash_images : int;
  skipped_images : int;  (** honesty counter: images unchecked on frontier overflow *)
  frontier_peak : int;
  interleavings : int;
  deepest_divergence : int;  (** largest diverging step index; -1 when clean *)
  divergences : divergence list;
}

val is_clean : coverage -> bool
val pp_coverage : Format.formatter -> coverage -> unit

val coverage_fingerprint : coverage -> string
(** MD5 over every field and every divergence — byte-identical across
    replays of the same seed. *)

val run :
  ?config:config -> (module MACHINE with type vars = 'a) -> Fs_spec.op list -> coverage
(** Drive a fresh machine through the trace, checking invariant +
    refinement at every step and enumerating crash images per config. *)

val shrink :
  config:config ->
  (module MACHINE with type vars = 'a) ->
  Fs_spec.op list ->
  divergence ->
  Fs_spec.op list
(** Greedy delta-debugging: the smallest sub-trace of the failing prefix
    that still produces a divergence of the same kind. *)

(** {1 Interleavings} *)

val merge : seed:int -> Fs_spec.op list list -> Fs_spec.op list
(** A seeded fair merge of per-thread op streams (program order within a
    stream is preserved).  Deterministic in [seed]. *)

val explore :
  ?config:config ->
  interleavings:int ->
  (module MACHINE with type vars = 'a) ->
  Fs_spec.op list list ->
  coverage
(** Check every seeded interleaving of the streams (seeds [config.seed],
    [config.seed+1], …), aggregating coverage.  This subsumes the old
    [Conc.outsource]: schedule-sensitivity shows up as a divergence on
    some interleaving. *)

(** {1 Pure queries over the abstract state} *)

val count_files : Fs_spec.state -> int
val count_dirs : Fs_spec.state -> int
val total_bytes : Fs_spec.state -> int
val max_depth : Fs_spec.state -> int
