(* Refinement checking: the runtime analogue of functional verification.

   This is now a thin compatibility layer over [Krefine], which owns the
   verified-betrfs-style machinery (machines, invariants, crash
   enumeration, interleavings).  [check_trace] and [Monitor] keep their
   historical API: lockstep-only checking of an [FS_IMPL] against
   [Fs_spec], divergences without crash cases. *)

module type FS_IMPL = sig
  type t

  val name : string
  val create : unit -> t
  val apply : t -> Fs_spec.op -> Fs_spec.result
  val interpret : t -> Fs_spec.state
end

type divergence = {
  step_index : int;
  op : Fs_spec.op;
  mismatch : mismatch;
}

and mismatch =
  | Result_mismatch of { expected : Fs_spec.result; got : Fs_spec.result }
  | State_mismatch of { expected : Fs_spec.state; got : Fs_spec.state }

let pp_divergence ppf d =
  match d.mismatch with
  | Result_mismatch { expected; got } ->
      Fmt.pf ppf "step %d (%a): result mismatch: spec %a, impl %a" d.step_index
        Fs_spec.pp_op d.op Fs_spec.pp_result expected Fs_spec.pp_result got
  | State_mismatch _ ->
      Fmt.pf ppf "step %d (%a): interpreted state diverges from spec state" d.step_index
        Fs_spec.pp_op d.op

exception Refinement_failure of divergence

(* Map a Krefine lockstep divergence back into the legacy shape.
   Invariant and crash cases cannot arise from the machines built here
   (inv = true, no crash images). *)
let of_krefine (d : Krefine.divergence) =
  let mismatch =
    match d.Krefine.mismatch with
    | Krefine.Result_mismatch { expected; got } -> Result_mismatch { expected; got }
    | Krefine.State_mismatch { expected; got } -> State_mismatch { expected; got }
    | Krefine.Invariant_violation | Krefine.Crash_divergence _ -> assert false
  in
  { step_index = d.Krefine.step_index; op = d.Krefine.op; mismatch }

let check_step ~step_index ~spec_state op ~impl_result ~impl_state =
  match Krefine.check_step ~step_index ~spec_state op ~impl_result ~impl_state with
  | Ok st -> Ok st
  | Error d -> Error (of_krefine d)

let lockstep_config =
  {
    Krefine.default_config with
    Krefine.crash_every = 0;
    shrink = false;
    max_divergences = 1;
  }

let check_trace (type a) (module I : FS_IMPL with type t = a) ops =
  let module M = struct
    type vars = I.t

    let name = I.name
    let init = I.create
    let step v op = (v, I.apply v op)
    let interp = I.interpret
    let inv _ = true
    let crash_images _ ~limit:_ = []
  end in
  let cov = Krefine.run ~config:lockstep_config (module M) ops in
  match cov.Krefine.divergences with
  | [] -> Ok cov.Krefine.ops
  | d :: _ -> Error (of_krefine d)

(* A live refinement monitor: wraps an implementation so every call is
   checked against the spec as it happens. *)
module Monitor (I : FS_IMPL) : sig
  include FS_IMPL

  val checked_ops : t -> int
end = struct
  type t = {
    impl : I.t;
    mutable spec : Fs_spec.state;
    mutable steps : int;
  }

  let name = I.name ^ "+monitor"
  let create () = { impl = I.create (); spec = Fs_spec.empty; steps = 0 }

  let apply t op =
    let impl_result = I.apply t.impl op in
    let impl_state = I.interpret t.impl in
    (match
       check_step ~step_index:t.steps ~spec_state:t.spec op ~impl_result ~impl_state
     with
    | Ok spec' ->
        t.spec <- spec';
        t.steps <- t.steps + 1
    | Error d -> raise (Refinement_failure d));
    impl_result

  let interpret t = I.interpret t.impl
  let checked_ops t = t.steps
end
