(* The refinement-harness registry (see kharness.mli).  Registration is
   the [harness ~name ~subsystem] call below — the literal shape klint's
   R15 pass scans for, so a Verified registry claim with no registered
   harness is a lint violation, not a convention. *)

module Krefine = Kspec.Krefine
module Fs = Kspec.Fs_spec

type packed = Packed : (module Krefine.MACHINE with type vars = 'a) -> packed

type entry = { hname : string; subsystem : string; machine : packed }

let registered : entry list ref = ref []

let harness ~name ~subsystem machine =
  let e = { hname = name; subsystem; machine } in
  registered := !registered @ [ e ];
  e

let all () = !registered
let find name = List.find_opt (fun e -> e.hname = name) !registered
let subsystems_covered () = List.sort_uniq String.compare (List.map (fun e -> e.subsystem) !registered)

let run ?config (e : entry) trace =
  let (Packed (module M)) = e.machine in
  Krefine.run ?config (module M) trace

(* The hostile disk ------------------------------------------------------ *)

(* The kload device geometry: the recorded key space must fit
   payload-ceiling files with headroom, so [ENOSPC] can only mean a real
   refinement bug, never an under-provisioned harness. *)
let geometry =
  { Kfs.Journalfs.nblocks = 4096; block_size = 512; jblocks = 96; ninodes = 128 }

(* Small enough that multi-block journal transactions overflow it and
   force mid-epoch writebacks — the cache must not get to hide behind
   "everything still fits". *)
let wcache_capacity = 16

(* Every disk-backed harness runs its FS over a [Kblock.Wcache] on the raw
   device: acked writes are volatile until the FS flushes, and crash
   images are wcache residues — subsets *and reorderings* of the writes
   since the last completed barrier, materialized over a snapshot of the
   media as of the last settled epoch.

   Settling discipline: [crash_devs] folds the closed (durable) epochs
   into [media0] after each enumeration, keeping the retained window —
   and so enumeration cost — proportional to the crash cadence.  [settle]
   must also run *before* an [Fsync] is applied: the checker's
   allowed-recovery frontier resets at [Fsync], so crash instants from
   before the fsync stop being representable at later crash points; the
   fsync's own barrier epochs stay in the window and are exactly the
   images that convict a missing-barrier journal. *)
module Wdisk = struct
  type t = {
    dev : Kblock.Blockdev.t;
    wc : Kblock.Wcache.t;
    media0 : bytes array; (* media as of the last settled epoch *)
  }

  let fresh_dev () =
    Kblock.Blockdev.create ~nblocks:geometry.Kfs.Journalfs.nblocks
      ~block_size:geometry.Kfs.Journalfs.block_size

  let wcache_over dev =
    Kblock.Wcache.create ~name:"wcache" ~capacity:wcache_capacity ~seed:1
      (Kblock.Blockdev.io dev)

  let apply_entry media (e : Kblock.Wcache.entry) =
    Bytes.blit_string e.data 0 media.(e.blkno) 0 (String.length e.data)

  let settle d = List.iter (apply_entry d.media0) (Kblock.Wcache.take_durable d.wc)

  (* Wrap an existing device (a crash image) behind a fresh cold cache. *)
  let of_dev dev =
    { dev; wc = wcache_over dev; media0 = Kblock.Blockdev.snapshot_media dev }

  (* Materialize post-crash devices: one per sampled residue, each a
     fresh device whose media is [media0] plus the residue's writes in
     residue order.  Folds the durable epochs afterwards. *)
  let crash_devs d ~limit =
    let devs =
      Kblock.Wcache.crash_residues d.wc ~limit
      |> List.map (fun residue ->
             let media = Array.map Bytes.copy d.media0 in
             List.iter (apply_entry media) residue;
             Kblock.Blockdev.of_media ~block_size:geometry.Kfs.Journalfs.block_size media)
    in
    settle d;
    devs
end

(* Journalfs as an IOSystem ---------------------------------------------- *)

module Journalfs_prog_gen (B : sig
  val name : string
  val barriers : bool
end) =
struct
  type program = Kfs.Journalfs.t
  type disk = Wdisk.t

  let name = B.name

  let init () =
    let dev = Wdisk.fresh_dev () in
    let wc = Wdisk.wcache_over dev in
    let fs =
      Kfs.Journalfs.mkfs_on ~geometry ~barriers:B.barriers ~io:(Kblock.Wcache.io wc)
        Kfs.Journalfs.Journaled dev
    in
    (* mkfs ends with a flush: fold its epochs away and snapshot. *)
    let (_ : Kblock.Wcache.entry list) = Kblock.Wcache.take_durable wc in
    (fs, { Wdisk.dev; wc; media0 = Kblock.Blockdev.snapshot_media dev })

  let step fs (d : disk) op =
    (match op with Fs.Fsync -> Wdisk.settle d | _ -> ());
    Kfs.Journalfs.apply fs op

  let interp fs _d = Kfs.Journalfs.interpret fs

  let inv fs (d : disk) =
    (not (Kfs.Journalfs.is_corrupt fs))
    && (not (Kfs.Journalfs.is_readonly fs))
    && Fs.wf (Kfs.Journalfs.interpret fs)
    (* barrier discipline is part of the invariant: the FS must never
       derive new writes from data it has not flushed *)
    && Kblock.Wcache.ordering_violations d.Wdisk.wc = 0

  let crash_disks d ~limit = List.map Wdisk.of_dev (Wdisk.crash_devs d ~limit)

  let recover (d : disk) =
    ( Kfs.Journalfs.mount ~geometry ~barriers:B.barriers ~io:(Kblock.Wcache.io d.Wdisk.wc)
        Kfs.Journalfs.Journaled d.Wdisk.dev,
      d )
end

module Journalfs_prog = Journalfs_prog_gen (struct
  let name = "journalfs"
  let barriers = true
end)

module Journalfs_machine = Krefine.Io_system (Journalfs_prog)

(* The seeded missing-barrier mutant: the commit record flushes with its
   data blocks and the checkpoint superblock with its home writes (one
   barrier per logical op).  Under the write-back cache a crash can then
   tear a checkpoint — some home blocks plus the advanced superblock land
   while the rest vanish with replay disabled.  Not registered: it exists
   for the refinement checker to convict. *)
let journalfs_missing_barrier () =
  let module P = Journalfs_prog_gen (struct
    let name = "journalfs.missing-barrier"
    let barriers = false
  end) in
  Packed (module Krefine.Io_system (P))

(* Cowfs ----------------------------------------------------------------- *)

module Cowfs_machine = struct
  type vars = Kfs.Cowfs.fs

  let name = "cowfs"
  let init () = Kfs.Cowfs.mkfs ()
  let step v op = (v, Kfs.Cowfs.apply v op)
  let interp = Kfs.Cowfs.interpret
  let inv v = Fs.wf (Kfs.Cowfs.interpret v)

  (* The tree is a persistent value: there is no volatile/durable split
     to crash across — no block device, so no write-back cache either —
     and crash checking is vacuous by construction. *)
  let crash_images _ ~limit:_ = []
end

(* Supervised microreboot ------------------------------------------------ *)

let panic_cadence = 64

(* The kload supervisor policy: a budget that cannot exhaust (a [Failed]
   mount is a degraded-mode study, not a refinement subject) and the
   default backoff curve, so recovery completes within a few retries. *)
let sup_policy =
  {
    Ksim.Supervisor.restart_budget = 1_000_000;
    backoff_base = 200;
    backoff_cap = 5_000;
    op_cost = 100;
  }

module Microreboot_base = struct
  type vars = {
    vfs : Kvfs.Vfs.t;
    wdisk : Wdisk.t;
    fp : Ksim.Failpoint.t;
    panic_every : int;
    mutable handle_epoch : int;  (* the epoch our "open handle" was minted at *)
    mutable ops_done : int;
    mutable panics_injected : int;
    mutable estale_remints : int;
  }

  let name = "journalfs.microreboot"

  let make ~sabotage ~panic_every () =
    let dev = Wdisk.fresh_dev () in
    let wc = Wdisk.wcache_over dev in
    let io = Kblock.Wcache.io wc in
    let fs0 = Kfs.Journalfs.mkfs_on ~geometry ~io Kfs.Journalfs.Journaled dev in
    let (_ : Kblock.Wcache.entry list) = Kblock.Wcache.take_durable wc in
    let wdisk = { Wdisk.dev; wc; media0 = Kblock.Blockdev.snapshot_media dev } in
    let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:1 () in
    let vfs = Kvfs.Vfs.create () in
    let wrap fs =
      Kvfs.Iface.panicky ~site:"dur.panic" ~fp
        (Kvfs.Iface.instance (module Kfs.Journalfs.Journaled_fs) fs)
    in
    let remake () =
      if sabotage then begin
        (* The seeded replay-skip fault: zero the journal record blocks
           (the header survives), so the recovery scan finds only torn
           records and silently replays nothing.  Committed-but-
           unfsynced operations vanish — the lockstep check must see the
           state regress across the microreboot. *)
        let zero = Bytes.make geometry.Kfs.Journalfs.block_size '\000' in
        for b = 1 to geometry.Kfs.Journalfs.jblocks - 1 do
          let (_ : unit Ksim.Errno.r) = Kblock.Blockdev.write dev b zero in
          ()
        done;
        let (_ : unit Ksim.Errno.r) = io.Kblock.Io.flush () in
        ()
      end;
      (* A microreboot restarts the module, not the disk: the write cache
         survives.  Mount parses via direct device reads, so drain the
         cache first — equivalent to reading through it. *)
      let (_ : unit Ksim.Errno.r) = io.Kblock.Io.flush () in
      wrap (Kfs.Journalfs.mount ~geometry ~io Kfs.Journalfs.Journaled dev)
    in
    (match Kvfs.Vfs.mount vfs ~at:[] ~remake ~policy:sup_policy (wrap fs0) with
    | Ok () -> ()
    | Error _ -> invalid_arg "Kharness.Microreboot: root mount failed");
    {
      vfs;
      wdisk;
      fp;
      panic_every;
      handle_epoch = Kvfs.Vfs.epoch_at vfs [];
      ops_done = 0;
      panics_injected = 0;
      estale_remints = 0;
    }

  (* The tenant retry discipline from the load harness: EIO is a
     contained oops (there is no other EIO source here — the device is
     fault-free), EINTR is the quiesce window (each retry advances the
     supervisor clock towards its backoff deadline), ESTALE means our
     handle's generation died with the old instance, so re-mint it at
     the current epoch and retry.  The op itself is applied at most once:
     the panic fires before the module delegates.

     The retry budget must outlast the worst quiesce window: backoff is
     capped at [backoff_cap] ns and the clock advances [op_cost] ns per
     call, so [backoff_cap / op_cost] (= 50) retries always reach the
     deadline; the rest is slack for the ESTALE re-mint round-trip. *)
  let retry_budget = (sup_policy.Ksim.Supervisor.backoff_cap / sup_policy.Ksim.Supervisor.op_cost) + 10

  let step v op =
    (match op with Fs.Fsync -> Wdisk.settle v.wdisk | _ -> ());
    v.ops_done <- v.ops_done + 1;
    if v.ops_done mod v.panic_every = 0 then begin
      v.panics_injected <- v.panics_injected + 1;
      Ksim.Failpoint.configure v.fp "dur.panic" ~enabled:true ~probability:1.0 ~interval:1
        ~times:1 ()
    end;
    let rec go tries =
      match Kvfs.Vfs.apply_stamped v.vfs ~epoch:v.handle_epoch op with
      | Error Ksim.Errno.ESTALE when tries > 0 ->
          v.estale_remints <- v.estale_remints + 1;
          v.handle_epoch <- Kvfs.Vfs.epoch_at v.vfs [];
          go (tries - 1)
      | Error (Ksim.Errno.EINTR | Ksim.Errno.EIO) when tries > 0 -> go (tries - 1)
      | r -> r
    in
    (v, go retry_budget)

  let interp v = Kvfs.Vfs.interpret v.vfs
  let inv v = Fs.wf (Kvfs.Vfs.interpret v.vfs) && Kblock.Wcache.ordering_violations v.wdisk.Wdisk.wc = 0

  (* A device crash strikes the whole stack: enumerate cache-loss residues
     of the hostile disk, then bring each image up the way a reboot
     would — a fresh supervised mount (over a cold cache) whose first act
     is journal replay. *)
  let remount_over (wdisk : Wdisk.t) =
    let io = Kblock.Wcache.io wdisk.Wdisk.wc in
    let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:1 () in
    let vfs = Kvfs.Vfs.create () in
    let wrap fs =
      Kvfs.Iface.panicky ~site:"dur.panic" ~fp
        (Kvfs.Iface.instance (module Kfs.Journalfs.Journaled_fs) fs)
    in
    let remake () =
      let (_ : unit Ksim.Errno.r) = io.Kblock.Io.flush () in
      wrap (Kfs.Journalfs.mount ~geometry ~io Kfs.Journalfs.Journaled wdisk.Wdisk.dev)
    in
    (match Kvfs.Vfs.mount vfs ~at:[] ~remake ~policy:sup_policy (remake ()) with
    | Ok () -> ()
    | Error _ -> invalid_arg "Kharness.Microreboot: crash remount failed");
    {
      vfs;
      wdisk;
      fp;
      panic_every = max_int;
      handle_epoch = Kvfs.Vfs.epoch_at vfs [];
      ops_done = 0;
      panics_injected = 0;
      estale_remints = 0;
    }

  let crash_images v ~limit =
    List.map (fun dev -> remount_over (Wdisk.of_dev dev)) (Wdisk.crash_devs v.wdisk ~limit)
end

module Microreboot_machine = struct
  include Microreboot_base

  let init () = make ~sabotage:false ~panic_every:panic_cadence ()
end

let microreboot_sabotaged ?(panic_every = 4) () =
  let module M = struct
    include Microreboot_base

    let name = "journalfs.microreboot.replay-skip"
    let init () = make ~sabotage:true ~panic_every ()
  end in
  Packed (module M)

(* Registrations --------------------------------------------------------- *)

let journalfs = harness ~name:"journalfs" ~subsystem:"journalfs" (Packed (module Journalfs_machine))
let cowfs = harness ~name:"cowfs" ~subsystem:"cowfs" (Packed (module Cowfs_machine))

let microreboot =
  harness ~name:"journalfs.microreboot" ~subsystem:"journalfs"
    (Packed (module Microreboot_machine))

let recorded_trace ?target_ops ~seed () = Kload.Trace.record ?target_ops ~seed ()
