(* The refinement-harness registry (see kharness.mli).  Registration is
   the [harness ~name ~subsystem] call below — the literal shape klint's
   R15 pass scans for, so a Verified registry claim with no registered
   harness is a lint violation, not a convention. *)

module Krefine = Kspec.Krefine
module Fs = Kspec.Fs_spec

type packed = Packed : (module Krefine.MACHINE with type vars = 'a) -> packed

type entry = { hname : string; subsystem : string; machine : packed }

let registered : entry list ref = ref []

let harness ~name ~subsystem machine =
  let e = { hname = name; subsystem; machine } in
  registered := !registered @ [ e ];
  e

let all () = !registered
let find name = List.find_opt (fun e -> e.hname = name) !registered
let subsystems_covered () = List.sort_uniq String.compare (List.map (fun e -> e.subsystem) !registered)

let run ?config (e : entry) trace =
  let (Packed (module M)) = e.machine in
  Krefine.run ?config (module M) trace

(* Journalfs as an IOSystem ---------------------------------------------- *)

(* The kload device geometry: the recorded key space must fit
   payload-ceiling files with headroom, so [ENOSPC] can only mean a real
   refinement bug, never an under-provisioned harness. *)
let geometry =
  { Kfs.Journalfs.nblocks = 4096; block_size = 512; jblocks = 96; ninodes = 128 }

module Journalfs_prog = struct
  type program = Kfs.Journalfs.t
  type disk = Kblock.Blockdev.t

  let name = "journalfs"

  let fresh_dev () =
    Kblock.Blockdev.create ~nblocks:geometry.Kfs.Journalfs.nblocks
      ~block_size:geometry.Kfs.Journalfs.block_size

  let init () =
    let dev = fresh_dev () in
    (Kfs.Journalfs.mkfs_on ~geometry Kfs.Journalfs.Journaled dev, dev)

  let step fs _dev op = Kfs.Journalfs.apply fs op

  let interp fs _dev = Kfs.Journalfs.interpret fs

  let inv fs _dev =
    (not (Kfs.Journalfs.is_corrupt fs))
    && (not (Kfs.Journalfs.is_readonly fs))
    && Fs.wf (Kfs.Journalfs.interpret fs)

  let crash_disks dev ~limit = Kblock.Blockdev.crash_states dev ~limit
  let recover dev = (Kfs.Journalfs.mount ~geometry Kfs.Journalfs.Journaled dev, dev)
end

module Journalfs_machine = Krefine.Io_system (Journalfs_prog)

(* Cowfs ----------------------------------------------------------------- *)

module Cowfs_machine = struct
  type vars = Kfs.Cowfs.fs

  let name = "cowfs"
  let init () = Kfs.Cowfs.mkfs ()
  let step v op = (v, Kfs.Cowfs.apply v op)
  let interp = Kfs.Cowfs.interpret
  let inv v = Fs.wf (Kfs.Cowfs.interpret v)

  (* The tree is a persistent value: there is no volatile/durable split
     to crash across, so crash checking is vacuous by construction. *)
  let crash_images _ ~limit:_ = []
end

(* Supervised microreboot ------------------------------------------------ *)

let panic_cadence = 64

(* The kload supervisor policy: a budget that cannot exhaust (a [Failed]
   mount is a degraded-mode study, not a refinement subject) and the
   default backoff curve, so recovery completes within a few retries. *)
let sup_policy =
  {
    Ksim.Supervisor.restart_budget = 1_000_000;
    backoff_base = 200;
    backoff_cap = 5_000;
    op_cost = 100;
  }

module Microreboot_base = struct
  type vars = {
    vfs : Kvfs.Vfs.t;
    dev : Kblock.Blockdev.t;
    fp : Ksim.Failpoint.t;
    panic_every : int;
    mutable handle_epoch : int;  (* the epoch our "open handle" was minted at *)
    mutable ops_done : int;
    mutable panics_injected : int;
    mutable estale_remints : int;
  }

  let name = "journalfs.microreboot"

  let make ~sabotage ~panic_every () =
    let dev = Journalfs_prog.fresh_dev () in
    let fs0 = Kfs.Journalfs.mkfs_on ~geometry Kfs.Journalfs.Journaled dev in
    let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:1 () in
    let vfs = Kvfs.Vfs.create () in
    let wrap fs =
      Kvfs.Iface.panicky ~site:"dur.panic" ~fp
        (Kvfs.Iface.instance (module Kfs.Journalfs.Journaled_fs) fs)
    in
    let remake () =
      if sabotage then begin
        (* The seeded replay-skip fault: zero the journal record blocks
           (the header survives), so the recovery scan finds only torn
           records and silently replays nothing.  Committed-but-
           unfsynced operations vanish — the lockstep check must see the
           state regress across the microreboot. *)
        let zero = Bytes.make geometry.Kfs.Journalfs.block_size '\000' in
        for b = 1 to geometry.Kfs.Journalfs.jblocks - 1 do
          let (_ : unit Ksim.Errno.r) = Kblock.Blockdev.write dev b zero in
          ()
        done
      end;
      wrap (Kfs.Journalfs.mount ~geometry Kfs.Journalfs.Journaled dev)
    in
    (match Kvfs.Vfs.mount vfs ~at:[] ~remake ~policy:sup_policy (wrap fs0) with
    | Ok () -> ()
    | Error _ -> invalid_arg "Kharness.Microreboot: root mount failed");
    {
      vfs;
      dev;
      fp;
      panic_every;
      handle_epoch = Kvfs.Vfs.epoch_at vfs [];
      ops_done = 0;
      panics_injected = 0;
      estale_remints = 0;
    }

  (* The tenant retry discipline from the load harness: EIO is a
     contained oops (there is no other EIO source here — the device is
     fault-free), EINTR is the quiesce window (each retry advances the
     supervisor clock towards its backoff deadline), ESTALE means our
     handle's generation died with the old instance, so re-mint it at
     the current epoch and retry.  The op itself is applied at most once:
     the panic fires before the module delegates.

     The retry budget must outlast the worst quiesce window: backoff is
     capped at [backoff_cap] ns and the clock advances [op_cost] ns per
     call, so [backoff_cap / op_cost] (= 50) retries always reach the
     deadline; the rest is slack for the ESTALE re-mint round-trip. *)
  let retry_budget = (sup_policy.Ksim.Supervisor.backoff_cap / sup_policy.Ksim.Supervisor.op_cost) + 10

  let step v op =
    v.ops_done <- v.ops_done + 1;
    if v.ops_done mod v.panic_every = 0 then begin
      v.panics_injected <- v.panics_injected + 1;
      Ksim.Failpoint.configure v.fp "dur.panic" ~enabled:true ~probability:1.0 ~interval:1
        ~times:1 ()
    end;
    let rec go tries =
      match Kvfs.Vfs.apply_stamped v.vfs ~epoch:v.handle_epoch op with
      | Error Ksim.Errno.ESTALE when tries > 0 ->
          v.estale_remints <- v.estale_remints + 1;
          v.handle_epoch <- Kvfs.Vfs.epoch_at v.vfs [];
          go (tries - 1)
      | Error (Ksim.Errno.EINTR | Ksim.Errno.EIO) when tries > 0 -> go (tries - 1)
      | r -> r
    in
    (v, go retry_budget)

  let interp v = Kvfs.Vfs.interpret v.vfs
  let inv v = Fs.wf (Kvfs.Vfs.interpret v.vfs)

  (* A device crash strikes the whole stack: enumerate surviving-write
     subsets of the block device, then bring each up the way a reboot
     would — a fresh supervised mount whose first act is journal
     replay. *)
  let remount_over dev =
    let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:1 () in
    let vfs = Kvfs.Vfs.create () in
    let wrap fs =
      Kvfs.Iface.panicky ~site:"dur.panic" ~fp
        (Kvfs.Iface.instance (module Kfs.Journalfs.Journaled_fs) fs)
    in
    let remake () = wrap (Kfs.Journalfs.mount ~geometry Kfs.Journalfs.Journaled dev) in
    (match Kvfs.Vfs.mount vfs ~at:[] ~remake ~policy:sup_policy (remake ()) with
    | Ok () -> ()
    | Error _ -> invalid_arg "Kharness.Microreboot: crash remount failed");
    {
      vfs;
      dev;
      fp;
      panic_every = max_int;
      handle_epoch = Kvfs.Vfs.epoch_at vfs [];
      ops_done = 0;
      panics_injected = 0;
      estale_remints = 0;
    }

  let crash_images v ~limit = List.map remount_over (Kblock.Blockdev.crash_states v.dev ~limit)
end

module Microreboot_machine = struct
  include Microreboot_base

  let init () = make ~sabotage:false ~panic_every:panic_cadence ()
end

let microreboot_sabotaged ?(panic_every = 4) () =
  let module M = struct
    include Microreboot_base

    let name = "journalfs.microreboot.replay-skip"
    let init () = make ~sabotage:true ~panic_every ()
  end in
  Packed (module M)

(* Registrations --------------------------------------------------------- *)

let journalfs = harness ~name:"journalfs" ~subsystem:"journalfs" (Packed (module Journalfs_machine))
let cowfs = harness ~name:"cowfs" ~subsystem:"cowfs" (Packed (module Cowfs_machine))

let microreboot =
  harness ~name:"journalfs.microreboot" ~subsystem:"journalfs"
    (Packed (module Microreboot_machine))

let recorded_trace ?target_ops ~seed () = Kload.Trace.record ?target_ops ~seed ()
