(** The refinement-harness registry: every subsystem whose registry
    entry claims [Verified] must register a {!Kspec.Krefine} machine
    here, by name — klint's R15 ({e unverified-functional-claim}) fails
    any claim with no matching [harness ~name ~subsystem] registration,
    so "verified" can never silently mean "we stopped running the
    checker".

    The machines themselves are the real stacks: journalfs as a
    {!Kspec.Krefine.Io_system} over a {e hostile} disk — a
    {!Kblock.Wcache} volatile write-back cache on the raw block device,
    so crash images are cache-loss residues (subsets {e and reorderings}
    of the unflushed writes, seeded sampling under the image limit) and
    recovery is a journal-replay mount over a cold cache; cowfs over its
    persistent tree; and the supervised-microreboot path — a journalfs
    mount under {!Kvfs.Vfs} supervision with module panics injected on a
    fixed cadence, remount-with-replay as the restart function, and
    [ESTALE] epoch re-minting in the caller retry loop, over the same
    hostile disk. *)

type packed = Packed : (module Kspec.Krefine.MACHINE with type vars = 'a) -> packed

type entry = {
  hname : string;  (** the harness name [safeos refine --harness] takes *)
  subsystem : string;  (** boot-registry subsystem this harness verifies *)
  machine : packed;
}

val harness : name:string -> subsystem:string -> packed -> entry
(** Register (and return) a harness.  klint's R15 pass recognises
    exactly this call shape — [harness ~name:"..." ~subsystem:"..."]
    with literal strings — so a registration is statically visible. *)

val all : unit -> entry list
(** Every registered harness, registration order. *)

val find : string -> entry option
val subsystems_covered : unit -> string list

val run :
  ?config:Kspec.Krefine.config -> entry -> Kspec.Fs_spec.op list -> Kspec.Krefine.coverage
(** Drive a harness's machine through a trace. *)

(** {1 The registered harnesses} *)

val journalfs : entry
(** The journaled block FS as an IOSystem: program = mounted FS, disk =
    {!Kblock.Blockdev} behind a {!Kblock.Wcache}, crash = cache-loss
    residues (unflushed-subset states, reorderings included) + replay
    mount over a cold cache. *)

val cowfs : entry
(** The copy-on-write FS (no crash semantics: the tree is persistent). *)

val microreboot : entry
(** Journalfs under {!Kvfs.Vfs} supervision with a module panic injected
    every {!panic_cadence} ops: each panic is contained to [EIO], the
    mount quiesces ([EINTR]) and microreboots via remount-with-replay,
    and the stale handle epoch is re-minted on [ESTALE] — the whole
    recovery choreography must be invisible in the abstract map. *)

val panic_cadence : int
(** Ops between injected panics in {!microreboot} (64). *)

val wcache_capacity : int
(** Dirty-set bound of the write-back cache under every disk-backed
    harness (small, so journal transactions force mid-epoch writeback). *)

val journalfs_missing_barrier : unit -> packed
(** The seeded missing-barrier journalfs mutant: the commit record
    flushes together with its data blocks and the checkpoint superblock
    with its home writes ({!Kfs.Journalfs.mkfs_on} [~barriers:false]).
    Under the write-back cache a crash can tear a checkpoint — some home
    blocks plus the advanced superblock survive while the rest vanish
    with replay disabled.  Not registered — it exists so tests can prove
    the crash enumerator convicts exactly this fault, with a shrunk
    counterexample. *)

val microreboot_sabotaged : ?panic_every:int -> unit -> packed
(** The {!microreboot} machine with a seeded replay-skip fault: the
    remount-on-restart first zeroes the journal record blocks, so
    recovery silently skips replay and committed-but-unfsynced
    operations are lost.  Not registered — it exists so tests can prove
    the lockstep check catches exactly this fault. *)

val recorded_trace : ?target_ops:int -> seed:int -> unit -> Kspec.Fs_spec.op list
(** A real-traffic trace for the harnesses: {!Kload.Trace.record} under
    [/dur], rebased to the mount root.  Deterministic in [seed]. *)
