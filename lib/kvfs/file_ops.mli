(** POSIX-ish file-descriptor layer over {!Vfs}, so examples and workloads
    read like user programs. *)

type flag =
  | O_RDONLY
  | O_WRONLY
  | O_RDWR
  | O_CREAT
  | O_TRUNC
  | O_APPEND

type whence =
  | SEEK_SET
  | SEEK_CUR
  | SEEK_END

type t

val create : Vfs.t -> t
val vfs : t -> Vfs.t

val openf : t -> ?flags:flag list -> string -> int Ksim.Errno.r
(** Open (default read-only); [O_CREAT] creates, [O_TRUNC] truncates.
    Returns a file descriptor (>= 3).  The fd records the epoch of the
    mount that minted it: after that mount microreboots
    ({!Ksim.Supervisor}), [read]/[write]/[lseek] on the stale fd answer
    [ESTALE] deterministically; reopen to reach the rebuilt state. *)

val close : t -> int -> unit Ksim.Errno.r
val write : t -> int -> string -> int Ksim.Errno.r
(** Write at the current position ([O_APPEND]: at EOF); returns the byte
    count and advances the position. *)

val read : t -> int -> len:int -> string Ksim.Errno.r
(** Read up to [len] bytes at the current position; short at EOF. *)

val lseek : t -> int -> int -> whence -> int Ksim.Errno.r
val mkdir : t -> string -> unit Ksim.Errno.r
val unlink : t -> string -> unit Ksim.Errno.r
val rmdir : t -> string -> unit Ksim.Errno.r
val rename : t -> string -> string -> unit Ksim.Errno.r
val readdir : t -> string -> string list Ksim.Errno.r
val stat : t -> string -> ([ `File | `Dir ] * int) Ksim.Errno.r
val fsync : t -> unit Ksim.Errno.r
val open_fds : t -> int

val fd_epoch : t -> int -> int option
(** The mount epoch recorded when the fd was opened ([None]: bad fd). *)
