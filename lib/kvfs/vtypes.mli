(** Linux-shaped VFS data structures.

    The inode reproduces the §4.3 sharing hazards: {!inode.i_size} is
    nominally protected by [i_lock] but "only maybe protected" — the
    {!Ksim.Klock.Guarded} cell records unlocked accesses; [i_private] is
    the void-pointer payload file systems stash custom data in (§4.2). *)

type file_kind =
  | Regular
  | Directory

val file_kind_to_string : file_kind -> string

type inode = {
  ino : int;
  mutable kind : file_kind;
  i_lock : Ksim.Klock.t;
  i_size : int Ksim.Klock.Guarded.cell;
  mutable i_nlink : int;
  mutable i_version : int;
  mutable i_private : Ksim.Frame.Priv.t;  (** fs-private data, void*-style *)
}

val make_inode : ?ino:int -> file_kind -> inode
(** Fresh inode (auto-numbered unless [ino] is given) with its own
    [i_lock] (reported to {!Ksim.Lockdep.global}) and a guarded
    [i_size] cell. *)

val size_locked : inode -> int
(** Read the cached size.  @must_hold: i_lock *)

val set_size_locked : inode -> int -> unit
(** Update the cached size.  @must_hold: i_lock *)

val read_size : inode -> int
(** Locked read for callers holding nothing: takes and releases
    [i_lock] internally. *)

val pp_inode : Format.formatter -> inode -> unit

type dentry = {
  d_name : string;
  d_inode : inode;
}

type file = {
  f_inode : inode;
  mutable f_pos : int;
  f_writable : bool;
}

val open_file : ?writable:bool -> inode -> file
