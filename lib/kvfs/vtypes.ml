(* Linux-shaped VFS data structures.

   The inode reproduces the sharing hazards the paper calls out in §4.3:
   [i_size] is a [Klock.Guarded] cell nominally protected by [i_lock] but
   "only maybe protected, according to the relevant comment" — unsafe file
   systems poke it through the unchecked accessors; [i_private] is the
   void-pointer payload file systems stash custom data in. *)

type file_kind =
  | Regular
  | Directory

let file_kind_to_string = function Regular -> "regular" | Directory -> "directory"

type inode = {
  ino : int;
  mutable kind : file_kind;
  i_lock : Ksim.Klock.t;
  i_size : int Ksim.Klock.Guarded.cell;
  mutable i_nlink : int;
  mutable i_version : int;
  mutable i_private : Ksim.Frame.Priv.t;
}

let next_ino = ref 1

let make_inode ?(ino = -1) kind =
  let ino =
    if ino >= 0 then ino
    else begin
      incr next_ino;
      !next_ino
    end
  in
  let i_lock =
    (* wired to the global lock-order validator so every i_lock nesting
       the tests exercise lands in the runtime graph kracer reconciles
       its static graph against *)
    Ksim.Klock.create ~lockdep:Ksim.Lockdep.global
      ~name:(Printf.sprintf "i_lock:%d" ino) ()
  in
  {
    ino;
    kind;
    i_lock;
    i_size = Ksim.Klock.Guarded.create ~lock:i_lock ~name:(Printf.sprintf "i_size:%d" ino) 0;
    i_nlink = 1;
    i_version = 0;
    i_private = Ksim.Frame.Priv.none;
  }

(* The annotated i_size accessors — the checked counterpart of the
   "only maybe protected" comment the paper quotes.  The @must_hold
   contracts are what kracer propagates interprocedurally: a caller any
   number of hops up must provably hold [i_lock] or R6 fires. *)

(** Read the cached size.  @must_hold: i_lock *)
let size_locked i = Ksim.Klock.Guarded.get i.i_size

(** Update the cached size.  @must_hold: i_lock *)
let set_size_locked i size = Ksim.Klock.Guarded.set i.i_size size

(** Locked read of the size for callers holding nothing: takes and
    releases [i_lock] internally, so it must not be called with the
    lock already held. *)
let read_size i = Ksim.Klock.with_lock i.i_lock (fun () -> size_locked i)

let pp_inode ppf i =
  Fmt.pf ppf "inode %d (%s, size %d, nlink %d)" i.ino (file_kind_to_string i.kind)
    (Ksim.Frame.Cell.peek i.i_size)
    i.i_nlink

type dentry = {
  d_name : string;
  d_inode : inode;
}

type file = {
  f_inode : inode;
  mutable f_pos : int;
  f_writable : bool;
}

let open_file ?(writable = true) inode = { f_inode = inode; f_pos = 0; f_writable = writable }
