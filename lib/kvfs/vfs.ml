(* The VFS proper: a mount table dispatching abstract operations to
   mounted file systems strictly through the modular interface.

   "Callers of any module must only reference the modular interface and
   cannot directly depend on any specific implementation" — this is that
   interface.  The cost of the indirection relative to a direct call is
   measured by bench [modularity/*].

   A mount may additionally be *supervised*: given a [remake] factory,
   the mount gets a [Ksim.Supervisor] and every dispatch runs inside its
   oops firewall.  An exception escaping the file system (a simulated
   oops) becomes an [EIO] result instead of unwinding the kernel; the
   mount quiesces (in-flight calls drain with [EINTR] on the simulated
   clock), then microreboots by replacing the instance with [remake ()]
   — for a journaled FS that factory is a remount, i.e. journal replay.
   Each successful reboot bumps the mount epoch; handles minted against
   a dead generation are refused with [ESTALE] (see {!validate_epoch}
   and [File_ops]).  A mount whose restart budget is exhausted degrades:
   reads are still served from the last instance, mutations fail [EIO]. *)

type mount = {
  mount_point : Kspec.Fs_spec.path;
  mutable fs : Iface.instance;
  sup : Ksim.Supervisor.t option;
}

type t = { mutable mounts : mount list (* longest mount point first *) }

let create () = { mounts = [] }

let mounts t = List.map (fun m -> (m.mount_point, Iface.instance_name m.fs)) t.mounts

let mount t ~at ?remake ?policy ?stats fs =
  if List.exists (fun m -> m.mount_point = at) t.mounts then Error Ksim.Errno.EBUSY
  else begin
    let sup =
      match remake with
      | None -> None
      | Some _ ->
          Some (Ksim.Supervisor.create ?policy ?stats ~name:(Iface.instance_name fs) ())
    in
    let m = { mount_point = at; fs; sup } in
    (* The real restart function needs the mount record: swap in the
       freshly remade instance (journal replay happens inside the
       factory for block-backed file systems). *)
    (match (sup, remake) with
    | Some s, Some factory ->
        Ksim.Supervisor.set_restart s (fun () ->
            match factory () with
            | fresh ->
                m.fs <- fresh;
                Ok ()
            | exception exn -> Error (Printexc.to_string exn))
    | _ -> ());
    t.mounts <-
      List.sort
        (fun a b -> compare (List.length b.mount_point) (List.length a.mount_point))
        (m :: t.mounts);
    Ok ()
  end

let umount t ~at =
  if List.exists (fun m -> m.mount_point = at) t.mounts then begin
    t.mounts <- List.filter (fun m -> m.mount_point <> at) t.mounts;
    Ok ()
  end
  else Error Ksim.Errno.EINVAL

let resolve t path =
  List.find_map
    (fun m ->
      match Kspec.Fs_spec.strip_prefix m.mount_point path with
      | Some rest -> Some (m, rest)
      | None -> None)
    t.mounts

let supervisor_at t path =
  match resolve t path with Some (m, _) -> m.sup | None -> None

let supervisors t =
  List.filter_map (fun m -> Option.map (fun s -> (m.mount_point, s)) m.sup) t.mounts

let epoch_at t path =
  match resolve t path with
  | Some ({ sup = Some s; _ }, _) -> Ksim.Supervisor.epoch s
  | Some ({ sup = None; _ }, _) | None -> 0

let validate_epoch t path handle_epoch =
  match resolve t path with
  | Some ({ sup = Some s; _ }, _) -> Ksim.Supervisor.validate s handle_epoch
  | Some ({ sup = None; _ }, _) -> Ok ()
  | None -> Error Ksim.Errno.ENOENT

let is_read_only_op : Kspec.Fs_spec.op -> bool = function
  | Read _ | Readdir _ | Stat _ -> true
  | _ -> false

(* One dispatch through a mount's firewall.  Unsupervised mounts call
   straight through, as before.  A [Failed] (escalated) mount serves
   reads from its last instance — degraded reads-only mode — with a
   belt-and-braces containment of its own, and refuses mutations.

   [handle_epoch] is the generation stamped on the handle the operation
   came through (an fd in [File_ops]).  The check runs *inside* the
   containment thunk: the supervisor may perform its deferred
   microreboot at the top of [call], and a stale handle must not reach
   the rebuilt instance — not even on the very call that triggered the
   reboot. *)
let dispatch_mount ?handle_epoch m (op : Kspec.Fs_spec.op) : Kspec.Fs_spec.result =
  match m.sup with
  | None -> Iface.instance_apply m.fs op
  | Some sup ->
      let ( let* ) = Ksim.Errno.( let* ) in
      let validate_handle () =
        match handle_epoch with
        | Some epoch -> Ksim.Supervisor.validate sup epoch
        | None -> Ok ()
      in
      if Ksim.Supervisor.state sup = Ksim.Supervisor.Failed && is_read_only_op op then
        let* () = validate_handle () in
        (try Iface.instance_apply m.fs op with _ -> Error Ksim.Errno.EIO)
      else
        Ksim.Supervisor.call ~label:(Iface.instance_name m.fs) sup (fun () ->
            let* () = validate_handle () in
            Iface.instance_apply m.fs op)

(* Rebase an operation into the target file system's namespace.  Rename
   across mounts is refused with EXDEV, like the real syscall. *)
let apply_gen ?handle_epoch t (op : Kspec.Fs_spec.op) : Kspec.Fs_spec.result =
  let open Kspec.Fs_spec in
  let dispatch path make_op =
    match resolve t path with
    | None -> Error Ksim.Errno.ENOENT
    | Some (m, rest) -> dispatch_mount ?handle_epoch m (make_op rest)
  in
  match op with
  | Create p -> dispatch p (fun rest -> Create rest)
  | Mkdir p -> dispatch p (fun rest -> Mkdir rest)
  | Write { file; off; data } -> dispatch file (fun file -> Write { file; off; data })
  | Read { file; off; len } -> dispatch file (fun file -> Read { file; off; len })
  | Truncate (p, size) -> dispatch p (fun rest -> Truncate (rest, size))
  | Unlink p -> dispatch p (fun rest -> Unlink rest)
  | Rmdir p -> dispatch p (fun rest -> Rmdir rest)
  | Rename (src, dst) -> (
      match (resolve t src, resolve t dst) with
      | Some (m1, r1), Some (m2, r2) when m1.mount_point = m2.mount_point ->
          dispatch_mount ?handle_epoch m1 (Rename (r1, r2))
      | Some _, Some _ -> Error Ksim.Errno.EXDEV
      | None, _ | _, None -> Error Ksim.Errno.ENOENT)
  | Readdir p -> dispatch p (fun rest -> Readdir rest)
  | Stat p -> dispatch p (fun rest -> Stat rest)
  | Fsync ->
      (* fsync fans out to every mounted file system. *)
      List.fold_left
        (fun acc m ->
          match (acc, dispatch_mount ?handle_epoch m Fsync) with
          | Error e, _ -> Error e
          | Ok _, r -> r)
        (Ok Unit) t.mounts

let apply t op = apply_gen t op
let apply_stamped t ~epoch op = apply_gen ~handle_epoch:epoch t op

(* Merge the mounted file systems' abstract states under their mount
   points — the whole kernel's file namespace as one spec state. *)
let interpret t =
  List.fold_left
    (fun acc m ->
      let sub = Iface.instance_interpret m.fs in
      let acc =
        (* The mount point itself must exist as a directory (unless root). *)
        if m.mount_point = [] then acc
        else Kspec.Fs_spec.Pathmap.add m.mount_point Kspec.Fs_spec.Dir acc
      in
      Kspec.Fs_spec.Pathmap.fold
        (fun path node acc -> Kspec.Fs_spec.Pathmap.add (m.mount_point @ path) node acc)
        sub acc)
    Kspec.Fs_spec.empty t.mounts
