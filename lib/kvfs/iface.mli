(** The two calling conventions a file system can present to the VFS.

    {!FS_OPS} is the modular, typed interface roadmap steps 1–2 produce:
    abstract operations, proper sum-type results, no void pointers.

    {!FS_OPS_LEGACY} is the step-0 convention Linux actually uses —
    error-pointer returns the caller must IS_ERR-check and void-pointer
    private data between [write_begin]/[write_end] (§4.2).  {!Of_legacy}
    retrofits the modular interface onto such a module: the mechanical
    part of roadmap step 1. *)

module type FS_OPS = sig
  type fs

  val fs_name : string

  val stage : int
  (** Roadmap stage: 0 unsafe, 1 modular, 2 type safe, 3 ownership safe,
      4 verified. *)

  val mkfs : unit -> fs
  val apply : fs -> Kspec.Fs_spec.op -> Kspec.Fs_spec.result
  val interpret : fs -> Kspec.Fs_spec.state
end

type instance = Instance : (module FS_OPS with type fs = 'f) * 'f -> instance
(** An FS implementation packaged with one mounted state. *)

val instance : (module FS_OPS with type fs = 'f) -> 'f -> instance
val make : (module FS_OPS with type fs = 'f) -> unit -> instance
(** [make (module F) ()] packages a freshly made file system. *)

val panicky : ?site:string -> fp:Ksim.Failpoint.t -> instance -> instance
(** Wrap an instance so every operation first consults failpoint [site]
    (default ["module.panic"]) and raises {!Ksim.Supervisor.Module_panic}
    through the modular interface when it fires — the deterministic
    oops generator the supervisor is tested against. *)

val instance_name : instance -> string
val instance_stage : instance -> int
val instance_apply : instance -> Kspec.Fs_spec.op -> Kspec.Fs_spec.result
val instance_interpret : instance -> Kspec.Fs_spec.state

module type FS_OPS_LEGACY = sig
  type fs

  val fs_name : string
  val mkfs : unit -> fs

  val lookup : fs -> string -> Ksim.Frame.Handle.t
  val create : fs -> string -> kind:Vtypes.file_kind -> Ksim.Frame.Handle.t
  val write_begin : fs -> string -> off:int -> Ksim.Frame.Handle.t
  val write_end : fs -> Ksim.Frame.Priv.t -> data:string -> int
  val read : fs -> string -> off:int -> len:int -> (string, int) Stdlib.result
  val unlink : fs -> string -> int
  val rmdir : fs -> string -> int
  val rename : fs -> string -> string -> int
  val readdir : fs -> string -> (string list, int) Stdlib.result
  val stat : fs -> string -> (Vtypes.file_kind * int, int) Stdlib.result
  val truncate : fs -> string -> int -> int
  val fsync : fs -> int
  val interpret : fs -> Kspec.Fs_spec.state
end

val errno_of_neg : int -> Ksim.Errno.t
(** Decode a C-style negative return ([EINVAL] for unknown codes). *)

module Of_legacy (L : FS_OPS_LEGACY) : FS_OPS with type fs = L.fs
