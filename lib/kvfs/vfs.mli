(** The VFS: a mount table dispatching operations to mounted file systems
    strictly through the modular {!Iface.FS_OPS} interface (roadmap
    step 1).  The dispatch cost relative to a direct call is measured by
    bench [modularity/*].

    Mounts given a [remake] factory are {e supervised}
    ({!Ksim.Supervisor}): an oops escaping the file system is contained
    to an [EIO] result, the mount quiesces (calls drain with [EINTR] on
    the supervisor's simulated clock) and then microreboots by replacing
    its instance with [remake ()] — journal replay, for a journaled FS.
    Every reboot bumps the mount {e epoch}; {!validate_epoch} refuses
    handles from dead generations with [ESTALE].  Budget exhaustion
    degrades the mount to reads-only ([EIO] on mutations). *)

type t

val create : unit -> t

val mount :
  t ->
  at:Kspec.Fs_spec.path ->
  ?remake:(unit -> Iface.instance) ->
  ?policy:Ksim.Supervisor.policy ->
  ?stats:Ksim.Kstats.t ->
  Iface.instance ->
  unit Ksim.Errno.r
(** [EBUSY] when something is already mounted at [at].  With [remake]
    the mount is supervised: [remake ()] must rebuild a fresh instance
    over the same durable state (e.g. remount the device with journal
    recovery).  [policy]/[stats] configure the supervisor. *)

val umount : t -> at:Kspec.Fs_spec.path -> unit Ksim.Errno.r

val mounts : t -> (Kspec.Fs_spec.path * string) list
(** Mount points and the names of the file systems on them. *)

val supervisor_at : t -> Kspec.Fs_spec.path -> Ksim.Supervisor.t option
(** The supervisor of the mount [path] resolves to, if supervised. *)

val supervisors : t -> (Kspec.Fs_spec.path * Ksim.Supervisor.t) list
(** Every supervised mount with its supervisor (longest mount point
    first) — e.g. to aggregate recovery-latency SLOs across mounts. *)

val epoch_at : t -> Kspec.Fs_spec.path -> int
(** Current epoch of the mount [path] resolves to (0 when unsupervised
    or unresolved) — what open handles record at mint time. *)

val validate_epoch : t -> Kspec.Fs_spec.path -> int -> unit Ksim.Errno.r
(** [ESTALE] when [path]'s mount has rebooted past the handle's epoch;
    [ENOENT] when nothing resolves. *)

val apply : t -> Kspec.Fs_spec.op -> Kspec.Fs_spec.result
(** Resolve the op's path to the longest-prefix mount, rebase, dispatch.
    Cross-mount rename is [EXDEV]; [Fsync] fans out to all mounts.
    Supervised mounts answer [EIO] for a contained oops, [EINTR] while
    quiescing, [ESTALE]-free (handle checks live in [File_ops]). *)

val apply_stamped : t -> epoch:int -> Kspec.Fs_spec.op -> Kspec.Fs_spec.result
(** {!apply} for an operation arriving through an epoch-stamped handle
    (an open fd).  The staleness check runs {e inside} the supervised
    mount's containment thunk, so a handle from a dead generation
    answers [ESTALE] and never reaches the rebuilt instance — including
    on the call that performs the deferred microreboot itself. *)

val interpret : t -> Kspec.Fs_spec.state
(** The whole namespace as one abstract state: each mounted file system's
    state re-rooted under its mount point. *)
