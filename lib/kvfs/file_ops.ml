(* A POSIX-ish file-descriptor layer on top of the VFS, so examples and
   workloads read like user programs: open/read/write/lseek/close. *)

type flag =
  | O_RDONLY
  | O_WRONLY
  | O_RDWR
  | O_CREAT
  | O_TRUNC
  | O_APPEND

type open_file = {
  path : Kspec.Fs_spec.path;
  mutable pos : int;
  writable : bool;
  readable : bool;
  append : bool;
  epoch : int;
      (* generation of the mount that minted this fd; a supervised
         mount that microreboots strands the fd at the old epoch and
         every subsequent use answers ESTALE *)
}

type t = {
  vfs : Vfs.t;
  fds : (int, open_file) Hashtbl.t;
  mutable next_fd : int;
}

let create vfs = { vfs; fds = Hashtbl.create 16; next_fd = 3 (* 0-2 taken, as ever *) }
let vfs t = t.vfs

let ( let* ) = Ksim.Errno.( let* )

let file_size t path =
  match Vfs.apply t.vfs (Stat path) with
  | Ok (Attr { kind = `File; size }) -> Ok size
  | Ok (Attr { kind = `Dir; _ }) -> Error Ksim.Errno.EISDIR
  | Ok _ -> Error Ksim.Errno.EIO
  | Error e -> Error e

let openf t ?(flags = [ O_RDONLY ]) path_str =
  let path = Kspec.Fs_spec.path_of_string path_str in
  let has f = List.mem f flags in
  let writable = has O_WRONLY || has O_RDWR in
  let readable = (not (has O_WRONLY)) || has O_RDWR in
  let* () =
    match Vfs.apply t.vfs (Stat path) with
    | Ok (Attr { kind = `Dir; _ }) when writable -> Error Ksim.Errno.EISDIR
    | Ok _ -> Ok ()
    | Error ENOENT when has O_CREAT -> (
        match Vfs.apply t.vfs (Create path) with Ok _ -> Ok () | Error e -> Error e)
    | Error e -> Error e
  in
  let* () =
    if has O_TRUNC && writable then
      match Vfs.apply t.vfs (Truncate (path, 0)) with Ok _ -> Ok () | Error e -> Error e
    else Ok ()
  in
  let fd = t.next_fd in
  t.next_fd <- t.next_fd + 1;
  Hashtbl.replace t.fds fd
    {
      path;
      pos = 0;
      writable;
      readable;
      append = has O_APPEND;
      epoch = Vfs.epoch_at t.vfs path;
    };
  Ok fd

let lookup_fd t fd =
  match Hashtbl.find_opt t.fds fd with Some f -> Ok f | None -> Error Ksim.Errno.EBADF

(* The stale-handle gate: an fd minted before its mount's last
   microreboot must not touch the rebuilt state. *)
let live_fd t fd =
  let* f = lookup_fd t fd in
  let* () = Vfs.validate_epoch t.vfs f.path f.epoch in
  Ok f

let close t fd =
  let* _ = lookup_fd t fd in
  Hashtbl.remove t.fds fd;
  Ok ()

let write t fd data =
  let* f = live_fd t fd in
  if not f.writable then Error Ksim.Errno.EBADF
  else
    let* off = if f.append then file_size t f.path else Ok f.pos in
    match Vfs.apply_stamped t.vfs ~epoch:f.epoch (Write { file = f.path; off; data }) with
    | Ok _ ->
        f.pos <- off + String.length data;
        Ok (String.length data)
    | Error e -> Error e

let read t fd ~len =
  let* f = live_fd t fd in
  if not f.readable then Error Ksim.Errno.EBADF
  else
    match Vfs.apply_stamped t.vfs ~epoch:f.epoch (Read { file = f.path; off = f.pos; len }) with
    | Ok (Data data) ->
        f.pos <- f.pos + String.length data;
        Ok data
    | Ok _ -> Error Ksim.Errno.EIO
    | Error e -> Error e

type whence =
  | SEEK_SET
  | SEEK_CUR
  | SEEK_END

let lseek t fd offset whence =
  let* f = live_fd t fd in
  let* base =
    match whence with
    | SEEK_SET -> Ok 0
    | SEEK_CUR -> Ok f.pos
    | SEEK_END -> file_size t f.path
  in
  let pos = base + offset in
  if pos < 0 then Error Ksim.Errno.EINVAL
  else begin
    f.pos <- pos;
    Ok pos
  end

let wrap_unit t op =
  match Vfs.apply t.vfs op with
  | Ok _ -> Ok ()
  | Error e -> Error e

let mkdir t path = wrap_unit t (Mkdir (Kspec.Fs_spec.path_of_string path))
let unlink t path = wrap_unit t (Unlink (Kspec.Fs_spec.path_of_string path))
let rmdir t path = wrap_unit t (Rmdir (Kspec.Fs_spec.path_of_string path))

let rename t src dst =
  wrap_unit t
    (Rename (Kspec.Fs_spec.path_of_string src, Kspec.Fs_spec.path_of_string dst))

let readdir t path =
  match Vfs.apply t.vfs (Readdir (Kspec.Fs_spec.path_of_string path)) with
  | Ok (Names names) -> Ok names
  | Ok _ -> Error Ksim.Errno.EIO
  | Error e -> Error e

let stat t path =
  match Vfs.apply t.vfs (Stat (Kspec.Fs_spec.path_of_string path)) with
  | Ok (Attr { kind; size }) -> Ok (kind, size)
  | Ok _ -> Error Ksim.Errno.EIO
  | Error e -> Error e

let fsync t = wrap_unit t Fsync
let open_fds t = Hashtbl.length t.fds

let fd_epoch t fd =
  match Hashtbl.find_opt t.fds fd with Some f -> Some f.epoch | None -> None
