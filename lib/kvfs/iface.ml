(* The two calling conventions a file system can present to the VFS.

   [FS_OPS] is the modular, typed interface that roadmap steps 1-2
   produce: operations are the abstract ops of [Kspec.Fs_spec], results
   are proper sum types, no void pointers anywhere.

   [FS_OPS_LEGACY] is the step-0 convention Linux actually uses: lookup
   returns an error-pointer that the caller must remember to IS_ERR-check,
   and write_begin/write_end pass fs-private state as a void pointer the
   file system casts back (the paper's §4.2 examples).  [Of_legacy]
   retrofits a modular interface onto such a module — the mechanical part
   of roadmap step 1. *)

module type FS_OPS = sig
  type fs

  val fs_name : string

  val stage : int
  (** Roadmap stage: 0 unsafe, 1 modular, 2 type safe, 3 ownership safe,
      4 verified. *)

  val mkfs : unit -> fs
  val apply : fs -> Kspec.Fs_spec.op -> Kspec.Fs_spec.result
  val interpret : fs -> Kspec.Fs_spec.state
end

type instance = Instance : (module FS_OPS with type fs = 'f) * 'f -> instance

let instance (type f) (module F : FS_OPS with type fs = f) fs = Instance ((module F), fs)

let instance_name (Instance ((module F), _)) = F.fs_name
let instance_stage (Instance ((module F), _)) = F.stage
let instance_apply (Instance ((module F), fs)) op = F.apply fs op
let instance_interpret (Instance ((module F), fs)) = F.interpret fs

let make (type f) (module F : FS_OPS with type fs = f) () = instance (module F) (F.mkfs ())

(* A panic shim around an instance: every entry point first consults a
   failpoint and, when it fires, raises a module panic *through* the
   modular interface — exactly the oops the supervisor exists to
   contain.  The wrapped instance is the closure state, so a remake
   factory that re-wraps a fresh inner instance gives the supervisor a
   rebootable panicky module. *)
let panicky ?(site = "module.panic") ~fp inner =
  let module P = struct
    type fs = unit

    let fs_name = instance_name inner ^ "+panicky"
    let stage = instance_stage inner
    let mkfs () = ()

    let apply () op =
      if Ksim.Failpoint.should_fail fp site then raise (Ksim.Supervisor.Module_panic site);
      instance_apply inner op

    let interpret () = instance_interpret inner
  end in
  instance (module P) ()

(* The unsafe, C-shaped convention --------------------------------------- *)

module type FS_OPS_LEGACY = sig
  type fs

  val fs_name : string
  val mkfs : unit -> fs

  val lookup : fs -> string -> Ksim.Frame.Handle.t
  (** Returns an inode handle, or an error encoded in pointer space. *)

  val create : fs -> string -> kind:Vtypes.file_kind -> Ksim.Frame.Handle.t

  val write_begin : fs -> string -> off:int -> Ksim.Frame.Handle.t
  (** Returns fs-private void* state to be passed back to [write_end]. *)

  val write_end : fs -> Ksim.Frame.Priv.t -> data:string -> int
  (** Casts the private state back; returns bytes written or a negative
      errno, C style. *)

  val read : fs -> string -> off:int -> len:int -> (string, int) Stdlib.result
  (** [Error] carries a negative errno. *)

  val unlink : fs -> string -> int
  (** 0 or a negative errno. *)

  val rmdir : fs -> string -> int
  val rename : fs -> string -> string -> int
  val readdir : fs -> string -> (string list, int) Stdlib.result
  val stat : fs -> string -> (Vtypes.file_kind * int, int) Stdlib.result
  val truncate : fs -> string -> int -> int
  val fsync : fs -> int
  val interpret : fs -> Kspec.Fs_spec.state
end

let errno_of_neg code =
  match Ksim.Errno.of_code (-code) with Some e -> e | None -> Ksim.Errno.EINVAL

let of_ret code : Kspec.Fs_spec.result =
  if code >= 0 then Ok Kspec.Fs_spec.Unit else Error (errno_of_neg code)

(* Retrofit: wrap a legacy module behind the modular interface.  All the
   IS_ERR-checking and errno decoding happens here, once, instead of at
   every call site. *)
module Of_legacy (L : FS_OPS_LEGACY) : FS_OPS with type fs = L.fs = struct
  type fs = L.fs

  let fs_name = L.fs_name ^ "+modular"
  let stage = 1
  let mkfs = L.mkfs

  let apply fs (op : Kspec.Fs_spec.op) : Kspec.Fs_spec.result =
    let open Kspec.Fs_spec in
    let path p = path_to_string p in
    match op with
    | Create p -> (
        match Ksim.Frame.Handle.result (L.create fs (path p) ~kind:Vtypes.Regular) with
        | Ok _ -> Ok Unit
        | Error e -> Error e)
    | Mkdir p -> (
        match Ksim.Frame.Handle.result (L.create fs (path p) ~kind:Vtypes.Directory) with
        | Ok _ -> Ok Unit
        | Error e -> Error e)
    | Write { file; off; data } -> (
        match Ksim.Frame.Handle.result (L.write_begin fs (path file) ~off) with
        | Error e -> Error e
        | Ok private_data ->
            let ret = L.write_end fs private_data ~data in
            if ret >= 0 then Ok Unit else Error (errno_of_neg ret))
    | Read { file; off; len } -> (
        match L.read fs (path file) ~off ~len with
        | Ok data -> Ok (Data data)
        | Error code -> Error (errno_of_neg code))
    | Truncate (p, size) -> of_ret (L.truncate fs (path p) size)
    | Unlink p -> of_ret (L.unlink fs (path p))
    | Rmdir p -> of_ret (L.rmdir fs (path p))
    | Rename (p, q) -> of_ret (L.rename fs (path p) (path q))
    | Readdir p -> (
        match L.readdir fs (path p) with
        | Ok names -> Ok (Names names)
        | Error code -> Error (errno_of_neg code))
    | Stat p -> (
        match L.stat fs (path p) with
        | Ok (Vtypes.Regular, size) -> Ok (Attr { kind = `File; size })
        | Ok (Vtypes.Directory, _) -> Ok (Attr { kind = `Dir; size = 0 })
        | Error code -> Error (errno_of_neg code))
    | Fsync -> of_ret (L.fsync fs)

  let interpret = L.interpret
end
