(* The driver core: walk the tree, parse, run rules, attribute findings
   to subsystems, and reconcile against the Registry's level claims. *)

module Level = Safeos_core.Level
module Registry = Safeos_core.Registry

(* Per-file lint --------------------------------------------------------- *)

let binding_name vb =
  let open Parsetree in
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ } | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> txt
  | _ -> ""

let rec lint_structure ~file ~prefix structure =
  List.concat_map (lint_item ~file ~prefix) structure

and lint_item ~file ~prefix item =
  let open Parsetree in
  match item.pstr_desc with
  | Pstr_value (_, vbs) ->
      List.concat_map
        (fun vb ->
          let fname = prefix ^ binding_name vb in
          Checks.simple_rules ~file ~fname (`Vb vb)
          @ Checks.r2_check ~file ~fname vb.pvb_expr
          @ Checks.r3_check ~annot:(Annot.of_attributes vb.pvb_attributes) ~file ~fname
              vb.pvb_expr)
        vbs
  | Pstr_eval (e, _) ->
      Checks.simple_rules ~file ~fname:prefix (`Expr e)
      @ Checks.r2_check ~file ~fname:prefix e
      @ Checks.r3_check ~file ~fname:prefix e
  | Pstr_module mb -> lint_module ~file ~prefix mb.pmb_name.txt mb.pmb_expr
  | Pstr_recmodule mbs ->
      List.concat_map (fun mb -> lint_module ~file ~prefix mb.pmb_name.txt mb.pmb_expr) mbs
  | Pstr_include { pincl_mod; _ } -> lint_module ~file ~prefix None pincl_mod
  | _ -> []

and lint_module ~file ~prefix name mexpr =
  let open Parsetree in
  let prefix = match name with Some n -> prefix ^ n ^ "." | None -> prefix in
  match mexpr.pmod_desc with
  | Pmod_structure structure -> lint_structure ~file ~prefix structure
  | Pmod_functor (_, body) -> lint_module ~file ~prefix None body
  | Pmod_constraint (m, _) -> lint_module ~file ~prefix None m
  | _ -> []

type file_result = (Finding.t list, string) result

let lint_file ~root rel : file_result =
  match Kparse.parse (Filename.concat root rel) with
  | Error msg -> Error msg
  | Ok structure -> Ok (lint_structure ~file:rel ~prefix:"" structure)

(* Tree lint ------------------------------------------------------------- *)

type tree_result = {
  findings : Finding.t list; (* sorted by file/line/rule; includes kracer's *)
  parse_errors : (string * string) list; (* file, message *)
  files : string list;
  effective_loc : int; (* total effective lines linted *)
  kracer : Kracer.result; (* the interprocedural pass: lock graph + R6 *)
  kown : Kown.result; (* the ownership pass: R8-R11 + summaries *)
  ktcb : Ktcb.result;
      (* the frame-confinement pass: R12-R14 + the TCB metric.  Kept out
         of [findings] — its ratchet is the tcb.baseline count file, not
         the line-anchored ladder baseline. *)
  kverify : Kverify.result;
      (* the "verified means checked" pass: statically visible krefine
         harness registrations.  R15 itself needs the live registry, so
         the driver synthesizes it via [Kverify.r15] and feeds the
         findings through the same reconciliation. *)
  kdur : Kdur.result;
      (* the barrier-discipline pass: R16-R18 + durability transfers.
         Kept out of [findings] like ktcb's — its ratchet is the
         dur.baseline count file, not the line-anchored ladder baseline
         (the journal's ?barriers:false ablation is a deliberate,
         statically reachable missing-flush path). *)
}

let lint_tree ~root =
  let files = Loc.ml_files_under ~root "lib" in
  (* parse each file once; the per-file rules and the interprocedural
     pass walk the same trees *)
  let parsed, parse_errors =
    List.fold_left
      (fun (ok, errs) rel ->
        match Kparse.parse (Filename.concat root rel) with
        | Ok structure -> ((rel, structure) :: ok, errs)
        | Error msg -> (ok, (rel, msg) :: errs))
      ([], []) files
  in
  let parsed = List.rev parsed in
  let findings =
    List.concat_map (fun (rel, structure) -> lint_structure ~file:rel ~prefix:"" structure)
      parsed
  in
  let kracer = Kracer.analyze ~root parsed in
  let kown = Kown.analyze ~root parsed in
  let ktcb = Ktcb.analyze ~root parsed ~summaries:kown.Kown.summaries in
  let kdur = Kdur.analyze ~root parsed in
  {
    findings = Finding.sort (kown.Kown.findings @ kracer.Kracer.findings @ findings);
    parse_errors = List.rev parse_errors;
    files;
    effective_loc =
      List.fold_left (fun acc rel -> acc + Loc.count_file (Filename.concat root rel)) 0 files;
    kracer;
    kown;
    ktcb;
    kverify = Kverify.scan parsed;
    kdur;
  }

(* Reconciliation -------------------------------------------------------- *)

type attributed = {
  finding : Finding.t;
  sub : string;
  level : Level.t; (* the level the subsystem claims *)
  forbidden : bool; (* does the claimed level rule out this bug class? *)
  baselined : bool;
}

type reconciliation = {
  attributed : attributed list;
  violations : attributed list; (* forbidden and not baselined: fatal *)
  stale_baseline : Baseline.entry list; (* ratchet progress *)
}

(* A finding's claimed level: the live registry wins for registered
   subsystems (so a level bump immediately tightens the linter), the
   static map covers the rest. *)
let claim_level registry (claim : Subsystem.claim) =
  match registry with
  | Some r when claim.Subsystem.registered -> (
      match Registry.find r claim.Subsystem.sub with
      | Some e -> e.Registry.level
      | None -> claim.Subsystem.level)
  | _ -> claim.Subsystem.level

let reconcile ?(claim_of = Subsystem.claim_of_path) ?registry ~baseline findings =
  let attributed =
    List.map
      (fun (f : Finding.t) ->
        let claim = claim_of f.Finding.file in
        let level = claim_level registry claim in
        {
          finding = f;
          sub = claim.Subsystem.sub;
          level;
          forbidden = Level.prevents level (Finding.bug_class f.Finding.rule);
          baselined = Baseline.mem baseline f;
        })
      findings
  in
  {
    attributed;
    violations = List.filter (fun a -> a.forbidden && not a.baselined) attributed;
    stale_baseline = Baseline.stale baseline findings;
  }
