(* Sparse-style lock-context annotations, the klint analogue of the
   kernel's __must_hold/__acquires/__releases.

   Annotations live in doc comments on [.ml]/[.mli] items (the compiler
   parser attaches those as [ocaml.doc] attributes, so kracer sees
   exactly what the build sees), or — mostly for fixtures — as plain
   attributes with a string payload:

     (** Updates the cached size.  @must_hold: i_lock *)
     let set_size_locked i n = ...

     let helper l = ... [@@acquires "l"]

   Grammar, per line of the doc text:

     @must_hold: lock [, lock ...]   held at entry AND exit
     @acquires:  lock [, lock ...]   taken by the function (net +1)
     @releases:  lock [, lock ...]   dropped by the function (net -1)

   Lock names are *classes*: the identifier a lock travels through
   (variable or record field, e.g. [i_lock] for [vnode.i_lock]) which by
   the naming convention is also the prefix of the runtime lock name
   before the [:instance] suffix ([i_lock:7]).  [lock_class] performs
   both collapses.

   kown's ownership contracts ride the same grammar:

     @consumes: p [, p ...]    the named parameters are freed/moved by
                               the call; the caller must not use them after
     @borrows: p [, p ...]     the named parameters are only borrowed —
                               ownership stays with the caller
     @returns_owned            the result is a fresh owned object the
                               caller must free or transfer

   kdur's durability contracts too:

     @flushes: h [, h ...]     the function issues a full barrier on the
                               named io handles (parameters or fields);
                               pending writes through them are durable at
                               return
     @durable                  every write the function acks with [Ok] is
                               on stable media at return — the fsync
                               contract
     @orders_after: h [, ...]  the function's writes are ordered after
                               whatever is pending on the named handles;
                               the *caller* keeps the flush obligation
                               (a forwarding wrapper re-exporting the
                               barrier responsibility it did not perform) *)

type t = {
  must_hold : string list;  (** held at entry and exit *)
  acquires : string list;  (** net-acquired by the function *)
  releases : string list;  (** net-released by the function *)
  consumes : string list;  (** parameters freed/moved by the call (kown) *)
  borrows : string list;  (** parameters only borrowed, never consumed (kown) *)
  returns_owned : bool;  (** result is a fresh owned object (kown) *)
  flushes : string list;  (** io handles fully flushed before return (kdur) *)
  durable : bool;  (** acked writes are on stable media at return (kdur) *)
  orders_after : string list;  (** flush obligation re-exported to the caller (kdur) *)
}

let empty =
  {
    must_hold = [];
    acquires = [];
    releases = [];
    consumes = [];
    borrows = [];
    returns_owned = false;
    flushes = [];
    durable = false;
    orders_after = [];
  }

let is_empty a =
  a.must_hold = [] && a.acquires = [] && a.releases = [] && a.consumes = []
  && a.borrows = [] && a.flushes = [] && a.orders_after = []
  && (not a.returns_owned)
  && not a.durable

let dedup l = List.sort_uniq String.compare l

let union a b =
  {
    must_hold = dedup (a.must_hold @ b.must_hold);
    acquires = dedup (a.acquires @ b.acquires);
    releases = dedup (a.releases @ b.releases);
    consumes = dedup (a.consumes @ b.consumes);
    borrows = dedup (a.borrows @ b.borrows);
    returns_owned = a.returns_owned || b.returns_owned;
    flushes = dedup (a.flushes @ b.flushes);
    durable = a.durable || b.durable;
    orders_after = dedup (a.orders_after @ b.orders_after);
  }

(* [lock_class "vnode.i_lock"] = ["i_lock"]; [lock_class "i_lock:7"] =
   [lock_class "i_lock:%d"] = ["i_lock"].  The dot collapse keys a lock
   by the field/variable carrying it; the colon/percent collapse maps
   runtime instance names (and the format strings minting them) back to
   the class. *)
let lock_class name =
  let name =
    match String.rindex_opt name '.' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  let cut sep s =
    match String.index_opt s sep with Some i -> String.sub s 0 i | None -> s
  in
  cut ':' (cut '%' name)

(* Parsing ---------------------------------------------------------------- *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = ':' || c = '\''

(* Lock names after a marker: comma/space-separated identifiers, stopping
   at the first token that is not one (so prose after the list is fine). *)
let parse_names s =
  let toks =
    String.split_on_char ' ' (String.map (fun c -> if c = ',' || c = '\t' then ' ' else c) s)
    |> List.filter (fun t -> t <> "")
  in
  let rec take acc = function
    | tok :: rest when String.for_all is_ident_char tok ->
        take (lock_class tok :: acc) rest
    | _ -> List.rev acc
  in
  take [] toks

let markers =
  [
    ("@must_hold", fun a names -> { a with must_hold = dedup (names @ a.must_hold) });
    ("@acquires", fun a names -> { a with acquires = dedup (names @ a.acquires) });
    ("@releases", fun a names -> { a with releases = dedup (names @ a.releases) });
    ("@consumes", fun a names -> { a with consumes = dedup (names @ a.consumes) });
    ("@borrows", fun a names -> { a with borrows = dedup (names @ a.borrows) });
    ("@flushes", fun a names -> { a with flushes = dedup (names @ a.flushes) });
    ("@orders_after", fun a names -> { a with orders_after = dedup (names @ a.orders_after) });
  ]

(* Boolean markers take no name list; a trailing ident char means the
   token is some longer, unrelated word. *)
let boolean_markers =
  [
    ("@returns_owned", fun a -> { a with returns_owned = true });
    ("@durable", fun a -> { a with durable = true });
  ]

(* One line of doc text: "@marker: names..." (the colon is optional). *)
let parse_line acc line =
  let line = String.trim line in
  let acc =
    List.fold_left
      (fun acc (m, apply) ->
        let ml = String.length m in
        if
          String.length line >= ml
          && String.sub line 0 ml = m
          && (String.length line = ml || not (is_ident_char line.[ml]))
        then apply acc
        else acc)
      acc boolean_markers
  in
  List.fold_left
    (fun acc (marker, apply) ->
      let ml = String.length marker in
      if String.length line > ml && String.sub line 0 ml = marker then
        let rest = String.sub line ml (String.length line - ml) in
        let rest =
          let r = String.trim rest in
          if String.length r > 0 && r.[0] = ':' then String.sub r 1 (String.length r - 1)
          else r
        in
        match parse_names rest with [] -> acc | names -> apply acc names
      else acc)
    acc markers

let of_doc_text acc text =
  List.fold_left parse_line acc (String.split_on_char '\n' text)

(* Attribute extraction --------------------------------------------------- *)

let string_payload (payload : Parsetree.payload) =
  match payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let of_attributes (attrs : Parsetree.attributes) =
  List.fold_left
    (fun acc (a : Parsetree.attribute) ->
      match (a.attr_name.txt, string_payload a.attr_payload) with
      | ("ocaml.doc" | "doc" | "ocaml.text"), Some s -> of_doc_text acc s
      | "must_hold", Some s -> { acc with must_hold = dedup (parse_names s @ acc.must_hold) }
      | "acquires", Some s -> { acc with acquires = dedup (parse_names s @ acc.acquires) }
      | "releases", Some s -> { acc with releases = dedup (parse_names s @ acc.releases) }
      | "consumes", Some s -> { acc with consumes = dedup (parse_names s @ acc.consumes) }
      | "borrows", Some s -> { acc with borrows = dedup (parse_names s @ acc.borrows) }
      | "flushes", Some s -> { acc with flushes = dedup (parse_names s @ acc.flushes) }
      | "orders_after", Some s ->
          { acc with orders_after = dedup (parse_names s @ acc.orders_after) }
      (* [@@returns_owned] / [@@durable] carry no payload: an empty structure. *)
      | "returns_owned", _ -> { acc with returns_owned = true }
      | "durable", _ -> { acc with durable = true }
      | _ -> acc)
    empty attrs

(* Diagnostics: every "@word" token in a doc text that looks like one of
   our markers but is not in the grammar — the typo'd [@must_hol:] that
   would otherwise silently weaken a contract.  Standard odoc tags are
   excluded so ordinary API docs stay quiet. *)
let known_markers =
  List.map fst markers
  @ List.map fst boolean_markers
  @ [
      (* odoc's own tags, not ours to diagnose *)
      "@param"; "@raise"; "@raises"; "@return"; "@returns"; "@see"; "@since";
      "@before"; "@deprecated"; "@author"; "@version"; "@canonical"; "@inline";
      "@open"; "@closed";
    ]

let unknown_markers text =
  let tokens line =
    String.split_on_char ' '
      (String.map (fun c -> if c = '\t' then ' ' else c) (String.trim line))
    |> List.filter (fun t -> t <> "")
  in
  String.split_on_char '\n' text
  |> List.concat_map tokens
  |> List.filter_map (fun tok ->
         if String.length tok < 2 || tok.[0] <> '@' then None
         else
           let word =
             match String.index_opt tok ':' with
             | Some i -> String.sub tok 0 i
             | None -> tok
           in
           if
             String.for_all is_ident_char (String.sub word 1 (String.length word - 1))
             && not (List.mem word known_markers)
           then Some word
           else None)
  |> dedup

let pp ppf a =
  let field name = function
    | [] -> ()
    | ls -> Fmt.pf ppf "@%s: %s " name (String.concat ", " ls)
  in
  field "must_hold" a.must_hold;
  field "acquires" a.acquires;
  field "releases" a.releases;
  field "consumes" a.consumes;
  field "borrows" a.borrows;
  if a.returns_owned then Fmt.pf ppf "@returns_owned ";
  field "flushes" a.flushes;
  field "orders_after" a.orders_after;
  if a.durable then Fmt.pf ppf "@durable "
