(* The five rule passes.  All of them are sparse-style syntactic
   analyses over the parsetree:

   R1 unchecked-cast     Dyn.cast_exn use                 -> type-confusion
   R2 unchecked-err-ptr  Errptr.deref/ptr_err with no     -> null-dereference
                         dominating is_err/to_result
   R3 lock-balance       Klock.acquire without a release  -> data-race
                         on every exit path
   R4 ownership-bypass   Bytes.unsafe_* / raw aliasing    -> use-after-free
   R5 must-check         Errno.r result discarded         -> semantic

   R2 and R3 track context (checked identifiers, held locks) along the
   tree; branches merge conservatively: a check only counts when it
   dominates the use, a lock must balance on every non-diverging path. *)

open Parsetree
open Rules

(* R1 / R4 / R5: context-free pattern matches ------------------------- *)

let vb_discards_must_check vb =
  match vb.pvb_pat.ppat_desc with
  | Ppat_any -> (
      (* [let _ = f ...] — a typed wildcard [let (_ : t) = ...] is an
         explicit acknowledgment and passes, like sparse's (void) cast. *)
      match head_name vb.pvb_expr with
      | Some name when is_must_check name -> Some name
      | _ -> None)
  | _ -> None

let simple_rules ~file ~fname structure_or_expr =
  let findings = ref [] in
  let add rule loc message =
    findings := Finding.v ~rule ~file ~loc ~func:fname message :: !findings
  in
  let expr_hook it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } when path_matches ~penult:"Dyn" ~last:"cast_exn" txt ->
        add Finding.R1_unchecked_cast loc
          "Dyn.cast_exn: unchecked void* cast; use Dyn.project and handle None"
    | Pexp_ident { txt; loc }
      when (not (Subsystem.exempt_from_ownership_rule file))
           && (match List.rev (flatten txt) with
              | last :: "Bytes" :: _ ->
                  String.length last > 7 && String.sub last 0 7 = "unsafe_"
              | _ -> false) ->
        add Finding.R4_ownership_bypass loc
          (Fmt.str "%s: raw buffer sharing outside lib/ownership bypasses the ownership contracts"
             (String.concat "." (flatten txt)))
    | Pexp_apply (f, [ (Asttypes.Nolabel, arg) ]) when ident_matches ~last:"ignore" f -> (
        match head_name arg with
        | Some name when is_must_check name ->
            add Finding.R5_must_check e.pexp_loc
              (Fmt.str "result of must-check function %s discarded via ignore" name)
        | _ -> ())
    | Pexp_let (_, vbs, _) ->
        List.iter
          (fun vb ->
            match vb_discards_must_check vb with
            | Some name ->
                add Finding.R5_must_check vb.pvb_loc
                  (Fmt.str "result of must-check function %s discarded via let _" name)
            | None -> ())
          vbs
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr = expr_hook } in
  (match structure_or_expr with
  | `Expr e -> it.expr it e
  | `Vb vb -> (
      it.expr it vb.pvb_expr;
      match vb_discards_must_check vb with
      | Some name ->
          add Finding.R5_must_check vb.pvb_loc
            (Fmt.str "result of must-check function %s discarded via let _" name)
      | None -> ()));
  !findings

(* R2: err-ptr checks must dominate dereferences ----------------------- *)

module SS = Set.Make (String)

let is_errptr_check e =
  ident_matches ~penult:"Errptr" ~last:"is_err" e
  || ident_matches ~penult:"Errptr" ~last:"to_result" e

let is_errptr_use e =
  ident_matches ~penult:"Errptr" ~last:"deref" e
  || ident_matches ~penult:"Errptr" ~last:"ptr_err" e

(* Identifiers an expression checks: arguments of is_err/to_result. *)
let checked_idents_in e =
  let acc = ref SS.empty in
  let expr_hook it e =
    (match e.pexp_desc with
    | Pexp_apply (f, (Asttypes.Nolabel, arg) :: _)
      when is_errptr_check f && is_simple_ident arg ->
        acc := SS.add (expr_key arg) !acc
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr = expr_hook } in
  it.expr it e;
  !acc

let pat_mentions_errptr p =
  let found = ref false in
  let pat_hook it p =
    (match p.ppat_desc with
    | Ppat_construct ({ txt; _ }, _) -> (
        match List.rev (flatten txt) with
        | ("Err" | "Ptr") :: _ -> found := true
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let it = { Ast_iterator.default_iterator with pat = pat_hook } in
  it.pat it p;
  !found

let r2_check ~file ~fname body =
  let findings = ref [] in
  let add loc message =
    findings :=
      Finding.v ~rule:Finding.R2_unchecked_errptr ~file ~loc ~func:fname message
      :: !findings
  in
  let rec scan checked e =
    match e.pexp_desc with
    | Pexp_constraint (e', _) | Pexp_open (_, e') | Pexp_newtype (_, e') ->
        scan checked e'
    | Pexp_apply (f, args) ->
        (if is_errptr_use f then
           match args with
           | (Asttypes.Nolabel, arg) :: _
             when is_simple_ident arg && SS.mem (expr_key arg) checked ->
               ()
           | (Asttypes.Nolabel, arg) :: _ ->
               add e.pexp_loc
                 (Fmt.str
                    "err-ptr %s dereferenced with no dominating Errptr.is_err/to_result check"
                    (expr_key arg))
           | _ -> ());
        scan checked f;
        List.iter (fun (_, a) -> scan checked a) args
    | Pexp_ifthenelse (cond, then_, else_) ->
        scan checked cond;
        let checked' = SS.union checked (checked_idents_in cond) in
        scan checked' then_;
        Option.iter (scan checked') else_
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        scan checked scrut;
        let checked' =
          if
            is_simple_ident scrut
            && List.exists (fun c -> pat_mentions_errptr c.pc_lhs) cases
          then SS.add (expr_key scrut) checked
          else checked
        in
        List.iter
          (fun c ->
            Option.iter (scan checked') c.pc_guard;
            scan checked' c.pc_rhs)
          cases
    | Pexp_let (_, vbs, body) ->
        let checked' =
          List.fold_left
            (fun acc vb ->
              scan checked vb.pvb_expr;
              (* [let ok = Errptr.is_err h in ...]: assume the binding is
                 consulted before any deref — conservative in klint's
                 favor would be the opposite, but this matches sparse's
                 treatment of stored condition results. *)
              match vb.pvb_expr.pexp_desc with
              | Pexp_apply (f, (Asttypes.Nolabel, arg) :: _)
                when is_errptr_check f && is_simple_ident arg ->
                  SS.add (expr_key arg) acc
              | _ -> acc)
            checked vbs
        in
        scan checked' body
    | Pexp_sequence (a, b) ->
        scan checked a;
        scan checked b
    | Pexp_fun (_, default, _, inner) ->
        Option.iter (scan checked) default;
        scan checked inner
    | Pexp_function cases ->
        List.iter
          (fun c ->
            Option.iter (scan checked) c.pc_guard;
            scan checked c.pc_rhs)
          cases
    | _ -> iter_children (scan checked) e
  in
  scan SS.empty body;
  !findings

(* R3: lock balance on every exit path --------------------------------- *)

module SM = Map.Make (String)

let merge_delta a b =
  SM.union (fun _ x y -> match x + y with 0 -> None | n -> Some n) a b

let is_klock file = String.equal file "lib/ksim/klock.ml"

let is_acquire ~file e =
  ident_matches ~penult:"Klock" ~last:"acquire" e
  || (is_klock file && ident_matches ~last:"acquire" e)

let is_release ~file e =
  ident_matches ~penult:"Klock" ~last:"release" e
  || (is_klock file && ident_matches ~last:"release" e)

(* Does an expression diverge (tail position ends in raise/failwith/
   assert false)?  Diverging branches are exempt from lock balance: the
   exception, not the fall-through, leaves the function. *)
let rec diverges e =
  match e.pexp_desc with
  | Pexp_apply (f, _) ->
      ident_matches ~last:"raise" f
      || ident_matches ~last:"raise_notrace" f
      || ident_matches ~last:"failwith" f
      || ident_matches ~last:"invalid_arg" f
  | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
    ->
      true
  | Pexp_sequence (_, b) | Pexp_let (_, _, b) -> diverges b
  | Pexp_ifthenelse (_, t, Some e') -> diverges t && diverges e'
  | Pexp_match (_, cases) -> cases <> [] && List.for_all (fun c -> diverges c.pc_rhs) cases
  | Pexp_constraint (e', _) | Pexp_open (_, e') -> diverges e'
  | _ -> false

let r3_check ?(annot = Annot.empty) ~file ~fname binding_expr =
  let findings = ref [] in
  let add loc message =
    findings :=
      Finding.v ~rule:Finding.R3_lock_balance ~file ~loc ~func:fname message :: !findings
  in
  let add_r7 loc message =
    findings :=
      Finding.v ~rule:Finding.R7_lock_annotation ~file ~loc ~func:fname message :: !findings
  in
  (* A lock class the binding's annotation mentions: its imbalance is
     judged against the contract (R7), not the default balance rule. *)
  let annotated cl =
    List.mem cl annot.Annot.must_hold || List.mem cl annot.Annot.acquires
    || List.mem cl annot.Annot.releases
  in
  let lock_key args =
    match List.find_opt (fun (l, _) -> l = Asttypes.Nolabel) args with
    | Some (_, arg) -> expr_key arg
    | None -> "<lock>"
  in
  (* Join point: every non-diverging branch must agree on the net lock
     delta, sparse's context-balance rule. *)
  let join loc branches =
    match List.filter_map (fun (d, div) -> if div then None else Some d) branches with
    | [] -> SM.empty
    | d :: rest ->
        if List.for_all (SM.equal Int.equal d) rest then d
        else begin
          add loc
            "lock context differs between branches (held on some paths, released on others)";
          d
        end
  in
  let rec delta e : int SM.t =
    match e.pexp_desc with
    | Pexp_constraint (e', _) | Pexp_open (_, e') | Pexp_newtype (_, e') -> delta e'
    | Pexp_apply (f, args) when is_acquire ~file f ->
        merge_delta (args_delta args) (SM.singleton (lock_key args) 1)
    | Pexp_apply (f, args) when is_release ~file f ->
        merge_delta (args_delta args) (SM.singleton (lock_key args) (-1))
    | Pexp_apply (f, args) -> merge_delta (delta f) (args_delta args)
    | Pexp_sequence (a, b) -> merge_delta (delta a) (delta b)
    | Pexp_let (_, vbs, body) ->
        List.fold_left
          (fun acc vb -> merge_delta acc (delta vb.pvb_expr))
          (delta body) vbs
    | Pexp_ifthenelse (cond, then_, else_) ->
        let d_else =
          match else_ with Some e' -> (delta e', diverges e') | None -> (SM.empty, false)
        in
        merge_delta (delta cond)
          (join e.pexp_loc [ (delta then_, diverges then_); d_else ])
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        let branches =
          List.map
            (fun c ->
              Option.iter (fun g -> ignore_delta g) c.pc_guard;
              (delta c.pc_rhs, diverges c.pc_rhs))
            cases
        in
        merge_delta (delta scrut) (join e.pexp_loc branches)
    | Pexp_while (cond, body) | Pexp_for (_, _, cond, _, body) ->
        if not (SM.is_empty (delta body)) then
          add e.pexp_loc "loop body changes the lock context across iterations";
        delta cond
    | Pexp_fun _ | Pexp_function _ ->
        (* A nested closure is its own scope: check it independently,
           contribute nothing to the enclosing function's context.  The
           binding's annotation describes the outer body only. *)
        check_scope ~top:false e;
        SM.empty
    | _ ->
        let acc = ref SM.empty in
        iter_children (fun child -> acc := merge_delta !acc (delta child)) e;
        !acc
  and args_delta args =
    List.fold_left (fun acc (_, a) -> merge_delta acc (delta a)) SM.empty args
  and ignore_delta e = ignore (delta e : int SM.t)
  and check_scope ~top e =
    match e.pexp_desc with
    | Pexp_fun (_, default, _, inner) ->
        Option.iter ignore_delta default;
        check_scope ~top inner
    | Pexp_newtype (_, inner) | Pexp_constraint (inner, _) -> check_scope ~top inner
    | Pexp_function cases ->
        List.iter (fun c -> check_body ~top c.pc_rhs) cases
    | _ -> check_body ~top e
  and check_body ~top body =
    let d = delta body in
    (* collapse the expression-keyed delta onto lock classes so it can
       meet the class-level annotation contract *)
    let by_class =
      SM.fold
        (fun lock n acc ->
          let cl = Annot.lock_class lock in
          SM.update cl (fun prev -> Some (Option.value ~default:0 prev + n)) acc)
        d SM.empty
    in
    SM.iter
      (fun lock n ->
        if top && annotated (Annot.lock_class lock) then ()
        else if n > 0 then
          add body.pexp_loc
            (Fmt.str "lock %s acquired but not released on every exit path (use Klock.with_lock)"
               lock)
        else if n < 0 then
          add body.pexp_loc (Fmt.str "lock %s released without a matching acquire" lock))
      d;
    let net cl = Option.value ~default:0 (SM.find_opt cl by_class) in
    if not top then ()
    else begin
    List.iter
      (fun cl ->
        if net cl <> 1 then
          add_r7 body.pexp_loc
            (Fmt.str "declared @acquires %s but the body's net effect on it is %+d" cl (net cl)))
      annot.Annot.acquires;
    List.iter
      (fun cl ->
        if net cl <> -1 then
          add_r7 body.pexp_loc
            (Fmt.str "declared @releases %s but the body's net effect on it is %+d" cl (net cl)))
      annot.Annot.releases;
    List.iter
      (fun cl ->
        if net cl <> 0 then
          add_r7 body.pexp_loc
            (Fmt.str
               "declared @must_hold %s (caller-held) but the body changes its balance by %+d"
               cl (net cl)))
      annot.Annot.must_hold
    end
  in
  check_scope ~top:true binding_expr;
  !findings
