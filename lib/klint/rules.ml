(* Shared syntactic predicates for the rule passes: longident shapes,
   application heads, and the must-check function list.

   Everything here is deliberately *syntactic* — klint is a sparse-style
   checker over the parsetree, not a type checker, so rules match the
   qualified names code actually writes ([Ksim.Dyn.cast_exn],
   [Klock.acquire], ...) and accept the same class of approximation
   sparse does. *)

open Parsetree

let flatten lid = Longident.flatten lid

(* [path_matches ~last ~penult lid]: the path's final component equals
   [last] and, when [penult] is given, the component before it equals
   [penult] (so [Ksim.Dyn.cast_exn] and [Dyn.cast_exn] both match
   ~penult:"Dyn" ~last:"cast_exn", while a local [cast_exn] does not). *)
let path_matches ?penult ~last lid =
  match List.rev (flatten lid) with
  | l :: rest when String.equal l last -> (
      match penult with
      | None -> true
      | Some p -> ( match rest with q :: _ -> String.equal q p | [] -> false))
  | _ -> false

let ident_matches ?penult ~last e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> path_matches ?penult ~last txt
  | _ -> false

(* Strip the wrappers that do not change what expression is "meant". *)
let rec strip e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) -> strip e
  | _ -> e

(* The head identifier of an application chain, as its final path
   component: [L.read fs path ~off] -> Some "read". *)
let head_name e =
  let e = strip e in
  let head = match e.pexp_desc with Pexp_apply (f, _) -> strip f | _ -> e in
  match head.pexp_desc with
  | Pexp_ident { txt; _ } -> ( match List.rev (flatten txt) with l :: _ -> Some l | [] -> None)
  | _ -> None

(* A simple name for an expression, used to correlate "x was checked"
   with "x was dereferenced" (R2) and to key locks (R3):
   idents and field chains render as dotted paths, anything else is
   opaque. *)
let rec expr_key e =
  match (strip e).pexp_desc with
  | Pexp_ident { txt; _ } -> String.concat "." (flatten txt)
  | Pexp_field (e', { txt; _ }) -> expr_key e' ^ "." ^ String.concat "." (flatten txt)
  | _ -> "<expr>"

let is_simple_ident e =
  match (strip e).pexp_desc with Pexp_ident _ -> true | _ -> false

(* Functions returning ['a Errno.r] (or an err-ptr) whose result must
   not be discarded — the sparse [__must_check] list, maintained by
   hand because klint does not type-check.  Names are matched as the
   final path component of the ignored application's head. *)
let must_check =
  [
    "apply"; "apply_upper"; "submit_write"; "create"; "read"; "write_end"; "unlink";
    "truncate"; "send"; "connect"; "listen"; "connect_pair"; "to_result";
  ]

let is_must_check name = List.mem name must_check

(* Fold an expression's immediate children through [f] — the generic
   recursion both stateful passes (R2, R3) fall back on for syntax they
   do not interpret specially. *)
let iter_children f e =
  let it =
    { Ast_iterator.default_iterator with expr = (fun _ child -> f child) }
  in
  Ast_iterator.default_iterator.expr it e
