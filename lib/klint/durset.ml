(* The per-function durability walk kdur's interprocedural analysis is
   built from — the static twin of {!Kblock.Wcache}'s runtime
   barrier-discipline audit, and klint's third walk module after
   {!Lockset} and {!Ownset}.

   For one function body, thread an abstract device state:

     volatile    the device may hold acknowledged-but-unflushed writes
                 issued since entry (entry assumed clean)
     dirty_out   the same outcome under the opposite entry assumption, so
                 one walk summarizes the function as a transfer on the
                 caller's pending set: a write sets both, a barrier
                 clears both, a call composes the callee's pair
     vkeys       binding keys tied to still-volatile content: payload
                 keys of volatile writes, bindings read back from the
                 device while volatile (Wcache's taint), and bindings
                 derived from either
     obligation  a call site whose callee exported its flush obligation
                 ([@orders_after]) that no barrier has covered yet

   Io operations are matched syntactically, the way the tree writes
   them: record-field applications [h.Io.write], [h.Io.flush],
   [h.Io.read], [h.Io.write_fua] (any field path whose penultimate
   component is [Io]) plus the module-level compat shim [Io.fua].
   [flush] is a full barrier and there is one device per function —
   Wcache's own semantics — so a barrier clears everything.  Keys rooted
   at the write's own handle do not count as payload: every operation
   through [j.io] mentions [j], and that is plumbing, not data flow.

   Three rules:

     R16  a write (direct or through a summarized callee) whose payload
          mentions a key still tied to volatile content — content a
          crash can lose — with no intervening barrier: the static twin
          of the audit's read-back-then-dependent-write violation
     R17  in a function contracted [@durable]: an [Ok] acknowledgement
          constructed (outside nested lambdas) while the device is
          volatile — the missing-barrier journal mutant's signature —
          or, failing that, any path reaching return still volatile
     R18  exit is volatile, part of that volatility arrived through a
          callee that explicitly re-exported its flush obligation
          ([@orders_after]), and this function neither flushed nor
          carries a durability contract of its own: the obligation
          evaporated at a wrapper boundary

   Closures passed as call arguments are walked with effects retained
   (the run-now combinator idiom: [write_all], [List.iter], retry
   runners); other lambdas — record fields minting an [Io.t], deferred
   thunks — are walked from a fresh state for findings only.  Partial
   applications and unresolved calls are durability-neutral — the
   documented unsoundness the Wcache-audit reconciliation exists to
   catch. *)

open Parsetree
open Rules
module SS = Set.Make (String)

(* The per-function transfer kdur propagates over the call graph. *)
type summary = {
  out_clean : bool;  (** device volatile at exit when entered clean *)
  out_dirty : bool;  (** device volatile at exit when entered dirty *)
  writes : bool;  (** issues device writes, directly or via callees *)
  flushes : bool;  (** performs a full barrier on some path *)
}

(* The neutral transfer — also the fixpoint's starting point: effects
   only turn on as callee summaries arrive. *)
let empty_summary =
  { out_clean = false; out_dirty = true; writes = false; flushes = false }

let summary_equal a b =
  Bool.equal a.out_clean b.out_clean
  && Bool.equal a.out_dirty b.out_dirty
  && Bool.equal a.writes b.writes
  && Bool.equal a.flushes b.flushes

(* Primitive classification ---------------------------------------------- *)

type prim =
  | P_write of expression  (** handle; acknowledged volatile *)
  | P_fua of expression option  (** durable on ack, self-ordered only *)
  | P_flush
  | P_read of expression
  | P_none

let classify f args =
  match (strip f).pexp_desc with
  | Pexp_field (h, { txt; _ }) when path_matches ~penult:"Io" ~last:"write" txt ->
      P_write h
  | Pexp_field (h, { txt; _ }) when path_matches ~penult:"Io" ~last:"write_fua" txt
    ->
      P_fua (Some h)
  | Pexp_field (_, { txt; _ }) when path_matches ~penult:"Io" ~last:"flush" txt ->
      P_flush
  | Pexp_field (h, { txt; _ }) when path_matches ~penult:"Io" ~last:"read" txt ->
      P_read h
  | _ when ident_matches ~penult:"Io" ~last:"fua" f -> P_fua (Ownset.nth_nolabel 0 args)
  | _ -> P_none

let root_of k =
  match String.index_opt k '.' with Some i -> String.sub k 0 i | None -> k

(* Payload keys of a write: every key its arguments mention, except those
   rooted at the write's own handle. *)
let payload_keys ?handle args =
  let hroot =
    match handle with
    | Some h ->
        let k = expr_key h in
        if Ownset.tracked k then Some (root_of k) else None
    | None -> None
  in
  List.fold_left (fun acc (_, a) -> SS.union acc (Ownset.mentioned_keys a)) SS.empty args
  |> SS.filter (fun k ->
         match hroot with Some r -> not (String.equal (root_of k) r) | None -> true)

(* The walk -------------------------------------------------------------- *)

type state = {
  volatile : bool;
  dirty_out : bool;
  vkeys : SS.t;
  obligation : (Location.t * string) option;
}

let clean_state =
  { volatile = false; dirty_out = true; vkeys = SS.empty; obligation = None }

(* [summarize cg lookup func] walks [func] under the interprocedural
   summaries [lookup] and returns the function's own transfer.  [emit]
   receives findings — the fixpoint passes [ignore], the final reporting
   pass collects. *)
let summarize ?(emit = fun (_ : Finding.t) -> ()) (cg : Callgraph.t)
    (lookup : string -> summary) (func : Callgraph.func) : summary =
  let fname = Callgraph.name func in
  let finding rule loc msg =
    emit (Finding.v ~rule ~file:func.Callgraph.file ~loc ~func:fname msg)
  in
  let annot = func.Callgraph.annot in
  let wrote = ref false in
  let flushed = ref false in
  let r17_fired = ref false in
  let resolve f =
    match (strip f).pexp_desc with
    | Pexp_ident { txt; _ } -> Callgraph.resolve cg ~caller:func (flatten txt)
    | _ -> None
  in
  (* Callee contract at a call site: the annotation wins when present,
     otherwise the inferred summary.  [@flushes]/[@durable] promise a
     full barrier before return; [@orders_after] promises volatile
     writes the caller must order. *)
  let callee_transfer (g : Callgraph.func) =
    let a = g.Callgraph.annot in
    if a.Annot.flushes <> [] || a.Annot.durable then
      { out_clean = false; out_dirty = false; writes = true; flushes = true }
    else if a.Annot.orders_after <> [] then
      { out_clean = true; out_dirty = true; writes = true; flushes = false }
    else lookup (Callgraph.name g)
  in
  let barrier () =
    flushed := true;
    { volatile = false; dirty_out = false; vkeys = SS.empty; obligation = None }
  in
  let r16_check st loc pay what =
    if st.volatile then begin
      let overlap = SS.inter pay st.vkeys in
      if not (SS.is_empty overlap) then
        finding Finding.R16_unordered_write loc
          (Fmt.str
             "%s depends on %s, still volatile from an earlier write — a crash \
              can keep this write and lose what it derives from (no barrier in \
              between)"
             what
             (String.concat ", " (SS.elements overlap)))
    end
  in
  let r17_check ~lam st loc =
    if annot.Annot.durable && (not lam) && st.volatile then begin
      r17_fired := true;
      finding Finding.R17_ack_before_durable loc
        "Ok acknowledged while writes are still cache-volatile in a @durable \
         function — a crash after this ack loses acknowledged data"
    end
  in
  let join_state a b =
    {
      volatile = a.volatile || b.volatile;
      dirty_out = a.dirty_out || b.dirty_out;
      vkeys = SS.union a.vkeys b.vkeys;
      obligation = (match a.obligation with Some _ -> a.obligation | None -> b.obligation);
    }
  in
  let join pre = function
    | [] -> pre (* every branch diverges *)
    | b :: rest -> List.fold_left join_state b rest
  in
  let is_ok_construct lid =
    match List.rev (flatten lid) with "Ok" :: _ -> true | _ -> false
  in
  let rec walk ~lam st e : state =
    match e.pexp_desc with
    | Pexp_constraint (e', _) | Pexp_open (_, e') | Pexp_newtype (_, e') ->
        walk ~lam st e'
    | Pexp_apply (f, args) -> (
        match classify f args with
        | P_write h ->
            let st = args_walk ~lam st args in
            let pay = payload_keys ~handle:h args in
            r16_check st e.pexp_loc pay "write";
            wrote := true;
            { st with volatile = true; dirty_out = true; vkeys = SS.union st.vkeys pay }
        | P_fua h ->
            let st = args_walk ~lam st args in
            r16_check st e.pexp_loc (payload_keys ?handle:h args) "FUA write";
            wrote := true;
            (* durable on ack and ordered only with itself: the device
               stays as it was, and this payload is safe to depend on *)
            st
        | P_flush ->
            let (_ : state) = args_walk ~lam st args in
            barrier ()
        | P_read _ ->
            (* the taint lands on the binding, in [bind_walk] *)
            args_walk ~lam st args
        | P_none -> (
            let st = walk ~lam st f in
            let st = args_walk ~lam st args in
            match resolve f with
            | Some g when List.length args >= List.length (Ownset.params_of g.Callgraph.body)
              ->
                let tr = callee_transfer g in
                let pay =
                  if tr.writes then begin
                    (* callee handle convention: first positional arg *)
                    let pay = payload_keys ?handle:(Ownset.nth_nolabel 0 args) args in
                    r16_check st e.pexp_loc pay
                      (Fmt.str "write through %s" (Callgraph.name g));
                    wrote := true;
                    pay
                  end
                  else SS.empty
                in
                let volatile' = if st.volatile then tr.out_dirty else tr.out_clean in
                let dirty_out' = if st.dirty_out then tr.out_dirty else tr.out_clean in
                if tr.flushes then flushed := true;
                if not volatile' then
                  (* the callee's barrier covered everything pending *)
                  { volatile = false; dirty_out = dirty_out'; vkeys = SS.empty;
                    obligation = None }
                else
                  {
                    volatile = true;
                    dirty_out = dirty_out';
                    vkeys = SS.union st.vkeys pay;
                    obligation =
                      (if g.Callgraph.annot.Annot.orders_after <> [] then
                         Some (e.pexp_loc, Callgraph.name g)
                       else st.obligation);
                  }
            | Some _ (* partial application: a closure, not a call *) | None -> st))
    | Pexp_construct (lid, payload) ->
        let st = match payload with Some p -> walk ~lam st p | None -> st in
        if is_ok_construct lid.txt then r17_check ~lam st e.pexp_loc;
        st
    | Pexp_sequence (a, b) -> walk ~lam (walk ~lam st a) b
    | Pexp_let (_, vbs, body) ->
        let st =
          List.fold_left (fun st vb -> bind_walk ~lam st vb.pvb_pat vb.pvb_expr) st vbs
        in
        walk ~lam st body
    | Pexp_letop { let_; ands; body } ->
        let st = bind_walk ~lam st let_.pbop_pat let_.pbop_exp in
        let st =
          List.fold_left (fun st a -> bind_walk ~lam st a.pbop_pat a.pbop_exp) st ands
        in
        walk ~lam st body
    | Pexp_ifthenelse (cond, then_, else_) ->
        let st = walk ~lam st cond in
        let branches =
          then_ :: Option.to_list else_
          |> List.filter_map (fun b ->
                 let after = walk ~lam st b in
                 if Checks.diverges b then None else Some after)
        in
        let branches = if else_ = None then st :: branches else branches in
        join st branches
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        let st = walk ~lam st scrut in
        (* [match io.read k with Ok prev -> ...] binds volatile content just
           like [let* prev = read k in ...] does: every variable the case
           patterns bind is tied to the scrutinee. *)
        let scrut_volatile = st.volatile && tied_to_volatile st scrut in
        let branches =
          List.filter_map
            (fun c ->
              let st_c =
                if scrut_volatile then
                  { st with
                    vkeys =
                      List.fold_left (fun ks v -> SS.add v ks) st.vkeys
                        (Ownset.pattern_vars c.pc_lhs);
                  }
                else st
              in
              Option.iter (fun g -> ignore (walk ~lam st_c g : state)) c.pc_guard;
              let after = walk ~lam st_c c.pc_rhs in
              if Checks.diverges c.pc_rhs then None else Some after)
            cases
        in
        join st branches
    | Pexp_fun (_, default, _, inner) ->
        (* a deferred lambda: a function body in its own right, walked
           from a fresh state for findings only *)
        Option.iter (fun d -> ignore (walk ~lam st d : state)) default;
        ignore (walk ~lam:true clean_state (Ownset.strip_funs inner) : state);
        st
    | Pexp_function cases ->
        List.iter
          (fun c ->
            Option.iter (fun g -> ignore (walk ~lam:true clean_state g : state)) c.pc_guard;
            ignore (walk ~lam:true clean_state c.pc_rhs : state))
          cases;
        st
    | Pexp_while (cond, body) ->
        let st = walk ~lam st cond in
        join st [ st; walk ~lam st body ]
    | Pexp_for (_, lo, hi, _, body) ->
        let st = walk ~lam (walk ~lam st lo) hi in
        join st [ st; walk ~lam st body ]
    | _ ->
        let acc = ref st in
        iter_children (fun child -> acc := walk ~lam !acc child) e;
        !acc
  (* A closure in argument position may run right here ([write_all],
     [List.iter], retry runners): its device effects are the call's. *)
  and args_walk ~lam st args =
    List.fold_left
      (fun st (_, a) ->
        match (strip a).pexp_desc with
        | Pexp_fun _ -> walk ~lam:true st (Ownset.strip_funs a)
        | Pexp_function cases ->
            List.fold_left
              (fun acc c -> join_state acc (walk ~lam:true st c.pc_rhs))
              st cases
        | _ -> walk ~lam st a)
      st args
  (* A let binding: walk the RHS, then decide whether the bound name is
     tied to volatile content — read back from the device while volatile
     (the Wcache taint) or derived from an already-tied key. *)
  and bind_walk ~lam st pat rhs =
    let st = walk ~lam st rhs in
    match pat.ppat_desc with
    | Ppat_var { txt; _ }
    | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) ->
        if st.volatile && tied_to_volatile st rhs then
          { st with vkeys = SS.add txt st.vkeys }
        else { st with vkeys = SS.remove txt st.vkeys }
    | _ -> st
  (* Is this expression's value tied to still-volatile device content —
     read back from the device while dirty (the Wcache taint), or derived
     from a name already so tied? *)
  and tied_to_volatile st e =
    let read_back =
      match (strip e).pexp_desc with
      | Pexp_apply (f, args) -> (
          match classify f args with P_read _ -> true | _ -> false)
      | _ -> false
    in
    read_back || not (SS.is_empty (SS.inter (Ownset.mentioned_keys e) st.vkeys))
  in
  let body = Ownset.strip_funs func.Callgraph.body in
  let st_final = walk ~lam:false clean_state body in
  (* R17 trigger 2: some path reaches return still volatile.  Skipped
     when trigger 1 already named the precise ack site. *)
  if annot.Annot.durable && st_final.volatile && not !r17_fired then
    finding Finding.R17_ack_before_durable func.Callgraph.loc
      (Fmt.str "@durable %s may return with writes still cache-volatile (no barrier on \
                some path)"
         fname);
  (* R18: an @orders_after obligation was acquired, never covered by a
     barrier, and this function states no durability contract of its own. *)
  let has_contract =
    annot.Annot.flushes <> [] || annot.Annot.durable || annot.Annot.orders_after <> []
  in
  (match st_final.obligation with
  | Some (loc, callee) when st_final.volatile && not has_contract ->
      finding Finding.R18_barrier_elision loc
        (Fmt.str
           "%s forwards %s, which re-exports its flush obligation (@orders_after), \
            but neither flushes nor re-exports it"
           fname callee)
  | _ -> ());
  {
    out_clean = st_final.volatile;
    out_dirty = st_final.dirty_out;
    writes = !wrote;
    flushes = !flushed;
  }
