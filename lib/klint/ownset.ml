(* The per-function ownership-lifetime walk kown's interprocedural
   analysis is built from — klint's analogue of what {!Lockset} is to
   kracer.

   For one function body, thread a map from binding keys (idents and
   field chains, {!Rules.expr_key}) to ownership states:

     Owned    a fresh allocation this function is responsible for
              ([local]: allocated here; [escaped]: stored/shared, so
              some other structure may now free it)
     Borrowed a capability lent for the duration of a closure
              ([Checker.lend_shared]/[lend_exclusive]), or a parameter
              declared [@borrows]
     Freed    released ([Kmem.free]/[Checker.free])
     Moved    consumed ([Checker.transfer], or passed to a call whose
              contract/summary says [@consumes] that parameter)
     Revoked  capability revoked ([Cap.revoke])

   Branch joins are MAY-unions biased towards the lethal states: a key
   freed on any surviving path counts as freed afterwards — the right
   polarity for bug-finding, the opposite of lockset's must-intersection.
   Closures are walked at their definition point with updates discarded
   (the run-immediately idiom), except lend closures, whose parameter is
   the borrow being policed.

   Four rules are emitted:

     R8   use (or store/escape) of a Freed/Moved key
     R9   free of a Freed/Moved key
     R10  (1) an [Error _] construct reached while a locally allocated,
              unescaped key is still Owned — the classic forgotten
              kfree on the error path;
          (2) at an if/else join: one branch frees a key and performs
              the same non-empty teardown (Hashtbl.remove drops) as its
              sibling, which does not free it — the "forgot the kfree in
              one arm" shape, caught without path explosion
     R11  a borrow stored or returned beyond its lend scope, a borrowed
          capability freed, or use of a revoked capability

   Unresolved calls are assumed borrowing (they only escape Owned
   arguments) — the documented unsoundness the runtime kmem-event
   reconciliation exists to catch. *)

open Parsetree
open Rules
module SM = Map.Make (String)
module SS = Set.Make (String)

type own_state =
  | Owned of { local : bool; escaped : bool }
  | Borrowed
  | Freed
  | Moved
  | Revoked

let state_to_string = function
  | Owned _ -> "owned"
  | Borrowed -> "borrowed"
  | Freed -> "freed"
  | Moved -> "moved (consumed)"
  | Revoked -> "revoked"

(* The per-function contract kown propagates over the call graph. *)
type summary = {
  consumes : SS.t;  (** parameter names freed/moved by a call *)
  returns_owned : bool;  (** result is a fresh owned object *)
}

let empty_summary = { consumes = SS.empty; returns_owned = false }

let summary_equal a b =
  SS.equal a.consumes b.consumes && Bool.equal a.returns_owned b.returns_owned

(* Primitive classification ---------------------------------------------- *)

type prim =
  | P_kmem_alloc  (** returns owned; no subject *)
  | P_kmem_use  (** read/write: subject = 1st positional arg *)
  | P_kmem_free
  | P_ck_alloc  (** returns owned *)
  | P_ck_use  (** read/write/fill/size: subject = 2nd positional arg *)
  | P_ck_free
  | P_ck_transfer  (** consumes subject, returns owned *)
  | P_ck_lend  (** lend_shared/lend_exclusive: borrow for ~f's duration *)
  | P_cap_revoke
  | P_neutral  (** is_live, check_leaks, ...: no ownership effect *)
  | P_none

let classify f =
  if ident_matches ~penult:"Kmem" ~last:"alloc" f then P_kmem_alloc
  else if
    ident_matches ~penult:"Kmem" ~last:"read" f
    || ident_matches ~penult:"Kmem" ~last:"write" f
  then P_kmem_use
  else if ident_matches ~penult:"Kmem" ~last:"free" f then P_kmem_free
  else if ident_matches ~penult:"Kmem" ~last:"is_live" f then P_neutral
  else if ident_matches ~penult:"Checker" ~last:"alloc" f then P_ck_alloc
  else if
    ident_matches ~penult:"Checker" ~last:"read" f
    || ident_matches ~penult:"Checker" ~last:"write" f
    || ident_matches ~penult:"Checker" ~last:"fill" f
    || ident_matches ~penult:"Checker" ~last:"size" f
  then P_ck_use
  else if ident_matches ~penult:"Checker" ~last:"free" f then P_ck_free
  else if ident_matches ~penult:"Checker" ~last:"transfer" f then P_ck_transfer
  else if
    ident_matches ~penult:"Checker" ~last:"lend_shared" f
    || ident_matches ~penult:"Checker" ~last:"lend_exclusive" f
  then P_ck_lend
  else if ident_matches ~penult:"Cap" ~last:"revoke" f then P_cap_revoke
  else if ident_matches ~penult:"Checker" ~last:"check_leaks" f then P_neutral
  else P_none

(* The nth positional (unlabelled) argument: Kmem primitives take the
   subject first, Checker primitives take the checker first and the
   capability second. *)
let nth_nolabel n args =
  let rec go n = function
    | [] -> None
    | (Asttypes.Nolabel, a) :: rest -> if n = 0 then Some a else go (n - 1) rest
    | _ :: rest -> go n rest
  in
  go n args

let labelled_arg name args =
  List.find_map
    (fun (l, a) ->
      match l with
      | Asttypes.Labelled n when String.equal n name -> Some a
      | _ -> None)
    args

let subject_arg prim args =
  match prim with
  | P_kmem_use | P_kmem_free | P_cap_revoke -> nth_nolabel 0 args
  | P_ck_use | P_ck_free | P_ck_transfer | P_ck_lend -> nth_nolabel 1 args
  | _ -> None

(* Syntactic helpers ------------------------------------------------------ *)

let tracked k = not (String.equal k "<expr>")

(* Every ident/field-chain key an expression mentions — the store and
   escape checks scan the stored value with this. *)
let mentioned_keys e =
  let acc = ref SS.empty in
  let rec go e =
    (match (strip e).pexp_desc with
    | Pexp_ident _ | Pexp_field _ ->
        let k = expr_key e in
        if tracked k then acc := SS.add k !acc
    | _ -> ());
    iter_children go e
  in
  go e;
  !acc

(* Parameters of a binding: the [Pexp_fun] chain, labels preserved so
   call-site arguments can be matched positionally and by label. *)
let rec params_of e =
  match e.pexp_desc with
  | Pexp_fun (lbl, _, pat, inner) ->
      let name =
        match pat.ppat_desc with
        | Ppat_var { txt; _ }
        | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) ->
            Some txt
        | _ -> None
      in
      (lbl, name) :: params_of inner
  | Pexp_newtype (_, inner) | Pexp_constraint (inner, _) -> params_of inner
  | _ -> []

let rec strip_funs e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, inner) | Pexp_newtype (_, inner) | Pexp_constraint (inner, _) ->
      strip_funs inner
  | _ -> e

(* Match call-site arguments to the callee's parameter names: positional
   arguments pair with positional parameters in order, labelled ones by
   label. *)
let match_args params args =
  let pos_params =
    List.filter_map
      (fun (l, n) -> match l with Asttypes.Nolabel -> Some n | _ -> None)
      params
  in
  let lbl_param name =
    List.find_map
      (fun (l, n) ->
        match l with
        | Asttypes.Labelled l' | Asttypes.Optional l' when String.equal l' name -> n
        | _ -> None)
      params
  in
  let rec go pos = function
    | [] -> []
    | (Asttypes.Nolabel, a) :: rest -> (
        match pos with
        | p :: pos' -> (
            match p with
            | Some name -> (name, a) :: go pos' rest
            | None -> go pos' rest)
        | [] -> go [] rest)
    | ((Asttypes.Labelled n | Asttypes.Optional n), a) :: rest -> (
        match lbl_param n with
        | Some name -> (name, a) :: go pos rest
        | None -> go pos rest)
  in
  go pos_params args

(* All variable names a pattern binds — for propagating Borrowed through
   [match borrowed with [b] -> ...]. *)
let pattern_vars p =
  let acc = ref [] in
  let pat_hook it p =
    (match p.ppat_desc with
    | Ppat_var { txt; _ } -> acc := txt :: !acc
    | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let it = { Ast_iterator.default_iterator with pat = pat_hook } in
  it.pat it p;
  !acc

(* Tail expressions of a body, through lets, sequences and branches. *)
let rec tails e =
  match e.pexp_desc with
  | Pexp_let (_, _, b)
  | Pexp_sequence (_, b)
  | Pexp_open (_, b)
  | Pexp_constraint (b, _)
  | Pexp_newtype (_, b) ->
      tails b
  | Pexp_ifthenelse (_, t, e') ->
      tails t @ (match e' with Some x -> tails x | None -> [])
  | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      List.concat_map (fun c -> tails c.pc_rhs) cases
  | _ -> [ e ]

(* R10 trigger 2 raw material: keys a subtree may free, and the
   Hashtbl.remove teardown drops it performs (keyed container+entry). *)
let frees_and_drops resolve_consumes e =
  let frees = ref SS.empty in
  let drops = ref SS.empty in
  let rec go e =
    (match (strip e).pexp_desc with
    | Pexp_apply (f, args) -> (
        match classify f with
        | (P_kmem_free | P_ck_free | P_ck_transfer) as p -> (
            match subject_arg p args with
            | Some s when tracked (expr_key s) -> frees := SS.add (expr_key s) !frees
            | _ -> ())
        | P_none when ident_matches ~penult:"Hashtbl" ~last:"remove" f -> (
            match args with
            | (_, c) :: (_, a) :: _ ->
                drops := SS.add (expr_key c ^ " " ^ expr_key a) !drops
            | _ -> ())
        | P_none ->
            (* keys consumed through a summarized callee count as frees *)
            List.iter
              (fun k -> if tracked k then frees := SS.add k !frees)
              (resolve_consumes f args)
        | _ -> ())
    | _ -> ());
    iter_children go e
  in
  go e;
  (!frees, !drops)

(* The walk -------------------------------------------------------------- *)

(* [summarize cg lookup func] walks [func] under the interprocedural
   summaries [lookup] and returns the function's own summary.  [emit]
   receives findings — the fixpoint passes [ignore], the final reporting
   pass collects. *)
let summarize ?(emit = fun (_ : Finding.t) -> ()) (cg : Callgraph.t)
    (lookup : string -> summary) (func : Callgraph.func) : summary =
  let fname = Callgraph.name func in
  let finding rule loc msg =
    emit (Finding.v ~rule ~file:func.Callgraph.file ~loc ~func:fname msg)
  in
  let params = params_of func.Callgraph.body in
  let annot = func.Callgraph.annot in
  let resolve f =
    match (strip f).pexp_desc with
    | Pexp_ident { txt; _ } -> Callgraph.resolve cg ~caller:func (flatten txt)
    | _ -> None
  in
  (* Callee contract at a call site: the annotation wins when present,
     otherwise the inferred summary. *)
  let callee_consumes g =
    let a = g.Callgraph.annot in
    if a.Annot.consumes <> [] || a.Annot.borrows <> [] then SS.of_list a.Annot.consumes
    else (lookup (Callgraph.name g)).consumes
  in
  let callee_returns_owned g =
    g.Callgraph.annot.Annot.returns_owned || (lookup (Callgraph.name g)).returns_owned
  in
  let resolve_consumes f args =
    match resolve f with
    | None -> []
    | Some g ->
        let consumed = callee_consumes g in
        match_args (params_of g.Callgraph.body) args
        |> List.filter_map (fun (p, a) ->
               if SS.mem p consumed then Some (expr_key a) else None)
  in
  (* Does an expression produce a fresh owned object? *)
  let rec produces_owned e =
    match (strip e).pexp_desc with
    | Pexp_apply (f, _) -> (
        match classify f with
        | P_kmem_alloc | P_ck_alloc | P_ck_transfer -> true
        | P_none -> (
            match resolve f with Some g -> callee_returns_owned g | None -> false)
        | _ -> false)
    | Pexp_record (fields, _) -> List.exists (fun (_, v) -> produces_owned v) fields
    | Pexp_tuple es -> List.exists produces_owned es
    | Pexp_construct (_, Some arg) -> produces_owned arg
    | _ -> false
  in
  (* State checks --------------------------------------------------------- *)
  let use_check st what e loc =
    let k = expr_key e in
    if tracked k then
      match SM.find_opt k st with
      | Some Freed ->
          finding Finding.R8_use_after_free loc
            (Fmt.str "%s of %s after it was freed" what k)
      | Some Moved ->
          finding Finding.R8_use_after_free loc
            (Fmt.str "%s of %s after a consuming call moved it" what k)
      | Some Revoked ->
          finding Finding.R11_borrow_escape loc
            (Fmt.str "%s of %s through a revoked capability" what k)
      | _ -> ()
  in
  let free_check st e loc =
    let k = expr_key e in
    if tracked k then
      match SM.find_opt k st with
      | Some (Freed | Moved) ->
          finding Finding.R9_double_free loc (Fmt.str "%s freed twice" k)
      | Some Borrowed ->
          finding Finding.R11_borrow_escape loc
            (Fmt.str "%s is only borrowed here and must not be freed" k)
      | _ -> ()
  in
  (* A value being stored (field/ref assignment) or built into a
     structure: freed keys must not escape, borrows must not outlive
     their lend, and owned keys are no longer this function's sole
     responsibility. *)
  let check_store st rhs loc =
    SS.fold
      (fun k st ->
        match SM.find_opt k st with
        | Some Freed ->
            finding Finding.R8_use_after_free loc
              (Fmt.str "freed pointer %s stored and escapes (dangling)" k);
            st
        | Some Moved ->
            finding Finding.R8_use_after_free loc
              (Fmt.str "moved (consumed) value %s stored and escapes" k);
            st
        | Some Borrowed ->
            finding Finding.R11_borrow_escape loc
              (Fmt.str "borrow %s stored beyond its lend scope" k);
            st
        | Some (Owned o) -> SM.add k (Owned { o with escaped = true }) st
        | Some Revoked | None -> st)
      (mentioned_keys rhs) st
  in
  let escape_only st e =
    SS.fold
      (fun k st ->
        match SM.find_opt k st with
        | Some (Owned o) -> SM.add k (Owned { o with escaped = true }) st
        | _ -> st)
      (mentioned_keys e) st
  in
  (* R10 trigger 1: an [Error _] construct is an error return; anything
     still Owned, locally allocated and unescaped leaks on this path. *)
  let error_return_check st loc =
    SM.iter
      (fun k s ->
        match s with
        | Owned { local = true; escaped = false } ->
            finding Finding.R10_error_leak loc
              (Fmt.str "owned allocation %s reaches this Error return without free or transfer"
                 k)
        | _ -> ())
      st
  in
  let join_state a b =
    match (a, b) with
    | Freed, _ | _, Freed -> Freed
    | Moved, _ | _, Moved -> Moved
    | Revoked, _ | _, Revoked -> Revoked
    | Borrowed, _ | _, Borrowed -> Borrowed
    | Owned x, Owned y ->
        Owned { local = x.local && y.local; escaped = x.escaped || y.escaped }
  in
  let join pre = function
    | [] -> pre (* every branch diverges *)
    | b :: rest ->
        List.fold_left (SM.union (fun _ x y -> Some (join_state x y))) b rest
  in
  let is_error_construct lid =
    match List.rev (flatten lid) with "Error" :: _ -> true | _ -> false
  in
  let rec walk st e : own_state SM.t =
    match e.pexp_desc with
    | Pexp_constraint (e', _) | Pexp_open (_, e') | Pexp_newtype (_, e') -> walk st e'
    | Pexp_apply (f, args) -> (
        let prim = classify f in
        match prim with
        | P_kmem_alloc | P_ck_alloc | P_neutral -> args_walk st args
        | P_kmem_use | P_ck_use ->
            let st = args_walk st args in
            (match subject_arg prim args with
            | Some s -> use_check st (if prim = P_kmem_use then "access" else "access") s e.pexp_loc
            | None -> ());
            st
        | P_kmem_free | P_ck_free ->
            let st = args_walk st args in
            (match subject_arg prim args with
            | Some s ->
                free_check st s e.pexp_loc;
                let k = expr_key s in
                if tracked k then SM.add k Freed st else st
            | None -> st)
        | P_ck_transfer ->
            let st = args_walk st args in
            (match subject_arg prim args with
            | Some s ->
                free_check st s e.pexp_loc;
                let k = expr_key s in
                if tracked k then SM.add k Moved st else st
            | None -> st)
        | P_cap_revoke -> (
            let st = args_walk st args in
            match subject_arg prim args with
            | Some s ->
                let k = expr_key s in
                if tracked k then SM.add k Revoked st else st
            | None -> st)
        | P_ck_lend ->
            let non_f = List.filter (fun (l, _) -> l <> Asttypes.Labelled "f") args in
            let st = args_walk st non_f in
            (match subject_arg prim args with
            | Some s -> use_check st "lend" s e.pexp_loc
            | None -> ());
            (match labelled_arg "f" args with
            | Some clo -> lend_closure st clo
            | None -> ());
            st
        | P_none -> (
            let st = walk st f in
            let st = args_walk st args in
            match resolve f with
            | Some g ->
                let consumed = callee_consumes g in
                List.fold_left
                  (fun st (p, a) ->
                    if SS.mem p consumed then begin
                      let k = expr_key a in
                      (match SM.find_opt k st with
                      | Some (Freed | Moved) ->
                          finding Finding.R9_double_free e.pexp_loc
                            (Fmt.str "%s already freed, but %s consumes it" k
                               (Callgraph.name g))
                      | Some Borrowed ->
                          finding Finding.R11_borrow_escape e.pexp_loc
                            (Fmt.str "borrow %s passed to consuming call %s" k
                               (Callgraph.name g))
                      | _ -> ());
                      if tracked k then SM.add k Moved st else st
                    end
                    else st)
                  st
                  (match_args (params_of g.Callgraph.body) args)
            | None ->
                (* unknown callee: assume borrowing, but it may retain a
                   reference — owned arguments are no longer unescaped *)
                List.fold_left (fun st (_, a) -> escape_only st a) st args))
    | Pexp_setfield (target, lid, rhs) ->
        let st = walk st target in
        let st = walk st rhs in
        let st = check_store st rhs e.pexp_loc in
        (* strong update: whatever the field held before, it holds the
           new value now — kills a stale Freed from a free-then-replace *)
        let tk = expr_key target ^ "." ^ String.concat "." (flatten lid.txt) in
        if tracked (expr_key target) then SM.remove tk st else st
    | Pexp_setinstvar ({ txt; _ }, rhs) ->
        let st = walk st rhs in
        let st = check_store st rhs e.pexp_loc in
        SM.remove txt st
    (* Building a value (construct/tuple/record) is not by itself an
       escape for freed or borrowed keys — the structure may stay inside
       the current scope (contract mediation conses borrows legally).
       It does end an Owned key's sole-responsibility claim, and an
       [Error _] construct is the R10 trigger-1 checkpoint. *)
    | Pexp_construct (lid, payload) ->
        let st = match payload with Some p -> walk st p | None -> st in
        let st = match payload with Some p -> escape_only st p | None -> st in
        if is_error_construct lid.txt then error_return_check st e.pexp_loc;
        st
    | Pexp_tuple es ->
        let st = List.fold_left walk st es in
        List.fold_left escape_only st es
    | Pexp_record (fields, base) ->
        let st = Option.fold ~none:st ~some:(walk st) base in
        let st = List.fold_left (fun st (_, v) -> walk st v) st fields in
        List.fold_left (fun st (_, v) -> escape_only st v) st fields
    | Pexp_sequence (a, b) -> walk (walk st a) b
    | Pexp_let (_, vbs, body) ->
        let st =
          List.fold_left
            (fun st vb ->
              let st = walk st vb.pvb_expr in
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ }
              | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) ->
                  if produces_owned vb.pvb_expr then
                    SM.add txt (Owned { local = true; escaped = false }) st
                  else begin
                    (* alias: the binding takes the RHS key's state *)
                    let rk = expr_key vb.pvb_expr in
                    match SM.find_opt rk st with
                    | Some s when tracked rk -> SM.add txt s st
                    | _ -> SM.remove txt st
                  end
              | _ -> st)
            st vbs
        in
        walk st body
    | Pexp_ifthenelse (cond, then_, else_) ->
        let st = walk st cond in
        (* R10 trigger 2: a free present in one arm, absent in its
           sibling performing the same non-empty teardown *)
        (match else_ with
        | Some el ->
            let fa, da = frees_and_drops resolve_consumes then_ in
            let fb, db = frees_and_drops resolve_consumes el in
            if SS.equal da db && not (SS.is_empty da) then begin
              SS.iter
                (fun k ->
                  if not (SS.mem k fb) then
                    finding Finding.R10_error_leak el.pexp_loc
                      (Fmt.str
                         "sibling branch frees %s after the same teardown; this branch leaks it"
                         k))
                (SS.diff fa fb);
              SS.iter
                (fun k ->
                  if not (SS.mem k fa) then
                    finding Finding.R10_error_leak then_.pexp_loc
                      (Fmt.str
                         "sibling branch frees %s after the same teardown; this branch leaks it"
                         k))
                (SS.diff fb fa)
            end
        | None -> ());
        let branches =
          (then_ :: Option.to_list else_)
          |> List.filter_map (fun b ->
                 let after = walk st b in
                 if Checks.diverges b then None else Some after)
        in
        let branches = if else_ = None then st :: branches else branches in
        join st branches
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        let st = walk st scrut in
        (* matching on a borrowed value (e.g. the capability list a
           lend_shared closure receives) borrows its components *)
        let scrut_borrowed =
          tracked (expr_key scrut) && SM.find_opt (expr_key scrut) st = Some Borrowed
        in
        let branches =
          List.filter_map
            (fun c ->
              let st =
                if scrut_borrowed then
                  List.fold_left
                    (fun st v -> SM.add v Borrowed st)
                    st (pattern_vars c.pc_lhs)
                else st
              in
              Option.iter (fun g -> ignore (walk st g : own_state SM.t)) c.pc_guard;
              let after = walk st c.pc_rhs in
              if Checks.diverges c.pc_rhs then None else Some after)
            cases
        in
        join st branches
    | Pexp_fun (_, default, _, inner) ->
        Option.iter (fun d -> ignore (walk st d : own_state SM.t)) default;
        ignore (walk st inner : own_state SM.t);
        st
    | Pexp_function cases ->
        List.iter
          (fun c ->
            Option.iter (fun g -> ignore (walk st g : own_state SM.t)) c.pc_guard;
            ignore (walk st c.pc_rhs : own_state SM.t))
          cases;
        st
    | Pexp_while (cond, body) | Pexp_for (_, _, cond, _, body) ->
        ignore (walk st cond : own_state SM.t);
        ignore (walk st body : own_state SM.t);
        st
    | _ ->
        let acc = ref st in
        iter_children (fun child -> acc := walk !acc child) e;
        !acc
  and args_walk st args = List.fold_left (fun st (_, a) -> walk st a) st args
  (* A lend closure: its parameter is the borrow.  The body is walked
     with the parameter Borrowed; the closure's tail value must not
     mention the borrow (R11: returned beyond the lend scope). *)
  and lend_closure st clo =
    match (strip clo).pexp_desc with
    | Pexp_fun (_, _, pat, body) ->
        let st' =
          List.fold_left (fun st v -> SM.add v Borrowed st) st (pattern_vars pat)
        in
        let st_end = walk st' body in
        List.iter
          (fun tail ->
            let rec borrowed_in t =
              match (strip t).pexp_desc with
              | Pexp_ident _ | Pexp_field _ ->
                  let k = expr_key t in
                  tracked k && SM.find_opt k st_end = Some Borrowed
              | Pexp_tuple es -> List.exists borrowed_in es
              | Pexp_construct (_, Some a) -> borrowed_in a
              | Pexp_record (fields, _) -> List.exists (fun (_, v) -> borrowed_in v) fields
              | _ -> false
            in
            if borrowed_in tail then
              finding Finding.R11_borrow_escape tail.pexp_loc
                (Fmt.str "borrow returned from its lend scope in %s" fname))
          (tails body)
    | _ -> ignore (walk st clo : own_state SM.t)
  in
  (* Entry state: parameters declared @borrows start Borrowed; everything
     else is an unknown non-local the walk only starts tracking when it
     is allocated, freed or moved here. *)
  let st0 =
    List.fold_left
      (fun st (_, n) ->
        match n with
        | Some n when List.mem n annot.Annot.borrows -> SM.add n Borrowed st
        | _ -> st)
      SM.empty params
  in
  let body = strip_funs func.Callgraph.body in
  let st_final = walk st0 body in
  let inferred_consumes =
    List.fold_left
      (fun acc (_, n) ->
        match n with
        | Some n -> (
            match SM.find_opt n st_final with
            | Some (Freed | Moved) -> SS.add n acc
            | _ -> acc)
        | None -> acc)
      SS.empty params
  in
  let consumes =
    if annot.Annot.consumes <> [] || annot.Annot.borrows <> [] then
      SS.of_list annot.Annot.consumes
    else inferred_consumes
  in
  let returns_owned =
    annot.Annot.returns_owned
    || (params <> [] && List.exists produces_owned (tails body))
  in
  { consumes; returns_owned }
