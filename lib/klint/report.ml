(* The Figure-2-style machine-readable report: findings bucketed by bug
   class and rule, the share preventable at each ladder rung, and the
   per-subsystem table whose level histogram reconciles with
   [Registry.level_counts].  Hand-rolled JSON — no external deps. *)

module Level = Safeos_core.Level
module Registry = Safeos_core.Registry

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = "\"" ^ escape s ^ "\""

let json_obj fields =
  "{" ^ String.concat ", " (List.map (fun (k, v) -> json_str k ^ ": " ^ v) fields) ^ "}"

let json_arr items = "[" ^ String.concat ", " items ^ "]"

let count_by key items =
  List.fold_left
    (fun acc item ->
      let k = key item in
      let n = try List.assoc k acc with Not_found -> 0 in
      (k, n + 1) :: List.remove_assoc k acc)
    [] items
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pct num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

(* % of findings whose bug class is structurally prevented at or below
   each rung — what the paper's Figure 2 claims per roadmap step,
   measured against this tree's own residual findings. *)
let preventable_at findings =
  let total = List.length findings in
  List.map
    (fun level ->
      let prevented =
        List.length
          (List.filter
             (fun (a : Engine.attributed) ->
               Level.prevents level (Finding.bug_class a.Engine.finding.Finding.rule))
             findings)
      in
      (level, pct prevented total))
    Level.all

let subsystem_rows (r : Engine.reconciliation) registry =
  let subs =
    List.sort_uniq String.compare (List.map (fun a -> a.Engine.sub) r.Engine.attributed)
  in
  let registered_subs =
    match registry with
    | Some reg -> List.map (fun e -> e.Registry.name) (Registry.all reg)
    | None -> []
  in
  List.sort_uniq String.compare (subs @ registered_subs)
  |> List.map (fun sub ->
         let of_sub = List.filter (fun a -> a.Engine.sub = sub) r.Engine.attributed in
         let level, registered, loc =
           match registry with
           | Some reg -> (
               match Registry.find reg sub with
               | Some e -> (e.Registry.level, true, e.Registry.loc)
               | None -> (
                   match of_sub with
                   | a :: _ -> (a.Engine.level, false, 0)
                   | [] -> (Level.Unsafe, false, 0)))
           | None -> (
               match of_sub with
               | a :: _ -> (a.Engine.level, false, 0)
               | [] -> (Level.Unsafe, false, 0))
         in
         json_obj
           [
             ("name", json_str sub);
             ("level", json_str (Level.to_string level));
             ("registered", string_of_bool registered);
             ("loc", string_of_int loc);
             ("findings", string_of_int (List.length of_sub));
             ( "violations",
               string_of_int
                 (List.length
                    (List.filter (fun a -> a.Engine.forbidden && not a.Engine.baselined) of_sub))
             );
           ])

(* The TCB metric object — also what [safeos tcb --json] prints, so the
   CLI and the persisted report can never disagree on shape. *)
let tcb_json (t : Ktcb.result) =
  let rule_count rule =
    List.length (List.filter (fun (f : Finding.t) -> f.Finding.rule = rule) t.Ktcb.findings)
  in
  json_obj
    [
      ( "frame",
        json_obj
          [
            ("files", string_of_int t.Ktcb.frame_files);
            ("loc", string_of_int t.Ktcb.frame_loc);
            ("surface_vals", string_of_int t.Ktcb.surface_vals);
          ] );
      ( "total",
        json_obj
          [
            ("loc", string_of_int t.Ktcb.total_loc);
            ("unsafe_loc", string_of_int t.Ktcb.unsafe_loc);
            ("ratio_pct", Fmt.str "%.1f" (Ktcb.ratio t));
          ] );
      ( "by_rule",
        json_obj
          [
            ("R12", string_of_int (rule_count Finding.R12_unsafe_primitive));
            ("R13", string_of_int (rule_count Finding.R13_frame_bypass));
            ("R14", string_of_int (rule_count Finding.R14_unsound_export));
          ] );
      ( "subsystems",
        json_arr
          (List.map
             (fun (r : Ktcb.row) ->
               json_obj
                 [
                   ("name", json_str r.Ktcb.sub);
                   ("loc", string_of_int r.Ktcb.loc);
                   ("unsafe_loc", string_of_int r.Ktcb.unsafe_loc);
                   ("ratio_pct", Fmt.str "%.1f" (pct r.Ktcb.unsafe_loc r.Ktcb.loc));
                   ("direct_uses", string_of_int r.Ktcb.direct);
                   ("indirect_uses", string_of_int r.Ktcb.indirect);
                   ("in_frame", string_of_bool r.Ktcb.in_frame);
                   ("exhibit", string_of_bool r.Ktcb.exhibit);
                 ])
             t.Ktcb.rows) );
    ]

(* The durability object — R16-R18 counts plus the transfer-summary
   shape, so the report records how much of the tree the barrier
   discipline actually covers. *)
let durability_json (d : Kdur.result) =
  let rule_count rule =
    List.length (List.filter (fun (f : Finding.t) -> f.Finding.rule = rule) d.Kdur.findings)
  in
  json_obj
    [
      ("functions_analyzed", string_of_int d.Kdur.funcs);
      ("durable_contracts", string_of_int d.Kdur.durable_funcs);
      ("ordering_contracts", string_of_int d.Kdur.ordering_funcs);
      ("writing_functions", string_of_int d.Kdur.writing_funcs);
      ("flushing_functions", string_of_int d.Kdur.flushing_funcs);
      ( "by_rule",
        json_obj
          [
            ("R16", string_of_int (rule_count Finding.R16_unordered_write));
            ("R17", string_of_int (rule_count Finding.R17_ack_before_durable));
            ("R18", string_of_int (rule_count Finding.R18_barrier_elision));
          ] );
    ]

(* The refinement-coverage object: static harness registrations (the
   kverify scan) plus, when a coverage file from [safeos refine] is
   supplied, the aggregated enumerator numbers the CI ratchet tracks. *)
let refinement_json ?coverage (kv : Kverify.result) =
  let sum f rows = List.fold_left (fun a r -> a + f r) 0 rows in
  let coverage_fields =
    match coverage with
    | None -> []
    | Some rows ->
        [
          ("modules_covered", string_of_int (List.length rows));
          ("ops", string_of_int (sum (fun r -> r.Kverify.cov_ops) rows));
          ("states_explored", string_of_int (sum (fun r -> r.Kverify.cov_states) rows));
          ("crash_points", string_of_int (sum (fun r -> r.Kverify.cov_crash_points) rows));
          ("crash_images", string_of_int (sum (fun r -> r.Kverify.cov_crash_images) rows));
          ("skipped_images", string_of_int (sum (fun r -> r.Kverify.cov_skipped) rows));
          ("divergences", string_of_int (sum (fun r -> r.Kverify.cov_divergences) rows));
          ( "deepest_divergence",
            string_of_int
              (List.fold_left (fun a r -> max a r.Kverify.cov_deepest) (-1) rows) );
          ( "by_harness",
            json_arr
              (List.map
                 (fun (r : Kverify.coverage_row) ->
                   json_obj
                     [
                       ("harness", json_str r.Kverify.cov_harness);
                       ("subsystem", json_str r.Kverify.cov_subsystem);
                       ("ops", string_of_int r.Kverify.cov_ops);
                       ("states", string_of_int r.Kverify.cov_states);
                       ("crash_images", string_of_int r.Kverify.cov_crash_images);
                       ("divergences", string_of_int r.Kverify.cov_divergences);
                       ("fingerprint", json_str r.Kverify.cov_fingerprint);
                     ])
                 rows) );
        ]
  in
  json_obj
    (( "registered_harnesses",
       json_arr
         (List.map
            (fun (reg : Kverify.registration) ->
              json_obj
                [
                  ("name", json_str reg.Kverify.reg_name);
                  ("subsystem", json_str reg.Kverify.reg_subsystem);
                  ("file", json_str reg.Kverify.reg_file);
                  ("line", string_of_int reg.Kverify.reg_line);
                ])
            kv.Kverify.registrations) )
    :: coverage_fields)

let to_json ?registry ?refine (tree : Engine.tree_result) (r : Engine.reconciliation) =
  let findings = r.Engine.attributed in
  let by_rule =
    count_by (fun a -> Finding.rule_id a.Engine.finding.Finding.rule) findings
  in
  let by_class =
    count_by
      (fun a -> Level.bug_class_to_string (Finding.bug_class a.Engine.finding.Finding.rule))
      findings
  in
  let level_counts =
    match registry with
    | Some reg ->
        List.map
          (fun (level, n) -> (Level.to_string level, string_of_int n))
          (Registry.level_counts reg)
    | None -> []
  in
  json_obj
    [
      ("tool", json_str "klint");
      ("files_linted", string_of_int (List.length tree.Engine.files));
      ("effective_loc", string_of_int tree.Engine.effective_loc);
      ("total_findings", string_of_int (List.length findings));
      ( "baselined",
        string_of_int (List.length (List.filter (fun a -> a.Engine.baselined) findings)) );
      ("violations", string_of_int (List.length r.Engine.violations));
      ("stale_baseline", string_of_int (List.length r.Engine.stale_baseline));
      ("by_rule", json_obj (List.map (fun (k, n) -> (k, string_of_int n)) by_rule));
      ("by_bug_class", json_obj (List.map (fun (k, n) -> (k, string_of_int n)) by_class));
      ( "preventable_at",
        json_obj
          (List.map
             (fun (level, p) -> (Level.to_string level, Fmt.str "%.1f" p))
             (preventable_at findings)) );
      ("subsystems", json_arr (subsystem_rows r registry));
      ("level_counts", json_obj level_counts);
      ( "lock_graph",
        let k = tree.Engine.kracer in
        json_obj
          [
            ("functions_analyzed", string_of_int k.Kracer.funcs);
            ("unresolved_calls", string_of_int k.Kracer.unresolved_calls);
            ( "guards",
              json_arr
                (List.map
                   (fun (cell, lock) ->
                     json_obj [ ("cell", json_str cell); ("lock", json_str lock) ])
                   k.Kracer.guards) );
            ( "edges",
              json_arr
                (List.map
                   (fun (a, b) -> json_obj [ ("held", json_str a); ("acquired", json_str b) ])
                   k.Kracer.edges) );
            ( "predicted_cycles",
              json_arr
                (List.map (fun cyc -> json_arr (List.map json_str cyc)) k.Kracer.cycles) );
          ] );
      ( "ownership",
        let o = tree.Engine.kown in
        let own_findings =
          List.filter
            (fun a ->
              match a.Engine.finding.Finding.rule with
              | Finding.R8_use_after_free | Finding.R9_double_free
              | Finding.R10_error_leak | Finding.R11_borrow_escape ->
                  true
              | _ -> false)
            findings
        in
        json_obj
          [
            ("functions_analyzed", string_of_int o.Kown.funcs);
            ("consuming_functions", string_of_int o.Kown.consuming);
            ("returning_owned", string_of_int o.Kown.returning_owned);
            ("findings", string_of_int (List.length own_findings));
            ( "by_rule",
              json_obj
                (List.map
                   (fun (k, n) -> (k, string_of_int n))
                   (count_by
                      (fun a -> Finding.rule_id a.Engine.finding.Finding.rule)
                      own_findings)) );
          ] );
      ("tcb", tcb_json tree.Engine.ktcb);
      ("durability", durability_json tree.Engine.kdur);
      ("refinement", refinement_json ?coverage:refine tree.Engine.kverify);
    ]

let write ~path json =
  let dir = Filename.dirname path in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc json;
      output_char oc '\n')
