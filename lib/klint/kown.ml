(* kown — the interprocedural ownership-lifetime analysis (rules
   R8–R11), kracer's sibling for the memory-safety rung of the ladder.

   Per-function {!Ownset} walks carry only local facts; kown closes them
   over the {!Callgraph} with one bottom-up fixpoint on ownership
   summaries: which parameters a function consumes (frees or moves) and
   whether its result is a fresh owned object.  Annotations
   ([@consumes]/[@borrows]/[@returns_owned], [.mli]-merged) override the
   inference where present, so a contract can be stated once and checked
   against every caller.

   The second output is the runtime reconciliation: {!Ksim.Kmem} dumps
   heap events (use-after-free, double-free, leak sites) when
   [KSIM_KMEM_EXPORT] is set, and [unflagged_kmem_events] subtracts
   kown's static findings — any runtime event in a linted file that kown
   did not flag statically is an unsoundness (a lifetime path the
   syntactic analysis failed to see) and fails CI, exactly like kracer's
   lock-graph reconciliation. *)

type result = {
  findings : Finding.t list;
  funcs : int;  (** functions analyzed *)
  consuming : int;  (** functions with a non-empty consumes set *)
  returning_owned : int;  (** functions whose result is owned *)
  summaries : (string * Ownset.summary) list;
      (** the converged per-function summaries, keyed by qualified name —
          ktcb's R14 reads ownership facts straight from these *)
}

let empty =
  { findings = []; funcs = 0; consuming = 0; returning_owned = 0; summaries = [] }

(* The allocators' own implementations free and resurrect their internal
   state by design — analyzing the mechanism would only flag itself. *)
let excluded rel =
  List.mem rel [ "lib/ksim/kmem.ml"; "lib/ownership/checker.ml"; "lib/ownership/cap.ml" ]

let analyze ~root files =
  let files = List.filter (fun (rel, _) -> not (excluded rel)) files in
  let cg = Callgraph.build ~root files in
  let tbl : (string, Ownset.summary) Hashtbl.t = Hashtbl.create 64 in
  let lookup name =
    Option.value ~default:Ownset.empty_summary (Hashtbl.find_opt tbl name)
  in
  (* Bottom-up summary fixpoint, kracer's may_acquire pattern.  The
     inference is effectively monotone (consumes/returns_owned only turn
     on as callee summaries arrive); the round cap is a backstop, not a
     tuning knob. *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 32 do
    changed := false;
    incr rounds;
    List.iter
      (fun f ->
        let s = Ownset.summarize cg lookup f in
        if not (Ownset.summary_equal s (lookup (Callgraph.name f))) then begin
          Hashtbl.replace tbl (Callgraph.name f) s;
          changed := true
        end)
      cg.Callgraph.funcs
  done;
  (* Final pass under the stable summaries is the one that reports. *)
  let findings = ref [] in
  List.iter
    (fun f ->
      ignore
        (Ownset.summarize ~emit:(fun x -> findings := x :: !findings) cg lookup f
          : Ownset.summary))
    cg.Callgraph.funcs;
  let consuming, returning_owned =
    Hashtbl.fold
      (fun _ (s : Ownset.summary) (c, r) ->
        ( (if Ownset.SS.is_empty s.Ownset.consumes then c else c + 1),
          if s.Ownset.returns_owned then r + 1 else r ))
      tbl (0, 0)
  in
  {
    findings = Finding.sort !findings;
    funcs = List.length cg.Callgraph.funcs;
    consuming;
    returning_owned;
    summaries =
      Hashtbl.fold (fun name s acc -> (name, s) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }

(* Standalone entry (bench, tests): parse the tree itself. *)
let analyze_tree ~root =
  let files =
    Loc.ml_files_under ~root "lib"
    |> List.filter_map (fun rel ->
           match Kparse.parse (Filename.concat root rel) with
           | Ok structure -> Some (rel, structure)
           | Error _ -> None)
  in
  analyze ~root files

(* Runtime reconciliation --------------------------------------------------- *)

type kmem_event = { kind : string; heap : string; site : string; count : int }

(* "kind\theap\tsite\tcount" per line, the format [Kmem]'s
   [KSIM_KMEM_EXPORT] at_exit hook writes.  Unparseable lines are errors
   — a truncated export must not pass reconciliation by vacuity. *)
let read_kmem_events path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> loop acc
        | line -> (
            match String.split_on_char '\t' line with
            | [ kind; heap; site; count ] -> (
                match int_of_string_opt count with
                | Some count -> loop ({ kind; heap; site; count } :: acc)
                | None -> Error (Fmt.str "%s: malformed kmem event line %S" path line))
            | _ -> Error (Fmt.str "%s: malformed kmem event line %S" path line))
      in
      loop [])

let rule_of_kind = function
  | "uaf" -> Some Finding.R8_use_after_free
  | "double_free" -> Some Finding.R9_double_free
  | "leak" -> Some Finding.R10_error_leak
  | _ -> None

(* A heap is attributed to the linted file whose module basename equals
   the heap name ([~name:"memfs_unsafe"] -> [lib/kfs/memfs_unsafe.ml]);
   heaps with no such file (test-local scratch heaps) cannot correspond
   to a static finding and are skipped. *)
let file_of_heap ~files heap =
  List.find_opt
    (fun rel -> String.equal (Filename.remove_extension (Filename.basename rel)) heap)
    files

(* Aggregate runtime events by (kind, heap) and subtract the static
   findings: an event survives — [(event, file, rule)] — when its file
   has no static finding of the matching rule at all.  Site strings are
   allocation sites, not source locations, so the granularity is
   (rule, file): the static analysis must have *something* to say about
   that failure mode in that file, baselined or not. *)
let unflagged_kmem_events ~files ~findings events =
  let agg = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      let key = (ev.kind, ev.heap) in
      match Hashtbl.find_opt agg key with
      | Some prior -> Hashtbl.replace agg key { prior with count = prior.count + ev.count }
      | None -> Hashtbl.replace agg key ev)
    events;
  Hashtbl.fold (fun _ ev acc -> ev :: acc) agg []
  |> List.sort (fun a b -> compare (a.kind, a.heap) (b.kind, b.heap))
  |> List.filter_map (fun ev ->
         match rule_of_kind ev.kind with
         | None -> None
         | Some rule -> (
             match file_of_heap ~files ev.heap with
             | None -> None
             | Some file ->
                 if
                   List.exists
                     (fun (f : Finding.t) ->
                       f.Finding.rule = rule && String.equal f.Finding.file file)
                     findings
                 then None
                 else Some (ev, file, rule)))
