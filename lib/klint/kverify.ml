(* kverify: the "verified means checked" pass (rule R15).

   The safety ladder's top rung is a functional-correctness claim, and
   the only acceptable evidence is a krefine harness that actually runs:
   a [Kharness.harness ~name:"..." ~subsystem:"..."] registration ties a
   registry subsystem to an executable refinement machine.  This pass
   scans the tree for exactly that call shape (literal strings only — a
   registration must be statically visible, not computed), then R15
   fires on every registered subsystem whose live registry level is
   [Verified] with no matching registration.  R15's bug class is
   [Semantic], so via the normal reconciliation it becomes a violation
   precisely at the Verified rung: claiming less keeps the finding
   informational.

   The same module owns the krefine coverage exchange format — the rows
   [safeos refine --coverage-out] writes and [klint --refine-coverage]
   ratchets (grow-only, like the tcb count ratchet but in the other
   direction: coverage may only grow). *)

open Parsetree

type registration = {
  reg_name : string;  (** the harness name *)
  reg_subsystem : string;  (** the registry subsystem it verifies *)
  reg_file : string;
  reg_line : int;
}

type result = { registrations : registration list }

let last_component txt =
  match List.rev (Longident.flatten txt) with last :: _ -> last | [] -> ""

let string_arg args label =
  List.find_map
    (fun (lab, (e : expression)) ->
      match (lab, e.pexp_desc) with
      | Asttypes.Labelled l, Pexp_constant (Pconst_string (s, _, _)) when String.equal l label
        ->
          Some s
      | _ -> None)
    args

let scan_structure ~file structure =
  let found = ref [] in
  let expr_hook it (e : expression) =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
      when String.equal (last_component txt) "harness" -> (
        match (string_arg args "name", string_arg args "subsystem") with
        | Some reg_name, Some reg_subsystem ->
            found :=
              {
                reg_name;
                reg_subsystem;
                reg_file = file;
                reg_line = e.pexp_loc.Location.loc_start.Lexing.pos_lnum;
              }
              :: !found
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr = expr_hook } in
  it.structure it structure;
  List.rev !found

let scan parsed =
  {
    registrations =
      List.concat_map (fun (file, structure) -> scan_structure ~file structure) parsed;
  }

(* R15 synthesis --------------------------------------------------------- *)

(* Anchor the finding in the subsystem's first source file so the normal
   claim attribution points it back at the offending subsystem. *)
let anchor_file sub =
  match Subsystem.sources_of sub with
  | Some (src :: _) -> src
  | _ -> "lib/" ^ sub

let r15 ~registry { registrations } =
  Safeos_core.Registry.all registry
  |> List.filter_map (fun (e : Safeos_core.Registry.entry) ->
         let covered =
           List.exists (fun r -> String.equal r.reg_subsystem e.Safeos_core.Registry.name)
             registrations
         in
         if Safeos_core.Level.(e.Safeos_core.Registry.level >= Verified) && not covered then
           Some
             {
               Finding.rule = Finding.R15_unverified_claim;
               file = anchor_file e.Safeos_core.Registry.name;
               line = 1;
               col = 0;
               func = "";
               message =
                 Fmt.str
                   "subsystem %s claims Verified but registers no krefine harness \
                    (Kharness.harness ~name ~subsystem)"
                   e.Safeos_core.Registry.name;
             }
         else None)

(* Coverage rows --------------------------------------------------------- *)

type coverage_row = {
  cov_harness : string;
  cov_subsystem : string;
  cov_ops : int;
  cov_states : int;
  cov_crash_points : int;
  cov_crash_images : int;
  cov_skipped : int;
  cov_divergences : int;
  cov_deepest : int;
  cov_fingerprint : string;
}

let row_to_line c =
  Fmt.str
    "harness %s subsystem %s ops %d states %d crash_points %d crash_images %d skipped %d \
     divergences %d deepest %d fingerprint %s"
    c.cov_harness c.cov_subsystem c.cov_ops c.cov_states c.cov_crash_points
    c.cov_crash_images c.cov_skipped c.cov_divergences c.cov_deepest c.cov_fingerprint

let row_of_line line =
  let rec pairs = function
    | [] -> Ok []
    | k :: v :: rest -> Result.map (fun t -> (k, v) :: t) (pairs rest)
    | [ k ] -> Error (Fmt.str "dangling key %S" k)
  in
  let ( let* ) = Result.bind in
  let* kvs = pairs (String.split_on_char ' ' (String.trim line)) in
  let str k = match List.assoc_opt k kvs with Some v -> Ok v | None -> Error ("missing " ^ k) in
  let int k =
    let* v = str k in
    match int_of_string_opt v with Some n -> Ok n | None -> Error (Fmt.str "bad %s %S" k v)
  in
  let* cov_harness = str "harness" in
  let* cov_subsystem = str "subsystem" in
  let* cov_ops = int "ops" in
  let* cov_states = int "states" in
  let* cov_crash_points = int "crash_points" in
  let* cov_crash_images = int "crash_images" in
  let* cov_skipped = int "skipped" in
  let* cov_divergences = int "divergences" in
  let* cov_deepest = int "deepest" in
  let* cov_fingerprint = str "fingerprint" in
  Ok
    {
      cov_harness;
      cov_subsystem;
      cov_ops;
      cov_states;
      cov_crash_points;
      cov_crash_images;
      cov_skipped;
      cov_divergences;
      cov_deepest;
      cov_fingerprint;
    }

let coverage_header = "# krefine coverage: one harness per line"

let save_coverage path rows =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (coverage_header ^ "\n");
      List.iter (fun r -> output_string oc (row_to_line r ^ "\n")) rows)

let load_coverage path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc lineno =
            match input_line ic with
            | exception End_of_file -> Ok (List.rev acc)
            | "" -> go acc (lineno + 1)
            | line when String.length line > 0 && line.[0] = '#' -> go acc (lineno + 1)
            | line -> (
                match row_of_line line with
                | Ok r -> go (r :: acc) (lineno + 1)
                | Error e -> Error (Fmt.str "line %d: %s" lineno e))
          in
          go [] 1)

(* The coverage ratchet -------------------------------------------------- *)

(* Aggregate floor the tree must stay above: refinement coverage, like
   the safety ladder itself, only moves forward. *)
type floor = {
  min_harnesses : int;
  min_ops : int;
  min_states : int;
  min_crash_images : int;
}

let floor_of_rows rows =
  {
    min_harnesses = List.length rows;
    min_ops = List.fold_left (fun a r -> a + r.cov_ops) 0 rows;
    min_states = List.fold_left (fun a r -> a + r.cov_states) 0 rows;
    min_crash_images = List.fold_left (fun a r -> a + r.cov_crash_images) 0 rows;
  }

let floor_to_string f =
  Fmt.str
    "# krefine coverage ratchet: minimums the refine stage must reach; grow-only\n\
     harnesses %d\nops %d\nstates %d\ncrash_images %d\n"
    f.min_harnesses f.min_ops f.min_states f.min_crash_images

let floor_of_string s =
  let kvs =
    String.split_on_char '\n' s
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" || line.[0] = '#' then None
           else
             match String.split_on_char ' ' line with
             | [ k; v ] -> Some (k, int_of_string_opt v)
             | _ -> Some (line, None))
  in
  let get k =
    match List.assoc_opt k kvs with
    | Some (Some n) -> Ok n
    | Some None -> Error (Fmt.str "bad value for %s" k)
    | None -> Error ("missing " ^ k)
  in
  let ( let* ) = Result.bind in
  let* min_harnesses = get "harnesses" in
  let* min_ops = get "ops" in
  let* min_states = get "states" in
  let* min_crash_images = get "crash_images" in
  Ok { min_harnesses; min_ops; min_states; min_crash_images }

let load_floor path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> floor_of_string (really_input_string ic (in_channel_length ic)))

let save_floor path f =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (floor_to_string f))

(* (metric, have, floor) for every dimension below the baseline;
   [progress] lists dimensions strictly above it (regenerate to lock the
   gain in). *)
let compare_floor ~baseline current =
  let dims =
    [
      ("harnesses", current.min_harnesses, baseline.min_harnesses);
      ("ops", current.min_ops, baseline.min_ops);
      ("states", current.min_states, baseline.min_states);
      ("crash_images", current.min_crash_images, baseline.min_crash_images);
    ]
  in
  ( List.filter (fun (_, have, want) -> have < want) dims,
    List.filter (fun (_, have, want) -> have > want) dims )
