(* ktcb — the frame-confinement pass (rules R12-R14) and the unsafe-TCB
   metric, the static half of the framekernel refactor.

   The frame declaration lives in {!Frame}; this pass prices the tree
   against it three ways:

   - R12 (unsafe-primitive-outside-frame): a direct use of [Dyn.*], raw
     [Kmem], [Bytes.unsafe_*], or bare [Klock.acquire]/[release] from a
     non-frame file — the CWE-1120 TCB-bloat site the Frame wrappers
     exist to replace.
   - R13 (frame-API-bypass): a call that resolves, over the callgraph,
     to a frame symbol not on the blessed surface, or to a non-frame
     helper that (transitively) launders one — the depth->=2 pattern a
     per-site grep cannot see.  Taint does not cross *into* a declared
     exhibit: using a specimen's interface is the registry's business,
     not laundering.
   - R14 (unsound-frame-export): a frame function whose kown summary
     says it returns a fresh owned object, reachable from a non-frame
     caller — a raw capability crossing the boundary unwrapped.

   The second output is the TCB metric: per-subsystem unsafe LOC (full
   file size inside the frame, distinct R12/R13 lines outside it) over
   total LOC, plus the frame-surface val count — the numbers the
   [tcb.baseline] count-ratchet and the report's [tcb] object carry.
   Like kown, the pass is reconciled against runtime ground truth:
   [unsound_kmem_events] fails CI when raw heap traffic originates from
   a module the metric classifies as frame-free. *)

open Parsetree

(* Findings ---------------------------------------------------------------- *)

let deep_iter_expr f e0 =
  let super = Ast_iterator.default_iterator in
  let it = { super with expr = (fun it e -> f e; super.expr it e) } in
  it.expr it e0

let deep_iter_structure f structure =
  let super = Ast_iterator.default_iterator in
  let it = { super with expr = (fun it e -> f e; super.expr it e) } in
  it.structure it structure

(* An expression that *is* an unsafe-primitive use: a value identifier
   ([Dyn.project]) or a constructor ([Dyn.Errptr.Ptr _]) whose path
   classifies.  Patterns and type expressions deliberately do not count
   — naming a frame type is free, reaching its operations is not. *)
let classify_expr e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Frame.classify_path (Rules.flatten txt)
  | Pexp_construct ({ txt; _ }, _) -> (
      match Frame.classify_path (Rules.flatten txt) with
      | Some (Frame.Dyn_use | Frame.Kmem_use) as p -> p
      | _ -> None)
  | _ -> None

type row = {
  sub : string;
  loc : int;  (** effective lines across the subsystem's linted files *)
  unsafe_loc : int;
  direct : int;  (** R12 findings *)
  indirect : int;  (** R13 findings *)
  in_frame : bool;
  exhibit : bool;
}

type result = {
  findings : Finding.t list;  (** R12-R14, kept out of the ladder reconciliation *)
  rows : row list;  (** per-subsystem TCB table, sorted by name *)
  frame_files : int;
  frame_loc : int;
  surface_vals : int;  (** vals exported by {!Frame.surface_mli} *)
  total_loc : int;
  unsafe_loc : int;
  funcs : int;  (** functions the callgraph pass analyzed *)
  lock_creators : (string * string) list;
      (** lock class -> creating file, from literal [Klock.create ~name]
          sites — the attribution the lockdep reconciliation uses *)
}

let empty =
  {
    findings = [];
    rows = [];
    frame_files = 0;
    frame_loc = 0;
    surface_vals = 0;
    total_loc = 0;
    unsafe_loc = 0;
    funcs = 0;
    lock_creators = [];
  }

(* The frame-surface metric: how many vals the blessed boundary exports
   (recursively, so [Frame.Priv.wrap] counts once). *)
let rec count_sig_vals signature =
  List.fold_left
    (fun acc (item : signature_item) ->
      match item.psig_desc with
      | Psig_value _ -> acc + 1
      | Psig_module { pmd_type = { pmty_desc = Pmty_signature s; _ }; _ } ->
          acc + count_sig_vals s
      | _ -> acc)
    0 signature

let surface_vals ~root =
  let path = Filename.concat root Frame.surface_mli in
  if not (Sys.file_exists path) then 0
  else
    match Pparse.parse_interface ~tool_name:"klint" path with
    | signature -> count_sig_vals signature
    | exception _ -> 0

(* Lock class -> creating file, from literal [Klock.create ~name] sites;
   locks named via computed strings cannot be attributed and are
   skipped. *)
let lock_class_creators parsed =
  let acc = ref [] in
  List.iter
    (fun (rel, structure) ->
      deep_iter_structure
        (fun e ->
          match e.pexp_desc with
          | Pexp_apply (head, args)
            when Rules.ident_matches ~penult:"Klock" ~last:"create" (Rules.strip head) ->
              List.iter
                (fun (label, (arg : expression)) ->
                  match (label, arg.pexp_desc) with
                  | Asttypes.Labelled "name", Pexp_constant (Pconst_string (s, _, _)) ->
                      acc := (Annot.lock_class s, rel) :: !acc
                  | _ -> ())
                args
          | _ -> ())
        structure)
    parsed;
  List.sort_uniq compare !acc

let analyze ~root parsed ~summaries =
  let files = List.map fst parsed in
  let cg = Callgraph.build ~root parsed in
  let findings = ref [] in
  (* (file, line, col) already carrying a finding — R13 never re-flags a
     call site R12 already priced. *)
  let marked : (string * int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let key_of_loc file (loc : Location.t) =
    let p = loc.Location.loc_start in
    (file, p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)
  in
  (* R12: whole-structure walk, so toplevel and anonymous code count too. *)
  List.iter
    (fun (rel, structure) ->
      if not (Frame.in_frame rel) then
        deep_iter_structure
          (fun e ->
            match classify_expr e with
            | None -> ()
            | Some prim ->
                let k = key_of_loc rel e.pexp_loc in
                if not (Hashtbl.mem marked k) then begin
                  Hashtbl.replace marked k ();
                  findings :=
                    Finding.v ~rule:Finding.R12_unsafe_primitive ~file:rel ~loc:e.pexp_loc
                      (Fmt.str "direct use of %s outside the frame; go through Ksim.Frame"
                         (Frame.prim_to_string prim))
                    :: !findings
                end)
          structure)
    parsed;
  (* Callgraph facts for R13/R14. *)
  let fkey (f : Callgraph.func) = f.Callgraph.file ^ ":" ^ Callgraph.name f in
  let direct_use (f : Callgraph.func) =
    let found = ref false in
    deep_iter_expr (fun e -> if classify_expr e <> None then found := true) f.Callgraph.body;
    !found
  in
  (* Call sites: every identifier in a non-frame body that resolves to a
     known function, self-references excluded. *)
  let edges =
    List.concat_map
      (fun (f : Callgraph.func) ->
        if Frame.in_frame f.Callgraph.file then []
        else begin
          let acc = ref [] in
          deep_iter_expr
            (fun e ->
              match e.pexp_desc with
              | Pexp_ident { txt; _ } -> (
                  match Callgraph.resolve cg ~caller:f (Rules.flatten txt) with
                  | Some g when not (String.equal (fkey g) (fkey f)) ->
                      acc := (e.pexp_loc, g) :: !acc
                  | _ -> ())
              | _ -> ())
            f.Callgraph.body;
          List.rev_map (fun (loc, g) -> (f, loc, g)) !acc
        end)
      cg.Callgraph.funcs
  in
  (* Does taint flow across this edge?  Never from a non-exhibit caller
     into an exhibit — the specimen boundary is declared. *)
  let edge_carries (f : Callgraph.func) (g : Callgraph.func) =
    not
      ((not (Frame.is_exhibit f.Callgraph.file)) && Frame.is_exhibit g.Callgraph.file)
  in
  let tainted : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (f : Callgraph.func) ->
      if (not (Frame.in_frame f.Callgraph.file)) && direct_use f then
        Hashtbl.replace tainted (fkey f) ())
    cg.Callgraph.funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun ((f : Callgraph.func), _, (g : Callgraph.func)) ->
        if (not (Hashtbl.mem tainted (fkey f))) && edge_carries f g then begin
          let taints =
            if Frame.in_frame g.Callgraph.file then not (Frame.blessed_symbol g)
            else Hashtbl.mem tainted (fkey g)
          in
          if taints then begin
            Hashtbl.replace tainted (fkey f) ();
            changed := true
          end
        end)
      edges
  done;
  (* R13 at the laundering call sites. *)
  List.iter
    (fun ((f : Callgraph.func), loc, (g : Callgraph.func)) ->
      let bypass =
        edge_carries f g
        &&
        if Frame.in_frame g.Callgraph.file then not (Frame.blessed_symbol g)
        else Hashtbl.mem tainted (fkey g)
      in
      if bypass then begin
        let k = key_of_loc f.Callgraph.file loc in
        if not (Hashtbl.mem marked k) then begin
          Hashtbl.replace marked k ();
          findings :=
            Finding.v ~rule:Finding.R13_frame_bypass ~file:f.Callgraph.file ~loc
              ~func:(Callgraph.name f)
              (Fmt.str "call to %s bypasses the blessed frame surface%s" (Callgraph.name g)
                 (if Frame.in_frame g.Callgraph.file then ""
                  else " (launders unsafe primitives)"))
            :: !findings
        end
      end)
    edges;
  (* R14: frame functions exporting owned raw capabilities to services. *)
  List.iter
    (fun (f : Callgraph.func) ->
      if Frame.in_frame f.Callgraph.file then begin
        let returns_owned =
          f.Callgraph.annot.Annot.returns_owned
          ||
          match List.assoc_opt (Callgraph.name f) summaries with
          | Some (s : Ownset.summary) -> s.Ownset.returns_owned
          | None -> false
        in
        if returns_owned then begin
          let outside_callers =
            List.filter
              (fun ((caller : Callgraph.func), _, g) ->
                String.equal (fkey g) (fkey f)
                && not (Frame.in_frame caller.Callgraph.file))
              edges
          in
          if outside_callers <> [] then
            findings :=
              Finding.v ~rule:Finding.R14_unsound_export ~file:f.Callgraph.file
                ~loc:f.Callgraph.loc ~func:(Callgraph.name f)
                (Fmt.str
                   "frame function exports an owned raw capability to %d non-frame call \
                    site(s); return it wrapped"
                   (List.length outside_callers))
              :: !findings
        end
      end)
    cg.Callgraph.funcs;
  let findings = Finding.sort !findings in
  (* The TCB table. *)
  let of_file rel rule =
    List.filter
      (fun (f : Finding.t) -> f.Finding.rule = rule && String.equal f.Finding.file rel)
      findings
  in
  let tbl : (string, int * int * int * int * bool * bool) Hashtbl.t = Hashtbl.create 16 in
  let frame_files = ref 0 in
  let frame_loc = ref 0 in
  let total_loc = ref 0 in
  let total_unsafe = ref 0 in
  List.iter
    (fun rel ->
      let floc = Loc.count_file (Filename.concat root rel) in
      let r12 = of_file rel Finding.R12_unsafe_primitive in
      let r13 = of_file rel Finding.R13_frame_bypass in
      let in_frame = Frame.in_frame rel in
      let unsafe =
        if in_frame then floc
        else
          List.length
            (List.sort_uniq compare (List.map (fun (f : Finding.t) -> f.Finding.line) (r12 @ r13)))
      in
      if in_frame then begin
        incr frame_files;
        frame_loc := !frame_loc + floc
      end;
      total_loc := !total_loc + floc;
      total_unsafe := !total_unsafe + unsafe;
      let sub = (Subsystem.claim_of_path rel).Subsystem.sub in
      let loc0, unsafe0, d0, i0, fr0, ex0 =
        Option.value ~default:(0, 0, 0, 0, false, true) (Hashtbl.find_opt tbl sub)
      in
      Hashtbl.replace tbl sub
        ( loc0 + floc,
          unsafe0 + unsafe,
          d0 + List.length r12,
          i0 + List.length r13,
          fr0 || in_frame,
          ex0 && Frame.is_exhibit rel ))
    files;
  let rows =
    Hashtbl.fold
      (fun sub (loc, unsafe_loc, direct, indirect, in_frame, exhibit) acc ->
        { sub; loc; unsafe_loc; direct; indirect; in_frame; exhibit } :: acc)
      tbl []
    |> List.sort (fun a b -> String.compare a.sub b.sub)
  in
  {
    findings;
    rows;
    frame_files = !frame_files;
    frame_loc = !frame_loc;
    surface_vals = surface_vals ~root;
    total_loc = !total_loc;
    unsafe_loc = !total_unsafe;
    funcs = List.length cg.Callgraph.funcs;
    lock_creators = lock_class_creators parsed;
  }

let ratio result =
  if result.total_loc = 0 then 0.0
  else 100.0 *. float_of_int result.unsafe_loc /. float_of_int result.total_loc

(* Standalone entry (bench, tests): parse the tree and run kown for the
   summaries R14 needs. *)
let analyze_tree ~root =
  let files =
    Loc.ml_files_under ~root "lib"
    |> List.filter_map (fun rel ->
           match Kparse.parse (Filename.concat root rel) with
           | Ok structure -> Some (rel, structure)
           | Error _ -> None)
  in
  let kown = Kown.analyze ~root files in
  analyze ~root files ~summaries:kown.Kown.summaries

(* The tcb.baseline count-ratchet ------------------------------------------ *)

(* The parse/compare/update engine lives in {!Baseline.Counts} (shared
   with kdur's dur.baseline); this is the tcb-flavoured instantiation,
   kept under the historical names so call sites read the same. *)

type baseline_entry = Baseline.Counts.entry = {
  b_rule : Finding.rule;
  b_file : string;
  b_count : int;
}

let compare_entry = Baseline.Counts.compare_entry
let counts_of_findings = Baseline.Counts.of_findings
let entry_to_line = Baseline.Counts.entry_to_line

let header =
  "# tcb baseline — grandfathered R12-R14 counts per (rule, file), the\n\
   # downward-only TCB ratchet.  Regenerate (after genuine shrinkage only) with:\n\
   #   dune exec bin/klint/main.exe -- --update-tcb-baseline\n"

let to_string entries = Baseline.Counts.to_string ~header entries
let of_string s = Baseline.Counts.of_string ~what:"tcb" s
let load path = Baseline.Counts.load ~what:"tcb" path
let save path entries = Baseline.Counts.save ~header path entries

type delta = Baseline.Counts.delta = {
  d_rule : Finding.rule;
  d_file : string;
  d_have : int;
  d_allowed : int;
}

let compare_counts = Baseline.Counts.compare_counts

(* Runtime reconciliation --------------------------------------------------- *)

(* A file is statically priced when it is the frame itself or carries at
   least one R12/R13/R14 finding — those are the only modules the TCB
   metric permits to generate raw-substrate traffic. *)
let priced ~result file =
  Frame.in_frame file
  || List.exists (fun (f : Finding.t) -> String.equal f.Finding.file file) result.findings

(* Raw heap events ([KSIM_KMEM_EXPORT]) from a module the metric
   classifies as frame-free: the static confinement claim is UNSOUND —
   same CI contract as kracer's and kown's reconciliations. *)
let unsound_kmem_events ~files ~result events =
  List.filter_map
    (fun (ev : Kown.kmem_event) ->
      match Kown.file_of_heap ~files ev.Kown.heap with
      | None -> None (* test-local scratch heap, no corresponding module *)
      | Some file -> if priced ~result file then None else Some (ev, file))
    events
  |> List.sort_uniq compare

(* The lockdep side: runtime lock-order edges whose lock class is (a)
   absent from the static lock graph and (b) created — by a literal
   [Klock.create ~name] — in a module the metric classifies as
   frame-free.  kracer already fails on (a) alone; this attributes the
   hole to the frame-confinement claim when the metric said the module
   had no business near raw locking. *)
let unsound_lock_edges ~result ~static_classes runtime_edges =
  let creators = result.lock_creators in
  runtime_edges
  |> List.concat_map (fun (a, b) -> [ Annot.lock_class a; Annot.lock_class b ])
  |> List.sort_uniq String.compare
  |> List.filter_map (fun cls ->
         if List.mem cls static_classes then None
         else
           match List.assoc_opt cls creators with
           | Some file when not (priced ~result file) -> Some (cls, file)
           | _ -> None)
