(* A single klint finding: a source location where a safety-ladder rule
   fires, tagged with the bug class the rule guards (which decides, via
   [Level.prevents], at which rung the finding becomes a violation). *)

type rule =
  | R1_unchecked_cast
  | R2_unchecked_errptr
  | R3_lock_balance
  | R4_ownership_bypass
  | R5_must_check
  | R6_lockset_race
  | R7_lock_annotation
  | R8_use_after_free
  | R9_double_free
  | R10_error_leak
  | R11_borrow_escape
  | R12_unsafe_primitive
  | R13_frame_bypass
  | R14_unsound_export
  | R15_unverified_claim
  | R16_unordered_write
  | R17_ack_before_durable
  | R18_barrier_elision

let all_rules =
  [ R1_unchecked_cast; R2_unchecked_errptr; R3_lock_balance; R4_ownership_bypass;
    R5_must_check; R6_lockset_race; R7_lock_annotation; R8_use_after_free;
    R9_double_free; R10_error_leak; R11_borrow_escape; R12_unsafe_primitive;
    R13_frame_bypass; R14_unsound_export; R15_unverified_claim; R16_unordered_write;
    R17_ack_before_durable; R18_barrier_elision ]

let rule_id = function
  | R1_unchecked_cast -> "R1"
  | R2_unchecked_errptr -> "R2"
  | R3_lock_balance -> "R3"
  | R4_ownership_bypass -> "R4"
  | R5_must_check -> "R5"
  | R6_lockset_race -> "R6"
  | R7_lock_annotation -> "R7"
  | R8_use_after_free -> "R8"
  | R9_double_free -> "R9"
  | R10_error_leak -> "R10"
  | R11_borrow_escape -> "R11"
  | R12_unsafe_primitive -> "R12"
  | R13_frame_bypass -> "R13"
  | R14_unsound_export -> "R14"
  | R15_unverified_claim -> "R15"
  | R16_unordered_write -> "R16"
  | R17_ack_before_durable -> "R17"
  | R18_barrier_elision -> "R18"

let rule_of_id s = List.find_opt (fun r -> rule_id r = s) all_rules

let rule_name = function
  | R1_unchecked_cast -> "unchecked-cast"
  | R2_unchecked_errptr -> "unchecked-err-ptr"
  | R3_lock_balance -> "lock-balance"
  | R4_ownership_bypass -> "ownership-bypass"
  | R5_must_check -> "must-check"
  | R6_lockset_race -> "lockset-race"
  | R7_lock_annotation -> "lock-annotation"
  | R8_use_after_free -> "use-after-free"
  | R9_double_free -> "double-free"
  | R10_error_leak -> "error-path-leak"
  | R11_borrow_escape -> "borrow-escape"
  | R12_unsafe_primitive -> "unsafe-primitive-outside-frame"
  | R13_frame_bypass -> "frame-api-bypass"
  | R14_unsound_export -> "unsound-frame-export"
  | R15_unverified_claim -> "unverified-functional-claim"
  | R16_unordered_write -> "unordered-dependent-write"
  | R17_ack_before_durable -> "ack-before-durable"
  | R18_barrier_elision -> "barrier-elision-at-boundary"

(* The bucket each rule polices — the mapping the reconciliation uses:
   a subsystem claiming level L must be clean of every rule whose bucket
   [Level.prevents L] rules out. *)
let bug_class = function
  | R1_unchecked_cast -> Safeos_core.Level.Type_confusion
  | R2_unchecked_errptr -> Safeos_core.Level.Null_dereference
  | R3_lock_balance -> Safeos_core.Level.Data_race
  | R4_ownership_bypass -> Safeos_core.Level.Use_after_free
  | R5_must_check -> Safeos_core.Level.Semantic
  | R6_lockset_race -> Safeos_core.Level.Data_race
  | R7_lock_annotation -> Safeos_core.Level.Data_race
  | R8_use_after_free -> Safeos_core.Level.Use_after_free
  | R9_double_free -> Safeos_core.Level.Double_free
  | R10_error_leak -> Safeos_core.Level.Memory_leak
  | R11_borrow_escape -> Safeos_core.Level.Use_after_free
  (* TCB confinement is a design property: no ladder rung structurally
     prevents it, so R12-R14 never become level violations — their
     ratchet is the tcb.baseline count, not the claim reconciliation. *)
  | R12_unsafe_primitive -> Safeos_core.Level.Design
  | R13_frame_bypass -> Safeos_core.Level.Design
  | R14_unsound_export -> Safeos_core.Level.Design
  (* "verified means checked": a Verified registry claim with no
     registered krefine harness is a correctness-evidence hole, so the
     finding becomes a violation exactly at the Verified rung. *)
  | R15_unverified_claim -> Safeos_core.Level.Semantic
  (* Durability discipline ratchets by count (dur.baseline), not by the
     claim reconciliation: the journal's own ?barriers:false ablation is
     a statically reachable missing-flush path inside Verified-claiming
     subsystems, so folding R16-R18 into the ladder would convict the
     deliberate mutant.  The bucket still names the honest bug class. *)
  | R16_unordered_write -> Safeos_core.Level.Crash_inconsistency
  | R17_ack_before_durable -> Safeos_core.Level.Crash_inconsistency
  | R18_barrier_elision -> Safeos_core.Level.Crash_inconsistency

(* Anchor each rule in the paper's CWE study via the kbugs catalog. *)
let cwe_id = function
  | R1_unchecked_cast -> 843 (* access of resource using incompatible type *)
  | R2_unchecked_errptr -> 476 (* NULL pointer dereference *)
  | R3_lock_balance -> 667 (* improper locking *)
  | R4_ownership_bypass -> 416 (* use after free *)
  | R5_must_check -> 754 (* improper check for unusual conditions *)
  | R6_lockset_race -> 362 (* concurrent execution with improper synchronization *)
  | R7_lock_annotation -> 667 (* improper locking: contract and body disagree *)
  | R8_use_after_free -> 416 (* use after free *)
  | R9_double_free -> 415 (* double free *)
  | R10_error_leak -> 401 (* missing release of memory after effective lifetime *)
  | R11_borrow_escape -> 416 (* use after free: borrow outlives its lend *)
  | R12_unsafe_primitive -> 1120 (* excessive complexity: unsafe TCB bloat *)
  | R13_frame_bypass -> 653 (* improper isolation or compartmentalization *)
  | R14_unsound_export -> 668 (* exposure of resource to wrong sphere *)
  | R15_unverified_claim -> 1059 (* insufficient technical documentation: claim without evidence *)
  | R16_unordered_write -> 662 (* improper synchronization: dependent write outruns its barrier *)
  | R17_ack_before_durable -> 392 (* missing report of error condition: Ok acked while volatile *)
  | R18_barrier_elision -> 573 (* improper following of specification: wrapper drops the flush contract *)

let cwe rule = Kbugs.Cwe.find (cwe_id rule)

type t = {
  rule : rule;
  file : string; (* path relative to the tree root, '/'-separated *)
  line : int;
  col : int;
  func : string; (* enclosing binding, for the human report; "" at toplevel *)
  message : string;
}

let v ~rule ~file ~loc ?(func = "") message =
  let pos = loc.Location.loc_start in
  {
    rule;
    file;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    func;
    message;
  }

(* The stable order everything downstream (baseline, report) uses:
   file, then line, then rule, so regenerating never reshuffles. *)
let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Stdlib.compare a.line b.line with
      | 0 -> (
          match String.compare (rule_id a.rule) (rule_id b.rule) with
          | 0 -> Stdlib.compare a.col b.col
          | c -> c)
      | c -> c)
  | c -> c

let sort findings = List.sort_uniq compare findings

let pp ppf f =
  Fmt.pf ppf "%s:%d:%d: [%s %s/CWE-%d] %s%s" f.file f.line f.col (rule_id f.rule)
    (Safeos_core.Level.bug_class_to_string (bug_class f.rule))
    (cwe_id f.rule) f.message
    (if f.func = "" then "" else Fmt.str " (in %s)" f.func)
