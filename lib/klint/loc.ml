(* Effective-line counting for the Figure-1 audit: a line counts when it
   carries code — not blank, not entirely inside a comment.  Deliberately
   a small scanner rather than a full lexer; string literals are tracked
   so a ["(*"] inside a string does not open a comment. *)

let count_string s =
  let n = String.length s in
  let lines = ref 0 in
  let code_on_line = ref false in
  let depth = ref 0 in
  let in_string = ref false in
  let i = ref 0 in
  let flush_line () =
    if !code_on_line then incr lines;
    code_on_line := false
  in
  while !i < n do
    let c = s.[!i] in
    (if !in_string then
       match c with
       | '\\' when !i + 1 < n -> incr i (* skip the escaped char *)
       | '"' -> in_string := false
       | '\n' -> flush_line ()
       | _ -> ()
     else if !depth > 0 then
       match c with
       | '(' when !i + 1 < n && s.[!i + 1] = '*' ->
           incr depth;
           incr i
       | '*' when !i + 1 < n && s.[!i + 1] = ')' ->
           decr depth;
           incr i
       | '\n' -> flush_line ()
       | _ -> ()
     else
       match c with
       | '(' when !i + 1 < n && s.[!i + 1] = '*' ->
           incr depth;
           incr i
       | '"' ->
           in_string := true;
           code_on_line := true
       | '\n' -> flush_line ()
       | ' ' | '\t' | '\r' -> ()
       | _ -> code_on_line := true);
    incr i
  done;
  flush_line ();
  !lines

let count_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> count_string (really_input_string ic (in_channel_length ic)))

let is_ml path = Filename.check_suffix path ".ml"

(* Every .ml under [dir], recursively, as root-relative '/'-paths in
   lexicographic order — the deterministic file walk the whole linter
   shares. *)
let rec ml_files_under ~root rel =
  let abs = Filename.concat root rel in
  if Sys.is_directory abs then
    Sys.readdir abs |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun name ->
           if String.length name > 0 && name.[0] = '.' then []
           else
             let child = if rel = "" then name else rel ^ "/" ^ name in
             let child_abs = Filename.concat root child in
             if Sys.is_directory child_abs then ml_files_under ~root child
             else if is_ml child then [ child ]
             else [])
  else if is_ml rel then [ rel ]
  else []

(* [loc_of_dir ~root path]: effective lines of one file or of every .ml
   under a directory, both given relative to [root]. *)
let loc_of_dir ~root path =
  if not (Sys.file_exists (Filename.concat root path)) then None
  else
    Some
      (List.fold_left
         (fun acc rel -> acc + count_file (Filename.concat root rel))
         0
         (ml_files_under ~root path))
