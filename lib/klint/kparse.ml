(* Parsing front end: one .ml file to a Parsetree.structure via the
   installed compiler's own parser (compiler-libs), so klint sees
   exactly the syntax the build sees. *)

let parse path =
  match Pparse.parse_implementation ~tool_name:"klint" path with
  | structure -> Ok structure
  | exception exn -> (
      match Location.error_of_exn exn with
      | Some (`Ok report) -> Error (Format.asprintf "%a" Location.print_report report)
      | Some `Already_displayed | None -> Error (Printexc.to_string exn))
