(* kdur — the interprocedural barrier-discipline & durability-ordering
   analysis (rules R16–R18), third of klint's summary-fixpoint passes
   after kracer (locks) and kown (ownership).

   Per-function {!Durset} walks carry only local facts; kdur closes them
   over the {!Callgraph} with one bottom-up fixpoint on durability
   transfers: whether a function leaves the device volatile (from a
   clean or dirty entry), writes at all, or performs a full barrier.
   Annotations ([@flushes]/[@durable]/[@orders_after], [.mli]-merged)
   override the inference where present, so a barrier contract can be
   stated once and checked against every caller.

   The second output is the runtime reconciliation: {!Kblock.Wcache}
   dumps its barrier-discipline audit (read-back-then-dependent-write
   violations) when [KSIM_WCACHE_EXPORT] is set, and
   [unflagged_wcache_violations] subtracts kdur's static R16 findings —
   any runtime violation in a linted file that kdur did not flag
   statically is an unsoundness (an ordering path the syntactic analysis
   failed to see) and fails CI, exactly like kracer's lock-graph and
   kown's kmem-event reconciliations.

   R16–R18 ratchet by per-(rule, file) count (dur.baseline, shared
   {!Baseline.Counts} engine), not by the ladder reconciliation: the
   journal's own [?barriers:false] ablation is a statically reachable
   missing-flush path inside Verified-claiming subsystems, and the
   ratchet must tolerate the declared mutant while forbidding new ones. *)

type result = {
  findings : Finding.t list;
  funcs : int;  (** functions analyzed *)
  durable_funcs : int;  (** functions contracted [@durable] *)
  ordering_funcs : int;  (** functions contracted [@orders_after] *)
  writing_funcs : int;  (** summaries that issue device writes *)
  flushing_funcs : int;  (** summaries that perform a full barrier *)
  summaries : (string * Durset.summary) list;
      (** the converged per-function transfers, keyed by qualified name *)
}

let empty =
  {
    findings = [];
    funcs = 0;
    durable_funcs = 0;
    ordering_funcs = 0;
    writing_funcs = 0;
    flushing_funcs = 0;
    summaries = [];
  }

(* The block mechanism itself is excluded: [Io.t] is the contract being
   policed, and Wcache/Blockdev/Flakydev are the devices implementing
   it — their write-back plumbing legitimately buffers, reorders and
   destages, so analyzing the mechanism would only flag itself. *)
let excluded rel =
  List.mem rel
    [
      "lib/kblock/io.ml"; "lib/kblock/wcache.ml"; "lib/kblock/blockdev.ml";
      "lib/kblock/flakydev.ml";
    ]

let analyze ~root files =
  let files = List.filter (fun (rel, _) -> not (excluded rel)) files in
  let cg = Callgraph.build ~root files in
  let tbl : (string, Durset.summary) Hashtbl.t = Hashtbl.create 64 in
  let lookup name =
    Option.value ~default:Durset.empty_summary (Hashtbl.find_opt tbl name)
  in
  (* Bottom-up transfer fixpoint, kown's pattern.  Effects only turn on
     as callee summaries arrive; the round cap is a backstop. *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 32 do
    changed := false;
    incr rounds;
    List.iter
      (fun f ->
        let s = Durset.summarize cg lookup f in
        if not (Durset.summary_equal s (lookup (Callgraph.name f))) then begin
          Hashtbl.replace tbl (Callgraph.name f) s;
          changed := true
        end)
      cg.Callgraph.funcs
  done;
  (* Final pass under the stable summaries is the one that reports. *)
  let findings = ref [] in
  List.iter
    (fun f ->
      ignore
        (Durset.summarize ~emit:(fun x -> findings := x :: !findings) cg lookup f
          : Durset.summary))
    cg.Callgraph.funcs;
  let writing_funcs, flushing_funcs =
    Hashtbl.fold
      (fun _ (s : Durset.summary) (w, fl) ->
        ( (if s.Durset.writes then w + 1 else w),
          if s.Durset.flushes then fl + 1 else fl ))
      tbl (0, 0)
  in
  let durable_funcs, ordering_funcs =
    List.fold_left
      (fun (d, o) (f : Callgraph.func) ->
        ( (if f.Callgraph.annot.Annot.durable then d + 1 else d),
          if f.Callgraph.annot.Annot.orders_after <> [] then o + 1 else o ))
      (0, 0) cg.Callgraph.funcs
  in
  {
    findings = Finding.sort !findings;
    funcs = List.length cg.Callgraph.funcs;
    durable_funcs;
    ordering_funcs;
    writing_funcs;
    flushing_funcs;
    summaries =
      Hashtbl.fold (fun name s acc -> (name, s) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }

(* Standalone entry (bench, tests): parse the tree itself. *)
let analyze_tree ~root =
  let files =
    Loc.ml_files_under ~root "lib"
    |> List.filter_map (fun rel ->
           match Kparse.parse (Filename.concat root rel) with
           | Ok structure -> Some (rel, structure)
           | Error _ -> None)
  in
  analyze ~root files

(* The count ratchet --------------------------------------------------------- *)

let baseline_header =
  "# dur baseline — grandfathered durability findings (R16-R18), counted per\n\
   # (rule, file).  The declared exhibits live here: the journal's\n\
   # ?barriers:false ablation paths and lib/kfs/rawlog_unsafe.ml.  Shrink by\n\
   # fixing barrier paths; regenerate (after genuine fixes only) with:\n\
   #   dune exec bin/klint/main.exe -- --update-dur-baseline\n"

let load_baseline path = Baseline.Counts.load ~what:"dur" path
let save_baseline path entries = Baseline.Counts.save ~header:baseline_header path entries

(* Runtime reconciliation --------------------------------------------------- *)

type wcache_violation = {
  cache : string;
  v_blkno : int;
  v_read_seq : int;
  v_write_blkno : int;
  v_write_seq : int;
}

(* "name\tblkno\tread_seq\twrite_blkno\twrite_seq" per line, the format
   [Wcache]'s [KSIM_WCACHE_EXPORT] at_exit hook writes.  Unparseable
   lines are errors — a truncated export must not pass reconciliation by
   vacuity. *)
let read_wcache_violations path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> loop acc
        | line -> (
            match String.split_on_char '\t' line with
            | [ cache; a; b; c; d ] -> (
                match
                  ( int_of_string_opt a, int_of_string_opt b, int_of_string_opt c,
                    int_of_string_opt d )
                with
                | Some v_blkno, Some v_read_seq, Some v_write_blkno, Some v_write_seq ->
                    loop
                      ({ cache; v_blkno; v_read_seq; v_write_blkno; v_write_seq } :: acc)
                | _ -> Error (Fmt.str "%s: malformed wcache violation line %S" path line))
            | _ -> Error (Fmt.str "%s: malformed wcache violation line %S" path line))
      in
      loop [])

(* A cache is attributed to the linted file whose module basename equals
   the cache name ([~name:"rawlog_unsafe"] -> [lib/kfs/rawlog_unsafe.ml]);
   caches with no such file (test-local scratch caches, default-named
   stacks) cannot correspond to a static finding and are skipped, as are
   caches naming a mechanism file kdur excludes by design. *)
let file_of_cache ~files cache =
  List.find_opt
    (fun rel -> String.equal (Filename.remove_extension (Filename.basename rel)) cache)
    files

(* Aggregate runtime violations by cache and subtract the static
   findings: a cache survives — [(cache, file, count)] — when its file
   has no static R16 finding at all.  Audit violations carry block
   numbers and write sequences, not source locations, so the granularity
   is the file: the static analysis must have *something* to say about
   unordered dependent writes in that file, baselined or not. *)
let unflagged_wcache_violations ~files ~findings events =
  let agg = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      Hashtbl.replace agg ev.cache
        (1 + Option.value ~default:0 (Hashtbl.find_opt agg ev.cache)))
    events;
  Hashtbl.fold (fun cache n acc -> (cache, n) :: acc) agg []
  |> List.sort compare
  |> List.filter_map (fun (cache, n) ->
         match file_of_cache ~files cache with
         | None -> None
         | Some file when excluded file -> None
         | Some file ->
             if
               List.exists
                 (fun (f : Finding.t) ->
                   f.Finding.rule = Finding.R16_unordered_write
                   && String.equal f.Finding.file file)
                 findings
             then None
             else Some (cache, file, n))
