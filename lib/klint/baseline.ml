(* The grandfather file: findings present when klint was introduced.
   The ratchet only tightens — a finding matching a baseline entry is
   tolerated, a new one is not (when the claiming subsystem's level
   forbids its bug class), and entries that stop matching are reported
   as ratchet progress so the file can be regenerated smaller.

   Format, one entry per line, sorted by file/line/rule so regeneration
   never produces spurious diffs:

     R1 lib/knet/sock.ml:121 type-confusion
*)

type entry = {
  rule : Finding.rule;
  file : string;
  line : int;
}

let entry_of_finding (f : Finding.t) =
  { rule = f.Finding.rule; file = f.Finding.file; line = f.Finding.line }

let compare_entry a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Stdlib.compare a.line b.line with
      | 0 -> String.compare (Finding.rule_id a.rule) (Finding.rule_id b.rule)
      | c -> c)
  | c -> c

let of_findings findings =
  List.sort_uniq compare_entry (List.map entry_of_finding findings)

let entry_to_line e =
  Fmt.str "%s %s:%d %s" (Finding.rule_id e.rule) e.file e.line
    (Safeos_core.Level.bug_class_to_string (Finding.bug_class e.rule))

let header =
  "# klint baseline — grandfathered findings, sorted by file/line/rule.\n\
   # Regenerate (after genuine fixes only) with:\n\
   #   dune exec bin/klint/main.exe -- --update-baseline\n"

let to_string entries =
  header ^ String.concat "" (List.map (fun e -> entry_to_line e ^ "\n") entries)

let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    match String.split_on_char ' ' line with
    | rule_id :: loc :: _ -> (
        match (Finding.rule_of_id rule_id, String.rindex_opt loc ':') with
        | Some rule, Some i -> (
            let file = String.sub loc 0 i in
            match int_of_string_opt (String.sub loc (i + 1) (String.length loc - i - 1)) with
            | Some line -> Ok (Some { rule; file; line })
            | None -> Error (Fmt.str "bad line number in %S" loc))
        | None, _ -> Error (Fmt.str "unknown rule id %S" rule_id)
        | _, None -> Error (Fmt.str "missing :line in %S" loc))
    | _ -> Error (Fmt.str "malformed baseline entry %S" line)

let of_string s =
  let entries = ref [] in
  let errors = ref [] in
  List.iter
    (fun line ->
      match parse_line line with
      | Ok (Some e) -> entries := e :: !entries
      | Ok None -> ()
      | Error msg -> errors := msg :: !errors)
    (String.split_on_char '\n' s);
  match !errors with
  | [] -> Ok (List.sort_uniq compare_entry !entries)
  | errs -> Error (String.concat "; " (List.rev errs))

let load path =
  if not (Sys.file_exists path) then Ok []
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let save path entries =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string entries))

let mem entries (f : Finding.t) =
  let e = entry_of_finding f in
  List.exists (fun e' -> compare_entry e e' = 0) entries

(* Baseline entries no longer matched by any finding: the ratchet moved. *)
let stale entries findings =
  let live = of_findings findings in
  List.filter (fun e -> not (List.exists (fun l -> compare_entry e l = 0) live)) entries

(* Count ratchets ----------------------------------------------------------- *)

(* The shared engine behind every per-(rule, file) *count* baseline:
   tcb.baseline (R12-R14) and dur.baseline (R16-R18) both ratchet
   downward-only counts, renumbering-proof by construction — no line
   numbers, so moving code around a specimen file cannot fake progress
   or regression.  One entry per line:

     R12 lib/kfs/memfs_unsafe.ml 17

   Each client supplies its own header (naming its --update-* flag) and
   a [what] tag for parse errors; parsing, comparison, and the
   regression/progress split live here once.  The line-anchored
   klint.baseline growth check rides the same comparison via [counts]. *)
module Counts = struct
  type entry = {
    b_rule : Finding.rule;
    b_file : string;
    b_count : int;
  }

  let compare_entry a b =
    match String.compare a.b_file b.b_file with
    | 0 -> String.compare (Finding.rule_id a.b_rule) (Finding.rule_id b.b_rule)
    | c -> c

  let of_findings findings =
    List.fold_left
      (fun acc (f : Finding.t) ->
        let k = (f.Finding.rule, f.Finding.file) in
        let n = try List.assoc k acc with Not_found -> 0 in
        (k, n + 1) :: List.remove_assoc k acc)
      [] findings
    |> List.map (fun ((rule, file), count) ->
           { b_rule = rule; b_file = file; b_count = count })
    |> List.sort compare_entry

  let entry_to_line e =
    Fmt.str "%s %s %d" (Finding.rule_id e.b_rule) e.b_file e.b_count

  let to_string ~header entries =
    header ^ String.concat "" (List.map (fun e -> entry_to_line e ^ "\n") entries)

  let parse_line ~what line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then Ok None
    else
      match String.split_on_char ' ' line with
      | [ rule_id; file; count ] -> (
          match (Finding.rule_of_id rule_id, int_of_string_opt count) with
          | Some rule, Some count when count >= 0 ->
              Ok (Some { b_rule = rule; b_file = file; b_count = count })
          | None, _ -> Error (Fmt.str "unknown rule id %S" rule_id)
          | _, _ -> Error (Fmt.str "bad count in %S" line))
      | _ -> Error (Fmt.str "malformed %s baseline entry %S" what line)

  let of_string ~what s =
    let entries = ref [] in
    let errors = ref [] in
    List.iter
      (fun line ->
        match parse_line ~what line with
        | Ok (Some e) -> entries := e :: !entries
        | Ok None -> ()
        | Error msg -> errors := msg :: !errors)
      (String.split_on_char '\n' s);
    match !errors with
    | [] -> Ok (List.sort compare_entry !entries)
    | errs -> Error (String.concat "; " (List.rev errs))

  let load ~what path =
    if not (Sys.file_exists path) then Ok []
    else
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> of_string ~what (really_input_string ic (in_channel_length ic)))

  let save ~header path entries =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (to_string ~header entries))

  type delta = {
    d_rule : Finding.rule;
    d_file : string;
    d_have : int;
    d_allowed : int;
  }

  (* [compare_counts ~baseline current] = (regressions, progress): any
     (rule, file) whose live count exceeds its grandfathered count is a
     regression; any strictly below it (including entries that vanished)
     is ratchet progress, reported so the file can be regenerated
     smaller. *)
  let compare_counts ~baseline current =
    let find entries rule file =
      match
        List.find_opt
          (fun e -> e.b_rule = rule && String.equal e.b_file file)
          entries
      with
      | Some e -> e.b_count
      | None -> 0
    in
    let regressions =
      List.filter_map
        (fun e ->
          let allowed = find baseline e.b_rule e.b_file in
          if e.b_count > allowed then
            Some
              { d_rule = e.b_rule; d_file = e.b_file; d_have = e.b_count; d_allowed = allowed }
          else None)
        current
    in
    let progress =
      List.filter_map
        (fun e ->
          let have = find current e.b_rule e.b_file in
          if have < e.b_count then
            Some { d_rule = e.b_rule; d_file = e.b_file; d_have = have; d_allowed = e.b_count }
          else None)
        baseline
    in
    (regressions, progress)
end

(* The line-anchored baseline, aggregated per (rule, file) — the growth
   comparison ci.sh used to re-derive in awk: pure renumbering from
   unrelated edits in the same file is not growth, one more finding in a
   file is. *)
let counts entries =
  Counts.of_findings
    (List.map
       (fun e ->
         { Finding.rule = e.rule; file = e.file; line = e.line; col = 0; func = "";
           message = "" })
       entries)
