(* The whole-tree call graph kracer propagates lock-context facts over.

   Built from the same compiler-libs parsetrees the per-file rules use.
   Resolution is sparse-style syntactic: a function is keyed by its
   qualified path (file module name plus nested modules, e.g.
   [Memfs_unsafe.set_size]); a call site's path resolves to the known
   function whose qualified path is suffix-compatible with it, with
   same-file definitions preferred for unqualified calls and ambiguous
   names left unresolved rather than guessed.  Unresolved calls are
   assumed lock-neutral — the documented unsoundness kracer's
   runtime-graph reconciliation exists to catch. *)

open Parsetree

type func = {
  qualname : string list;  (** [["Memfs_unsafe"; "set_size"]] *)
  file : string;  (** root-relative path of the defining [.ml] *)
  loc : Location.t;
  annot : Annot.t;  (** merged from the [.ml] binding and its [.mli] val *)
  body : expression;
}

let name func = String.concat "." func.qualname

type t = {
  funcs : func list;  (** in definition order, deterministic *)
  by_last : (string, func list) Hashtbl.t;  (** last component -> candidates *)
}

(* Collection ------------------------------------------------------------- *)

let module_name_of_file rel =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename rel))

let binding_name vb =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ } | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) ->
      Some txt
  | _ -> None

let rec collect_structure ~file ~prefix structure =
  List.concat_map (collect_item ~file ~prefix) structure

and collect_item ~file ~prefix item =
  match item.pstr_desc with
  | Pstr_value (_, vbs) ->
      List.filter_map
        (fun vb ->
          match binding_name vb with
          | Some n ->
              Some
                {
                  qualname = prefix @ [ n ];
                  file;
                  loc = vb.pvb_loc;
                  annot = Annot.of_attributes vb.pvb_attributes;
                  body = vb.pvb_expr;
                }
          | None -> None)
        vbs
  | Pstr_module mb -> collect_module ~file ~prefix mb.pmb_name.txt mb.pmb_expr
  | Pstr_recmodule mbs ->
      List.concat_map (fun mb -> collect_module ~file ~prefix mb.pmb_name.txt mb.pmb_expr) mbs
  | Pstr_include { pincl_mod; _ } -> collect_module ~file ~prefix None pincl_mod
  | _ -> []

and collect_module ~file ~prefix name mexpr =
  let prefix = match name with Some n -> prefix @ [ n ] | None -> prefix in
  match mexpr.pmod_desc with
  | Pmod_structure structure -> collect_structure ~file ~prefix structure
  | Pmod_functor (_, body) -> collect_module ~file ~prefix None body
  | Pmod_constraint (m, _) -> collect_module ~file ~prefix None m
  | _ -> []

(* [.mli] annotations: doc comments on [val] items, merged into the
   implementation's functions by qualified name. *)
let rec collect_sig_annots ~prefix signature =
  List.concat_map
    (fun (item : signature_item) ->
      match item.psig_desc with
      | Psig_value vd -> (
          match Annot.of_attributes vd.pval_attributes with
          | a when Annot.is_empty a -> []
          | a -> [ (prefix @ [ vd.pval_name.txt ], a) ])
      | Psig_module { pmd_name = { txt = Some n; _ }; pmd_type; _ } -> (
          match pmd_type.pmty_desc with
          | Pmty_signature s -> collect_sig_annots ~prefix:(prefix @ [ n ]) s
          | _ -> [])
      | _ -> [])
    signature

let mli_annots ~root rel_ml =
  let mli = Filename.concat root (Filename.remove_extension rel_ml ^ ".mli") in
  if not (Sys.file_exists mli) then []
  else
    match Pparse.parse_interface ~tool_name:"klint" mli with
    | signature ->
        collect_sig_annots ~prefix:[ module_name_of_file rel_ml ] signature
    | exception _ -> []

(* Build ------------------------------------------------------------------ *)

let build ~root files =
  let funcs =
    List.concat_map
      (fun (rel, structure) ->
        let prefix = [ module_name_of_file rel ] in
        let funcs = collect_structure ~file:rel ~prefix structure in
        match mli_annots ~root rel with
        | [] -> funcs
        | sig_annots ->
            List.map
              (fun f ->
                match List.assoc_opt f.qualname sig_annots with
                | Some a -> { f with annot = Annot.union f.annot a }
                | None -> f)
              funcs)
      files
  in
  let by_last = Hashtbl.create 256 in
  List.iter
    (fun f ->
      match List.rev f.qualname with
      | last :: _ ->
          Hashtbl.replace by_last last (f :: (Option.value ~default:[] (Hashtbl.find_opt by_last last)))
      | [] -> ())
    funcs;
  { funcs; by_last }

(* Resolution ------------------------------------------------------------- *)

let rec is_prefix a b =
  match (a, b) with
  | [], _ -> true
  | x :: a', y :: b' -> String.equal x y && is_prefix a' b'
  | _ :: _, [] -> false

(* [resolve t ~caller path]: the function a call to [path] denotes, if
   any.  [path] is the flattened longident ([["Kvfs"; "Vtypes"; "f"]]).
   Qualified calls match on reversed-module-path prefix compatibility
   (so [Kvfs.Vtypes.f] and [Vtypes.f] both reach [Vtypes.f]); unqualified
   calls prefer the latest same-file definition (lexical shadowing,
   approximately) and otherwise require a unique global candidate. *)
let resolve t ~caller path =
  match List.rev path with
  | [] -> None
  | last :: rev_mods -> (
      match Hashtbl.find_opt t.by_last last with
      | None -> None
      | Some candidates -> (
          let candidates = List.rev candidates (* definition order *) in
          match rev_mods with
          | [] -> (
              match
                List.filter (fun f -> String.equal f.file caller.file) candidates
              with
              | [] -> ( match candidates with [ f ] -> Some f | _ -> None)
              | same_file ->
                  (* last definition wins, like shadowing *)
                  Some (List.nth same_file (List.length same_file - 1)))
          | _ ->
              let compatible f =
                let rev_qmods = List.tl (List.rev f.qualname) in
                is_prefix rev_qmods rev_mods || is_prefix rev_mods rev_qmods
              in
              ( match List.filter compatible candidates with
              | [ f ] -> Some f
              | [] -> None
              | several -> (
                  (* prefer a same-file match, else ambiguous *)
                  match List.filter (fun f -> String.equal f.file caller.file) several with
                  | [ f ] -> Some f
                  | _ -> None ) ) ) )
