(* The source map: which files implement which registry subsystem, and
   what safety level each unregistered corner of the tree claims.

   Two consumers:
   - the reconciliation pass, which needs a claimed level for every file
     a finding lands in (registered subsystems take their level from the
     live registry; the defaults below cover the rest);
   - the Figure-1 audit, which derives [Registry.entry.loc] from these
     same file sets via {!Loc.loc_of_dir}, so the audit numbers and the
     linter's per-subsystem attribution cannot drift apart. *)

module Level = Safeos_core.Level

(* Registered subsystems (the boot registry's names) -> source files or
   directories, relative to the tree root. *)
let registry_sources =
  [
    ("memfs", [ "lib/kfs/memfs_unsafe.ml" ]);
    ("journalfs", [ "lib/kfs/journalfs.ml" ]);
    ("unionfs", [ "lib/kfs/unionfs.ml" ]);
    ("cowfs", [ "lib/kfs/cowfs.ml" ]);
    ("blockdev", [ "lib/kblock/blockdev.ml"; "lib/kblock/flakydev.ml"; "lib/kblock/io.ml"; "lib/kblock/resilient.ml"; "lib/kblock/codec.ml" ]);
    ("buffer_cache", [ "lib/kblock/buffer_head.ml" ]);
    ("journal", [ "lib/kblock/journal.ml" ]);
    ("tcp", [ "lib/knet/tcp.ml" ]);
    ("socket", [ "lib/knet/sock.ml" ]);
    ("kmem", [ "lib/ksim/kmem.ml" ]);
    ("sched", [ "lib/ksim/kthread.ml" ]);
    ("ebpf_vm", [ "lib/kebpf" ]);
    ("mm", [ "lib/kmm" ]);
    ("lockdep", [ "lib/ksim/lockdep.ml" ]);
    ("proc", [ "lib/kproc" ]);
  ]

let sources_of name = List.assoc_opt name registry_sources

type claim = {
  sub : string;  (** subsystem the file belongs to *)
  level : Level.t;  (** claimed safety level (registry overrides when registered) *)
  registered : bool;  (** true when [sub] is a boot-registry name *)
}

(* Default levels for code outside the registry.  The deliberately
   unsafe exhibits — the C-idiom substrate itself (ksim), the bug corpus
   (kbugs), the CVE dataset (kcve), and the AMP case study — claim
   [Unsafe], so their findings are recorded but never violations: they
   exist to *have* these bugs. *)
let defaults =
  [
    ("lib/knet/amp.ml", ("amp_exhibit", Level.Unsafe));
    ("lib/kfs/memfs_typed.ml", ("memfs_typed", Level.Type_safe));
    ("lib/kfs/memfs_owned.ml", ("memfs_owned", Level.Ownership_safe));
    ("lib/kfs/memfs_verified.ml", ("memfs_verified", Level.Type_safe));
    ("lib/kfs", ("kfs_misc", Level.Type_safe));
    ("lib/kbugs", ("kbugs", Level.Unsafe));
    ("lib/kcve", ("kcve", Level.Unsafe));
    ("lib/ksim", ("ksim", Level.Unsafe));
    ("lib/kvfs", ("kvfs", Level.Modular));
    ("lib/kspec", ("kspec", Level.Type_safe));
    ("lib/knet", ("knet_misc", Level.Type_safe));
    ("lib/kblock", ("kblock_misc", Level.Type_safe));
    ("lib/kload", ("kload", Level.Type_safe));
    ("lib/kharness", ("kharness", Level.Type_safe));
    ("lib/ownership", ("ownership", Level.Ownership_safe));
    ("lib/core", ("safeos_core", Level.Type_safe));
    ("lib/klint", ("klint", Level.Type_safe));
  ]

let under dir path =
  String.equal dir path
  || String.length path > String.length dir
     && String.sub path 0 (String.length dir + 1) = dir ^ "/"

(* Longest-match first: a file-granular entry beats its directory. *)
let claim_of_path path =
  let registered =
    List.find_map
      (fun (name, srcs) ->
        if List.exists (fun src -> under src path) srcs then Some name else None)
      registry_sources
  in
  match registered with
  | Some sub -> { sub; level = Level.Modular; registered = true }
  | None -> (
      let best =
        List.fold_left
          (fun acc (prefix, (sub, level)) ->
            if under prefix path then
              match acc with
              | Some (len, _, _) when len >= String.length prefix -> acc
              | _ -> Some (String.length prefix, sub, level)
            else acc)
          None defaults
      in
      match best with
      | Some (_, sub, level) -> { sub; level; registered = false }
      | None -> { sub = "unmapped"; level = Level.Unsafe; registered = false })

(* R4 exempts the ownership layer itself: implementing the discipline
   requires touching the raw representations it polices. *)
let exempt_from_ownership_rule path = under "lib/ownership" path
