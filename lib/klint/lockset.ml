(* The per-function lockset walk kracer's interprocedural analysis is
   built from.

   For one function body, track the set of lock *classes* held locally
   (relative to an unknown entry context) and record three kinds of
   events, each with the locally-held set at that point:

   - acquisitions ([Klock.acquire]/[try_acquire]/[with_lock]) — the raw
     material of the static lock-order graph;
   - [Klock.Guarded] cell accesses — the raw material of the R6 check;
   - calls to functions known to the {!Callgraph} — the edges lock
     context propagates over.

   Branch joins are must-intersections (a lock counts as held after a
   conditional only when every surviving branch holds it), diverging
   branches are exempt as in R3, and closures are analyzed under the
   context of their definition point — the run-immediately idiom
   ([with_lock l (fun () -> ...)], [Hashtbl.iter] under a lock) which is
   how this tree uses them.  Guard relationships are harvested from
   [Guarded.create ~lock ~name] sites: the cell class comes from the
   [~name] literal (["i_size:%d"] -> [i_size]), the guard class from the
   lock expression ([i_lock]). *)

open Parsetree
open Rules
module SS = Set.Make (String)

type event = {
  subject : string;  (** lock class acquired / cell class accessed / callee name *)
  locked : SS.t;  (** lock classes held locally at the event *)
  loc : Location.t;
}

type summary = {
  func : Callgraph.func;
  acquires : event list;  (** every acquisition site, innermost context *)
  cell_uses : event list;  (** every [Guarded.get]/[set] through checked accessors *)
  calls : (Callgraph.func * event) list;  (** resolved call sites *)
  guards : (string * string) list;  (** cell class -> guard class, from create sites *)
  unresolved : int;
      (** call sites whose name is known to the graph but ambiguous —
          kracer assumes them lock-neutral, the reconciliation's job *)
}

(* Primitive classification ---------------------------------------------- *)

type prim =
  | P_with_lock
  | P_acquire
  | P_try_acquire
  | P_release
  | P_guarded_use
  | P_guarded_create
  | P_none

let classify f =
  if ident_matches ~penult:"Klock" ~last:"with_lock" f then P_with_lock
  else if ident_matches ~penult:"Klock" ~last:"acquire" f then P_acquire
  else if ident_matches ~penult:"Klock" ~last:"try_acquire" f then P_try_acquire
  else if ident_matches ~penult:"Klock" ~last:"release" f then P_release
  else if
    ident_matches ~penult:"Guarded" ~last:"get" f
    || ident_matches ~penult:"Guarded" ~last:"set" f
  then P_guarded_use
  else if ident_matches ~penult:"Guarded" ~last:"create" f then P_guarded_create
  else P_none

let nolabel_arg args =
  match List.find_opt (fun (l, _) -> l = Asttypes.Nolabel) args with
  | Some (_, a) -> Some a
  | None -> None

let labelled_arg name args =
  List.find_map
    (fun (l, a) ->
      match l with
      | Asttypes.Labelled n when String.equal n name -> Some a
      | _ -> None)
    args

let arg_class args =
  match nolabel_arg args with
  | Some a -> Some (Annot.lock_class (expr_key a))
  | None -> None

(* The cell-naming convention: [~name:"i_size:7"], or
   [~name:(Printf.sprintf "i_size:%d" ino)] — a literal, possibly the
   head argument of a formatting call. *)
let rec name_literal e =
  match (strip e).pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | Pexp_apply (_, args) -> Option.bind (nolabel_arg args) name_literal
  | _ -> None

(* The walk -------------------------------------------------------------- *)

let summarize (cg : Callgraph.t) (func : Callgraph.func) =
  let acquires = ref [] in
  let cell_uses = ref [] in
  let calls = ref [] in
  let guards = ref [] in
  let unresolved = ref 0 in
  let event subject locked loc = { subject; locked; loc } in
  let record_acquire cl locked loc = acquires := event cl locked loc :: !acquires in
  let rec walk locked e : SS.t =
    match e.pexp_desc with
    | Pexp_constraint (e', _) | Pexp_open (_, e') | Pexp_newtype (_, e') -> walk locked e'
    | Pexp_apply (f, args) -> (
        match classify f with
        | P_with_lock -> (
            match args with
            | (_, lock_e) :: rest ->
                let locked = walk locked lock_e in
                let cl = Annot.lock_class (expr_key lock_e) in
                record_acquire cl locked e.pexp_loc;
                let inner = SS.add cl locked in
                List.iter (fun (_, a) -> ignore (walk inner a : SS.t)) rest;
                locked
            | [] -> locked)
        | P_acquire -> (
            let locked = args_walk locked args in
            match arg_class args with
            | Some cl ->
                record_acquire cl locked e.pexp_loc;
                SS.add cl locked
            | None -> locked)
        | P_try_acquire -> (
            (* lockdep records the ordering on success; statically we
               record the may-edge but, being a must-analysis, do not
               treat the lock as held afterwards. *)
            let locked = args_walk locked args in
            (match arg_class args with
            | Some cl -> record_acquire cl locked e.pexp_loc
            | None -> ());
            locked)
        | P_release -> (
            let locked = args_walk locked args in
            match arg_class args with Some cl -> SS.remove cl locked | None -> locked)
        | P_guarded_use ->
            let locked = args_walk locked args in
            (match nolabel_arg args with
            | Some cell ->
                cell_uses :=
                  event (Annot.lock_class (expr_key cell)) locked e.pexp_loc :: !cell_uses
            | None -> ());
            locked
        | P_guarded_create ->
            let locked = args_walk locked args in
            (match
               ( Option.bind (labelled_arg "name" args) name_literal,
                 labelled_arg "lock" args )
             with
            | Some n, Some lock_e ->
                guards := (Annot.lock_class n, Annot.lock_class (expr_key lock_e)) :: !guards
            | _ -> ());
            locked
        | P_none ->
            let locked = walk locked f in
            let locked = args_walk locked args in
            let callee =
              match (strip f).pexp_desc with
              | Pexp_ident { txt; _ } ->
                  let path = flatten txt in
                  let r = Callgraph.resolve cg ~caller:func path in
                  (match (r, List.rev path) with
                  | None, last :: _ when Hashtbl.mem cg.Callgraph.by_last last ->
                      incr unresolved
                  | _ -> ());
                  r
              | _ -> None
            in
            (match callee with
            | Some g ->
                calls := (g, event (Callgraph.name g) locked e.pexp_loc) :: !calls;
                (* the callee's declared effects move the caller's context *)
                let locked =
                  List.fold_left (fun s l -> SS.add l s) locked g.Callgraph.annot.Annot.acquires
                in
                List.fold_left (fun s l -> SS.remove l s) locked g.Callgraph.annot.Annot.releases
            | None -> locked))
    | Pexp_sequence (a, b) -> walk (walk locked a) b
    | Pexp_let (_, vbs, body) ->
        let locked = List.fold_left (fun l vb -> walk l vb.pvb_expr) locked vbs in
        walk locked body
    | Pexp_ifthenelse (cond, then_, else_) ->
        let locked = walk locked cond in
        let branches =
          (then_ :: Option.to_list else_)
          |> List.filter_map (fun b ->
                 let after = walk locked b in
                 if Checks.diverges b then None else Some after)
        in
        let branches = if else_ = None then locked :: branches else branches in
        join locked branches
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        let locked = walk locked scrut in
        let branches =
          List.filter_map
            (fun c ->
              Option.iter (fun g -> ignore (walk locked g : SS.t)) c.pc_guard;
              let after = walk locked c.pc_rhs in
              if Checks.diverges c.pc_rhs then None else Some after)
            cases
        in
        join locked branches
    | Pexp_fun (_, default, _, inner) ->
        Option.iter (fun d -> ignore (walk locked d : SS.t)) default;
        ignore (walk locked inner : SS.t);
        locked
    | Pexp_function cases ->
        List.iter
          (fun c ->
            Option.iter (fun g -> ignore (walk locked g : SS.t)) c.pc_guard;
            ignore (walk locked c.pc_rhs : SS.t))
          cases;
        locked
    | Pexp_while (cond, body) | Pexp_for (_, _, cond, _, body) ->
        ignore (walk locked cond : SS.t);
        ignore (walk locked body : SS.t);
        locked
    | _ ->
        let acc = ref locked in
        iter_children (fun child -> acc := walk !acc child) e;
        !acc
  and args_walk locked args = List.fold_left (fun l (_, a) -> walk l a) locked args
  and join locked = function
    | [] -> locked (* every branch diverges: context below is unreachable *)
    | b :: rest -> List.fold_left SS.inter b rest
  in
  ignore (walk SS.empty func.Callgraph.body : SS.t);
  {
    func;
    acquires = List.rev !acquires;
    cell_uses = List.rev !cell_uses;
    calls = List.rev !calls;
    guards = List.rev !guards;
    unresolved = !unresolved;
  }
