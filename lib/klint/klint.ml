(* klint — a sparse-style static safety-ladder linter.

   The repo's incremental ratchet (Registry level claims) was enforced
   only at runtime: Dyn.Type_confusion, Ownership.Checker, Lockdep fire
   on the paths tests happen to execute.  klint closes the gap the way
   Linux's sparse does — by checking the *source tree* against each
   subsystem's claimed rung, per CWE bucket, on every CI run.  See
   DESIGN.md "Static analysis (klint)" for the rule-to-roadmap map. *)

module Finding = Finding
module Rules = Rules
module Checks = Checks
module Annot = Annot
module Callgraph = Callgraph
module Lockset = Lockset
module Kracer = Kracer
module Ownset = Ownset
module Kown = Kown
module Durset = Durset
module Kdur = Kdur
module Frame = Frame
module Ktcb = Ktcb
module Kverify = Kverify
module Kparse = Kparse
module Loc = Loc
module Subsystem = Subsystem
module Baseline = Baseline
module Engine = Engine
module Report = Report

(* Effective-line counting shared with the Figure-1 audit. *)
let loc_of_dir = Loc.loc_of_dir

(* Per-subsystem implementation size, derived from the same source map
   the linter attributes findings with — pass as [Boot.registry ~loc_of]
   so the audit numbers cannot drift from the tree. *)
let registry_loc ~root name =
  match Subsystem.sources_of name with
  | None -> None
  | Some sources ->
      List.fold_left
        (fun acc src ->
          match (acc, Loc.loc_of_dir ~root src) with
          | Some total, Some n -> Some (total + n)
          | _, None | None, _ -> None)
        (Some 0) sources

(* Walk up from [start] (default: cwd) to the dune-project root. *)
let find_root ?start () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent
  in
  up (match start with Some d -> d | None -> Sys.getcwd ())
