(* kracer — the interprocedural lockset race detector.

   Per-function {!Lockset} summaries carry only *local* facts; kracer
   closes them over the {!Callgraph} with two fixpoints:

   - [may_acquire] (bottom-up, least fixpoint): the lock classes a call
     to a function may take, transitively.  Feeds the static lock-order
     graph: a call made while holding [h] contributes an [h -> x] edge
     for every [x] the callee may acquire.

   - [guaranteed_entry] (top-down, greatest fixpoint): the lock classes
     a function can rely on at entry — its own [@must_hold] annotation
     unioned with the *intersection* over all call sites of what each
     caller provably holds there.  An uncalled function gets only its
     annotation; an unannotated root gets nothing.

   R6 then fires where a [Klock.Guarded] cell is accessed and the
   interprocedural lockset cannot contain the cell's guarding class,
   and where a call site fails a callee's [@must_hold] contract.

   The second output is the static lock-order graph itself: every
   acquire-while-holding edge, class-collapsed.  [missing_runtime_edges]
   reconciles it against the edges {!Ksim.Lockdep} recorded at runtime —
   any runtime edge the static graph lacks is an unsoundness (a lock
   path the syntactic analysis failed to see) and fails CI; cycles that
   exist only statically are predicted deadlocks testing has not hit. *)

module SS = Lockset.SS
module SM = Map.Make (String)

type result = {
  findings : Finding.t list;
  edges : (string * string) list;  (** static lock-order graph, class-collapsed *)
  cycles : string list list;  (** predicted deadlock cycles in [edges] *)
  guards : (string * string) list;  (** cell class -> guard class *)
  funcs : int;  (** functions analyzed *)
  unresolved_calls : int;  (** known-name call sites left unresolved *)
}

let empty =
  { findings = []; edges = []; cycles = []; guards = []; funcs = 0; unresolved_calls = 0 }

(* Klock's own implementation manipulates holder fields directly and
   defines the very primitives the walk intercepts — analyzing it would
   only produce noise about the mechanism itself. *)
let excluded rel = String.equal rel "lib/ksim/klock.ml"

(* Fixpoints --------------------------------------------------------------- *)

let may_acquire summaries =
  let tbl = Hashtbl.create 64 in
  let get name = Option.value ~default:SS.empty (Hashtbl.find_opt tbl name) in
  List.iter
    (fun (s : Lockset.summary) ->
      let own =
        List.fold_left
          (fun acc (e : Lockset.event) -> SS.add e.Lockset.subject acc)
          SS.empty s.Lockset.acquires
      in
      let own =
        List.fold_left (fun acc l -> SS.add l acc) own
          s.Lockset.func.Callgraph.annot.Annot.acquires
      in
      Hashtbl.replace tbl (Callgraph.name s.Lockset.func) own)
    summaries;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (s : Lockset.summary) ->
        let name = Callgraph.name s.Lockset.func in
        let now =
          List.fold_left
            (fun acc (callee, _) -> SS.union acc (get (Callgraph.name callee)))
            (get name) s.Lockset.calls
        in
        if not (SS.equal now (get name)) then begin
          Hashtbl.replace tbl name now;
          changed := true
        end)
      summaries
  done;
  get

let guaranteed_entry summaries =
  (* the universe for the greatest fixpoint: every class the tree ever
     mentions, so "top" means "could rely on anything" *)
  let universe =
    List.fold_left
      (fun acc (s : Lockset.summary) ->
        let acc =
          List.fold_left
            (fun acc (e : Lockset.event) -> SS.add e.Lockset.subject acc)
            acc s.Lockset.acquires
        in
        let a = s.Lockset.func.Callgraph.annot in
        let acc = List.fold_left (Fun.flip SS.add) acc a.Annot.must_hold in
        let acc = List.fold_left (Fun.flip SS.add) acc a.Annot.acquires in
        List.fold_left (fun acc (_, g) -> SS.add g acc) acc s.Lockset.guards)
      SS.empty summaries
  in
  let sites = Hashtbl.create 64 in
  (* callee name -> (caller name, locked at site) list *)
  List.iter
    (fun (s : Lockset.summary) ->
      let caller = Callgraph.name s.Lockset.func in
      List.iter
        (fun (callee, (e : Lockset.event)) ->
          let key = Callgraph.name callee in
          Hashtbl.replace sites key
            ((caller, e.Lockset.locked)
            :: Option.value ~default:[] (Hashtbl.find_opt sites key)))
        s.Lockset.calls)
    summaries;
  let annot_of = Hashtbl.create 64 in
  List.iter
    (fun (s : Lockset.summary) ->
      Hashtbl.replace annot_of
        (Callgraph.name s.Lockset.func)
        (SS.of_list s.Lockset.func.Callgraph.annot.Annot.must_hold))
    summaries;
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (s : Lockset.summary) ->
      let name = Callgraph.name s.Lockset.func in
      let init =
        if Hashtbl.mem sites name then universe
        else Hashtbl.find annot_of name (* uncalled: only the contract holds *)
      in
      Hashtbl.replace tbl name init)
    summaries;
  let get name = Option.value ~default:SS.empty (Hashtbl.find_opt tbl name) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (s : Lockset.summary) ->
        let name = Callgraph.name s.Lockset.func in
        match Hashtbl.find_opt sites name with
        | None -> ()
        | Some call_sites ->
            let from_callers =
              List.fold_left
                (fun acc (caller, locked) ->
                  let provided = SS.union locked (get caller) in
                  match acc with
                  | None -> Some provided
                  | Some inter -> Some (SS.inter inter provided))
                None call_sites
            in
            let now =
              SS.union (Hashtbl.find annot_of name)
                (Option.value ~default:SS.empty from_callers)
            in
            if not (SS.equal now (get name)) then begin
              Hashtbl.replace tbl name now;
              changed := true
            end)
      summaries
  done;
  get

(* Cycle prediction -------------------------------------------------------- *)

(* Tarjan over the class graph: any SCC with more than one node — or a
   self-loop, two instances of one class nested — is an order cycle no
   runtime interleaving has to get lucky to deadlock on. *)
let find_cycles edges =
  let succs = Hashtbl.create 16 in
  let nodes = ref [] in
  let add_node n = if not (Hashtbl.mem succs n) then begin Hashtbl.replace succs n []; nodes := n :: !nodes end in
  List.iter
    (fun (a, b) ->
      add_node a;
      add_node b;
      Hashtbl.replace succs a (b :: Hashtbl.find succs a))
    edges;
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (Hashtbl.find succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            Hashtbl.replace on_stack w false;
            if String.equal w v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) (List.rev !nodes);
  let self_loop n = List.exists (fun (a, b) -> String.equal a n && String.equal b n) edges in
  !sccs
  |> List.filter (fun scc ->
         match scc with [ n ] -> self_loop n | [] -> false | _ -> true)
  |> List.map (List.sort String.compare)
  |> List.sort compare

(* The analysis ------------------------------------------------------------ *)

let pp_classes ss =
  match SS.elements ss with [] -> "nothing" | ls -> String.concat ", " ls

let analyze ~root files =
  let files = List.filter (fun (rel, _) -> not (excluded rel)) files in
  let cg = Callgraph.build ~root files in
  let summaries = List.map (Lockset.summarize cg) cg.Callgraph.funcs in
  let may = may_acquire summaries in
  let entry = guaranteed_entry summaries in
  let guard_map =
    List.concat_map (fun (s : Lockset.summary) -> s.Lockset.guards) summaries
    |> List.sort_uniq compare
  in
  let guards_of cell = List.filter_map (fun (c, g) -> if String.equal c cell then Some g else None) guard_map in
  let findings = ref [] in
  let edges = ref [] in
  List.iter
    (fun (s : Lockset.summary) ->
      let func = s.Lockset.func in
      let fname = Callgraph.name func in
      let ctx = entry fname in
      let held (e : Lockset.event) = SS.union e.Lockset.locked ctx in
      (* R6a: guarded-cell access without the guard in the lockset *)
      List.iter
        (fun (u : Lockset.event) ->
          match guards_of u.Lockset.subject with
          | [] -> ()
          | gs ->
              let h = held u in
              if not (List.exists (fun g -> SS.mem g h) gs) then
                findings :=
                  Finding.v ~rule:Finding.R6_lockset_race ~file:func.Callgraph.file
                    ~loc:u.Lockset.loc ~func:fname
                    (Fmt.str
                       "access to guarded cell %s without its lock %s (interprocedural lockset: %s)"
                       u.Lockset.subject (String.concat "/" gs) (pp_classes h))
                  :: !findings)
        s.Lockset.cell_uses;
      (* R6b: call sites must satisfy the callee's @must_hold contract *)
      List.iter
        (fun (callee, (e : Lockset.event)) ->
          let h = held e in
          List.iter
            (fun l ->
              if not (SS.mem l h) then
                findings :=
                  Finding.v ~rule:Finding.R6_lockset_race ~file:func.Callgraph.file
                    ~loc:e.Lockset.loc ~func:fname
                    (Fmt.str "call to %s requires @must_hold %s but the lockset here is %s"
                       (Callgraph.name callee) l (pp_classes h))
                  :: !findings)
            callee.Callgraph.annot.Annot.must_hold)
        s.Lockset.calls;
      (* static lock-order edges: direct acquisitions... *)
      List.iter
        (fun (a : Lockset.event) ->
          SS.iter (fun h -> edges := (h, a.Lockset.subject) :: !edges) (held a))
        s.Lockset.acquires;
      (* ...and acquisitions reached through calls *)
      List.iter
        (fun (callee, (e : Lockset.event)) ->
          let h = held e in
          if not (SS.is_empty h) then
            SS.iter
              (fun x -> SS.iter (fun hl -> edges := (hl, x) :: !edges) h)
              (may (Callgraph.name callee)))
        s.Lockset.calls)
    summaries;
  let edges = List.sort_uniq compare !edges in
  {
    findings = Finding.sort !findings;
    edges;
    cycles = find_cycles edges;
    guards = guard_map;
    funcs = List.length summaries;
    unresolved_calls =
      List.fold_left (fun acc (s : Lockset.summary) -> acc + s.Lockset.unresolved) 0 summaries;
  }

(* Standalone entry (bench, tests): parse the tree itself. *)
let analyze_tree ~root =
  let files =
    Loc.ml_files_under ~root "lib"
    |> List.filter_map (fun rel ->
           match Kparse.parse (Filename.concat root rel) with
           | Ok structure -> Some (rel, structure)
           | Error _ -> None)
  in
  analyze ~root files

(* Reconciliation ---------------------------------------------------------- *)

(* Runtime edges arrive as instance names ([i_lock:3]); collapse to
   classes and subtract the static graph.  Anything left is a lock
   ordering the tests exercised that the static analysis missed —
   unsoundness, not a style nit, hence CI-fatal. *)
let missing_runtime_edges ~static runtime =
  runtime
  |> List.map (fun (a, b) -> (Annot.lock_class a, Annot.lock_class b))
  |> List.sort_uniq compare
  |> List.filter (fun e -> not (List.mem e static))

(* "held acquired" per line, the format [Lockdep.append_edges_to_file]
   writes.  Unparseable lines are errors — a truncated export must not
   pass reconciliation by vacuity. *)
let read_runtime_edges path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.sort_uniq compare (List.rev acc))
        | "" -> loop acc
        | line -> (
            match String.split_on_char ' ' (String.trim line) with
            | [ a; b ] -> loop ((a, b) :: acc)
            | _ -> Error (Fmt.str "%s: malformed lockdep edge line %S" path line))
      in
      loop [])

let dot_of_edges edges =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph kracer {\n";
  List.iter (fun (a, b) -> Buffer.add_string buf (Fmt.str "  %S -> %S;\n" a b)) edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
