(* The declared framekernel boundary — which files *are* the privileged
   frame, which files are grandfathered unsafe exhibits, and which frame
   symbols services may reach.

   ktcb (R12-R14) is parameterized entirely by this file: the frame is
   [lib/ksim], its blessed surface is the module list below (everything
   ksim exports *except* the raw machinery: [Dyn], [Kmem], bare
   [Klock.acquire]/[release], [Klock.Guarded.unsafe_*]), and the
   exhibits are the modules that exist to contain bugs.  A fixture tree
   can declare its own frame simply by putting files under [lib/ksim]. *)

(* Directories whose files are the privileged frame: unsafe primitives
   are legal here, and every line counts toward the unsafe TCB. *)
let frame_dirs = [ "lib/ksim" ]

let in_frame rel = List.exists (fun d -> Subsystem.under d rel) frame_dirs

(* Intentionally-unsafe specimens: the step-0 exhibits, the bug corpus,
   and the CVE dataset.  Their R12/R13 findings are the tcb.baseline;
   calling *into* an exhibit through its interface is not laundering
   (the boundary is declared, and the registry already prices the
   exhibit's own claim), so taint does not propagate out of them. *)
let exhibits =
  [ "lib/kfs/memfs_unsafe.ml"; "lib/knet/amp.ml"; "lib/kbugs"; "lib/kcve" ]

let is_exhibit rel = List.exists (fun d -> Subsystem.under d rel) exhibits

(* The unsafe primitives R12 polices, classified from the qualified path
   a use site actually writes ([Ksim.Dyn.project], [Bytes.unsafe_get],
   [Klock.acquire], ...).  Purely syntactic, like every klint rule. *)
type prim =
  | Dyn_use  (** any value reached through a [Dyn] module component *)
  | Kmem_use  (** raw allocator access through a [Kmem] component *)
  | Unsafe_bytes  (** [Bytes.unsafe_*] *)
  | Bare_lock  (** [Klock.acquire]/[release]/[try_acquire], [Guarded.unsafe_*] *)

let prim_to_string = function
  | Dyn_use -> "Dyn"
  | Kmem_use -> "Kmem"
  | Unsafe_bytes -> "Bytes.unsafe_*"
  | Bare_lock -> "bare Klock"

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let bare_lock_fns = [ "acquire"; "release"; "try_acquire" ]

(* [classify_path ["Ksim"; "Dyn"; "project"]] -> [Some Dyn_use].  The
   module components are matched anywhere in the path so nested access
   ([Ksim.Dyn.Errptr.of_ptr]) still classifies. *)
let classify_path path =
  match List.rev path with
  | [] -> None
  | last :: rev_mods ->
      if List.mem "Dyn" rev_mods then Some Dyn_use
      else if List.mem "Kmem" rev_mods then Some Kmem_use
      else if
        (match rev_mods with "Bytes" :: _ -> true | _ -> false)
        && starts_with ~prefix:"unsafe_" last
      then Some Unsafe_bytes
      else if
        (match rev_mods with "Klock" :: _ -> true | _ -> false)
        && List.mem last bare_lock_fns
      then Some Bare_lock
      else if
        (match rev_mods with "Guarded" :: _ -> true | _ -> false)
        && starts_with ~prefix:"unsafe_" last
      then Some Bare_lock
      else None

(* The blessed frame surface, for R13: a service may resolve a call into
   these frame modules (Frame wrappers, errnos, the simulator substrate)
   but not into the raw machinery, and not into frame modules that are
   not on the list at all — an internal helper module added to the frame
   is unexported until blessed here. *)
let blessed_modules =
  [
    "Frame"; "Errno"; "Failpoint"; "Hist"; "Klock"; "Kstats"; "Kthread";
    "Ktrace"; "Lockdep"; "Rng"; "Storm"; "Supervisor";
  ]

let frame_module_of_file rel =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename rel))

(* Is this resolved frame function part of the exported, audited API?
   [Klock] is blessed minus its dangerous corners — the same functions
   [classify_path] prices as [Bare_lock]. *)
let blessed_symbol (f : Callgraph.func) =
  let m = frame_module_of_file f.Callgraph.file in
  List.mem m blessed_modules
  &&
  match List.rev f.Callgraph.qualname with
  | [] -> false
  | last :: rev_mods ->
      not
        (String.equal m "Klock"
        && (List.mem last bare_lock_fns
           || (List.mem "Guarded" rev_mods && starts_with ~prefix:"unsafe_" last)))

(* The one .mli whose val count is the frame-surface metric. *)
let surface_mli = "lib/ksim/frame.mli"
