(** The process layer: VFS + virtual memory + scheduler under one syscall
    surface.

    User programs are functions that receive only the {!sys} record —
    the syscall boundary is the interface; kernel internals are
    unreachable.  Every syscall is a scheduling point of the
    deterministic cooperative scheduler, so multi-process interactions
    replay exactly.  {!sys.spawn_child} clones the parent's address space
    copy-on-write (posix_spawn-with-COW; true fork of an OCaml closure is
    impossible — see DESIGN.md). *)

type t
(** A booted kernel. *)

exception Exited of int

(** The syscall surface handed to user programs. *)
type sys = {
  pid : int;
  openf : ?flags:Kvfs.File_ops.flag list -> string -> int Ksim.Errno.r;
  read : int -> len:int -> string Ksim.Errno.r;
  write : int -> string -> int Ksim.Errno.r;
  close : int -> unit Ksim.Errno.r;
  lseek : int -> int -> Kvfs.File_ops.whence -> int Ksim.Errno.r;
  mkdir : string -> unit Ksim.Errno.r;
  unlink : string -> unit Ksim.Errno.r;
  readdir : string -> string list Ksim.Errno.r;
  fsync : unit -> unit Ksim.Errno.r;
  mmap : len:int -> prot:Kmm.Addr_space.prot -> int Ksim.Errno.r;
  munmap : addr:int -> unit Ksim.Errno.r;
  mread : addr:int -> len:int -> string Ksim.Errno.r;
  mwrite : addr:int -> string -> unit Ksim.Errno.r;
  spawn_child : name:string -> (sys -> int) -> int;
      (** child pid; the child gets a COW clone of this address space *)
  wait : int -> int Ksim.Errno.r;
      (** block (cooperatively) until the pid exits; its exit code *)
  pipe : unit -> (int * int) Ksim.Errno.r;
      (** a fresh (read fd, write fd) pair; pipe fds live in their own
          descriptor space, shared kernel-wide so children can use them *)
  pread : int -> len:int -> string Ksim.Errno.r;
      (** blocks while empty and writers remain; [""] is EOF *)
  pwrite : int -> string -> int Ksim.Errno.r;  (** [EPIPE] with no readers *)
  pclose : int -> unit Ksim.Errno.r;
  yield : unit -> unit;
  exit : int -> unit;  (** terminate with a code (raises {!Exited}) *)
}

val boot :
  ?frames:int ->
  ?page_size:int ->
  ?max_steps:int ->
  ?root_fp:Ksim.Failpoint.t ->
  ?root_policy:Ksim.Supervisor.policy ->
  ?stats:Ksim.Kstats.t ->
  ?supervise_root:bool ->
  unit ->
  t
(** A kernel with a root memfs and [frames] physical frames.
    [max_steps] raises the scheduler's livelock bound for very large
    process populations (the load harness runs tens of thousands).

    [root_fp] wraps the root fs in {!Kvfs.Iface.panicky} (failpoint site
    ["module.panic"]); without supervision such a panic escapes the
    syscall and the calling process segfaults (exit 139) — the
    monolithic baseline.  [supervise_root] (default [false]) mounts the
    root behind a {!Ksim.Supervisor} oops firewall instead: the panic is
    contained to an errno, the fs microreboots (a root memfs comes back
    empty — it is RAM), and fds minted before the reboot answer
    [ESTALE] until reopened. *)

val spawn : t -> name:string -> (sys -> int) -> int
(** Register a user program with a fresh address space; returns its pid.
    Programs run inside {!run}. *)

val run : t -> unit
(** Drive every process to completion.  A program that dies on an
    uncaught exception gets exit code 139 — the simulated segfault. *)

val exit_code : t -> int -> int option
val running : t -> int
(** Processes that have not exited yet. *)

val crashed : t -> int list
(** Pids that ended with the simulated segfault. *)

val vfs : t -> Kvfs.Vfs.t
(** The shared file namespace (for inspection in tests). *)
