(* The process layer: everything under one syscall surface.

   A process owns an address space (from [Kmm]) and a file-descriptor
   table (over the shared VFS); user programs are OCaml functions that
   receive only the [syscalls] record — they cannot reach kernel
   internals, so the syscall boundary really is the interface, exactly
   the modularity discipline the roadmap asks of kernel-internal
   components, applied at the top.

   Scheduling is the deterministic cooperative scheduler: every syscall
   is a scheduling point, so multi-process interactions are reproducible
   from a seed.  [spawn_child] gives a child a copy-on-write clone of the
   parent's address space (posix_spawn-with-COW rather than true fork:
   OCaml closures cannot be snapshotted — noted in DESIGN.md). *)

type pipe = {
  pbuf : Buffer.t;
  mutable readers : int;
  mutable writers : int;
}

type pipe_end =
  | Read_end of pipe
  | Write_end of pipe

type t = {
  vfs : Kvfs.Vfs.t;
  phys : Kmm.Phys.t;
  sched : Ksim.Kthread.t;
  procs : (int, proc) Hashtbl.t;
  pipe_fds : (int, pipe_end) Hashtbl.t; (* pipe descriptors, shared kernel-wide *)
  mutable next_pipe_fd : int;
  mutable next_pid : int;
}

and proc = {
  pid : int;
  parent : int option;
  name : string;
  space : Kmm.Addr_space.t;
  fds : Kvfs.File_ops.t;
  mutable exit_code : int option;
}

exception Exited of int

type sys = {
  pid : int;
  (* files *)
  openf : ?flags:Kvfs.File_ops.flag list -> string -> int Ksim.Errno.r;
  read : int -> len:int -> string Ksim.Errno.r;
  write : int -> string -> int Ksim.Errno.r;
  close : int -> unit Ksim.Errno.r;
  lseek : int -> int -> Kvfs.File_ops.whence -> int Ksim.Errno.r;
  mkdir : string -> unit Ksim.Errno.r;
  unlink : string -> unit Ksim.Errno.r;
  readdir : string -> string list Ksim.Errno.r;
  fsync : unit -> unit Ksim.Errno.r;
  (* memory *)
  mmap : len:int -> prot:Kmm.Addr_space.prot -> int Ksim.Errno.r;
  munmap : addr:int -> unit Ksim.Errno.r;
  mread : addr:int -> len:int -> string Ksim.Errno.r;
  mwrite : addr:int -> string -> unit Ksim.Errno.r;
  (* processes *)
  spawn_child : name:string -> (sys -> int) -> int;
  wait : int -> int Ksim.Errno.r;
  (* pipes *)
  pipe : unit -> (int * int) Ksim.Errno.r;
  pread : int -> len:int -> string Ksim.Errno.r;
  pwrite : int -> string -> int Ksim.Errno.r;
  pclose : int -> unit Ksim.Errno.r;
  yield : unit -> unit;
  exit : int -> unit; (* raises Exited *)
}

(* Boot the kernel.  [root_fp] wraps the root file system in a panicky
   shell consulting failpoint site "module.panic" — without supervision
   the panic escapes through the syscall and the calling process
   segfaults (exit 139), the monolithic baseline.  [supervise_root]
   mounts the root behind a [Ksim.Supervisor] firewall instead: the same
   panic is contained to an errno, the fs microreboots (a root memfs
   comes back empty — it is RAM), and fds minted before the reboot
   answer [ESTALE]. *)
let boot ?(frames = 1024) ?(page_size = 256) ?max_steps ?root_fp ?root_policy ?stats
    ?(supervise_root = false) () =
  let vfs = Kvfs.Vfs.create () in
  let make_root () =
    let fs = Kvfs.Iface.make (module Kfs.Memfs_typed) () in
    match root_fp with Some fp -> Kvfs.Iface.panicky ~fp fs | None -> fs
  in
  let mounted =
    if supervise_root then
      Kvfs.Vfs.mount vfs ~at:[] ~remake:make_root ?policy:root_policy ?stats (make_root ())
    else Kvfs.Vfs.mount vfs ~at:[] (make_root ())
  in
  (match mounted with
  | Ok () -> ()
  | Error e -> failwith ("Kernel.boot: " ^ Ksim.Errno.to_string e));
  {
    vfs;
    phys = Kmm.Phys.create ~nframes:frames ~page_size;
    sched = Ksim.Kthread.create ?max_steps ();
    procs = Hashtbl.create 8;
    pipe_fds = Hashtbl.create 8;
    next_pipe_fd = 10_000;
    next_pid = 1;
  }

let vfs t = t.vfs

let find t pid = Hashtbl.find_opt t.procs pid

let exit_code t pid =
  match find t pid with Some p -> p.exit_code | None -> None

let running t =
  Hashtbl.fold (fun _ p acc -> if p.exit_code = None then acc + 1 else acc) t.procs 0

(* Build the syscall surface for one process.  Every call yields first:
   syscalls are the scheduling points. *)
let rec make_sys t (proc : proc) : sys =
  let gate f =
    Ksim.Kthread.yield ();
    f ()
  in
  {
    pid = proc.pid;
    openf = (fun ?flags path -> gate (fun () -> Kvfs.File_ops.openf proc.fds ?flags path));
    read = (fun fd ~len -> gate (fun () -> Kvfs.File_ops.read proc.fds fd ~len));
    write = (fun fd data -> gate (fun () -> Kvfs.File_ops.write proc.fds fd data));
    close = (fun fd -> gate (fun () -> Kvfs.File_ops.close proc.fds fd));
    lseek = (fun fd off whence -> gate (fun () -> Kvfs.File_ops.lseek proc.fds fd off whence));
    mkdir = (fun path -> gate (fun () -> Kvfs.File_ops.mkdir proc.fds path));
    unlink = (fun path -> gate (fun () -> Kvfs.File_ops.unlink proc.fds path));
    readdir = (fun path -> gate (fun () -> Kvfs.File_ops.readdir proc.fds path));
    fsync = (fun () -> gate (fun () -> Kvfs.File_ops.fsync proc.fds));
    mmap =
      (fun ~len ~prot ->
        gate (fun () -> Kmm.Addr_space.mmap proc.space ~len ~prot Kmm.Addr_space.Anon));
    munmap = (fun ~addr -> gate (fun () -> Kmm.Addr_space.munmap proc.space ~addr));
    mread = (fun ~addr ~len -> gate (fun () -> Kmm.Addr_space.read proc.space ~addr ~len));
    mwrite = (fun ~addr data -> gate (fun () -> Kmm.Addr_space.write proc.space ~addr data));
    spawn_child = (fun ~name main -> spawn_proc t ~parent:(Some proc) ~name main);
    wait =
      (fun pid ->
        match Hashtbl.find_opt t.procs pid with
        | None -> Error Ksim.Errno.EINVAL
        | Some child ->
            let rec block () =
              match child.exit_code with
              | Some code -> Ok code
              | None ->
                  Ksim.Kthread.yield ();
                  block ()
            in
            block ());
    pipe =
      (fun () ->
        let p = { pbuf = Buffer.create 64; readers = 1; writers = 1 } in
        let rfd = t.next_pipe_fd in
        let wfd = t.next_pipe_fd + 1 in
        t.next_pipe_fd <- t.next_pipe_fd + 2;
        Hashtbl.replace t.pipe_fds rfd (Read_end p);
        Hashtbl.replace t.pipe_fds wfd (Write_end p);
        Ok (rfd, wfd));
    pread =
      (fun fd ~len ->
        match Hashtbl.find_opt t.pipe_fds fd with
        | Some (Read_end p) ->
            (* Block while the pipe is empty and writers remain; "" is the
               EOF once every write end has closed. *)
            let rec block () =
              if Buffer.length p.pbuf > 0 then begin
                let n = min len (Buffer.length p.pbuf) in
                let data = Buffer.sub p.pbuf 0 n in
                let rest = Buffer.sub p.pbuf n (Buffer.length p.pbuf - n) in
                Buffer.clear p.pbuf;
                Buffer.add_string p.pbuf rest;
                Ok data
              end
              else if p.writers = 0 then Ok ""
              else begin
                Ksim.Kthread.yield ();
                block ()
              end
            in
            block ()
        | Some (Write_end _) | None -> Error Ksim.Errno.EBADF);
    pwrite =
      (fun fd data ->
        match Hashtbl.find_opt t.pipe_fds fd with
        | Some (Write_end p) ->
            if p.readers = 0 then Error Ksim.Errno.EPIPE
            else begin
              Buffer.add_string p.pbuf data;
              Ksim.Kthread.yield ();
              Ok (String.length data)
            end
        | Some (Read_end _) | None -> Error Ksim.Errno.EBADF);
    pclose =
      (fun fd ->
        match Hashtbl.find_opt t.pipe_fds fd with
        | Some (Read_end p) ->
            p.readers <- p.readers - 1;
            Hashtbl.remove t.pipe_fds fd;
            Ok ()
        | Some (Write_end p) ->
            p.writers <- p.writers - 1;
            Hashtbl.remove t.pipe_fds fd;
            Ok ()
        | None -> Error Ksim.Errno.EBADF);
    yield = (fun () -> Ksim.Kthread.yield ());
    exit = (fun code -> raise (Exited code));
  }

and spawn_proc t ~parent ~name main =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let space =
    match parent with
    | Some (p : proc) -> Kmm.Addr_space.fork p.space (* COW clone of the parent *)
    | None -> Kmm.Addr_space.create t.phys
  in
  let proc =
    {
      pid;
      parent = Option.map (fun (p : proc) -> p.pid) parent;
      name;
      space;
      fds = Kvfs.File_ops.create t.vfs; (* fresh table; the VFS is shared *)
      exit_code = None;
    }
  in
  Hashtbl.replace t.procs pid proc;
  ignore
    (Ksim.Kthread.spawn t.sched ~name (fun () ->
         let code = try main (make_sys t proc) with Exited code -> code in
         proc.exit_code <- Some code;
         Kmm.Addr_space.destroy proc.space));
  pid

let spawn t ~name main = spawn_proc t ~parent:None ~name main

let run t =
  Ksim.Kthread.run t.sched;
  (* Any thread that died on an uncaught exception becomes exit code 139,
     the simulated segfault. *)
  List.iter
    (fun (f : Ksim.Kthread.failure) ->
      Hashtbl.iter
        (fun _ p -> if p.name = f.Ksim.Kthread.failed_name && p.exit_code = None then begin
             p.exit_code <- Some 139;
             Kmm.Addr_space.destroy p.space
           end)
        t.procs)
    (Ksim.Kthread.failures t.sched)

let crashed t =
  Hashtbl.fold (fun pid p acc -> if p.exit_code = Some 139 then pid :: acc else acc) t.procs []
  |> List.sort compare
