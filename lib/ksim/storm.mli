(** Fault-injection storms: composed, replayable {!Failpoint} schedules.

    A storm is a set of {e bursts}, each arming one failpoint site over a
    half-open window of abstract time ([start <= now < stop]).  The
    caller drives time explicitly with {!tick} (the load harness ticks
    once per generated operation), so storms inherit the simulator's
    determinism: same seed, same tick sequence — identical injections.

    Multiple schedules may be {!add}ed to one storm and may overlap on
    the same site.  Composition semantics, applied at every window
    boundary:

    - a site is enabled iff at least one burst covers [now];
    - the effective probability of [k] overlapping bursts is
      [1 - prod (1 - p_i)] (independent storms compose like independent
      fault sources);
    - the site's [times] budget is the sum of the finite budgets of the
      covering bursts, refreshed at each composition change ([-1], i.e.
      unlimited, wins if any covering burst is unlimited).  Between
      boundaries the live countdown is left alone so injections drain
      the window's budget normally.

    Sites never touched by any burst are left entirely alone, so a storm
    can ride on a registry whose other sites are managed elsewhere. *)

type burst = {
  site : string;
  start : int;  (** first tick the burst covers *)
  stop : int;  (** first tick after the burst *)
  probability : float;
  times : int;  (** injection budget for the burst; [-1] = unlimited *)
}

type t

val create : fp:Failpoint.t -> unit -> t
(** An empty storm over the registry. *)

val add : t -> burst list -> unit
(** Compose one more schedule into the storm.  Overlaps — including on
    the same site — are allowed; see the composition semantics above.
    @raise Invalid_argument on an empty window or probability outside
    [0,1]. *)

val bursts : t -> burst list
(** Every burst added so far, in stable (site, start, stop) order. *)

val tick : t -> int -> unit
(** Advance storm time to [now]: reconfigure every managed site whose
    set of covering bursts changed since the last applied window.
    Cheap when nothing changed. *)

val disable : t -> unit
(** Kill the storm mid-burst: disable every managed site and forget the
    applied windows (a later {!tick} re-arms whatever its window says —
    permanent shutdown is simply not ticking again). *)

val active : t -> int -> (string * float * int) list
(** [(site, effective probability, window budget)] for every site with a
    covering burst at the given tick, sorted by site — the composition
    {!tick} would apply, exposed for tests. *)
