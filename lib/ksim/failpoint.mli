(** Deterministic named failpoints, modeled on Linux fault injection
    ([CONFIG_FAULT_INJECTION]'s [fault_attr]).

    A registry holds named sites with per-site [probability] / [interval] /
    [times] knobs.  Call sites ask {!should_fail} wherever a fault could
    strike; answers come from a per-site SplitMix64 stream derived from
    (registry seed, site name), so the fault schedule is exactly
    replayable from the seed and independent of registration order.
    Injections are announced on the registry's {!Ktrace} (category
    ["failpoint"]). *)

type site = {
  name : string;
  mutable enabled : bool;
  mutable probability : float;  (** chance an eligible hit injects, [0,1] *)
  mutable interval : int;  (** only every [interval]-th hit is eligible *)
  mutable times : int;  (** remaining injections; [-1] = unlimited *)
  mutable hits : int;
  mutable injected : int;
  rng : Rng.t;
}

type t

val create : ?trace:Ktrace.t -> seed:int -> unit -> t
(** Fresh registry.  [trace] (default {!Ktrace.global}) receives one
    ["failpoint"] event per injection. *)

val seed : t -> int

val register : t -> string -> site
(** Idempotent: returns the existing site or creates it disabled with
    probability 1.0, interval 1, unlimited times. *)

val configure :
  t ->
  string ->
  ?enabled:bool ->
  ?probability:float ->
  ?interval:int ->
  ?times:int ->
  unit ->
  unit
(** Set knobs on a site (registering it if needed).  Unset knobs keep
    their current value.  @raise Invalid_argument on probability outside
    [0,1] or interval < 1. *)

val disable_all : t -> unit
(** Heal: disable every site (counters and streams are kept). *)

val should_fail : t -> string -> bool
(** One hit at the named site; [true] means inject the fault now.  A hit
    injects iff the site is enabled, its times budget is not exhausted,
    the hit lands on the interval, and the site's RNG draw passes the
    probability gate. *)

val hits : t -> string -> int
val injected : t -> string -> int
val total_injected : t -> int

val sites : t -> site list
(** All registered sites, sorted by name. *)

val reset_counters : t -> unit

val publish : t -> Kstats.t -> unit
(** Add every site's [hits]/[injected] counters into a {!Kstats} table as
    ["<site>.hits"] / ["<site>.injected"]. *)

val schedule : t -> string list
(** The observed fault schedule: one entry per injection, in order, read
    back from the registry trace.  Same seed + same I/O sequence =
    identical schedule (replayability). *)

val pp_site : Format.formatter -> site -> unit
