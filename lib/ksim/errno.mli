(** Linux-style error codes for the simulated kernel.

    Numeric values follow the classic x86 [errno] assignments, so the
    error-pointer encoding in {!Dyn.Errptr} round-trips exactly like the
    kernel's [ERR_PTR]/[PTR_ERR] macros. *)

type t =
  | EPERM
  | ENOENT
  | EINTR
  | EIO
  | EBADF
  | EAGAIN
  | ENOMEM
  | EACCES
  | EFAULT
  | EBUSY
  | EEXIST
  | EXDEV
  | ENOTDIR
  | EISDIR
  | EINVAL
  | ENOSPC
  | EROFS
  | EPIPE
  | ENAMETOOLONG
  | ENOTEMPTY
  | EOVERFLOW
  | EPROTO
  | ENOSYS
  | ESTALE

val to_code : t -> int
(** [to_code e] is the positive errno number of [e] (e.g. [ENOENT] is 2). *)

val of_code : int -> t option
(** [of_code n] is the error with errno number [n], if any. *)

val all : t list
(** Every error code, in errno order. *)

val to_string : t -> string
(** Symbolic name, e.g. ["ENOENT"]. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

type 'a r = ('a, t) result
(** The pervasive result type of simulated kernel operations. *)

val ( let* ) : 'a r -> ('a -> 'b r) -> 'b r
(** Monadic bind for chaining fallible kernel calls. *)

val ok : 'a -> 'a r
val error : t -> 'a r

val pp_result : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a r -> unit
