(* Lock-order validation, in the spirit of the kernel's lockdep.

   Data races are only half of the concurrency story the roadmap worries
   about; the other half is deadlock from inconsistent lock ordering.
   Lockdep records, per thread, the stack of held locks, builds the
   global acquired-while-holding graph, and reports a potential deadlock
   the moment an acquisition would close a cycle — on the first run of
   any interleaving, not only the unlucky one that actually deadlocks. *)

type warning = {
  tid : int;
  acquiring : string;
  cycle : string list; (* acquiring :: path back to acquiring *)
}

let pp_warning ppf w =
  Fmt.pf ppf "potential deadlock (tid %d): acquiring %s closes cycle %a" w.tid w.acquiring
    (Fmt.list ~sep:(Fmt.any " -> ") Fmt.string)
    w.cycle

type t = {
  (* edge A -> B: some thread acquired B while holding A *)
  edges : (string, (string, unit) Hashtbl.t) Hashtbl.t;
  held : (int, string list ref) Hashtbl.t; (* per-tid held stack, innermost first *)
  mutable warnings : warning list;
  trace : Ktrace.t;
}

let create ?(trace = Ktrace.global) () =
  { edges = Hashtbl.create 16; held = Hashtbl.create 8; warnings = []; trace }

let successors t a =
  match Hashtbl.find_opt t.edges a with
  | Some tbl -> Hashtbl.fold (fun b () acc -> b :: acc) tbl []
  | None -> []

let add_edge t a b =
  let tbl =
    match Hashtbl.find_opt t.edges a with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 4 in
        Hashtbl.replace t.edges a tbl;
        tbl
  in
  Hashtbl.replace tbl b ()

(* Path from [src] back to [dst] through the order graph, if any. *)
let find_path t ~src ~dst =
  let visited = Hashtbl.create 16 in
  let rec dfs node path =
    if String.equal node dst then Some (List.rev (node :: path))
    else if Hashtbl.mem visited node then None
    else begin
      Hashtbl.replace visited node ();
      List.find_map (fun next -> dfs next (node :: path)) (successors t node)
    end
  in
  dfs src []

let held_stack t tid =
  match Hashtbl.find_opt t.held tid with
  | Some stack -> stack
  | None ->
      let stack = ref [] in
      Hashtbl.replace t.held tid stack;
      stack

let lock_acquired t ~name =
  let tid = Kthread.self () in
  let stack = held_stack t tid in
  List.iter
    (fun held_name ->
      if not (String.equal held_name name) then begin
        (* Before recording held -> name, see whether name already reaches
           held: if so this acquisition inverts an established order. *)
        (match find_path t ~src:name ~dst:held_name with
        | Some path ->
            let w = { tid; acquiring = name; cycle = path @ [ name ] } in
            t.warnings <- w :: t.warnings;
            Ktrace.emitf t.trace ~category:"lockdep" "%a" pp_warning w
        | None -> ());
        add_edge t held_name name
      end)
    !stack;
  stack := name :: !stack

let lock_released t ~name =
  let tid = Kthread.self () in
  let stack = held_stack t tid in
  let rec remove_first = function
    | [] -> []
    | x :: rest -> if String.equal x name then rest else x :: remove_first rest
  in
  stack := remove_first !stack

let warnings t = List.rev t.warnings
let warning_count t = List.length t.warnings

let edge_count t = Hashtbl.fold (fun _ tbl acc -> acc + Hashtbl.length tbl) t.edges 0

(* The observed graph, serialized: one (held, acquired) pair per edge,
   deterministically ordered so dumps diff cleanly. *)
let edges t =
  Hashtbl.fold
    (fun a tbl acc -> Hashtbl.fold (fun b () acc -> (a, b) :: acc) tbl acc)
    t.edges []
  |> List.sort_uniq compare

let dump_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph lockdep {\n";
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "  %S -> %S;\n" a b))
    (edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Append the edge list to [path], one "held acquired" pair per line —
   the wire format the static/runtime reconciliation (klint's kracer)
   consumes.  Append-mode so every test binary in a suite can contribute
   to the same file. *)
let append_edges_to_file t ~path =
  match edges t with
  | [] -> ()
  | es ->
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          let buf = Buffer.create 256 in
          List.iter (fun (a, b) -> Buffer.add_string buf (a ^ " " ^ b ^ "\n")) es;
          output_string oc (Buffer.contents buf))

(* A process-wide instance, mirroring the kernel's single lockdep. *)
let global = create ()

let export_env = "KSIM_LOCKDEP_EXPORT"

(* When [KSIM_LOCKDEP_EXPORT] names a file, every process dumps the
   global graph there on exit: `scripts/ci.sh` sets it across `dune
   runtest` so kracer can check its static lock-order graph against
   everything the suite actually observed. *)
let () =
  match Sys.getenv_opt export_env with
  | Some path when path <> "" ->
      at_exit (fun () -> try append_edges_to_file global ~path with Sys_error _ -> ())
  | Some _ | None -> ()
