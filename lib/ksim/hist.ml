(* HdrHistogram-lite: logarithmic buckets, 32 linear sub-buckets per
   power of two (~3% worst-case relative error), backed by one flat int
   array so [record] is branch-light enough for the load harness's
   per-operation hot path.  Exact min/max/total ride alongside so small
   histograms still report exact edges. *)

let sub_bits = 5
let subs = 1 lsl sub_bits (* 32 *)
let max_exp = 58 (* covers every non-negative OCaml int *)
let nbuckets = subs + (max_exp * subs)

type t = {
  buckets : int array;
  mutable count : int;
  mutable min_v : int;
  mutable max_v : int;
  mutable total : int;
}

let create () =
  { buckets = Array.make nbuckets 0; count = 0; min_v = max_int; max_v = 0; total = 0 }

let msb v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let index_of v =
  if v < subs then v
  else
    let m = msb v in
    let exp = m - sub_bits in
    subs + (exp * subs) + ((v lsr exp) land (subs - 1))

(* Inclusive upper edge of the bucket holding [index]. *)
let upper_of index =
  if index < subs then index
  else
    let exp = (index - subs) / subs in
    let sub = (index - subs) mod subs in
    (((subs + sub) lsl exp) + (1 lsl exp)) - 1

let record t v =
  let v = if v < 0 then 0 else v in
  t.buckets.(index_of v) <- t.buckets.(index_of v) + 1;
  t.count <- t.count + 1;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  t.total <- t.total + v

let count t = t.count
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = t.max_v
let total t = t.total
let mean t = if t.count = 0 then 0.0 else float_of_int t.total /. float_of_int t.count

let percentile t p =
  if t.count = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let seen = ref 0 in
    let result = ref t.max_v in
    (try
       for i = 0 to nbuckets - 1 do
         seen := !seen + t.buckets.(i);
         if !seen >= rank then begin
           result := min (upper_of i) t.max_v;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

type summary = {
  count : int;
  min : int;
  mean : float;
  max : int;
  p50 : int;
  p95 : int;
  p99 : int;
  p999 : int;
}

let summarize (t : t) =
  {
    count = t.count;
    min = min_value t;
    mean = mean t;
    max = t.max_v;
    p50 = percentile t 50.0;
    p95 = percentile t 95.0;
    p99 = percentile t 99.0;
    p999 = percentile t 99.9;
  }

let merge_into ~dst src =
  Array.iteri (fun i n -> if n > 0 then dst.buckets.(i) <- dst.buckets.(i) + n) src.buckets;
  dst.count <- dst.count + src.count;
  if src.count > 0 then begin
    if src.min_v < dst.min_v then dst.min_v <- src.min_v;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v
  end;
  dst.total <- dst.total + src.total

let reset t =
  Array.fill t.buckets 0 nbuckets 0;
  t.count <- 0;
  t.min_v <- max_int;
  t.max_v <- 0;
  t.total <- 0

let pp_summary ppf s =
  Fmt.pf ppf "n=%d min=%d mean=%.0f p50=%d p95=%d p99=%d p999=%d max=%d" s.count s.min s.mean
    s.p50 s.p95 s.p99 s.p999 s.max
