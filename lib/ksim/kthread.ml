(* Deterministic cooperative scheduler built on OCaml 5 effect handlers.

   Simulated kernel threads yield explicitly (or through blocking primitives
   such as [Klock.acquire]); the scheduler picks the next runnable thread
   either round-robin or by a seeded RNG, so any interleaving-dependent bug
   is reproducible from the seed.  This is the substrate on which data-race
   and lock-discipline checks run. *)

type _ Effect.t += Yield : unit Effect.t

exception Not_in_scheduler

let current : int ref = ref 0
(* 0 denotes "outside any scheduler" (the main test thread). *)

let self () = !current

let yield () =
  if !current = 0 then () else Effect.perform Yield

type job =
  | Start of (unit -> unit)
  | Resume of (unit, unit) Effect.Deep.continuation

type failure = {
  failed_tid : int;
  failed_name : string;
  exn : exn;
}

type t = {
  rng : Rng.t option;
  queue : (int * string * job) Queue.t; (* runnable, FIFO order *)
  mutable next_tid : int;
  mutable failures : failure list;
  mutable steps : int;
  max_steps : int;
}

exception Livelock of { steps : int }

let create ?seed ?(max_steps = 1_000_000) () =
  let rng = Option.map Rng.of_int seed in
  { rng; queue = Queue.create (); next_tid = 0; failures = []; steps = 0; max_steps }

let spawn t ~name f =
  t.next_tid <- t.next_tid + 1;
  let tid = t.next_tid in
  Queue.push (tid, name, Start f) t.queue;
  tid

let enqueue t entry = Queue.push entry t.queue

(* Round-robin is the hot path (the load harness runs tens of thousands
   of tenant threads): O(1) pop, no list rebuilding.  The seeded-random
   scheduler used by interleaving exploration removes the i-th runnable
   entry while preserving the relative order of the rest — identical
   semantics (and pick sequence) to the original list implementation. *)
let dequeue t =
  if Queue.is_empty t.queue then None
  else
    match t.rng with
    | None -> Some (Queue.pop t.queue)
    | Some rng ->
        let n = Queue.length t.queue in
        let i = Rng.int rng n in
        let picked = ref None in
        let rest = Queue.create () in
        for j = 0 to n - 1 do
          let e = Queue.pop t.queue in
          if j = i then picked := Some e else Queue.push e rest
        done;
        Queue.transfer rest t.queue;
        !picked

let run t =
  let outer = !current in
  let rec schedule () =
    t.steps <- t.steps + 1;
    if t.steps > t.max_steps then raise (Livelock { steps = t.steps });
    match dequeue t with
    | None -> current := outer
    | Some (tid, name, job) -> (
        current := tid;
        match job with
        | Start f -> Effect.Deep.match_with f () (handler tid name)
        | Resume k -> Effect.Deep.continue k ())
  and handler tid name =
    {
      Effect.Deep.retc = (fun () -> schedule ());
      exnc =
        (fun exn ->
          t.failures <- { failed_tid = tid; failed_name = name; exn } :: t.failures;
          schedule ());
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  enqueue t (tid, name, Resume k);
                  schedule ())
          | _ -> None);
    }
  in
  schedule ()

let failures t = List.rev t.failures
let steps t = t.steps

(* Systematic interleaving exploration: run the same concurrent program
   under many seeds and collect the distinct outcomes.  A program is
   interleaving-insensitive iff exactly one outcome appears. *)
let explore ?(seeds = 32) ~spawn_all ~observe () =
  let outcomes = Hashtbl.create 8 in
  for seed = 1 to seeds do
    let sched = create ~seed () in
    spawn_all sched;
    run sched;
    let outcome = observe (failures sched) in
    match Hashtbl.find_opt outcomes outcome with
    | Some count -> Hashtbl.replace outcomes outcome (count + 1)
    | None -> Hashtbl.replace outcomes outcome 1
  done;
  Hashtbl.fold (fun outcome count acc -> (outcome, count) :: acc) outcomes []
  |> List.sort compare
