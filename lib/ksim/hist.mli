(** Fixed-resolution latency histograms (HdrHistogram-lite).

    Values are non-negative integers (simulated nanoseconds).  Buckets
    are logarithmic with 32 linear sub-buckets per power of two, so any
    recorded value is representable within ~3% while the whole structure
    stays a flat int array — cheap enough to live on the per-op hot path
    of the load harness.  Everything is deterministic: the same value
    sequence produces the identical histogram, so percentile outputs are
    replayable from a seed. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** Record one value (negative values are clamped to 0). *)

val count : t -> int
val min_value : t -> int
(** Exact minimum recorded value (0 when empty). *)

val max_value : t -> int
(** Exact maximum recorded value (0 when empty). *)

val total : t -> int
(** Exact sum of all recorded values. *)

val mean : t -> float
(** 0.0 when empty. *)

val percentile : t -> float -> int
(** [percentile t p] for [p] in [0,100]: an upper bound on the value at
    rank [ceil (p/100 * count)] — the top edge of the bucket holding that
    rank, clamped to the exact observed maximum.  0 when empty. *)

type summary = {
  count : int;
  min : int;
  mean : float;
  max : int;
  p50 : int;
  p95 : int;
  p99 : int;
  p999 : int;
}

val summarize : t -> summary
val merge_into : dst:t -> t -> unit
(** Add every bucket of the source into [dst] (min/max/total folded in). *)

val reset : t -> unit
val pp_summary : Format.formatter -> summary -> unit
