(** Simulated manual kernel allocator with lifecycle tracking.

    The classic C memory bugs — use-after-free, double-free, leaks — become
    observable events.  Unsafe modules (roadmap steps 0–2) manage lifetimes
    through this allocator by hand; the point of roadmap step 3 is that a
    whole class of these events becomes impossible by construction. *)

exception Use_after_free of { site : string; id : int }
exception Double_free of { site : string; id : int }

type 'a ptr
(** A manually managed pointer to a value of type ['a]. *)

type t
(** A heap: a set of live objects plus violation counters. *)

val create : ?strict:bool -> name:string -> unit -> t
(** [create ~name ()] makes an empty heap.  With [strict] (default [true])
    violations raise; with [~strict:false] they are only counted — modelling
    the silent-corruption behaviour of real C. *)

val alloc : t -> site:string -> 'a -> 'a ptr
(** Allocate an object; [site] labels the allocation for leak reports. *)

val read : 'a ptr -> 'a
(** @raise Use_after_free when the object was freed. *)

val write : 'a ptr -> 'a -> unit
(** Overwrite the object.  In non-strict heaps a write-after-free is
    counted but otherwise ignored. *)

val free : 'a ptr -> unit
(** Release the object. @raise Double_free when already freed (strict). *)

val is_live : 'a ptr -> bool

val live_count : t -> int
val allocated : t -> int
val freed : t -> int
val uaf_events : t -> int
val double_free_events : t -> int

type leak = { leak_id : int; leak_site : string }

val leaks : t -> leak list
(** Objects still live, i.e. leaked if the owning module claims quiescence. *)

val leak_sites : t -> (string * int) list
(** [leaks], aggregated per allocation site — the granularity the
    static/runtime reconciliation keys on. *)

val uaf_sites : t -> (string * int) list
(** Use-after-free events, aggregated per allocation site. *)

val double_free_sites : t -> (string * int) list
(** Double-free events, aggregated per allocation site. *)

val pp_report : Format.formatter -> t -> unit

val append_events_to_file : t -> path:string -> unit
(** Append this heap's aggregated events to [path], one
    "kind\theap\tsite\tcount" line each — the format
    [klint --kmem-events] reconciles against kown's static findings. *)

val export_env : string
(** ["KSIM_KMEM_EXPORT"]: when set to a file path, every heap's events
    are appended there at process exit. *)
