(* Simulated manual kernel allocator.

   Objects live in a heap that tracks their lifecycle so that the classic C
   memory bugs — use-after-free, double-free, leaks — are observable events
   rather than silent corruption.  Unsafe modules (roadmap step 0/1) manage
   object lifetimes through this allocator; ownership-safe modules (step 3)
   route the same allocations through capability checks in [Ownership]. *)

exception Use_after_free of { site : string; id : int }
exception Double_free of { site : string; id : int }

type 'a state =
  | Live of 'a
  | Freed

type 'a ptr = {
  id : int;
  site : string;
  mutable state : 'a state;
  heap : t;
}

and t = {
  name : string;
  mutable next_id : int;
  mutable allocated : int;
  mutable freed : int;
  mutable uaf_events : int;
  mutable double_free_events : int;
  live : (int, string) Hashtbl.t; (* id -> allocation site, for leak reports *)
  uaf_sites : (string, int) Hashtbl.t; (* allocation site -> uaf count *)
  double_free_sites : (string, int) Hashtbl.t;
  mutable reported_leaks : (string * int) list; (* last [leaks] snapshot, per site *)
  strict : bool; (* raise on violation instead of just counting *)
}

(* Every heap ever created, so the [KSIM_KMEM_EXPORT] at_exit hook can
   dump events without each call site having to register anything. *)
let all_heaps : t list ref = ref []

let create ?(strict = true) ~name () =
  let heap =
    {
      name;
      next_id = 0;
      allocated = 0;
      freed = 0;
      uaf_events = 0;
      double_free_events = 0;
      live = Hashtbl.create 64;
      uaf_sites = Hashtbl.create 8;
      double_free_sites = Hashtbl.create 8;
      reported_leaks = [];
      strict;
    }
  in
  all_heaps := heap :: !all_heaps;
  heap

let bump tbl site =
  Hashtbl.replace tbl site (1 + Option.value ~default:0 (Hashtbl.find_opt tbl site))

let alloc heap ~site value =
  heap.next_id <- heap.next_id + 1;
  heap.allocated <- heap.allocated + 1;
  let id = heap.next_id in
  Hashtbl.replace heap.live id site;
  { id; site; state = Live value; heap }

let use_after_free ptr =
  ptr.heap.uaf_events <- ptr.heap.uaf_events + 1;
  bump ptr.heap.uaf_sites ptr.site;
  if ptr.heap.strict then raise (Use_after_free { site = ptr.site; id = ptr.id })

let read ptr =
  match ptr.state with
  | Live v -> v
  | Freed ->
      use_after_free ptr;
      (* Non-strict mode models "reading freed memory returns garbage" by
         failing anyway: there is no garbage value of type ['a] to hand
         back, so even a lenient heap cannot continue past a read. *)
      raise (Use_after_free { site = ptr.site; id = ptr.id })

let write ptr value =
  match ptr.state with
  | Live _ -> ptr.state <- Live value
  | Freed -> use_after_free ptr

let free ptr =
  match ptr.state with
  | Live _ ->
      ptr.state <- Freed;
      ptr.heap.freed <- ptr.heap.freed + 1;
      Hashtbl.remove ptr.heap.live ptr.id
  | Freed ->
      ptr.heap.double_free_events <- ptr.heap.double_free_events + 1;
      bump ptr.heap.double_free_sites ptr.site;
      if ptr.heap.strict then raise (Double_free { site = ptr.site; id = ptr.id })

let is_live ptr = match ptr.state with Live _ -> true | Freed -> false
let live_count heap = Hashtbl.length heap.live
let allocated heap = heap.allocated
let freed heap = heap.freed
let uaf_events heap = heap.uaf_events
let double_free_events heap = heap.double_free_events

type leak = { leak_id : int; leak_site : string }

(* Per-site aggregation of still-live objects — the granularity the
   static/runtime reconciliation keys on (kown findings are per-file,
   runtime events per allocation site). *)
let site_counts l =
  List.fold_left
    (fun acc { leak_site; _ } ->
      (leak_site, 1 + Option.value ~default:0 (List.assoc_opt leak_site acc))
      :: List.remove_assoc leak_site acc)
    [] l
  |> List.sort compare

let leaks heap =
  let l =
    Hashtbl.fold (fun leak_id leak_site acc -> { leak_id; leak_site } :: acc) heap.live []
    |> List.sort (fun a b -> compare a.leak_id b.leak_id)
  in
  (* A leak only exists once somebody asked at a quiescence point —
     live objects at process exit are normal — so the export snapshot
     records what the last report actually said. *)
  heap.reported_leaks <- site_counts l;
  l

let leak_sites heap =
  ignore (leaks heap : leak list);
  heap.reported_leaks

let uaf_sites heap =
  Hashtbl.fold (fun s n acc -> (s, n) :: acc) heap.uaf_sites [] |> List.sort compare

let double_free_sites heap =
  Hashtbl.fold (fun s n acc -> (s, n) :: acc) heap.double_free_sites []
  |> List.sort compare

let pp_report ppf heap =
  Fmt.pf ppf "heap %s: allocated=%d freed=%d live=%d uaf=%d double_free=%d" heap.name
    heap.allocated heap.freed (live_count heap) heap.uaf_events heap.double_free_events

(* Runtime event export ---------------------------------------------------- *)

(* One "kind\theap\tsite\tcount" line per aggregated event, the wire
   format klint's kown reconciliation ([--kmem-events]) consumes.
   Append-mode so every test binary in a suite contributes to the same
   file, mirroring [Lockdep.append_edges_to_file]. *)
let append_events_to_file heap ~path =
  let rows =
    List.map (fun (s, n) -> ("uaf", s, n)) (uaf_sites heap)
    @ List.map (fun (s, n) -> ("double_free", s, n)) (double_free_sites heap)
    @ List.map (fun (s, n) -> ("leak", s, n)) heap.reported_leaks
  in
  match rows with
  | [] -> ()
  | rows ->
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          let buf = Buffer.create 256 in
          List.iter
            (fun (kind, site, n) ->
              Buffer.add_string buf
                (Printf.sprintf "%s\t%s\t%s\t%d\n" kind heap.name site n))
            rows;
          output_string oc (Buffer.contents buf))

let export_env = "KSIM_KMEM_EXPORT"

(* When [KSIM_KMEM_EXPORT] names a file, every process dumps all heaps'
   aggregated events there on exit: `scripts/ci.sh` sets it across `dune
   runtest` so kown can check its static R8-R11 findings against every
   heap event the suite actually observed. *)
let () =
  match Sys.getenv_opt export_env with
  | Some path when path <> "" ->
      at_exit (fun () ->
          List.iter
            (fun heap -> try append_events_to_file heap ~path with Sys_error _ -> ())
            !all_heaps)
  | Some _ | None -> ()
