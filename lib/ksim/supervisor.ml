(* The oops firewall: containment at a module boundary, plus
   shadow-driver-style microreboot.

   [call] is the boundary.  An exception escaping the supervised module
   is a simulated oops: it is converted to an [EIO] result, recorded as
   an incident on the global trace, and the module enters recovery
   instead of unwinding the kernel.  Recovery is deferred and paid for
   on the supervisor's simulated clock — the clock advances [op_cost]
   ns per call, an oops arms a deadline [backoff_base * 2^n] ns out
   (capped), calls before the deadline drain with [EINTR], and the
   first call past it runs the restart function.  A successful restart
   bumps the epoch, which is what invalidates pre-oops handles: [validate]
   answers [ESTALE] for any handle minted by a dead generation.

   Everything is a function of the call sequence, so runs replay
   bit-identically: no wall clock, no randomness. *)

exception Module_panic of string

type state =
  | Healthy
  | Oopsed
  | Restarting
  | Failed

let state_to_string = function
  | Healthy -> "healthy"
  | Oopsed -> "oopsed"
  | Restarting -> "restarting"
  | Failed -> "failed"

type policy = {
  restart_budget : int;
  backoff_base : int;
  backoff_cap : int;
  op_cost : int;
}

let default_policy =
  { restart_budget = 3; backoff_base = 200; backoff_cap = 5_000; op_cost = 100 }

type t = {
  name : string;
  policy : policy;
  trace : Ktrace.t;
  stats : Kstats.t option;
  mutable restart_fn : (unit -> (unit, string) result) option;
  mutable observer : (state -> state -> unit) option;
  mutable state : state;
  mutable epoch : int;
  mutable restarts : int;
  mutable oopses : int;
  mutable escalations : int;
  mutable stale_rejected : int;
  mutable eintr_aborted : int;
  mutable degraded_calls : int;
  mutable clock : int; (* simulated ns *)
  mutable restart_at : int; (* deadline while Oopsed *)
  mutable oops_time : int; (* clock at the last oops *)
  mutable last_recovery_ns : int;
  mutable total_recovery_ns : int;
  recovery : Hist.t; (* oops -> healthy latency of every completed microreboot *)
}

let create ?(policy = default_policy) ?(trace = Ktrace.global) ?stats ?restart ~name () =
  if policy.restart_budget < 0 then invalid_arg "Supervisor.create: restart_budget";
  if policy.backoff_base < 1 || policy.op_cost < 1 then
    invalid_arg "Supervisor.create: backoff/op_cost must be positive";
  {
    name;
    policy;
    trace;
    stats;
    restart_fn = restart;
    observer = None;
    state = Healthy;
    epoch = 0;
    restarts = 0;
    oopses = 0;
    escalations = 0;
    stale_rejected = 0;
    eintr_aborted = 0;
    degraded_calls = 0;
    clock = 0;
    restart_at = 0;
    oops_time = 0;
    last_recovery_ns = 0;
    total_recovery_ns = 0;
    recovery = Hist.create ();
  }

let set_restart t f = t.restart_fn <- Some f
let set_observer t f = t.observer <- Some f

let name t = t.name
let state t = t.state
let epoch t = t.epoch
let oopses t = t.oopses
let restarts t = t.restarts
let escalations t = t.escalations
let stale_rejected t = t.stale_rejected
let eintr_aborted t = t.eintr_aborted
let clock t = t.clock
let last_recovery_ns t = t.last_recovery_ns
let total_recovery_ns t = t.total_recovery_ns
let recovery t = Hist.summarize t.recovery
let recovery_hist t = t.recovery

let bump t counter = Option.iter (fun s -> Kstats.incr s counter) t.stats

let transition t to_state =
  let from = t.state in
  if from <> to_state then begin
    t.state <- to_state;
    Ktrace.emitf t.trace ~category:"supervisor" "%s: %s -> %s (epoch %d)" t.name
      (state_to_string from) (state_to_string to_state) t.epoch;
    Option.iter (fun f -> f from to_state) t.observer
  end

(* Exponential backoff for the (n+1)-th restart, capped. *)
let backoff t n =
  min t.policy.backoff_cap (t.policy.backoff_base * (1 lsl min n 20))

let exn_label = function
  | Module_panic site -> "module panic at " ^ site
  | exn -> Printexc.to_string exn

let oops t ~label exn =
  t.oopses <- t.oopses + 1;
  t.oops_time <- t.clock;
  t.restart_at <- t.clock + backoff t t.restarts;
  bump t "supervisor.oopses";
  Ktrace.emitf t.trace ~category:"supervisor" "%s: oops in %s (%s); restart at +%d ns" t.name
    label (exn_label exn) (t.restart_at - t.clock);
  Ktrace.emitf Ktrace.global ~category:"incident" "supervisor: %s oopsed in %s (%s)" t.name
    label (exn_label exn);
  transition t Oopsed

let escalate t reason =
  t.escalations <- t.escalations + 1;
  bump t "supervisor.escalations";
  Ktrace.emitf Ktrace.global ~category:"incident"
    "supervisor: %s escalated to failed after %d restarts (%s)" t.name t.restarts reason;
  transition t Failed

(* The microreboot: runs at the first call past the backoff deadline.
   Budget is checked first so a module with no headroom left escalates
   instead of thrashing; a restart function that itself fails re-arms
   the backoff and burns budget like a normal restart. *)
let try_restart t =
  if t.restarts >= t.policy.restart_budget then escalate t "restart budget exhausted"
  else
    match t.restart_fn with
    | None -> escalate t "no restart function registered"
    | Some f ->
        transition t Restarting;
        t.restarts <- t.restarts + 1;
        let outcome = try f () with exn -> Error (exn_label exn) in
        (match outcome with
        | Ok () ->
            t.epoch <- t.epoch + 1;
            let latency = t.clock - t.oops_time in
            t.last_recovery_ns <- latency;
            t.total_recovery_ns <- t.total_recovery_ns + latency;
            Hist.record t.recovery latency;
            Option.iter (fun s -> Kstats.observe s "supervisor.recovery_ns" latency) t.stats;
            bump t "supervisor.restarts";
            Ktrace.emitf t.trace ~category:"supervisor"
              "%s: microreboot complete (restart %d, epoch %d, recovery %d ns)" t.name
              t.restarts t.epoch latency;
            transition t Healthy
        | Error msg ->
            Ktrace.emitf t.trace ~category:"supervisor" "%s: restart %d failed (%s)" t.name
              t.restarts msg;
            if t.restarts >= t.policy.restart_budget then
              escalate t ("restart failed: " ^ msg)
            else begin
              t.restart_at <- t.clock + backoff t t.restarts;
              transition t Oopsed
            end)

let run t ~label f =
  match f () with
  | result -> result
  | exception exn ->
      oops t ~label exn;
      Error Errno.EIO

let call ?(label = "op") t f =
  t.clock <- t.clock + t.policy.op_cost;
  match t.state with
  | Failed ->
      t.degraded_calls <- t.degraded_calls + 1;
      bump t "supervisor.degraded_calls";
      Error Errno.EIO
  | Restarting ->
      (* A reentrant call from inside the restart function: refuse it,
         the instance is not up yet. *)
      t.eintr_aborted <- t.eintr_aborted + 1;
      bump t "supervisor.eintr_aborted";
      Error Errno.EINTR
  | Oopsed when t.clock < t.restart_at ->
      t.eintr_aborted <- t.eintr_aborted + 1;
      bump t "supervisor.eintr_aborted";
      Error Errno.EINTR
  | Oopsed -> (
      try_restart t;
      match t.state with
      | Healthy -> run t ~label f
      | Failed ->
          t.degraded_calls <- t.degraded_calls + 1;
          bump t "supervisor.degraded_calls";
          Error Errno.EIO
      | Oopsed | Restarting ->
          t.eintr_aborted <- t.eintr_aborted + 1;
          bump t "supervisor.eintr_aborted";
          Error Errno.EINTR)
  | Healthy -> run t ~label f

let validate t handle_epoch =
  if handle_epoch = t.epoch then Ok ()
  else begin
    t.stale_rejected <- t.stale_rejected + 1;
    bump t "supervisor.stale_handles";
    Ktrace.emitf t.trace ~category:"supervisor" "%s: stale handle (epoch %d, live %d) -> ESTALE"
      t.name handle_epoch t.epoch;
    Error Errno.ESTALE
  end

let publish t stats =
  let p suffix v = Kstats.incr ~by:v stats ("supervisor." ^ t.name ^ "." ^ suffix) in
  p "oopses" t.oopses;
  p "restarts" t.restarts;
  p "escalations" t.escalations;
  p "stale_handles" t.stale_rejected;
  p "eintr_aborted" t.eintr_aborted;
  p "degraded_calls" t.degraded_calls;
  Hist.merge_into ~dst:(Kstats.hist stats ("supervisor." ^ t.name ^ ".recovery_ns")) t.recovery

let pp ppf t =
  Fmt.pf ppf "%s: %s epoch=%d oopses=%d restarts=%d/%d stale=%d eintr=%d clock=%dns" t.name
    (state_to_string t.state) t.epoch t.oopses t.restarts t.policy.restart_budget
    t.stale_rejected t.eintr_aborted t.clock
