(* Named counters and latency histograms, used by benches, the load
   harness, and the audit tooling. *)

type t = {
  counters : (string, int ref) Hashtbl.t;
  hists : (string, Hist.t) Hashtbl.t;
}

let create () : t = { counters = Hashtbl.create 16; hists = Hashtbl.create 4 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.counters name r;
      r

let incr ?(by = 1) t name =
  let r = counter t name in
  r := !r + by

let get t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let hist t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
      let h = Hist.create () in
      Hashtbl.replace t.hists name h;
      h

let observe t name v = Hist.record (hist t name) v

let hists t =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.hists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Histograms flatten into the counter namespace as derived entries, so
   snapshots (and their diffs) carry percentile aggregates without a
   second representation. *)
let hist_entries t =
  List.concat_map
    (fun (name, h) ->
      let s = Hist.summarize h in
      [
        (name ^ "#count", s.Hist.count);
        (name ^ "#min", s.Hist.min);
        (name ^ "#mean", int_of_float s.Hist.mean);
        (name ^ "#p50", s.Hist.p50);
        (name ^ "#p99", s.Hist.p99);
        (name ^ "#max", s.Hist.max);
      ])
    (hists t)

let to_list t =
  let counters = Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters [] in
  counters @ hist_entries t
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* A snapshot is just the sorted counter list; [diff] pairs two of them
   so tests can assert exact per-phase deltas instead of absolute values
   that drift as instrumentation is added elsewhere. *)
type snapshot = (string * int) list

let snapshot = to_list

let diff ~before ~after =
  let base name = match List.assoc_opt name before with Some v -> v | None -> 0 in
  List.filter_map
    (fun (name, v) ->
      let d = v - base name in
      if d = 0 then None else Some (name, d))
    after

let delta ~before ~after name =
  let get l = match List.assoc_opt name l with Some v -> v | None -> 0 in
  get after - get before

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.hists

let pp ppf t =
  List.iter (fun (name, v) -> Fmt.pf ppf "%-32s %d@." name v) (to_list t)
