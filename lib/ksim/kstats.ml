(* Named counters, used by benches and the audit tooling. *)

type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 16

let counter t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace t name r;
      r

let incr ?(by = 1) t name =
  let r = counter t name in
  r := !r + by

let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let to_list t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* A snapshot is just the sorted counter list; [diff] pairs two of them
   so tests can assert exact per-phase deltas instead of absolute values
   that drift as instrumentation is added elsewhere. *)
type snapshot = (string * int) list

let snapshot = to_list

let diff ~before ~after =
  let base name = match List.assoc_opt name before with Some v -> v | None -> 0 in
  List.filter_map
    (fun (name, v) ->
      let d = v - base name in
      if d = 0 then None else Some (name, d))
    after

let delta ~before ~after name =
  let get l = match List.assoc_opt name l with Some v -> v | None -> 0 in
  get after - get before

let reset t = Hashtbl.reset t

let pp ppf t =
  List.iter (fun (name, v) -> Fmt.pf ppf "%-32s %d@." name v) (to_list t)
