(** The oops firewall and microreboot engine for supervised module
    boundaries.

    A supervisor guards one module instance (a mounted file system, a
    block device stack, a socket layer).  Calls into the module run
    inside {!call}, which converts any escaping exception — a simulated
    oops — into an [Errno] result instead of unwinding the kernel, and
    trips the module into a shadow-driver-style recovery:

    {v Healthy -> Oopsed -> Restarting -> Healthy v}

    escalating to [Failed] (degraded mode) once the bounded restart
    budget is exhausted.  Restarts wait out a deterministic exponential
    backoff on the supervisor's simulated clock (the clock advances
    [op_cost] ns per supervised call, so the quiesce window is measured
    in calls, not wall time): calls that arrive while the module is down
    abort with [EINTR], the first call past the backoff deadline runs
    the registered {!restart} function (e.g. a journal-replay remount)
    and, on success, bumps the {e epoch}.

    Epochs make recovery visible to handle holders: every handle minted
    against the module records the epoch of the instance that minted it,
    and {!validate} rejects stale-epoch handles with [ESTALE]
    deterministically rather than letting them touch rebuilt state.

    Oopses and escalations are recorded as ["incident"] events on
    {!Ktrace.global} (the [Safeos_core.Audit] feed) and the lifecycle is
    announced on the supervisor's own trace (category ["supervisor"]).
    Counters ([supervisor.oopses], [.restarts], [.stale_handles],
    [.escalations], [.eintr_aborted], [.degraded_calls]) land in the
    optional [stats] table as they happen. *)

exception Module_panic of string
(** The simulated oops a fault-injected module raises through its entry
    point (the [F_module_panic] fault class). *)

type state =
  | Healthy
  | Oopsed  (** an oops struck; waiting out the restart backoff *)
  | Restarting  (** the restart function is running right now *)
  | Failed  (** restart budget exhausted; degraded mode, permanent *)

val state_to_string : state -> string

type policy = {
  restart_budget : int;  (** restarts before escalating to [Failed] *)
  backoff_base : int;  (** simulated ns before the 1st restart attempt *)
  backoff_cap : int;  (** backoff ceiling, simulated ns *)
  op_cost : int;  (** simulated ns the clock advances per {!call} *)
}

val default_policy : policy
(** 3 restarts, 200 ns base, 5_000 ns cap, 100 ns per call. *)

type t

val create :
  ?policy:policy ->
  ?trace:Ktrace.t ->
  ?stats:Kstats.t ->
  ?restart:(unit -> (unit, string) result) ->
  name:string ->
  unit ->
  t
(** A healthy supervisor at epoch 0.  [restart] rebuilds the module's
    instance state (remount, reset); without one every oops escalates
    straight to [Failed].  [trace] defaults to {!Ktrace.global}. *)

val set_restart : t -> (unit -> (unit, string) result) -> unit
(** Install or replace the restart function (needed when the supervised
    wrapper can only be built after the supervisor exists). *)

val set_observer : t -> (state -> state -> unit) -> unit
(** Observe lifecycle transitions (old state, new state) — e.g. the
    Registry logging them into its history. *)

val name : t -> string
val state : t -> state
val epoch : t -> int
(** Generation of the live instance; bumped by every successful
    restart. *)

val call : ?label:string -> t -> (unit -> 'a Errno.r) -> 'a Errno.r
(** Run one supervised operation.  Advances the simulated clock by
    [op_cost]; then:
    - [Failed]: [EIO] (degraded mode) without running [f];
    - [Oopsed] before the backoff deadline (or [Restarting]): [EINTR];
    - [Oopsed] past the deadline: microreboot first, then run [f] if it
      succeeded;
    - [Healthy]: run [f]; an escaping exception is contained to [EIO],
      audited, and trips the state machine to [Oopsed]. *)

val validate : t -> int -> unit Errno.r
(** [validate t handle_epoch] is [Ok ()] iff the handle was minted by
    the live generation; [ESTALE] (counted) otherwise.  Degraded-mode
    policy for current-epoch handles under [Failed] is the wrapping
    subsystem's choice, not decided here. *)

val oopses : t -> int
val restarts : t -> int
val escalations : t -> int
val stale_rejected : t -> int
val eintr_aborted : t -> int
val clock : t -> int
(** Simulated ns elapsed across all supervised calls and backoffs. *)

val last_recovery_ns : t -> int
(** Oops-to-healthy latency of the most recent completed microreboot on
    the simulated clock (0 if none yet). *)

val total_recovery_ns : t -> int

val recovery : t -> Hist.summary
(** Min/mean/max/percentile aggregation of the oops-to-healthy latency
    over {e all} completed microreboots (empty summary if none yet).
    Each latency is also observed live into the [stats] table's
    ["supervisor.recovery_ns"] histogram, so {!Kstats.snapshot} carries
    the aggregates. *)

val recovery_hist : t -> Hist.t
(** The underlying histogram (e.g. to merge across supervisors). *)

val publish : t -> Kstats.t -> unit
(** Add lifecycle counters into a {!Kstats} table under
    ["supervisor.<name>."] prefixed names, and merge the recovery-latency
    histogram in as ["supervisor.<name>.recovery_ns"]. *)

val pp : Format.formatter -> t -> unit
