(* Storm composition over a Failpoint registry.

   The storm is pure bookkeeping: all randomness stays inside the
   registry's per-site seeded streams, so a storm adds no
   nondeterminism — it only decides *when* each site is armed and with
   what composed knobs.  [tick] re-applies a site's configuration only
   when its set of covering bursts changes (a "window boundary"); in
   between, the site's live [times] countdown drains undisturbed. *)

type burst = {
  site : string;
  start : int;
  stop : int;
  probability : float;
  times : int;
}

type t = {
  fp : Failpoint.t;
  mutable bursts : burst list;
  (* site -> indices (into [bursts]) of the window last applied; [] for
     "disabled by us".  Absent = never touched. *)
  applied : (string, int list) Hashtbl.t;
}

let create ~fp () = { fp; bursts = []; applied = Hashtbl.create 8 }

let add t schedule =
  List.iter
    (fun b ->
      if b.stop <= b.start then invalid_arg "Storm.add: empty window";
      if b.probability < 0.0 || b.probability > 1.0 then invalid_arg "Storm.add: probability")
    schedule;
  t.bursts <-
    List.stable_sort
      (fun a b ->
        match String.compare a.site b.site with
        | 0 -> ( match compare a.start b.start with 0 -> compare a.stop b.stop | c -> c)
        | c -> c)
      (t.bursts @ schedule)

let bursts t = t.bursts

let sites t =
  List.sort_uniq String.compare (List.map (fun b -> b.site) t.bursts)

let covering t site now =
  List.mapi (fun i b -> (i, b)) t.bursts
  |> List.filter (fun (_, b) -> String.equal b.site site && b.start <= now && now < b.stop)

(* Composed knobs for a covering set: independent fault sources, so
   probabilities combine as 1 - prod(1-p); finite budgets sum, an
   unlimited burst makes the window unlimited. *)
let compose cover =
  let prob = 1.0 -. List.fold_left (fun acc (_, b) -> acc *. (1.0 -. b.probability)) 1.0 cover in
  let times =
    if List.exists (fun (_, b) -> b.times < 0) cover then -1
    else List.fold_left (fun acc (_, b) -> acc + b.times) 0 cover
  in
  (prob, times)

let tick t now =
  List.iter
    (fun site ->
      let cover = covering t site now in
      let signature = List.map fst cover in
      let last = Hashtbl.find_opt t.applied site in
      if last <> Some signature then begin
        Hashtbl.replace t.applied site signature;
        match cover with
        | [] -> Failpoint.configure t.fp site ~enabled:false ()
        | _ ->
            let probability, times = compose cover in
            Failpoint.configure t.fp site ~enabled:true ~probability ~times ()
      end)
    (sites t)

let disable t =
  List.iter (fun site -> Failpoint.configure t.fp site ~enabled:false ()) (sites t);
  Hashtbl.reset t.applied

let active t now =
  List.filter_map
    (fun site ->
      match covering t site now with
      | [] -> None
      | cover ->
          let probability, times = compose cover in
          Some (site, probability, times))
    (sites t)
