(** The framekernel boundary: the narrow, audited surface through which
    service modules use the unsafe substrate.

    Asterinas' framekernel argument, OCaml edition: [Dyn], raw [Kmem],
    [Bytes.unsafe_*], and bare [Klock.acquire]/[release] are the
    privileged frame's private machinery.  Everything above [lib/ksim]
    reaches them only through the wrappers below — each one line over the
    raw primitive, each documenting the contract that makes it sound — so
    the unsafe TCB stays countable and klint's ktcb pass (R12–R14) can
    enforce that no service reaches around the boundary. *)

(** Typed private-data slots: the safe face of [Dyn]'s void pointers.
    A slot is a minted key; [wrap]/[unwrap] are total, so a mismatched
    slot reads back as [None] — an [EPROTO] at worst, never an oops. *)
module Priv : sig
  type t = Dyn.t
  (** Concretely a [Dyn.t], so grandfathered step-0 exhibits can keep
      poking the representation while migrated services never have to
      mention [Dyn] again. *)

  type 'a slot

  val slot : name:string -> 'a slot
  (** Mint a fresh slot.  Two slots never compare equal, even with the
      same [name]. *)

  val wrap : 'a slot -> 'a -> t
  val unwrap : 'a slot -> t -> 'a option

  val none : t
  (** The null payload, for fields not yet populated. *)

  val is_none : t -> bool

  val tag : t -> string
  (** The slot name the value was wrapped under (["NULL"] for [none]) —
      diagnostics only, never a dispatch key. *)
end

(** Checked decoding of the kernel err-ptr convention.  [result] is the
    one blessed way out of pointer-space error encoding: callers get a
    [('a, Errno.t) result] and the type checker does the IS_ERR check
    the C convention leaves to discipline. *)
module Handle : sig
  type t = Dyn.Errptr.t

  val ok : Priv.t -> t
  val fail : Errno.t -> t
  val result : t -> Priv.t Errno.r

  val get : 'a Priv.slot -> t -> 'a Errno.r
  (** [result] composed with {!Priv.unwrap}: a slot mismatch is
      [EPROTO], the driver-returned-garbage errno. *)
end

(** Zero-copy buffer hand-off across the frame boundary. *)
module Buf : sig
  val freeze : Bytes.t -> string
  (** Zero-copy view of a buffer the caller will never touch again.
      @consumes: b — ownership of [b] transfers here; mutating it
      afterwards would alias the returned string, which is exactly the
      bug the ownership rung exists to rule out. *)
end

(** Unsynchronized diagnostic reads of {!Klock.Guarded} cells. *)
module Cell : sig
  val peek : 'a Klock.Guarded.cell -> 'a
  (** Lock-free snapshot for printers and stats counters.  The value may
      be mid-update; it must inform a human, never a branch that guards
      memory.  Anything load-bearing takes the lock and uses
      [Guarded.get]. *)
end
