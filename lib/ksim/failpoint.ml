(* Deterministic named failpoints, modeled on Linux fault injection
   (CONFIG_FAULT_INJECTION's fault_attr: probability, interval, times).

   A registry holds named sites; call sites ask [should_fail] at the point
   where a fault could strike and get a replayable answer: every site
   draws from its own SplitMix64 stream derived from (registry seed, site
   name), so a given seed always produces the identical fault schedule,
   independent of registration order.  Injections are announced on the
   registry's [Ktrace] (category ["failpoint"]) and per-site hit/injected
   counters can be published into a [Kstats] table. *)

type site = {
  name : string;
  mutable enabled : bool;
  mutable probability : float; (* chance an eligible hit injects, [0,1] *)
  mutable interval : int; (* only every [interval]-th hit is eligible *)
  mutable times : int; (* remaining injections; -1 = unlimited *)
  mutable hits : int;
  mutable injected : int;
  rng : Rng.t;
}

type t = {
  seed : int;
  sites : (string, site) Hashtbl.t;
  trace : Ktrace.t;
}

(* Stable per-site stream: seed folded with the site name so two
   registries with the same seed agree site by site. *)
let site_seed seed name =
  let h = ref (Int64.of_int seed) in
  String.iter
    (fun c -> h := Int64.add (Int64.mul !h 1099511628211L) (Int64.of_int (Char.code c)))
    name;
  !h

let create ?(trace = Ktrace.global) ~seed () =
  { seed; sites = Hashtbl.create 16; trace }

let seed t = t.seed

let register t name =
  match Hashtbl.find_opt t.sites name with
  | Some s -> s
  | None ->
      let s =
        {
          name;
          enabled = false;
          probability = 1.0;
          interval = 1;
          times = -1;
          hits = 0;
          injected = 0;
          rng = Rng.create (site_seed t.seed name);
        }
      in
      Hashtbl.replace t.sites name s;
      s

let configure t name ?enabled ?probability ?interval ?times () =
  let s = register t name in
  Option.iter (fun v -> s.enabled <- v) enabled;
  Option.iter
    (fun v ->
      if v < 0.0 || v > 1.0 then invalid_arg "Failpoint.configure: probability";
      s.probability <- v)
    probability;
  Option.iter
    (fun v ->
      if v < 1 then invalid_arg "Failpoint.configure: interval";
      s.interval <- v)
    interval;
  Option.iter (fun v -> s.times <- v) times

let disable_all t =
  Hashtbl.iter (fun _ s -> s.enabled <- false) t.sites

let should_fail t name =
  let s = register t name in
  s.hits <- s.hits + 1;
  if (not s.enabled) || s.times = 0 then false
  else if s.interval > 1 && s.hits mod s.interval <> 0 then false
  else if s.probability < 1.0 && Rng.float s.rng >= s.probability then false
  else begin
    s.injected <- s.injected + 1;
    if s.times > 0 then s.times <- s.times - 1;
    Ktrace.emitf t.trace ~category:"failpoint" "%s: injected (hit %d, injection %d)" name
      s.hits s.injected;
    true
  end

let hits t name = (register t name).hits
let injected t name = (register t name).injected

let sites t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.sites []
  |> List.sort (fun a b -> String.compare a.name b.name)

let total_injected t = List.fold_left (fun acc s -> acc + s.injected) 0 (sites t)

let reset_counters t =
  Hashtbl.iter
    (fun _ s ->
      s.hits <- 0;
      s.injected <- 0)
    t.sites

let publish t stats =
  List.iter
    (fun s ->
      Kstats.incr ~by:s.hits stats (s.name ^ ".hits");
      Kstats.incr ~by:s.injected stats (s.name ^ ".injected"))
    (sites t)

(* The fault schedule as observed so far: one entry per injection, in
   order, taken from the registry trace.  Two runs from the same seed that
   execute the same I/O sequence produce the identical schedule. *)
let schedule t =
  List.filter_map
    (fun (e : Ktrace.event) ->
      if String.equal e.category "failpoint" then Some e.message else None)
    (Ktrace.events t.trace)

let pp_site ppf s =
  Fmt.pf ppf "%-28s %s p=%.2f interval=%d times=%d hits=%d injected=%d" s.name
    (if s.enabled then "on " else "off")
    s.probability s.interval s.times s.hits s.injected
