(* Simulated kernel locks with discipline checking.

   Locks are cooperative: [acquire] spins by yielding to the scheduler until
   the holder releases.  The checker part records the events that, in real
   Linux, only vigilant code review catches: self-deadlock, releasing a lock
   one does not hold, and — through [Guarded] cells — accessing data without
   holding its protecting lock (the i_size / i_lock pattern from the
   paper's section 4.3). *)

exception Self_deadlock of string
exception Not_holder of string
exception Data_race of { cell : string; lock : string }

type t = {
  name : string;
  mutable holder : int option;
  mutable acquisitions : int;
  mutable contentions : int;
  trace : Ktrace.t;
  lockdep : Lockdep.t option;
}

let create ?(trace = Ktrace.global) ?lockdep ~name () =
  { name; holder = None; acquisitions = 0; contentions = 0; trace; lockdep }

let name lock = lock.name

let try_acquire lock =
  let tid = Kthread.self () in
  match lock.holder with
  | None ->
      lock.holder <- Some tid;
      lock.acquisitions <- lock.acquisitions + 1;
      (match lock.lockdep with
      | Some dep -> Lockdep.lock_acquired dep ~name:lock.name
      | None -> ());
      true
  | Some holder when holder = tid -> raise (Self_deadlock lock.name)
  | Some _ -> false

let acquire lock =
  let rec spin first =
    if not (try_acquire lock) then begin
      if first then lock.contentions <- lock.contentions + 1;
      if Kthread.self () = 0 then
        (* Outside the scheduler there is nobody to release the lock. *)
        raise (Self_deadlock lock.name);
      Kthread.yield ();
      spin false
    end
  in
  spin true

let release lock =
  let tid = Kthread.self () in
  match lock.holder with
  | Some holder when holder = tid ->
      lock.holder <- None;
      (match lock.lockdep with
      | Some dep -> Lockdep.lock_released dep ~name:lock.name
      | None -> ())
  | Some _ | None ->
      Ktrace.emitf lock.trace ~category:"lock" "release of %s by non-holder tid %d"
        lock.name tid;
      raise (Not_holder lock.name)

let held_by_self lock =
  match lock.holder with Some holder -> holder = Kthread.self () | None -> false

let held lock = Option.is_some lock.holder
let acquisitions lock = lock.acquisitions
let contentions lock = lock.contentions

let with_lock lock f =
  acquire lock;
  match f () with
  | v ->
      release lock;
      v
  | exception exn ->
      release lock;
      raise exn

module Guarded = struct
  type 'a cell = {
    cell_name : string;
    lock : t;
    mutable value : 'a;
    mutable races : int;
    strict : bool;
  }

  let create ?(strict = false) ~lock ~name value =
    { cell_name = name; lock; value; races = 0; strict }

  let record_race cell =
    cell.races <- cell.races + 1;
    Ktrace.emitf cell.lock.trace ~category:"race" "unlocked access to %s (guard %s) tid %d"
      cell.cell_name cell.lock.name (Kthread.self ());
    if cell.strict then raise (Data_race { cell = cell.cell_name; lock = cell.lock.name })

  let check cell = if not (held_by_self cell.lock) then record_race cell

  let get cell =
    check cell;
    cell.value

  let set cell value =
    check cell;
    cell.value <- value

  (* The "C" accessors: no discipline check at all.  Used by unsafe modules
     to model code paths that simply forget the lock. *)
  let unsafe_get cell = cell.value
  let unsafe_set cell value = cell.value <- value

  let races cell = cell.races
  let name cell = cell.cell_name
  let guard cell = cell.lock
end
