(* The framekernel boundary — see frame.mli.

   Every wrapper here is deliberately one line over the raw primitive:
   the point is not abstraction but *audit surface*.  The unsafe
   remainder of the kernel is whatever this file plus the rest of
   lib/ksim add up to, and klint-report.json's tcb object prices exactly
   that; services above the frame are expected to carry zero direct uses
   of Dyn/Kmem/Bytes.unsafe_*/bare Klock. *)

module Priv = struct
  type t = Dyn.t
  type 'a slot = 'a Dyn.Key.t

  let slot ~name = Dyn.Key.create ~name
  let wrap = Dyn.inject
  let unwrap = Dyn.project
  let none = Dyn.null
  let is_none = Dyn.is_null
  let tag = Dyn.tag_name
end

module Handle = struct
  type t = Dyn.Errptr.t

  let ok p = Dyn.Errptr.of_ptr p
  let fail e = Dyn.Errptr.of_err e
  let result = Dyn.Errptr.to_result

  let get slot h =
    match Dyn.Errptr.to_result h with
    | Error _ as e -> e
    | Ok p -> ( match Priv.unwrap slot p with Some v -> Ok v | None -> Error Errno.EPROTO)
end

module Buf = struct
  (* The @consumes contract lives on the .mli val; kown merges it in and
     flags any caller that touches the buffer after freezing it. *)
  let freeze b = Bytes.unsafe_to_string b
end

module Cell = struct
  let peek cell = Klock.Guarded.unsafe_get cell
end
