(** Simulated kernel locks with lock-discipline checking.

    Locks are cooperative: {!acquire} spins by yielding to the
    {!Kthread} scheduler.  {!Guarded} cells attach a protecting lock to a
    piece of shared state and record every access made without holding it —
    the runtime analogue of the [i_size]/[i_lock] "maybe protected" pattern
    the paper highlights. *)

exception Self_deadlock of string
(** The current thread (or the non-scheduled main thread) would block on a
    lock that can never be released. *)

exception Not_holder of string
(** Released a lock the current thread does not hold. *)

exception Data_race of { cell : string; lock : string }
(** Raised by strict {!Guarded} cells on unlocked access. *)

type t

val create : ?trace:Ktrace.t -> ?lockdep:Lockdep.t -> name:string -> unit -> t
(** With [lockdep], every acquisition/release is reported to the
    lock-order validator. *)

val name : t -> string

val acquire : t -> unit
(** Block (by yielding) until the lock is free, then take it.
    @raise Self_deadlock on re-acquisition by the holder. *)

val try_acquire : t -> bool
(** Non-blocking acquire. @raise Self_deadlock on re-acquisition. *)

val release : t -> unit
(** @raise Not_holder when the caller does not hold the lock. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock l f] runs [f] holding [l], releasing on exception. *)

val held : t -> bool
val held_by_self : t -> bool
val acquisitions : t -> int
val contentions : t -> int
(** Number of acquisitions that had to wait at least once. *)

(** Shared state annotated with its protecting lock. *)
module Guarded : sig
  type 'a cell

  val create : ?strict:bool -> lock:t -> name:string -> 'a -> 'a cell
  (** With [strict] (default [false]) unlocked accesses raise {!Data_race};
      otherwise they are counted and traced, like a real race that testing
      may or may not catch. *)

  val get : 'a cell -> 'a
  val set : 'a cell -> 'a -> unit

  val unsafe_get : 'a cell -> 'a
  (** The "C" accessor: reads without any discipline check, modelling code
      paths that simply forget the lock.  Never counted as a race. *)

  val unsafe_set : 'a cell -> 'a -> unit

  val races : 'a cell -> int
  (** Unlocked accesses observed through {!get}/{!set}. *)

  val name : 'a cell -> string

  val guard : 'a cell -> t
  (** The protecting lock the cell was created with.  By convention cell
      and lock names are ["class:instance"] (e.g. ["i_size:7"] guarded
      by ["i_lock:7"]) so runtime instances collapse onto the static
      lock classes kracer reasons about. *)
end
