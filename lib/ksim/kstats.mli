(** Named monotonic counters and latency histograms for instrumentation
    and audits. *)

type t

val create : unit -> t
val incr : ?by:int -> t -> string -> unit
val get : t -> string -> int
(** 0 for counters never incremented. *)

val hist : t -> string -> Hist.t
(** Find-or-create the named histogram. *)

val observe : t -> string -> int -> unit
(** Record one value into the named histogram. *)

val hists : t -> (string * Hist.t) list
(** All histograms, sorted by name. *)

val to_list : t -> (string * int) list
(** All counters, sorted by name.  Histograms appear as derived entries
    ([<name>#count], [#min], [#mean], [#p50], [#p99], [#max]) so
    snapshots carry percentile aggregates. *)

type snapshot = (string * int) list
(** A point-in-time copy of every counter, sorted by name. *)

val snapshot : t -> snapshot

val diff : before:snapshot -> after:snapshot -> (string * int) list
(** Per-counter growth between two snapshots, sorted by name; counters
    that did not move are omitted, so tests can assert exact per-phase
    deltas instead of absolute values. *)

val delta : before:snapshot -> after:snapshot -> string -> int
(** Growth of one named counter between two snapshots (0 if absent). *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit
