(** Named monotonic counters for instrumentation and audits. *)

type t

val create : unit -> t
val incr : ?by:int -> t -> string -> unit
val get : t -> string -> int
(** 0 for counters never incremented. *)

val to_list : t -> (string * int) list
(** All counters, sorted by name. *)

type snapshot = (string * int) list
(** A point-in-time copy of every counter, sorted by name. *)

val snapshot : t -> snapshot

val diff : before:snapshot -> after:snapshot -> (string * int) list
(** Per-counter growth between two snapshots, sorted by name; counters
    that did not move are omitted, so tests can assert exact per-phase
    deltas instead of absolute values. *)

val delta : before:snapshot -> after:snapshot -> string -> int
(** Growth of one named counter between two snapshots (0 if absent). *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit
