(** Lock-order validation in the spirit of the kernel's lockdep.

    Records the acquired-while-holding graph across all threads and
    reports a potential deadlock the moment an acquisition would close a
    cycle — on the first run of any interleaving, not only the unlucky
    one that actually deadlocks. *)

type warning = {
  tid : int;
  acquiring : string;
  cycle : string list;  (** the inverted order, ending back at [acquiring] *)
}

val pp_warning : Format.formatter -> warning -> unit

type t

val create : ?trace:Ktrace.t -> unit -> t

val lock_acquired : t -> name:string -> unit
(** Called by {!Klock.acquire} after taking the lock: records edges from
    every lock the current thread holds and checks for order inversions. *)

val lock_released : t -> name:string -> unit

val warnings : t -> warning list
val warning_count : t -> int
val edge_count : t -> int

val edges : t -> (string * string) list
(** The observed acquired-while-holding graph as (held, acquired) pairs,
    deterministically sorted.  Names are lock instance names
    (["i_lock:7"]); consumers wanting lock {e classes} strip the
    [:instance] suffix. *)

val dump_dot : t -> string
(** The graph in graphviz dot syntax, for debugging. *)

val append_edges_to_file : t -> path:string -> unit
(** Append {!edges} to [path], one ["held acquired"] pair per line.
    Append-mode, so concurrent test binaries can share one dump file. *)

val global : t
(** The process-wide instance, mirroring the kernel's single lockdep.
    When the [KSIM_LOCKDEP_EXPORT] environment variable names a file,
    the global graph is appended to it at process exit (the hook
    `scripts/ci.sh` uses to collect the runtime graph across the whole
    test suite for kracer's static/runtime reconciliation). *)

val export_env : string
(** The name of that environment variable, ["KSIM_LOCKDEP_EXPORT"]. *)
