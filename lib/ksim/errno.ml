(* Linux-style error codes used across the simulated kernel.  The numeric
   values match the classic x86 errno assignments so that the error-pointer
   encoding in [Dyn.Errptr] behaves like the kernel's ERR_PTR/PTR_ERR. *)

type t =
  | EPERM
  | ENOENT
  | EINTR
  | EIO
  | EBADF
  | EAGAIN
  | ENOMEM
  | EACCES
  | EFAULT
  | EBUSY
  | EEXIST
  | EXDEV
  | ENOTDIR
  | EISDIR
  | EINVAL
  | ENOSPC
  | EROFS
  | EPIPE
  | ENAMETOOLONG
  | ENOTEMPTY
  | EOVERFLOW
  | EPROTO
  | ENOSYS
  | ESTALE

let to_code = function
  | EPERM -> 1
  | ENOENT -> 2
  | EINTR -> 4
  | EIO -> 5
  | EBADF -> 9
  | EAGAIN -> 11
  | ENOMEM -> 12
  | EACCES -> 13
  | EFAULT -> 14
  | EBUSY -> 16
  | EEXIST -> 17
  | EXDEV -> 18
  | ENOTDIR -> 20
  | EISDIR -> 21
  | EINVAL -> 22
  | ENOSPC -> 28
  | EROFS -> 30
  | EPIPE -> 32
  | ENAMETOOLONG -> 36
  | ENOTEMPTY -> 39
  | EOVERFLOW -> 75
  | EPROTO -> 71
  | ENOSYS -> 38
  | ESTALE -> 116

let all =
  [ EPERM; ENOENT; EINTR; EIO; EBADF; EAGAIN; ENOMEM; EACCES; EFAULT; EBUSY; EEXIST; EXDEV;
    ENOTDIR; EISDIR; EINVAL; ENOSPC; EROFS; EPIPE; ENAMETOOLONG; ENOTEMPTY;
    EOVERFLOW; EPROTO; ENOSYS; ESTALE ]

let of_code code = List.find_opt (fun e -> to_code e = code) all

let to_string = function
  | EPERM -> "EPERM"
  | ENOENT -> "ENOENT"
  | EINTR -> "EINTR"
  | EIO -> "EIO"
  | EBADF -> "EBADF"
  | EAGAIN -> "EAGAIN"
  | ENOMEM -> "ENOMEM"
  | EACCES -> "EACCES"
  | EFAULT -> "EFAULT"
  | EBUSY -> "EBUSY"
  | EEXIST -> "EEXIST"
  | EXDEV -> "EXDEV"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | EINVAL -> "EINVAL"
  | ENOSPC -> "ENOSPC"
  | EROFS -> "EROFS"
  | EPIPE -> "EPIPE"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | ENOTEMPTY -> "ENOTEMPTY"
  | EOVERFLOW -> "EOVERFLOW"
  | EPROTO -> "EPROTO"
  | ENOSYS -> "ENOSYS"
  | ESTALE -> "ESTALE"

let pp ppf e = Fmt.string ppf (to_string e)
let equal a b = a = b

type 'a r = ('a, t) result

let ( let* ) = Result.bind
let ok x = Ok x
let error e = Error e

let pp_result pp_ok ppf = function
  | Ok v -> Fmt.pf ppf "Ok %a" pp_ok v
  | Error e -> Fmt.pf ppf "Error %a" pp e
