(* safeos: the command-line face of the simulator.

   Subcommands regenerate each paper artifact (figures, the CWE table,
   the injection matrix), run the incremental migration, crash-test the
   journaled and direct file systems, and replay workloads. *)

let std = Format.std_formatter

(* The kernel as shipped, from the shared Boot module.  LoC values come
   from klint's per-subsystem line counts when the source tree is on
   disk, so the Figure-1 audit cannot drift from the code. *)
let boot_registry () =
  let loc_of =
    match Klint.find_root () with
    | Some root -> fun name -> Klint.registry_loc ~root name
    | None -> fun _ -> None
  in
  Safeos_core.Boot.registry ~loc_of ()

(* figures ------------------------------------------------------------- *)

let figures which =
  let r = boot_registry () in
  (match which with
  | "1" -> Kcve.Figures.fig1 std r
  | "2a" -> Kcve.Figures.fig2a std ()
  | "2b" -> Kcve.Figures.fig2b std ()
  | "2c" -> Kcve.Figures.fig2c std ()
  | "cwe" -> Kcve.Figures.cwe_table std ()
  | "matrix" -> Kcve.Figures.injection_matrix std ()
  | _ -> Kcve.Figures.all std r);
  Format.pp_print_flush std ()

(* migrate ------------------------------------------------------------- *)

let migrate validation_ops =
  let r = boot_registry () in
  Fmt.pr "before migration:@.%a@.@." Safeos_core.Registry.pp r;
  let outcomes =
    Safeos_core.Roadmap.run_plan ~validation_ops r (Safeos_core.Roadmap.memfs_ladder ())
  in
  List.iter (fun o -> Fmt.pr "  %a@." Safeos_core.Roadmap.pp_outcome o) outcomes;
  Fmt.pr "@.after migration:@.%a@.@." Safeos_core.Registry.pp r;
  Safeos_core.Audit.render_progress std (Safeos_core.Audit.progress r);
  Format.pp_print_flush std ();
  if List.for_all Safeos_core.Roadmap.succeeded outcomes then 0 else 1

(* crash-test ---------------------------------------------------------- *)

let crash_test mode ops images =
  let trace =
    Kfs.Workload.generate ~seed:11 Kfs.Workload.Mixed ~ops
    |> List.filter (fun op ->
           (* keep the trace journal-friendly: moderate payloads *)
           match op with
           | Kspec.Fs_spec.Write { data; _ } -> String.length data <= 512
           | _ -> true)
  in
  let check name (module F : Kspec.Crash.CRASHABLE_FS) =
    let verdict = Kspec.Crash.check (module F) ~images_per_point:images trace in
    Fmt.pr "%-10s ops=%d crash-points=%d images=%d failures=%d -> %s@." name
      verdict.Kspec.Crash.ops_executed verdict.Kspec.Crash.crash_points
      verdict.Kspec.Crash.images_checked
      (List.length verdict.Kspec.Crash.failures)
      (if Kspec.Crash.is_safe verdict then "CRASH-SAFE" else "UNSAFE");
    List.iteri
      (fun i f -> if i < 3 then Fmt.pr "    %a@." Kspec.Crash.pp_failure f)
      verdict.Kspec.Crash.failures;
    Kspec.Crash.is_safe verdict
  in
  match mode with
  | "journaled" -> if check "journaled" (module Kfs.Journalfs.Crashable_journaled) then 0 else 1
  | "group" ->
      if check "group" (module Kfs.Journalfs.Crashable_journaled_group) then 0 else 1
  | "direct" -> if check "direct" (module Kfs.Journalfs.Crashable_direct) then 0 else 1
  | _ ->
      let a = check "journaled" (module Kfs.Journalfs.Crashable_journaled) in
      let g = check "group" (module Kfs.Journalfs.Crashable_journaled_group) in
      let b = check "direct" (module Kfs.Journalfs.Crashable_direct) in
      Fmt.pr "@.expected shape: journaled and group-commit crash-safe, direct not.@.";
      if a && g && not b then 0 else 1

(* inject --------------------------------------------------------------- *)

let inject verbose =
  let m = Kbugs.Inject.matrix () in
  Kbugs.Inject.render_matrix std m;
  if verbose then begin
    Fmt.pr "@.details:@.";
    List.iter
      (fun (fault, cells) ->
        List.iter
          (fun (stage, d) ->
            Fmt.pr "  %-22s @ %-14s %s@."
              (Kbugs.Inject.fault_to_string fault)
              (Safeos_core.Level.to_string stage)
              (Kbugs.Inject.detection_to_string d))
          cells)
      m
  end;
  let c = Kbugs.Analysis.check_claims () in
  Fmt.pr "@.claims checked: %d, upheld: %d@." c.Kbugs.Analysis.claims_checked
    c.Kbugs.Analysis.claims_upheld;
  Format.pp_print_flush std ();
  if c.Kbugs.Analysis.broken = [] then 0 else 1

(* workload -------------------------------------------------------------- *)

let fs_by_name = function
  | "memfs_unsafe" -> Some (Kvfs.Iface.make (module Kfs.Memfs_unsafe.Modular) ())
  | "memfs_typed" -> Some (Kvfs.Iface.make (module Kfs.Memfs_typed) ())
  | "memfs_owned" -> Some (Kvfs.Iface.make (module Kfs.Memfs_owned) ())
  | "memfs_verified" -> Some (Kvfs.Iface.make (module Kfs.Memfs_verified) ())
  | "journalfs" -> Some (Kvfs.Iface.make (module Kfs.Journalfs.Journaled_fs) ())
  | "unionfs" -> Some (Kvfs.Iface.make (module Kfs.Unionfs) ())
  | "cowfs" -> Some (Kvfs.Iface.make (module Kfs.Cowfs) ())
  | _ -> None

let profile_by_name = function
  | "metadata" -> Some Kfs.Workload.Metadata_heavy
  | "data" -> Some Kfs.Workload.Data_heavy
  | "mixed" -> Some Kfs.Workload.Mixed
  | "read" -> Some Kfs.Workload.Read_mostly
  | _ -> None

let workload fs_name profile_name ops seed =
  match (fs_by_name fs_name, profile_by_name profile_name) with
  | None, _ ->
      Fmt.epr "unknown fs %S@." fs_name;
      2
  | _, None ->
      Fmt.epr "unknown profile %S@." profile_name;
      2
  | Some instance, Some profile ->
      let trace = Kfs.Workload.generate ~seed profile ~ops in
      let t0 = Unix.gettimeofday () in
      let ok, errs = Kfs.Workload.replay instance trace in
      let dt = Unix.gettimeofday () -. t0 in
      Fmt.pr "fs=%s profile=%s ops=%d ok=%d err=%d  %.3f s (%.0f ops/s)@."
        (Kvfs.Iface.instance_name instance)
        (Kfs.Workload.profile_to_string profile)
        ops ok errs dt
        (float_of_int ops /. dt);
      0

(* ebpf ------------------------------------------------------------------- *)

let ebpf packets =
  Fmt.pr "== the safe-extension mechanism the paper contrasts with module replacement ==@.";
  (* 1. A loop does not load. *)
  (match Kebpf.Vm.load Kebpf.Attach.looping_program with
  | Ok _ -> Fmt.pr "loop accepted?!@."
  | Error r -> Fmt.pr "loop rejected by the verifier: %a@." Kebpf.Verifier.pp_rejection r);
  (* 2. A packet filter runs over hostile traffic without harming the kernel. *)
  let filter =
    match Kebpf.Attach.attach_filter (Kebpf.Attach.packet_kind_filter ~kind:1 ~min_len:4) with
    | Ok f -> f
    | Error _ -> assert false
  in
  let rng = Ksim.Rng.of_int 7 in
  for _ = 1 to packets do
    let len = Ksim.Rng.int rng 12 in
    let packet = Bytes.to_string (Ksim.Rng.bytes rng len) in
    ignore (Kebpf.Attach.filter_packet filter packet)
  done;
  let accepted, dropped, traps = Kebpf.Attach.filter_stats filter in
  Fmt.pr "filtered %d random packets: %d accepted, %d dropped, %d traps (all contained)@."
    packets accepted dropped traps;
  (* 3. An op tracer over a kernel workload. *)
  let tracer =
    match Kebpf.Attach.attach_tracer Kebpf.Attach.opcode_tracer with
    | Ok t -> t
    | Error _ -> assert false
  in
  let trace = Kfs.Workload.generate ~seed:4 Kfs.Workload.Mixed ~ops:2_000 in
  List.iter (Kebpf.Attach.trace_op tracer) trace;
  let buckets = Kebpf.Attach.bucket_counts tracer in
  Fmt.pr "traced a 2000-op workload by opcode:@.";
  Array.iteri (fun i n -> if n > 0 then Fmt.pr "  opcode %2d: %4d ops@." i n) buckets;
  0

(* supervise ---------------------------------------------------------------- *)

(* The microreboot walkthrough: a supervised memfs mount is driven
   through a contained oops, the EINTR quiesce window, a microreboot
   that strands a pre-oops fd at the dead epoch, and finally a panic
   storm that exhausts the restart budget into degraded reads-only
   mode.  Everything runs on the simulated clock, so the printout is
   identical on every run. *)
let supervise () =
  let p = Kspec.Fs_spec.path_of_string in
  let fp = Ksim.Failpoint.create ~seed:3 () in
  let stats = Ksim.Kstats.create () in
  let make () = Kvfs.Iface.panicky ~fp (Kvfs.Iface.make (module Kfs.Memfs_typed) ()) in
  let vfs = Kvfs.Vfs.create () in
  (match Kvfs.Vfs.mount vfs ~at:[] ~remake:make ~stats (make ()) with
  | Ok () -> ()
  | Error e ->
      Fmt.epr "mount: %s@." (Ksim.Errno.to_string e);
      exit 2);
  let fops = Kvfs.File_ops.create vfs in
  let step label r = Fmt.pr "  %-44s -> %a@." label Kspec.Fs_spec.pp_result r in
  Fmt.pr "== a supervised mount: memfs behind the oops firewall ==@.";
  step "create /boot" (Kvfs.Vfs.apply vfs (Create (p "/boot")));
  step "write /boot" (Kvfs.Vfs.apply vfs (Write { file = p "/boot"; off = 0; data = "v1" }));
  let fd =
    match Kvfs.File_ops.openf fops "/boot" with
    | Ok fd -> fd
    | Error e ->
        Fmt.epr "open /boot: %s@." (Ksim.Errno.to_string e);
        exit 2
  in
  Fmt.pr "  open /boot: fd %d minted at epoch %d@." fd (Kvfs.Vfs.epoch_at vfs (p "/boot"));
  Fmt.pr "@.-- the module oopses (failpoint \"module.panic\") --@.";
  Ksim.Failpoint.configure fp "module.panic" ~enabled:true ~times:1 ();
  step "stat /boot (the oops, contained)" (Kvfs.Vfs.apply vfs (Stat (p "/boot")));
  step "stat /boot (quiescing)" (Kvfs.Vfs.apply vfs (Stat (p "/boot")));
  step "stat /boot (microrebooted: fresh RAM fs)" (Kvfs.Vfs.apply vfs (Stat (p "/boot")));
  let recovered =
    match Kvfs.Vfs.supervisor_at vfs (p "/boot") with
    | Some sup ->
        Fmt.pr "  supervisor: %a@." Ksim.Supervisor.pp sup;
        Ksim.Supervisor.state sup = Ksim.Supervisor.Healthy && Ksim.Supervisor.epoch sup = 1
    | None -> false
  in
  Fmt.pr "@.-- stale-handle epochs --@.";
  let stale =
    match Kvfs.File_ops.read fops fd ~len:2 with
    | Error e ->
        Fmt.pr "  read fd %d (minted at epoch 0)               -> %s@." fd
          (Ksim.Errno.to_string e);
        e = Ksim.Errno.ESTALE
    | Ok data ->
        Fmt.pr "  read fd %d (minted at epoch 0)               -> %S (?!)@." fd data;
        false
  in
  (match Kvfs.File_ops.openf fops ~flags:[ Kvfs.File_ops.O_CREAT ] "/boot" with
  | Ok fd2 -> Fmt.pr "  reopen /boot: fd %d at epoch %d@." fd2 (Kvfs.Vfs.epoch_at vfs (p "/boot"))
  | Error e -> Fmt.pr "  reopen /boot failed: %s@." (Ksim.Errno.to_string e));
  Fmt.pr "@.-- a panic storm exhausts the restart budget --@.";
  (* One of the three budgeted restarts is already spent on the first
     act, so three more panics tip the supervisor into Failed. *)
  Ksim.Failpoint.configure fp "module.panic" ~enabled:true ~times:3 ();
  for i = 1 to 64 do
    match Kvfs.Vfs.apply vfs (Write { file = p "/spin"; off = 0; data = string_of_int i }) with
    | Ok _ | Error _ -> ()
  done;
  let failed =
    match Kvfs.Vfs.supervisor_at vfs (p "/spin") with
    | Some sup ->
        Fmt.pr "  supervisor: %a@." Ksim.Supervisor.pp sup;
        Ksim.Supervisor.state sup = Ksim.Supervisor.Failed
    | None -> false
  in
  step "readdir / (degraded: reads-only)" (Kvfs.Vfs.apply vfs (Readdir (p "/")));
  step "create /nope (degraded: mutation)" (Kvfs.Vfs.apply vfs (Create (p "/nope")));
  Fmt.pr "@.counters:@.";
  List.iter
    (fun (k, v) -> Fmt.pr "  %-32s %d@." k v)
    (List.sort compare (Ksim.Kstats.snapshot stats));
  Fmt.pr "@.incidents audited: %d@." (List.length (Safeos_core.Audit.incidents ()));
  if recovered && stale && failed then 0 else 1

(* load --------------------------------------------------------------------- *)

(* The multi-tenant load harness: thousands of tenant processes over the
   supervised stack, a failpoint storm mid-run, the recovery SLO as the
   exit code.  Everything is on the simulated clock, so the same seed
   reproduces the same report byte for byte. *)
let load tenants ops storm_name seed spec_dsl json out =
  let storm =
    match Kload.Harness.storm_of_string storm_name with
    | Some s -> s
    | None ->
        Fmt.epr "safeos load: unknown storm %S (known: %s)@." storm_name
          (String.concat ", " (List.map Kload.Harness.storm_name Kload.Harness.all_storms));
        exit 2
  in
  let spec =
    match spec_dsl with
    | Some dsl -> (
        match Kload.Spec.of_string dsl with
        | Ok s -> s
        | Error msg ->
            Fmt.epr "safeos load: bad spec %S: %s@." dsl msg;
            exit 2)
    | None -> { Kload.Spec.default with Kload.Spec.tenants; ops_per_tenant = ops }
  in
  let t0 = Unix.gettimeofday () in
  let { Kload.Harness.report; crashed_tenants; _ } =
    Kload.Harness.run ~spec ~storm ~seed ()
  in
  let dt = Unix.gettimeofday () -. t0 in
  if json then Fmt.pr "%s@." (Kload.Report.to_json_string report)
  else begin
    Fmt.pr "%a@." Kload.Report.pp report;
    Fmt.pr "wall: %.3f s (%.0f ops/s real)@." dt
      (if dt > 0. then float_of_int report.Kload.Report.executed /. dt else 0.)
  end;
  (match out with
  | Some path ->
      let oc = open_out path in
      output_string oc (Kload.Report.to_json_string report);
      output_string oc "\n";
      close_out oc;
      Fmt.pr "report written to %s@." path
  | None -> ());
  let verdict = Kload.Slo.evaluate report in
  Fmt.pr "%a@." Kload.Slo.pp_verdict verdict;
  if crashed_tenants > 0 then Fmt.pr "UNCONTAINED: %d tenant(s) crashed@." crashed_tenants;
  if verdict.Kload.Slo.passed && crashed_tenants = 0 then 0 else 1

(* refine ----------------------------------------------------------------- *)

(* Drive the registered kharness machines (journalfs-as-IOSystem, cowfs,
   the supervised microreboot path) through a kload-recorded trace,
   checking invariant + refinement at every step and enumerating crash
   images.  The coverage file this writes is what klint's
   --refine-coverage ratchet consumes, so "verified" stays an executable
   claim. *)
let refine harnesses all_h trace_path seed images ops crash_every json out coverage_out =
  let entries =
    if all_h || harnesses = [] then Kharness.all ()
    else
      List.map
        (fun name ->
          match Kharness.find name with
          | Some e -> e
          | None ->
              Fmt.epr "safeos refine: unknown harness %S (known: %s)@." name
                (String.concat ", " (List.map (fun e -> e.Kharness.hname) (Kharness.all ())));
              exit 2)
        harnesses
  in
  let trace =
    match trace_path with
    | Some path -> (
        match Kload.Trace.load ~path with
        | Ok t -> t
        | Error msg ->
            Fmt.epr "safeos refine: bad trace %s: %s@." path msg;
            exit 2)
    | None -> Kharness.recorded_trace ~target_ops:ops ~seed ()
  in
  Fmt.pr "refine: %d ops (%s), seed %d, %d crash images per point, crash every %d op(s)@."
    (List.length trace)
    (match trace_path with Some p -> p | None -> "kload-recorded")
    seed images crash_every;
  let config =
    {
      Kspec.Krefine.default_config with
      Kspec.Krefine.seed;
      images_per_op = images;
      crash_every;
    }
  in
  let t0 = Unix.gettimeofday () in
  let results =
    List.map
      (fun (e : Kharness.entry) ->
        let cov = Kharness.run ~config e trace in
        (e, cov))
      entries
  in
  let dt = Unix.gettimeofday () -. t0 in
  let rows =
    List.map
      (fun ((e : Kharness.entry), (cov : Kspec.Krefine.coverage)) ->
        {
          Klint.Kverify.cov_harness = e.Kharness.hname;
          cov_subsystem = e.Kharness.subsystem;
          cov_ops = cov.Kspec.Krefine.ops;
          cov_states = cov.Kspec.Krefine.states_explored;
          cov_crash_points = cov.Kspec.Krefine.crash_points;
          cov_crash_images = cov.Kspec.Krefine.crash_images;
          cov_skipped = cov.Kspec.Krefine.skipped_images;
          cov_divergences = List.length cov.Kspec.Krefine.divergences;
          cov_deepest = cov.Kspec.Krefine.deepest_divergence;
          cov_fingerprint = Kspec.Krefine.coverage_fingerprint cov;
        })
      results
  in
  let row_json (r : Klint.Kverify.coverage_row) =
    Printf.sprintf
      "{\"harness\": \"%s\", \"subsystem\": \"%s\", \"ops\": %d, \"states\": %d, \
       \"crash_points\": %d, \"crash_images\": %d, \"skipped\": %d, \"divergences\": %d, \
       \"deepest\": %d, \"fingerprint\": \"%s\"}"
      r.Klint.Kverify.cov_harness r.Klint.Kverify.cov_subsystem r.Klint.Kverify.cov_ops
      r.Klint.Kverify.cov_states r.Klint.Kverify.cov_crash_points
      r.Klint.Kverify.cov_crash_images r.Klint.Kverify.cov_skipped
      r.Klint.Kverify.cov_divergences r.Klint.Kverify.cov_deepest
      r.Klint.Kverify.cov_fingerprint
  in
  let json_doc = "[" ^ String.concat ", " (List.map row_json rows) ^ "]" in
  if json then Fmt.pr "%s@." json_doc
  else
    List.iter
      (fun ((_ : Kharness.entry), cov) ->
        Fmt.pr "  %a@." Kspec.Krefine.pp_coverage cov;
        List.iter
          (fun d -> Fmt.pr "    %a@." Kspec.Krefine.pp_divergence d)
          cov.Kspec.Krefine.divergences)
      results;
  Fmt.pr "wall: %.3f s@." dt;
  (match out with
  | Some path ->
      let oc = open_out path in
      output_string oc (json_doc ^ "\n");
      close_out oc;
      Fmt.pr "results written to %s@." path
  | None -> ());
  (match coverage_out with
  | Some path ->
      Klint.Kverify.save_coverage path rows;
      Fmt.pr "coverage written to %s@." path
  | None -> ());
  let diverged =
    List.filter (fun (_, cov) -> not (Kspec.Krefine.is_clean cov)) results
  in
  List.iter
    (fun ((e : Kharness.entry), _) ->
      Fmt.epr "REFINEMENT FAILURE: harness %s diverged from Fs_spec@." e.Kharness.hname)
    diverged;
  if diverged = [] then 0 else 1

(* audit ------------------------------------------------------------------ *)

let audit () =
  let r = boot_registry () in
  Fmt.pr "%a@.@." Safeos_core.Registry.pp r;
  Safeos_core.Audit.render_progress std (Safeos_core.Audit.progress r);
  Format.pp_print_flush std ();
  0

(* cmdliner glue ------------------------------------------------------------ *)

open Cmdliner

let figures_cmd =
  let which =
    Arg.(value & opt string "all" & info [ "fig" ] ~docv:"FIG" ~doc:"1, 2a, 2b, 2c, cwe, matrix, or all")
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate the paper's figures and tables")
    Term.(const (fun w -> figures w; 0) $ which)

let migrate_cmd =
  let ops =
    Arg.(value & opt int 400 & info [ "validation-ops" ] ~docv:"N" ~doc:"trace length used to validate each step")
  in
  Cmd.v
    (Cmd.info "migrate" ~doc:"Run the incremental memfs migration (unsafe -> verified)")
    Term.(const migrate $ ops)

let crash_cmd =
  let mode =
    Arg.(value & opt string "both" & info [ "mode" ] ~docv:"MODE" ~doc:"journaled, group, direct, or all")
  in
  let ops = Arg.(value & opt int 25 & info [ "ops" ] ~docv:"N" ~doc:"trace length") in
  let images =
    Arg.(value & opt int 16 & info [ "images" ] ~docv:"N" ~doc:"crash images explored per crash point")
  in
  Cmd.v
    (Cmd.info "crash-test" ~doc:"Check crash safety against the crash-safe specification")
    Term.(const crash_test $ mode $ ops $ images)

let inject_cmd =
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"print per-cell details") in
  Cmd.v
    (Cmd.info "inject" ~doc:"Run the fault-injection matrix across roadmap stages")
    Term.(const inject $ verbose)

let workload_cmd =
  let fs = Arg.(value & opt string "memfs_typed" & info [ "fs" ] ~docv:"FS") in
  let profile = Arg.(value & opt string "mixed" & info [ "profile" ] ~docv:"PROFILE") in
  let ops = Arg.(value & opt int 10_000 & info [ "ops" ] ~docv:"N") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  Cmd.v
    (Cmd.info "workload" ~doc:"Replay a generated workload against a file system")
    Term.(const workload $ fs $ profile $ ops $ seed)

let ebpf_cmd =
  let packets = Arg.(value & opt int 1000 & info [ "packets" ] ~docv:"N") in
  Cmd.v
    (Cmd.info "ebpf" ~doc:"Demonstrate the verified extension VM (loads, filters, traces)")
    Term.(const ebpf $ packets)

let load_cmd =
  let tenants =
    Arg.(value & opt int Kload.Spec.default.Kload.Spec.tenants
         & info [ "tenants" ] ~docv:"N" ~doc:"simulated tenant processes")
  in
  let ops =
    Arg.(value & opt int Kload.Spec.default.Kload.Spec.ops_per_tenant
         & info [ "ops" ] ~docv:"N" ~doc:"operations per tenant")
  in
  let storm =
    Arg.(value & opt string "mixed"
         & info [ "storm" ] ~docv:"STORM"
             ~doc:"none, panic-wave, eio-wave, sock-storm, cache-wave, or mixed")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  let spec =
    Arg.(value & opt (some string) None
         & info [ "spec" ] ~docv:"DSL"
             ~doc:"full workload spec, e.g. \
                   'tenants=1000; ops=8; classes=rpc:3:net=8,meta=1' (overrides \
                   $(b,--tenants)/$(b,--ops))")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"print the report as JSON") in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"also write the JSON report to $(docv)")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Run the multi-tenant load harness with a failpoint storm and gate on the SLO")
    Term.(const load $ tenants $ ops $ storm $ seed $ spec $ json $ out)

let supervise_cmd =
  Cmd.v
    (Cmd.info "supervise"
       ~doc:"Demonstrate oops containment, microreboot, and stale-handle epochs")
    Term.(const supervise $ const ())

let audit_cmd =
  Cmd.v
    (Cmd.info "audit" ~doc:"Show the component registry and safety progress")
    Term.(const audit $ const ())

(* explain ------------------------------------------------------------- *)

(* One paragraph per klint rule: what fires, why the ladder forbids it at
   the rung it names, and what the fix usually looks like. *)
let rule_explanation : Klint.Finding.rule -> string = function
  | Klint.Finding.R1_unchecked_cast ->
      "An Obj.magic / unchecked cast: the value's runtime type is asserted, not \
       proven.  Forbidden from Type_safe up — replace with a typed constructor, a \
       variant, or Dyn's checked casts."
  | Klint.Finding.R2_unchecked_errptr ->
      "A value that may encode an error (Linux's ERR_PTR idiom) is dereferenced \
       without checking.  Match on the result (Ok/Error) before use."
  | Klint.Finding.R3_lock_balance ->
      "A function acquires and releases unbalanced lock counts on some path, and \
       its annotation (@acquires/@releases) does not declare that on purpose."
  | Klint.Finding.R4_ownership_bypass ->
      "Raw Bytes.unsafe_* access bypasses both bounds and ownership checks — the \
       escape hatch the ownership rung exists to remove."
  | Klint.Finding.R5_must_check ->
      "A result carrying an error is silently dropped (ignore/discard).  Handle \
       the Error arm or thread it out."
  | Klint.Finding.R6_lockset_race ->
      "A cell guarded by a lock (Klock.Guarded) is reached while the \
       interprocedural lockset provably cannot contain the guard, or a call site \
       violates a callee's @must_hold contract."
  | Klint.Finding.R7_lock_annotation ->
      "A lock annotation and the function body disagree — the contract says one \
       thing, the walk observes another.  Fix whichever is wrong."
  | Klint.Finding.R8_use_after_free ->
      "kown (the ownership-lifetime analysis) found a path on which a freed or \
       consumed allocation is read, written, lent, or stored: the static form of \
       Kmem's Use_after_free event (CWE-416).  Ownership states are tracked per \
       binding (Owned -> Freed/Moved) through branch joins and across calls via \
       per-function summaries and @consumes annotations.  Fix by reordering the \
       free to after the last use, or transferring ownership explicitly \
       (Checker.transfer) so the new owner frees."
  | Klint.Finding.R9_double_free ->
      "kown found a path on which an allocation already Freed (or Moved into a \
       consuming callee, per summary or @consumes) reaches Kmem.free / \
       Checker.free again — the static form of Kmem's Double_free event \
       (CWE-415).  Exactly one owner must free; make the other path borrow \
       (@borrows) or drop its free."
  | Klint.Finding.R10_error_leak ->
      "An owned allocation is still live, unescaped, when the function \
       constructs an Error return — the allocate-then-fail-then-forget shape \
       (CWE-401) — or one branch of an if/else frees what its sibling, running \
       the same teardown, forgets.  Free or transfer before returning the \
       error; tx-style APIs want an explicit abort on the failure arm."
  | Klint.Finding.R11_borrow_escape ->
      "A capability lent via Checker.lend_shared/lend_exclusive escapes its lend \
       scope (stored in a structure or returned from the closure), is freed \
       while only borrowed, or a revoked capability is used (CWE-416).  Borrows \
       must stay inside the ~f closure; take ownership via Checker.transfer if \
       the value must outlive the lend."
  | Klint.Finding.R12_unsafe_primitive ->
      "ktcb (the frame-confinement pass) found a direct use of the raw substrate \
       — Dyn.*, Kmem alloc/free, Bytes.unsafe_*, or bare Klock.acquire/release — \
       outside the declared lib/ksim frame: unsafe-TCB bloat (CWE-1120).  \
       Services reach the substrate only through the audited Ksim.Frame wrappers \
       (Priv slots, Handle decoding, Buf.freeze, Cell.peek); migrate the call \
       site or, for an intentional specimen, grandfather it in tcb.baseline."
  | Klint.Finding.R13_frame_bypass ->
      "A call resolves, over the whole-tree call graph, to a frame symbol that \
       is not on the blessed .mli surface — or to a non-frame helper that \
       transitively launders one, the depth->=2 pattern a per-site grep misses \
       (CWE-653).  Route the operation through Ksim.Frame, or bless the symbol \
       if it genuinely belongs on the audited boundary."
  | Klint.Finding.R14_unsound_export ->
      "A frame function returns a fresh owned raw capability (per kown's \
       ownership summaries) to at least one non-frame caller: the resource \
       crosses the boundary unwrapped (CWE-668) and the service inherits an \
       ownership obligation the frame never priced.  Return it wrapped in a \
       Frame handle, or keep the allocation inside the frame."
  | Klint.Finding.R15_unverified_claim ->
      "A subsystem registers at the Verified rung but no krefine harness \
       covers it: the functional claim is documentation, not a checked \
       artifact (CWE-1059).  Register a machine for it with \
       Kharness.harness ~name ~subsystem (run via `safeos refine`), or \
       lower the registry level until one exists.  Unlike R1-R11 this \
       rule cannot be baselined: 'verified means checked' is the point."
  | Klint.Finding.R16_unordered_write ->
      "kdur (the barrier-discipline analysis) found a device write whose input \
       derives from a still-volatile earlier write, with no flush or FUA between \
       them on some path (CWE-662).  Under a volatile write-back cache the two \
       writes may reach media in either order, so a crash can persist the \
       dependent write without its antecedent — the static twin of the \
       Wcache.audit runtime violation.  Insert an Io.flush (or write the \
       antecedent with write_fua) before the dependent write, or annotate the \
       helper that performs the barrier with @flushes."
  | Klint.Finding.R17_ack_before_durable ->
      "A function contracted @durable has a path that returns Ok while writes \
       it issued (or its callees issued, per summary) are still volatile in the \
       cache: the ack races the media (CWE-392).  This is the missing-barrier \
       journal mutant's signature — the commit record is acked with the flush \
       elided.  End every Ok path with Io.flush / write_fua, or drop the \
       @durable claim if the caller genuinely owns the barrier (then \
       @orders_after names the handle the obligation rides on)."
  | Klint.Finding.R18_barrier_elision ->
      "A supervision/retry wrapper forwards to a callee whose summary requires \
       a barrier (it writes and expects its caller to flush, or is contracted \
       @durable), but the wrapper neither performs the flush nor re-exports the \
       obligation with @orders_after/@flushes (CWE-573): the flush \
       responsibility is silently dropped at the boundary, so every caller \
       above believes the write path is durable.  Either flush in the wrapper \
       or annotate it so the contract keeps travelling."

(* One paragraph per storm-preset failpoint site: what the fault models
   and which machinery is supposed to absorb it.  [safeos explain
   wcache.flush-dropped] answers the question the storm report raises. *)
let site_explanations =
  [
    ( "flaky.read-eio",
      "Flakydev fails the read with a transient EIO.  Absorbed by the Resilient \
       retry layer (bounded attempts, jittered backoff); a failure that outlives \
       the retries aborts the FS operation cleanly." );
    ( "flaky.write-eio",
      "Flakydev fails the write with a transient EIO before anything lands.  Same \
       retry contract as read-eio; a persistent failure flips journalfs into \
       errors=remount-ro degraded mode." );
    ( "flaky.torn-write",
      "Flakydev lands only a prefix of the block, then reports EIO — the classic \
       interrupted sector write.  The journal's checksummed records make a torn \
       record detectable and ignorable at recovery.  During a down-window the base \
       write itself fails, so nothing lands: counted separately as torn_skipped, \
       not as a torn write." );
    ( "svc.panic",
      "A module panic injected in the /svc filesystem.  Contained to EIO by the \
       supervised mount, which microreboots the instance (RAM loss is legal \
       there)." );
    ( "dur.panic",
      "A module panic injected in the /dur journalfs.  Contained to EIO; the \
       supervisor microreboots via drain-cache + journal-replay remount, and \
       acked writes must survive (the SLO gate checks)." );
    ( "sock.panic",
      "A panic in the socket layer.  The supervised socket microreboots with a \
       fresh generation; stale handles are rejected with ESTALE and re-minted by \
       the caller retry loop." );
    ( "wcache.flush-dropped",
      "The write-back cache acks flush without draining or closing the barrier \
       epoch — a lying drive.  Acked-but-unflushed data stays volatile, so a \
       crash can lose it; with honest barriers above (journalfs keeps its \
       commit-record and checkpoint flushes) the durability audit still sees \
       zero lost acked writes, because every ack the FS reports durable was \
       re-flushed until a flush really completed or never acked at all." );
    ( "wcache.writeback-reorder",
      "Capacity eviction destages a seeded random victim instead of the oldest \
       dirty block, so writes reach media out of order within a barrier epoch.  \
       Legal under the volatile-cache contract — only code that relies on \
       unflushed ordering breaks, which is exactly what Wcache.audit flags." );
  ]

let explain ids =
  let is_site id = List.mem_assoc id site_explanations in
  let rules =
    match ids with
    | [] -> Klint.Finding.all_rules
    | ids ->
        List.filter_map
          (fun id ->
            if is_site id then None
            else
              match Klint.Finding.rule_of_id (String.uppercase_ascii id) with
              | Some r -> Some r
              | None ->
                  Fmt.epr
                    "safeos explain: unknown rule or failpoint site %S (known: \
                     R1..R18, %s)@."
                    id
                    (String.concat ", " (List.map fst site_explanations));
                  exit 2)
          ids
  in
  let sites =
    match ids with
    | [] -> site_explanations
    | ids -> List.filter (fun (s, _) -> List.mem s ids) site_explanations
  in
  List.iter
    (fun r ->
      Fmt.pr "%s %s (CWE-%d, %s):@.  @[%a@]@.@."
        (Klint.Finding.rule_id r) (Klint.Finding.rule_name r) (Klint.Finding.cwe_id r)
        (Safeos_core.Level.bug_class_to_string (Klint.Finding.bug_class r))
        Fmt.text (rule_explanation r))
    rules;
  List.iter
    (fun (s, text) -> Fmt.pr "%s (failpoint site):@.  @[%a@]@.@." s Fmt.text text)
    sites;
  0

(* tcb -------------------------------------------------------------------- *)

(* The per-subsystem unsafe-TCB table the framekernel refactor ratchets:
   full frame LOC plus distinct R12/R13 lines outside it, over total
   effective LOC.  [--json] prints the same [tcb] object the klint
   report persists. *)
let tcb json =
  match Klint.find_root () with
  | None ->
      Fmt.epr "safeos tcb: cannot find dune-project above %s@." (Sys.getcwd ());
      2
  | Some root ->
      let t = Klint.Ktcb.analyze_tree ~root in
      if json then begin
        Fmt.pr "%s@." (Klint.Report.tcb_json t);
        0
      end
      else begin
        Fmt.pr "unsafe TCB: %d / %d effective lines (%.1f%%), frame surface %d vals@."
          t.Klint.Ktcb.unsafe_loc t.Klint.Ktcb.total_loc (Klint.Ktcb.ratio t)
          t.Klint.Ktcb.surface_vals;
        Fmt.pr "frame: %d files, %d lines (lib/ksim)@.@." t.Klint.Ktcb.frame_files
          t.Klint.Ktcb.frame_loc;
        Fmt.pr "%-16s %8s %8s %7s %7s %9s  %s@." "subsystem" "loc" "unsafe" "ratio"
          "direct" "indirect" "kind";
        List.iter
          (fun (r : Klint.Ktcb.row) ->
            Fmt.pr "%-16s %8d %8d %6.1f%% %7d %9d  %s@." r.Klint.Ktcb.sub r.Klint.Ktcb.loc
              r.Klint.Ktcb.unsafe_loc
              (if r.Klint.Ktcb.loc = 0 then 0.0
               else
                 100.0
                 *. float_of_int r.Klint.Ktcb.unsafe_loc
                 /. float_of_int r.Klint.Ktcb.loc)
              r.Klint.Ktcb.direct r.Klint.Ktcb.indirect
              (if r.Klint.Ktcb.in_frame then "frame"
               else if r.Klint.Ktcb.exhibit then "exhibit"
               else if r.Klint.Ktcb.unsafe_loc = 0 then "clean"
               else "unsafe"))
          t.Klint.Ktcb.rows;
        0
      end

let tcb_cmd =
  let json = Arg.(value & flag & info [ "json" ] ~doc:"print the tcb report object as JSON") in
  Cmd.v
    (Cmd.info "tcb"
       ~doc:"Show the per-subsystem unsafe-TCB table the framekernel ratchet enforces")
    Term.(const tcb $ json)

let refine_cmd =
  let harnesses =
    Arg.(value & opt_all string []
         & info [ "harness" ] ~docv:"NAME"
             ~doc:"Harness to run (repeatable); all registered harnesses when omitted")
  in
  let all_h =
    Arg.(value & flag
         & info [ "all" ] ~doc:"Run every registered harness (the default)")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Replay a saved kload trace instead of recording one")
  in
  let seed =
    Arg.(value & opt int 11
         & info [ "seed" ] ~docv:"N"
             ~doc:"Seed for trace recording and crash-image enumeration")
  in
  let images =
    Arg.(value & opt int 4
         & info [ "images" ] ~docv:"N" ~doc:"Crash images enumerated per crash point")
  in
  let ops =
    Arg.(value & opt int 10_000
         & info [ "ops" ] ~docv:"N"
             ~doc:"Target length of the recorded trace (ignored with --trace)")
  in
  let crash_every =
    Arg.(value & opt int 1
         & info [ "crash-every" ] ~docv:"N"
             ~doc:"Enumerate crash images every Nth op (0 disables crash checking); \
                   the default checks every op")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"print coverage rows as JSON") in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"also write the JSON results to FILE")
  in
  let coverage_out =
    Arg.(value & opt (some string) None
         & info [ "coverage-out" ] ~docv:"FILE"
             ~doc:"write coverage rows for klint's --refine-coverage ratchet")
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:"Check the registered krefine harnesses against Fs_spec over a recorded trace")
    Term.(const refine $ harnesses $ all_h $ trace $ seed $ images $ ops $ crash_every
          $ json $ out $ coverage_out)

let explain_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"RULE"
           ~doc:"Rule identifiers (R1..R18); all rules when omitted")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain klint rules and failpoint sites: what fires, why, and the usual \
          fix")
    Term.(const explain $ ids)

let main =
  Cmd.group
    (Cmd.info "safeos" ~version:"1.0.0"
       ~doc:"An incremental path towards a safer OS kernel — simulator and experiments")
    [
      figures_cmd;
      migrate_cmd;
      crash_cmd;
      inject_cmd;
      workload_cmd;
      ebpf_cmd;
      load_cmd;
      supervise_cmd;
      audit_cmd;
      refine_cmd;
      explain_cmd;
      tcb_cmd;
    ]

let () = exit (Cmd.eval' main)
