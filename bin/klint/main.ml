(* klint driver: lint lib/ against the safety ladder, reconcile with the
   boot registry's level claims, and gate CI.

   Exit codes: 0 clean (or only baselined/permitted findings),
   1 non-baselined violations, 2 operational errors (parse failure,
   bad baseline, missing tree). *)

let ( / ) = Filename.concat

let run root_opt baseline_opt report_opt update_baseline verbose lockdep_edges lock_graph_dot
    kmem_events tcb_baseline_opt update_tcb_baseline allow_tcb_growth refine_coverage
    refine_baseline_opt update_refine_baseline allow_refine_regress baseline_head
    allow_baseline_growth dur_baseline_opt update_dur_baseline allow_dur_growth
    wcache_violations =
  let root =
    match root_opt with
    | Some r -> r
    | None -> (
        match Klint.find_root () with
        | Some r -> r
        | None ->
            Fmt.epr "klint: cannot find dune-project above %s (use --root)@." (Sys.getcwd ());
            exit 2)
  in
  if not (Sys.file_exists (root / "lib")) then begin
    Fmt.epr "klint: %s has no lib/ to lint@." root;
    exit 2
  end;
  let baseline_path = match baseline_opt with Some p -> p | None -> root / "klint.baseline" in
  let tcb_baseline_path =
    match tcb_baseline_opt with Some p -> p | None -> root / "tcb.baseline"
  in
  let refine_baseline_path =
    match refine_baseline_opt with Some p -> p | None -> root / "refine.baseline"
  in
  let dur_baseline_path =
    match dur_baseline_opt with Some p -> p | None -> root / "dur.baseline"
  in
  let report_path =
    match report_opt with Some p -> p | None -> root / "_build" / "klint-report.json"
  in
  (* The same registry the kernel boots with, sized from the tree. *)
  let registry =
    Safeos_core.Boot.registry ~loc_of:(fun name -> Klint.registry_loc ~root name) ()
  in
  let tree = Klint.Engine.lint_tree ~root in
  List.iter
    (fun (file, msg) -> Fmt.epr "klint: parse error in %s:@.%s@." file msg)
    tree.Klint.Engine.parse_errors;
  if tree.Klint.Engine.parse_errors <> [] then exit 2;
  if update_baseline then begin
    Klint.Baseline.save baseline_path (Klint.Baseline.of_findings tree.Klint.Engine.findings);
    Fmt.pr "klint: wrote %d baseline entries to %s@."
      (List.length (Klint.Baseline.of_findings tree.Klint.Engine.findings))
      baseline_path
  end;
  let baseline =
    match Klint.Baseline.load baseline_path with
    | Ok entries -> entries
    | Error msg ->
        Fmt.epr "klint: bad baseline %s: %s@." baseline_path msg;
        exit 2
  in
  (* The baseline growth ratchet ci.sh used to re-derive in awk: compare
     the line-anchored baseline against its HEAD copy per (rule, file)
     count, so pure renumbering from unrelated edits in the same file is
     never growth, one more suppressed finding in a file always is. *)
  let head_rc =
    match baseline_head with
    | None -> 0
    | Some path -> (
        match Klint.Baseline.load path with
        | Error msg ->
            Fmt.epr "klint: bad head baseline %s: %s@." path msg;
            2
        | Ok head -> (
            let regressions, _ =
              Klint.Baseline.Counts.compare_counts
                ~baseline:(Klint.Baseline.counts head)
                (Klint.Baseline.counts baseline)
            in
            match regressions with
            | [] ->
                Fmt.pr "klint: baseline did not grow vs %s@." path;
                0
            | _ when allow_baseline_growth ->
                List.iter
                  (fun (d : Klint.Baseline.Counts.delta) ->
                    Fmt.pr "klint: baseline growth (allowed) — %s %s: %d > HEAD %d@."
                      (Klint.Finding.rule_id d.Klint.Baseline.Counts.d_rule)
                      d.Klint.Baseline.Counts.d_file d.Klint.Baseline.Counts.d_have
                      d.Klint.Baseline.Counts.d_allowed)
                  regressions;
                0
            | _ ->
                List.iter
                  (fun (d : Klint.Baseline.Counts.delta) ->
                    Fmt.epr
                      "klint: BASELINE GREW — %s %s: %d suppressed finding(s) > HEAD %d \
                       (fix the findings, or ALLOW_BASELINE_GROWTH=1 to accept)@."
                      (Klint.Finding.rule_id d.Klint.Baseline.Counts.d_rule)
                      d.Klint.Baseline.Counts.d_file d.Klint.Baseline.Counts.d_have
                      d.Klint.Baseline.Counts.d_allowed)
                  regressions;
                1))
  in
  (* R15 (unverified-functional-claim) needs the live registry, so it is
     synthesized here and fed through the same reconciliation as the
     per-file rules.  It is deliberately not baselineable: the baseline
     is regenerated from the tree findings alone, so a Verified claim
     without a harness can never be grandfathered in. *)
  let r15_findings = Klint.Kverify.r15 ~registry tree.Klint.Engine.kverify in
  let all_findings = Klint.Finding.sort (tree.Klint.Engine.findings @ r15_findings) in
  let r = Klint.Engine.reconcile ~registry ~baseline all_findings in
  let refine_rows =
    match refine_coverage with
    | None -> None
    | Some path -> (
        match Klint.Kverify.load_coverage path with
        | Ok rows -> Some rows
        | Error msg ->
            Fmt.epr "klint: bad refine coverage %s: %s@." path msg;
            exit 2)
  in
  Klint.Report.write ~path:report_path
    (Klint.Report.to_json ~registry ?refine:refine_rows tree r);
  let attributed = r.Klint.Engine.attributed in
  if verbose then
    List.iter
      (fun (a : Klint.Engine.attributed) ->
        Fmt.pr "%a  [%s@%s%s]@." Klint.Finding.pp a.Klint.Engine.finding a.Klint.Engine.sub
          (Safeos_core.Level.to_string a.Klint.Engine.level)
          (if a.Klint.Engine.baselined then ", baselined" else ""))
      attributed;
  Fmt.pr "klint: %d files, %d effective lines, %d findings (%d baselined), %d violations@."
    (List.length tree.Klint.Engine.files)
    tree.Klint.Engine.effective_loc (List.length attributed)
    (List.length (List.filter (fun a -> a.Klint.Engine.baselined) attributed))
    (List.length r.Klint.Engine.violations);
  if r.Klint.Engine.stale_baseline <> [] then
    Fmt.pr "klint: ratchet progress — %d baseline entries no longer fire; regenerate with --update-baseline@."
      (List.length r.Klint.Engine.stale_baseline);
  Fmt.pr "klint: report written to %s@." report_path;
  let kracer = tree.Klint.Engine.kracer in
  Fmt.pr "klint: lock graph — %d functions, %d static edges, %d guard classes@."
    kracer.Klint.Kracer.funcs
    (List.length kracer.Klint.Kracer.edges)
    (List.length kracer.Klint.Kracer.guards);
  List.iter
    (fun cyc ->
      Fmt.pr "klint: PREDICTED DEADLOCK — static lock-order cycle: %s@."
        (String.concat " -> " (cyc @ [ List.hd cyc ])))
    kracer.Klint.Kracer.cycles;
  (match lock_graph_dot with
  | Some path ->
      let oc = open_out path in
      output_string oc (Klint.Kracer.dot_of_edges kracer.Klint.Kracer.edges);
      close_out oc;
      Fmt.pr "klint: lock graph written to %s@." path
  | None -> ());
  (* Static/runtime reconciliation: every lock nesting the tests saw must
     already be in the static graph, otherwise the analysis has a hole. *)
  let reconcile_rc =
    match lockdep_edges with
    | None -> 0
    | Some path -> (
        match Klint.Kracer.read_runtime_edges path with
        | Error msg ->
            Fmt.epr "klint: %s@." msg;
            2
        | Ok runtime -> (
            let tcb_lock_rc =
              (* Frame-confinement attribution: a runtime lock class the
                 static graph has never seen, created by a module the
                 TCB metric classifies as frame-free, is a confinement
                 hole, not just a kracer gap. *)
              let static_classes =
                List.sort_uniq String.compare
                  (List.concat_map
                     (fun (a, b) -> [ a; b ])
                     kracer.Klint.Kracer.edges
                  @ List.map snd kracer.Klint.Kracer.guards)
              in
              match
                Klint.Ktcb.unsound_lock_edges ~result:tree.Klint.Engine.ktcb
                  ~static_classes runtime
              with
              | [] -> 0
              | unsound ->
                  List.iter
                    (fun (cls, file) ->
                      Fmt.epr
                        "klint: UNSOUND — runtime lock class %s is created in %s, which the \
                         TCB metric classifies as frame-free, and is absent from the static \
                         lock graph@."
                        cls file)
                    unsound;
                  1
            in
            match
              Klint.Kracer.missing_runtime_edges ~static:kracer.Klint.Kracer.edges runtime
            with
            | [] ->
                if tcb_lock_rc = 0 then
                  Fmt.pr
                    "klint: lockdep reconciliation — %d runtime edges, all covered \
                     statically and TCB-confined@."
                    (List.length runtime);
                tcb_lock_rc
            | missing ->
                List.iter
                  (fun (a, b) ->
                    Fmt.epr
                      "klint: UNSOUND — runtime lock order %s -> %s is missing from the static graph@."
                      a b)
                  missing;
                1))
  in
  (* Same closure for the ownership pass: every heap event the tests
     observed must correspond to a static R8-R11 finding in that file. *)
  let kown = tree.Klint.Engine.kown in
  Fmt.pr "klint: ownership — %d functions, %d consuming, %d returning owned@."
    kown.Klint.Kown.funcs kown.Klint.Kown.consuming kown.Klint.Kown.returning_owned;
  let ktcb = tree.Klint.Engine.ktcb in
  let kmem_rc =
    match kmem_events with
    | None -> 0
    | Some path -> (
        match Klint.Kown.read_kmem_events path with
        | Error msg ->
            Fmt.epr "klint: %s@." msg;
            2
        | Ok events -> (
            let tcb_rc =
              (* The frame-confinement half of the same contract: raw
                 heap traffic must originate from the frame or a module
                 the TCB metric already prices as unsafe. *)
              match
                Klint.Ktcb.unsound_kmem_events ~files:tree.Klint.Engine.files ~result:ktcb
                  events
              with
              | [] -> 0
              | unsound ->
                  List.iter
                    (fun ((ev : Klint.Kown.kmem_event), file) ->
                      Fmt.epr
                        "klint: UNSOUND — runtime %s event on heap %s (x%d) originates from \
                         %s, which the TCB metric classifies as frame-free@."
                        ev.Klint.Kown.kind ev.Klint.Kown.heap ev.Klint.Kown.count file)
                    unsound;
                  1
            in
            match
              Klint.Kown.unflagged_kmem_events ~files:tree.Klint.Engine.files
                ~findings:tree.Klint.Engine.findings events
            with
            | [] ->
                if tcb_rc = 0 then
                  Fmt.pr
                    "klint: kmem reconciliation — %d runtime events, all flagged statically \
                     and TCB-confined@."
                    (List.length events);
                tcb_rc
            | missing ->
                List.iter
                  (fun ((ev : Klint.Kown.kmem_event), file, rule) ->
                    Fmt.epr
                      "klint: UNSOUND — runtime %s event on heap %s (x%d) has no static %s finding in %s@."
                      ev.Klint.Kown.kind ev.Klint.Kown.heap ev.Klint.Kown.count
                      (Klint.Finding.rule_id rule) file)
                  missing;
                1))
  in
  let reconcile_rc = max reconcile_rc kmem_rc in
  let reconcile_rc = max reconcile_rc head_rc in
  (* Same closure for the durability pass: every barrier-discipline
     violation the Wcache audit observed at runtime must correspond to a
     static R16 finding in the file that built the offending cache. *)
  let kdur = tree.Klint.Engine.kdur in
  Fmt.pr
    "klint: durability — %d functions, %d durable, %d ordering contracts, %d writers, \
     %d barriers@."
    kdur.Klint.Kdur.funcs kdur.Klint.Kdur.durable_funcs kdur.Klint.Kdur.ordering_funcs
    kdur.Klint.Kdur.writing_funcs kdur.Klint.Kdur.flushing_funcs;
  if verbose then
    List.iter
      (fun f -> Fmt.pr "%a  [dur]@." Klint.Finding.pp f)
      kdur.Klint.Kdur.findings;
  let wcache_rc =
    match wcache_violations with
    | None -> 0
    | Some path -> (
        match Klint.Kdur.read_wcache_violations path with
        | Error msg ->
            Fmt.epr "klint: %s@." msg;
            2
        | Ok events -> (
            match
              Klint.Kdur.unflagged_wcache_violations ~files:tree.Klint.Engine.files
                ~findings:kdur.Klint.Kdur.findings events
            with
            | [] ->
                Fmt.pr
                  "klint: wcache reconciliation — %d runtime violations, all covered \
                   statically@."
                  (List.length events);
                0
            | missing ->
                List.iter
                  (fun (cache, file, n) ->
                    Fmt.epr
                      "klint: UNSOUND — runtime barrier violation on cache %s (x%d) has no \
                       static R16 finding in %s@."
                      cache n file)
                  missing;
                1))
  in
  let reconcile_rc = max reconcile_rc wcache_rc in
  (* The durability count ratchet, dur.baseline: R16-R18 per (rule, file),
     downward-only, same Counts engine as the TCB ratchet. *)
  if update_dur_baseline then begin
    let entries = Klint.Baseline.Counts.of_findings kdur.Klint.Kdur.findings in
    Klint.Kdur.save_baseline dur_baseline_path entries;
    Fmt.pr "klint: wrote %d dur baseline entries to %s@." (List.length entries)
      dur_baseline_path
  end;
  let dur_ratchet_rc =
    match Klint.Kdur.load_baseline dur_baseline_path with
    | Error msg ->
        Fmt.epr "klint: bad dur baseline %s: %s@." dur_baseline_path msg;
        2
    | Ok baseline -> (
        let current = Klint.Baseline.Counts.of_findings kdur.Klint.Kdur.findings in
        let regressions, progress =
          Klint.Baseline.Counts.compare_counts ~baseline current
        in
        if progress <> [] then
          Fmt.pr
            "klint: dur ratchet progress — %d (rule, file) counts below baseline; \
             regenerate with --update-dur-baseline@."
            (List.length progress);
        match regressions with
        | [] -> 0
        | _ when allow_dur_growth ->
            List.iter
              (fun (d : Klint.Baseline.Counts.delta) ->
                Fmt.pr "klint: dur growth (allowed) — %s %s: %d > baseline %d@."
                  (Klint.Finding.rule_id d.Klint.Baseline.Counts.d_rule)
                  d.Klint.Baseline.Counts.d_file d.Klint.Baseline.Counts.d_have
                  d.Klint.Baseline.Counts.d_allowed)
              regressions;
            0
        | _ ->
            List.iter
              (fun (d : Klint.Baseline.Counts.delta) ->
                Fmt.epr
                  "klint: DUR REGRESSION — %s %s: %d finding(s) > baseline %d (barrier \
                   discipline only tightens; ALLOW_DUR_GROWTH=1 to override)@."
                  (Klint.Finding.rule_id d.Klint.Baseline.Counts.d_rule)
                  d.Klint.Baseline.Counts.d_file d.Klint.Baseline.Counts.d_have
                  d.Klint.Baseline.Counts.d_allowed)
              regressions;
            1)
  in
  let reconcile_rc = max reconcile_rc dur_ratchet_rc in
  (* The TCB metric and its downward-only count ratchet. *)
  Fmt.pr "klint: tcb — %d/%d unsafe lines (%.1f%%), frame %d files/%d lines, surface %d vals@."
    ktcb.Klint.Ktcb.unsafe_loc ktcb.Klint.Ktcb.total_loc (Klint.Ktcb.ratio ktcb)
    ktcb.Klint.Ktcb.frame_files ktcb.Klint.Ktcb.frame_loc ktcb.Klint.Ktcb.surface_vals;
  if update_tcb_baseline then begin
    let entries = Klint.Ktcb.counts_of_findings ktcb.Klint.Ktcb.findings in
    Klint.Ktcb.save tcb_baseline_path entries;
    Fmt.pr "klint: wrote %d tcb baseline entries to %s@." (List.length entries)
      tcb_baseline_path
  end;
  let tcb_ratchet_rc =
    match Klint.Ktcb.load tcb_baseline_path with
    | Error msg ->
        Fmt.epr "klint: bad tcb baseline %s: %s@." tcb_baseline_path msg;
        2
    | Ok baseline -> (
        let current = Klint.Ktcb.counts_of_findings ktcb.Klint.Ktcb.findings in
        let regressions, progress = Klint.Ktcb.compare_counts ~baseline current in
        if progress <> [] then
          Fmt.pr
            "klint: tcb ratchet progress — %d (rule, file) counts below baseline; \
             regenerate with --update-tcb-baseline@."
            (List.length progress);
        match regressions with
        | [] -> 0
        | _ when allow_tcb_growth ->
            List.iter
              (fun (d : Klint.Ktcb.delta) ->
                Fmt.pr "klint: tcb growth (allowed) — %s %s: %d > baseline %d@."
                  (Klint.Finding.rule_id d.Klint.Ktcb.d_rule) d.Klint.Ktcb.d_file
                  d.Klint.Ktcb.d_have d.Klint.Ktcb.d_allowed)
              regressions;
            0
        | _ ->
            List.iter
              (fun (d : Klint.Ktcb.delta) ->
                Fmt.epr
                  "klint: TCB REGRESSION — %s %s: %d finding(s) > baseline %d (the unsafe \
                   TCB only shrinks; ALLOW_TCB_GROWTH=1 to override)@."
                  (Klint.Finding.rule_id d.Klint.Ktcb.d_rule) d.Klint.Ktcb.d_file
                  d.Klint.Ktcb.d_have d.Klint.Ktcb.d_allowed)
              regressions;
            1)
  in
  let reconcile_rc = max reconcile_rc tcb_ratchet_rc in
  (* The refinement-coverage ratchet: harnesses registered statically,
     and — when [safeos refine] handed us its coverage file — the
     enumerator's aggregate numbers, which may only grow. *)
  let kv = tree.Klint.Engine.kverify in
  Fmt.pr "klint: kverify — %d harness registrations covering %d subsystems%s@."
    (List.length kv.Klint.Kverify.registrations)
    (List.length
       (List.sort_uniq String.compare
          (List.map
             (fun (reg : Klint.Kverify.registration) -> reg.Klint.Kverify.reg_subsystem)
             kv.Klint.Kverify.registrations)))
    (if r15_findings = [] then ""
     else Fmt.str "; %d Verified claim(s) UNCHECKED" (List.length r15_findings));
  let refine_rc =
    match refine_rows with
    | None -> 0
    | Some rows -> (
        let diverged =
          List.filter (fun r -> r.Klint.Kverify.cov_divergences > 0) rows
        in
        List.iter
          (fun (row : Klint.Kverify.coverage_row) ->
            Fmt.epr "klint: REFINEMENT DIVERGENCE — harness %s reported %d divergence(s) \
                     (deepest at step %d)@."
              row.Klint.Kverify.cov_harness row.Klint.Kverify.cov_divergences
              row.Klint.Kverify.cov_deepest)
          diverged;
        let current = Klint.Kverify.floor_of_rows rows in
        if update_refine_baseline then begin
          Klint.Kverify.save_floor refine_baseline_path current;
          Fmt.pr "klint: wrote refine baseline to %s@." refine_baseline_path
        end;
        match Klint.Kverify.load_floor refine_baseline_path with
        | Error msg ->
            Fmt.epr "klint: bad refine baseline %s: %s@." refine_baseline_path msg;
            2
        | Ok floor -> (
            let regressions, progress = Klint.Kverify.compare_floor ~baseline:floor current in
            if progress <> [] then
              Fmt.pr
                "klint: refine ratchet progress — %s above baseline; regenerate with \
                 --update-refine-baseline@."
                (String.concat ", "
                   (List.map (fun (m, have, want) -> Fmt.str "%s %d>%d" m have want) progress));
            let regress_rc =
              match regressions with
              | [] -> 0
              | _ when allow_refine_regress ->
                  List.iter
                    (fun (m, have, want) ->
                      Fmt.pr "klint: refine coverage regression (allowed) — %s: %d < baseline %d@."
                        m have want)
                    regressions;
                  0
              | _ ->
                  List.iter
                    (fun (m, have, want) ->
                      Fmt.epr
                        "klint: REFINE REGRESSION — %s: %d < baseline %d (refinement coverage \
                         only grows; ALLOW_REFINE_REGRESS=1 to override)@."
                        m have want)
                    regressions;
                  1
            in
            max regress_rc (if diverged = [] then 0 else 1)))
  in
  let reconcile_rc = max reconcile_rc refine_rc in
  if r.Klint.Engine.violations = [] then reconcile_rc
  else begin
    List.iter
      (fun (a : Klint.Engine.attributed) ->
        Fmt.epr "klint: VIOLATION %a — subsystem %s claims %s@." Klint.Finding.pp
          a.Klint.Engine.finding a.Klint.Engine.sub
          (Safeos_core.Level.to_string a.Klint.Engine.level))
      r.Klint.Engine.violations;
    1
  end

open Cmdliner

let root =
  Arg.(value & opt (some string) None & info [ "root" ] ~docv:"DIR"
         ~doc:"Tree root (default: nearest dune-project above the cwd)")

let baseline =
  Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE"
         ~doc:"Baseline file (default: ROOT/klint.baseline)")

let report =
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE"
         ~doc:"JSON report path (default: ROOT/_build/klint-report.json)")

let update_baseline =
  Arg.(value & flag & info [ "update-baseline" ]
         ~doc:"Rewrite the baseline from the current findings, then lint against it")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every finding")

let lockdep_edges =
  Arg.(value & opt (some string) None & info [ "lockdep-edges" ] ~docv:"FILE"
         ~doc:"Reconcile the static lock-order graph against runtime edges exported by \
               Ksim.Lockdep (KSIM_LOCKDEP_EXPORT); exit 1 if any runtime edge is missing \
               from the static graph")

let lock_graph_dot =
  Arg.(value & opt (some string) None & info [ "lock-graph-dot" ] ~docv:"FILE"
         ~doc:"Write the static lock-order graph as Graphviz dot")

let kmem_events =
  Arg.(value & opt (some string) None & info [ "kmem-events" ] ~docv:"FILE"
         ~doc:"Reconcile kown's static R8-R11 findings against runtime heap events \
               exported by Ksim.Kmem (KSIM_KMEM_EXPORT); exit 1 if any runtime event \
               hit a linted file kown did not flag")

let tcb_baseline =
  Arg.(value & opt (some string) None & info [ "tcb-baseline" ] ~docv:"FILE"
         ~doc:"TCB count-ratchet file (default: ROOT/tcb.baseline)")

let update_tcb_baseline =
  Arg.(value & flag & info [ "update-tcb-baseline" ]
         ~doc:"Rewrite the tcb baseline from the current R12-R14 counts, then ratchet \
               against it")

let allow_tcb_growth =
  Arg.(value & flag & info [ "allow-tcb-growth" ]
         ~doc:"Report TCB count regressions without failing (the ALLOW_TCB_GROWTH=1 CI \
               escape)")

let refine_coverage =
  Arg.(value & opt (some string) None & info [ "refine-coverage" ] ~docv:"FILE"
         ~doc:"Ratchet the krefine coverage file written by 'safeos refine --coverage-out' \
               against the refine baseline, and embed it in the JSON report; exit 1 on \
               reported divergences or coverage regressions")

let refine_baseline =
  Arg.(value & opt (some string) None & info [ "refine-baseline" ] ~docv:"FILE"
         ~doc:"Refinement-coverage ratchet file (default: ROOT/refine.baseline)")

let update_refine_baseline =
  Arg.(value & flag & info [ "update-refine-baseline" ]
         ~doc:"Rewrite the refine baseline from the supplied coverage, then ratchet \
               against it")

let allow_refine_regress =
  Arg.(value & flag & info [ "allow-refine-regress" ]
         ~doc:"Report refinement-coverage regressions without failing (the \
               ALLOW_REFINE_REGRESS=1 CI escape)")

let baseline_head =
  Arg.(value & opt (some string) None & info [ "baseline-head" ] ~docv:"FILE"
         ~doc:"Compare the line-anchored baseline against this HEAD copy per (rule, file) \
               count and fail on growth (the check ci.sh used to re-derive in awk)")

let allow_baseline_growth =
  Arg.(value & flag & info [ "allow-baseline-growth" ]
         ~doc:"Report baseline growth vs --baseline-head without failing (the \
               ALLOW_BASELINE_GROWTH=1 CI escape)")

let dur_baseline =
  Arg.(value & opt (some string) None & info [ "dur-baseline" ] ~docv:"FILE"
         ~doc:"Durability count-ratchet file (default: ROOT/dur.baseline)")

let update_dur_baseline =
  Arg.(value & flag & info [ "update-dur-baseline" ]
         ~doc:"Rewrite the dur baseline from the current R16-R18 counts, then ratchet \
               against it")

let allow_dur_growth =
  Arg.(value & flag & info [ "allow-dur-growth" ]
         ~doc:"Report durability count regressions without failing (the ALLOW_DUR_GROWTH=1 \
               CI escape)")

let wcache_violations =
  Arg.(value & opt (some string) None & info [ "wcache-violations" ] ~docv:"FILE"
         ~doc:"Reconcile kdur's static R16 findings against barrier-discipline violations \
               exported by Kblock.Wcache (KSIM_WCACHE_EXPORT); exit 1 if any runtime \
               violation hit a linted file kdur did not flag")

let cmd =
  Cmd.v
    (Cmd.info "klint" ~version:"1.0.0"
       ~doc:"Static safety-ladder linter: enforce Registry level claims against the source tree")
    Term.(const run $ root $ baseline $ report $ update_baseline $ verbose $ lockdep_edges
          $ lock_graph_dot $ kmem_events $ tcb_baseline $ update_tcb_baseline
          $ allow_tcb_growth $ refine_coverage $ refine_baseline $ update_refine_baseline
          $ allow_refine_regress $ baseline_head $ allow_baseline_growth $ dur_baseline
          $ update_dur_baseline $ allow_dur_growth $ wcache_violations)

let () = exit (Cmd.eval' cmd)
