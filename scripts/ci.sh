#!/bin/sh
# Tier-1 gate: build, static lint with its ratchet, full test suite with
# runtime lock-order capture, a seeded fault-injection torture smoke
# run, and finally the static/runtime lock-graph reconciliation. The
# torture suite drives the journalfs stack through Flakydev faults under
# fixed seeds and checks that every crash/recovery lands in a
# spec-allowed state — it must stay green before any merge.
set -eu
cd "$(dirname "$0")/.."

echo "== ci: dune build =="
dune build

echo "== ci: klint (static safety-ladder lint) =="
dune build @lint

echo "== ci: klint baseline ratchet =="
# The baseline may only shrink: a commit adding entries (new suppressed
# findings) fails here.  Deliberate growth (e.g. a new checked exhibit)
# must be acknowledged with ALLOW_BASELINE_GROWTH=1.
# The comparison itself (per (rule, file) count, so pure renumbering
# from unrelated edits in the same file is never growth) lives in
# klint's shared Baseline.Counts engine — the same code the tcb and dur
# ratchets run — via --baseline-head; this stage only digs the HEAD
# copy out of git.
mkdir -p _build
if git rev-parse --verify -q HEAD >/dev/null 2>&1 \
   && git cat-file -e HEAD:klint.baseline 2>/dev/null; then
  git show HEAD:klint.baseline > _build/baseline-head.txt
  if [ "${ALLOW_BASELINE_GROWTH:-0}" = "1" ]; then
    dune exec bin/klint/main.exe -- --root . --baseline-head _build/baseline-head.txt \
      --allow-baseline-growth
  else
    dune exec bin/klint/main.exe -- --root . --baseline-head _build/baseline-head.txt
  fi
else
  echo "ci: no HEAD baseline to ratchet against (first commit?); skipping"
fi

echo "== ci: tcb ratchet (unsafe-TCB counts may only shrink) =="
# The framekernel ratchet: R12-R14 counts per (rule, file) are compared
# against tcb.baseline inside klint itself — count-based, so renumbering
# from unrelated edits is never growth.  A genuine new exhibit must be
# acknowledged with ALLOW_TCB_GROWTH=1 (and then --update-tcb-baseline).
if [ "${ALLOW_TCB_GROWTH:-0}" = "1" ]; then
  dune exec bin/klint/main.exe -- --root . --tcb-baseline tcb.baseline --allow-tcb-growth
else
  dune exec bin/klint/main.exe -- --root . --tcb-baseline tcb.baseline
fi

echo "== ci: dur ratchet (R16-R18 durability counts may only shrink) =="
# The barrier-discipline ratchet: kdur's R16-R18 counts per (rule, file)
# are compared against dur.baseline inside klint (the same Counts engine
# as the tcb ratchet).  The grandfathered entries are the declared
# exhibits — the journal's ?barriers:false ablation paths and
# lib/kfs/rawlog_unsafe.ml; a genuine new exhibit must be acknowledged
# with ALLOW_DUR_GROWTH=1 (and then --update-dur-baseline).
if [ "${ALLOW_DUR_GROWTH:-0}" = "1" ]; then
  dune exec bin/klint/main.exe -- --root . --dur-baseline dur.baseline --allow-dur-growth
else
  dune exec bin/klint/main.exe -- --root . --dur-baseline dur.baseline
fi

# Every test binary from here on appends the lock-order edges it
# observed to this file; kracer checks them against its static graph at
# the end.  --force so cached (skipped) tests cannot leave holes.
LOCKDEP_EDGES="$(pwd)/_build/lockdep-edges.txt"
rm -f "$LOCKDEP_EDGES"
export KSIM_LOCKDEP_EXPORT="$LOCKDEP_EDGES"

# Likewise for heap events (use-after-free, double-free, leak sites):
# kown checks at the end that everything the tests observed at runtime
# was already flagged statically.
KMEM_EVENTS="$(pwd)/_build/kmem-events.txt"
rm -f "$KMEM_EVENTS"
export KSIM_KMEM_EXPORT="$KMEM_EVENTS"

# And for barrier-discipline violations: every Wcache audit hit the
# tests provoke is dumped here, and kdur checks at the end that each one
# (in a linted file) was already flagged as a static R16.
WCACHE_VIOLATIONS="$(pwd)/_build/wcache-violations.txt"
rm -f "$WCACHE_VIOLATIONS"
export KSIM_WCACHE_EXPORT="$WCACHE_VIOLATIONS"

echo "== ci: dune runtest =="
dune runtest --force

echo "== ci: torture smoke (seeded fault schedules) =="
dune exec test/test_torture.exe

echo "== ci: torture extra seeds (supervision escalation gate) =="
# Three extra seeds beyond the checked-in ones.  The supervised torture
# scenarios fail the whole run if any seed drives the mount supervisor
# into an unexpected Failed escalation instead of a clean microreboot.
KSIM_TORTURE_SEEDS="101,202,303" dune exec test/test_torture.exe

echo "== ci: wcache cache-loss torture (volatile disk contract) =="
# Seeded cache-loss torture: journalfs over the volatile write-back
# cache with writeback reordering forced on, every crash residue
# materialized and journal-replay remounted, acked versions gated
# against the barrier floor — plus the registered harnesses re-verified
# over the same hostile disk.  KSIM_WCACHE_SEEDS widens the seed set
# (same hook style as KSIM_TORTURE_SEEDS).
KSIM_WCACHE_SEEDS="${KSIM_WCACHE_SEEDS:-5,17}" dune exec test/test_wcache.exe -- test torture

echo "== ci: kload smoke (multi-tenant storm, recovery-SLO gate) =="
# ~500 tenants of mixed traffic with a mid-run panic storm.  The SLO
# gate is the exit code: p99 oops->healthy within bound, bounded error
# streaks, zero lost acknowledged writes, no uncontained tenant crash.
dune exec bin/safeos.exe -- load --tenants 500 --storm mixed --seed 42 > /dev/null \
  || { echo "ci: FAIL — kload smoke violated the recovery SLO" >&2; exit 1; }

echo "== ci: kload extra seeds =="
# KSIM_KLOAD_SEEDS / KSIM_KLOAD_TENANTS widen the seeded population the
# alcotest kload suite runs (same hook style as KSIM_TORTURE_SEEDS).
KSIM_KLOAD_SEEDS="${KSIM_KLOAD_SEEDS:-7,101}" dune exec test/test_kload.exe -- test harness 3

echo "== ci: refine smoke (krefine harnesses vs Fs_spec, coverage ratchet) =="
# Every registered kharness machine (journalfs, cowfs, the supervised
# microreboot path) replays a kload-recorded trace in lockstep with
# Fs_spec, enumerating crash images as it goes.  Any divergence fails
# the run; the coverage the pass produced is then ratcheted against
# refine.baseline inside klint (R15 keeps "Verified" registry claims
# honest even when this stage is skipped).  KSIM_REFINE_SEEDS widens the
# seed set, same hook style as KSIM_TORTURE_SEEDS; a deliberate coverage
# reduction must be acknowledged with ALLOW_REFINE_REGRESS=1 (and then
# --update-refine-baseline).
REFINE_COVERAGE="$(pwd)/_build/refine-coverage.txt"
rm -f "$REFINE_COVERAGE"
refine_seed="${KSIM_REFINE_SEEDS:-11}"
refine_seed="${refine_seed%%,*}"
dune exec bin/safeos.exe -- refine --all --seed "$refine_seed" --ops 2000 \
  --crash-every 4 --images 4 --coverage-out "$REFINE_COVERAGE" > /dev/null \
  || { echo "ci: FAIL — a krefine harness diverged from Fs_spec" >&2; exit 1; }
KSIM_REFINE_SEEDS="${KSIM_REFINE_SEEDS:-11}" dune exec test/test_krefine.exe -- test harnesses
if [ "${ALLOW_REFINE_REGRESS:-0}" = "1" ]; then
  dune exec bin/klint/main.exe -- --root . --refine-coverage "$REFINE_COVERAGE" \
    --refine-baseline refine.baseline --allow-refine-regress
else
  dune exec bin/klint/main.exe -- --root . --refine-coverage "$REFINE_COVERAGE" \
    --refine-baseline refine.baseline
fi

echo "== ci: lock-graph reconciliation (static vs runtime) =="
if [ -s "$LOCKDEP_EDGES" ]; then
  dune exec bin/klint/main.exe -- --root . --lockdep-edges "$LOCKDEP_EDGES"
else
  echo "ci: FAIL — no runtime lock edges were exported; the capture is broken" >&2
  exit 1
fi

echo "== ci: kmem reconciliation (static vs runtime heap events) =="
if [ -s "$KMEM_EVENTS" ]; then
  dune exec bin/klint/main.exe -- --root . --kmem-events "$KMEM_EVENTS"
else
  echo "ci: FAIL — no runtime kmem events were exported; the capture is broken" >&2
  exit 1
fi

echo "== ci: wcache reconciliation (static vs runtime barrier violations) =="
# The durability closure: the rawlog_unsafe reconciliation fixture in
# test_wcache guarantees at least one named-cache violation lands here,
# so an empty file means the export hook (or the fixture) is broken —
# vacuous soundness is a fail, exactly like the lockdep/kmem stages.
if [ -s "$WCACHE_VIOLATIONS" ]; then
  dune exec bin/klint/main.exe -- --root . --wcache-violations "$WCACHE_VIOLATIONS"
else
  echo "ci: FAIL — no runtime wcache violations were exported; the capture is broken" >&2
  exit 1
fi

echo "== ci: bench result validation =="
# Every persisted BENCH_*.json must parse and carry the claim schema
# (group, claims, numbers) — a malformed snapshot fails fast instead of
# silently dropping out of the paper's evidence trail.
dune exec bench/main.exe -- --validate

echo "== ci: ok =="
