#!/bin/sh
# Tier-1 gate: build, full test suite, then a seeded fault-injection
# torture smoke run. The torture suite drives the journalfs stack
# through Flakydev faults under fixed seeds and checks that every
# crash/recovery lands in a spec-allowed state — it must stay green
# before any merge.
set -eu
cd "$(dirname "$0")/.."

echo "== ci: dune build =="
dune build

echo "== ci: klint (static safety-ladder lint) =="
dune build @lint

echo "== ci: dune runtest =="
dune runtest

echo "== ci: torture smoke (seeded fault schedules) =="
dune exec test/test_torture.exe

echo "== ci: ok =="
