(* The kload rig: the multi-tenant traffic harness end to end.

   The heavyweight checks ride on one smoke-scale run (CI re-runs it at
   acceptance scale via KSIM_KLOAD_TENANTS=10000): storm injections
   actually land, every panic is contained, the recovery SLO holds, no
   acknowledged durable write is lost, and the kebpf probe plane agrees
   with the harness's own counters.  Replay determinism is checked by
   fingerprint equality across two same-seed runs. *)

let check = Alcotest.check
let fail = Alcotest.fail

let env_int name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)

(* Extra seeds from the environment widen the net in CI without slowing
   the default edit loop (same hook shape as KSIM_TORTURE_SEEDS). *)
let extra_seeds =
  match Sys.getenv_opt "KSIM_KLOAD_SEEDS" with
  | None | Some "" -> []
  | Some s -> String.split_on_char ',' s |> List.filter_map int_of_string_opt

(* Spec DSL ---------------------------------------------------------------- *)

let test_spec_roundtrip () =
  let t = Kload.Spec.default in
  (match Kload.Spec.of_string (Kload.Spec.to_string t) with
  | Ok t' -> check Alcotest.bool "default round-trips" true (t = t')
  | Error e -> fail e);
  match Kload.Spec.of_string "tenants=100; ops=4; classes=solo:1:meta=1,churn=2" with
  | Error e -> fail e
  | Ok t ->
      check Alcotest.int "tenants parsed" 100 t.Kload.Spec.tenants;
      check Alcotest.int "ops parsed" 4 t.Kload.Spec.ops_per_tenant;
      check Alcotest.int "defaults kept" Kload.Spec.default.Kload.Spec.keyspace
        t.Kload.Spec.keyspace;
      (match t.Kload.Spec.classes with
      | [ c ] ->
          check Alcotest.string "class name" "solo" c.Kload.Spec.cname;
          check Alcotest.int "mix size" 2 (List.length c.Kload.Spec.mix)
      | _ -> fail "one class expected");
      check Alcotest.bool "custom round-trips" true
        (Kload.Spec.of_string (Kload.Spec.to_string t) = Ok t)

let test_spec_rejects () =
  let bad s = match Kload.Spec.of_string s with Ok _ -> fail s | Error _ -> () in
  bad "tenants=0";
  bad "ops=nope";
  bad "classes=solo:1:frobnicate=3";
  bad "classes=solo:0:meta=1";
  bad "classes=";
  bad "unknown=1"

(* Distributions ----------------------------------------------------------- *)

let test_dist_shapes () =
  let rng = Ksim.Rng.of_int 9 in
  for _ = 1 to 2000 do
    let x = Kload.Dist.pareto_int rng ~alpha:1.3 ~xmin:200 ~xmax:200_000 in
    if x < 200 || x > 200_000 then fail "pareto out of bounds"
  done;
  let z = Kload.Dist.Zipf.create ~n:16 () in
  let counts = Array.make 16 0 in
  for _ = 1 to 4000 do
    let k = Kload.Dist.Zipf.draw z rng in
    counts.(k) <- counts.(k) + 1
  done;
  check Alcotest.bool "rank 0 dominates rank 8" true (counts.(0) > 2 * counts.(8));
  check Alcotest.bool "every rank reachable" true (Array.for_all (fun c -> c >= 0) counts);
  (* Same seed, same draw sequence. *)
  let draw_seq seed =
    let rng = Ksim.Rng.of_int seed in
    List.init 64 (fun _ -> Kload.Dist.Zipf.draw z rng)
  in
  check Alcotest.bool "zipf replayable" true (draw_seq 4 = draw_seq 4)

(* Admission control ------------------------------------------------------- *)

let overload_config =
  {
    Kload.Admission.window_ns = 10_000;
    capacity = 4;
    per_tenant_cap = 2;
    hi_degrade = 4;
    hi_reject = 12;
    low_water = 1;
  }

let test_admission_degrades_and_recovers () =
  let adm = Kload.Admission.create ~config:overload_config ~tenants:8 () in
  (* Ramp: one mildly overloaded window lands the backlog in the
     reads-only band (capacity 4, hi_degrade 4, hi_reject 12), then
     saturated windows escalate to rejecting. *)
  let now = ref 0 in
  let offer_window n =
    for i = 1 to n do
      let (_ : Kload.Admission.decision) =
        Kload.Admission.offer adm ~now:!now ~tenant:(i mod 8) ~read_only:false
      in
      ()
    done;
    now := !now + 10_000
  in
  offer_window 10;
  offer_window 10;
  for _ = 1 to 6 do
    offer_window 20
  done;
  check Alcotest.bool "sheds under overload" true (Kload.Admission.shed adm > 0);
  check Alcotest.bool "backlog accumulated" true (Kload.Admission.backlog adm > 0);
  let modes = List.map snd (Kload.Admission.transitions adm) in
  check Alcotest.bool "degraded to reads-only" true
    (List.mem Kload.Admission.Reads_only modes);
  check Alcotest.bool "escalated to rejecting" true
    (List.mem Kload.Admission.Rejecting modes);
  (* In Rejecting mode even reads shed. *)
  check Alcotest.bool "rejecting sheds reads" true
    (Kload.Admission.offer adm ~now:!now ~tenant:0 ~read_only:true = Kload.Admission.Shed);
  (* Idle windows drain the backlog at full capacity; hysteresis brings
     the mode back through the low-water mark. *)
  now := !now + 100 * 10_000;
  let (_ : Kload.Admission.decision) =
    Kload.Admission.offer adm ~now:!now ~tenant:0 ~read_only:false
  in
  check Alcotest.bool "drained" true (Kload.Admission.backlog adm <= 1);
  check Alcotest.bool "accepting again" true
    (Kload.Admission.mode adm = Kload.Admission.Accepting)

let test_admission_bounded_queue () =
  let adm = Kload.Admission.create ~config:overload_config ~tenants:4 () in
  (* One tenant hammering: per-window cap 2 bounds its queue even though
     kernel-wide capacity (4) is not exhausted. *)
  let admitted = ref 0 in
  for _ = 1 to 10 do
    if Kload.Admission.offer adm ~now:0 ~tenant:1 ~read_only:false = Kload.Admission.Admit
    then incr admitted
  done;
  check Alcotest.int "per-tenant cap" 2 !admitted;
  check Alcotest.int "tenant shed counter" 8 (Kload.Admission.shed_of_tenant adm 1);
  (* Another tenant still gets the remaining kernel-wide slots. *)
  check Alcotest.bool "other tenant admitted" true
    (Kload.Admission.offer adm ~now:0 ~tenant:2 ~read_only:false = Kload.Admission.Admit)

(* Storm presets ----------------------------------------------------------- *)

let test_storm_presets_scale () =
  List.iter
    (fun preset ->
      let bursts = Kload.Harness.bursts_for preset ~total_ticks:1200 in
      List.iter
        (fun b ->
          if b.Ksim.Storm.start < 0 || b.Ksim.Storm.stop > 1200 then
            fail "burst outside the tick space";
          if b.Ksim.Storm.stop <= b.Ksim.Storm.start then fail "empty burst window")
        bursts)
    Kload.Harness.all_storms;
  (* The sock preset overlaps two bursts on one site by construction. *)
  match Kload.Harness.bursts_for Kload.Harness.Sock_storm ~total_ticks:1200 with
  | [ a; b ] ->
      check Alcotest.string "same site" a.Ksim.Storm.site b.Ksim.Storm.site;
      check Alcotest.bool "windows overlap" true
        (a.Ksim.Storm.stop > b.Ksim.Storm.start && b.Ksim.Storm.stop > a.Ksim.Storm.start)
  | _ -> fail "sock preset shape"

(* The full harness -------------------------------------------------------- *)

let run_gated ~tenants ~storm ~seed =
  let spec = { Kload.Spec.default with Kload.Spec.tenants } in
  let r = Kload.Harness.run ~spec ~storm ~seed () in
  let rep = r.Kload.Harness.report in
  check Alcotest.int (Printf.sprintf "seed %d: no uncontained tenant crash" seed) 0
    r.Kload.Harness.crashed_tenants;
  check Alcotest.int (Printf.sprintf "seed %d: zero lost acked writes" seed) 0
    rep.Kload.Report.lost_acked_writes;
  r

let test_smoke_storm_slo () =
  let tenants = env_int "KSIM_KLOAD_TENANTS" 500 in
  let r = run_gated ~tenants ~storm:Kload.Harness.Mixed ~seed:42 in
  let rep = r.Kload.Harness.report in
  check Alcotest.bool "ops executed" true (rep.Kload.Report.executed > 0);
  check Alcotest.bool "storm injected faults" true (rep.Kload.Report.injected_faults > 0);
  check Alcotest.bool "oopses struck" true (rep.Kload.Report.oopses > 0);
  check Alcotest.bool "microreboots happened" true (rep.Kload.Report.restarts > 0);
  check Alcotest.bool "recovery latencies measured" true
    (rep.Kload.Report.recovery.Ksim.Hist.count > 0);
  check Alcotest.bool "durable writes acked under storm" true
    (rep.Kload.Report.acked_writes > 0);
  (* The SLO gate itself. *)
  let verdict = Kload.Slo.evaluate rep in
  if not verdict.Kload.Slo.passed then
    fail (String.concat "; " verdict.Kload.Slo.violations);
  (* An impossible bound must be flagged (the violation path). *)
  let strict =
    { Kload.Slo.default_bounds with Kload.Slo.max_recovery_p99_ns = 0 }
  in
  check Alcotest.bool "violation detected under impossible bound" false
    (Kload.Slo.evaluate ~bounds:strict rep).Kload.Slo.passed;
  (* kebpf probe plane agrees with the harness's own per-tenant counters. *)
  check Alcotest.int "tenant probe buckets" tenants
    (Array.length r.Kload.Harness.tenant_op_counts);
  Array.iteri
    (fun i c ->
      if r.Kload.Harness.tenant_op_counts.(i) <> c.Kload.Report.t_executed then
        fail (Printf.sprintf "tenant %d: probe %d vs counter %d" i
                r.Kload.Harness.tenant_op_counts.(i) c.Kload.Report.t_executed))
    rep.Kload.Report.tenant_counters;
  check Alcotest.int "class/kind matrix covers every executed op"
    rep.Kload.Report.executed
    (Array.fold_left ( + ) 0 r.Kload.Harness.class_kind_counts);
  (* The report serializes. *)
  let json = Kload.Report.to_json_string rep in
  check Alcotest.bool "json has fingerprint" true
    (String.length json > 0
    && String.length rep.Kload.Report.fingerprint = 32)

let test_replay_determinism () =
  let spec = { Kload.Spec.default with Kload.Spec.tenants = 160 } in
  let run seed = Kload.Harness.run ~spec ~storm:Kload.Harness.Panic_wave ~seed () in
  let a = run 7 and b = run 7 in
  check Alcotest.string "identical fingerprints (per-tenant counters byte-for-byte)"
    a.Kload.Harness.report.Kload.Report.fingerprint
    b.Kload.Harness.report.Kload.Report.fingerprint;
  check Alcotest.bool "identical probe counters" true
    (a.Kload.Harness.tenant_op_counts = b.Kload.Harness.tenant_op_counts);
  check Alcotest.int "identical simulated duration"
    a.Kload.Harness.report.Kload.Report.sim_ns b.Kload.Harness.report.Kload.Report.sim_ns;
  check Alcotest.int "identical fault schedules"
    a.Kload.Harness.report.Kload.Report.injected_faults
    b.Kload.Harness.report.Kload.Report.injected_faults;
  let c = run 8 in
  check Alcotest.bool "different seed diverges" true
    (a.Kload.Harness.report.Kload.Report.fingerprint
    <> c.Kload.Harness.report.Kload.Report.fingerprint)

let test_overload_backpressure_run () =
  (* A run under a deliberately starved admission config: load is shed
     with EAGAIN, the mode degrades, and the run still finishes with
     durability intact. *)
  let spec = { Kload.Spec.default with Kload.Spec.tenants = 120 } in
  let r =
    Kload.Harness.run ~spec ~storm:Kload.Harness.No_storm ~admission:overload_config
      ~seed:5 ()
  in
  let rep = r.Kload.Harness.report in
  check Alcotest.int "no crashes" 0 r.Kload.Harness.crashed_tenants;
  check Alcotest.bool "load shed" true (rep.Kload.Report.shed > 0);
  check Alcotest.bool "mode transitions logged" true
    (rep.Kload.Report.admission_transitions <> []);
  check Alcotest.int "no lost acks under overload" 0 rep.Kload.Report.lost_acked_writes;
  check Alcotest.int "shed + executed = planned" rep.Kload.Report.planned
    (rep.Kload.Report.shed + rep.Kload.Report.executed)

let test_extra_seeds () =
  List.iter
    (fun seed ->
      let (_ : Kload.Harness.result) =
        run_gated ~tenants:160 ~storm:Kload.Harness.Mixed ~seed
      in
      ())
    extra_seeds

let () =
  Alcotest.run "kload"
    [
      ( "spec",
        [
          Alcotest.test_case "dsl round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "dsl rejects nonsense" `Quick test_spec_rejects;
        ] );
      ("dist", [ Alcotest.test_case "heavy-tail shapes" `Quick test_dist_shapes ]);
      ( "admission",
        [
          Alcotest.test_case "degrades and recovers" `Quick
            test_admission_degrades_and_recovers;
          Alcotest.test_case "bounded per-tenant queue" `Quick test_admission_bounded_queue;
        ] );
      ("storm", [ Alcotest.test_case "presets scale" `Quick test_storm_presets_scale ]);
      ( "harness",
        [
          Alcotest.test_case "storm smoke + SLO gate" `Quick test_smoke_storm_slo;
          Alcotest.test_case "replay determinism" `Quick test_replay_determinism;
          Alcotest.test_case "overload backpressure" `Quick test_overload_backpressure_run;
          Alcotest.test_case "extra seeds (KSIM_KLOAD_SEEDS)" `Quick test_extra_seeds;
        ] );
    ]
