(* krefine at scale: the registered kharness machines (journalfs as an
   IOSystem, cowfs, the supervised-microreboot path) checked against the
   abstract map over real kload-recorded traffic, determinism of the
   verdict in the seed, and the divergence reporters — a deliberately
   buggy machine must be convicted with a minimal counterexample, and a
   seeded replay-skip fault in the microreboot remount must be caught by
   the lockstep check. *)

open Kspec

let check = Alcotest.check
let p = Fs_spec.path_of_string

(* One recorded trace per (target, seed), shared across tests: recording
   runs a full kload population, so cache it. *)
let trace_cache : (int * int, Fs_spec.op list) Hashtbl.t = Hashtbl.create 4

let trace ~target_ops ~seed =
  match Hashtbl.find_opt trace_cache (target_ops, seed) with
  | Some t -> t
  | None ->
      let t = Kharness.recorded_trace ~target_ops ~seed () in
      Hashtbl.add trace_cache (target_ops, seed) t;
      t

(* The CI seed hook: KSIM_REFINE_SEEDS="3,17" widens the sweep without a
   code change.  Default stays cheap. *)
let refine_seeds () =
  match Sys.getenv_opt "KSIM_REFINE_SEEDS" with
  | None | Some "" -> [ 11 ]
  | Some s ->
      String.split_on_char ',' s
      |> List.filter_map (fun x -> int_of_string_opt (String.trim x))

let quick_config =
  { Krefine.default_config with Krefine.images_per_op = 4; crash_every = 4 }

let test_trace_recording () =
  let t = trace ~target_ops:800 ~seed:11 in
  check Alcotest.bool "at least target ops" true (List.length t >= 800);
  (* deterministic in the seed, and round-trips through the line form *)
  let t' = trace ~target_ops:800 ~seed:11 in
  check Alcotest.bool "deterministic" true (t = t');
  let reparsed =
    List.map (fun op -> Result.get_ok (Kload.Trace.of_line (Kload.Trace.to_line op))) t
  in
  check Alcotest.bool "line form round-trips" true (t = reparsed);
  check Alcotest.bool "has fsyncs" true (List.exists (fun op -> op = Fs_spec.Fsync) t)

let test_journalfs_refines () =
  List.iter
    (fun seed ->
      let t = trace ~target_ops:800 ~seed in
      let cov =
        Kharness.run ~config:{ quick_config with Krefine.seed } Kharness.journalfs t
      in
      if not (Krefine.is_clean cov) then
        Alcotest.failf "journalfs diverged (seed %d): %a" seed Krefine.pp_coverage cov;
      check Alcotest.int "every op checked" (List.length t) cov.Krefine.ops;
      check Alcotest.bool "crash points enumerated" true (cov.Krefine.crash_points > 0);
      check Alcotest.bool "crash images checked" true (cov.Krefine.crash_images > 0))
    (refine_seeds ())

let test_cowfs_refines () =
  let t = trace ~target_ops:800 ~seed:11 in
  let cov = Kharness.run ~config:quick_config Kharness.cowfs t in
  if not (Krefine.is_clean cov) then
    Alcotest.failf "cowfs diverged: %a" Krefine.pp_coverage cov;
  check Alcotest.int "every op checked" (List.length t) cov.Krefine.ops

let test_microreboot_refines () =
  let t = trace ~target_ops:800 ~seed:11 in
  (* lockstep across ~ops/64 injected panics; crash images exercise the
     reboot-into-crashed-device path on a sparser cadence *)
  let config = { quick_config with Krefine.images_per_op = 2; crash_every = 16 } in
  let cov = Kharness.run ~config Kharness.microreboot t in
  if not (Krefine.is_clean cov) then
    Alcotest.failf "microreboot diverged: %a" Krefine.pp_coverage cov;
  check Alcotest.bool "panics actually injected" true
    (List.length t >= 2 * Kharness.panic_cadence);
  check Alcotest.bool "crash images checked" true (cov.Krefine.crash_images > 0)

let test_verdict_deterministic () =
  let t = trace ~target_ops:800 ~seed:11 in
  let fp1 = Krefine.coverage_fingerprint (Kharness.run ~config:quick_config Kharness.journalfs t) in
  let fp2 = Krefine.coverage_fingerprint (Kharness.run ~config:quick_config Kharness.journalfs t) in
  check Alcotest.string "byte-identical verdict across replays" fp1 fp2;
  let other = { quick_config with Krefine.seed = 99; crash_every = 2 } in
  let fp3 = Krefine.coverage_fingerprint (Kharness.run ~config:other Kharness.journalfs t) in
  check Alcotest.bool "different config, different fingerprint" true (fp1 <> fp3)

let test_at_scale () =
  (* The acceptance-scale sweep: every registered harness over a >=10k-op
     recorded trace with crash-point enumeration at every op.  Several
     minutes of wall clock, so it only runs when asked for —
     KSIM_REFINE_FULL=1 (the `safeos refine` defaults run the same
     configuration from the CLI). *)
  if Sys.getenv_opt "KSIM_REFINE_FULL" <> Some "1" then ()
  else begin
    let t = trace ~target_ops:10_000 ~seed:11 in
    check Alcotest.bool ">=10k ops recorded" true (List.length t >= 10_000);
    let config = { Krefine.default_config with Krefine.images_per_op = 4; crash_every = 1 } in
    List.iter
      (fun (e : Kharness.entry) ->
        let cov = Kharness.run ~config e t in
        if not (Krefine.is_clean cov) then
          Alcotest.failf "%s diverged at scale: %a" e.Kharness.hname Krefine.pp_coverage cov;
        check Alcotest.int (e.Kharness.hname ^ ": every op checked") (List.length t)
          cov.Krefine.ops;
        check Alcotest.int (e.Kharness.hname ^ ": a crash point at every op")
          (List.length t) cov.Krefine.crash_points)
      (Kharness.all ())
  end

(* Divergence reporting -------------------------------------------------- *)

module Lost_rename = struct
  type vars = Kfs.Memfs_typed.fs

  let name = "memfs+lost-rename"
  let init () = Kfs.Memfs_typed.mkfs ()

  (* the deliberate bug: rename drops the destination dirent *)
  let step v op =
    match op with
    | Fs_spec.Rename (src, _) -> (v, Kfs.Memfs_typed.apply v (Fs_spec.Unlink src))
    | _ -> (v, Kfs.Memfs_typed.apply v op)

  let interp = Kfs.Memfs_typed.interpret
  let inv v = Fs_spec.wf (Kfs.Memfs_typed.interpret v)
  let crash_images _ ~limit:_ = []
end

let test_lost_rename_minimal_counterexample () =
  (* bury the bug in unrelated traffic; the shrinker must dig it out *)
  let noise =
    List.concat_map
      (fun i ->
        [
          Fs_spec.Mkdir (p (Printf.sprintf "/d%d" i));
          Fs_spec.Create (p (Printf.sprintf "/d%d/f" i));
          Fs_spec.Write { file = p (Printf.sprintf "/d%d/f" i); off = 0; data = "x" };
        ])
      [ 0; 1; 2; 3; 4 ]
  in
  let t = noise @ [ Fs_spec.Create (p "/x"); Fs_spec.Rename (p "/x", p "/y") ] @ noise in
  let cov = Krefine.run (module Lost_rename) t in
  match cov.Krefine.divergences with
  | [] -> Alcotest.fail "lost rename escaped the checker"
  | d :: _ ->
      (match d.Krefine.mismatch with
      | Krefine.State_mismatch _ -> ()
      | m -> Alcotest.failf "expected a state mismatch, got %a" Krefine.pp_mismatch m);
      check Alcotest.int "minimal counterexample: create + rename" 2
        (List.length d.Krefine.counterexample);
      (* and the counterexample replays to the same kind of divergence *)
      let replay = Krefine.run (module Lost_rename) d.Krefine.counterexample in
      check Alcotest.bool "counterexample reproduces" false (Krefine.is_clean replay)

let test_replay_skip_fault_caught () =
  (* committed-but-unfsynced ops + a microreboot whose remount skips
     journal replay: the lockstep check must see the state regress.  The
     same trace on the honest machine is clean — replay is exactly what
     makes the microreboot invisible. *)
  let t =
    [
      Fs_spec.Create (p "/a");
      Fs_spec.Write { file = p "/a"; off = 0; data = "committed" };
      Fs_spec.Create (p "/b");
      Fs_spec.Write { file = p "/b"; off = 0; data = "unfsynced" };
      Fs_spec.Stat (p "/a");
      Fs_spec.Readdir (p "/");
    ]
  in
  let config = { Krefine.default_config with Krefine.crash_every = 0 } in
  let (Kharness.Packed (module Sabotaged)) = Kharness.microreboot_sabotaged ~panic_every:4 () in
  let cov = Krefine.run ~config (module Sabotaged) t in
  if Krefine.is_clean cov then Alcotest.fail "replay-skip fault escaped the lockstep check";
  check Alcotest.bool "divergence at or after the microreboot" true
    (cov.Krefine.deepest_divergence >= 3);
  let honest = Kharness.run ~config Kharness.microreboot t in
  if not (Krefine.is_clean honest) then
    Alcotest.failf "honest microreboot diverged: %a" Krefine.pp_coverage honest

let test_missing_barrier_convicted () =
  (* The seeded missing-barrier mutant: journal commit records flush with
     their data blocks and the checkpoint superblock with its home
     writes.  Under the write-back cache the checkpoint's homes and the
     advanced superblock share one barrier epoch, so a cache-loss residue
     can keep the superblock (replay disabled) while dropping home blocks
     — a torn state no honest barrier discipline can reach.  The crash
     enumerator must convict it, with a shrunk counterexample; the honest
     stack stays clean on the same trace. *)
  let t =
    List.concat_map
      (fun i ->
        [
          Fs_spec.Create (p (Printf.sprintf "/f%d" i));
          Fs_spec.Write
            { file = p (Printf.sprintf "/f%d" i); off = 0; data = Printf.sprintf "payload-%d" i };
        ])
      [ 0; 1; 2; 3; 4; 5 ]
    @ [ Fs_spec.Fsync; Fs_spec.Stat (p "/f0"); Fs_spec.Readdir (p "/") ]
  in
  let config = { Krefine.default_config with Krefine.images_per_op = 32 } in
  let (Kharness.Packed (module Mutant)) = Kharness.journalfs_missing_barrier () in
  let cov = Krefine.run ~config (module Mutant) t in
  match cov.Krefine.divergences with
  | [] -> Alcotest.fail "missing-barrier mutant escaped the crash enumerator"
  | d :: _ ->
      (match d.Krefine.mismatch with
      | Krefine.Crash_divergence _ -> ()
      | m -> Alcotest.failf "expected a crash divergence, got %a" Krefine.pp_mismatch m);
      check Alcotest.bool "counterexample shrunk" true
        (List.length d.Krefine.counterexample < List.length t);
      check Alcotest.bool "counterexample small" true
        (List.length d.Krefine.counterexample <= 6);
      (* the shrunk trace reproduces on a fresh mutant *)
      let (Kharness.Packed (module Mutant2)) = Kharness.journalfs_missing_barrier () in
      let replay = Krefine.run ~config (module Mutant2) d.Krefine.counterexample in
      check Alcotest.bool "counterexample reproduces" false (Krefine.is_clean replay);
      (* honest barriers over the identical trace and config: clean *)
      let honest = Kharness.run ~config Kharness.journalfs t in
      if not (Krefine.is_clean honest) then
        Alcotest.failf "honest journalfs diverged on the mutant's trace: %a"
          Krefine.pp_coverage honest

let test_registry () =
  let names = List.map (fun e -> e.Kharness.hname) (Kharness.all ()) in
  List.iter
    (fun n -> check Alcotest.bool (n ^ " registered") true (List.mem n names))
    [ "journalfs"; "cowfs"; "journalfs.microreboot" ];
  check Alcotest.bool "find journalfs" true (Kharness.find "journalfs" <> None);
  check Alcotest.bool "find unknown" true (Kharness.find "nope" = None);
  let subs = Kharness.subsystems_covered () in
  List.iter
    (fun s -> check Alcotest.bool (s ^ " covered") true (List.mem s subs))
    [ "journalfs"; "cowfs" ]

let () =
  Alcotest.run "krefine"
    [
      ( "harnesses",
        [
          Alcotest.test_case "trace recording" `Quick test_trace_recording;
          Alcotest.test_case "journalfs refines Fs_spec" `Quick test_journalfs_refines;
          Alcotest.test_case "cowfs refines Fs_spec" `Quick test_cowfs_refines;
          Alcotest.test_case "microreboot refines Fs_spec" `Quick test_microreboot_refines;
          Alcotest.test_case "verdict deterministic" `Quick test_verdict_deterministic;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "at scale (KSIM_REFINE_FULL=1)" `Slow test_at_scale;
        ] );
      ( "divergence",
        [
          Alcotest.test_case "lost rename: minimal counterexample" `Quick
            test_lost_rename_minimal_counterexample;
          Alcotest.test_case "replay-skip fault caught" `Quick test_replay_skip_fault_caught;
          Alcotest.test_case "missing-barrier mutant convicted" `Quick
            test_missing_barrier_convicted;
        ] );
    ]
