(* Tests for the block layer: the crash-semantics device, the buffer_head
   state machine, and the write-ahead journal. *)

let check = Alcotest.check
let fail = Alcotest.fail

let block dev n = Bytes.make (Kblock.Blockdev.block_size dev) n
let write_ok dev i data =
  match Kblock.Blockdev.write dev i data with
  | Ok () -> ()
  | Error e -> fail ("write: " ^ Ksim.Errno.to_string e)

let read_ok dev i =
  match Kblock.Blockdev.read dev i with
  | Ok data -> data
  | Error e -> fail ("read: " ^ Ksim.Errno.to_string e)

(* Blockdev ------------------------------------------------------------------- *)

let test_dev_read_write () =
  let dev = Kblock.Blockdev.create ~nblocks:8 ~block_size:16 in
  check Alcotest.string "zeroed" (String.make 16 '\000') (Bytes.to_string (read_ok dev 0));
  write_ok dev 3 (block dev 'x');
  check Alcotest.string "cached read sees write" (String.make 16 'x')
    (Bytes.to_string (read_ok dev 3));
  check Alcotest.int "pending" 1 (Kblock.Blockdev.pending_writes dev)

let test_dev_errors () =
  let dev = Kblock.Blockdev.create ~nblocks:4 ~block_size:8 in
  check Alcotest.bool "read out of range" true (Kblock.Blockdev.read dev 4 = Error Ksim.Errno.EIO);
  check Alcotest.bool "read negative" true (Kblock.Blockdev.read dev (-1) = Error Ksim.Errno.EIO);
  check Alcotest.bool "write wrong size" true
    (Kblock.Blockdev.write dev 0 (Bytes.make 3 'a') = Error Ksim.Errno.EINVAL);
  check Alcotest.bool "write out of range" true
    (Kblock.Blockdev.write dev 4 (Bytes.make 8 'a') = Error Ksim.Errno.EIO);
  check Alcotest.bool "write negative" true
    (Kblock.Blockdev.write dev (-1) (Bytes.make 8 'a') = Error Ksim.Errno.EIO);
  (* Failed ops leave no trace: nothing cached, nothing counted pending. *)
  check Alcotest.int "no pending after errors" 0 (Kblock.Blockdev.pending_writes dev)

let test_dev_crash_loses_cache () =
  let dev = Kblock.Blockdev.create ~nblocks:4 ~block_size:8 in
  write_ok dev 1 (block dev 'a');
  Kblock.Blockdev.crash dev;
  check Alcotest.string "lost" (String.make 8 '\000') (Bytes.to_string (read_ok dev 1))

let test_dev_flush_is_durable () =
  let dev = Kblock.Blockdev.create ~nblocks:4 ~block_size:8 in
  write_ok dev 1 (block dev 'a');
  Kblock.Blockdev.flush dev;
  Kblock.Blockdev.crash dev;
  check Alcotest.string "survives" (String.make 8 'a') (Bytes.to_string (read_ok dev 1));
  check Alcotest.int "no pending" 0 (Kblock.Blockdev.pending_writes dev)

let test_dev_last_write_wins () =
  let dev = Kblock.Blockdev.create ~nblocks:4 ~block_size:8 in
  write_ok dev 0 (block dev 'a');
  write_ok dev 0 (block dev 'b');
  check Alcotest.string "cache last" (String.make 8 'b') (Bytes.to_string (read_ok dev 0));
  Kblock.Blockdev.flush dev;
  Kblock.Blockdev.crash dev;
  check Alcotest.string "media last" (String.make 8 'b') (Bytes.to_string (read_ok dev 0))

let test_dev_crash_states_exhaustive () =
  let dev = Kblock.Blockdev.create ~nblocks:4 ~block_size:8 in
  write_ok dev 0 (block dev 'a');
  write_ok dev 1 (block dev 'b');
  let states = Kblock.Blockdev.crash_media_states dev ~limit:64 in
  (* 2 pending writes to distinct blocks: 4 distinct media images. *)
  check Alcotest.int "2^2 images" 4 (List.length states);
  (* The bare-media image must be included. *)
  check Alcotest.bool "empty image present" true
    (List.exists
       (fun media -> Array.for_all (fun b -> Bytes.to_string b = String.make 8 '\000') media)
       states)

let test_dev_crash_states_dedup () =
  let dev = Kblock.Blockdev.create ~nblocks:4 ~block_size:8 in
  write_ok dev 0 (block dev 'a');
  write_ok dev 0 (block dev 'a') (* identical write: subsets collapse *);
  let states = Kblock.Blockdev.crash_media_states dev ~limit:64 in
  check Alcotest.int "deduplicated" 2 (List.length states)

let media_fingerprint media = String.concat "" (List.map Bytes.to_string (Array.to_list media))

let test_dev_crash_states_limit_boundary () =
  let mk () =
    let dev = Kblock.Blockdev.create ~nblocks:4 ~block_size:8 in
    write_ok dev 0 (block dev 'a');
    write_ok dev 1 (block dev 'b');
    write_ok dev 2 (block dev 'c');
    dev
  in
  (* 3 pending writes: 8 subsets.  At limit = 8 enumeration is exhaustive. *)
  let exhaustive = Kblock.Blockdev.crash_media_states (mk ()) ~limit:8 in
  check Alcotest.int "exactly at limit: exhaustive" 8 (List.length exhaustive);
  (* One below the boundary: the sampled fallback, still within limit,
     still deduplicated, still containing the two must-have images. *)
  let sampled = Kblock.Blockdev.crash_media_states (mk ()) ~limit:7 in
  check Alcotest.bool "within limit" true (List.length sampled <= 7);
  let prints = List.map media_fingerprint sampled in
  check Alcotest.int "no duplicates" (List.length prints)
    (List.length (List.sort_uniq compare prints));
  let blank = String.make 32 '\000' in
  check Alcotest.bool "bare media present" true (List.mem blank prints);
  let full = media_fingerprint [| block (mk ()) 'a'; block (mk ()) 'b'; block (mk ()) 'c'; Bytes.make 8 '\000' |] in
  check Alcotest.bool "all-survived present" true (List.mem full prints);
  (* Every sampled image is one of the true subsets. *)
  let all = List.map media_fingerprint exhaustive in
  List.iter (fun p -> check Alcotest.bool "a real subset" true (List.mem p all)) prints

let test_dev_snapshot_of_media () =
  let dev = Kblock.Blockdev.create ~nblocks:2 ~block_size:4 in
  write_ok dev 0 (Bytes.of_string "abcd");
  Kblock.Blockdev.flush dev;
  let dev2 = Kblock.Blockdev.of_media ~block_size:4 (Kblock.Blockdev.snapshot_media dev) in
  check Alcotest.string "copied" "abcd" (Bytes.to_string (read_ok dev2 0));
  (* Deep copy: mutating the clone does not touch the original. *)
  write_ok dev2 0 (Bytes.of_string "WXYZ");
  Kblock.Blockdev.flush dev2;
  check Alcotest.string "original intact" "abcd" (Bytes.to_string (read_ok dev 0))

let prop_flush_then_crash_preserves_all =
  QCheck2.Test.make ~name:"flush makes all writes durable" ~count:100
    QCheck2.Gen.(list_size (int_range 1 20) (pair (int_range 0 7) (char_range 'a' 'z')))
    (fun writes ->
      let dev = Kblock.Blockdev.create ~nblocks:8 ~block_size:4 in
      List.iter (fun (i, c) -> write_ok dev i (Bytes.make 4 c)) writes;
      let expected = Array.make 8 '\000' in
      List.iter (fun (i, c) -> expected.(i) <- c) writes;
      Kblock.Blockdev.flush dev;
      Kblock.Blockdev.crash dev;
      List.for_all
        (fun i -> Bytes.to_string (read_ok dev i) = String.make 4 expected.(i))
        [ 0; 1; 2; 3; 4; 5; 6; 7 ])

let prop_blockdev_satisfies_axioms =
  (* The §4.4 boundary: the concrete device must satisfy the byte-level
     axioms a verified client assumes of it. *)
  QCheck2.Test.make ~name:"blockdev satisfies the block axioms" ~count:100
    QCheck2.Gen.(list_size (int_range 1 30)
                   (triple (int_range 0 2) (int_range 0 7) (char_range 'a' 'z')))
    (fun script ->
      let dev = Kblock.Blockdev.create ~nblocks:8 ~block_size:4 in
      let shim = Kspec.Axiom.shim ~strict:false (Kblock.Blockdev.to_ops dev) in
      let ops = Kspec.Axiom.ops shim in
      List.iter
        (fun (kind, blkno, c) ->
          match kind with
          | 0 -> ops.Kspec.Axiom.write blkno (Bytes.make 4 c)
          | 1 -> ignore (ops.Kspec.Axiom.read blkno)
          | _ -> ops.Kspec.Axiom.flush ())
        script;
      Kspec.Axiom.violations shim = [])

(* Buffer_head ------------------------------------------------------------------ *)

let flags_of = Kblock.Buffer_head.Flags.of_list

let test_bh_valid_combinations () =
  let open Kblock.Buffer_head in
  check Alcotest.bool "empty valid" true (is_valid Flags.empty);
  check Alcotest.bool "clean mapped uptodate" true (is_valid (flags_of [ Mapped; Uptodate ]));
  check Alcotest.bool "dirty triple" true (is_valid (flags_of [ Mapped; Uptodate; Dirty ]));
  check Alcotest.bool "async write under lock" true
    (is_valid (flags_of [ Mapped; Uptodate; Lock; Async_write ]))

let test_bh_invalid_combinations () =
  let open Kblock.Buffer_head in
  check Alcotest.bool "dirty w/o uptodate" false (is_valid (flags_of [ Mapped; Dirty ]));
  check Alcotest.bool "dirty w/o mapped" false (is_valid (flags_of [ Uptodate; Dirty ]));
  check Alcotest.bool "async write w/o lock" false
    (is_valid (flags_of [ Mapped; Uptodate; Async_write ]));
  check Alcotest.bool "both async directions" false
    (is_valid (flags_of [ Mapped; Uptodate; Lock; Async_read; Async_write ]));
  check Alcotest.bool "delay+mapped" false (is_valid (flags_of [ Delay; Mapped ]));
  check Alcotest.bool "prio w/o meta" false (is_valid (flags_of [ Mapped; Prio ]));
  (match validate (flags_of [ Mapped; Dirty ]) with
  | [ rule ] -> check Alcotest.string "names the rule" "dirty-implies-uptodate" rule
  | l -> fail (Printf.sprintf "expected 1 broken rule, got %d" (List.length l)))

let test_bh_sixteen_flags () =
  check Alcotest.int "sixteen" 16 (List.length Kblock.Buffer_head.all_flags)

let test_bh_flag_set_ops () =
  let open Kblock.Buffer_head in
  let f = Flags.add Dirty (Flags.add Mapped Flags.empty) in
  check Alcotest.bool "mem" true (Flags.mem Dirty f);
  let f = Flags.remove Dirty f in
  check Alcotest.bool "removed" false (Flags.mem Dirty f);
  check Alcotest.(list bool) "to_list/of_list roundtrip" [ true ]
    [ Flags.to_list (flags_of [ Mapped; Meta ]) = [ Mapped; Meta ] ]

let test_bh_cache_lifecycle () =
  let open Kblock.Buffer_head in
  let dev = Kblock.Blockdev.create ~nblocks:8 ~block_size:16 in
  write_ok dev 2 (Bytes.make 16 'z');
  Kblock.Blockdev.flush dev;
  let cache = create dev in
  let bh = bread cache 2 in
  check Alcotest.bool "uptodate after read" true (Flags.mem Uptodate bh.flags);
  check Alcotest.string "content" (String.make 16 'z') (Bytes.to_string bh.data);
  set_data cache bh (Bytes.make 16 'w');
  check Alcotest.bool "dirty after set" true (Flags.mem Dirty bh.flags);
  check Alcotest.int "one dirty" 1 (dirty_count cache);
  sync cache;
  check Alcotest.int "clean after sync" 0 (dirty_count cache);
  Kblock.Blockdev.crash dev;
  check Alcotest.string "synced to media" (String.make 16 'w') (Bytes.to_string (read_ok dev 2))

let test_bh_mark_dirty_on_stale_buffer_caught () =
  let open Kblock.Buffer_head in
  let dev = Kblock.Blockdev.create ~nblocks:4 ~block_size:8 in
  let cache = create dev in
  let bh = getblk cache 0 (* mapped, NOT uptodate *) in
  match mark_dirty cache bh with
  | _ -> fail "expected Invalid_state"
  | exception Invalid_state { broken; _ } ->
      check Alcotest.bool "dirty-implies-uptodate broken" true
        (List.mem "dirty-implies-uptodate" broken)

let test_bh_checks_can_be_disabled () =
  let open Kblock.Buffer_head in
  let dev = Kblock.Blockdev.create ~nblocks:4 ~block_size:8 in
  let cache = create ~check_states:false dev in
  let bh = getblk cache 0 in
  mark_dirty cache bh (* the invalid transition sails through *);
  check Alcotest.int "no checks ran" 0 (state_checks cache)

let test_bh_refcount_and_drop () =
  let open Kblock.Buffer_head in
  let dev = Kblock.Blockdev.create ~nblocks:4 ~block_size:8 in
  let cache = create dev in
  let bh = bread cache 1 in
  let bh' = getblk cache 1 in
  check Alcotest.int "same buffer" bh.blkno bh'.blkno;
  check Alcotest.int "refcount 2" 2 bh.refcount;
  check Alcotest.int "nothing droppable" 0 (drop cache);
  brelse bh;
  brelse bh';
  check Alcotest.int "dropped clean buffer" 1 (drop cache);
  check Alcotest.int "cache empty" 0 (cached_count cache)

let test_bh_submit_clean_is_noop () =
  let open Kblock.Buffer_head in
  let dev = Kblock.Blockdev.create ~nblocks:4 ~block_size:8 in
  let cache = create dev in
  let bh = bread cache 0 in
  (match submit_write cache bh with Ok () -> () | Error _ -> fail "clean submit");
  check Alcotest.int "no device write" 0 (Kblock.Blockdev.pending_writes dev)

let prop_random_flagsets_validate_consistently =
  QCheck2.Test.make ~name:"validate agrees with is_valid" ~count:300
    QCheck2.Gen.(list_size (int_range 0 8) (int_range 0 15))
    (fun bits ->
      let flags =
        List.fold_left
          (fun acc i -> Kblock.Buffer_head.Flags.add (List.nth Kblock.Buffer_head.all_flags i) acc)
          Kblock.Buffer_head.Flags.empty bits
      in
      Kblock.Buffer_head.is_valid flags = (Kblock.Buffer_head.validate flags = []))

(* Journal ------------------------------------------------------------------------ *)

let mk_journal () =
  let dev = Kblock.Blockdev.create ~nblocks:64 ~block_size:64 in
  (dev, Kblock.Journal.format (Kblock.Blockdev.io dev) ~jblocks:16)

let checkpoint_ok j =
  match Kblock.Journal.checkpoint j with
  | Ok () -> ()
  | Error e -> fail ("checkpoint: " ^ Ksim.Errno.to_string e)

let test_journal_commit_checkpoint_read () =
  let dev, j = mk_journal () in
  let home = Kblock.Journal.data_start j in
  let tx = Kblock.Journal.tx_begin j in
  (match Kblock.Journal.tx_write j tx ~blkno:home (Bytes.make 64 'a') with
  | Ok () -> ()
  | Error e -> fail (Ksim.Errno.to_string e));
  (match Kblock.Journal.commit j tx with Ok () -> () | Error e -> fail (Ksim.Errno.to_string e));
  check Alcotest.int "one pending tx" 1 (Kblock.Journal.pending_txs j);
  checkpoint_ok j;
  check Alcotest.int "checkpointed" 0 (Kblock.Journal.pending_txs j);
  check Alcotest.string "home updated" (String.make 64 'a') (Bytes.to_string (read_ok dev home))

let test_journal_tx_rejects_journal_area () =
  let _, j = mk_journal () in
  let tx = Kblock.Journal.tx_begin j in
  check Alcotest.bool "journal-area write rejected" true
    (Kblock.Journal.tx_write j tx ~blkno:3 (Bytes.make 64 'x') = Error Ksim.Errno.EINVAL);
  check Alcotest.bool "wrong size rejected" true
    (Kblock.Journal.tx_write j tx ~blkno:20 (Bytes.make 10 'x') = Error Ksim.Errno.EINVAL)

let test_journal_recovery_replays_committed () =
  let dev, j = mk_journal () in
  let home = Kblock.Journal.data_start j in
  let tx = Kblock.Journal.tx_begin j in
  ignore (Kblock.Journal.tx_write j tx ~blkno:home (Bytes.make 64 'b'));
  ignore (Kblock.Journal.tx_write j tx ~blkno:(home + 1) (Bytes.make 64 'c'));
  (match Kblock.Journal.commit j tx with Ok () -> () | Error e -> fail (Ksim.Errno.to_string e));
  (* Crash before checkpoint: home writes never issued, journal durable. *)
  Kblock.Blockdev.crash dev;
  let j2 = Kblock.Journal.recover (Kblock.Blockdev.io dev) ~jblocks:16 in
  check Alcotest.int "one tx replayed" 1 (Kblock.Journal.stats j2).Kblock.Journal.replayed_txs;
  check Alcotest.string "home 0" (String.make 64 'b') (Bytes.to_string (read_ok dev home));
  check Alcotest.string "home 1" (String.make 64 'c') (Bytes.to_string (read_ok dev (home + 1)))

let test_journal_recovery_ignores_uncommitted () =
  let dev, j = mk_journal () in
  let home = Kblock.Journal.data_start j in
  (* Simulate a torn commit: write descriptor + data manually, no commit
     record, then crash. *)
  let tx = Kblock.Journal.tx_begin j in
  ignore (Kblock.Journal.tx_write j tx ~blkno:home (Bytes.make 64 'z'));
  (* Don't commit; instead crash with nothing journaled. *)
  Kblock.Blockdev.crash dev;
  let j2 = Kblock.Journal.recover (Kblock.Blockdev.io dev) ~jblocks:16 in
  check Alcotest.int "nothing replayed" 0 (Kblock.Journal.stats j2).Kblock.Journal.replayed_txs;
  check Alcotest.string "home untouched" (String.make 64 '\000')
    (Bytes.to_string (read_ok dev home))

let test_journal_recovery_idempotent () =
  let dev, j = mk_journal () in
  let home = Kblock.Journal.data_start j in
  let tx = Kblock.Journal.tx_begin j in
  ignore (Kblock.Journal.tx_write j tx ~blkno:home (Bytes.make 64 'q'));
  ignore (Kblock.Journal.commit j tx);
  Kblock.Blockdev.crash dev;
  let _ = Kblock.Journal.recover (Kblock.Blockdev.io dev) ~jblocks:16 in
  let j3 = Kblock.Journal.recover (Kblock.Blockdev.io dev) ~jblocks:16 in
  (* Second recovery: the tx is already checkpointed, nothing replays. *)
  check Alcotest.int "idempotent" 0 (Kblock.Journal.stats j3).Kblock.Journal.replayed_txs;
  check Alcotest.string "content stable" (String.make 64 'q')
    (Bytes.to_string (read_ok dev home))

let test_journal_coalesces_same_block () =
  let dev, j = mk_journal () in
  let home = Kblock.Journal.data_start j in
  let tx = Kblock.Journal.tx_begin j in
  ignore (Kblock.Journal.tx_write j tx ~blkno:home (Bytes.make 64 'a'));
  ignore (Kblock.Journal.tx_write j tx ~blkno:home (Bytes.make 64 'b'));
  ignore (Kblock.Journal.commit j tx);
  checkpoint_ok j;
  check Alcotest.string "last write wins" (String.make 64 'b')
    (Bytes.to_string (read_ok dev home))

let test_journal_auto_checkpoint_on_full () =
  let dev, j = mk_journal () in
  let home = Kblock.Journal.data_start j in
  (* Each tx costs 3 journal blocks (D, data, C); the 15-block record area
     fits 5; the 6th must force a checkpoint rather than fail. *)
  for i = 0 to 7 do
    let tx = Kblock.Journal.tx_begin j in
    ignore (Kblock.Journal.tx_write j tx ~blkno:(home + i) (Bytes.make 64 'k'));
    match Kblock.Journal.commit j tx with
    | Ok () -> ()
    | Error e -> fail (Ksim.Errno.to_string e)
  done;
  check Alcotest.bool "auto checkpoint happened" true
    ((Kblock.Journal.stats j).Kblock.Journal.checkpoints >= 1);
  checkpoint_ok j;
  for i = 0 to 7 do
    check Alcotest.string "all landed" (String.make 64 'k')
      (Bytes.to_string (read_ok dev (home + i)))
  done

let test_journal_oversized_tx_rejected () =
  let dev = Kblock.Blockdev.create ~nblocks:256 ~block_size:64 in
  let j = Kblock.Journal.format (Kblock.Blockdev.io dev) ~jblocks:8 in
  let home = Kblock.Journal.data_start j in
  let tx = Kblock.Journal.tx_begin j in
  for i = 0 to 9 do
    ignore (Kblock.Journal.tx_write j tx ~blkno:(home + i) (Bytes.make 64 'x'))
  done;
  match Kblock.Journal.commit j tx with
  | Ok () -> fail "expected failure"
  | Error _ -> ()
  | exception Kblock.Journal.Journal_full -> ()

(* QCheck: random committed transactions survive crash + recovery; the
   final home state equals last-committed-write-wins. *)
let prop_journal_crash_recovery_consistent =
  QCheck2.Test.make ~name:"committed txs survive any crash point" ~count:60
    QCheck2.Gen.(
      list_size (int_range 1 6) (list_size (int_range 1 3) (pair (int_range 0 8) printable)))
    (fun txs ->
      let dev = Kblock.Blockdev.create ~nblocks:128 ~block_size:64 in
      let j = Kblock.Journal.format (Kblock.Blockdev.io dev) ~jblocks:32 in
      let home = Kblock.Journal.data_start j in
      let expected = Hashtbl.create 8 in
      List.iter
        (fun writes ->
          let tx = Kblock.Journal.tx_begin j in
          List.iter
            (fun (i, c) ->
              ignore (Kblock.Journal.tx_write j tx ~blkno:(home + i) (Bytes.make 64 c)))
            writes;
          match Kblock.Journal.commit j tx with
          | Ok () -> List.iter (fun (i, c) -> Hashtbl.replace expected i c) writes
          | Error _ -> ())
        txs;
      Kblock.Blockdev.crash dev;
      let _ = Kblock.Journal.recover (Kblock.Blockdev.io dev) ~jblocks:32 in
      Hashtbl.fold
        (fun i c acc ->
          acc && Bytes.to_string (read_ok dev (home + i)) = String.make 64 c)
        expected true)

(* Flakydev / Resilient -------------------------------------------------------- *)

let mk_flaky ?(seed = 42) () =
  let dev = Kblock.Blockdev.create ~nblocks:16 ~block_size:8 in
  let fp = Ksim.Failpoint.create ~seed () in
  let flaky = Kblock.Flakydev.create ~fp (Kblock.Blockdev.io dev) in
  (dev, fp, flaky)

let test_flaky_read_eio_deterministic () =
  let dev, fp, flaky = mk_flaky () in
  write_ok dev 0 (block dev 'x');
  Ksim.Failpoint.configure fp "flaky.read-eio" ~enabled:true ~interval:2 ~times:2 ();
  let io = Kblock.Flakydev.io flaky in
  let results = List.init 6 (fun _ -> Result.is_ok (io.Kblock.Io.read 0)) in
  (* Hits 2 and 4 inject; the times budget then runs dry. *)
  check Alcotest.(list bool) "schedule" [ true; false; true; false; true; true ] results;
  check Alcotest.int "two read errors" 2 (Kblock.Flakydev.read_errors flaky)

let test_flaky_torn_write () =
  let dev, fp, flaky = mk_flaky () in
  write_ok dev 0 (Bytes.of_string "OLDOLDOL");
  Kblock.Blockdev.flush dev;
  Ksim.Failpoint.configure fp "flaky.torn-write" ~enabled:true ~times:1 ();
  let io = Kblock.Flakydev.io flaky in
  check Alcotest.bool "write fails" true (io.Kblock.Io.write 0 (Bytes.of_string "newnewne") = Error Ksim.Errno.EIO);
  check Alcotest.int "one torn write" 1 (Kblock.Flakydev.torn_writes flaky);
  (* A proper tear: some prefix of the new data over the old content. *)
  let landed = Bytes.to_string (read_ok dev 0) in
  check Alcotest.bool "not the full new data" true (landed <> "newnewne");
  check Alcotest.bool "not the old data either" true (landed <> "OLDOLDOL");
  let tear = ref 0 in
  String.iteri (fun i c -> if c = "newnewne".[i] && !tear = i then incr tear) landed;
  check Alcotest.bool "prefix of new" true (!tear >= 1);
  check Alcotest.string "suffix of old" (String.sub "OLDOLDOL" !tear (8 - !tear))
    (String.sub landed !tear (8 - !tear));
  (* Deterministic: the same seed draws the same tear offset. *)
  let dev2, fp2, flaky2 = mk_flaky () in
  write_ok dev2 0 (Bytes.of_string "OLDOLDOL");
  Kblock.Blockdev.flush dev2;
  Ksim.Failpoint.configure fp2 "flaky.torn-write" ~enabled:true ~times:1 ();
  ignore ((Kblock.Flakydev.io flaky2).Kblock.Io.write 0 (Bytes.of_string "newnewne"));
  check Alcotest.string "replayable tear" landed (Bytes.to_string (read_ok dev2 0))

let test_flaky_availability_window () =
  let dev, _, flaky = mk_flaky () in
  write_ok dev 0 (block dev 'x');
  Kblock.Blockdev.flush dev;
  Kblock.Flakydev.set_availability flaky ~up:2 ~down:2;
  let io = Kblock.Flakydev.io flaky in
  let results = List.init 8 (fun _ -> Result.is_ok (io.Kblock.Io.read 0)) in
  check Alcotest.(list bool) "2 up, 2 down, repeating"
    [ true; true; false; false; true; true; false; false ]
    results;
  check Alcotest.int "down rejections" 4 (Kblock.Flakydev.down_rejections flaky);
  (* Skip past the next up window: flush also fails once down. *)
  ignore (io.Kblock.Io.read 0);
  ignore (io.Kblock.Io.read 0);
  check Alcotest.bool "flush rejected when down" true (Result.is_error (io.Kblock.Io.flush ()));
  check Alcotest.bool "invalid window rejected" true
    (try
       Kblock.Flakydev.set_availability flaky ~up:0 ~down:1;
       false
     with Invalid_argument _ -> true)

let test_fua_compat_propagates_flush_error () =
  (* The [Io.fua] compat shim is write + full flush for layers without
     native FUA.  Regression: a successful write whose follow-up flush
     fails must surface the flush error — acking a still-volatile write
     as durable would be a silent barrier elision.  Flakydev's
     availability window is the rig: the write lands in the up window,
     the flush falls in the down window. *)
  (* clean path first: the shim is write + full barrier *)
  let dev0, _, flaky0 = mk_flaky () in
  let compat0 = { (Kblock.Flakydev.io flaky0) with Kblock.Io.write_fua = None } in
  check Alcotest.bool "fua ok while up" true (Kblock.Io.fua compat0 0 (block dev0 'z') = Ok ());
  check Alcotest.int "shim flushed the device" 1 (Kblock.Blockdev.flushes dev0);
  (* fresh rig so the op tick starts at the window boundary: the write is
     op 0 (up), the flush op 1 (down) *)
  let dev, _, flaky = mk_flaky () in
  let compat = { (Kblock.Flakydev.io flaky) with Kblock.Io.write_fua = None } in
  Kblock.Flakydev.set_availability flaky ~up:1 ~down:2;
  let res = Kblock.Io.fua compat 1 (block dev 'y') in
  check Alcotest.bool "flush error propagates through the shim" true
    (res = Error Ksim.Errno.EIO);
  check Alcotest.int "the write itself had been accepted" 1 (Kblock.Blockdev.writes dev);
  check Alcotest.int "no flush reached the device" 0 (Kblock.Blockdev.flushes dev);
  check Alcotest.int "the down window rejected it" 1 (Kblock.Flakydev.down_rejections flaky);
  (* and a failed write short-circuits: the flush is never attempted *)
  let res = Kblock.Io.fua compat 2 (block dev 'x') in
  check Alcotest.bool "write error propagates too" true (res = Error Ksim.Errno.EIO);
  check Alcotest.int "still no flush" 0 (Kblock.Blockdev.flushes dev);
  check Alcotest.int "no second write either" 1 (Kblock.Blockdev.writes dev)

(* An Io.t that fails the first [failures] calls of each op with [err]. *)
let unreliable_io ?(err = Ksim.Errno.EIO) ~failures base =
  let budget = ref failures in
  let gate f =
    if !budget > 0 then begin
      decr budget;
      Error err
    end
    else f ()
  in
  {
    Kblock.Io.nblocks = base.Kblock.Io.nblocks;
    block_size = base.Kblock.Io.block_size;
    read = (fun blkno -> gate (fun () -> base.Kblock.Io.read blkno));
    write = (fun blkno data -> gate (fun () -> base.Kblock.Io.write blkno data));
    flush = (fun () -> gate base.Kblock.Io.flush);
    write_fua = None;
  }

let test_resilient_recovers_transient () =
  let dev = Kblock.Blockdev.create ~nblocks:8 ~block_size:8 in
  let r = Kblock.Resilient.create ~max_attempts:4 (unreliable_io ~failures:2 (Kblock.Blockdev.io dev)) in
  (match Kblock.Resilient.write r 0 (block dev 'w') with
  | Ok () -> ()
  | Error e -> fail ("expected recovery, got " ^ Ksim.Errno.to_string e));
  check Alcotest.int "one op" 1 (Kblock.Resilient.ops r);
  check Alcotest.int "two retries" 2 (Kblock.Resilient.retries r);
  check Alcotest.int "one recovered op" 1 (Kblock.Resilient.recovered_ops r);
  check Alcotest.int "no permanent failure" 0 (Kblock.Resilient.permanent_failures r);
  (* Deterministic backoff: 100 + 200 simulated ns for attempts 1 and 2. *)
  check Alcotest.int "simulated backoff" 300 (Kblock.Resilient.simulated_ns r);
  check Alcotest.string "write landed" (String.make 8 'w') (Bytes.to_string (read_ok dev 0))

let test_resilient_permanent_verdict () =
  let dev = Kblock.Blockdev.create ~nblocks:8 ~block_size:8 in
  let r = Kblock.Resilient.create ~max_attempts:3 (unreliable_io ~failures:99 (Kblock.Blockdev.io dev)) in
  check Alcotest.bool "EIO propagates" true (Kblock.Resilient.write r 0 (block dev 'w') = Error Ksim.Errno.EIO);
  check Alcotest.int "permanent verdict" 1 (Kblock.Resilient.permanent_failures r);
  check Alcotest.int "budget consumed" 2 (Kblock.Resilient.retries r)

let test_resilient_nontransient_immediate () =
  let dev = Kblock.Blockdev.create ~nblocks:8 ~block_size:8 in
  let r = Kblock.Resilient.create ~max_attempts:4 (Kblock.Blockdev.io dev) in
  (* EINVAL is not transient: no retries, no permanent-failure verdict. *)
  check Alcotest.bool "EINVAL propagates" true
    (Kblock.Resilient.write r 0 (Bytes.make 3 'x') = Error Ksim.Errno.EINVAL);
  check Alcotest.int "no retries" 0 (Kblock.Resilient.retries r);
  check Alcotest.int "no permanent verdict" 0 (Kblock.Resilient.permanent_failures r)

let test_resilient_seeded_jitter () =
  let sleep ~seed =
    let dev = Kblock.Blockdev.create ~nblocks:8 ~block_size:8 in
    let r =
      Kblock.Resilient.create ~max_attempts:4 ~jitter:0.5 ~seed
        (unreliable_io ~failures:2 (Kblock.Blockdev.io dev))
    in
    (match Kblock.Resilient.write r 0 (block dev 'w') with
    | Ok () -> ()
    | Error e -> fail ("expected recovery, got " ^ Ksim.Errno.to_string e));
    Kblock.Resilient.simulated_ns r
  in
  (* Replayable: the same seed draws the same jitter. *)
  check Alcotest.int "same seed, same clock" (sleep ~seed:3) (sleep ~seed:3);
  (* Jitter only ever stretches the backoff: within [backoff, 1.5*backoff]
     for the two sleeps (100 + 200 unjittered). *)
  let ns = sleep ~seed:3 in
  check Alcotest.bool "stretched, bounded" true (ns >= 300 && ns <= 450);
  (* Distinct seeds decorrelate instances (300..450 leaves 151 cells; the
     chance of 5 seeds colliding by accident is negligible). *)
  let sleeps = List.map (fun seed -> sleep ~seed) [ 1; 2; 3; 4; 5 ] in
  check Alcotest.bool "seeds decorrelate" true
    (List.length (List.sort_uniq compare sleeps) > 1);
  check Alcotest.bool "bad jitter rejected" true
    (try
       let dev = Kblock.Blockdev.create ~nblocks:8 ~block_size:8 in
       let _ = Kblock.Resilient.create ~jitter:1.5 (Kblock.Blockdev.io dev) in
       false
     with Invalid_argument _ -> true)

(* Supervised ------------------------------------------------------------------- *)

let test_supervised_microreboot_and_stale_client () =
  let generation = ref 0 in
  let boom = ref false in
  let remake () =
    incr generation;
    let dev = Kblock.Blockdev.create ~nblocks:8 ~block_size:8 in
    let base = Kblock.Blockdev.io dev in
    {
      base with
      Kblock.Io.read =
        (fun blkno ->
          if !boom then begin
            boom := false;
            raise (Ksim.Supervisor.Module_panic "blk.read")
          end
          else base.Kblock.Io.read blkno);
    }
  in
  let s =
    Kblock.Supervised.create ~trace:(Ksim.Ktrace.create ()) ~name:"blk" ~remake ()
  in
  let client = Kblock.Supervised.io s in
  check Alcotest.bool "healthy read" true (Result.is_ok (client.Kblock.Io.read 0));
  boom := true;
  (* Panic contained; the stack microreboots behind the scenes. *)
  check Alcotest.bool "oops contained" true (client.Kblock.Io.read 0 = Error Ksim.Errno.EIO);
  check Alcotest.bool "quiesce EINTR" true (client.Kblock.Io.read 0 = Error Ksim.Errno.EINTR);
  (* The reboot happens on this call, so the old client discovers its own
     staleness. *)
  check Alcotest.bool "old client ESTALE" true
    (client.Kblock.Io.read 0 = Error Ksim.Errno.ESTALE);
  check Alcotest.int "stack rebuilt" 2 !generation;
  check Alcotest.int "epoch bumped" 1 (Kblock.Supervised.epoch s);
  (* A freshly minted client reaches the new generation. *)
  let fresh = Kblock.Supervised.io s in
  check Alcotest.bool "fresh client works" true (Result.is_ok (fresh.Kblock.Io.read 0))

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "kblock"
    [
      ( "blockdev",
        Alcotest.test_case "read/write" `Quick test_dev_read_write
        :: Alcotest.test_case "errors" `Quick test_dev_errors
        :: Alcotest.test_case "crash loses cache" `Quick test_dev_crash_loses_cache
        :: Alcotest.test_case "flush durable" `Quick test_dev_flush_is_durable
        :: Alcotest.test_case "last write wins" `Quick test_dev_last_write_wins
        :: Alcotest.test_case "crash states exhaustive" `Quick test_dev_crash_states_exhaustive
        :: Alcotest.test_case "crash states dedup" `Quick test_dev_crash_states_dedup
        :: Alcotest.test_case "crash states limit boundary" `Quick
             test_dev_crash_states_limit_boundary
        :: Alcotest.test_case "snapshot is deep" `Quick test_dev_snapshot_of_media
        :: qcheck [ prop_flush_then_crash_preserves_all; prop_blockdev_satisfies_axioms ] );
      ( "buffer_head",
        Alcotest.test_case "valid combinations" `Quick test_bh_valid_combinations
        :: Alcotest.test_case "invalid combinations" `Quick test_bh_invalid_combinations
        :: Alcotest.test_case "sixteen flags" `Quick test_bh_sixteen_flags
        :: Alcotest.test_case "flag set ops" `Quick test_bh_flag_set_ops
        :: Alcotest.test_case "cache lifecycle" `Quick test_bh_cache_lifecycle
        :: Alcotest.test_case "invalid transition caught" `Quick
             test_bh_mark_dirty_on_stale_buffer_caught
        :: Alcotest.test_case "checks can be disabled" `Quick test_bh_checks_can_be_disabled
        :: Alcotest.test_case "refcount and drop" `Quick test_bh_refcount_and_drop
        :: Alcotest.test_case "clean submit no-op" `Quick test_bh_submit_clean_is_noop
        :: qcheck [ prop_random_flagsets_validate_consistently ] );
      ( "journal",
        Alcotest.test_case "commit/checkpoint/read" `Quick test_journal_commit_checkpoint_read
        :: Alcotest.test_case "rejects journal-area writes" `Quick
             test_journal_tx_rejects_journal_area
        :: Alcotest.test_case "recovery replays committed" `Quick
             test_journal_recovery_replays_committed
        :: Alcotest.test_case "recovery ignores uncommitted" `Quick
             test_journal_recovery_ignores_uncommitted
        :: Alcotest.test_case "recovery idempotent" `Quick test_journal_recovery_idempotent
        :: Alcotest.test_case "coalesces same block" `Quick test_journal_coalesces_same_block
        :: Alcotest.test_case "auto checkpoint when full" `Quick
             test_journal_auto_checkpoint_on_full
        :: Alcotest.test_case "oversized tx rejected" `Quick test_journal_oversized_tx_rejected
        :: qcheck [ prop_journal_crash_recovery_consistent ] );
      ( "resilience",
        [
          Alcotest.test_case "flaky read eio deterministic" `Quick
            test_flaky_read_eio_deterministic;
          Alcotest.test_case "flaky torn write" `Quick test_flaky_torn_write;
          Alcotest.test_case "flaky availability window" `Quick test_flaky_availability_window;
          Alcotest.test_case "fua compat shim propagates flush errors" `Quick
            test_fua_compat_propagates_flush_error;
          Alcotest.test_case "resilient recovers transient" `Quick
            test_resilient_recovers_transient;
          Alcotest.test_case "resilient permanent verdict" `Quick
            test_resilient_permanent_verdict;
          Alcotest.test_case "resilient nontransient immediate" `Quick
            test_resilient_nontransient_immediate;
          Alcotest.test_case "resilient seeded jitter" `Quick test_resilient_seeded_jitter;
        ] );
      ( "supervised",
        [
          Alcotest.test_case "microreboot and stale client" `Quick
            test_supervised_microreboot_and_stale_client;
        ] );
    ]
