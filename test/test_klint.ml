(* Tests for klint, the static safety-ladder linter: good/bad fixture
   snippets for each rule R1–R5, the domination and branch-join logic the
   stateful passes depend on, the interprocedural passes (kracer's
   lockset race rules, kown's ownership-lifetime rules R8–R11) with
   their runtime reconciliations, reconciliation of findings against
   claimed Registry levels (a Type_safe module with a cast_exn must
   fail), the baseline round-trip, and a self-lint of the shipped tree
   whose report must reconcile with the boot registry. *)

let check = Alcotest.check

module Level = Safeos_core.Level
module F = Klint.Finding
module E = Klint.Engine
module B = Klint.Baseline

(* Fixture plumbing ----------------------------------------------------- *)

let mkdir_p dir =
  let rec go d =
    if String.length d > 1 && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  go dir

(* Write [content] as [rel] under a throwaway root and lint it.  The
   snippets only need to parse — klint is syntactic, so unbound names
   are fine. *)
let lint_snippet ?(rel = "lib/fixture/snippet.ml") content =
  let root = Filename.temp_dir "klint_test" "" in
  let path = Filename.concat root rel in
  mkdir_p (Filename.dirname path);
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc;
  match E.lint_file ~root rel with
  | Ok findings -> F.sort findings
  | Error msg -> Alcotest.fail ("fixture did not parse: " ^ msg)

let rule_ids findings = List.map (fun f -> F.rule_id f.F.rule) findings
let ids = Alcotest.(list string)

(* Every fixture claims one subsystem at a chosen level, so the
   reconciliation tests can move the claim up and down the ladder. *)
let claiming level _path = { Klint.Subsystem.sub = "fixture"; level; registered = false }

let violations ?(baseline = []) level findings =
  (E.reconcile ~claim_of:(claiming level) ~baseline findings).E.violations

(* R1: unchecked casts --------------------------------------------------- *)

let test_r1_unchecked_cast () =
  let bad = lint_snippet "let f d = Ksim.Dyn.cast_exn key d\n" in
  check ids "cast_exn flagged" [ "R1" ] (rule_ids bad);
  check Alcotest.string "enclosing binding" "f" (List.hd bad).F.func;
  let good =
    lint_snippet
      "let f d = match Ksim.Dyn.project key d with Some x -> Some x | None -> None\n"
  in
  check ids "project is the checked path" [] (rule_ids good);
  (* a local function merely named cast_exn is not the Dyn one *)
  check ids "unqualified name not matched" [] (rule_ids (lint_snippet "let g d = cast_exn d\n"))

(* R2: err-ptr checks must dominate dereferences ------------------------- *)

let test_r2_unchecked_errptr () =
  let bad = lint_snippet "let f h = Errptr.deref h\n" in
  check ids "naked deref flagged" [ "R2" ] (rule_ids bad);
  let guarded =
    lint_snippet "let f h = if Errptr.is_err h then None else Some (Errptr.deref h)\n"
  in
  check ids "is_err dominates" [] (rule_ids guarded);
  let matched =
    lint_snippet
      "let f h =\n\
      \  match h with\n\
      \  | Errptr.Err e -> Error e\n\
      \  | Errptr.Ptr _ -> Ok (Errptr.deref h)\n"
  in
  check ids "Err/Ptr match dominates" [] (rule_ids matched);
  let bound =
    lint_snippet
      "let f h = let bad = Errptr.is_err h in if bad then None else Some (Errptr.deref h)\n"
  in
  check ids "stored check result dominates" [] (rule_ids bound);
  (* a check in a discarded branch does not dominate a later use *)
  let non_dominating =
    lint_snippet "let f h = (if Errptr.is_err h then () else ()); Errptr.deref h\n"
  in
  check ids "check must dominate, not merely precede" [ "R2" ] (rule_ids non_dominating)

(* R3: lock balance on every exit path ----------------------------------- *)

let test_r3_lock_balance () =
  let leak = lint_snippet "let f l = Klock.acquire l; compute l\n" in
  check ids "acquire without release" [ "R3" ] (rule_ids leak);
  let balanced = lint_snippet "let f l = Klock.acquire l; compute l; Klock.release l\n" in
  check ids "balanced pair is clean" [] (rule_ids balanced);
  let with_lock = lint_snippet "let f l = Klock.with_lock l (fun () -> compute l)\n" in
  check ids "with_lock is the blessed shape" [] (rule_ids with_lock);
  let skewed =
    lint_snippet "let f l c = Klock.acquire l; if c then Klock.release l else ()\n"
  in
  check ids "held on one branch only" [ "R3" ] (rule_ids skewed);
  let diverging =
    lint_snippet
      "let f l x =\n\
      \  Klock.acquire l;\n\
      \  match x with\n\
      \  | Some v -> Klock.release l; v\n\
      \  | None -> failwith \"boom\"\n"
  in
  check ids "diverging branch exempt from balance" [] (rule_ids diverging);
  let unowned = lint_snippet "let f l = Klock.release l\n" in
  check ids "release without acquire" [ "R3" ] (rule_ids unowned);
  (* two different locks each tracked by name *)
  let two =
    lint_snippet "let f a b = Klock.acquire a; Klock.acquire b; Klock.release a\n"
  in
  check ids "per-lock tracking" [ "R3" ] (rule_ids two)

(* R4: ownership bypass -------------------------------------------------- *)

let test_r4_ownership_bypass () =
  let bad = lint_snippet "let f b = Bytes.unsafe_get b 0\n" in
  check ids "Bytes.unsafe_* flagged" [ "R4" ] (rule_ids bad);
  let good = lint_snippet "let f b = Bytes.get b 0\n" in
  check ids "checked accessor clean" [] (rule_ids good);
  (* the ownership layer itself may touch raw representations *)
  let exempt =
    lint_snippet ~rel:"lib/ownership/fixture.ml" "let f b = Bytes.unsafe_get b 0\n"
  in
  check ids "lib/ownership exempt" [] (rule_ids exempt)

(* R5: must-check results ------------------------------------------------ *)

let test_r5_must_check () =
  let ignored = lint_snippet "let f t = ignore (submit_write t 0 data)\n" in
  check ids "ignore of must-check" [ "R5" ] (rule_ids ignored);
  let wild = lint_snippet "let _ = submit_write t 0 data\n" in
  check ids "let _ of must-check" [ "R5" ] (rule_ids wild);
  let typed = lint_snippet "let (_ : int r) = submit_write t 0 data\n" in
  check ids "typed wildcard is an acknowledgment" [] (rule_ids typed);
  let other = lint_snippet "let f t = ignore (helper t)\n" in
  check ids "non-must-check ignore is fine" [] (rule_ids other)

(* R7: annotation/body mismatches ---------------------------------------- *)

let test_r7_annotation_mismatch () =
  let honest = lint_snippet "let f l = Klock.acquire l [@@acquires \"l\"]\n" in
  check ids "@acquires with matching body is clean" [] (rule_ids honest);
  let liar = lint_snippet "let f l = compute l [@@acquires \"l\"]\n" in
  check ids "@acquires with no acquisition" [ "R7" ] (rule_ids liar);
  let imbalanced = lint_snippet "let f l = Klock.acquire l [@@must_hold \"l\"]\n" in
  check ids "@must_hold must not change the balance" [ "R7" ] (rule_ids imbalanced);
  let releaser = lint_snippet "let f l = Klock.release l [@@releases \"l\"]\n" in
  check ids "@releases licenses the naked release" [] (rule_ids releaser);
  (* without the annotation the same bodies are R3 territory *)
  let r3 = lint_snippet "let f l = Klock.acquire l\n" in
  check ids "unannotated imbalance is still R3" [ "R3" ] (rule_ids r3)

(* kracer: the interprocedural pass -------------------------------------- *)

(* Write a whole multi-file fixture tree and run the full engine on it,
   so call-graph construction, the fixpoints, and finding plumbing are
   all exercised together. *)
let lint_tree_fixture files =
  let root = Filename.temp_dir "kracer_test" "" in
  List.iter
    (fun (rel, content) ->
      let path = Filename.concat root rel in
      mkdir_p (Filename.dirname path);
      let oc = open_out_bin path in
      output_string oc content;
      close_out oc)
    files;
  (root, E.lint_tree ~root)

let fixture_cell_module =
  "type t = { i_lock : Ksim.Klock.t; i_size : int Ksim.Klock.Guarded.cell }\n\
   let make i_lock =\n\
  \  { i_lock; i_size = Ksim.Klock.Guarded.create ~lock:i_lock ~name:\"i_size:0\" 0 }\n"

let test_kracer_r6_two_hops () =
  (* The seeded acceptance fixture: a Guarded.set reached through two
     call hops with no lock anywhere on the path. *)
  let _, tree =
    lint_tree_fixture
      [
        ( "lib/fixture/cellmod.ml",
          fixture_cell_module
          ^ "let set_size t n = Ksim.Klock.Guarded.set t.i_size n\n\
             let mid t n = set_size t n\n\
             let top t n = mid t n\n" );
      ]
  in
  let r6 = List.filter (fun f -> f.F.rule = F.R6_lockset_race) tree.E.findings in
  check Alcotest.int "unlocked write through two hops flagged" 1 (List.length r6);
  check Alcotest.string "flagged inside the accessor" "Cellmod.set_size" (List.hd r6).F.func

let test_kracer_r6_annotated_clean () =
  (* The same chain, annotated and locked at the top: the contracts
     thread the lock requirement down and everything discharges. *)
  let _, tree =
    lint_tree_fixture
      [
        ( "lib/fixture/cellmod.ml",
          fixture_cell_module
          ^ "(** @must_hold: i_lock *)\n\
             let set_size t n = Ksim.Klock.Guarded.set t.i_size n\n\
             (** @must_hold: i_lock *)\n\
             let mid t n = set_size t n\n\
             let top t n = Ksim.Klock.with_lock t.i_lock (fun () -> mid t n)\n" );
      ]
  in
  check ids "annotated chain is clean" [] (rule_ids tree.E.findings)

let test_kracer_r6_must_hold_call_site () =
  (* A caller that ignores a callee's @must_hold contract is flagged at
     the call site even when the callee never touches a Guarded cell. *)
  let _, tree =
    lint_tree_fixture
      [
        ( "lib/fixture/contract.ml",
          "(** @must_hold: i_lock *)\n\
           let locked_op i_lock = compute i_lock\n\
           let careless i_lock = locked_op i_lock\n" );
      ]
  in
  let r6 = List.filter (fun f -> f.F.rule = F.R6_lockset_race) tree.E.findings in
  check Alcotest.int "contract violation at the call site" 1 (List.length r6);
  check Alcotest.string "in the careless caller" "Contract.careless" (List.hd r6).F.func

let test_kracer_static_edges_and_cycles () =
  (* Both nestings of the same two locks: the static graph must contain
     both edges and predict the AB-BA deadlock as a cycle, including the
     acquisition that only happens inside a callee. *)
  let root, _ =
    lint_tree_fixture
      [
        ( "lib/fixture/order.ml",
          "let inner b_lock = Ksim.Klock.with_lock b_lock (fun () -> ())\n\
           let ab a_lock b_lock = Ksim.Klock.with_lock a_lock (fun () -> inner b_lock)\n\
           let ba a_lock b_lock =\n\
          \  Ksim.Klock.with_lock b_lock (fun () ->\n\
          \      Ksim.Klock.with_lock a_lock (fun () -> ()))\n" );
      ]
  in
  let k = Klint.Kracer.analyze_tree ~root in
  check Alcotest.bool "a->b edge (through the call)" true
    (List.mem ("a_lock", "b_lock") k.Klint.Kracer.edges);
  check Alcotest.bool "b->a edge (direct nesting)" true
    (List.mem ("b_lock", "a_lock") k.Klint.Kracer.edges);
  check
    Alcotest.(list (list string))
    "the AB-BA cycle is predicted"
    [ [ "a_lock"; "b_lock" ] ]
    k.Klint.Kracer.cycles

let test_kracer_runtime_reconciliation () =
  (* Class-collapse and subtraction: runtime instances of a statically
     known nesting are covered; an order the static graph lacks is
     reported as the unsound residue. *)
  let static = [ ("s_lock", "i_lock") ] in
  check
    Alcotest.(list (pair string string))
    "instance edges collapse onto the static class edge" []
    (Klint.Kracer.missing_runtime_edges ~static
       [ ("s_lock", "i_lock:3"); ("s_lock", "i_lock:7") ]);
  check
    Alcotest.(list (pair string string))
    "an unseen ordering surfaces" [ ("i_lock", "j_lock") ]
    (Klint.Kracer.missing_runtime_edges ~static
       [ ("s_lock", "i_lock:3"); ("i_lock:3", "j_lock:1") ])

let test_kracer_mli_annotation () =
  (* Contracts may live on the .mli val instead of the .ml binding. *)
  let _, tree =
    lint_tree_fixture
      [
        ( "lib/fixture/sigmod.ml",
          fixture_cell_module ^ "let set_size t n = Ksim.Klock.Guarded.set t.i_size n\n" );
        ( "lib/fixture/sigmod.mli",
          "type t\n\
           val make : Ksim.Klock.t -> t\n\
           (** @must_hold: i_lock *)\n\
           val set_size : t -> int -> unit\n" );
      ]
  in
  check ids "mli contract discharges the cell access" [] (rule_ids tree.E.findings)

(* kown: the ownership-lifetime pass ------------------------------------- *)

let is_own_rule = function
  | F.R8_use_after_free | F.R9_double_free | F.R10_error_leak | F.R11_borrow_escape ->
      true
  | _ -> false

let test_kown_r8_branch_join () =
  (* A free on only one arm of a branch MAY have happened afterwards —
     the join is a may-union, so the later write is a use-after-free. *)
  let _, tree =
    lint_tree_fixture
      [
        ( "lib/fixture/own.ml",
          "let f p c =\n\
          \  (if c then Ksim.Kmem.free p else ());\n\
          \  Ksim.Kmem.write p 1\n\
           let g p c =\n\
          \  Ksim.Kmem.write p 1;\n\
          \  if c then Ksim.Kmem.free p else ()\n" );
      ]
  in
  check ids "use after a may-free is flagged, use before is not" [ "R8" ]
    (rule_ids tree.E.findings);
  check Alcotest.string "in the branching function" "Own.f"
    (List.hd tree.E.findings).F.func

let test_kown_interprocedural_consume () =
  (* The consuming contract travels two call hops up the graph: [base]
     frees its argument, so [mid] consumes, so [top]'s later read is a
     use-after-move and [dbl]'s later free a double free. *)
  let _, tree =
    lint_tree_fixture
      [
        ( "lib/fixture/chain.ml",
          "let base p = Ksim.Kmem.free p\n\
           let mid p = base p\n\
           let top p = mid p; Ksim.Kmem.read p\n\
           let dbl p = base p; Ksim.Kmem.free p\n" );
      ]
  in
  let rule r = List.filter (fun f -> f.F.rule = r) tree.E.findings in
  (match rule F.R8_use_after_free with
  | [ f ] -> check Alcotest.string "use-after-move in the caller" "Chain.top" f.F.func
  | l -> Alcotest.fail (Fmt.str "expected one R8, got %d" (List.length l)));
  (match rule F.R9_double_free with
  | [ f ] -> check Alcotest.string "double free in the caller" "Chain.dbl" f.F.func
  | l -> Alcotest.fail (Fmt.str "expected one R9, got %d" (List.length l)));
  check Alcotest.int "consuming propagated to every function" 4
    tree.E.kown.Klint.Kown.consuming

let test_kown_r10_error_path () =
  (* Trigger 1: a locally allocated, unescaped object still owned when an
     [Error _] constructor is built leaks on that path; freeing first is
     the fix. *)
  let _, tree =
    lint_tree_fixture
      [
        ( "lib/fixture/errpath.ml",
          "let bad h c =\n\
          \  let p = Ksim.Kmem.alloc h ~site:\"s\" 0 in\n\
          \  if c then Error Enomem else Ok p\n\
           let good h c =\n\
          \  let p = Ksim.Kmem.alloc h ~site:\"s\" 0 in\n\
          \  if c then begin Ksim.Kmem.free p; Error Enomem end else Ok p\n" );
      ]
  in
  check ids "leak on the error arm only" [ "R10" ] (rule_ids tree.E.findings);
  check Alcotest.string "in the leaking function" "Errpath.bad"
    (List.hd tree.E.findings).F.func

let test_kown_r10_sibling_arm () =
  (* Trigger 2: both arms run the same Hashtbl.remove teardown but only
     one frees — the forgot-the-kfree-in-one-arm shape. *)
  let _, tree =
    lint_tree_fixture
      [
        ( "lib/fixture/twoarm.ml",
          "let unlink tbl ino p keep =\n\
          \  if keep then Hashtbl.remove tbl ino\n\
          \  else begin\n\
          \    Ksim.Kmem.free p;\n\
          \    Hashtbl.remove tbl ino\n\
          \  end\n\
           let both tbl ino p =\n\
          \  if Hashtbl.mem tbl ino then begin\n\
          \    Ksim.Kmem.free p;\n\
          \    Hashtbl.remove tbl ino\n\
          \  end\n\
          \  else begin\n\
          \    Ksim.Kmem.free p;\n\
          \    Hashtbl.remove tbl ino\n\
          \  end\n" );
      ]
  in
  check ids "the arm missing the free is flagged" [ "R10" ] (rule_ids tree.E.findings);
  check Alcotest.string "in the asymmetric function" "Twoarm.unlink"
    (List.hd tree.E.findings).F.func

let test_kown_r11_borrow_escape () =
  (* Borrows must stay inside their lend closure: storing one, returning
     one, freeing one, and touching a revoked capability are all R11;
     reading through the borrow inside the closure is the blessed use. *)
  let _, tree =
    lint_tree_fixture
      [
        ( "lib/fixture/borrow.ml",
          "let store_escape ck cap slot =\n\
          \  Ownership.Checker.lend_exclusive ck cap ~to_:\"x\" ~f:(fun b ->\n\
          \      slot.saved <- b)\n\
           let ret_escape ck cap =\n\
          \  Ownership.Checker.lend_shared ck cap ~to_:[ \"x\" ] ~f:(fun bs ->\n\
          \      match bs with [ b ] -> b | _ -> assert false)\n\
           let frees_borrow ck cap =\n\
          \  Ownership.Checker.lend_exclusive ck cap ~to_:\"x\" ~f:(fun b ->\n\
          \      Ownership.Checker.free ck b)\n\
           let revoked ck c =\n\
          \  Ownership.Cap.revoke c;\n\
          \  Ownership.Checker.read ck c ~off:0 ~len:1\n" );
        ( "lib/fixture/borrow_ok.ml",
          "let fine ck cap n =\n\
          \  Ownership.Checker.lend_shared ck cap ~to_:[ \"x\" ] ~f:(fun bs ->\n\
          \      match bs with\n\
          \      | [ b ] -> Bytes.to_string (Ownership.Checker.read ck b ~off:0 ~len:n)\n\
          \      | _ -> assert false)\n" );
      ]
  in
  check ids "every escape shape is R11, the in-scope read is clean"
    [ "R11"; "R11"; "R11"; "R11" ]
    (rule_ids tree.E.findings);
  List.iter
    (fun f -> check Alcotest.string "all in the bad file" "lib/fixture/borrow.ml" f.F.file)
    tree.E.findings

let test_kown_annotations () =
  (* Attribute-form contracts override the inference: without them the
     same bodies (opaque callees) lint clean; with them the caller's
     use-after-consume and error-path leak surface. *)
  let _, tree =
    lint_tree_fixture
      [
        ( "lib/fixture/annotated.ml",
          "let release p = dealloc p [@@consumes \"p\"]\n\
           let make h = priv_alloc h [@@returns_owned]\n\
           let f t = release t; Ksim.Kmem.read t\n\
           let g h c =\n\
          \  let q = make h in\n\
          \  if c then Error Enomem else begin Ksim.Kmem.free q; Ok () end\n" );
        ( "lib/fixture/unannotated.ml",
          "let release p = dealloc p\n\
           let make h = priv_alloc h\n\
           let f t = release t; Ksim.Kmem.read t\n\
           let g h c =\n\
          \  let q = make h in\n\
          \  if c then Error Enomem else begin Ksim.Kmem.free q; Ok () end\n" );
      ]
  in
  check ids "annotated contracts fire, unannotated twins stay clean" [ "R8"; "R10" ]
    (rule_ids tree.E.findings);
  List.iter
    (fun f ->
      check Alcotest.string "only the annotated file" "lib/fixture/annotated.ml" f.F.file)
    tree.E.findings

let test_kown_mli_annotation () =
  (* An ownership contract on the .mli val binds the .ml implementation,
     like kracer's @must_hold. *)
  let _, tree =
    lint_tree_fixture
      [
        ( "lib/fixture/res.ml",
          "let release r = dealloc r\nlet f r = release r; Ksim.Kmem.read r\n" );
        ( "lib/fixture/res.mli",
          "val f : 'a -> 'b\n(** @consumes: r *)\nval release : 'a -> unit\n" );
      ]
  in
  check ids "mli @consumes drives the caller check" [ "R8" ] (rule_ids tree.E.findings);
  check Alcotest.string "flagged at the use in the caller" "Res.f"
    (List.hd tree.E.findings).F.func

let test_kown_kmem_events () =
  let write_tmp content =
    let path = Filename.temp_file "kmem" ".events" in
    let oc = open_out_bin path in
    output_string oc content;
    close_out oc;
    path
  in
  (* parse: well-formed lines load, a malformed line is a hard error so a
     truncated export cannot pass reconciliation by vacuity *)
  (match
     Klint.Kown.read_kmem_events
       (write_tmp "uaf\town_ev\tsite-a\t2\n\nleak\town_ev\tsite-b\t1\n")
   with
  | Ok evs -> check Alcotest.int "events parsed, blank line skipped" 2 (List.length evs)
  | Error msg -> Alcotest.fail msg);
  (match Klint.Kown.read_kmem_events (write_tmp "uaf own_ev site-a 2\n") with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error _ -> ());
  (* subtraction: an event whose file already has a static finding of the
     matching rule is covered; one without is the unsound residue; heaps
     with no linted file (test scratch heaps) are skipped *)
  let _, tree =
    lint_tree_fixture
      [ ("lib/fixture/own_ev.ml", "let f p = Ksim.Kmem.free p; Ksim.Kmem.read p\n") ]
  in
  check ids "fixture carries the R8" [ "R8" ] (rule_ids tree.E.findings);
  let ev kind heap = { Klint.Kown.kind; heap; site = "s"; count = 1 } in
  let survivors =
    Klint.Kown.unflagged_kmem_events
      ~files:[ "lib/fixture/own_ev.ml" ]
      ~findings:tree.E.findings
      [ ev "uaf" "own_ev"; ev "uaf" "own_ev"; ev "double_free" "own_ev"; ev "leak" "scratch" ]
  in
  match survivors with
  | [ (e, file, rule) ] ->
      check Alcotest.string "unflagged event attributed to the file" "lib/fixture/own_ev.ml"
        file;
      check Alcotest.string "double_free maps to R9" "R9" (F.rule_id rule);
      check Alcotest.string "the surviving kind" "double_free" e.Klint.Kown.kind
  | l -> Alcotest.fail (Fmt.str "expected one unflagged event, got %d" (List.length l))

let test_kown_reconcile_ownership_claim () =
  (* A subsystem claiming Ownership_safe must not carry a double free —
     below that rung the finding is recorded but tolerated, and a
     grandfathered entry stays a non-violation. *)
  let _, tree =
    lint_tree_fixture
      [ ("lib/fixture/own_claim.ml", "let f p = Ksim.Kmem.free p; Ksim.Kmem.free p\n") ]
  in
  check ids "double free found" [ "R9" ] (rule_ids tree.E.findings);
  check Alcotest.int "violation under the Ownership_safe claim" 1
    (List.length (violations Level.Ownership_safe tree.E.findings));
  check Alcotest.int "tolerated under Modular" 0
    (List.length (violations Level.Modular tree.E.findings));
  check Alcotest.int "baselined finding tolerated" 0
    (List.length
       (violations
          ~baseline:(B.of_findings tree.E.findings)
          Level.Ownership_safe tree.E.findings))

let test_kown_baseline_renumbering () =
  (* Baseline entries are line-anchored: an unrelated edit above the
     finding renumbers it, the old entry goes stale and the finding
     reappears as a violation.  The ci ratchet compares per
     (rule, file, class) counts exactly so that this renumbering is not
     mistaken for growth. *)
  let fixture prefix =
    [ ("lib/fixture/own_base.ml", prefix ^ "let f p = Ksim.Kmem.free p; Ksim.Kmem.free p\n") ]
  in
  let _, t1 = lint_tree_fixture (fixture "") in
  let base = B.of_findings t1.E.findings in
  let _, t2 = lint_tree_fixture (fixture "let unrelated = 0\n") in
  let r = E.reconcile ~claim_of:(claiming Level.Ownership_safe) ~baseline:base t2.E.findings in
  check Alcotest.int "renumbered finding is no longer grandfathered" 1
    (List.length r.E.violations);
  check Alcotest.int "its old entry is reported stale" 1 (List.length r.E.stale_baseline)

(* Reconciliation -------------------------------------------------------- *)

let test_reconcile_cast_violation () =
  (* The acceptance fixture: a subsystem claiming Type_safe (or above)
     gains a Dyn.cast_exn — klint must report a violation. *)
  let findings = lint_snippet "let f d = Ksim.Dyn.cast_exn key d\n" in
  check Alcotest.int "violation at type-safe" 1
    (List.length (violations Level.Type_safe findings));
  check Alcotest.int "violation at verified" 1
    (List.length (violations Level.Verified findings));
  check Alcotest.int "tolerated at modular" 0
    (List.length (violations Level.Modular findings));
  (* grandfathered: recorded as forbidden but not a violation *)
  let r =
    E.reconcile ~claim_of:(claiming Level.Type_safe) ~baseline:(B.of_findings findings)
      findings
  in
  check Alcotest.int "baselined finding tolerated" 0 (List.length r.E.violations);
  check Alcotest.int "but still attributed as forbidden" 1
    (List.length (List.filter (fun a -> a.E.forbidden) r.E.attributed))

let test_reconcile_lock_violation () =
  let findings = lint_snippet "let f l = Klock.acquire l; compute l\n" in
  check ids "unbalanced acquire found" [ "R3" ] (rule_ids findings);
  check Alcotest.int "data-race forbidden at ownership-safe" 1
    (List.length (violations Level.Ownership_safe findings));
  check Alcotest.int "tolerated at type-safe (races not yet claimed)" 0
    (List.length (violations Level.Type_safe findings))

let test_parse_error_reported () =
  let root = Filename.temp_dir "klint_test" "" in
  let rel = "lib/fixture/broken.ml" in
  mkdir_p (Filename.concat root "lib/fixture");
  let oc = open_out_bin (Filename.concat root rel) in
  output_string oc "let = (\n";
  close_out oc;
  match E.lint_file ~root rel with
  | Ok _ -> Alcotest.fail "garbage parsed?"
  | Error _ -> ()

(* Baseline -------------------------------------------------------------- *)

let test_baseline_roundtrip () =
  let findings =
    lint_snippet
      "let f d = Ksim.Dyn.cast_exn key d\n\
       let g b = Bytes.unsafe_get b 0\n\
       let h t = ignore (submit_write t 0 data)\n"
  in
  check ids "three rules fire" [ "R1"; "R4"; "R5" ] (rule_ids findings);
  let base = B.of_findings findings in
  (match B.of_string (B.to_string base) with
  | Ok base' -> check Alcotest.bool "to_string/of_string round-trip" true (base = base')
  | Error msg -> Alcotest.fail msg);
  (* stable ordering: shuffled input renders identically *)
  check Alcotest.string "order independent of input order" (B.to_string base)
    (B.to_string (B.of_findings (List.rev findings)));
  List.iter (fun f -> check Alcotest.bool "mem" true (B.mem base f)) findings;
  check Alcotest.int "nothing stale" 0 (List.length (B.stale base findings));
  (* fix one finding: its entry is reported as ratchet progress *)
  let fixed = List.filter (fun f -> f.F.rule <> F.R1_unchecked_cast) findings in
  check Alcotest.int "fixed entry is stale" 1 (List.length (B.stale base fixed))

(* ktcb: frame confinement (R12-R14) and the TCB metric ------------------ *)

module K = Klint.Ktcb
module Fr = Klint.Frame

let ktcb_ids (k : K.result) = List.map (fun f -> F.rule_id f.F.rule) k.K.findings

let test_ktcb_r12_direct () =
  (* Direct Dyn access from a service module: R12, kept out of the
     ladder findings — its ratchet is tcb.baseline, not klint.baseline. *)
  let _, tree =
    lint_tree_fixture
      [ ("lib/fixture/svc.ml", "let lookup key d = Ksim.Dyn.project key d\n") ]
  in
  let k = tree.E.ktcb in
  check ids "direct Dyn use is R12" [ "R12" ] (ktcb_ids k);
  check Alcotest.string "in the service file" "lib/fixture/svc.ml"
    (List.hd k.K.findings).F.file;
  check Alcotest.bool "ktcb findings stay out of the ladder findings" false
    (List.exists (fun f -> f.F.rule = F.R12_unsafe_primitive) tree.E.findings);
  (* the same code *inside* the frame is the frame's business *)
  let _, frame_tree =
    lint_tree_fixture
      [ ("lib/ksim/helper.ml", "let lookup key d = Ksim.Dyn.project key d\n") ]
  in
  check ids "frame-internal use is allowed" [] (ktcb_ids frame_tree.E.ktcb);
  let row = List.find (fun r -> r.K.in_frame) frame_tree.E.ktcb.K.rows in
  check Alcotest.int "every frame line counts as unsafe TCB" row.K.loc row.K.unsafe_loc

let test_ktcb_r13_depth2 () =
  (* Laundering: a helper wraps the raw primitive, a user calls the
     helper, a second hop calls the user.  R12 prices the primitive's
     use site once; every hop of the laundering chain is R13. *)
  let _, tree =
    lint_tree_fixture
      [
        ("lib/fixture/helper.ml", "let steal key d = Ksim.Dyn.project key d\n");
        ( "lib/fixture/user.ml",
          "let get key d = Helper.steal key d\nlet top key d = get key d\n" );
      ]
  in
  let k = tree.E.ktcb in
  let in_file rel rule =
    List.length
      (List.filter
         (fun (f : F.t) -> String.equal f.F.file rel && f.F.rule = rule)
         k.K.findings)
  in
  check Alcotest.int "R12 at the primitive" 1
    (in_file "lib/fixture/helper.ml" F.R12_unsafe_primitive);
  check Alcotest.int "R13 at both laundering hops" 2
    (in_file "lib/fixture/user.ml" F.R13_frame_bypass);
  check Alcotest.int "no R13 where R12 already priced" 0
    (in_file "lib/fixture/helper.ml" F.R13_frame_bypass)

let test_ktcb_r13_frame_surface () =
  (* Resolving into the frame is fine through blessed modules only: an
     unexported frame helper is a bypass even with no raw primitive in
     sight. *)
  let _, tree =
    lint_tree_fixture
      [
        ("lib/ksim/errno.ml", "let eio = 5\n");
        ("lib/ksim/rawhelp.ml", "let poke b = b\n");
        ( "lib/fixture/user.ml",
          "let ok () = Errno.eio\nlet bad b = Rawhelp.poke b\n" );
      ]
  in
  let k = tree.E.ktcb in
  check ids "only the unexported helper is a bypass" [ "R13" ] (ktcb_ids k);
  let f = List.hd k.K.findings in
  check Alcotest.string "flagged in the caller" "lib/fixture/user.ml" f.F.file;
  check Alcotest.string "at the laundering function" "User.bad" f.F.func

let test_ktcb_r14_unsound_export () =
  (* A blessed frame function whose result is a fresh owned object: fine
     consumed frame-internally, R14 once a service can reach it. *)
  let frame = "(** @returns_owned *)\nlet snapshot () = make_raw ()\n" in
  let _, bad =
    lint_tree_fixture
      [
        ("lib/ksim/hist.ml", frame);
        ("lib/fixture/user.ml", "let get () = Hist.snapshot ()\n");
      ]
  in
  check ids "owned raw capability escapes the frame" [ "R14" ] (ktcb_ids bad.E.ktcb);
  check Alcotest.string "flagged at the frame definition" "lib/ksim/hist.ml"
    (List.hd bad.E.ktcb.K.findings).F.file;
  let _, good =
    lint_tree_fixture
      [
        ("lib/ksim/hist.ml", frame);
        ("lib/ksim/other.ml", "let get () = Hist.snapshot ()\n");
      ]
  in
  check ids "frame-internal consumption is clean" [] (ktcb_ids good.E.ktcb)

let test_ktcb_baseline_ratchet () =
  let e rule file count = { K.b_rule = rule; b_file = file; b_count = count } in
  let base =
    List.sort K.compare_entry
      [
        e F.R12_unsafe_primitive "lib/kfs/memfs_unsafe.ml" 2;
        e F.R13_frame_bypass "lib/knet/amp.ml" 1;
      ]
  in
  (match K.of_string (K.to_string base) with
  | Ok base' -> check Alcotest.bool "to_string/of_string round-trip" true (base = base')
  | Error msg -> Alcotest.fail msg);
  (match K.of_string "R99 lib/foo.ml 1\n" with
  | Ok _ -> Alcotest.fail "unknown rule id parsed?"
  | Error _ -> ());
  (* counts, not lines: one more finding in a priced file is a
     regression, a vanished entry is ratchet progress *)
  let current = [ e F.R12_unsafe_primitive "lib/kfs/memfs_unsafe.ml" 3 ] in
  let regressions, progress = K.compare_counts ~baseline:base current in
  (match regressions with
  | [ r ] ->
      check Alcotest.int "regression live count" 3 r.K.d_have;
      check Alcotest.int "regression grandfathered count" 2 r.K.d_allowed
  | _ -> Alcotest.fail "expected exactly one regression");
  (match progress with
  | [ p ] -> check Alcotest.string "vanished entry is progress" "lib/knet/amp.ml" p.K.d_file
  | _ -> Alcotest.fail "expected exactly one progress entry");
  (* identical counts are neither growth nor progress *)
  let regressions, progress = K.compare_counts ~baseline:base base in
  check Alcotest.int "self-compare: no regressions" 0 (List.length regressions);
  check Alcotest.int "self-compare: no progress" 0 (List.length progress)

let test_ktcb_runtime_reconciliation () =
  (* Attribution for the runtime reconciliations: a frame-free module
     that creates a lock class and owns a heap is UNSOUND the moment
     runtime traffic lands on it; priced modules are covered. *)
  let _, tree =
    lint_tree_fixture
      [
        ( "lib/fixture/locker.ml",
          "let l = Ksim.Klock.create ~name:\"fix_lock\" ()\n" );
        ("lib/fixture/svc.ml", "let f key d = Ksim.Dyn.project key d\n");
      ]
  in
  let k = tree.E.ktcb in
  let pairs = Alcotest.(list (pair string string)) in
  check pairs "lock creator attributed to its file"
    [ ("fix_lock", "lib/fixture/locker.ml") ]
    k.K.lock_creators;
  check pairs "runtime edge on a frame-free class is unsound"
    [ ("fix_lock", "lib/fixture/locker.ml") ]
    (K.unsound_lock_edges ~result:k ~static_classes:[] [ ("fix_lock", "other_lock") ]);
  check pairs "statically known class is covered" []
    (K.unsound_lock_edges ~result:k ~static_classes:[ "fix_lock" ]
       [ ("fix_lock", "other_lock") ]);
  let files = [ "lib/fixture/locker.ml"; "lib/fixture/svc.ml" ] in
  let ev heap = { Klint.Kown.kind = "leak"; heap; site = "s"; count = 1 } in
  (match K.unsound_kmem_events ~files ~result:k [ ev "locker" ] with
  | [ (_, file) ] ->
      check Alcotest.string "heap event attributed to the frame-free file"
        "lib/fixture/locker.ml" file
  | other -> Alcotest.fail (Fmt.str "expected one unsound event, got %d" (List.length other)));
  check Alcotest.int "the priced module's events are covered" 0
    (List.length (K.unsound_kmem_events ~files ~result:k [ ev "svc" ]));
  check Alcotest.int "a scratch heap with no module is skipped" 0
    (List.length (K.unsound_kmem_events ~files ~result:k [ ev "scratch" ]))

(* kdur: barrier discipline and durability ordering (R16-R18) ------------ *)

module D = Klint.Kdur

let kdur_ids (d : D.result) = List.map (fun f -> F.rule_id f.F.rule) d.D.findings

let test_kdur_r16_read_back () =
  (* ALICE's ordering bug: write, read the volatile content back, write a
     dependent block — R16 without a barrier, clean with one. *)
  let src flushed =
    "let ( let* ) = Result.bind\n\
     let chained io a =\n\
    \  let* () = io.Kblock.Io.write 1 a in\n\
    \  let* prev = io.Kblock.Io.read 1 in\n"
    ^ (if flushed then "  let* () = io.Kblock.Io.flush () in\n" else "")
    ^ "  let* () = io.Kblock.Io.write 2 prev in\n\
      \  Ok ()\n"
  in
  let _, bad = lint_tree_fixture [ ("lib/fixture/log.ml", src false) ] in
  check ids "dependent write on a read-back is R16" [ "R16" ] (kdur_ids bad.E.kdur);
  let f = List.hd bad.E.kdur.D.findings in
  check Alcotest.string "at the dependent write" "Log.chained" f.F.func;
  check Alcotest.bool "ladder findings stay separate" false
    (List.exists (fun f -> f.F.rule = F.R16_unordered_write) bad.E.findings);
  let _, good = lint_tree_fixture [ ("lib/fixture/log.ml", src true) ] in
  check ids "an intervening barrier clears the taint" [] (kdur_ids good.E.kdur)

let test_kdur_r16_match_bind () =
  (* The same read-back through a [match] instead of [let*]: the case
     pattern binds the volatile payload, and a barrier before the
     dependent write clears it. *)
  let src flushed =
    "let chained io a =\n\
    \  let _ = io.Kblock.Io.write 1 a in\n\
    \  match io.Kblock.Io.read 1 with\n\
    \  | Error _ -> ()\n\
    \  | Ok prev ->\n"
    ^ (if flushed then "    let _ = io.Kblock.Io.flush () in\n" else "")
    ^ "    ignore (io.Kblock.Io.write 2 prev)\n"
  in
  let _, bad = lint_tree_fixture [ ("lib/fixture/log.ml", src false) ] in
  check ids "match-bound read-back is R16" [ "R16" ] (kdur_ids bad.E.kdur);
  let _, good = lint_tree_fixture [ ("lib/fixture/log.ml", src true) ] in
  check ids "a barrier in the Ok case clears it" [] (kdur_ids good.E.kdur)

let test_kdur_r16_derived_taint () =
  (* Taint flows through derivation: a binding computed from a volatile
     payload is as volatile as the payload. *)
  let _, tree =
    lint_tree_fixture
      [
        ( "lib/fixture/log.ml",
          "let ( let* ) = Result.bind\n\
           let stamp io a =\n\
          \  let* () = io.Kblock.Io.write 1 a in\n\
          \  let tagged = Bytes.cat a a in\n\
          \  io.Kblock.Io.write 2 tagged\n" );
      ]
  in
  check ids "derived payload is R16" [ "R16" ] (kdur_ids tree.E.kdur)

let test_kdur_r17_durable_ack () =
  (* The @durable contract: Ok while the device is still volatile is the
     missing-barrier journal mutant's signature. *)
  let src ~annot ~flushed =
    "let ( let* ) = Result.bind\n"
    ^ (if annot then "(** @durable *)\n" else "")
    ^ "let commit io b =\n\
      \  let* () = io.Kblock.Io.write 0 b in\n"
    ^ (if flushed then "  let* () = io.Kblock.Io.flush () in\n" else "")
    ^ "  Ok ()\n"
  in
  let _, bad = lint_tree_fixture [ ("lib/fixture/jnl.ml", src ~annot:true ~flushed:false) ] in
  check ids "volatile Ok under @durable is R17" [ "R17" ] (kdur_ids bad.E.kdur);
  (* >=: the parser attaches a doc comment to both neighbouring items, so
     the ( let* ) binding above can pick the contract up too *)
  check Alcotest.bool "the contract is counted" true (bad.E.kdur.D.durable_funcs >= 1);
  let _, good = lint_tree_fixture [ ("lib/fixture/jnl.ml", src ~annot:true ~flushed:true) ] in
  check ids "a barrier before the ack discharges it" [] (kdur_ids good.E.kdur);
  let _, plain = lint_tree_fixture [ ("lib/fixture/jnl.ml", src ~annot:false ~flushed:false) ] in
  check ids "without the contract a volatile return is legal" []
    (kdur_ids plain.E.kdur)

let test_kdur_r18_obligation_dropped () =
  (* Interprocedural: a callee re-exports its flush obligation
     (@orders_after); a wrapper that forwards it while stating no
     contract of its own loses the obligation at the boundary. *)
  let log_ml =
    "(** Volatile append; the caller keeps the flush obligation.\n\
    \    @orders_after: t *)\n\
     let append t data = t.Kblock.Io.write 1 data\n"
  in
  let wrap body = [ ("lib/fixture/log.ml", log_ml); ("lib/fixture/wrap.ml", body) ] in
  let _, bad = lint_tree_fixture (wrap "let forward t data = Log.append t data\n") in
  check ids "silent forwarding drops the obligation" [ "R18" ] (kdur_ids bad.E.kdur);
  let f = List.hd bad.E.kdur.D.findings in
  check Alcotest.string "flagged at the wrapper" "lib/fixture/wrap.ml" f.F.file;
  check Alcotest.string "in the forwarding function" "Wrap.forward" f.F.func;
  let _, declared =
    lint_tree_fixture
      (wrap "(** @orders_after: t *)\nlet forward t data = Log.append t data\n")
  in
  check ids "re-exporting the contract discharges it" [] (kdur_ids declared.E.kdur);
  let _, flushed =
    lint_tree_fixture
      (wrap
         "let ( let* ) = Result.bind\n\
          let forward t data =\n\
         \  let* _ = Log.append t data in\n\
         \  t.Kblock.Io.flush ()\n")
  in
  check ids "a barrier in the wrapper discharges it" [] (kdur_ids flushed.E.kdur);
  (* annotation beats inference: a callee contracted @flushes is a full
     barrier even when doc and attribute forms disagree — the union is
     taken and the stronger contract wins at the call site *)
  let _, mixed =
    lint_tree_fixture
      [
        ( "lib/fixture/log.ml",
          "(** @orders_after: t *)\n\
           let append t data = t.Kblock.Io.write 1 data [@@flushes \"t\"]\n" );
        ("lib/fixture/wrap.ml", "let forward t data = Log.append t data\n");
      ]
  in
  check ids "a flushing callee leaves nothing to forward" [] (kdur_ids mixed.E.kdur)

let test_kdur_baseline_roundtrip () =
  (* dur.baseline rides the shared Counts engine: save/load round-trip
     and the regression/progress split. *)
  let module C = Klint.Baseline.Counts in
  let e rule file count = { C.b_rule = rule; b_file = file; b_count = count } in
  let base =
    (* pre-sorted (file, then rule): load returns sorted entries *)
    [
      e F.R17_ack_before_durable "lib/kblock/journal.ml" 2;
      e F.R16_unordered_write "lib/kfs/rawlog_unsafe.ml" 2;
    ]
  in
  let path = Filename.temp_file "dur_baseline" ".txt" in
  D.save_baseline path base;
  (match D.load_baseline path with
  | Ok loaded -> check Alcotest.bool "save/load round-trip" true (loaded = base)
  | Error msg -> Alcotest.fail msg);
  Sys.remove path;
  let current =
    [
      e F.R16_unordered_write "lib/kfs/rawlog_unsafe.ml" 3;
      e F.R17_ack_before_durable "lib/kblock/journal.ml" 1;
    ]
  in
  let regressions, progress = C.compare_counts ~baseline:base current in
  (match regressions with
  | [ r ] ->
      check Alcotest.string "one regression, in the grown file" "lib/kfs/rawlog_unsafe.ml"
        r.C.d_file;
      check Alcotest.int "live count" 3 r.C.d_have;
      check Alcotest.int "grandfathered count" 2 r.C.d_allowed
  | _ -> Alcotest.fail "expected exactly one regression");
  match progress with
  | [ p ] -> check Alcotest.int "the shrunk file is progress" 1 p.C.d_have
  | _ -> Alcotest.fail "expected exactly one progress entry"

let test_kdur_wcache_reconciliation () =
  (* The runtime closure: export lines parse (malformed ones are hard
     errors), caches attribute to linted files by module basename, and a
     violation survives only when its file has no static R16 at all. *)
  let path = Filename.temp_file "kdur_wv" ".txt" in
  let oc = open_out path in
  output_string oc "rawlog_unsafe\t1\t5\t2\t6\n\nwc\t3\t1\t4\t2\n";
  close_out oc;
  (match D.read_wcache_violations path with
  | Ok [ a; b ] ->
      check Alcotest.string "cache" "rawlog_unsafe" a.D.cache;
      check Alcotest.int "read block" 1 a.D.v_blkno;
      check Alcotest.int "read seq" 5 a.D.v_read_seq;
      check Alcotest.int "write block" 2 a.D.v_write_blkno;
      check Alcotest.int "write seq" 6 a.D.v_write_seq;
      check Alcotest.string "blank lines skipped, second entry kept" "wc" b.D.cache
  | Ok other -> Alcotest.failf "expected two violations, got %d" (List.length other)
  | Error msg -> Alcotest.fail msg);
  let oc = open_out path in
  output_string oc "rawlog_unsafe\t1\t5\tnope\t6\n";
  close_out oc;
  (match D.read_wcache_violations path with
  | Ok _ -> Alcotest.fail "malformed line parsed"
  | Error _ -> ());
  Sys.remove path;
  let files = [ "lib/kfs/rawlog_unsafe.ml"; "lib/kblock/wcache.ml" ] in
  let ev cache = { D.cache; v_blkno = 1; v_read_seq = 1; v_write_blkno = 2; v_write_seq = 2 } in
  let r16 =
    {
      F.rule = F.R16_unordered_write;
      file = "lib/kfs/rawlog_unsafe.ml";
      line = 1;
      col = 0;
      func = "f";
      message = "";
    }
  in
  check Alcotest.int "a statically flagged file is covered" 0
    (List.length
       (D.unflagged_wcache_violations ~files ~findings:[ r16 ] [ ev "rawlog_unsafe" ]));
  (match
     D.unflagged_wcache_violations ~files ~findings:[]
       [ ev "rawlog_unsafe"; ev "rawlog_unsafe" ]
   with
  | [ (cache, file, n) ] ->
      check Alcotest.string "uncovered cache survives" "rawlog_unsafe" cache;
      check Alcotest.string "attributed to its file" "lib/kfs/rawlog_unsafe.ml" file;
      check Alcotest.int "aggregated" 2 n
  | other -> Alcotest.failf "expected one unsound cache, got %d" (List.length other));
  check Alcotest.int "a cache naming no linted file is skipped" 0
    (List.length (D.unflagged_wcache_violations ~files ~findings:[] [ ev "wc" ]));
  check Alcotest.int "a mechanism-file cache is skipped by design" 0
    (List.length (D.unflagged_wcache_violations ~files ~findings:[] [ ev "wcache" ]))

(* Annotation grammar edge cases ----------------------------------------- *)

let test_annot_forms_and_merge () =
  (* Doc-comment and attribute forms on the same binding union; the .mli
     val's contract merges in on top. *)
  let root, _ =
    lint_tree_fixture
      [
        ( "lib/fixture/ann.ml",
          "(** @flushes: a *)\n\
           let f x = x [@@flushes \"b\"]\n\
           let g x = x [@@durable]\n\
           let h x = x\n" );
        ( "lib/fixture/ann.mli",
          "(** @orders_after: t *)\n\
           val f : 'a -> 'a\n\n\
           val g : 'a -> 'a\n\n\
           (** @durable *)\n\
           val h : 'a -> 'a\n" );
      ]
  in
  let files =
    List.filter_map
      (fun rel ->
        match Klint.Kparse.parse (Filename.concat root rel) with
        | Ok s -> Some (rel, s)
        | Error _ -> None)
      [ "lib/fixture/ann.ml" ]
  in
  let cg = Klint.Callgraph.build ~root files in
  let annot name =
    (List.find (fun f -> String.equal (Klint.Callgraph.name f) name)
       cg.Klint.Callgraph.funcs)
      .Klint.Callgraph.annot
  in
  check ids "doc and attribute forms union" [ "a"; "b" ] (annot "Ann.f").Klint.Annot.flushes;
  check ids "mli contract merges on top" [ "t" ] (annot "Ann.f").Klint.Annot.orders_after;
  check Alcotest.bool "attribute boolean form" true (annot "Ann.g").Klint.Annot.durable;
  check Alcotest.bool "mli-only boolean contract" true (annot "Ann.h").Klint.Annot.durable

let test_annot_unknown_marker_diagnostics () =
  (* The typo'd @must_hol that would silently weaken a contract is
     diagnosable; odoc's own tags and plain prose stay quiet. *)
  check ids "typo'd marker diagnosed" [ "@must_hol" ]
    (Klint.Annot.unknown_markers
       "Updates the size.\n@must_hol: i_lock\n@param n the new size\n@flushes: h\n");
  check ids "odoc tags and known markers stay quiet" []
    (Klint.Annot.unknown_markers
       "@see <url> docs\n@return the size\n@durable\n@orders_after: t\n");
  check ids "emails are not markers" []
    (Klint.Annot.unknown_markers "Contact dev@example.com about this.\n")

(* The shipped tree ------------------------------------------------------ *)

let with_repo_root f =
  (* dune runs tests from _build/default/test; the dune-project marker is
     only at the real root, so find_root lands on the source tree.  Skip
     quietly when the tree is not on disk (e.g. an installed test). *)
  match Klint.find_root () with
  | Some root when Sys.file_exists (Filename.concat root "lib") -> f root
  | _ -> ()

let test_shipped_tree_clean () =
  with_repo_root (fun root ->
      let tree = E.lint_tree ~root in
      check Alcotest.int "whole tree parses" 0 (List.length tree.E.parse_errors);
      check Alcotest.bool "the exhibits keep their findings" true (tree.E.findings <> []);
      let baseline =
        match B.load (Filename.concat root "klint.baseline") with
        | Ok b -> b
        | Error msg -> Alcotest.fail msg
      in
      let registry =
        Safeos_core.Boot.registry ~loc_of:(fun name -> Klint.registry_loc ~root name) ()
      in
      let r = E.reconcile ~registry ~baseline tree.E.findings in
      check Alcotest.int "shipped tree has no violations" 0 (List.length r.E.violations);
      check Alcotest.int "checked-in baseline is not stale" 0
        (List.length r.E.stale_baseline);
      (* every finding lands in a known subsystem *)
      List.iter
        (fun a -> check Alcotest.bool "attributed" true (a.E.sub <> "unmapped"))
        r.E.attributed;
      (* the report's level histogram is the registry's, verbatim *)
      let json = Klint.Report.to_json ~registry tree r in
      let contains needle =
        let nl = String.length needle and jl = String.length json in
        let rec at i = i + nl <= jl && (String.sub json i nl = needle || at (i + 1)) in
        at 0
      in
      List.iter
        (fun (level, n) ->
          let needle = Fmt.str "%S: %d" (Level.to_string level) n in
          check Alcotest.bool ("level_counts has " ^ needle) true (contains needle))
        (Safeos_core.Registry.level_counts registry);
      (* and every registered subsystem appears as a per-subsystem row *)
      List.iter
        (fun e ->
          let needle = Fmt.str "\"name\": %S" e.Safeos_core.Registry.name in
          check Alcotest.bool ("subsystem row " ^ needle) true (contains needle))
        (Safeos_core.Registry.all registry))

let test_kown_shipped_exhibits () =
  (* The acceptance pair: every seeded lifetime exhibit in memfs_unsafe
     is flagged (then baselined), and the ownership-safe twin carries
     zero R8–R11 findings. *)
  with_repo_root (fun root ->
      let tree = E.lint_tree ~root in
      let has rule =
        List.exists
          (fun f -> String.equal f.F.file "lib/kfs/memfs_unsafe.ml" && f.F.rule = rule)
          tree.E.findings
      in
      check Alcotest.bool "memfs_unsafe dangling store caught (R8)" true
        (has F.R8_use_after_free);
      check Alcotest.bool "memfs_unsafe double free caught (R9)" true (has F.R9_double_free);
      check Alcotest.bool "memfs_unsafe leak arm caught (R10)" true (has F.R10_error_leak);
      let owned_findings =
        List.filter
          (fun f -> String.equal f.F.file "lib/kfs/memfs_owned.ml" && is_own_rule f.F.rule)
          tree.E.findings
      in
      check Alcotest.int "memfs_owned is ownership-clean" 0 (List.length owned_findings))

let test_ktcb_shipped_tree () =
  (* The framekernel acceptance self-lint: on the shipped tree every
     R12/R13 lands in a declared exhibit, no frame export leaks an owned
     capability, the unsafe TCB is a strict minority of the kernel, and
     the checked-in count ratchet matches the live findings exactly. *)
  with_repo_root (fun root ->
      let tree = E.lint_tree ~root in
      let k = tree.E.ktcb in
      List.iter
        (fun (f : F.t) ->
          match f.F.rule with
          | F.R12_unsafe_primitive | F.R13_frame_bypass ->
              check Alcotest.bool (f.F.file ^ " is a declared exhibit") true
                (Fr.is_exhibit f.F.file)
          | F.R14_unsound_export ->
              Alcotest.fail ("unsound frame export shipped: " ^ f.F.file)
          | _ -> Alcotest.fail "foreign rule in ktcb findings")
        k.K.findings;
      check Alcotest.bool "the exhibits keep their specimens" true (k.K.findings <> []);
      check Alcotest.bool "memfs_unsafe stays an R12 specimen" true
        (List.exists
           (fun (f : F.t) ->
             f.F.rule = F.R12_unsafe_primitive
             && String.equal f.F.file "lib/kfs/memfs_unsafe.ml")
           k.K.findings);
      check Alcotest.bool "the frame exists" true (k.K.frame_files > 0);
      check Alcotest.bool "the frame surface is measured" true (k.K.surface_vals > 0);
      check Alcotest.bool "unsafe TCB is a strict minority" true
        (k.K.unsafe_loc * 2 < k.K.total_loc);
      let baseline =
        match K.load (Filename.concat root "tcb.baseline") with
        | Ok b -> b
        | Error msg -> Alcotest.fail msg
      in
      let regressions, progress =
        K.compare_counts ~baseline (K.counts_of_findings k.K.findings)
      in
      check Alcotest.int "no tcb regressions" 0 (List.length regressions);
      check Alcotest.int "checked-in tcb baseline is not stale" 0 (List.length progress);
      (* runtime heap traffic from the frame's own allocator is priced *)
      let files = Klint.Loc.ml_files_under ~root "lib" in
      let ev = { Klint.Kown.kind = "free"; heap = "kmem"; site = "s"; count = 1 } in
      check Alcotest.int "frame heap traffic is priced" 0
        (List.length (K.unsound_kmem_events ~files ~result:k [ ev ])))

let test_kdur_shipped_tree () =
  (* The durability acceptance self-lint: every R16-R18 on the shipped
     tree lands in a declared exhibit (the journal's ?barriers:false
     ablation paths or the rawlog specimen file), the rawlog exhibit
     keeps one specimen per rule, the annotated write paths are seen as
     contracts, and the checked-in count ratchet matches the live
     findings exactly. *)
  with_repo_root (fun root ->
      let tree = E.lint_tree ~root in
      let d = tree.E.kdur in
      check Alcotest.bool "the exhibits keep their findings" true (d.D.findings <> []);
      let exhibits = [ "lib/kblock/journal.ml"; "lib/kfs/rawlog_unsafe.ml" ] in
      List.iter
        (fun (f : F.t) ->
          check Alcotest.bool (f.F.file ^ " is a declared exhibit") true
            (List.mem f.F.file exhibits))
        d.D.findings;
      let rawlog_has rule =
        List.exists
          (fun (f : F.t) ->
            f.F.rule = rule && String.equal f.F.file "lib/kfs/rawlog_unsafe.ml")
          d.D.findings
      in
      check Alcotest.bool "rawlog keeps its R16 specimen" true
        (rawlog_has F.R16_unordered_write);
      check Alcotest.bool "rawlog keeps its R17 specimen" true
        (rawlog_has F.R17_ack_before_durable);
      check Alcotest.bool "rawlog keeps its R18 specimen" true
        (rawlog_has F.R18_barrier_elision);
      check Alcotest.bool "the journal mutant stays convicted" true
        (List.exists
           (fun (f : F.t) -> String.equal f.F.file "lib/kblock/journal.ml")
           d.D.findings);
      (* the annotated write paths registered as contracts *)
      check Alcotest.bool "durable contracts are seen" true (d.D.durable_funcs >= 4);
      check Alcotest.bool "ordering contracts are seen" true (d.D.ordering_funcs >= 2);
      check Alcotest.bool "the tree has flushing functions" true (d.D.flushing_funcs > 0);
      let baseline =
        match D.load_baseline (Filename.concat root "dur.baseline") with
        | Ok b -> b
        | Error msg -> Alcotest.fail msg
      in
      let regressions, progress =
        Klint.Baseline.Counts.compare_counts ~baseline
          (Klint.Baseline.Counts.of_findings d.D.findings)
      in
      check Alcotest.int "no dur regressions" 0 (List.length regressions);
      check Alcotest.int "checked-in dur baseline is not stale" 0 (List.length progress))

let test_loc_derivation () =
  with_repo_root (fun root ->
      match Klint.registry_loc ~root "tcp" with
      | None -> Alcotest.fail "tcp sources missing from the source map"
      | Some n ->
          check Alcotest.bool "tcp has code" true (n > 0);
          let registry =
            Safeos_core.Boot.registry
              ~loc_of:(fun name -> Klint.registry_loc ~root name)
              ()
          in
          (match Safeos_core.Registry.find registry "tcp" with
          | Some e -> check Alcotest.int "registry loc derived from source" n e.Safeos_core.Registry.loc
          | None -> Alcotest.fail "tcp not in the boot registry");
          check (Alcotest.option Alcotest.int) "unknown subsystem has no loc" None
            (Klint.registry_loc ~root "not_a_subsystem"))

(* kverify: the R15 "verified means checked" pass --------------------------- *)

module KV = Klint.Kverify

(* A throwaway registry with one Verified claim and one Type_safe one —
   just enough surface for the R15 predicate. *)
let toy_registry () =
  let r = Safeos_core.Registry.create () in
  let reg name level =
    ignore
      (Safeos_core.Registry.register r ~name ~kind:Safeos_core.Registry.File_system
         ~level
         ~iface:(Safeos_core.Interface.v ~name ~version:1 ~supports:Level.Verified [])
         ~loc:100 ~description:"fixture" ())
  in
  reg "provenfs" Level.Verified;
  reg "plainfs" Level.Type_safe;
  r

let test_kverify_scan_registrations () =
  (* The scanner keys on the literal Kharness.harness ~name ~subsystem
     call shape, wherever the module path puts it. *)
  let _, tree =
    lint_tree_fixture
      [
        ( "lib/fixture/reg.ml",
          "let h1 = Kharness.harness ~name:\"provenfs\" ~subsystem:\"provenfs\" packed\n\
           let h2 =\n\
          \  Harness.harness ~subsystem:\"other\" ~name:\"other.crash\" (pack ())\n\
           let not_one = harness_like ~name:\"x\" ~subsystem:\"y\" packed\n\
           let also_not = Kharness.harness ~name:\"z\" (pack ())\n" );
      ]
  in
  let regs = tree.E.kverify.KV.registrations in
  check Alcotest.int "two literal registrations found" 2 (List.length regs);
  let by_name n = List.find (fun r -> r.KV.reg_name = n) regs in
  check Alcotest.string "subsystem captured" "provenfs" (by_name "provenfs").KV.reg_subsystem;
  check Alcotest.string "label order does not matter" "other"
    (by_name "other.crash").KV.reg_subsystem;
  check Alcotest.string "file recorded" "lib/fixture/reg.ml" (by_name "provenfs").KV.reg_file;
  check Alcotest.int "line recorded" 1 (by_name "provenfs").KV.reg_line

let test_kverify_r15_fires_and_clears () =
  let registry = toy_registry () in
  (* no registrations at all: only the Verified claim is flagged *)
  (match KV.r15 ~registry { KV.registrations = [] } with
  | [ f ] ->
      check Alcotest.bool "rule is R15" true (f.F.rule = F.R15_unverified_claim);
      check Alcotest.bool "names the claiming subsystem" true
        (List.exists (fun sub -> sub = "provenfs")
           [ (String.split_on_char ' ' f.F.message |> fun ws -> List.nth ws 1) ]);
      (* Semantic bug class: forbidden exactly at the Verified rung *)
      check Alcotest.bool "violation at Verified" true
        (Level.prevents Level.Verified (F.bug_class f.F.rule));
      check Alcotest.bool "tolerated below Verified" false
        (Level.prevents Level.Ownership_safe (F.bug_class f.F.rule))
  | other -> Alcotest.fail (Fmt.str "expected one R15, got %d" (List.length other)));
  (* a registration for the right subsystem discharges the claim *)
  let covered =
    {
      KV.registrations =
        [ { KV.reg_name = "provenfs"; reg_subsystem = "provenfs";
            reg_file = "lib/x.ml"; reg_line = 1 } ];
    }
  in
  check Alcotest.int "covered claim is silent" 0 (List.length (KV.r15 ~registry covered));
  (* a harness for some *other* subsystem does not count *)
  let misdirected =
    {
      KV.registrations =
        [ { KV.reg_name = "plainfs"; reg_subsystem = "plainfs";
            reg_file = "lib/x.ml"; reg_line = 1 } ];
    }
  in
  check Alcotest.int "harness for another subsystem does not discharge it" 1
    (List.length (KV.r15 ~registry misdirected))

let test_kverify_shipped_tree_covered () =
  (* Every Verified claim in the boot registry must be backed by a
     kharness registration in the shipped sources — R15 on the real tree
     is empty, and stays empty only while that invariant holds. *)
  with_repo_root (fun root ->
      let tree = E.lint_tree ~root in
      let registry =
        Safeos_core.Boot.registry ~loc_of:(fun name -> Klint.registry_loc ~root name) ()
      in
      let regs = tree.E.kverify.KV.registrations in
      check Alcotest.bool "kharness registrations found" true (List.length regs >= 3);
      List.iter
        (fun sub ->
          check Alcotest.bool (sub ^ " covered") true
            (List.exists (fun r -> r.KV.reg_subsystem = sub) regs))
        [ "journalfs"; "cowfs" ];
      check Alcotest.int "no unverified Verified claims shipped" 0
        (List.length (KV.r15 ~registry tree.E.kverify));
      (* sanity: breaking the invariant would fire — a registry where
         a subsystem with no harness claims Verified *)
      let broken = toy_registry () in
      check Alcotest.int "an uncovered Verified claim would fire" 1
        (List.length (KV.r15 ~registry:broken tree.E.kverify)))

let test_kverify_coverage_ratchet () =
  let row name sub ops =
    {
      KV.cov_harness = name; cov_subsystem = sub; cov_ops = ops; cov_states = ops + 7;
      cov_crash_points = ops / 4; cov_crash_images = ops / 2; cov_skipped = 1;
      cov_divergences = 0; cov_deepest = -1; cov_fingerprint = "0123456789abcdef";
    }
  in
  let rows = [ row "journalfs" "journalfs" 1000; row "cowfs" "cowfs" 800 ] in
  (* row round-trip through the on-disk line format *)
  List.iter
    (fun r ->
      match KV.row_of_line (KV.row_to_line r) with
      | Ok r' -> check Alcotest.bool "row round-trips" true (r = r')
      | Error msg -> Alcotest.fail msg)
    rows;
  (match KV.row_of_line "harness x mangled" with
  | Ok _ -> Alcotest.fail "mangled row parsed?"
  | Error _ -> ());
  (* file round-trip *)
  let path = Filename.temp_file "kverify" ".coverage" in
  KV.save_coverage path rows;
  (match KV.load_coverage path with
  | Ok rows' -> check Alcotest.bool "coverage file round-trips" true (rows = rows')
  | Error msg -> Alcotest.fail msg);
  Sys.remove path;
  (* the floor aggregates, round-trips, and ratchets in both directions *)
  let f = KV.floor_of_rows rows in
  check Alcotest.int "floor harness count" 2 f.KV.min_harnesses;
  check Alcotest.int "floor ops sum" 1800 f.KV.min_ops;
  check Alcotest.int "floor crash-image sum" 900 f.KV.min_crash_images;
  (match KV.floor_of_string (KV.floor_to_string f) with
  | Ok f' -> check Alcotest.bool "floor round-trips" true (f = f')
  | Error msg -> Alcotest.fail msg);
  let regressions, progress =
    KV.compare_floor ~baseline:f (KV.floor_of_rows [ row "journalfs" "journalfs" 1000 ])
  in
  check Alcotest.bool "losing a harness regresses" true
    (List.exists (fun (m, _, _) -> m = "harnesses") regressions);
  check Alcotest.bool "fewer ops regress" true
    (List.exists (fun (m, _, _) -> m = "ops") regressions);
  check Alcotest.int "nothing improved" 0 (List.length progress);
  let regressions, progress =
    KV.compare_floor ~baseline:f
      (KV.floor_of_rows (row "micro" "journalfs" 200 :: rows))
  in
  check Alcotest.int "growing coverage is not a regression" 0 (List.length regressions);
  check Alcotest.bool "and is reported as progress" true (List.length progress >= 2)

let test_effective_loc () =
  let src =
    "(* header *)\n\n\
     let x = 1\n\
     (* multi\n\
    \   line (* nested *) comment\n\
    \   still comment *)\n\
     let y = \"(* not a comment *)\"\n"
  in
  check Alcotest.int "comments and blanks do not count" 2 (Klint.Loc.count_string src)

let () =
  Alcotest.run "klint"
    [
      ( "rules",
        [
          Alcotest.test_case "r1 unchecked cast" `Quick test_r1_unchecked_cast;
          Alcotest.test_case "r2 unchecked err-ptr" `Quick test_r2_unchecked_errptr;
          Alcotest.test_case "r3 lock balance" `Quick test_r3_lock_balance;
          Alcotest.test_case "r4 ownership bypass" `Quick test_r4_ownership_bypass;
          Alcotest.test_case "r5 must-check" `Quick test_r5_must_check;
          Alcotest.test_case "r7 annotation mismatch" `Quick test_r7_annotation_mismatch;
          Alcotest.test_case "parse error reported" `Quick test_parse_error_reported;
        ] );
      ( "kracer",
        [
          Alcotest.test_case "r6 through two call hops" `Quick test_kracer_r6_two_hops;
          Alcotest.test_case "annotated chain is clean" `Quick test_kracer_r6_annotated_clean;
          Alcotest.test_case "must_hold checked at call sites" `Quick
            test_kracer_r6_must_hold_call_site;
          Alcotest.test_case "static edges and predicted cycles" `Quick
            test_kracer_static_edges_and_cycles;
          Alcotest.test_case "runtime reconciliation" `Quick test_kracer_runtime_reconciliation;
          Alcotest.test_case "mli-side contracts" `Quick test_kracer_mli_annotation;
        ] );
      ( "kown",
        [
          Alcotest.test_case "r8 across a branch join" `Quick test_kown_r8_branch_join;
          Alcotest.test_case "consumes through two call hops" `Quick
            test_kown_interprocedural_consume;
          Alcotest.test_case "r10 error-path leak" `Quick test_kown_r10_error_path;
          Alcotest.test_case "r10 asymmetric sibling arm" `Quick test_kown_r10_sibling_arm;
          Alcotest.test_case "r11 borrow escapes" `Quick test_kown_r11_borrow_escape;
          Alcotest.test_case "attribute contracts override inference" `Quick
            test_kown_annotations;
          Alcotest.test_case "mli-side ownership contracts" `Quick test_kown_mli_annotation;
          Alcotest.test_case "kmem-event reconciliation" `Quick test_kown_kmem_events;
          Alcotest.test_case "ownership claim reconciliation" `Quick
            test_kown_reconcile_ownership_claim;
          Alcotest.test_case "baseline renumbering goes stale" `Quick
            test_kown_baseline_renumbering;
        ] );
      ( "reconcile",
        [
          Alcotest.test_case "cast under type-safe claim" `Quick test_reconcile_cast_violation;
          Alcotest.test_case "unbalanced lock under ownership claim" `Quick
            test_reconcile_lock_violation;
        ] );
      ( "baseline",
        [ Alcotest.test_case "round-trip and ratchet" `Quick test_baseline_roundtrip ] );
      ( "ktcb",
        [
          Alcotest.test_case "r12 direct primitive outside the frame" `Quick
            test_ktcb_r12_direct;
          Alcotest.test_case "r13 laundering through two hops" `Quick test_ktcb_r13_depth2;
          Alcotest.test_case "r13 blessed vs unexported frame surface" `Quick
            test_ktcb_r13_frame_surface;
          Alcotest.test_case "r14 owned capability export" `Quick
            test_ktcb_r14_unsound_export;
          Alcotest.test_case "tcb count ratchet round-trip" `Quick
            test_ktcb_baseline_ratchet;
          Alcotest.test_case "runtime reconciliation attribution" `Quick
            test_ktcb_runtime_reconciliation;
        ] );
      ( "kdur",
        [
          Alcotest.test_case "r16 read-back dependent write" `Quick test_kdur_r16_read_back;
          Alcotest.test_case "r16 match-bound read-back" `Quick test_kdur_r16_match_bind;
          Alcotest.test_case "r16 derived taint" `Quick test_kdur_r16_derived_taint;
          Alcotest.test_case "r17 ack before durable" `Quick test_kdur_r17_durable_ack;
          Alcotest.test_case "r18 obligation dropped at a wrapper" `Quick
            test_kdur_r18_obligation_dropped;
          Alcotest.test_case "dur count ratchet round-trip" `Quick
            test_kdur_baseline_roundtrip;
          Alcotest.test_case "wcache runtime reconciliation" `Quick
            test_kdur_wcache_reconciliation;
          Alcotest.test_case "annotation forms and mli merge" `Quick
            test_annot_forms_and_merge;
          Alcotest.test_case "unknown-marker diagnostics" `Quick
            test_annot_unknown_marker_diagnostics;
        ] );
      ( "kverify",
        [
          Alcotest.test_case "harness registrations scanned" `Quick
            test_kverify_scan_registrations;
          Alcotest.test_case "r15 fires and clears" `Quick test_kverify_r15_fires_and_clears;
          Alcotest.test_case "shipped Verified claims are covered" `Quick
            test_kverify_shipped_tree_covered;
          Alcotest.test_case "coverage rows, floor, ratchet" `Quick
            test_kverify_coverage_ratchet;
        ] );
      ( "tree",
        [
          Alcotest.test_case "shipped tree is violation-free" `Quick test_shipped_tree_clean;
          Alcotest.test_case "ownership exhibits caught, owned twin clean" `Quick
            test_kown_shipped_exhibits;
          Alcotest.test_case "frame confinement on the shipped tree" `Quick
            test_ktcb_shipped_tree;
          Alcotest.test_case "barrier discipline on the shipped tree" `Quick
            test_kdur_shipped_tree;
          Alcotest.test_case "registry loc derived from klint" `Quick test_loc_derivation;
          Alcotest.test_case "effective line counting" `Quick test_effective_loc;
        ] );
    ]
