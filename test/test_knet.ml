(* Tests for the network substrate: the TCP state machine, the socket
   layer in both shapes, and the AMP type-confusion case study. *)

let check = Alcotest.check
let fail = Alcotest.fail

let state_t = Alcotest.testable (Fmt.of_to_string Knet.Tcp.state_to_string) ( = )

let ok_or_fail = function Ok v -> v | Error e -> fail (Ksim.Errno.to_string e)

(* TCP ------------------------------------------------------------------------- *)

let established_pair () =
  let a = Knet.Tcp.create ~iss:100 () and b = Knet.Tcp.create ~iss:300 () in
  ok_or_fail (Knet.Tcp.listen b);
  ok_or_fail (Knet.Tcp.connect a);
  ignore (Knet.Tcp.run_link a b);
  (a, b)

let test_handshake () =
  let a, b = established_pair () in
  check state_t "client established" Knet.Tcp.Established (Knet.Tcp.state a);
  check state_t "server established" Knet.Tcp.Established (Knet.Tcp.state b)

let test_handshake_segment_count () =
  let a = Knet.Tcp.create () and b = Knet.Tcp.create () in
  ok_or_fail (Knet.Tcp.listen b);
  ok_or_fail (Knet.Tcp.connect a);
  let n = Knet.Tcp.run_link a b in
  check Alcotest.int "three-way handshake" 3 n

let test_data_transfer () =
  let a, b = established_pair () in
  ignore (ok_or_fail (Knet.Tcp.send a "hello "));
  ignore (ok_or_fail (Knet.Tcp.send a "world"));
  ignore (Knet.Tcp.run_link a b);
  check Alcotest.string "in-order delivery" "hello world" (Knet.Tcp.received b)

let test_bidirectional_transfer () =
  let a, b = established_pair () in
  ignore (ok_or_fail (Knet.Tcp.send a "ping"));
  ignore (ok_or_fail (Knet.Tcp.send b "pong"));
  ignore (Knet.Tcp.run_link a b);
  check Alcotest.string "a got" "pong" (Knet.Tcp.received a);
  check Alcotest.string "b got" "ping" (Knet.Tcp.received b)

let test_send_requires_connection () =
  let a = Knet.Tcp.create () in
  check Alcotest.bool "EPIPE when closed" true (Knet.Tcp.send a "x" = Error Ksim.Errno.EPIPE)

let test_active_close_teardown () =
  let a, b = established_pair () in
  ok_or_fail (Knet.Tcp.close a);
  ignore (Knet.Tcp.run_link a b);
  (* Half-closed: a waits for b's FIN, b may still send. *)
  check state_t "a fin-wait-2" Knet.Tcp.Fin_wait_2 (Knet.Tcp.state a);
  check state_t "b close-wait" Knet.Tcp.Close_wait (Knet.Tcp.state b);
  ok_or_fail (Knet.Tcp.close b);
  ignore (Knet.Tcp.run_link a b);
  check state_t "a time-wait" Knet.Tcp.Time_wait (Knet.Tcp.state a);
  check state_t "b closed" Knet.Tcp.Closed (Knet.Tcp.state b)

let test_simultaneous_close () =
  let a, b = established_pair () in
  ok_or_fail (Knet.Tcp.close a);
  ok_or_fail (Knet.Tcp.close b);
  ignore (Knet.Tcp.run_link a b);
  let terminal s = s = Knet.Tcp.Time_wait || s = Knet.Tcp.Closed in
  check Alcotest.bool "a terminal" true (terminal (Knet.Tcp.state a));
  check Alcotest.bool "b terminal" true (terminal (Knet.Tcp.state b))

let test_simultaneous_open () =
  let a = Knet.Tcp.create ~iss:100 () and b = Knet.Tcp.create ~iss:200 () in
  ok_or_fail (Knet.Tcp.connect a);
  ok_or_fail (Knet.Tcp.connect b);
  ignore (Knet.Tcp.run_link a b);
  (* Both sides sent SYN; both should at least leave SYN_SENT. *)
  check Alcotest.bool "a progressed" true (Knet.Tcp.state a <> Knet.Tcp.Syn_sent);
  check Alcotest.bool "b progressed" true (Knet.Tcp.state b <> Knet.Tcp.Syn_sent)

let test_rst_kills_connection () =
  let a, _b = established_pair () in
  Knet.Tcp.handle a (Knet.Tcp.plain_seg ~rst:true ());
  check state_t "reset" Knet.Tcp.Closed (Knet.Tcp.state a)

let test_stale_segment_ignored () =
  let a, b = established_pair () in
  ignore (ok_or_fail (Knet.Tcp.send a "abc"));
  ignore (Knet.Tcp.run_link a b);
  (* Replay the same data segment (stale seq): must not duplicate. *)
  Knet.Tcp.handle b (Knet.Tcp.plain_seg ~ack:true ~seq:101 ~payload:"abc" ());
  check Alcotest.string "no duplication" "abc" (Knet.Tcp.received b)

let test_listen_only_from_closed () =
  let a, _ = established_pair () in
  check Alcotest.bool "EINVAL" true (Knet.Tcp.listen a = Error Ksim.Errno.EINVAL)

let prop_random_segments_never_crash =
  (* Robustness: arbitrary segments never raise; the machine stays in a
     defined state.  (This is exactly what a C stack cannot promise.) *)
  QCheck2.Test.make ~name:"tcp survives arbitrary segments" ~count:300
    QCheck2.Gen.(
      list_size (int_range 1 30)
        (triple (quad bool bool bool bool) (pair (int_range 0 400) (int_range 0 400))
           (string_size ~gen:printable (int_range 0 5))))
    (fun segs ->
      let t = Knet.Tcp.create () in
      ignore (Knet.Tcp.listen t);
      List.iter
        (fun ((syn, ack, fin, rst), (seq, ack_no), payload) ->
          Knet.Tcp.handle t (Knet.Tcp.plain_seg ~syn ~ack ~fin ~rst ~seq ~ack_no ~payload ()))
        segs;
      ignore (Knet.Tcp.take_outbox t);
      true)

(* Socket layer ------------------------------------------------------------------- *)

let test_typed_socket_tcp () =
  let pair = ok_or_fail (Knet.Sock.Typed.socket_pair "tcp") in
  ok_or_fail (Knet.Sock.Typed.connect pair);
  check Alcotest.bool "connected" true (Knet.Sock.Typed.is_connected pair);
  ignore (ok_or_fail (Knet.Sock.Typed.send pair "data"));
  Knet.Sock.Typed.deliver pair;
  check Alcotest.string "delivered" "data" (Knet.Sock.Typed.received_at_peer pair)

let test_typed_socket_dgram () =
  let pair = ok_or_fail (Knet.Sock.Typed.socket_pair "dgram") in
  ok_or_fail (Knet.Sock.Typed.connect pair);
  ignore (ok_or_fail (Knet.Sock.Typed.send pair "gram"));
  Knet.Sock.Typed.deliver pair;
  check Alcotest.string "delivered" "gram" (Knet.Sock.Typed.received_at_peer pair)

let test_typed_socket_unknown_proto () =
  check Alcotest.bool "EINVAL" true
    (match Knet.Sock.Typed.socket_pair "sctp" with Error Ksim.Errno.EINVAL -> true | _ -> false)

let test_typed_protocols_listed () =
  check Alcotest.(list string) "registry" [ "dgram"; "tcp" ] (Knet.Sock.Typed.protocols ())

let test_dyn_socket_works_when_consistent () =
  let a = ok_or_fail (Knet.Sock.Dyn_style.socket "tcp") in
  let b = ok_or_fail (Knet.Sock.Dyn_style.socket "tcp") in
  ok_or_fail (Knet.Sock.Dyn_style.connect_tcp_pair a b);
  ignore (ok_or_fail (Knet.Sock.Dyn_style.send a "via void*"));
  Knet.Sock.Dyn_style.deliver_tcp ~src:a ~dst:b;
  check Alcotest.string "works while casts line up" "via void*" (Knet.Sock.Dyn_style.received b)

let test_dyn_socket_mismatch_is_eproto () =
  (* The whole Dyn_style vtable is migrated off cast_exn (the klint R1
     ratchet cleared this subsystem): a socket whose ops and private data
     disagree now sends EPROTO instead of oopsing with Type_confusion. *)
  let bad = Knet.Sock.Dyn_style.mismatched_socket () in
  (match Knet.Sock.Dyn_style.send bad "boom" with
  | Error Ksim.Errno.EPROTO -> ()
  | Ok _ -> fail "mismatched send must not succeed"
  | Error e -> fail ("expected EPROTO, got " ^ Ksim.Errno.to_string e));
  check Alcotest.string "mismatched receive reads empty" ""
    (Knet.Sock.Dyn_style.received bad)

let test_dyn_socket_checked_query_survives_mismatch () =
  let bad = Knet.Sock.Dyn_style.mismatched_socket () in
  check Alcotest.bool "checked query degrades gracefully" false
    (Knet.Sock.Dyn_style.is_connected bad)

(* AMP: the CVE-2020-12351 shape ----------------------------------------------------- *)

let test_amp_unsafe_honest_traffic () =
  let t = Knet.Amp.Unsafe.create () in
  Knet.Amp.Unsafe.register t ~channel:1 Knet.Amp.Control;
  Knet.Amp.Unsafe.register t ~channel:2 Knet.Amp.Data;
  ok_or_fail (Knet.Amp.Unsafe.receive t (Knet.Amp.encode_control ~channel:1 { op = 7; flags = 1 }));
  ok_or_fail (Knet.Amp.Unsafe.receive t (Knet.Amp.encode_data ~channel:2 { body = "payload" }));
  check Alcotest.(list int) "control op" [ 7 ] (Knet.Amp.Unsafe.control_ops t);
  check Alcotest.int "data bytes" 7 (Knet.Amp.Unsafe.data_bytes t)

let test_amp_unsafe_confusion_crashes () =
  let t = Knet.Amp.Unsafe.create () in
  Knet.Amp.Unsafe.register t ~channel:1 Knet.Amp.Control;
  let attack = Knet.Amp.confusion_packet ~control_channel:1 "evil" in
  match Knet.Amp.Unsafe.receive t attack with
  | _ -> fail "expected Type_confusion"
  | exception Ksim.Dyn.Type_confusion { expected; actual } ->
      check Alcotest.string "cast target" "amp.control_block" expected;
      check Alcotest.string "actual payload" "amp.data_payload" actual

let test_amp_typed_confusion_is_eproto () =
  let t = Knet.Amp.Typed.create () in
  Knet.Amp.Typed.register t ~channel:1 Knet.Amp.Control;
  let attack = Knet.Amp.confusion_packet ~control_channel:1 "evil" in
  check Alcotest.bool "EPROTO, no crash" true
    (Knet.Amp.Typed.receive t attack = Error Ksim.Errno.EPROTO);
  check Alcotest.(list int) "no op executed" [] (Knet.Amp.Typed.control_ops t)

let test_amp_typed_honest_traffic () =
  let t = Knet.Amp.Typed.create () in
  Knet.Amp.Typed.register t ~channel:1 Knet.Amp.Control;
  Knet.Amp.Typed.register t ~channel:2 Knet.Amp.Data;
  ok_or_fail (Knet.Amp.Typed.receive t (Knet.Amp.encode_control ~channel:1 { op = 3; flags = 0 }));
  ok_or_fail (Knet.Amp.Typed.receive t (Knet.Amp.encode_data ~channel:2 { body = "xy" }));
  check Alcotest.(list int) "ops" [ 3 ] (Knet.Amp.Typed.control_ops t);
  check Alcotest.int "bytes" 2 (Knet.Amp.Typed.data_bytes t)

let test_amp_unknown_channel () =
  let t = Knet.Amp.Typed.create () in
  check Alcotest.bool "EINVAL" true
    (Knet.Amp.Typed.receive t (Knet.Amp.encode_data ~channel:9 { body = "x" })
    = Error Ksim.Errno.EINVAL)

let test_amp_malformed () =
  match Knet.Amp.claimed_kind "" with
  | _ -> fail "expected Malformed"
  | exception Knet.Amp.Malformed _ -> ()

let prop_typed_amp_never_crashes =
  QCheck2.Test.make ~name:"typed AMP stack survives arbitrary packets" ~count:300
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 20))
    (fun packet ->
      let t = Knet.Amp.Typed.create () in
      Knet.Amp.Typed.register t ~channel:1 Knet.Amp.Control;
      Knet.Amp.Typed.register t ~channel:2 Knet.Amp.Data;
      match Knet.Amp.Typed.receive t packet with
      | Ok () | Error _ -> true
      | exception Knet.Amp.Malformed _ -> true)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "knet"
    [
      ( "tcp",
        Alcotest.test_case "handshake" `Quick test_handshake
        :: Alcotest.test_case "handshake segments" `Quick test_handshake_segment_count
        :: Alcotest.test_case "data transfer" `Quick test_data_transfer
        :: Alcotest.test_case "bidirectional" `Quick test_bidirectional_transfer
        :: Alcotest.test_case "send requires connection" `Quick test_send_requires_connection
        :: Alcotest.test_case "active close" `Quick test_active_close_teardown
        :: Alcotest.test_case "simultaneous close" `Quick test_simultaneous_close
        :: Alcotest.test_case "simultaneous open" `Quick test_simultaneous_open
        :: Alcotest.test_case "rst" `Quick test_rst_kills_connection
        :: Alcotest.test_case "stale segment ignored" `Quick test_stale_segment_ignored
        :: Alcotest.test_case "listen from closed only" `Quick test_listen_only_from_closed
        :: qcheck [ prop_random_segments_never_crash ] );
      ( "sock",
        [
          Alcotest.test_case "typed tcp" `Quick test_typed_socket_tcp;
          Alcotest.test_case "typed dgram" `Quick test_typed_socket_dgram;
          Alcotest.test_case "unknown proto" `Quick test_typed_socket_unknown_proto;
          Alcotest.test_case "protocols listed" `Quick test_typed_protocols_listed;
          Alcotest.test_case "dyn-style consistent" `Quick test_dyn_socket_works_when_consistent;
          Alcotest.test_case "dyn-style mismatch is EPROTO" `Quick
            test_dyn_socket_mismatch_is_eproto;
          Alcotest.test_case "dyn-style checked query survives mismatch" `Quick
            test_dyn_socket_checked_query_survives_mismatch;
        ] );
      ( "amp",
        Alcotest.test_case "unsafe honest traffic" `Quick test_amp_unsafe_honest_traffic
        :: Alcotest.test_case "unsafe confusion crashes" `Quick test_amp_unsafe_confusion_crashes
        :: Alcotest.test_case "typed confusion is EPROTO" `Quick test_amp_typed_confusion_is_eproto
        :: Alcotest.test_case "typed honest traffic" `Quick test_amp_typed_honest_traffic
        :: Alcotest.test_case "unknown channel" `Quick test_amp_unknown_channel
        :: Alcotest.test_case "malformed" `Quick test_amp_malformed
        :: qcheck [ prop_typed_amp_never_crashes ] );
    ]
