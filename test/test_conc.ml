(* Tests for the concurrent extension of sequential verification (§4.4):
   pure computations over immutable snapshots are schedule-insensitive;
   shared mutation is not, and the simulator can tell the two apart. *)

open Kspec

let check = Alcotest.check
let fail = Alcotest.fail
let p = Fs_spec.path_of_string

let populated_state () =
  let ops =
    [
      Fs_spec.Mkdir (p "/a");
      Fs_spec.Mkdir (p "/a/b");
      Fs_spec.Create (p "/a/b/deep");
      Fs_spec.Write { file = p "/a/b/deep"; off = 0; data = "0123456789" };
      Fs_spec.Create (p "/top");
      Fs_spec.Write { file = p "/top"; off = 0; data = "xyz" };
    ]
  in
  List.fold_left (fun st op -> fst (Fs_spec.step st op)) Fs_spec.empty ops

let test_outsourced_queries_deterministic () =
  let state = populated_state () in
  let report =
    Conc.outsource ~seeds:48 ~state
      [ Conc.count_files; Conc.count_dirs; Conc.total_bytes; Conc.max_depth ]
  in
  check Alcotest.bool "schedule-insensitive" true (Conc.is_deterministic report);
  check Alcotest.int "48 schedules" 48 report.Conc.schedules;
  match report.Conc.canonical with
  | Some [ files; dirs; bytes; depth ] ->
      check Alcotest.int "files" 2 files;
      check Alcotest.int "dirs" 2 dirs;
      check Alcotest.int "bytes" 13 bytes;
      check Alcotest.int "depth" 3 depth
  | _ -> fail "expected four results"

let test_hidden_mutation_detected () =
  (* A "pure" job with a shared side channel: its result depends on how
     the scheduler interleaved its peers — exactly what [outsource]
     exists to catch. *)
  let state = populated_state () in
  let shared = ref 0 in
  let sneaky _st =
    let v = !shared in
    Ksim.Kthread.yield ();
    shared := v + 1;
    v
  in
  let report = Conc.outsource ~seeds:48 ~state [ sneaky; sneaky; sneaky ] in
  check Alcotest.bool "schedule-sensitivity detected" false (Conc.is_deterministic report);
  check Alcotest.bool "no canonical result" true (report.Conc.canonical = None)

let test_single_job_trivially_deterministic () =
  let report = Conc.outsource ~seeds:8 ~state:(populated_state ()) [ Conc.count_files ] in
  check Alcotest.bool "deterministic" true (Conc.is_deterministic report)

let test_interpret_snapshot_is_immutable () =
  (* The snapshot taken from a live FS stays fixed while the FS mutates:
     outsourced readers and the writer cannot race by construction. *)
  let fs = Kfs.Memfs_typed.mkfs () in
  ignore (Kfs.Memfs_typed.apply fs (Fs_spec.Create (p "/f")));
  let snapshot = Kfs.Memfs_typed.interpret fs in
  ignore (Kfs.Memfs_typed.apply fs (Fs_spec.Write { file = p "/f"; off = 0; data = "mutated" }));
  ignore (Kfs.Memfs_typed.apply fs (Fs_spec.Create (p "/g")));
  let report = Conc.outsource ~seeds:16 ~state:snapshot [ Conc.count_files; Conc.total_bytes ] in
  check Alcotest.bool "deterministic over old snapshot" true (Conc.is_deterministic report);
  (match report.Conc.canonical with
  | Some [ files; bytes ] ->
      check Alcotest.int "sees one file" 1 files;
      check Alcotest.int "sees zero bytes" 0 bytes
  | _ -> fail "two results expected");
  check Alcotest.int "live fs moved on" 2 (Conc.count_files (Kfs.Memfs_typed.interpret fs))

let test_explore_lost_update_vs_locked () =
  (* Kthread.explore distinguishes the racy counter from the locked one. *)
  let racy_outcomes =
    Ksim.Kthread.explore ~seeds:24
      ~spawn_all:(fun sched ->
        let counter = ref 0 in
        for _ = 1 to 3 do
          ignore
            (Ksim.Kthread.spawn sched ~name:"inc" (fun () ->
                 let v = !counter in
                 Ksim.Kthread.yield ();
                 counter := v + 1;
                 (* park the final value where observe can see it *)
                 if v >= 0 then Ksim.Ktrace.emitf Ksim.Ktrace.global ~category:"racy" "%d" !counter))
        done)
      ~observe:(fun _ ->
        let n = Ksim.Ktrace.count Ksim.Ktrace.global ~category:"racy" in
        Ksim.Ktrace.clear Ksim.Ktrace.global;
        n)
      ()
  in
  (* Weak observation (emits per run constant) — just assert explore runs. *)
  check Alcotest.bool "explored" true (racy_outcomes <> []);
  (* Directly: the locked counter always reaches 3 across seeds. *)
  let locked_final seed =
    let sched = Ksim.Kthread.create ~seed () in
    let lock = Ksim.Klock.create ~name:"c" () in
    let counter = ref 0 in
    for _ = 1 to 3 do
      ignore
        (Ksim.Kthread.spawn sched ~name:"inc" (fun () ->
             Ksim.Klock.with_lock lock (fun () ->
                 let v = !counter in
                 Ksim.Kthread.yield ();
                 counter := v + 1)))
    done;
    Ksim.Kthread.run sched;
    !counter
  in
  List.iter
    (fun seed -> check Alcotest.int "locked counter exact" 3 (locked_final seed))
    [ 1; 5; 9; 13; 17 ];
  (* And the racy counter loses updates for at least one seed. *)
  let racy_final seed =
    let sched = Ksim.Kthread.create ~seed () in
    let counter = ref 0 in
    for _ = 1 to 3 do
      ignore
        (Ksim.Kthread.spawn sched ~name:"inc" (fun () ->
             let v = !counter in
             Ksim.Kthread.yield ();
             counter := v + 1))
    done;
    Ksim.Kthread.run sched;
    !counter
  in
  let finals = List.map racy_final [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  check Alcotest.bool "some update lost somewhere" true (List.exists (fun v -> v < 3) finals)

let test_concurrent_shared_lend_readers () =
  (* Ownership model 3 under real interleaving: many reader threads over
     one shared-lent region, across seeds — never a violation. *)
  List.iter
    (fun seed ->
      let ck = Ownership.Checker.create ~strict:true () in
      let cap = Ownership.Checker.alloc ck ~holder:"owner" ~size:64 in
      Ownership.Checker.fill ck cap 'd';
      let sched = Ksim.Kthread.create ~seed () in
      Ownership.Checker.lend_shared ck cap ~to_:[ "r1"; "r2"; "r3" ] ~f:(fun readers ->
          List.iter
            (fun r ->
              ignore
                (Ksim.Kthread.spawn sched ~name:r.Ownership.Cap.holder (fun () ->
                     for _ = 1 to 4 do
                       ignore (Ownership.Checker.read ck r ~off:0 ~len:8);
                       Ksim.Kthread.yield ()
                     done)))
            readers;
          Ksim.Kthread.run sched);
      Ownership.Checker.free ck cap;
      check Alcotest.int
        (Printf.sprintf "seed %d clean" seed)
        0
        (Ownership.Checker.violation_count ck))
    [ 1; 2; 3; 4; 5; 6 ]

let test_concurrent_writer_during_lend_caught () =
  (* The anti-property: a writer thread mutating during a shared lend is
     caught in every interleaving, not just some. *)
  List.iter
    (fun seed ->
      let ck = Ownership.Checker.create ~strict:false () in
      let cap = Ownership.Checker.alloc ck ~holder:"owner" ~size:64 in
      let sched = Ksim.Kthread.create ~seed () in
      Ownership.Checker.lend_shared ck cap ~to_:[ "reader" ] ~f:(fun readers ->
          (match readers with
          | [ r ] ->
              ignore
                (Ksim.Kthread.spawn sched ~name:"reader" (fun () ->
                     ignore (Ownership.Checker.read ck r ~off:0 ~len:4)))
          | _ -> assert false);
          ignore
            (Ksim.Kthread.spawn sched ~name:"rogue-writer" (fun () ->
                 Ksim.Kthread.yield ();
                 Ownership.Checker.write ck cap ~off:0 (Bytes.of_string "rogue")));
          Ksim.Kthread.run sched);
      check Alcotest.bool
        (Printf.sprintf "seed %d violation caught" seed)
        true
        (List.exists
           (fun (v : Ownership.Checker.violation) ->
             v.Ownership.Checker.kind = Ownership.Checker.Write_while_shared)
           (Ownership.Checker.violations ck)))
    [ 1; 2; 3; 4 ]

let test_lock_order_stable_across_interleavings () =
  (* Two writers taking s_lock -> i_lock in the program's one order:
     whatever the schedule, lockdep sees exactly that class edge and no
     inversion — the invariant kracer's static graph is reconciled
     against.  A third thread with the inverted order is then reported
     under every seed, not just the unlucky one. *)
  List.iter
    (fun seed ->
      let dep = Ksim.Lockdep.create () in
      let s_lock = Ksim.Klock.create ~lockdep:dep ~name:"s_lock" () in
      let i_lock = Ksim.Klock.create ~lockdep:dep ~name:"i_lock:1" () in
      let sched = Ksim.Kthread.create ~seed () in
      for _ = 1 to 2 do
        ignore
          (Ksim.Kthread.spawn sched ~name:"writer" (fun () ->
               Ksim.Klock.with_lock s_lock (fun () ->
                   Ksim.Kthread.yield ();
                   Ksim.Klock.with_lock i_lock (fun () -> Ksim.Kthread.yield ()))))
      done;
      Ksim.Kthread.run sched;
      check Alcotest.int (Printf.sprintf "seed %d: no inversion" seed) 0
        (Ksim.Lockdep.warning_count dep);
      check
        Alcotest.(list (pair string string))
        (Printf.sprintf "seed %d: the one edge" seed)
        [ ("s_lock", "i_lock:1") ]
        (Ksim.Lockdep.edges dep);
      let sched' = Ksim.Kthread.create ~seed () in
      ignore
        (Ksim.Kthread.spawn sched' ~name:"inverted" (fun () ->
             Ksim.Klock.with_lock i_lock (fun () ->
                 Ksim.Klock.with_lock s_lock (fun () -> ()))));
      Ksim.Kthread.run sched';
      check Alcotest.bool
        (Printf.sprintf "seed %d: inversion reported" seed)
        true
        (Ksim.Lockdep.warning_count dep >= 1))
    [ 1; 2; 3; 4; 5 ]

let prop_outsource_matches_sequential =
  (* Whatever the schedule, outsourced results equal sequential results. *)
  QCheck2.Test.make ~name:"outsourced results = sequential results" ~count:60
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let trace = Kfs.Workload.generate ~seed Kfs.Workload.Mixed ~ops:40 in
      let state =
        List.fold_left (fun st op -> fst (Fs_spec.step st op)) Fs_spec.empty trace
      in
      let jobs = [ Conc.count_files; Conc.count_dirs; Conc.total_bytes; Conc.max_depth ] in
      let sequential = List.map (fun job -> job state) jobs in
      let report = Conc.outsource ~seeds:8 ~state jobs in
      Conc.is_deterministic report && report.Conc.canonical = Some sequential)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "conc"
    [
      ( "outsource",
        Alcotest.test_case "pure queries deterministic" `Quick
          test_outsourced_queries_deterministic
        :: Alcotest.test_case "hidden mutation detected" `Quick test_hidden_mutation_detected
        :: Alcotest.test_case "single job" `Quick test_single_job_trivially_deterministic
        :: Alcotest.test_case "snapshot immutability" `Quick test_interpret_snapshot_is_immutable
        :: qcheck [ prop_outsource_matches_sequential ] );
      ( "interleaving",
        [
          Alcotest.test_case "lost update vs locked" `Quick test_explore_lost_update_vs_locked;
          Alcotest.test_case "shared-lend readers clean" `Quick
            test_concurrent_shared_lend_readers;
          Alcotest.test_case "rogue writer caught" `Quick
            test_concurrent_writer_during_lend_caught;
          Alcotest.test_case "lock order stable across interleavings" `Quick
            test_lock_order_stable_across_interleavings;
        ] );
    ]
