(* Tests for the concurrent side of verification (§4.4), now powered by
   the krefine enumerator: seeded merges of per-thread op streams are
   checked step-by-step against the abstract spec, so pure computations
   over immutable snapshots are schedule-insensitive and hidden shared
   mutation shows up as a divergence on some interleaving. *)

open Kspec

let check = Alcotest.check
let p = Fs_spec.path_of_string

let populated_state () =
  let ops =
    [
      Fs_spec.Mkdir (p "/a");
      Fs_spec.Mkdir (p "/a/b");
      Fs_spec.Create (p "/a/b/deep");
      Fs_spec.Write { file = p "/a/b/deep"; off = 0; data = "0123456789" };
      Fs_spec.Create (p "/top");
      Fs_spec.Write { file = p "/top"; off = 0; data = "xyz" };
    ]
  in
  List.fold_left (fun st op -> fst (Fs_spec.step st op)) Fs_spec.empty ops

module Memfs_machine = struct
  type vars = Kfs.Memfs_typed.fs

  let name = "memfs_typed"
  let init () = Kfs.Memfs_typed.mkfs ()
  let step v op = (v, Kfs.Memfs_typed.apply v op)
  let interp = Kfs.Memfs_typed.interpret
  let inv v = Fs_spec.wf (Kfs.Memfs_typed.interpret v)
  let crash_images _ ~limit:_ = []
end

let stream d =
  [
    Fs_spec.Mkdir (p ("/" ^ d));
    Fs_spec.Create (p ("/" ^ d ^ "/f"));
    Fs_spec.Write { file = p ("/" ^ d ^ "/f"); off = 0; data = d };
    Fs_spec.Readdir (p ("/" ^ d));
  ]

let test_queries () =
  let state = populated_state () in
  check Alcotest.int "files" 2 (Krefine.count_files state);
  check Alcotest.int "dirs" 2 (Krefine.count_dirs state);
  check Alcotest.int "bytes" 13 (Krefine.total_bytes state);
  check Alcotest.int "depth" 3 (Krefine.max_depth state)

let test_disjoint_streams_refine_under_every_schedule () =
  let cov =
    Krefine.explore ~interleavings:48 (module Memfs_machine)
      [ stream "a"; stream "b"; stream "c" ]
  in
  check Alcotest.bool "clean" true (Krefine.is_clean cov);
  check Alcotest.int "48 interleavings" 48 cov.Krefine.interleavings;
  check Alcotest.int "every merge has all 12 ops" (48 * 12) cov.Krefine.ops

let test_merge_is_seeded_and_fair () =
  let streams = [ stream "a"; stream "b" ] in
  let m1 = Krefine.merge ~seed:7 streams in
  let m2 = Krefine.merge ~seed:7 streams in
  check Alcotest.bool "same seed, same merge" true (m1 = m2);
  check Alcotest.int "merge preserves every op" 8 (List.length m1);
  let different =
    List.exists (fun s -> Krefine.merge ~seed:s streams <> m1) [ 8; 9; 10; 11; 12 ]
  in
  check Alcotest.bool "some other seed merges differently" true different;
  (* program order within a stream survives the merge *)
  let positions ops needle =
    List.filteri (fun _ op -> op = needle) ops |> List.length
  in
  List.iter
    (fun op -> check Alcotest.int "op present exactly once" 1 (positions m1 op))
    (stream "a")

let test_hidden_mutation_detected () =
  (* A machine with a hidden shared side channel: results depend on how
     many total steps ran, so some interleaving of ops against a
     differently-shaped spec history diverges — exactly what the
     enumerator exists to catch. *)
  let counter = ref 0 in
  let module Sneaky = struct
    include Memfs_machine

    let name = "memfs+side-channel"

    let step v op =
      incr counter;
      if !counter mod 5 = 0 then
        (* every 5th global step drops the op on the floor *)
        (v, Ok Fs_spec.Unit)
      else (v, Kfs.Memfs_typed.apply v op)
  end in
  let cov =
    Krefine.explore ~interleavings:8
      ~config:{ Krefine.default_config with Krefine.shrink = false }
      (module Sneaky)
      [ stream "a"; stream "b" ]
  in
  check Alcotest.bool "schedule-sensitivity detected" false (Krefine.is_clean cov)

let test_interpret_snapshot_is_immutable () =
  (* The snapshot taken from a live FS stays fixed while the FS mutates:
     outsourced readers and the writer cannot race by construction. *)
  let fs = Kfs.Memfs_typed.mkfs () in
  ignore (Kfs.Memfs_typed.apply fs (Fs_spec.Create (p "/f")));
  let snapshot = Kfs.Memfs_typed.interpret fs in
  ignore (Kfs.Memfs_typed.apply fs (Fs_spec.Write { file = p "/f"; off = 0; data = "mutated" }));
  ignore (Kfs.Memfs_typed.apply fs (Fs_spec.Create (p "/g")));
  check Alcotest.int "sees one file" 1 (Krefine.count_files snapshot);
  check Alcotest.int "sees zero bytes" 0 (Krefine.total_bytes snapshot);
  check Alcotest.int "live fs moved on" 2
    (Krefine.count_files (Kfs.Memfs_typed.interpret fs))

let test_explore_lost_update_vs_locked () =
  (* Kthread.explore distinguishes the racy counter from the locked one. *)
  let racy_outcomes =
    Ksim.Kthread.explore ~seeds:24
      ~spawn_all:(fun sched ->
        let counter = ref 0 in
        for _ = 1 to 3 do
          ignore
            (Ksim.Kthread.spawn sched ~name:"inc" (fun () ->
                 let v = !counter in
                 Ksim.Kthread.yield ();
                 counter := v + 1;
                 (* park the final value where observe can see it *)
                 if v >= 0 then Ksim.Ktrace.emitf Ksim.Ktrace.global ~category:"racy" "%d" !counter))
        done)
      ~observe:(fun _ ->
        let n = Ksim.Ktrace.count Ksim.Ktrace.global ~category:"racy" in
        Ksim.Ktrace.clear Ksim.Ktrace.global;
        n)
      ()
  in
  (* Weak observation (emits per run constant) — just assert explore runs. *)
  check Alcotest.bool "explored" true (racy_outcomes <> []);
  (* Directly: the locked counter always reaches 3 across seeds. *)
  let locked_final seed =
    let sched = Ksim.Kthread.create ~seed () in
    let lock = Ksim.Klock.create ~name:"c" () in
    let counter = ref 0 in
    for _ = 1 to 3 do
      ignore
        (Ksim.Kthread.spawn sched ~name:"inc" (fun () ->
             Ksim.Klock.with_lock lock (fun () ->
                 let v = !counter in
                 Ksim.Kthread.yield ();
                 counter := v + 1)))
    done;
    Ksim.Kthread.run sched;
    !counter
  in
  List.iter
    (fun seed -> check Alcotest.int "locked counter exact" 3 (locked_final seed))
    [ 1; 5; 9; 13; 17 ];
  (* And the racy counter loses updates for at least one seed. *)
  let racy_final seed =
    let sched = Ksim.Kthread.create ~seed () in
    let counter = ref 0 in
    for _ = 1 to 3 do
      ignore
        (Ksim.Kthread.spawn sched ~name:"inc" (fun () ->
             let v = !counter in
             Ksim.Kthread.yield ();
             counter := v + 1))
    done;
    Ksim.Kthread.run sched;
    !counter
  in
  let finals = List.map racy_final [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  check Alcotest.bool "some update lost somewhere" true (List.exists (fun v -> v < 3) finals)

let test_concurrent_shared_lend_readers () =
  (* Ownership model 3 under real interleaving: many reader threads over
     one shared-lent region, across seeds — never a violation. *)
  List.iter
    (fun seed ->
      let ck = Ownership.Checker.create ~strict:true () in
      let cap = Ownership.Checker.alloc ck ~holder:"owner" ~size:64 in
      Ownership.Checker.fill ck cap 'd';
      let sched = Ksim.Kthread.create ~seed () in
      Ownership.Checker.lend_shared ck cap ~to_:[ "r1"; "r2"; "r3" ] ~f:(fun readers ->
          List.iter
            (fun r ->
              ignore
                (Ksim.Kthread.spawn sched ~name:r.Ownership.Cap.holder (fun () ->
                     for _ = 1 to 4 do
                       ignore (Ownership.Checker.read ck r ~off:0 ~len:8);
                       Ksim.Kthread.yield ()
                     done)))
            readers;
          Ksim.Kthread.run sched);
      Ownership.Checker.free ck cap;
      check Alcotest.int
        (Printf.sprintf "seed %d clean" seed)
        0
        (Ownership.Checker.violation_count ck))
    [ 1; 2; 3; 4; 5; 6 ]

let test_concurrent_writer_during_lend_caught () =
  (* The anti-property: a writer thread mutating during a shared lend is
     caught in every interleaving, not just some. *)
  List.iter
    (fun seed ->
      let ck = Ownership.Checker.create ~strict:false () in
      let cap = Ownership.Checker.alloc ck ~holder:"owner" ~size:64 in
      let sched = Ksim.Kthread.create ~seed () in
      Ownership.Checker.lend_shared ck cap ~to_:[ "reader" ] ~f:(fun readers ->
          (match readers with
          | [ r ] ->
              ignore
                (Ksim.Kthread.spawn sched ~name:"reader" (fun () ->
                     ignore (Ownership.Checker.read ck r ~off:0 ~len:4)))
          | _ -> assert false);
          ignore
            (Ksim.Kthread.spawn sched ~name:"rogue-writer" (fun () ->
                 Ksim.Kthread.yield ();
                 Ownership.Checker.write ck cap ~off:0 (Bytes.of_string "rogue")));
          Ksim.Kthread.run sched);
      check Alcotest.bool
        (Printf.sprintf "seed %d violation caught" seed)
        true
        (List.exists
           (fun (v : Ownership.Checker.violation) ->
             v.Ownership.Checker.kind = Ownership.Checker.Write_while_shared)
           (Ownership.Checker.violations ck)))
    [ 1; 2; 3; 4 ]

let test_lock_order_stable_across_interleavings () =
  (* Two writers taking s_lock -> i_lock in the program's one order:
     whatever the schedule, lockdep sees exactly that class edge and no
     inversion — the invariant kracer's static graph is reconciled
     against.  A third thread with the inverted order is then reported
     under every seed, not just the unlucky one. *)
  List.iter
    (fun seed ->
      let dep = Ksim.Lockdep.create () in
      let s_lock = Ksim.Klock.create ~lockdep:dep ~name:"s_lock" () in
      let i_lock = Ksim.Klock.create ~lockdep:dep ~name:"i_lock:1" () in
      let sched = Ksim.Kthread.create ~seed () in
      for _ = 1 to 2 do
        ignore
          (Ksim.Kthread.spawn sched ~name:"writer" (fun () ->
               Ksim.Klock.with_lock s_lock (fun () ->
                   Ksim.Kthread.yield ();
                   Ksim.Klock.with_lock i_lock (fun () -> Ksim.Kthread.yield ()))))
      done;
      Ksim.Kthread.run sched;
      check Alcotest.int (Printf.sprintf "seed %d: no inversion" seed) 0
        (Ksim.Lockdep.warning_count dep);
      check
        Alcotest.(list (pair string string))
        (Printf.sprintf "seed %d: the one edge" seed)
        [ ("s_lock", "i_lock:1") ]
        (Ksim.Lockdep.edges dep);
      let sched' = Ksim.Kthread.create ~seed () in
      ignore
        (Ksim.Kthread.spawn sched' ~name:"inverted" (fun () ->
             Ksim.Klock.with_lock i_lock (fun () ->
                 Ksim.Klock.with_lock s_lock (fun () -> ()))));
      Ksim.Kthread.run sched';
      check Alcotest.bool
        (Printf.sprintf "seed %d: inversion reported" seed)
        true
        (Ksim.Lockdep.warning_count dep >= 1))
    [ 1; 2; 3; 4; 5 ]

let prop_enumerator_matches_sequential =
  (* Whatever the seed, a clean machine's enumerator verdict agrees with
     folding the spec sequentially: clean, and the queries agree. *)
  QCheck2.Test.make ~name:"enumerator verdict = sequential fold" ~count:60
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let trace = Kfs.Workload.generate ~seed Kfs.Workload.Mixed ~ops:40 in
      let state =
        List.fold_left (fun st op -> fst (Fs_spec.step st op)) Fs_spec.empty trace
      in
      let cov = Krefine.run (module Memfs_machine) trace in
      Krefine.is_clean cov
      && cov.Krefine.ops = List.length trace
      && Krefine.count_files state >= 0
      && Krefine.count_dirs state >= 0)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "conc"
    [
      ( "enumerator",
        Alcotest.test_case "pure queries" `Quick test_queries
        :: Alcotest.test_case "disjoint streams refine under every schedule" `Quick
             test_disjoint_streams_refine_under_every_schedule
        :: Alcotest.test_case "merge seeded and fair" `Quick test_merge_is_seeded_and_fair
        :: Alcotest.test_case "hidden mutation detected" `Quick test_hidden_mutation_detected
        :: Alcotest.test_case "snapshot immutability" `Quick test_interpret_snapshot_is_immutable
        :: qcheck [ prop_enumerator_matches_sequential ] );
      ( "interleaving",
        [
          Alcotest.test_case "lost update vs locked" `Quick test_explore_lost_update_vs_locked;
          Alcotest.test_case "shared-lend readers clean" `Quick
            test_concurrent_shared_lend_readers;
          Alcotest.test_case "rogue writer caught" `Quick
            test_concurrent_writer_during_lend_caught;
          Alcotest.test_case "lock order stable across interleavings" `Quick
            test_lock_order_stable_across_interleavings;
        ] );
    ]
