(* Tests for the VFS layer: the legacy-to-modular adapter, mount-table
   dispatch, namespace interpretation, and the fd layer. *)

open Kspec

let check = Alcotest.check
let fail = Alcotest.fail
let p = Fs_spec.path_of_string

let result_t : Fs_spec.result Alcotest.testable =
  Alcotest.testable Fs_spec.pp_result Fs_spec.equal_result

let errno_r pp_ok =
  Alcotest.result pp_ok (Alcotest.testable Ksim.Errno.pp Ksim.Errno.equal)

(* Iface ------------------------------------------------------------------ *)

let test_instance_accessors () =
  let inst = Kvfs.Iface.make (module Kfs.Memfs_typed) () in
  check Alcotest.string "name" "memfs_typed" (Kvfs.Iface.instance_name inst);
  check Alcotest.int "stage" 2 (Kvfs.Iface.instance_stage inst);
  check result_t "apply works" (Ok Fs_spec.Unit) (Kvfs.Iface.instance_apply inst (Create (p "/f")))

let test_legacy_adapter_decodes_errors () =
  let inst = Kvfs.Iface.make (module Kfs.Memfs_unsafe.Modular) () in
  check Alcotest.string "renamed" "memfs_unsafe+modular" (Kvfs.Iface.instance_name inst);
  check Alcotest.int "stage 1" 1 (Kvfs.Iface.instance_stage inst);
  check result_t "missing file" (Error Ksim.Errno.ENOENT)
    (Kvfs.Iface.instance_apply inst (Read { file = p "/nope"; off = 0; len = 4 }));
  check result_t "create" (Ok Fs_spec.Unit) (Kvfs.Iface.instance_apply inst (Create (p "/f")));
  check result_t "duplicate" (Error Ksim.Errno.EEXIST)
    (Kvfs.Iface.instance_apply inst (Create (p "/f")))

let test_legacy_adapter_write_roundtrip () =
  (* The adapter threads the void* between write_begin and write_end. *)
  let inst = Kvfs.Iface.make (module Kfs.Memfs_unsafe.Modular) () in
  ignore (Kvfs.Iface.instance_apply inst (Create (p "/f")));
  check result_t "write" (Ok Fs_spec.Unit)
    (Kvfs.Iface.instance_apply inst (Write { file = p "/f"; off = 0; data = "abc" }));
  check result_t "read" (Ok (Fs_spec.Data "abc"))
    (Kvfs.Iface.instance_apply inst (Read { file = p "/f"; off = 0; len = 8 }))

let test_errno_of_neg () =
  check Alcotest.bool "decodes ENOENT" true (Kvfs.Iface.errno_of_neg (-2) = Ksim.Errno.ENOENT);
  check Alcotest.bool "unknown becomes EINVAL" true
    (Kvfs.Iface.errno_of_neg (-9999) = Ksim.Errno.EINVAL)

(* Vfs ---------------------------------------------------------------------- *)

let mounted_vfs () =
  let vfs = Kvfs.Vfs.create () in
  (match Kvfs.Vfs.mount vfs ~at:[] (Kvfs.Iface.make (module Kfs.Memfs_typed) ()) with
  | Ok () -> ()
  | Error e -> fail (Ksim.Errno.to_string e));
  vfs

let test_mount_and_dispatch () =
  let vfs = mounted_vfs () in
  check result_t "create through vfs" (Ok Fs_spec.Unit) (Kvfs.Vfs.apply vfs (Create (p "/f")));
  check result_t "read through vfs" (Ok (Fs_spec.Data ""))
    (Kvfs.Vfs.apply vfs (Read { file = p "/f"; off = 0; len = 4 }))

let test_mount_busy_and_umount () =
  let vfs = mounted_vfs () in
  check (errno_r Alcotest.unit) "busy" (Error Ksim.Errno.EBUSY)
    (Kvfs.Vfs.mount vfs ~at:[] (Kvfs.Iface.make (module Kfs.Memfs_typed) ()));
  check (errno_r Alcotest.unit) "umount ok" (Ok ()) (Kvfs.Vfs.umount vfs ~at:[]);
  check (errno_r Alcotest.unit) "umount missing" (Error Ksim.Errno.EINVAL)
    (Kvfs.Vfs.umount vfs ~at:[])

let test_longest_prefix_wins () =
  let vfs = mounted_vfs () in
  ignore (Kvfs.Vfs.apply vfs (Mkdir (p "/mnt")));
  let sub = Kvfs.Iface.make (module Kfs.Cowfs) () in
  (match Kvfs.Vfs.mount vfs ~at:(p "/mnt") sub with Ok () -> () | Error e -> fail (Ksim.Errno.to_string e));
  (* A file under /mnt goes to the submount, rebased. *)
  check result_t "create in submount" (Ok Fs_spec.Unit)
    (Kvfs.Vfs.apply vfs (Create (p "/mnt/inner")));
  check result_t "submount sees rebased path" (Ok (Fs_spec.Attr { kind = `File; size = 0 }))
    (Kvfs.Iface.instance_apply sub (Stat (p "/inner")));
  (* The root mount does not see it. *)
  check result_t "root fs clean" (Error Ksim.Errno.ENOENT)
    (Kvfs.Vfs.apply vfs (Stat (p "/other")));
  check Alcotest.int "two mounts" 2 (List.length (Kvfs.Vfs.mounts vfs))

let test_cross_mount_rename_exdev () =
  let vfs = mounted_vfs () in
  ignore (Kvfs.Vfs.apply vfs (Mkdir (p "/mnt")));
  ignore (Kvfs.Vfs.mount vfs ~at:(p "/mnt") (Kvfs.Iface.make (module Kfs.Memfs_typed) ()));
  ignore (Kvfs.Vfs.apply vfs (Create (p "/file")));
  check result_t "EXDEV" (Error Ksim.Errno.EXDEV)
    (Kvfs.Vfs.apply vfs (Rename (p "/file", p "/mnt/file")));
  check result_t "same-mount rename fine" (Ok Fs_spec.Unit)
    (Kvfs.Vfs.apply vfs (Rename (p "/file", p "/file2")))

let test_namespace_interpretation () =
  let vfs = mounted_vfs () in
  ignore (Kvfs.Vfs.apply vfs (Mkdir (p "/mnt")));
  ignore (Kvfs.Vfs.mount vfs ~at:(p "/mnt") (Kvfs.Iface.make (module Kfs.Memfs_typed) ()));
  ignore (Kvfs.Vfs.apply vfs (Create (p "/top")));
  ignore (Kvfs.Vfs.apply vfs (Create (p "/mnt/inner")));
  let st = Kvfs.Vfs.interpret vfs in
  check Alcotest.bool "top visible" true (Fs_spec.Pathmap.mem (p "/top") st);
  check Alcotest.bool "mount point is dir" true (Fs_spec.is_dir st (p "/mnt"));
  check Alcotest.bool "inner re-rooted" true (Fs_spec.Pathmap.mem (p "/mnt/inner") st);
  check Alcotest.bool "well-formed" true (Fs_spec.wf st)

let test_fsync_fans_out () =
  let vfs = mounted_vfs () in
  ignore (Kvfs.Vfs.apply vfs (Mkdir (p "/j")));
  ignore (Kvfs.Vfs.mount vfs ~at:(p "/j") (Kvfs.Iface.make (module Kfs.Journalfs.Journaled_fs) ()));
  check result_t "fsync all mounts" (Ok Fs_spec.Unit) (Kvfs.Vfs.apply vfs Fsync)

let test_unmounted_path_enoent () =
  let vfs = Kvfs.Vfs.create () in
  check result_t "nothing mounted" (Error Ksim.Errno.ENOENT)
    (Kvfs.Vfs.apply vfs (Stat (p "/x")))

(* File_ops -------------------------------------------------------------------- *)

let make_fd_env () =
  let vfs = mounted_vfs () in
  Kvfs.File_ops.create vfs

let test_fd_open_write_read () =
  let t = make_fd_env () in
  let fd =
    match Kvfs.File_ops.openf t ~flags:[ Kvfs.File_ops.O_RDWR; Kvfs.File_ops.O_CREAT ] "/f" with
    | Ok fd -> fd
    | Error e -> fail (Ksim.Errno.to_string e)
  in
  check Alcotest.bool "fd >= 3" true (fd >= 3);
  check (errno_r Alcotest.int) "write" (Ok 5) (Kvfs.File_ops.write t fd "hello");
  (* Position advanced: read at EOF is empty. *)
  check (errno_r Alcotest.string) "read at eof" (Ok "") (Kvfs.File_ops.read t fd ~len:10);
  ignore (Kvfs.File_ops.lseek t fd 0 Kvfs.File_ops.SEEK_SET);
  check (errno_r Alcotest.string) "read from 0" (Ok "hello") (Kvfs.File_ops.read t fd ~len:10);
  check (errno_r Alcotest.unit) "close" (Ok ()) (Kvfs.File_ops.close t fd);
  check (errno_r Alcotest.string) "read after close" (Error Ksim.Errno.EBADF)
    (Kvfs.File_ops.read t fd ~len:1)

let test_fd_flags () =
  let t = make_fd_env () in
  (* O_RDONLY refuses writes. *)
  (match Kvfs.File_ops.openf t ~flags:[ Kvfs.File_ops.O_CREAT ] "/ro" with
  | Ok fd ->
      check (errno_r Alcotest.int) "read-only write" (Error Ksim.Errno.EBADF)
        (Kvfs.File_ops.write t fd "x")
  | Error e -> fail (Ksim.Errno.to_string e));
  (* O_WRONLY refuses reads. *)
  (match Kvfs.File_ops.openf t ~flags:[ Kvfs.File_ops.O_WRONLY ] "/ro" with
  | Ok fd ->
      check (errno_r Alcotest.string) "write-only read" (Error Ksim.Errno.EBADF)
        (Kvfs.File_ops.read t fd ~len:1)
  | Error e -> fail (Ksim.Errno.to_string e));
  (* Missing without O_CREAT. *)
  check Alcotest.bool "enoent" true
    (Kvfs.File_ops.openf t "/missing" = Error Ksim.Errno.ENOENT)

let test_fd_trunc_append () =
  let t = make_fd_env () in
  let wr path flags data =
    match Kvfs.File_ops.openf t ~flags path with
    | Ok fd ->
        ignore (Kvfs.File_ops.write t fd data);
        ignore (Kvfs.File_ops.close t fd)
    | Error e -> fail (Ksim.Errno.to_string e)
  in
  wr "/f" [ Kvfs.File_ops.O_WRONLY; Kvfs.File_ops.O_CREAT ] "0123456789";
  wr "/f" [ Kvfs.File_ops.O_WRONLY; Kvfs.File_ops.O_APPEND ] "ab";
  check (errno_r (Alcotest.pair (Alcotest.testable Fmt.nop ( = )) Alcotest.int)) "size 12"
    (Ok (`File, 12))
    (Kvfs.File_ops.stat t "/f");
  wr "/f" [ Kvfs.File_ops.O_WRONLY; Kvfs.File_ops.O_TRUNC ] "xy";
  check (errno_r (Alcotest.pair (Alcotest.testable Fmt.nop ( = )) Alcotest.int)) "truncated"
    (Ok (`File, 2))
    (Kvfs.File_ops.stat t "/f")

let test_fd_lseek () =
  let t = make_fd_env () in
  let fd =
    match Kvfs.File_ops.openf t ~flags:[ Kvfs.File_ops.O_RDWR; Kvfs.File_ops.O_CREAT ] "/f" with
    | Ok fd -> fd
    | Error e -> fail (Ksim.Errno.to_string e)
  in
  ignore (Kvfs.File_ops.write t fd "abcdef");
  check (errno_r Alcotest.int) "seek end" (Ok 6) (Kvfs.File_ops.lseek t fd 0 Kvfs.File_ops.SEEK_END);
  check (errno_r Alcotest.int) "seek cur back" (Ok 4)
    (Kvfs.File_ops.lseek t fd (-2) Kvfs.File_ops.SEEK_CUR);
  check (errno_r Alcotest.string) "read tail" (Ok "ef") (Kvfs.File_ops.read t fd ~len:10);
  check (errno_r Alcotest.int) "negative rejected" (Error Ksim.Errno.EINVAL)
    (Kvfs.File_ops.lseek t fd (-1) Kvfs.File_ops.SEEK_SET)

let test_fd_dir_ops () =
  let t = make_fd_env () in
  check (errno_r Alcotest.unit) "mkdir" (Ok ()) (Kvfs.File_ops.mkdir t "/d");
  (match Kvfs.File_ops.openf t ~flags:[ Kvfs.File_ops.O_CREAT ] "/d/f" with
  | Ok fd -> ignore (Kvfs.File_ops.close t fd)
  | Error e -> fail (Ksim.Errno.to_string e));
  check (errno_r Alcotest.(list string)) "readdir" (Ok [ "f" ]) (Kvfs.File_ops.readdir t "/d");
  check (errno_r Alcotest.unit) "rename" (Ok ()) (Kvfs.File_ops.rename t "/d/f" "/d/g");
  check (errno_r Alcotest.unit) "unlink" (Ok ()) (Kvfs.File_ops.unlink t "/d/g");
  check (errno_r Alcotest.unit) "rmdir" (Ok ()) (Kvfs.File_ops.rmdir t "/d");
  check (errno_r Alcotest.unit) "fsync" (Ok ()) (Kvfs.File_ops.fsync t);
  check Alcotest.int "no fds leaked" 0 (Kvfs.File_ops.open_fds t)

(* Property: VFS routing is exactly rebase-then-dispatch ------------------------- *)

let gen_name = QCheck2.Gen.oneofl [ "a"; "b"; "c" ]
let gen_rel_path = QCheck2.Gen.(list_size (int_range 1 2) gen_name)

let gen_sub_op =
  let open QCheck2.Gen in
  oneof
    [
      map (fun pa -> Fs_spec.Create pa) gen_rel_path;
      map (fun pa -> Fs_spec.Mkdir pa) gen_rel_path;
      map2
        (fun pa data -> Fs_spec.Write { file = pa; off = 0; data })
        gen_rel_path
        (string_size ~gen:(char_range 'a' 'z') (int_range 0 6));
      map (fun pa -> Fs_spec.Read { file = pa; off = 0; len = 8 }) gen_rel_path;
      map (fun pa -> Fs_spec.Unlink pa) gen_rel_path;
      map (fun pa -> Fs_spec.Stat pa) gen_rel_path;
      map (fun pa -> Fs_spec.Readdir pa) gen_rel_path;
    ]

let rebase_op prefix (op : Fs_spec.op) : Fs_spec.op =
  let re pa = prefix @ pa in
  match op with
  | Create pa -> Create (re pa)
  | Mkdir pa -> Mkdir (re pa)
  | Write { file; off; data } -> Write { file = re file; off; data }
  | Read { file; off; len } -> Read { file = re file; off; len }
  | Truncate (pa, n) -> Truncate (re pa, n)
  | Unlink pa -> Unlink (re pa)
  | Rmdir pa -> Rmdir (re pa)
  | Rename (a, b) -> Rename (re a, re b)
  | Readdir pa -> Readdir (re pa)
  | Stat pa -> Stat (re pa)
  | Fsync -> Fsync

let prop_vfs_routes_to_submount =
  QCheck2.Test.make ~name:"vfs dispatch = rebase + direct submount call" ~count:150
    QCheck2.Gen.(list_size (int_range 1 30) gen_sub_op)
    (fun ops ->
      (* Twin submounts: one reached through the VFS, one driven directly
         with rebased ops.  Results must agree op for op. *)
      let vfs = Kvfs.Vfs.create () in
      (match Kvfs.Vfs.mount vfs ~at:[] (Kvfs.Iface.make (module Kfs.Memfs_typed) ()) with
      | Ok () -> ()
      | Error _ -> assert false);
      ignore (Kvfs.Vfs.apply vfs (Mkdir (p "/sub")));
      (match Kvfs.Vfs.mount vfs ~at:(p "/sub") (Kvfs.Iface.make (module Kfs.Memfs_typed) ()) with
      | Ok () -> ()
      | Error _ -> assert false);
      let twin = Kvfs.Iface.make (module Kfs.Memfs_typed) () in
      List.for_all
        (fun op ->
          let via_vfs = Kvfs.Vfs.apply vfs (rebase_op (p "/sub") op) in
          let direct = Kvfs.Iface.instance_apply twin op in
          Fs_spec.equal_result via_vfs direct)
        ops)

(* Property: the fd layer against an independent model --------------------------- *)

type fd_model = {
  mutable m_content : string option; (* the single file, when it exists *)
  mutable m_pos : int option; (* position, when the fd is open *)
}

let prop_fd_layer_matches_model =
  (* A one-file model of open/write/read/lseek/close is enough to pin the
     fd layer's position arithmetic down. *)
  QCheck2.Test.make ~name:"fd layer matches the position model" ~count:200
    QCheck2.Gen.(
      list_size (int_range 1 25)
        (oneof
           [
             return `Open;
             map (fun s -> `Write s) (string_size ~gen:(char_range 'a' 'z') (int_range 1 6));
             map (fun n -> `Read n) (int_range 1 8);
             map (fun n -> `Seek n) (int_range 0 12);
             return `Close;
           ]))
    (fun script ->
      let vfs = Kvfs.Vfs.create () in
      (match Kvfs.Vfs.mount vfs ~at:[] (Kvfs.Iface.make (module Kfs.Memfs_typed) ()) with
      | Ok () -> ()
      | Error _ -> assert false);
      let t = Kvfs.File_ops.create vfs in
      let model = { m_content = None; m_pos = None } in
      let fd = ref (-1) in
      List.for_all
        (fun step ->
          match step with
          | `Open -> (
              match
                Kvfs.File_ops.openf t
                  ~flags:[ Kvfs.File_ops.O_RDWR; Kvfs.File_ops.O_CREAT ]
                  "/file"
              with
              | Ok f ->
                  (match !fd with
                  | -1 -> ()
                  | old -> ignore (Kvfs.File_ops.close t old));
                  fd := f;
                  if model.m_content = None then model.m_content <- Some "";
                  model.m_pos <- Some 0;
                  true
              | Error _ -> false)
          | `Write data -> (
              match (Kvfs.File_ops.write t !fd data, model.m_pos, model.m_content) with
              | Ok n, Some pos, Some content ->
                  model.m_content <- Some (Fs_spec.write_at content ~off:pos ~data);
                  model.m_pos <- Some (pos + n);
                  n = String.length data
              | Error Ksim.Errno.EBADF, None, _ -> true
              | _ -> false)
          | `Read len -> (
              match (Kvfs.File_ops.read t !fd ~len, model.m_pos, model.m_content) with
              | Ok data, Some pos, Some content ->
                  model.m_pos <- Some (pos + String.length data);
                  String.equal data (Fs_spec.read_at content ~off:pos ~len)
              | Error Ksim.Errno.EBADF, None, _ -> true
              | _ -> false)
          | `Seek n -> (
              match (Kvfs.File_ops.lseek t !fd n Kvfs.File_ops.SEEK_SET, model.m_pos) with
              | Ok pos, Some _ ->
                  model.m_pos <- Some n;
                  pos = n
              | Error Ksim.Errno.EBADF, None -> true
              | _ -> false)
          | `Close -> (
              match (Kvfs.File_ops.close t !fd, model.m_pos) with
              | Ok (), Some _ ->
                  model.m_pos <- None;
                  fd := -1;
                  true
              | Error Ksim.Errno.EBADF, None -> true
              | _ -> false))
        script)

(* Supervision -------------------------------------------------------------------
   A supervised memfs mount: the remake factory builds a fresh (empty)
   memfs, so a microreboot is observable as RAM state vanishing while
   the mount itself stays up.  Timing is exact on the simulated clock:
   op_cost 100 per call, backoff base 200 → one EINTR'd call between the
   oops and the reboot under the default policy. *)

let supervised_memfs ?policy () =
  let fp = Ksim.Failpoint.create ~seed:3 () in
  let make () = Kvfs.Iface.panicky ~fp (Kvfs.Iface.make (module Kfs.Memfs_typed) ()) in
  let vfs = Kvfs.Vfs.create () in
  (match Kvfs.Vfs.mount vfs ~at:[] ~remake:make ?policy (make ()) with
  | Ok () -> ()
  | Error e -> fail (Ksim.Errno.to_string e));
  (fp, vfs)

let arm_panic fp = Ksim.Failpoint.configure fp "module.panic" ~enabled:true ~times:1 ()

let test_supervised_mount_lifecycle () =
  let fp, vfs = supervised_memfs () in
  check result_t "healthy create" (Ok Fs_spec.Unit) (Kvfs.Vfs.apply vfs (Create (p "/pre")));
  arm_panic fp;
  check result_t "oops contained to EIO" (Error Ksim.Errno.EIO)
    (Kvfs.Vfs.apply vfs (Stat (p "/pre")));
  check result_t "quiesce drains with EINTR" (Error Ksim.Errno.EINTR)
    (Kvfs.Vfs.apply vfs (Stat (p "/pre")));
  (* First call past the backoff deadline microreboots; memfs state is
     RAM, so the new generation comes back empty. *)
  check result_t "rebooted: RAM state gone" (Error Ksim.Errno.ENOENT)
    (Kvfs.Vfs.apply vfs (Stat (p "/pre")));
  check Alcotest.int "epoch bumped" 1 (Kvfs.Vfs.epoch_at vfs (p "/pre"));
  check result_t "new generation works" (Ok Fs_spec.Unit)
    (Kvfs.Vfs.apply vfs (Create (p "/post")));
  match Kvfs.Vfs.supervisor_at vfs (p "/post") with
  | None -> fail "mount is not supervised"
  | Some sup ->
      check Alcotest.bool "healthy again" true
        (Ksim.Supervisor.state sup = Ksim.Supervisor.Healthy)

let test_fd_epoch_stamping_estale () =
  let fp, vfs = supervised_memfs () in
  let t = Kvfs.File_ops.create vfs in
  let fd =
    match Kvfs.File_ops.openf t ~flags:[ Kvfs.File_ops.O_RDWR; Kvfs.File_ops.O_CREAT ] "/f" with
    | Ok fd -> fd
    | Error e -> fail (Ksim.Errno.to_string e)
  in
  check Alcotest.(option int) "fd minted at epoch 0" (Some 0) (Kvfs.File_ops.fd_epoch t fd);
  check (errno_r Alcotest.int) "write through fd" (Ok 5) (Kvfs.File_ops.write t fd "hello");
  arm_panic fp;
  check (errno_r Alcotest.string) "oops through the fd is EIO" (Error Ksim.Errno.EIO)
    (Kvfs.File_ops.read t fd ~len:5);
  check (errno_r Alcotest.string) "quiesce through the fd is EINTR" (Error Ksim.Errno.EINTR)
    (Kvfs.File_ops.read t fd ~len:5);
  (* The critical ordering: this very call performs the deferred
     microreboot, and the staleness check runs inside the containment
     thunk — the dead-generation fd must answer ESTALE rather than read
     the rebuilt instance. *)
  check (errno_r Alcotest.string) "reboot-triggering read is ESTALE" (Error Ksim.Errno.ESTALE)
    (Kvfs.File_ops.read t fd ~len:5);
  check Alcotest.int "mount is at epoch 1" 1 (Kvfs.Vfs.epoch_at vfs (p "/f"));
  check (errno_r Alcotest.int) "stale write is ESTALE" (Error Ksim.Errno.ESTALE)
    (Kvfs.File_ops.write t fd "x");
  check (errno_r Alcotest.unit) "stale epoch via validate_epoch" (Error Ksim.Errno.ESTALE)
    (Kvfs.Vfs.validate_epoch vfs (p "/f") 0);
  check (errno_r Alcotest.unit) "live epoch via validate_epoch" (Ok ())
    (Kvfs.Vfs.validate_epoch vfs (p "/f") 1);
  (* Reopening mints a handle against the live generation. *)
  match Kvfs.File_ops.openf t ~flags:[ Kvfs.File_ops.O_RDWR; Kvfs.File_ops.O_CREAT ] "/f" with
  | Error e -> fail (Ksim.Errno.to_string e)
  | Ok fd2 ->
      check Alcotest.(option int) "fresh fd at epoch 1" (Some 1) (Kvfs.File_ops.fd_epoch t fd2);
      check (errno_r Alcotest.string) "fresh fd reads (empty new RAM)" (Ok "")
        (Kvfs.File_ops.read t fd2 ~len:5)

let test_degraded_reads_only () =
  (* Budget 0: the first oops escalates straight to Failed.  No reboot
     ever runs, so the last live instance still holds the data and the
     degraded mount serves it — reads only. *)
  let policy = { Ksim.Supervisor.default_policy with Ksim.Supervisor.restart_budget = 0 } in
  let fp, vfs = supervised_memfs ~policy () in
  let t = Kvfs.File_ops.create vfs in
  check result_t "create" (Ok Fs_spec.Unit) (Kvfs.Vfs.apply vfs (Create (p "/keep")));
  check result_t "write" (Ok Fs_spec.Unit)
    (Kvfs.Vfs.apply vfs (Write { file = p "/keep"; off = 0; data = "safe" }));
  let fd =
    match Kvfs.File_ops.openf t "/keep" with
    | Ok fd -> fd
    | Error e -> fail (Ksim.Errno.to_string e)
  in
  arm_panic fp;
  check result_t "oops" (Error Ksim.Errno.EIO) (Kvfs.Vfs.apply vfs (Stat (p "/keep")));
  check result_t "quiesce" (Error Ksim.Errno.EINTR) (Kvfs.Vfs.apply vfs (Stat (p "/keep")));
  check result_t "budget 0: escalation, not reboot" (Error Ksim.Errno.EIO)
    (Kvfs.Vfs.apply vfs (Stat (p "/keep")));
  (match Kvfs.Vfs.supervisor_at vfs (p "/keep") with
  | None -> fail "mount is not supervised"
  | Some sup ->
      check Alcotest.bool "Failed" true (Ksim.Supervisor.state sup = Ksim.Supervisor.Failed));
  check result_t "degraded read serves last live data" (Ok (Fs_spec.Data "safe"))
    (Kvfs.Vfs.apply vfs (Read { file = p "/keep"; off = 0; len = 4 }));
  check result_t "degraded stat works" (Ok (Fs_spec.Attr { kind = `File; size = 4 }))
    (Kvfs.Vfs.apply vfs (Stat (p "/keep")));
  check result_t "degraded mutation is EIO" (Error Ksim.Errno.EIO)
    (Kvfs.Vfs.apply vfs (Write { file = p "/keep"; off = 0; data = "no" }));
  check result_t "degraded unlink is EIO" (Error Ksim.Errno.EIO)
    (Kvfs.Vfs.apply vfs (Unlink (p "/keep")));
  (* The epoch never bumped (no successful reboot), so the pre-oops fd is
     still the live generation and reads through the degraded mount. *)
  check Alcotest.int "epoch still 0" 0 (Kvfs.Vfs.epoch_at vfs (p "/keep"));
  check (errno_r Alcotest.string) "pre-oops fd reads in degraded mode" (Ok "safe")
    (Kvfs.File_ops.read t fd ~len:4)

(* Vtypes ----------------------------------------------------------------------- *)

let test_inode_identity () =
  let a = Kvfs.Vtypes.make_inode Kvfs.Vtypes.Regular in
  let b = Kvfs.Vtypes.make_inode Kvfs.Vtypes.Directory in
  check Alcotest.bool "distinct inos" true (a.Kvfs.Vtypes.ino <> b.Kvfs.Vtypes.ino);
  check Alcotest.bool "own locks" true (a.Kvfs.Vtypes.i_lock != b.Kvfs.Vtypes.i_lock)

let test_inode_i_size_discipline () =
  let i = Kvfs.Vtypes.make_inode Kvfs.Vtypes.Regular in
  (* The "maybe protected" pattern: unlocked update is recorded. *)
  Ksim.Klock.Guarded.set i.Kvfs.Vtypes.i_size 10;
  check Alcotest.int "race recorded" 1 (Ksim.Klock.Guarded.races i.Kvfs.Vtypes.i_size);
  Ksim.Klock.with_lock i.Kvfs.Vtypes.i_lock (fun () ->
      Ksim.Klock.Guarded.set i.Kvfs.Vtypes.i_size 20);
  check Alcotest.int "locked update clean" 1 (Ksim.Klock.Guarded.races i.Kvfs.Vtypes.i_size)

let () =
  Alcotest.run "kvfs"
    [
      ( "iface",
        [
          Alcotest.test_case "instance accessors" `Quick test_instance_accessors;
          Alcotest.test_case "legacy adapter errors" `Quick test_legacy_adapter_decodes_errors;
          Alcotest.test_case "legacy write roundtrip" `Quick test_legacy_adapter_write_roundtrip;
          Alcotest.test_case "errno_of_neg" `Quick test_errno_of_neg;
        ] );
      ( "vfs",
        [
          Alcotest.test_case "mount and dispatch" `Quick test_mount_and_dispatch;
          Alcotest.test_case "mount busy / umount" `Quick test_mount_busy_and_umount;
          Alcotest.test_case "longest prefix wins" `Quick test_longest_prefix_wins;
          Alcotest.test_case "cross-mount rename EXDEV" `Quick test_cross_mount_rename_exdev;
          Alcotest.test_case "namespace interpretation" `Quick test_namespace_interpretation;
          Alcotest.test_case "fsync fans out" `Quick test_fsync_fans_out;
          Alcotest.test_case "nothing mounted" `Quick test_unmounted_path_enoent;
        ] );
      ( "file_ops",
        [
          Alcotest.test_case "open/write/read" `Quick test_fd_open_write_read;
          Alcotest.test_case "flags" `Quick test_fd_flags;
          Alcotest.test_case "trunc/append" `Quick test_fd_trunc_append;
          Alcotest.test_case "lseek" `Quick test_fd_lseek;
          Alcotest.test_case "dir ops" `Quick test_fd_dir_ops;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "supervised mount lifecycle" `Quick test_supervised_mount_lifecycle;
          Alcotest.test_case "fd epoch stamping / ESTALE" `Quick test_fd_epoch_stamping_estale;
          Alcotest.test_case "degraded reads-only" `Quick test_degraded_reads_only;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_vfs_routes_to_submount; prop_fd_layer_matches_model ] );
      ( "vtypes",
        [
          Alcotest.test_case "inode identity" `Quick test_inode_identity;
          Alcotest.test_case "i_size discipline" `Quick test_inode_i_size_discipline;
        ] );
    ]
