(* The torture rig: seeded fault schedules against the full resilience
   stack, then a crash, recovery, and a crash-safety spec re-check.

   Stack under test:

     Journalfs (Journaled)  — aborts + errors=remount-ro on permanent EIO
       Resilient            — bounded retries, deterministic backoff
         Flakydev           — failpoint-driven EIO / torn writes
           Blockdev         — volatile write cache, crash = cache drop

   Everything is driven by one integer seed: the workload, the fault
   schedule (via [Ksim.Failpoint]) and the tear offsets are all derived
   from it, so every run is exactly replayable. *)

open Kspec

let check = Alcotest.check
let fail = Alcotest.fail

(* Base seeds, plus any extras from the environment: CI runs the whole
   rig again under KSIM_TORTURE_SEEDS="101,202,303" to widen the net
   without slowing the default edit loop. *)
let seeds =
  let base = [ 11; 23; 47 ] in
  match Sys.getenv_opt "KSIM_TORTURE_SEEDS" with
  | None | Some "" -> base
  | Some extra ->
      base @ (String.split_on_char ',' extra |> List.filter_map int_of_string_opt)

let geometry = Kfs.Journalfs.default_geometry

(* One full stack over a fresh device.  The registry gets its own trace so
   [Failpoint.schedule] fingerprints are per-run, not polluted by the
   shared global trace. *)
let mk_stack ~seed =
  let dev = Kblock.Blockdev.create ~nblocks:geometry.nblocks ~block_size:geometry.block_size in
  let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed () in
  let flaky = Kblock.Flakydev.create ~fp (Kblock.Blockdev.io dev) in
  let resilient = Kblock.Resilient.create ~max_attempts:6 (Kblock.Flakydev.io flaky) in
  let fs = Kfs.Journalfs.mkfs_on ~io:(Kblock.Resilient.io resilient) Kfs.Journalfs.Journaled dev in
  (dev, fp, flaky, resilient, fs)

(* A deterministic workload over a small path space: creates, overwrites,
   unlinks, reads and periodic fsyncs.  Benign errors (ENOENT, EEXIST...)
   are part of the history — the spec produces the same ones. *)
let gen_ops rng n =
  let p = Fs_spec.path_of_string in
  let files = [| "/a"; "/b"; "/c"; "/d" |] in
  let pick_file () = files.(Ksim.Rng.int rng (Array.length files)) in
  List.init n (fun i ->
      match Ksim.Rng.int rng 10 with
      | 0 | 1 -> Fs_spec.Create (p (pick_file ()))
      | 2 | 3 | 4 | 5 ->
          Fs_spec.Write { file = p (pick_file ()); off = 0; data = Printf.sprintf "data-%d" i }
      | 6 -> Fs_spec.Unlink (p (pick_file ()))
      | 7 -> Fs_spec.Read { file = p (pick_file ()); off = 0; len = 16 }
      | _ -> Fs_spec.Fsync)

let arm_faults fp =
  Ksim.Failpoint.configure fp "flaky.read-eio" ~enabled:true ~probability:0.3 ();
  Ksim.Failpoint.configure fp "flaky.write-eio" ~enabled:true ~probability:0.2 ();
  Ksim.Failpoint.configure fp "flaky.torn-write" ~enabled:true ~probability:0.1 ()

(* Run the faulty workload.  Ops that die of a surfaced EIO (or EROFS
   afterwards) never changed durable state and are excluded from the spec
   history; everything else executed exactly as the spec would. *)
let run_workload fs ops =
  let executed = ref [] in
  List.iter
    (fun op ->
      match Kfs.Journalfs.apply fs op with
      | Error (Ksim.Errno.EIO | Ksim.Errno.EROFS) -> ()
      | _ -> executed := op :: !executed)
    ops;
  List.rev !executed

type outcome = {
  schedule : string list;
  injected : int;
  recovered_state : Fs_spec.state;
  executed : Fs_spec.op list;
}

let run_torture ~seed =
  let dev, fp, flaky, _resilient, fs = mk_stack ~seed in
  arm_faults fp;
  let ops = gen_ops (Ksim.Rng.of_int seed) 40 in
  let executed = run_workload fs ops in
  (* Crash: the volatile cache is gone; mount replays the journal over a
     now-reliable device (the fault window is over). *)
  Kblock.Blockdev.crash dev;
  let healed = Kfs.Journalfs.mount ~geometry Kfs.Journalfs.Journaled dev in
  if Kfs.Journalfs.is_corrupt healed then fail (Printf.sprintf "seed %d: corrupt after recovery" seed);
  {
    schedule = Ksim.Failpoint.schedule fp;
    injected = Kblock.Flakydev.injected flaky;
    recovered_state = Kfs.Journalfs.interpret healed;
    executed;
  }

(* 1. Under a seeded fault storm, a crash at the end of the workload
   recovers to a state the crash-safe spec allows. *)
let test_seeded_storm_recovers_legally () =
  List.iter
    (fun seed ->
      let o = run_torture ~seed in
      check Alcotest.bool
        (Printf.sprintf "seed %d: faults actually injected" seed)
        true (o.injected > 0);
      check Alcotest.bool
        (Printf.sprintf "seed %d: recovery allowed by crash-safe spec" seed)
        true
        (Fs_spec.Crash_safe.is_allowed_recovery o.executed o.recovered_state))
    seeds

(* 2. Replayability: the same seed produces bit-identical fault schedules
   and final states; different seeds produce different schedules. *)
let test_fault_schedules_replayable () =
  let outcomes = List.map (fun seed -> (seed, run_torture ~seed, run_torture ~seed)) seeds in
  List.iter
    (fun (seed, a, b) ->
      check
        Alcotest.(list string)
        (Printf.sprintf "seed %d: identical schedule" seed)
        a.schedule b.schedule;
      check Alcotest.bool
        (Printf.sprintf "seed %d: identical recovered state" seed)
        true
        (Fs_spec.equal a.recovered_state b.recovered_state))
    outcomes;
  match outcomes with
  | (_, a, _) :: (_, b, _) :: _ ->
      check Alcotest.bool "distinct seeds, distinct schedules" true (a.schedule <> b.schedule)
  | _ -> fail "need at least two seeds"

(* 3. After recovery the healed FS is still crash-safe going forward:
   continue the history on the recovered image and re-check every crash
   image against the spec, seeded from the recovered state. *)
let test_post_recovery_crash_spec_recheck () =
  List.iter
    (fun seed ->
      let o = run_torture ~seed in
      (* Remount once more to get a handle backed by the same media. *)
      let p = Fs_spec.path_of_string in
      let post_ops =
        [
          Fs_spec.Create (p "/post");
          Fs_spec.Write { file = p "/post"; off = 0; data = "after the storm" };
          Fs_spec.Fsync;
          Fs_spec.Write { file = p "/post"; off = 0; data = "second wind" };
        ]
      in
      (* Rebuild the same pre-crash media by replaying the torture run
         deterministically, then crash + mount — [run_torture] already did
         exactly this, so just redo it to own the device. *)
      let dev, fp, _, _, fs = mk_stack ~seed in
      arm_faults fp;
      let executed = run_workload fs (gen_ops (Ksim.Rng.of_int seed) 40) in
      check Alcotest.bool "same executed history" true (executed = o.executed);
      Kblock.Blockdev.crash dev;
      let healed = Kfs.Journalfs.mount ~geometry Kfs.Journalfs.Journaled dev in
      let start = Kfs.Journalfs.interpret healed in
      (* The spec continues from the recovered state: durable = volatile =
         what recovery produced. *)
      let cstate = ref { Fs_spec.Crash_safe.durable = start; volatile = start } in
      let allowed = ref [ start ] in
      List.iteri
        (fun i op ->
          (match Kfs.Journalfs.apply healed op with
          | Ok _ -> ()
          | Error e -> fail (Printf.sprintf "seed %d post-op %d: %s" seed i (Ksim.Errno.to_string e)));
          let c', _ = Fs_spec.Crash_safe.step !cstate op in
          cstate := c';
          (* Crash here may recover to any volatile state since the last
             fsync; fsync collapses the allowed set. *)
          (match op with
          | Fs_spec.Fsync -> allowed := [ c'.Fs_spec.Crash_safe.volatile ]
          | _ -> allowed := c'.Fs_spec.Crash_safe.volatile :: !allowed);
          List.iteri
            (fun image_index image ->
              let recovered = Kfs.Journalfs.interpret image in
              if not (List.exists (fun s -> Fs_spec.equal s recovered) !allowed) then
                fail
                  (Printf.sprintf "seed %d: illegal recovery after post-op %d, image %d" seed i
                     image_index))
            (Kfs.Journalfs.crash_images healed ~limit:16))
        post_ops)
    seeds

(* 4. Graceful degradation: a persistent write failure (every attempt
   fails) flips the FS to errors=remount-ro instead of corrupting it. *)
let test_permanent_failure_remounts_readonly () =
  let dev, fp, _flaky, resilient, fs = mk_stack ~seed:5 in
  let p = Fs_spec.path_of_string in
  (* A little durable history first, while the device is healthy. *)
  (match Kfs.Journalfs.apply fs (Fs_spec.Create (p "/keep")) with
  | Ok _ -> ()
  | Error e -> fail (Ksim.Errno.to_string e));
  (match Kfs.Journalfs.apply fs (Fs_spec.Write { file = p "/keep"; off = 0; data = "safe" }) with
  | Ok _ -> ()
  | Error e -> fail (Ksim.Errno.to_string e));
  (match Kfs.Journalfs.apply fs Fs_spec.Fsync with
  | Ok _ -> ()
  | Error e -> fail (Ksim.Errno.to_string e));
  let incidents_before = List.length (Safeos_core.Audit.incidents ()) in
  (* Now the device fails every write, forever: retries must exhaust. *)
  Ksim.Failpoint.configure fp "flaky.write-eio" ~enabled:true ~probability:1.0 ();
  (match Kfs.Journalfs.apply fs (Fs_spec.Create (p "/doomed")) with
  | Error Ksim.Errno.EIO -> ()
  | r -> fail ("expected EIO, got " ^ Fmt.str "%a" (Fs_spec.pp_result) r));
  check Alcotest.bool "remounted read-only" true (Kfs.Journalfs.is_readonly fs);
  check Alcotest.bool "permanent verdict recorded" true
    (Kblock.Resilient.permanent_failures resilient >= 1);
  check Alcotest.bool "incident audited" true
    (List.length (Safeos_core.Audit.incidents ()) > incidents_before);
  (* ...and the latch behaves like ext4 errors=remount-ro. *)
  check Alcotest.bool "subsequent write EROFS" true
    (Kfs.Journalfs.apply fs (Fs_spec.Write { file = p "/keep"; off = 0; data = "no" })
    = Error Ksim.Errno.EROFS);
  check Alcotest.bool "subsequent unlink EROFS" true
    (Kfs.Journalfs.apply fs (Fs_spec.Unlink (p "/keep")) = Error Ksim.Errno.EROFS);
  check Alcotest.bool "reads still work" true
    (Kfs.Journalfs.apply fs (Fs_spec.Read { file = p "/keep"; off = 0; len = 4 })
    = Ok (Fs_spec.Data "safe"));
  check Alcotest.bool "fsync is a quiet no-op" true
    (Kfs.Journalfs.apply fs Fs_spec.Fsync = Ok Fs_spec.Unit);
  (* Crash-safety held through the abort: recovery sees the synced state. *)
  Kblock.Blockdev.crash dev;
  let healed = Kfs.Journalfs.mount ~geometry Kfs.Journalfs.Journaled dev in
  check Alcotest.bool "not corrupt" false (Kfs.Journalfs.is_corrupt healed);
  let executed =
    [
      Fs_spec.Create (p "/keep");
      Fs_spec.Write { file = p "/keep"; off = 0; data = "safe" };
      Fs_spec.Fsync;
    ]
  in
  check Alcotest.bool "recovery allowed by crash-safe spec" true
    (Fs_spec.Crash_safe.is_allowed_recovery executed (Kfs.Journalfs.interpret healed))

(* 5. The journal's abort accounting is visible: a failed commit bumps
   aborted_commits and leaves pending alone. *)
let test_aborted_commit_counted () =
  let _, fp, _, _, fs = mk_stack ~seed:9 in
  Ksim.Failpoint.configure fp "flaky.write-eio" ~enabled:true ~probability:1.0 ();
  let p = Fs_spec.path_of_string in
  (match Kfs.Journalfs.apply fs (Fs_spec.Create (p "/x")) with
  | Error Ksim.Errno.EIO -> ()
  | _ -> fail "expected EIO");
  match Kfs.Journalfs.journal_stats fs with
  | None -> fail "journaled fs has stats"
  | Some s ->
      check Alcotest.bool "abort counted" true (s.Kblock.Journal.aborted_commits >= 1)

(* --- Supervised-mount torture: module panics mid-workload ---------------

   The same journaled resilience stack, but mounted behind a
   [Ksim.Supervisor] with the panic shim ([Iface.panicky]) between the
   VFS and the file system.  A failpoint-scheduled oops must be contained
   to an [EIO], drain in-flight calls with [EINTR], microreboot by
   remounting the same device (journal replay), and strand pre-oops fds
   at the dead epoch ([ESTALE]) — all on the simulated clock, so every
   run replays bit-identically from the seed. *)

let sup_p = Fs_spec.path_of_string

let mk_supervised_stack ?policy ~seed () =
  let dev = Kblock.Blockdev.create ~nblocks:geometry.nblocks ~block_size:geometry.block_size in
  let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed () in
  let flaky = Kblock.Flakydev.create ~fp (Kblock.Blockdev.io dev) in
  let resilient = Kblock.Resilient.create ~max_attempts:6 (Kblock.Flakydev.io flaky) in
  let io = Kblock.Resilient.io resilient in
  let wrap fs =
    Kvfs.Iface.panicky ~fp (Kvfs.Iface.instance (module Kfs.Journalfs.Journaled_fs) fs)
  in
  let remake () = wrap (Kfs.Journalfs.mount ~geometry ~io Kfs.Journalfs.Journaled dev) in
  let first = Kfs.Journalfs.mkfs_on ~io Kfs.Journalfs.Journaled dev in
  let stats = Ksim.Kstats.create () in
  let vfs = Kvfs.Vfs.create () in
  (match Kvfs.Vfs.mount vfs ~at:(sup_p "/") ~remake ?policy ~stats (wrap first) with
  | Ok () -> ()
  | Error e -> fail ("supervised mount: " ^ Ksim.Errno.to_string e));
  (dev, fp, vfs, stats)

(* Ops that die of a contained oops ([EIO]), an [EINTR] drain, or a
   stale handle never reached durable state, so — like the surfaced-EIO
   exclusion in [run_workload] — they are not part of the spec history. *)
let run_supervised_workload vfs ops =
  let executed = ref [] in
  List.iter
    (fun op ->
      match Kvfs.Vfs.apply vfs op with
      | Error (Ksim.Errno.EIO | Ksim.Errno.EROFS | Ksim.Errno.EINTR | Ksim.Errno.ESTALE) -> ()
      | _ -> executed := op :: !executed)
    ops;
  List.rev !executed

type sup_outcome = {
  s_schedule : string list;
  s_executed : Fs_spec.op list;
  s_recovered : Fs_spec.state;
  s_epoch : int;
  s_oopses : int;
  s_clock : int;
  s_stale_errno : Ksim.Errno.t option;  (* what the pre-oops fd answered *)
  s_delta : (string * int) list;
}

let run_supervised_torture ~seed =
  let dev, fp, vfs, stats = mk_supervised_stack ~seed () in
  let fops = Kvfs.File_ops.create vfs in
  let before = Ksim.Kstats.snapshot stats in
  let front, back =
    let rec split i acc rest =
      if i = 0 then (List.rev acc, rest)
      else match rest with [] -> (List.rev acc, []) | x :: tl -> split (i - 1) (x :: acc) tl
    in
    split 20 [] (gen_ops (Ksim.Rng.of_int seed) 40)
  in
  let exec1 = run_supervised_workload vfs front in
  (* A handle minted against the healthy generation, about to be
     stranded. *)
  let exec_handle = run_supervised_workload vfs [ Fs_spec.Create (sup_p "/handle") ] in
  let fd =
    match Kvfs.File_ops.openf fops "/handle" with
    | Ok fd -> fd
    | Error e -> fail (Printf.sprintf "seed %d: open /handle: %s" seed (Ksim.Errno.to_string e))
  in
  (* The oops: the next entry into the module panics.  Containment turns
     it into EIO, the quiesce window drains with EINTR, and the first
     call past the backoff deadline remounts with journal replay. *)
  Ksim.Failpoint.configure fp "module.panic" ~enabled:true ~times:1 ();
  let exec2 = run_supervised_workload vfs back in
  let sup =
    match Kvfs.Vfs.supervisor_at vfs (sup_p "/") with
    | Some sup -> sup
    | None -> fail (Printf.sprintf "seed %d: mount is not supervised" seed)
  in
  let stale_errno =
    match Kvfs.File_ops.read fops fd ~len:8 with Error e -> Some e | Ok _ -> None
  in
  let outcome =
    {
      s_schedule = Ksim.Failpoint.schedule fp;
      s_executed = exec1 @ exec_handle @ exec2;
      s_recovered = Kvfs.Vfs.interpret vfs;
      s_epoch = Ksim.Supervisor.epoch sup;
      s_oopses = Ksim.Supervisor.oopses sup;
      s_clock = Ksim.Supervisor.clock sup;
      s_stale_errno = stale_errno;
      s_delta = Ksim.Kstats.diff ~before ~after:(Ksim.Kstats.snapshot stats);
    }
  in
  (* No unexpected escalation: one contained panic must never burn the
     whole restart budget. *)
  (match Ksim.Supervisor.state sup with
  | Ksim.Supervisor.Healthy -> ()
  | s ->
      fail
        (Printf.sprintf "seed %d: unexpected supervisor state %s" seed
           (Ksim.Supervisor.state_to_string s)));
  (dev, outcome)

(* 6. A module panic mid-workload is contained and microrebooted, the
   pre-oops fd answers ESTALE, and the recovered state — including a
   subsequent device crash — stays inside the crash-safety spec. *)
let test_supervised_panic_recovers () =
  List.iter
    (fun seed ->
      let dev, o = run_supervised_torture ~seed in
      check Alcotest.int (Printf.sprintf "seed %d: exactly one oops" seed) 1 o.s_oopses;
      check Alcotest.int (Printf.sprintf "seed %d: one microreboot, epoch 1" seed) 1 o.s_epoch;
      (match o.s_stale_errno with
      | Some Ksim.Errno.ESTALE -> ()
      | Some e ->
          fail (Printf.sprintf "seed %d: stale fd answered %s" seed (Ksim.Errno.to_string e))
      | None -> fail (Printf.sprintf "seed %d: stale fd still worked" seed));
      check
        Alcotest.(option int)
        (Printf.sprintf "seed %d: stats counted the oops" seed)
        (Some 1)
        (List.assoc_opt "supervisor.oopses" o.s_delta);
      check Alcotest.bool
        (Printf.sprintf "seed %d: stats counted the restart and the stale handle" seed)
        true
        (List.assoc_opt "supervisor.restarts" o.s_delta = Some 1
        && match List.assoc_opt "supervisor.stale_handles" o.s_delta with
           | Some n -> n >= 1
           | None -> false);
      check Alcotest.bool
        (Printf.sprintf "seed %d: live recovered state allowed by crash-safe spec" seed)
        true
        (Fs_spec.Crash_safe.is_allowed_recovery o.s_executed o.s_recovered);
      (* And a real crash on top of the microreboot is still legal. *)
      Kblock.Blockdev.crash dev;
      let healed = Kfs.Journalfs.mount ~geometry Kfs.Journalfs.Journaled dev in
      if Kfs.Journalfs.is_corrupt healed then
        fail (Printf.sprintf "seed %d: corrupt after post-reboot crash" seed);
      check Alcotest.bool
        (Printf.sprintf "seed %d: post-crash recovery allowed by crash-safe spec" seed)
        true
        (Fs_spec.Crash_safe.is_allowed_recovery o.s_executed (Kfs.Journalfs.interpret healed)))
    seeds

(* 7. The whole supervised run — schedule, executed history, recovered
   state, epochs, the simulated clock — replays bit-identically from the
   seed. *)
let test_supervised_torture_replayable () =
  List.iter
    (fun seed ->
      let _, a = run_supervised_torture ~seed in
      let _, b = run_supervised_torture ~seed in
      check
        Alcotest.(list string)
        (Printf.sprintf "seed %d: identical schedule" seed)
        a.s_schedule b.s_schedule;
      check Alcotest.bool
        (Printf.sprintf "seed %d: identical executed history" seed)
        true (a.s_executed = b.s_executed);
      check Alcotest.bool
        (Printf.sprintf "seed %d: identical recovered state" seed)
        true
        (Fs_spec.equal a.s_recovered b.s_recovered);
      check
        Alcotest.(pair int int)
        (Printf.sprintf "seed %d: identical epoch/clock" seed)
        (a.s_epoch, a.s_clock) (b.s_epoch, b.s_clock);
      check
        Alcotest.(list (pair string int))
        (Printf.sprintf "seed %d: identical stats delta" seed)
        a.s_delta b.s_delta)
    seeds

(* 8. Budget exhaustion: a module that panics on every entry burns the
   restart budget, escalates to Failed with an audited incident, and
   degrades to reads-only — stale fds still answer ESTALE, mutations
   answer EIO, and nothing ever unwinds as an exception. *)
let test_supervised_escalation_degrades_readonly () =
  let _dev, fp, vfs, stats = mk_supervised_stack ~seed:7 () in
  let must label op =
    match Kvfs.Vfs.apply vfs op with
    | Ok _ -> ()
    | Error e -> fail (label ^ ": " ^ Ksim.Errno.to_string e)
  in
  must "create" (Fs_spec.Create (sup_p "/keep"));
  must "write" (Fs_spec.Write { file = sup_p "/keep"; off = 0; data = "safe" });
  must "fsync" Fs_spec.Fsync;
  let fops = Kvfs.File_ops.create vfs in
  let stale_fd =
    match Kvfs.File_ops.openf fops "/keep" with
    | Ok fd -> fd
    | Error e -> fail ("open /keep: " ^ Ksim.Errno.to_string e)
  in
  let before = Ksim.Kstats.snapshot stats in
  let incidents_before = List.length (Safeos_core.Audit.incidents ()) in
  (* Default budget is 3 restarts: four panics exhaust it (the initial
     oops plus one per rebooted generation). *)
  Ksim.Failpoint.configure fp "module.panic" ~enabled:true ~times:4 ();
  let results =
    List.init 32 (fun i ->
        Kvfs.Vfs.apply vfs (Fs_spec.Write { file = sup_p "/keep"; off = 0; data = Printf.sprintf "w%d" i }))
  in
  List.iteri
    (fun i r ->
      match r with
      | Ok _ -> fail (Printf.sprintf "write %d succeeded during the panic storm" i)
      | Error (Ksim.Errno.EIO | Ksim.Errno.EINTR) -> ()
      | Error e -> fail (Printf.sprintf "write %d: unexpected %s" i (Ksim.Errno.to_string e)))
    results;
  let sup =
    match Kvfs.Vfs.supervisor_at vfs (sup_p "/") with
    | Some sup -> sup
    | None -> fail "mount is not supervised"
  in
  check Alcotest.string "escalated to Failed" "failed"
    (Ksim.Supervisor.state_to_string (Ksim.Supervisor.state sup));
  let delta = Ksim.Kstats.diff ~before ~after:(Ksim.Kstats.snapshot stats) in
  check Alcotest.(option int) "four oopses counted" (Some 4)
    (List.assoc_opt "supervisor.oopses" delta);
  check Alcotest.(option int) "three restarts counted" (Some 3)
    (List.assoc_opt "supervisor.restarts" delta);
  check Alcotest.(option int) "one escalation counted" (Some 1)
    (List.assoc_opt "supervisor.escalations" delta);
  check Alcotest.bool "each oops and the escalation audited" true
    (List.length (Safeos_core.Audit.incidents ()) >= incidents_before + 5);
  (* Degraded mode: reads-only.  The synced pre-storm data is served;
     mutations answer EIO; the pre-storm fd is stale even here. *)
  check Alcotest.bool "degraded read serves synced data" true
    (Kvfs.Vfs.apply vfs (Fs_spec.Read { file = sup_p "/keep"; off = 0; len = 4 })
    = Ok (Fs_spec.Data "safe"));
  check Alcotest.bool "degraded mutation is EIO" true
    (Kvfs.Vfs.apply vfs (Fs_spec.Unlink (sup_p "/keep")) = Error Ksim.Errno.EIO);
  check Alcotest.bool "stale fd is ESTALE in degraded mode" true
    (Kvfs.File_ops.read fops stale_fd ~len:4 = Error Ksim.Errno.ESTALE);
  (* A fresh fd minted at the final epoch reads through the degraded
     mount. *)
  match Kvfs.File_ops.openf fops "/keep" with
  | Error e -> fail ("reopen /keep: " ^ Ksim.Errno.to_string e)
  | Ok fd ->
      check Alcotest.bool "fresh fd reads in degraded mode" true
        (Kvfs.File_ops.read fops fd ~len:4 = Ok "safe")

let () =
  Alcotest.run "torture"
    [
      ( "fault-torture",
        [
          Alcotest.test_case "seeded storm recovers legally" `Quick
            test_seeded_storm_recovers_legally;
          Alcotest.test_case "fault schedules replayable" `Quick test_fault_schedules_replayable;
          Alcotest.test_case "post-recovery crash-spec re-check" `Quick
            test_post_recovery_crash_spec_recheck;
          Alcotest.test_case "permanent failure remounts read-only" `Quick
            test_permanent_failure_remounts_readonly;
          Alcotest.test_case "aborted commit counted" `Quick test_aborted_commit_counted;
        ] );
      ( "supervision-torture",
        [
          Alcotest.test_case "panic mid-workload recovers via microreboot" `Quick
            test_supervised_panic_recovers;
          Alcotest.test_case "supervised torture replayable" `Quick
            test_supervised_torture_replayable;
          Alcotest.test_case "budget exhaustion degrades to reads-only" `Quick
            test_supervised_escalation_degrades_readonly;
        ] );
    ]
