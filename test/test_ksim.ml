(* Tests for the kernel-simulation substrate: error codes, dynamic values,
   the manual allocator, locks, the scheduler, tracing, and the RNG. *)

let check = Alcotest.check
let fail = Alcotest.fail

(* Errno ------------------------------------------------------------------ *)

let test_errno_roundtrip () =
  List.iter
    (fun e ->
      match Ksim.Errno.of_code (Ksim.Errno.to_code e) with
      | Some e' -> check Alcotest.string "roundtrip" (Ksim.Errno.to_string e) (Ksim.Errno.to_string e')
      | None -> fail "of_code failed")
    Ksim.Errno.all

let test_errno_codes () =
  check Alcotest.int "ENOENT" 2 (Ksim.Errno.to_code Ksim.Errno.ENOENT);
  check Alcotest.int "EIO" 5 (Ksim.Errno.to_code Ksim.Errno.EIO);
  check Alcotest.int "EEXIST" 17 (Ksim.Errno.to_code Ksim.Errno.EEXIST);
  check Alcotest.int "EXDEV" 18 (Ksim.Errno.to_code Ksim.Errno.EXDEV);
  check Alcotest.int "EINVAL" 22 (Ksim.Errno.to_code Ksim.Errno.EINVAL)

let test_errno_unknown_code () =
  check Alcotest.bool "code 9999" true (Ksim.Errno.of_code 9999 = None)

let test_errno_bind () =
  let open Ksim.Errno in
  let r =
    let* x = ok 1 in
    let* y = ok 2 in
    ok (x + y)
  in
  check Alcotest.(result int string) "bind ok" (Ok 3)
    (Result.map_error to_string r);
  let r2 : int r =
    let* _ = error ENOENT in
    ok 1
  in
  check Alcotest.(result int string) "bind error" (Error "ENOENT")
    (Result.map_error to_string r2)

(* Dyn --------------------------------------------------------------------- *)

let int_key : int Ksim.Dyn.Key.t = Ksim.Dyn.Key.create ~name:"test.int"
let str_key : string Ksim.Dyn.Key.t = Ksim.Dyn.Key.create ~name:"test.string"

let test_dyn_roundtrip () =
  let d = Ksim.Dyn.inject int_key 42 in
  check Alcotest.(option int) "project" (Some 42) (Ksim.Dyn.project int_key d);
  check Alcotest.int "cast_exn" 42 (Ksim.Dyn.cast_exn int_key d)

let test_dyn_mismatch () =
  let d = Ksim.Dyn.inject int_key 42 in
  check Alcotest.(option string) "wrong key" None (Ksim.Dyn.project str_key d);
  match Ksim.Dyn.cast_exn str_key d with
  | _ -> fail "expected Type_confusion"
  | exception Ksim.Dyn.Type_confusion { expected; actual } ->
      check Alcotest.string "expected tag" "test.string" expected;
      check Alcotest.string "actual tag" "test.int" actual

let test_dyn_same_name_different_keys () =
  (* Two keys created with the same name must not unify: name is a label,
     identity is the witness. *)
  let k1 : int Ksim.Dyn.Key.t = Ksim.Dyn.Key.create ~name:"dup" in
  let k2 : int Ksim.Dyn.Key.t = Ksim.Dyn.Key.create ~name:"dup" in
  let d = Ksim.Dyn.inject k1 7 in
  check Alcotest.(option int) "other key misses" None (Ksim.Dyn.project k2 d)

let test_dyn_null () =
  check Alcotest.bool "is_null" true (Ksim.Dyn.is_null Ksim.Dyn.null);
  check Alcotest.(option int) "project null" None (Ksim.Dyn.project int_key Ksim.Dyn.null);
  match Ksim.Dyn.cast_exn int_key Ksim.Dyn.null with
  | _ -> fail "expected Null_dereference"
  | exception Ksim.Dyn.Null_dereference -> ()

let test_errptr () =
  let open Ksim.Dyn.Errptr in
  let p = of_ptr (Ksim.Dyn.inject int_key 1) in
  let e = of_err Ksim.Errno.ENOENT in
  check Alcotest.bool "ptr not err" false (is_err p);
  check Alcotest.bool "err is err" true (is_err e);
  check Alcotest.int "ptr_err of err" 2 (ptr_err e);
  check Alcotest.int "ptr_err of ptr" 0 (ptr_err p);
  check Alcotest.int "deref ptr" 1 (Ksim.Dyn.cast_exn int_key (deref p));
  (match deref e with
  | _ -> fail "deref of ERR_PTR must oops"
  | exception Ksim.Dyn.Null_dereference -> ());
  check Alcotest.bool "to_result err" true (to_result e = Error Ksim.Errno.ENOENT)

(* Kmem -------------------------------------------------------------------- *)

let test_kmem_alloc_read_write () =
  let heap = Ksim.Kmem.create ~name:"t" () in
  let p = Ksim.Kmem.alloc heap ~site:"here" "hello" in
  check Alcotest.string "read" "hello" (Ksim.Kmem.read p);
  Ksim.Kmem.write p "world";
  check Alcotest.string "after write" "world" (Ksim.Kmem.read p);
  check Alcotest.int "live" 1 (Ksim.Kmem.live_count heap);
  Ksim.Kmem.free p;
  check Alcotest.int "live after free" 0 (Ksim.Kmem.live_count heap);
  check Alcotest.int "allocated" 1 (Ksim.Kmem.allocated heap);
  check Alcotest.int "freed" 1 (Ksim.Kmem.freed heap)

let test_kmem_use_after_free () =
  let heap = Ksim.Kmem.create ~name:"t" () in
  let p = Ksim.Kmem.alloc heap ~site:"site1" 5 in
  Ksim.Kmem.free p;
  (match Ksim.Kmem.read p with
  | _ -> fail "expected Use_after_free"
  | exception Ksim.Kmem.Use_after_free { site; _ } ->
      check Alcotest.string "site" "site1" site);
  check Alcotest.int "uaf counted" 1 (Ksim.Kmem.uaf_events heap)

let test_kmem_double_free () =
  let heap = Ksim.Kmem.create ~name:"t" () in
  let p = Ksim.Kmem.alloc heap ~site:"s" () in
  Ksim.Kmem.free p;
  (match Ksim.Kmem.free p with
  | _ -> fail "expected Double_free"
  | exception Ksim.Kmem.Double_free _ -> ());
  check Alcotest.int "df counted" 1 (Ksim.Kmem.double_free_events heap)

let test_kmem_nonstrict_write_after_free () =
  let heap = Ksim.Kmem.create ~strict:false ~name:"t" () in
  let p = Ksim.Kmem.alloc heap ~site:"s" 1 in
  Ksim.Kmem.free p;
  Ksim.Kmem.write p 2 (* silently counted, like real C *);
  check Alcotest.int "uaf counted" 1 (Ksim.Kmem.uaf_events heap)

let test_kmem_leaks () =
  let heap = Ksim.Kmem.create ~name:"t" () in
  let _p1 = Ksim.Kmem.alloc heap ~site:"a" 1 in
  let p2 = Ksim.Kmem.alloc heap ~site:"b" 2 in
  Ksim.Kmem.free p2;
  match Ksim.Kmem.leaks heap with
  | [ { Ksim.Kmem.leak_site; _ } ] -> check Alcotest.string "leak site" "a" leak_site
  | l -> fail (Printf.sprintf "expected 1 leak, got %d" (List.length l))

let test_kmem_is_live () =
  let heap = Ksim.Kmem.create ~name:"t" () in
  let p = Ksim.Kmem.alloc heap ~site:"s" 0 in
  check Alcotest.bool "live" true (Ksim.Kmem.is_live p);
  Ksim.Kmem.free p;
  check Alcotest.bool "dead" false (Ksim.Kmem.is_live p)

(* Klock ------------------------------------------------------------------- *)

let test_lock_basic () =
  let l = Ksim.Klock.create ~name:"l" () in
  check Alcotest.bool "free" false (Ksim.Klock.held l);
  Ksim.Klock.acquire l;
  check Alcotest.bool "held" true (Ksim.Klock.held l);
  check Alcotest.bool "by self" true (Ksim.Klock.held_by_self l);
  Ksim.Klock.release l;
  check Alcotest.bool "released" false (Ksim.Klock.held l)

let test_lock_self_deadlock () =
  let l = Ksim.Klock.create ~name:"l" () in
  Ksim.Klock.acquire l;
  (match Ksim.Klock.acquire l with
  | _ -> fail "expected Self_deadlock"
  | exception Ksim.Klock.Self_deadlock _ -> ());
  Ksim.Klock.release l

let test_lock_release_by_nonholder () =
  let l = Ksim.Klock.create ~name:"l" () in
  match Ksim.Klock.release l with
  | _ -> fail "expected Not_holder"
  | exception Ksim.Klock.Not_holder _ -> ()

let test_with_lock_releases_on_exception () =
  let l = Ksim.Klock.create ~name:"l" () in
  (match Ksim.Klock.with_lock l (fun () -> failwith "boom") with
  | _ -> fail "expected failure"
  | exception Failure _ -> ());
  check Alcotest.bool "released after exn" false (Ksim.Klock.held l)

let test_guarded_race_detection () =
  let l = Ksim.Klock.create ~name:"l" () in
  let cell = Ksim.Klock.Guarded.create ~lock:l ~name:"c" 0 in
  (* Unlocked access: counted. *)
  Ksim.Klock.Guarded.set cell 1;
  check Alcotest.int "race recorded" 1 (Ksim.Klock.Guarded.races cell);
  (* Locked access: clean. *)
  Ksim.Klock.with_lock l (fun () -> Ksim.Klock.Guarded.set cell 2);
  check Alcotest.int "no extra race" 1 (Ksim.Klock.Guarded.races cell);
  (* unsafe_ accessors never count. *)
  check Alcotest.int "unsafe read" 2 (Ksim.Klock.Guarded.unsafe_get cell);
  check Alcotest.int "still 1 race" 1 (Ksim.Klock.Guarded.races cell)

let test_guarded_strict_raises () =
  let l = Ksim.Klock.create ~name:"l" () in
  let cell = Ksim.Klock.Guarded.create ~strict:true ~lock:l ~name:"c" 0 in
  match Ksim.Klock.Guarded.get cell with
  | _ -> fail "expected Data_race"
  | exception Ksim.Klock.Data_race { cell = name; _ } ->
      check Alcotest.string "cell name" "c" name

(* Lockdep ------------------------------------------------------------------- *)

let test_lockdep_consistent_order_clean () =
  let dep = Ksim.Lockdep.create () in
  let a = Ksim.Klock.create ~lockdep:dep ~name:"A" () in
  let b = Ksim.Klock.create ~lockdep:dep ~name:"B" () in
  for _ = 1 to 3 do
    Ksim.Klock.with_lock a (fun () -> Ksim.Klock.with_lock b (fun () -> ()))
  done;
  check Alcotest.int "no warnings" 0 (Ksim.Lockdep.warning_count dep);
  check Alcotest.bool "edge recorded" true (Ksim.Lockdep.edge_count dep >= 1)

let test_lockdep_inversion_detected () =
  let dep = Ksim.Lockdep.create () in
  let a = Ksim.Klock.create ~lockdep:dep ~name:"A" () in
  let b = Ksim.Klock.create ~lockdep:dep ~name:"B" () in
  (* A -> B once... *)
  Ksim.Klock.with_lock a (fun () -> Ksim.Klock.with_lock b (fun () -> ()));
  (* ...then B -> A: no deadlock happens (single thread), but the order
     inversion is reported immediately — lockdep's whole point. *)
  Ksim.Klock.with_lock b (fun () -> Ksim.Klock.with_lock a (fun () -> ()));
  check Alcotest.int "one warning" 1 (Ksim.Lockdep.warning_count dep);
  match Ksim.Lockdep.warnings dep with
  | [ w ] ->
      check Alcotest.string "acquiring A" "A" w.Ksim.Lockdep.acquiring;
      check Alcotest.bool "cycle mentions B" true (List.mem "B" w.Ksim.Lockdep.cycle)
  | _ -> fail "expected exactly one warning"

let test_lockdep_transitive_cycle () =
  let dep = Ksim.Lockdep.create () in
  let a = Ksim.Klock.create ~lockdep:dep ~name:"A" () in
  let b = Ksim.Klock.create ~lockdep:dep ~name:"B" () in
  let c = Ksim.Klock.create ~lockdep:dep ~name:"C" () in
  Ksim.Klock.with_lock a (fun () -> Ksim.Klock.with_lock b (fun () -> ()));
  Ksim.Klock.with_lock b (fun () -> Ksim.Klock.with_lock c (fun () -> ()));
  (* C -> A closes A -> B -> C -> A. *)
  Ksim.Klock.with_lock c (fun () -> Ksim.Klock.with_lock a (fun () -> ()));
  check Alcotest.bool "cycle found" true (Ksim.Lockdep.warning_count dep >= 1)

let test_lockdep_across_threads () =
  (* The classic AB/BA deadlock pattern, staged so it does NOT deadlock in
     this interleaving — lockdep still reports it. *)
  let dep = Ksim.Lockdep.create () in
  let a = Ksim.Klock.create ~lockdep:dep ~name:"A" () in
  let b = Ksim.Klock.create ~lockdep:dep ~name:"B" () in
  let sched = Ksim.Kthread.create () in
  ignore
    (Ksim.Kthread.spawn sched ~name:"t1" (fun () ->
         Ksim.Klock.with_lock a (fun () -> Ksim.Klock.with_lock b (fun () -> ()))));
  ignore
    (Ksim.Kthread.spawn sched ~name:"t2" (fun () ->
         Ksim.Klock.with_lock b (fun () -> Ksim.Klock.with_lock a (fun () -> ()))));
  Ksim.Kthread.run sched;
  check Alcotest.bool "reported" true (Ksim.Lockdep.warning_count dep >= 1)

let test_lockdep_reentrant_stack () =
  let dep = Ksim.Lockdep.create () in
  let a = Ksim.Klock.create ~lockdep:dep ~name:"A" () in
  let b = Ksim.Klock.create ~lockdep:dep ~name:"B" () in
  (* Release out of acquisition order must still unwind the held stack. *)
  Ksim.Klock.acquire a;
  Ksim.Klock.acquire b;
  Ksim.Klock.release a;
  Ksim.Klock.release b;
  Ksim.Klock.with_lock b (fun () -> ());
  check Alcotest.int "no spurious warnings" 0 (Ksim.Lockdep.warning_count dep)

let test_lockdep_edges_export () =
  let dep = Ksim.Lockdep.create () in
  let a = Ksim.Klock.create ~lockdep:dep ~name:"A" () in
  let b = Ksim.Klock.create ~lockdep:dep ~name:"B" () in
  let c = Ksim.Klock.create ~lockdep:dep ~name:"C" () in
  Ksim.Klock.with_lock a (fun () ->
      Ksim.Klock.with_lock b (fun () -> Ksim.Klock.with_lock c (fun () -> ())));
  (* nesting under A and B simultaneously records the transitive pairs too *)
  check
    Alcotest.(list (pair string string))
    "deterministic edge list"
    [ ("A", "B"); ("A", "C"); ("B", "C") ]
    (Ksim.Lockdep.edges dep);
  let dot = Ksim.Lockdep.dump_dot dep in
  check Alcotest.bool "dot names the graph" true
    (String.length dot > 0 && String.sub dot 0 16 = "digraph lockdep ");
  (* the wire format the kracer reconciliation reads back *)
  let path = Filename.temp_file "lockdep" ".txt" in
  Sys.remove path;
  Ksim.Lockdep.append_edges_to_file dep ~path;
  Ksim.Lockdep.append_edges_to_file dep ~path;
  let ic = open_in path in
  let rec slurp acc =
    match input_line ic with line -> slurp (line :: acc) | exception End_of_file -> List.rev acc
  in
  let lines = slurp [] in
  close_in ic;
  check Alcotest.int "append mode accumulates" 6 (List.length lines);
  check Alcotest.string "held-acquired pairs, space separated" "A B" (List.hd lines)

let test_lockdep_release_out_of_order () =
  (* A held, B acquired, A released first: acquiring C now must record
     only B -> C — A is gone from the held stack despite being released
     out of LIFO order. *)
  let dep = Ksim.Lockdep.create () in
  let a = Ksim.Klock.create ~lockdep:dep ~name:"A" () in
  let b = Ksim.Klock.create ~lockdep:dep ~name:"B" () in
  let c = Ksim.Klock.create ~lockdep:dep ~name:"C" () in
  Ksim.Klock.acquire a;
  Ksim.Klock.acquire b;
  Ksim.Klock.release a;
  Ksim.Klock.acquire c;
  Ksim.Klock.release c;
  Ksim.Klock.release b;
  check
    Alcotest.(list (pair string string))
    "no stale A -> C edge"
    [ ("A", "B"); ("B", "C") ]
    (Ksim.Lockdep.edges dep)

let test_lockdep_reacquire_after_release () =
  (* A -> B, full release, then B alone, then A alone: the second and
     third critical sections hold one lock each, so no inversion exists
     and no B -> A edge may appear. *)
  let dep = Ksim.Lockdep.create () in
  let a = Ksim.Klock.create ~lockdep:dep ~name:"A" () in
  let b = Ksim.Klock.create ~lockdep:dep ~name:"B" () in
  Ksim.Klock.with_lock a (fun () -> Ksim.Klock.with_lock b (fun () -> ()));
  Ksim.Klock.with_lock b (fun () -> ());
  Ksim.Klock.with_lock a (fun () -> ());
  check Alcotest.int "no warnings" 0 (Ksim.Lockdep.warning_count dep);
  check
    Alcotest.(list (pair string string))
    "only the nested edge" [ ("A", "B") ] (Ksim.Lockdep.edges dep)

let test_lockdep_trylock_orders () =
  (* A successful try_acquire participates in the order graph exactly
     like a blocking acquire: B -> A via trylock then A -> B blocking is
     an inversion. *)
  let dep = Ksim.Lockdep.create () in
  let a = Ksim.Klock.create ~lockdep:dep ~name:"A" () in
  let b = Ksim.Klock.create ~lockdep:dep ~name:"B" () in
  Ksim.Klock.with_lock b (fun () ->
      check Alcotest.bool "trylock succeeds uncontended" true (Ksim.Klock.try_acquire a);
      Ksim.Klock.release a);
  check
    Alcotest.(list (pair string string))
    "trylock recorded an edge" [ ("B", "A") ] (Ksim.Lockdep.edges dep);
  Ksim.Klock.with_lock a (fun () -> Ksim.Klock.with_lock b (fun () -> ()));
  check Alcotest.int "inversion against the trylock edge reported" 1
    (Ksim.Lockdep.warning_count dep)

(* Kthread ------------------------------------------------------------------ *)

let test_scheduler_runs_all () =
  let sched = Ksim.Kthread.create () in
  let log = ref [] in
  for i = 1 to 3 do
    ignore
      (Ksim.Kthread.spawn sched ~name:(string_of_int i) (fun () ->
           log := i :: !log;
           Ksim.Kthread.yield ();
           log := (10 * i) :: !log))
  done;
  Ksim.Kthread.run sched;
  check Alcotest.(list int) "round robin order" [ 1; 2; 3; 10; 20; 30 ] (List.rev !log);
  check Alcotest.int "no failures" 0 (List.length (Ksim.Kthread.failures sched))

let test_scheduler_seeded_deterministic () =
  let run seed =
    let sched = Ksim.Kthread.create ~seed () in
    let log = ref [] in
    for i = 1 to 4 do
      ignore
        (Ksim.Kthread.spawn sched ~name:(string_of_int i) (fun () ->
             log := i :: !log;
             Ksim.Kthread.yield ();
             log := i :: !log))
    done;
    Ksim.Kthread.run sched;
    List.rev !log
  in
  check Alcotest.(list int) "same seed same schedule" (run 7) (run 7);
  (* A different seed typically gives a different interleaving; at minimum
     the multiset of events is preserved. *)
  check Alcotest.int "all events" 8 (List.length (run 8))

let test_scheduler_collects_failures () =
  let sched = Ksim.Kthread.create () in
  ignore (Ksim.Kthread.spawn sched ~name:"ok" (fun () -> ()));
  ignore (Ksim.Kthread.spawn sched ~name:"bad" (fun () -> failwith "oops"));
  Ksim.Kthread.run sched;
  match Ksim.Kthread.failures sched with
  | [ { Ksim.Kthread.failed_name; _ } ] -> check Alcotest.string "name" "bad" failed_name
  | l -> fail (Printf.sprintf "expected 1 failure, got %d" (List.length l))

let test_scheduler_lock_handoff () =
  (* Two threads contend on a lock; the spin-by-yield must hand over. *)
  let sched = Ksim.Kthread.create () in
  let l = Ksim.Klock.create ~name:"shared" () in
  let order = ref [] in
  ignore
    (Ksim.Kthread.spawn sched ~name:"a" (fun () ->
         Ksim.Klock.with_lock l (fun () ->
             order := "a-in" :: !order;
             Ksim.Kthread.yield ();
             order := "a-out" :: !order)));
  ignore
    (Ksim.Kthread.spawn sched ~name:"b" (fun () ->
         Ksim.Klock.with_lock l (fun () -> order := "b" :: !order)));
  Ksim.Kthread.run sched;
  check Alcotest.(list string) "critical sections do not interleave"
    [ "a-in"; "a-out"; "b" ] (List.rev !order);
  check Alcotest.bool "contention seen" true (Ksim.Klock.contentions l >= 1)

let test_scheduler_livelock_detected () =
  let sched = Ksim.Kthread.create ~max_steps:100 () in
  ignore
    (Ksim.Kthread.spawn sched ~name:"spin" (fun () ->
         while true do
           Ksim.Kthread.yield ()
         done));
  match Ksim.Kthread.run sched with
  | _ -> fail "expected Livelock"
  | exception Ksim.Kthread.Livelock _ -> ()

let test_lost_update_race () =
  (* The classic unsynchronized increment: with yields between read and
     write, updates are lost — the bug ownership safety rules out. *)
  let sched = Ksim.Kthread.create () in
  let counter = ref 0 in
  for _ = 1 to 4 do
    ignore
      (Ksim.Kthread.spawn sched ~name:"inc" (fun () ->
           let v = !counter in
           Ksim.Kthread.yield ();
           counter := v + 1))
  done;
  Ksim.Kthread.run sched;
  check Alcotest.int "updates lost" 1 !counter

(* Ktrace ------------------------------------------------------------------- *)

let test_trace_basic () =
  let tr = Ksim.Ktrace.create ~capacity:3 () in
  Ksim.Ktrace.emit tr ~category:"a" "one";
  Ksim.Ktrace.emitf tr ~category:"b" "two %d" 2;
  check Alcotest.int "count a" 1 (Ksim.Ktrace.count tr ~category:"a");
  check Alcotest.int "total" 2 (Ksim.Ktrace.total tr);
  Ksim.Ktrace.emit tr ~category:"a" "three";
  Ksim.Ktrace.emit tr ~category:"a" "four" (* evicts "one" *);
  check Alcotest.int "ring keeps 3" 3 (List.length (Ksim.Ktrace.events tr));
  check Alcotest.int "total still counts" 4 (Ksim.Ktrace.total tr);
  Ksim.Ktrace.clear tr;
  check Alcotest.int "cleared" 0 (Ksim.Ktrace.total tr)

(* Rng ----------------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Ksim.Rng.of_int 1 and b = Ksim.Rng.of_int 1 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Ksim.Rng.int a 1000) (Ksim.Rng.int b 1000)
  done

let test_rng_split_independent () =
  let a = Ksim.Rng.of_int 1 in
  let c = Ksim.Rng.split a in
  (* The split stream must differ from the parent's continuation. *)
  let xs = List.init 10 (fun _ -> Ksim.Rng.int a 1_000_000) in
  let ys = List.init 10 (fun _ -> Ksim.Rng.int c 1_000_000) in
  check Alcotest.bool "streams differ" true (xs <> ys)

let rng_int_in_bounds =
  QCheck2.Test.make ~name:"rng.int always within bounds" ~count:500
    QCheck2.Gen.(pair int (int_range 1 10_000))
    (fun (seed, bound) ->
      let rng = Ksim.Rng.of_int seed in
      let v = Ksim.Rng.int rng bound in
      v >= 0 && v < bound)

let rng_float_in_unit =
  QCheck2.Test.make ~name:"rng.float in [0,1)" ~count:500 QCheck2.Gen.int (fun seed ->
      let rng = Ksim.Rng.of_int seed in
      let f = Ksim.Rng.float rng in
      f >= 0.0 && f < 1.0)

let rng_shuffle_permutation =
  QCheck2.Test.make ~name:"rng.shuffle is a permutation" ~count:200
    QCheck2.Gen.(pair int (list_size (int_range 0 30) int))
    (fun (seed, xs) ->
      let rng = Ksim.Rng.of_int seed in
      List.sort compare (Ksim.Rng.shuffle rng xs) = List.sort compare xs)

let rng_pick_member =
  QCheck2.Test.make ~name:"rng.pick returns a member" ~count:200
    QCheck2.Gen.(pair int (list_size (int_range 1 20) int))
    (fun (seed, xs) ->
      let rng = Ksim.Rng.of_int seed in
      List.mem (Ksim.Rng.pick rng xs) xs)

(* Failpoint ------------------------------------------------------------------ *)

let test_failpoint_interval_and_times () =
  let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:1 () in
  Ksim.Failpoint.configure fp "site" ~enabled:true ~interval:3 ~times:2 ();
  let fired = List.init 12 (fun _ -> Ksim.Failpoint.should_fail fp "site") in
  (* Hits 3 and 6 inject; then the times budget is gone. *)
  check Alcotest.(list bool) "every 3rd hit, twice"
    [ false; false; true; false; false; true; false; false; false; false; false; false ]
    fired;
  check Alcotest.int "hits counted" 12 (Ksim.Failpoint.hits fp "site");
  check Alcotest.int "injections counted" 2 (Ksim.Failpoint.injected fp "site");
  check Alcotest.int "total" 2 (Ksim.Failpoint.total_injected fp)

let test_failpoint_disabled_and_heal () =
  let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:1 () in
  (* Registered but never enabled: zero cost path, never fires. *)
  check Alcotest.bool "disabled never fires" false (Ksim.Failpoint.should_fail fp "quiet");
  Ksim.Failpoint.configure fp "loud" ~enabled:true ();
  check Alcotest.bool "enabled fires" true (Ksim.Failpoint.should_fail fp "loud");
  Ksim.Failpoint.disable_all fp;
  check Alcotest.bool "healed" false (Ksim.Failpoint.should_fail fp "loud");
  check Alcotest.bool "bad probability rejected" true
    (try
       Ksim.Failpoint.configure fp "loud" ~probability:1.5 ();
       false
     with Invalid_argument _ -> true)

let test_failpoint_probability_replayable () =
  let run () =
    let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:77 () in
    Ksim.Failpoint.configure fp "p" ~enabled:true ~probability:0.4 ();
    let fired = List.init 64 (fun _ -> Ksim.Failpoint.should_fail fp "p") in
    (fired, Ksim.Failpoint.schedule fp)
  in
  let fired_a, sched_a = run () in
  let fired_b, sched_b = run () in
  check Alcotest.(list bool) "same seed, same draws" fired_a fired_b;
  check Alcotest.(list string) "same schedule fingerprint" sched_a sched_b;
  let hits = List.length (List.filter Fun.id fired_a) in
  check Alcotest.bool "probability gate actually gates" true (hits > 0 && hits < 64);
  (* The per-site stream comes from (seed, name): registration order of
     other sites must not perturb it. *)
  let fp2 = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:77 () in
  ignore (Ksim.Failpoint.register fp2 "aardvark");
  ignore (Ksim.Failpoint.register fp2 "zebra");
  Ksim.Failpoint.configure fp2 "p" ~enabled:true ~probability:0.4 ();
  let fired_c = List.init 64 (fun _ -> Ksim.Failpoint.should_fail fp2 "p") in
  check Alcotest.(list bool) "independent of registration order" fired_a fired_c

(* The knobs interact: [interval] gates eligibility by hit count, [times]
   budgets the injections, and exhaustion is observable and reversible by
   re-configuring. *)
let test_failpoint_interval_times_exhaustion () =
  let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:9 () in
  Ksim.Failpoint.configure fp "s" ~enabled:true ~interval:2 ~times:3 ();
  let fired = List.init 10 (fun _ -> Ksim.Failpoint.should_fail fp "s") in
  (* Eligible hits are 2, 4, 6, 8, 10; the times budget stops after three. *)
  check Alcotest.(list bool) "interval x times"
    [ false; true; false; true; false; true; false; false; false; false ]
    fired;
  check Alcotest.int "budget spent" 3 (Ksim.Failpoint.injected fp "s");
  (* Topping the budget back up resumes on the same hit parity: the next
     eligible hit is 12. *)
  Ksim.Failpoint.configure fp "s" ~times:1 ();
  let fired = List.init 2 (fun _ -> Ksim.Failpoint.should_fail fp "s") in
  check Alcotest.(list bool) "resumes on parity" [ false; true ] fired;
  check Alcotest.int "budget spent again" 4 (Ksim.Failpoint.injected fp "s")

let test_failpoint_reconfigure_after_disable_all () =
  let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:9 () in
  Ksim.Failpoint.configure fp "s" ~enabled:true ();
  check Alcotest.bool "fires" true (Ksim.Failpoint.should_fail fp "s");
  Ksim.Failpoint.disable_all fp;
  check Alcotest.bool "healed" false (Ksim.Failpoint.should_fail fp "s");
  (* disable_all keeps hits and streams: re-enabling with interval 3 is
     judged against the cumulative hit count (2 so far; next eligible is
     hit 3). *)
  Ksim.Failpoint.configure fp "s" ~enabled:true ~interval:3 ();
  let fired = List.init 4 (fun _ -> Ksim.Failpoint.should_fail fp "s") in
  check Alcotest.(list bool) "cumulative hits drive interval"
    [ true; false; false; true ] fired;
  check Alcotest.int "hits kept across heal" 6 (Ksim.Failpoint.hits fp "s")

let test_failpoint_streams_per_site () =
  (* Each site's probability stream is a function of (seed, name) only:
     two registries with the same seed but opposite registration orders
     agree draw-for-draw on every site. *)
  let draws fp name = List.init 32 (fun _ -> Ksim.Failpoint.should_fail fp name) in
  let fp_ab = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:21 () in
  Ksim.Failpoint.configure fp_ab "alpha" ~enabled:true ~probability:0.5 ();
  Ksim.Failpoint.configure fp_ab "beta" ~enabled:true ~probability:0.5 ();
  let alpha_1 = draws fp_ab "alpha" in
  let beta_1 = draws fp_ab "beta" in
  let fp_ba = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:21 () in
  Ksim.Failpoint.configure fp_ba "beta" ~enabled:true ~probability:0.5 ();
  Ksim.Failpoint.configure fp_ba "alpha" ~enabled:true ~probability:0.5 ();
  (* Interleave in the other order too: draws must not depend on it. *)
  let beta_2 = draws fp_ba "beta" in
  let alpha_2 = draws fp_ba "alpha" in
  check Alcotest.(list bool) "alpha agrees" alpha_1 alpha_2;
  check Alcotest.(list bool) "beta agrees" beta_1 beta_2;
  check Alcotest.bool "sites differ from each other" true (alpha_1 <> beta_1)

let test_failpoint_publish () =
  let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:3 () in
  Ksim.Failpoint.configure fp "s" ~enabled:true ();
  ignore (Ksim.Failpoint.should_fail fp "s");
  let stats = Ksim.Kstats.create () in
  Ksim.Failpoint.publish fp stats;
  check Alcotest.int "hits published" 1 (Ksim.Kstats.get stats "s.hits");
  check Alcotest.int "injected published" 1 (Ksim.Kstats.get stats "s.injected")

(* Kstats --------------------------------------------------------------------- *)

let test_kstats () =
  let s = Ksim.Kstats.create () in
  Ksim.Kstats.incr s "x";
  Ksim.Kstats.incr ~by:4 s "x";
  Ksim.Kstats.incr s "y";
  check Alcotest.int "x" 5 (Ksim.Kstats.get s "x");
  check Alcotest.int "missing" 0 (Ksim.Kstats.get s "z");
  check Alcotest.(list (pair string int)) "sorted" [ ("x", 5); ("y", 1) ] (Ksim.Kstats.to_list s);
  Ksim.Kstats.reset s;
  check Alcotest.int "reset" 0 (Ksim.Kstats.get s "x")

let test_kstats_snapshot_diff () =
  let s = Ksim.Kstats.create () in
  Ksim.Kstats.incr ~by:3 s "kept";
  Ksim.Kstats.incr ~by:2 s "grown";
  let before = Ksim.Kstats.snapshot s in
  Ksim.Kstats.incr ~by:5 s "grown";
  Ksim.Kstats.incr s "fresh";
  let after = Ksim.Kstats.snapshot s in
  (* Only the counters that moved, with exact deltas; keys absent before
     count from zero. *)
  check Alcotest.(list (pair string int)) "diff"
    [ ("fresh", 1); ("grown", 5) ]
    (Ksim.Kstats.diff ~before ~after);
  check Alcotest.int "delta grown" 5 (Ksim.Kstats.delta ~before ~after "grown");
  check Alcotest.int "delta kept" 0 (Ksim.Kstats.delta ~before ~after "kept");
  check Alcotest.int "delta missing" 0 (Ksim.Kstats.delta ~before ~after "nope")

(* Supervisor ------------------------------------------------------------------ *)

(* A supervised module that panics on demand: [bad] arms the next call. *)
let sup_module () =
  let bad = ref false in
  let f () =
    if !bad then begin
      bad := false;
      raise (Ksim.Supervisor.Module_panic "test.site")
    end
    else Ok "ok"
  in
  (bad, f)

let test_supervisor_contains_and_reboots () =
  let bad, f = sup_module () in
  let trace = Ksim.Ktrace.create () in
  let sup =
    Ksim.Supervisor.create ~trace ~restart:(fun () -> Ok ()) ~name:"mod" ()
  in
  check Alcotest.string "healthy call passes" "ok"
    (Result.get_ok (Ksim.Supervisor.call sup f));
  bad := true;
  (* The panic is contained to EIO — never an uncaught exception. *)
  check Alcotest.bool "oops contained" true (Ksim.Supervisor.call sup f = Error Ksim.Errno.EIO);
  check Alcotest.bool "state oopsed" true (Ksim.Supervisor.state sup = Ksim.Supervisor.Oopsed);
  (* Before the backoff deadline the mount quiesces: calls drain EINTR. *)
  check Alcotest.bool "drains EINTR" true (Ksim.Supervisor.call sup f = Error Ksim.Errno.EINTR);
  (* First call past the deadline microreboots and then serves. *)
  check Alcotest.string "recovered" "ok" (Result.get_ok (Ksim.Supervisor.call sup f));
  check Alcotest.bool "healthy again" true
    (Ksim.Supervisor.state sup = Ksim.Supervisor.Healthy);
  check Alcotest.int "epoch bumped" 1 (Ksim.Supervisor.epoch sup);
  check Alcotest.int "one oops" 1 (Ksim.Supervisor.oopses sup);
  check Alcotest.int "one restart" 1 (Ksim.Supervisor.restarts sup);
  check Alcotest.bool "recovery latency on the simulated clock" true
    (Ksim.Supervisor.last_recovery_ns sup > 0)

let test_supervisor_stale_epochs () =
  let _, f = sup_module () in
  let sup =
    Ksim.Supervisor.create ~trace:(Ksim.Ktrace.create ()) ~restart:(fun () -> Ok ())
      ~name:"mod" ()
  in
  let handle = Ksim.Supervisor.epoch sup in
  check Alcotest.bool "fresh handle valid" true (Ksim.Supervisor.validate sup handle = Ok ());
  (* Oops and recover. *)
  check Alcotest.bool "oops" true
    (Ksim.Supervisor.call sup (fun () -> raise Exit) = Error Ksim.Errno.EIO);
  check Alcotest.bool "quiesce" true (Ksim.Supervisor.call sup f = Error Ksim.Errno.EINTR);
  check Alcotest.bool "reboot" true (Ksim.Supervisor.call sup f = Ok "ok");
  (* The pre-oops handle now belongs to a dead generation. *)
  check Alcotest.bool "stale handle" true
    (Ksim.Supervisor.validate sup handle = Error Ksim.Errno.ESTALE);
  check Alcotest.bool "fresh handle ok" true
    (Ksim.Supervisor.validate sup (Ksim.Supervisor.epoch sup) = Ok ());
  check Alcotest.int "stale rejections counted" 1 (Ksim.Supervisor.stale_rejected sup)

let test_supervisor_escalates_to_failed () =
  let policy =
    { Ksim.Supervisor.restart_budget = 2; backoff_base = 100; backoff_cap = 100; op_cost = 100 }
  in
  let trace = Ksim.Ktrace.create () in
  let sup = Ksim.Supervisor.create ~policy ~trace ~restart:(fun () -> Ok ()) ~name:"mod" () in
  let incidents_before = Ksim.Ktrace.count Ksim.Ktrace.global ~category:"incident" in
  let transitions = ref [] in
  Ksim.Supervisor.set_observer sup (fun _ to_ -> transitions := to_ :: !transitions);
  let always_panics () = raise (Ksim.Supervisor.Module_panic "test.site") in
  (* Drive it to budget exhaustion: every recovery immediately re-oopses.
     No call may ever raise — containment holds through escalation. *)
  let results = List.init 8 (fun _ -> Ksim.Supervisor.call sup always_panics) in
  check Alcotest.bool "escalated" true (Ksim.Supervisor.state sup = Ksim.Supervisor.Failed);
  check Alcotest.int "escalation counted" 1 (Ksim.Supervisor.escalations sup);
  check Alcotest.int "budget spent exactly" 2 (Ksim.Supervisor.restarts sup);
  (* Degraded mode answers EIO forever after. *)
  check Alcotest.bool "degraded EIO" true
    (Ksim.Supervisor.call sup (fun () -> Ok "up") = Error Ksim.Errno.EIO);
  check Alcotest.bool "only errno results" true
    (List.for_all
       (fun r -> r = Error Ksim.Errno.EIO || r = Error Ksim.Errno.EINTR)
       results);
  check Alcotest.bool "escalation hit the audit trail" true
    (Ksim.Ktrace.count Ksim.Ktrace.global ~category:"incident" > incidents_before);
  check Alcotest.bool "observer saw Failed" true
    (List.mem Ksim.Supervisor.Failed !transitions)

let test_supervisor_failed_restart_burns_budget () =
  let policy =
    { Ksim.Supervisor.restart_budget = 1; backoff_base = 100; backoff_cap = 100; op_cost = 100 }
  in
  let sup =
    Ksim.Supervisor.create ~policy ~trace:(Ksim.Ktrace.create ())
      ~restart:(fun () -> Error "device gone") ~name:"mod" ()
  in
  check Alcotest.bool "oops" true
    (Ksim.Supervisor.call sup (fun () -> raise Exit) = Error Ksim.Errno.EIO);
  (* The restart itself fails: budget burns, escalation follows. *)
  check Alcotest.bool "failed restart degrades" true
    (Ksim.Supervisor.call sup (fun () -> Ok ()) = Error Ksim.Errno.EIO);
  check Alcotest.bool "failed" true (Ksim.Supervisor.state sup = Ksim.Supervisor.Failed);
  check Alcotest.int "budget spent" 1 (Ksim.Supervisor.restarts sup)

let test_supervisor_replayable () =
  (* The whole lifecycle is a function of the call sequence: two fresh
     supervisors driven identically agree on every observable. *)
  let drive () =
    let bad, f = sup_module () in
    let sup =
      Ksim.Supervisor.create ~trace:(Ksim.Ktrace.create ()) ~restart:(fun () -> Ok ())
        ~name:"mod" ()
    in
    let results =
      List.init 12 (fun i ->
          if i = 2 || i = 7 then bad := true;
          Ksim.Supervisor.call sup f)
    in
    ( results,
      Ksim.Supervisor.epoch sup,
      Ksim.Supervisor.clock sup,
      Ksim.Supervisor.oopses sup,
      Ksim.Supervisor.total_recovery_ns sup )
  in
  let a = drive () in
  let b = drive () in
  check Alcotest.bool "bit-identical replay" true (a = b)

let test_supervisor_publish () =
  let stats = Ksim.Kstats.create () in
  let sup =
    Ksim.Supervisor.create ~trace:(Ksim.Ktrace.create ()) ~stats
      ~restart:(fun () -> Ok ()) ~name:"fs" ()
  in
  check Alcotest.bool "oops" true
    (Ksim.Supervisor.call sup (fun () -> raise Exit) = Error Ksim.Errno.EIO);
  check Alcotest.int "live counter" 1 (Ksim.Kstats.get stats "supervisor.oopses");
  Ksim.Supervisor.publish sup stats;
  check Alcotest.int "named counter" 1 (Ksim.Kstats.get stats "supervisor.fs.oopses")

(* Hist: the HdrHistogram-lite percentile sketch ------------------------- *)

let test_hist_percentiles () =
  let h = Ksim.Hist.create () in
  for v = 1 to 1000 do
    Ksim.Hist.record h v
  done;
  check Alcotest.int "count" 1000 (Ksim.Hist.count h);
  check Alcotest.int "min exact" 1 (Ksim.Hist.min_value h);
  check Alcotest.int "max exact" 1000 (Ksim.Hist.max_value h);
  let within pct want got =
    let err = abs (got - want) in
    if float_of_int err > (0.035 *. float_of_int want) +. 1.0 then
      fail (Printf.sprintf "%s: want ~%d got %d" pct want got)
  in
  within "p50" 500 (Ksim.Hist.percentile h 50.0);
  within "p95" 950 (Ksim.Hist.percentile h 95.0);
  within "p99" 990 (Ksim.Hist.percentile h 99.0);
  check Alcotest.int "p100 clamps to observed max" 1000 (Ksim.Hist.percentile h 100.0);
  within "mean" 500 (int_of_float (Ksim.Hist.mean h));
  let s = Ksim.Hist.summarize h in
  check Alcotest.bool "summary ordered" true
    (s.Ksim.Hist.p50 <= s.Ksim.Hist.p95 && s.p95 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max)

let test_hist_merge () =
  let a = Ksim.Hist.create () and b = Ksim.Hist.create () in
  List.iter (Ksim.Hist.record a) [ 10; 20; 30 ];
  List.iter (Ksim.Hist.record b) [ 40; 50000 ];
  Ksim.Hist.merge_into ~dst:a b;
  check Alcotest.int "merged count" 5 (Ksim.Hist.count a);
  check Alcotest.int "merged min" 10 (Ksim.Hist.min_value a);
  check Alcotest.int "merged max" 50000 (Ksim.Hist.max_value a);
  check Alcotest.int "merged total" 50100 (Ksim.Hist.total a)

let test_kstats_hist_snapshot () =
  let stats = Ksim.Kstats.create () in
  List.iter (Ksim.Kstats.observe stats "lat") [ 100; 200; 300 ];
  let l = Ksim.Kstats.to_list stats in
  check Alcotest.int "derived count entry" 3 (List.assoc "lat#count" l);
  check Alcotest.int "derived min entry" 100 (List.assoc "lat#min" l);
  check Alcotest.bool "derived p99 entry present" true (List.mem_assoc "lat#p99" l)

(* Supervisor recovery aggregation (over all microreboots) ---------------- *)

let test_supervisor_recovery_aggregation () =
  let bad, f = sup_module () in
  let stats = Ksim.Kstats.create () in
  let sup =
    Ksim.Supervisor.create ~trace:(Ksim.Ktrace.create ()) ~stats
      ~restart:(fun () -> Ok ()) ~name:"mod" ()
  in
  (* Three oops/recover cycles; each recovery waits out a longer backoff,
     so the histogram sees three distinct latencies. *)
  for _ = 1 to 3 do
    bad := true;
    let rec drain n =
      if n > 200 then fail "never recovered";
      match Ksim.Supervisor.call sup f with Ok _ -> () | Error _ -> drain (n + 1)
    in
    drain 0
  done;
  let s = Ksim.Supervisor.recovery sup in
  check Alcotest.int "three recoveries aggregated" 3 s.Ksim.Hist.count;
  check Alcotest.bool "min positive" true (s.Ksim.Hist.min > 0);
  check Alcotest.bool "ordered" true
    (s.Ksim.Hist.min <= s.Ksim.Hist.p50 && s.Ksim.Hist.p50 <= s.Ksim.Hist.p99
   && s.Ksim.Hist.p99 <= s.Ksim.Hist.max);
  check Alcotest.bool "max saw the longest backoff" true
    (s.Ksim.Hist.max > s.Ksim.Hist.min);
  (* Live observation into the stats table, and publish under the name. *)
  check Alcotest.int "live hist entry" 3
    (List.assoc "supervisor.recovery_ns#count" (Ksim.Kstats.to_list stats));
  Ksim.Supervisor.publish sup stats;
  check Alcotest.int "published hist entry" 3
    (List.assoc "supervisor.mod.recovery_ns#count" (Ksim.Kstats.to_list stats))

(* Storm composition (satellite: composed failpoint schedules) ------------ *)

let test_storm_overlap_composition () =
  let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:1 () in
  let storm = Ksim.Storm.create ~fp () in
  Ksim.Storm.add storm
    [ { Ksim.Storm.site = "s"; start = 0; stop = 10; probability = 0.5; times = 3 } ];
  Ksim.Storm.add storm
    [ { Ksim.Storm.site = "s"; start = 5; stop = 15; probability = 0.5; times = 4 } ];
  (* In the overlap: union probability, summed finite budgets. *)
  (match Ksim.Storm.active storm 7 with
  | [ ("s", p, budget) ] ->
      check (Alcotest.float 1e-9) "union probability" 0.75 p;
      check Alcotest.int "summed budget" 7 budget
  | l -> fail (Printf.sprintf "overlap: %d active sites" (List.length l)));
  (* Outside the overlap only the second burst covers. *)
  (match Ksim.Storm.active storm 12 with
  | [ ("s", p, budget) ] ->
      check (Alcotest.float 1e-9) "single probability" 0.5 p;
      check Alcotest.int "single budget" 4 budget
  | _ -> fail "post-overlap");
  check Alcotest.int "past the storm: nothing active" 0
    (List.length (Ksim.Storm.active storm 20));
  (* tick applies the composition to the registry. *)
  Ksim.Storm.tick storm 7;
  let site = List.find (fun s -> s.Ksim.Failpoint.name = "s") (Ksim.Failpoint.sites fp) in
  check Alcotest.bool "site enabled in window" true site.Ksim.Failpoint.enabled;
  check (Alcotest.float 1e-9) "site probability composed" 0.75
    site.Ksim.Failpoint.probability;
  Ksim.Storm.tick storm 20;
  check Alcotest.bool "site disabled past the storm" false site.Ksim.Failpoint.enabled;
  (* Unlimited wins over finite budgets. *)
  Ksim.Storm.add storm
    [ { Ksim.Storm.site = "s"; start = 0; stop = 10; probability = 0.1; times = -1 } ];
  match Ksim.Storm.active storm 7 with
  | [ ("s", _, budget) ] -> check Alcotest.int "unlimited wins" (-1) budget
  | _ -> fail "unlimited compose"

let test_storm_disable_mid_burst () =
  let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:2 () in
  let storm = Ksim.Storm.create ~fp () in
  Ksim.Storm.add storm
    [ { Ksim.Storm.site = "s"; start = 0; stop = 100; probability = 1.0; times = -1 } ];
  Ksim.Storm.tick storm 10;
  check Alcotest.bool "armed mid-burst" true (Ksim.Failpoint.should_fail fp "s");
  Ksim.Storm.disable storm;
  check Alcotest.bool "disable kills the site" false (Ksim.Failpoint.should_fail fp "s");
  (* A later tick re-arms whatever its window says: permanent shutdown is
     simply not ticking again. *)
  Ksim.Storm.tick storm 11;
  check Alcotest.bool "tick re-arms inside the window" true
    (Ksim.Failpoint.should_fail fp "s")

let test_storm_replay_determinism () =
  let drive () =
    let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:77 () in
    let storm = Ksim.Storm.create ~fp () in
    Ksim.Storm.add storm
      [
        { Ksim.Storm.site = "a"; start = 5; stop = 40; probability = 0.4; times = -1 };
        { Ksim.Storm.site = "b"; start = 20; stop = 60; probability = 0.3; times = 5 };
      ];
    Ksim.Storm.add storm
      [ { Ksim.Storm.site = "a"; start = 30; stop = 50; probability = 0.4; times = -1 } ];
    let hits = ref [] in
    for now = 0 to 70 do
      Ksim.Storm.tick storm now;
      hits := Ksim.Failpoint.should_fail fp "a" :: Ksim.Failpoint.should_fail fp "b" :: !hits
    done;
    (!hits, Ksim.Failpoint.schedule fp, Ksim.Failpoint.total_injected fp)
  in
  let a = drive () and b = drive () in
  check Alcotest.bool "same seed, same tick sequence: identical injections" true (a = b);
  let _, schedule, injected = a in
  check Alcotest.bool "the storm actually injected" true (injected > 0);
  check Alcotest.int "schedule records every injection" injected (List.length schedule)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ksim"
    [
      ( "errno",
        [
          Alcotest.test_case "roundtrip" `Quick test_errno_roundtrip;
          Alcotest.test_case "known codes" `Quick test_errno_codes;
          Alcotest.test_case "unknown code" `Quick test_errno_unknown_code;
          Alcotest.test_case "result bind" `Quick test_errno_bind;
        ] );
      ( "dyn",
        [
          Alcotest.test_case "roundtrip" `Quick test_dyn_roundtrip;
          Alcotest.test_case "type confusion" `Quick test_dyn_mismatch;
          Alcotest.test_case "same-name keys differ" `Quick test_dyn_same_name_different_keys;
          Alcotest.test_case "null" `Quick test_dyn_null;
          Alcotest.test_case "errptr convention" `Quick test_errptr;
        ] );
      ( "kmem",
        [
          Alcotest.test_case "alloc/read/write/free" `Quick test_kmem_alloc_read_write;
          Alcotest.test_case "use-after-free" `Quick test_kmem_use_after_free;
          Alcotest.test_case "double free" `Quick test_kmem_double_free;
          Alcotest.test_case "non-strict write-after-free" `Quick test_kmem_nonstrict_write_after_free;
          Alcotest.test_case "leak report" `Quick test_kmem_leaks;
          Alcotest.test_case "is_live" `Quick test_kmem_is_live;
        ] );
      ( "klock",
        [
          Alcotest.test_case "basic" `Quick test_lock_basic;
          Alcotest.test_case "self deadlock" `Quick test_lock_self_deadlock;
          Alcotest.test_case "release by non-holder" `Quick test_lock_release_by_nonholder;
          Alcotest.test_case "with_lock releases on exn" `Quick test_with_lock_releases_on_exception;
          Alcotest.test_case "guarded race detection" `Quick test_guarded_race_detection;
          Alcotest.test_case "guarded strict raises" `Quick test_guarded_strict_raises;
        ] );
      ( "lockdep",
        [
          Alcotest.test_case "consistent order clean" `Quick test_lockdep_consistent_order_clean;
          Alcotest.test_case "inversion detected" `Quick test_lockdep_inversion_detected;
          Alcotest.test_case "transitive cycle" `Quick test_lockdep_transitive_cycle;
          Alcotest.test_case "across threads" `Quick test_lockdep_across_threads;
          Alcotest.test_case "out-of-order release" `Quick test_lockdep_reentrant_stack;
          Alcotest.test_case "edges and exports" `Quick test_lockdep_edges_export;
          Alcotest.test_case "out-of-order release drops held edge" `Quick
            test_lockdep_release_out_of_order;
          Alcotest.test_case "re-acquire after release" `Quick
            test_lockdep_reacquire_after_release;
          Alcotest.test_case "trylock participates in ordering" `Quick
            test_lockdep_trylock_orders;
        ] );
      ( "kthread",
        [
          Alcotest.test_case "runs all threads" `Quick test_scheduler_runs_all;
          Alcotest.test_case "seeded determinism" `Quick test_scheduler_seeded_deterministic;
          Alcotest.test_case "collects failures" `Quick test_scheduler_collects_failures;
          Alcotest.test_case "lock handoff" `Quick test_scheduler_lock_handoff;
          Alcotest.test_case "livelock detected" `Quick test_scheduler_livelock_detected;
          Alcotest.test_case "lost update race" `Quick test_lost_update_race;
        ] );
      ("ktrace", [ Alcotest.test_case "ring and counts" `Quick test_trace_basic ]);
      ( "rng",
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic
        :: Alcotest.test_case "split independence" `Quick test_rng_split_independent
        :: qcheck [ rng_int_in_bounds; rng_float_in_unit; rng_shuffle_permutation; rng_pick_member ]
      );
      ( "failpoint",
        [
          Alcotest.test_case "interval and times" `Quick test_failpoint_interval_and_times;
          Alcotest.test_case "disabled and heal" `Quick test_failpoint_disabled_and_heal;
          Alcotest.test_case "probability replayable" `Quick test_failpoint_probability_replayable;
          Alcotest.test_case "interval x times exhaustion" `Quick
            test_failpoint_interval_times_exhaustion;
          Alcotest.test_case "re-configure after disable_all" `Quick
            test_failpoint_reconfigure_after_disable_all;
          Alcotest.test_case "per-site streams vs registration order" `Quick
            test_failpoint_streams_per_site;
          Alcotest.test_case "publish counters" `Quick test_failpoint_publish;
        ] );
      ( "kstats",
        [
          Alcotest.test_case "counters" `Quick test_kstats;
          Alcotest.test_case "snapshot diff" `Quick test_kstats_snapshot_diff;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "contains and microreboots" `Quick
            test_supervisor_contains_and_reboots;
          Alcotest.test_case "stale epochs -> ESTALE" `Quick test_supervisor_stale_epochs;
          Alcotest.test_case "escalates to failed" `Quick test_supervisor_escalates_to_failed;
          Alcotest.test_case "failed restart burns budget" `Quick
            test_supervisor_failed_restart_burns_budget;
          Alcotest.test_case "replayable" `Quick test_supervisor_replayable;
          Alcotest.test_case "publish counters" `Quick test_supervisor_publish;
          Alcotest.test_case "recovery aggregation over all reboots" `Quick
            test_supervisor_recovery_aggregation;
        ] );
      ( "hist",
        [
          Alcotest.test_case "percentiles within resolution" `Quick test_hist_percentiles;
          Alcotest.test_case "merge" `Quick test_hist_merge;
          Alcotest.test_case "kstats derived entries" `Quick test_kstats_hist_snapshot;
        ] );
      ( "storm",
        [
          Alcotest.test_case "overlapping schedules compose" `Quick
            test_storm_overlap_composition;
          Alcotest.test_case "disable mid-burst" `Quick test_storm_disable_mid_burst;
          Alcotest.test_case "replay determinism" `Quick test_storm_replay_determinism;
        ] );
    ]
