(* Tests for the bug-analysis machinery: the CWE taxonomy, the calibrated
   corpus, the fault-injection matrix, and the claim cross-check. *)

let check = Alcotest.check
let fail = Alcotest.fail

(* Cwe ---------------------------------------------------------------------- *)

let test_cwe_catalog_well_formed () =
  let ids = List.map (fun c -> c.Kbugs.Cwe.cwe_id) Kbugs.Cwe.catalog in
  check Alcotest.bool "no duplicate ids" true
    (List.length ids = List.length (List.sort_uniq compare ids));
  check Alcotest.bool "non-trivial" true (List.length Kbugs.Cwe.catalog >= 20)

let test_cwe_known_mappings () =
  let prevention id =
    match Kbugs.Cwe.find id with
    | Some cwe -> Kbugs.Cwe.prevention cwe
    | None -> fail (Printf.sprintf "CWE-%d missing" id)
  in
  check Alcotest.bool "UAF -> type/ownership" true (prevention 416 = Kbugs.Cwe.By_type_ownership);
  check Alcotest.bool "NULL deref -> type/ownership" true
    (prevention 476 = Kbugs.Cwe.By_type_ownership);
  check Alcotest.bool "race -> type/ownership" true (prevention 362 = Kbugs.Cwe.By_type_ownership);
  check Alcotest.bool "input validation -> functional" true (prevention 20 = Kbugs.Cwe.By_functional);
  check Alcotest.bool "int overflow -> other" true (prevention 190 = Kbugs.Cwe.Other_cause);
  check Alcotest.bool "info exposure -> other" true (prevention 200 = Kbugs.Cwe.Other_cause)

let test_cwe_every_prevention_inhabited () =
  List.iter
    (fun p ->
      check Alcotest.bool (Kbugs.Cwe.prevention_to_string p) true
        (Kbugs.Cwe.by_prevention p <> []))
    [ Kbugs.Cwe.By_type_ownership; Kbugs.Cwe.By_functional; Kbugs.Cwe.Other_cause ]

(* Corpus ---------------------------------------------------------------------- *)

let test_corpus_total () =
  check Alcotest.int "1475 records" 1475 (List.length (Kbugs.Corpus.records ()));
  check Alcotest.int "sums" Kbugs.Corpus.total
    (Kbugs.Corpus.type_ownership_count + Kbugs.Corpus.functional_count + Kbugs.Corpus.other_count)

let test_corpus_exact_split () =
  let t = Kbugs.Analysis.categorize (Kbugs.Corpus.records ()) in
  check Alcotest.int "type/ownership" 620 t.Kbugs.Analysis.type_ownership;
  check Alcotest.int "functional" 516 t.Kbugs.Analysis.functional;
  check Alcotest.int "other" 339 t.Kbugs.Analysis.other;
  (* The paper's headline percentages. *)
  let pct part = Float.round (Kbugs.Analysis.percent part t.Kbugs.Analysis.total) in
  check (Alcotest.float 0.01) "42%" 42.0 (pct t.Kbugs.Analysis.type_ownership);
  check (Alcotest.float 0.01) "35%" 35.0 (pct t.Kbugs.Analysis.functional);
  check (Alcotest.float 0.01) "23%" 23.0 (pct t.Kbugs.Analysis.other)

let test_corpus_deterministic () =
  let a = Kbugs.Corpus.records () and b = Kbugs.Corpus.records () in
  check Alcotest.bool "memoized/deterministic" true (a == b || a = b)

let test_corpus_years_in_range () =
  List.iter
    (fun (r : Kbugs.Corpus.record) ->
      check Alcotest.bool "2010-2020" true (r.Kbugs.Corpus.year >= 2010 && r.Kbugs.Corpus.year <= 2020))
    (Kbugs.Corpus.records ())

let test_corpus_ids_unique () =
  let ids = List.map (fun (r : Kbugs.Corpus.record) -> r.Kbugs.Corpus.cve_id) (Kbugs.Corpus.records ()) in
  check Alcotest.int "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids))

let test_corpus_component_spread () =
  let by = Kbugs.Corpus.by_component () in
  check Alcotest.bool "several components" true (List.length by >= 5);
  check Alcotest.int "all accounted" 1475 (List.fold_left (fun a (_, n) -> a + n) 0 by)

(* Inject ------------------------------------------------------------------------ *)

let test_every_fault_exhibits_at_stage0 () =
  List.iter
    (fun fault ->
      match Kbugs.Inject.at_stage Safeos_core.Level.Unsafe fault with
      | Kbugs.Inject.Exhibited _ -> ()
      | d ->
          fail
            (Printf.sprintf "%s at unsafe: %s"
               (Kbugs.Inject.fault_to_string fault)
               (Kbugs.Inject.detection_to_string d)))
    Kbugs.Inject.all_faults

let test_type_faults_stop_at_stage2 () =
  List.iter
    (fun fault ->
      check Alcotest.bool (Kbugs.Inject.fault_to_string fault) true
        (Kbugs.Inject.is_stopped (Kbugs.Inject.at_stage Safeos_core.Level.Type_safe fault)))
    [ Kbugs.Inject.F_wrong_cast; Kbugs.Inject.F_missing_errptr_check ]

let test_memory_faults_stop_at_stage3 () =
  List.iter
    (fun fault ->
      check Alcotest.bool (Kbugs.Inject.fault_to_string fault) true
        (Kbugs.Inject.is_stopped (Kbugs.Inject.at_stage Safeos_core.Level.Ownership_safe fault)))
    [ Kbugs.Inject.F_use_after_free; Kbugs.Inject.F_double_free; Kbugs.Inject.F_memory_leak;
      Kbugs.Inject.F_data_race ]

let test_semantic_fault_stops_only_at_stage4 () =
  check Alcotest.bool "exhibited at stage 3" false
    (Kbugs.Inject.is_stopped (Kbugs.Inject.at_stage Safeos_core.Level.Ownership_safe Kbugs.Inject.F_off_by_one));
  match Kbugs.Inject.at_stage Safeos_core.Level.Verified Kbugs.Inject.F_off_by_one with
  | Kbugs.Inject.Detected how ->
      check Alcotest.bool "detection names the monitor" true (String.length how > 0)
  | d -> fail (Kbugs.Inject.detection_to_string d)

let test_matrix_shape () =
  let m = Kbugs.Inject.matrix () in
  check Alcotest.int "nine faults" 9 (List.length m);
  List.iter
    (fun (_, cells) -> check Alcotest.int "four stages" 4 (List.length cells))
    m

let test_transient_io_absorbed_when_protected () =
  (match Kbugs.Inject.trigger_transient_io ~protected:false () with
  | Kbugs.Inject.Exhibited _ -> ()
  | d -> fail ("unprotected: " ^ Kbugs.Inject.detection_to_string d));
  match Kbugs.Inject.trigger_transient_io ~protected:true () with
  | Kbugs.Inject.Detected how ->
      check Alcotest.bool "mentions retries" true (String.length how > 0)
  | d -> fail ("protected: " ^ Kbugs.Inject.detection_to_string d)

let test_claims_upheld () =
  let c = Kbugs.Analysis.check_claims () in
  check Alcotest.bool "some claims" true (c.Kbugs.Analysis.claims_checked > 0);
  check Alcotest.int "all upheld"
    c.Kbugs.Analysis.claims_checked c.Kbugs.Analysis.claims_upheld;
  check Alcotest.(list (pair Alcotest.string Alcotest.string)) "none broken" []
    (List.map
       (fun (f, s) -> (Kbugs.Inject.fault_to_string f, Safeos_core.Level.to_string s))
       c.Kbugs.Analysis.broken)

let test_by_cwe_sums () =
  let by = Kbugs.Analysis.by_cwe (Kbugs.Corpus.records ()) in
  check Alcotest.int "sums to corpus" 1475 (List.fold_left (fun a (_, n) -> a + n) 0 by);
  (* Sorted descending. *)
  let counts = List.map snd by in
  check Alcotest.bool "descending" true (counts = List.sort (fun a b -> compare b a) counts)

let () =
  Alcotest.run "kbugs"
    [
      ( "cwe",
        [
          Alcotest.test_case "catalog well-formed" `Quick test_cwe_catalog_well_formed;
          Alcotest.test_case "known mappings" `Quick test_cwe_known_mappings;
          Alcotest.test_case "all buckets inhabited" `Quick test_cwe_every_prevention_inhabited;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "total 1475" `Quick test_corpus_total;
          Alcotest.test_case "exact 42/35/23 split" `Quick test_corpus_exact_split;
          Alcotest.test_case "deterministic" `Quick test_corpus_deterministic;
          Alcotest.test_case "years in range" `Quick test_corpus_years_in_range;
          Alcotest.test_case "ids unique" `Quick test_corpus_ids_unique;
          Alcotest.test_case "component spread" `Quick test_corpus_component_spread;
        ] );
      ( "inject",
        [
          Alcotest.test_case "all faults exhibit at stage 0" `Quick
            test_every_fault_exhibits_at_stage0;
          Alcotest.test_case "type faults stop at stage 2" `Quick test_type_faults_stop_at_stage2;
          Alcotest.test_case "memory faults stop at stage 3" `Quick
            test_memory_faults_stop_at_stage3;
          Alcotest.test_case "semantic stops only at stage 4" `Quick
            test_semantic_fault_stops_only_at_stage4;
          Alcotest.test_case "matrix shape" `Quick test_matrix_shape;
          Alcotest.test_case "transient io absorbed when protected" `Quick
            test_transient_io_absorbed_when_protected;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "claims upheld" `Quick test_claims_upheld;
          Alcotest.test_case "by-cwe sums" `Quick test_by_cwe_sums;
        ] );
    ]
